#!/usr/bin/env bash
# Regenerate numlint.baseline from the current tree.
#
# The baseline records one (rule, file, message-fingerprint) line per
# legacy finding so numlint can gate *new* violations while old ones are
# burned down incrementally — a fixed finding in a file can no longer
# mask a new one there, unlike the old per-file counts. Run this only
# when deliberately absorbing existing findings — e.g. after tightening
# a rule — never to paper over a regression. The diff of
# numlint.baseline is the burndown record: entries should only go away.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q -p numlint -- check --baseline numlint.baseline --update-baseline

echo "numlint-baseline.sh: wrote numlint.baseline"
git --no-pager diff --stat -- numlint.baseline || true
