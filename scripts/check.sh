#!/usr/bin/env bash
# Full local gate: release build, tier-1 tests, and a warning-free
# clippy pass over the whole workspace. CI and pre-merge runs should
# both call this script so the two can never drift apart.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> numlint check"
cargo run -q -p numlint -- check --baseline numlint.baseline

echo "check.sh: all gates passed"
