#!/usr/bin/env bash
# Full local gate: release build, tier-1 tests, warning-free clippy and
# rustdoc passes over the whole workspace, the numlint rules, the
# observability golden tests, the chaos/variants/greedy benches, and
# the doc-consistency pass. CI and pre-merge runs should both call
# this script so the two can never drift apart.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# numlint runs twice: the first pass populates/refreshes the per-file
# analysis cache (target/numlint-cache, keyed on content hash and
# rule-set version), the second proves warm runs stay sub-second — the
# cache hit/miss counts numlint prints on stderr belong to each pass.
echo "==> numlint check"
numlint_t0=$(date +%s%N)
cargo run -q -p numlint -- check --baseline numlint.baseline
numlint_t1=$(date +%s%N)
cargo run -q -p numlint -- check --baseline numlint.baseline >/dev/null
numlint_t2=$(date +%s%N)
numlint_cold_ms=$(( (numlint_t1 - numlint_t0) / 1000000 ))
numlint_warm_ms=$(( (numlint_t2 - numlint_t1) / 1000000 ))
echo "numlint wall time: ${numlint_cold_ms}ms first pass, ${numlint_warm_ms}ms warm"
if [ "${numlint_warm_ms}" -ge 1000 ]; then
    echo "check.sh: FAIL — warm numlint run took ${numlint_warm_ms}ms (budget: <1000ms)" >&2
    exit 1
fi

# The obs golden tests run as part of `cargo test -q` above; rerun them
# by name so a trace-schema or counter-accounting regression is called
# out explicitly rather than buried in the full-suite output.
echo "==> obs golden tests (trace determinism + counter accounting)"
cargo test -q -p pmtbr-cli --test trace_golden
cargo test -q --test obs_counters

# Quick chaos gate: the CLI binary under a 25% deterministic fault rate
# across every registry method, every injectable stage, and 1/2/8
# worker threads. Asserts containment (exit codes within the documented
# set, no escaped panics, finite output) and bit-identical stdout per
# thread count at a fixed fault seed, plus budget-exhaustion exit codes.
# Runs as part of `cargo test -q` too; named here so a containment
# regression is called out explicitly.
echo "==> chaos gate (PMTBR_FAULT matrix: methods x stages x 1/2/8 threads)"
cargo test -q -p pmtbr-cli --test chaos

# Service gate: serve/submit round-trips over real sockets — byte-level
# parity with local `reduce` (stdout and exit codes), the chaos matrix
# through the server's environment, protocol failures as exit 5, and
# served traces riding back. Runs as part of `cargo test -q` too; named
# here so a wire-contract regression is called out explicitly.
echo "==> service gate (serve/submit parity + chaos through the wire)"
cargo test -q -p pmtbr-cli --test serve

# Variant-coverage + perf trend gate: every `reduce` method registry
# entry must reduce the headline 1024-state mesh, and no sampling-based
# method may regress its wall time more than 1.5x against the committed
# baseline (crates/bench/baselines/variants_wall.txt; dense-Gramian
# baselines are exempt, VARIANTS_NO_PERF_GATE=1 skips the trend check
# on machines with different absolute speed). Writes BENCH_variants.json
# (order, in-band error, wall time, and per-stage seconds per method).
echo "==> variant coverage + perf trend (every registry method on the 1024-state mesh)"
cargo run --release -q -p bench --bin variants
test -s BENCH_variants.json

# Greedy accuracy-vs-solves gate: adaptive selection at the default
# convergence tolerance must match the fixed 8-node grid's in-band
# accuracy on the 1024-state mesh with strictly fewer LU
# factorizations (counter-delta-exact). Writes BENCH_greedy.json with
# the full tol=0 accuracy-vs-solves curve; the binary exits non-zero
# if the gate fails. See docs/SAMPLING.md section 9.
echo "==> greedy accuracy-vs-solves gate (BENCH_greedy.json)"
cargo run --release -q -p bench --bin greedy
test -s BENCH_greedy.json

# Service perf gate: the 1024-state mesh submitted to a live `serve`
# scheduler over loopback TCP, cold (empty artifact cache) then warm
# (model-cache hit). The warm median must be at least 5x faster than
# the cold run and byte-identical to it; the binary exits non-zero
# otherwise (SERVE_NO_PERF_GATE=1 skips the speedup check on unusual
# machines). Writes BENCH_serve.json.
echo "==> service warm-vs-cold gate (BENCH_serve.json)"
cargo run --release -q -p bench --bin serve_bench
test -s BENCH_serve.json

# Doc-consistency gate: every relative link in README.md / DESIGN.md /
# EXPERIMENTS.md / docs/*.md must resolve, and every method in
# pmtbr_cli::METHODS must be documented in the README (numlint's DOC01
# / DOC02 — zero-dependency, parses the registry source directly).
echo "==> numlint doccheck (links + method-registry drift)"
cargo run -q -p numlint -- doccheck

echo "check.sh: all gates passed"
