//! Umbrella crate for the PMTBR reproduction workspace.
//!
//! This crate exists to host the workspace-level runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`. The
//! actual functionality lives in the member crates, re-exported here for
//! convenience:
//!
//! - [`numkit`] — dense real/complex linear algebra kernels
//! - [`sparsekit`] — sparse matrices and a sparse LU solver
//! - [`lti`] — LTI systems, Gramians, exact TBR, simulation
//! - [`circuits`] — netlists, MNA, and the paper's benchmark circuits
//! - [`krylov`] — PRIMA and multipoint-projection baselines
//! - [`pmtbr`] — the Poor Man's TBR algorithms (the paper's contribution)

pub use circuits;
pub use krylov;
pub use lti;
pub use numkit;
pub use pmtbr;
pub use sparsekit;
