//! Golden-fixture tests: every rule has a fixture file under
//! `tests/fixtures/` whose findings must match its `.expected` file
//! line-for-line (`line:col RULE_ID`). Regenerate an expected file by
//! running the test with `NUMLINT_BLESS=1` and reviewing the diff.

use numlint::{lint_source, Baseline, FileClass};
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Formats diagnostics in the golden format.
fn render(diags: &[numlint::Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&format!("{}:{} {}\n", d.line, d.col, d.rule));
    }
    s
}

/// Lints `<stem>.rs` as numkit library source (all six rules plus
/// LINT00 in scope) and compares against `<stem>.expected`.
fn check_fixture(stem: &str) {
    let dir = fixtures_dir();
    let src_path = dir.join(format!("{stem}.rs"));
    let exp_path = dir.join(format!("{stem}.expected"));
    let src = fs::read_to_string(&src_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", src_path.display()));
    // Fixtures are linted under an explicit classification override:
    // on disk they live below tests/ (exempt) precisely so the real
    // workspace walk never reports their deliberate violations.
    let diags = lint_source(FileClass::CrateSrc("numkit".into()), &src);
    let got = render(&diags);
    if std::env::var_os("NUMLINT_BLESS").is_some() {
        fs::write(&exp_path, &got)
            .unwrap_or_else(|e| panic!("writing {}: {e}", exp_path.display()));
        return;
    }
    let want = fs::read_to_string(&exp_path)
        .unwrap_or_else(|e| panic!("reading {}: {e} (run with NUMLINT_BLESS=1 to create)", exp_path.display()));
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "\n== fixture {stem} drifted ==\n-- got --\n{got}\n-- want --\n{want}\n"
    );
}

#[test]
fn det01_hash_iteration() {
    check_fixture("det01");
}

#[test]
fn det02_wall_clock() {
    check_fixture("det02");
}

#[test]
fn panic01_panicking_calls() {
    check_fixture("panic01");
}

#[test]
fn float01_exact_comparison() {
    check_fixture("float01");
}

#[test]
fn float02_bare_casts() {
    check_fixture("float02");
}

#[test]
fn err01_panic_in_result_fn() {
    check_fixture("err01");
}

#[test]
fn lexer_tricky_decoys() {
    check_fixture("lexer_tricky");
}

#[test]
fn suppressions() {
    check_fixture("suppress");
}

/// Fixture findings disappear entirely when the same file is classified
/// as test code — the blanket exemption the real walk applies to
/// anything under `tests/`.
#[test]
fn fixtures_are_exempt_as_test_files() {
    let src = fs::read_to_string(fixtures_dir().join("panic01.rs")).expect("fixture");
    let diags = lint_source(FileClass::TestFile, &src);
    assert!(diags.iter().all(|d| d.rule == "LINT00"), "only LINT00 survives exemption: {diags:?}");
}

/// The shipped tree is clean: walking the real workspace with the
/// checked-in baseline yields zero non-baselined findings. This is the
/// same invariant `scripts/check.sh` gates on, enforced from the tier-1
/// test suite so it cannot rot unnoticed.
#[test]
fn workspace_is_clean_under_baseline() {
    let root = numlint::walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let files = numlint::walk::workspace_rs_files(&root).expect("walk workspace");
    assert!(files.len() > 100, "workspace walk looks truncated: {} files", files.len());
    let mut findings = Vec::new();
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(root.join(rel)).expect("read source");
        for d in lint_source(FileClass::classify(&rel_str), &src) {
            findings.push((rel_str.clone(), d));
        }
    }
    let baseline = match fs::read_to_string(root.join("numlint.baseline")) {
        Ok(text) => Baseline::parse(&text).expect("valid baseline"),
        Err(_) => Baseline::default(),
    };
    let (reported, _absorbed) = baseline.apply(findings);
    assert!(
        reported.is_empty(),
        "non-baselined findings in the shipped tree:\n{}",
        reported
            .iter()
            .map(|(p, d)| format!("{p}:{}:{} {} {}", d.line, d.col, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
