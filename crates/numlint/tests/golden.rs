//! Golden-fixture tests: every per-file rule has a fixture file under
//! `tests/fixtures/` whose findings must match its `.expected` file
//! line-for-line (`line:col RULE_ID`), and the interprocedural rules
//! have a multi-file fixture workspace under `tests/fixtures/ws/` whose
//! combined per-file + workspace findings (witness chains included)
//! must match `ws.expected`. Regenerate an expected file by running the
//! test with `NUMLINT_BLESS=1` and reviewing the diff.

use numlint::effects::render_chain;
use numlint::{analyze_file, lint_source, workspace_diagnostics, Baseline, FileAnalysis, FileClass};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Formats diagnostics in the golden format.
fn render(diags: &[numlint::Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&format!("{}:{} {}\n", d.line, d.col, d.rule));
    }
    s
}

/// Lints `<stem>.rs` as numkit library source (all six rules plus
/// LINT00 in scope) and compares against `<stem>.expected`.
fn check_fixture(stem: &str) {
    let dir = fixtures_dir();
    let src_path = dir.join(format!("{stem}.rs"));
    let exp_path = dir.join(format!("{stem}.expected"));
    let src = fs::read_to_string(&src_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", src_path.display()));
    // Fixtures are linted under an explicit classification override:
    // on disk they live below tests/ (exempt) precisely so the real
    // workspace walk never reports their deliberate violations.
    let diags = lint_source(FileClass::CrateSrc("numkit".into()), &src);
    let got = render(&diags);
    if std::env::var_os("NUMLINT_BLESS").is_some() {
        fs::write(&exp_path, &got)
            .unwrap_or_else(|e| panic!("writing {}: {e}", exp_path.display()));
        return;
    }
    let want = fs::read_to_string(&exp_path)
        .unwrap_or_else(|e| panic!("reading {}: {e} (run with NUMLINT_BLESS=1 to create)", exp_path.display()));
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "\n== fixture {stem} drifted ==\n-- got --\n{got}\n-- want --\n{want}\n"
    );
}

#[test]
fn det01_hash_iteration() {
    check_fixture("det01");
}

#[test]
fn det02_wall_clock() {
    check_fixture("det02");
}

#[test]
fn panic01_panicking_calls() {
    check_fixture("panic01");
}

#[test]
fn float01_exact_comparison() {
    check_fixture("float01");
}

#[test]
fn float02_bare_casts() {
    check_fixture("float02");
}

#[test]
fn err01_panic_in_result_fn() {
    check_fixture("err01");
}

#[test]
fn lexer_tricky_decoys() {
    check_fixture("lexer_tricky");
}

#[test]
fn conc01_atomic_discipline() {
    check_fixture("conc01");
}

#[test]
fn suppressions() {
    check_fixture("suppress");
}

/// Recursively collects the `.rs` files of the `ws` fixture workspace,
/// keyed by their ws-relative path (so `crates/<c>/src/lib.rs`
/// classification applies exactly as in a real workspace).
fn ws_fixture_files() -> BTreeMap<String, FileAnalysis> {
    let base = fixtures_dir().join("ws");
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut stack = vec![base.clone()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir).expect("read ws fixture dir") {
            let p = entry.expect("dir entry").path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                paths.push(p);
            }
        }
    }
    paths.sort();
    let mut files = BTreeMap::new();
    for p in paths {
        let rel = p
            .strip_prefix(&base)
            .expect("ws-relative path")
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&p).expect("read ws fixture file");
        files.insert(rel.clone(), analyze_file(&rel, &src));
    }
    files
}

/// The interprocedural golden test: a six-crate fixture workspace
/// exercising the cross-crate PANIC02 chain, the `catch_unwind`
/// boundary, DET03 through bench, the `obs::WallClock` carve-out, and
/// SAFE01. Findings render as `path:line:col RULE [chain]`.
#[test]
fn ws_interprocedural_rules() {
    let files = ws_fixture_files();
    assert!(files.len() >= 6, "ws fixture walk looks truncated: {}", files.len());
    let mut findings: Vec<(String, numlint::Diagnostic)> = Vec::new();
    for (path, fa) in &files {
        findings.extend(fa.diags.iter().cloned().map(|d| (path.clone(), d)));
    }
    findings.extend(workspace_diagnostics(&files));
    findings.sort();
    let mut got = String::new();
    for (path, d) in &findings {
        got.push_str(&format!("{path}:{}:{} {}", d.line, d.col, d.rule));
        if !d.chain.is_empty() {
            got.push_str(&format!(" {}", render_chain(&d.chain)));
        }
        got.push('\n');
    }
    let exp_path = fixtures_dir().join("ws.expected");
    if std::env::var_os("NUMLINT_BLESS").is_some() {
        fs::write(&exp_path, &got)
            .unwrap_or_else(|e| panic!("writing {}: {e}", exp_path.display()));
        return;
    }
    let want = fs::read_to_string(&exp_path).unwrap_or_else(|e| {
        panic!("reading {}: {e} (run with NUMLINT_BLESS=1 to create)", exp_path.display())
    });
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "\n== ws fixture drifted ==\n-- got --\n{got}\n-- want --\n{want}\n"
    );
    // Structural guarantees beyond the golden text: the PANIC02 chain
    // crosses crates, and the catch_unwind twin stays clean.
    let panic02: Vec<_> = findings.iter().filter(|(_, d)| d.rule == "PANIC02").collect();
    assert_eq!(panic02.len(), 1, "{findings:?}");
    assert_eq!(panic02[0].0, "crates/pmtbr/src/lib.rs");
    assert!(panic02[0].1.chain.iter().any(|s| s.file.starts_with("crates/numkit/")));
    let guarded_line = 13; // `pub fn run_guarded` in the pmtbr fixture
    assert!(
        !findings.iter().any(|(p, d)| p.contains("pmtbr") && d.line == guarded_line),
        "catch_unwind-contained entry point must stay clean: {findings:?}"
    );
}

/// Fixture findings disappear entirely when the same file is classified
/// as test code — the blanket exemption the real walk applies to
/// anything under `tests/`.
#[test]
fn fixtures_are_exempt_as_test_files() {
    let src = fs::read_to_string(fixtures_dir().join("panic01.rs")).expect("fixture");
    let diags = lint_source(FileClass::TestFile, &src);
    assert!(diags.iter().all(|d| d.rule == "LINT00"), "only LINT00 survives exemption: {diags:?}");
}

/// The shipped tree is clean: analyzing the real workspace — per-file
/// rules *and* the interprocedural PANIC02/DET03/SAFE01 pass — with the
/// checked-in baseline yields zero non-baselined findings. This is the
/// same invariant `scripts/check.sh` gates on, enforced from the tier-1
/// test suite so it cannot rot unnoticed.
#[test]
fn workspace_is_clean_under_baseline() {
    let root = numlint::walk::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let files = numlint::walk::workspace_rs_files(&root).expect("walk workspace");
    assert!(files.len() > 100, "workspace walk looks truncated: {} files", files.len());
    let mut analyses: BTreeMap<String, FileAnalysis> = BTreeMap::new();
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(root.join(rel)).expect("read source");
        analyses.insert(rel_str.clone(), analyze_file(&rel_str, &src));
    }
    let mut findings: Vec<(String, numlint::Diagnostic)> = Vec::new();
    for (path, fa) in &analyses {
        findings.extend(fa.diags.iter().cloned().map(|d| (path.clone(), d)));
    }
    findings.extend(workspace_diagnostics(&analyses));
    let baseline = match fs::read_to_string(root.join("numlint.baseline")) {
        Ok(text) => Baseline::parse(&text).expect("valid baseline"),
        Err(_) => Baseline::default(),
    };
    let (reported, _absorbed) = baseline.apply(findings);
    assert!(
        reported.is_empty(),
        "non-baselined findings in the shipped tree:\n{}",
        reported
            .iter()
            .map(|(p, d)| format!("{p}:{}:{} {} {}", d.line, d.col, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
