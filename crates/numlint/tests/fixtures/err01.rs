// ERR01 fixture: panic! inside Result-returning pub fns.
// Linted as crates/numkit/src (all rules in scope).
// Note: every panic! in non-test code also fires PANIC01 — the expected
// file lists both; suppressing one rule must not hide the other.

pub fn result_fn_with_panic(bad: bool) -> Result<u32, String> {
    if bad {
        panic!("should have been Err");
    }
    Ok(1)
}

pub fn result_fn_clean(bad: bool) -> Result<u32, String> {
    if bad {
        return Err("propagated".to_string());
    }
    Ok(2)
}

fn private_result_fn(bad: bool) -> Result<u32, String> {
    // PANIC01 fires, ERR01 does not (not pub).
    if bad {
        panic!("private");
    }
    Ok(3)
}

pub fn unit_fn_with_panic(bad: bool) {
    // PANIC01 fires, ERR01 does not (no Result in the signature).
    if bad {
        panic!("unit");
    }
}

pub fn closure_bound_in_params(f: impl Fn() -> Result<u32, String>) -> u32 {
    // The `-> Result` belongs to the closure bound inside the parameter
    // parens, not to this fn: ERR01 must not fire (PANIC01 still does).
    match f() {
        Ok(v) => v,
        Err(_) => panic!("closure bound"),
    }
}

pub fn closure_bound_in_where<F>(f: F) -> u32
where
    F: Fn() -> Result<u32, String>,
{
    // Same for `-> Result` after `where`: ERR01 must not fire.
    match f() {
        Ok(v) => v,
        Err(_) => panic!("where bound"),
    }
}
