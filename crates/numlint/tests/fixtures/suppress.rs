// Suppression fixture: numlint:allow placement, multi-rule lists, and
// malformed allows (LINT00).
// Linted as crates/numkit/src (all rules in scope).

fn same_line_allow(x: Option<u32>) -> u32 {
    x.unwrap() // numlint:allow(PANIC01) caller guarantees Some
}

fn previous_line_allow(x: Option<u32>) -> u32 {
    // numlint:allow(PANIC01) caller guarantees Some
    x.unwrap()
}

fn multi_rule_allow(n: usize, w: f64) -> bool {
    // numlint:allow(FLOAT01, FLOAT02) sentinel check on an exact small integer value
    n as f64 == w
}

fn allow_covers_only_its_line(x: Option<u32>, y: Option<u32>) -> u32 {
    let a = x.unwrap(); // numlint:allow(PANIC01) first call is guarded
    let b = y.unwrap();
    a + b
}

fn wrong_rule_does_not_suppress(x: Option<u32>) -> u32 {
    x.unwrap() // numlint:allow(DET01) suppressing the wrong rule
}

fn missing_reason(x: Option<u32>) -> u32 {
    x.unwrap() // numlint:allow(PANIC01)
}

fn unknown_rule(x: Option<u32>) -> u32 {
    x.unwrap() // numlint:allow(NOPE99) no such rule
}
