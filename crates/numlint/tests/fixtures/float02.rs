// FLOAT02 fixture: bare lossy casts in kernel crates.
// Linted as crates/numkit/src (FLOAT02 in scope).

fn lossy_casts(x: f64, n: usize) -> (usize, f64) {
    let i = x as usize;
    let v = n as f64;
    (i, v)
}

fn exact_casts_are_fine(n: u32, i: usize) -> (u64, u32) {
    // Only `as usize` / `as f64` are in the rule's scope.
    let a = n as u64;
    let b = i as u32;
    (a, b)
}

fn allowed_with_reason(n: usize) -> f64 {
    n as f64 // numlint:allow(FLOAT02) matrix dims are << 2^53, cast is exact
}

#[cfg(test)]
mod tests {
    fn casts_in_tests_are_exempt() {
        let _ = 3.7 as usize;
    }
}
