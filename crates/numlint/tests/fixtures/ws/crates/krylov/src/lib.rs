//! Fixture: missing `#![forbid(unsafe_code)]` — SAFE01 fires.

pub fn arnoldi() {}
