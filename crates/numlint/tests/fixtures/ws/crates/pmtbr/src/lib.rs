#![forbid(unsafe_code)]
//! Fixture: pipeline entry points for the interprocedural rules.

/// PANIC02: reaches `.unwrap()` two crates away through `compress`.
pub fn run() -> Result<(), Error> {
    numkit::compress();
    Ok(())
}

/// Clean: the same callee, but contained by `catch_unwind` — the
/// panic-class bits must not cross the boundary.
pub fn run_guarded() -> Result<(), Error> {
    let _ = catch_unwind(AssertUnwindSafe(|| numkit::compress()));
    Ok(())
}

/// Clean: not Result-returning, so PANIC02 does not apply.
pub fn run_infallible() {
    numkit::compress();
}
