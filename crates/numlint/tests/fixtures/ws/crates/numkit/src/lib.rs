#![forbid(unsafe_code)]
//! Fixture: the middle of the panic chain (also a PANIC01 site).

pub fn compress() {
    jacobi_step();
}

fn jacobi_step() {
    let x: Option<u32> = None;
    let _ = x.unwrap();
}
