#![forbid(unsafe_code)]
//! Fixture: the `WallClock` carve-out — sanctioned clock reads.

pub struct WallClock;

impl WallClock {
    pub fn now(&self) -> u64 {
        let _ = Instant::now();
        0
    }
}
