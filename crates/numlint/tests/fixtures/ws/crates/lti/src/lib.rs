#![forbid(unsafe_code)]
//! Fixture: DET03 — a library fn reaching the wall clock via bench.

pub fn calibrate() {
    bench::stamp();
}
