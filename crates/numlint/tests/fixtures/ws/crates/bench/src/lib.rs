#![forbid(unsafe_code)]
//! Fixture: bench may read the clock; callers outside bench may not.

pub fn stamp() -> u64 {
    let t = Instant::now();
    let _ = t;
    0
}
