// DET01 fixture: HashMap/HashSet iteration is nondeterministic.
// Linted as crates/numkit/src (all rules in scope).
use std::collections::{BTreeMap, HashMap, HashSet};

fn sweep_order(m: &HashMap<String, usize>) -> Vec<usize> {
    let mut out = Vec::new();
    for (_k, v) in m {
        out.push(*v);
    }
    let _ = m.keys();
    let _ = m.values();
    out
}

fn inferred_binding() {
    let mut seen = HashSet::new();
    seen.insert(3usize);
    for s in &seen {
        let _ = s;
    }
    let _ = seen.iter();
    let mut dying = HashSet::new();
    dying.insert(1usize);
    dying.drain();
}

fn ordered_is_fine() {
    let b: BTreeMap<usize, usize> = BTreeMap::new();
    for (_k, _v) in &b {}
    let _ = b.keys();
    let v = vec![1, 2, 3];
    let _ = v.iter();
    for x in &v {
        let _ = x;
    }
}

fn sorted_drain_is_fine(m: &HashMap<String, usize>) -> Vec<(String, usize)> {
    // Collect-then-sort is the sanctioned escape hatch; the collect
    // itself must be suppressed with a reason.
    let mut pairs: Vec<(String, usize)> =
        m.iter().map(|(k, v)| (k.clone(), *v)).collect(); // numlint:allow(DET01) order fixed by the sort below
    pairs.sort();
    pairs
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    fn in_tests_is_exempt(m: &HashMap<u32, u32>) {
        for (_k, _v) in m {}
        let _ = m.keys();
    }
}
