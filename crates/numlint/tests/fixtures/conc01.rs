//! CONC01 fixture: `static mut` and non-Relaxed atomic orderings.

use std::sync::atomic::{AtomicU64, Ordering};

static mut LEGACY_COUNTER: u64 = 0;

static SANCTIONED: AtomicU64 = AtomicU64::new(0);

static PLAIN: u64 = 3; // plain static: fine

fn bump() {
    SANCTIONED.fetch_add(1, Ordering::Relaxed); // Relaxed: fine
}

fn drifted(a: &AtomicU64) -> u64 {
    a.load(Ordering::SeqCst)
}

fn published(a: &AtomicU64) {
    a.store(1, Ordering::Release);
}

fn handoff(a: &AtomicU64) -> u64 {
    a.load(Ordering::Acquire) // numlint:allow(CONC01) fixture: justified acquire handoff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let a = AtomicU64::new(0);
        let _ = a.load(Ordering::SeqCst);
    }
}
