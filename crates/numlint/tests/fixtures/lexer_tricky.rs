// Lexer fixture: rule-relevant text hidden in strings and comments
// must NOT fire; real code after the decoys still must.
// Linted as crates/numkit/src (all rules in scope).

// decoy in a line comment: x.unwrap() panic!("no") Instant::now()

/* decoy in a block comment: m.keys() == 1.0 as usize
   /* nested block: SystemTime::now() .expect("hidden") */
   still inside the outer comment: todo!()
*/

/// Doc-comment decoy: call `.unwrap()` and compare `x == 1.5` freely.
pub fn doc_decoy() {}

fn string_decoys() -> Vec<String> {
    vec![
        "x.unwrap() and panic!(\"inside string\")".to_string(),
        "Instant::now() == 1.0".to_string(),
        r#"raw string: m.iter() .expect("raw") as usize"#.to_string(),
        r##"fenced raw: unimplemented!() "# still inside "## .to_string(),
        String::from_utf8_lossy(b"byte string: todo!() as f64").into_owned(),
    ]
}

fn char_and_lifetime_soup<'a>(s: &'a str) -> (&'a str, char, u8) {
    // `'a` lifetimes must not be mistaken for unterminated chars (which
    // would swallow the rest of the file, hiding the finding below).
    let c = '\'';
    let b = b'"';
    let _ = ('x', '\u{41}', '\n');
    (s, c, b)
}

fn the_real_finding_after_all_decoys(x: Option<u32>) -> u32 {
    x.unwrap()
}
