// DET02 fixture: wall-clock reads outside crates/bench.
// Linted as crates/numkit/src (all rules in scope).

fn clock_reads() {
    let t0 = std::time::Instant::now();
    let _ = t0.elapsed();
    let now = std::time::SystemTime::now();
    let _ = now.duration_since(std::time::UNIX_EPOCH);
}

fn duration_values_are_fine() {
    let d = std::time::Duration::from_millis(3);
    std::thread::sleep(d);
}

fn allowed_with_reason() {
    let _t = std::time::Instant::now(); // numlint:allow(DET02) cold-start probe, never feeds results
}

#[cfg(test)]
mod tests {
    fn timing_in_tests_is_exempt() {
        let _ = std::time::Instant::now();
    }
}
