// PANIC01 fixture: panicking shortcuts in library code.
// Linted as crates/numkit/src (all rules in scope).

fn shortcuts(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("always ok");
    if a + b > 100 {
        panic!("overflowed the budget");
    }
    a + b
}

fn stubs() {
    todo!()
}

fn more_stubs() {
    unimplemented!()
}

fn non_panicking_cousins(x: Option<u32>, r: Result<u32, ()>) -> u32 {
    // unwrap_or / expect_err are different identifiers and must not fire.
    let a = x.unwrap_or(0);
    let b = r.map_err(|_| ()).unwrap_or_default();
    a + b
}

fn allowed_with_reason(x: Option<u32>) -> u32 {
    x.unwrap() // numlint:allow(PANIC01) invariant: caller checked is_some
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        let x: Option<u32> = Some(1);
        let _ = x.unwrap();
        panic!("test panics are fine");
    }
}
