// FLOAT01 fixture: exact float comparisons.
// Linted as crates/numkit/src (all rules in scope).

fn literal_comparisons(x: f64) -> bool {
    let hit = x == 1.0;
    let miss = 2.5e-3 != x;
    hit || miss
}

fn known_float_idents(x: f64, y: f64) -> bool {
    x != y
}

fn inferred_float_binding() -> bool {
    let scale = 1.5;
    let other = 3.0;
    scale == other
}

fn zero_guards_are_fine(pivot: f64) -> bool {
    // Exact ±0.0 tests are the idiomatic structural-zero / NaN guard.
    pivot == 0.0 || pivot != -0.0 || 0.0 == pivot
}

fn integers_are_fine(n: usize, m: usize) -> bool {
    n == m && n != 3
}

fn scoping_prevents_poisoning() -> bool {
    // `s` is a float only inside `inferred_float_binding`-style scopes;
    // here it is an integer index and must not fire.
    let s = 7usize;
    let piv_row = 9usize;
    s == piv_row
}

fn sibling_scope_declares_float() {
    let s = 1.0;
    let _ = s;
}

fn allowed_with_reason(w: f64) -> bool {
    w == 1.0 // numlint:allow(FLOAT01) sentinel: exactly-1.0 means "never renormalized"
}
