//! A hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The tokenizer understands everything that can *hide* rule-relevant
//! text from a naive substring scan: line and (nested) block comments,
//! string literals with escapes, raw strings with arbitrary `#` fences,
//! byte strings, char/byte-char literals, lifetimes, and numeric
//! literals with suffixes. It deliberately does **not** build a syntax
//! tree — rules work on the flat token stream plus position data, which
//! keeps the analyzer small and its failure modes obvious.
//!
//! Comments are not discarded: they are collected separately so the
//! engine can parse `numlint:allow(...)` suppressions out of them.

/// Kinds of tokens the rules can see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `let`, `HashMap`, `unwrap`, ...).
    Ident(String),
    /// Lifetime such as `'a` (rules never match these, but the lexer
    /// must distinguish them from char literals).
    Lifetime(String),
    /// Integer literal, raw text including any suffix (`42`, `0xff_u32`).
    Int(String),
    /// Float literal, raw text including any suffix (`1.5`, `1e-9`, `2f64`).
    Float(String),
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`). The
    /// payload is the *raw source text* of the literal.
    Str(String),
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char(String),
    /// Punctuation / operator. Multi-char operators that matter to the
    /// rules (`==`, `!=`, `::`, `->`, `=>`, `..`) are fused into one
    /// token; everything else is a single character.
    Punct(&'static str),
}

/// A token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub line: usize,
    pub col: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokKind::Punct(q) if *q == p)
    }

    /// True if this token is the identifier `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == id)
    }
}

/// A comment with the line it starts on. Block comments spanning
/// several lines are recorded once, at their opening line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: usize,
    /// Comment text without the `//` / `/*` fences.
    pub text: String,
    /// True for `//…` comments (suppressions must be line comments or
    /// single-line block comments; this flag lets the engine decide).
    pub is_line: bool,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. The lexer never fails: malformed input degrades to
/// single-character punctuation tokens rather than aborting the lint
/// run, so one broken file cannot hide findings in the rest.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                let start = c.pos;
                while !c.eof() && c.peek() != Some(b'\n') {
                    c.bump();
                }
                let text = String::from_utf8_lossy(&c.src[start + 2..c.pos]).into_owned();
                out.comments.push(Comment { line, text, is_line: true });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 && !c.eof() {
                    if c.peek() == Some(b'/') && c.peek_at(1) == Some(b'*') {
                        depth += 1;
                        c.bump();
                        c.bump();
                    } else if c.peek() == Some(b'*') && c.peek_at(1) == Some(b'/') {
                        depth -= 1;
                        c.bump();
                        c.bump();
                    } else {
                        c.bump();
                    }
                }
                let end = c.pos.saturating_sub(2).max(start + 2);
                let text = String::from_utf8_lossy(&c.src[start + 2..end]).into_owned();
                out.comments.push(Comment { line, text, is_line: false });
            }
            b'"' => {
                let lit = lex_string(&mut c);
                out.tokens.push(Token { kind: TokKind::Str(lit), line, col });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(&c) => {
                let kind = lex_prefixed_literal(&mut c);
                out.tokens.push(Token { kind, line, col });
            }
            b'\'' => {
                let kind = lex_quote(&mut c);
                out.tokens.push(Token { kind, line, col });
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                while c.peek().is_some_and(is_ident_cont) {
                    c.bump();
                }
                let text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
                out.tokens.push(Token { kind: TokKind::Ident(text), line, col });
            }
            _ if b.is_ascii_digit() => {
                let kind = lex_number(&mut c);
                out.tokens.push(Token { kind, line, col });
            }
            _ => {
                let kind = lex_punct(&mut c);
                out.tokens.push(Token { kind, line, col });
            }
        }
    }
    out
}

/// True if the cursor sits on `r"`, `r#`, `b"`, `b'`, `br"`, `br#`.
fn starts_raw_or_byte_literal(c: &Cursor) -> bool {
    match (c.peek(), c.peek_at(1)) {
        (Some(b'r'), Some(b'"' | b'#')) => true,
        (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'b'), Some(b'r')) => matches!(c.peek_at(2), Some(b'"' | b'#')),
        _ => false,
    }
}

/// Lexes literals introduced by `r`/`b`/`br` prefixes. The cursor is on
/// the prefix; `starts_raw_or_byte_literal` already validated the shape.
fn lex_prefixed_literal(c: &mut Cursor) -> TokKind {
    let start = c.pos;
    let mut raw = false;
    if c.peek() == Some(b'b') {
        c.bump();
        if c.peek() == Some(b'r') {
            raw = true;
            c.bump();
        }
    } else if c.peek() == Some(b'r') {
        raw = true;
        c.bump();
    }
    if raw {
        // r####"…"#### — count the fence, then scan for `"` + fence.
        let mut hashes = 0usize;
        while c.peek() == Some(b'#') {
            hashes += 1;
            c.bump();
        }
        c.bump(); // opening quote
        loop {
            match c.bump() {
                None => break,
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && c.peek() == Some(b'#') {
                        seen += 1;
                        c.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        TokKind::Str(String::from_utf8_lossy(&c.src[start..c.pos]).into_owned())
    } else if c.peek() == Some(b'\'') {
        // b'x' byte char.
        c.bump();
        consume_char_body(c);
        TokKind::Char(String::from_utf8_lossy(&c.src[start..c.pos]).into_owned())
    } else {
        // b"…" byte string.
        let lit = lex_string(c);
        TokKind::Str(format!("b{lit}"))
    }
}

/// Lexes a `"…"` string with escapes; cursor on the opening quote.
/// Returns the raw source text including quotes.
fn lex_string(c: &mut Cursor) -> String {
    let start = c.pos;
    c.bump();
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
    String::from_utf8_lossy(&c.src[start..c.pos]).into_owned()
}

/// Consumes the body of a char literal after the opening `'`, through
/// the closing `'`.
fn consume_char_body(c: &mut Cursor) {
    match c.bump() {
        Some(b'\\') => {
            c.bump();
            // \u{…} escapes contain several chars before the close quote.
            while c.peek().is_some() && c.peek() != Some(b'\'') {
                c.bump();
            }
            c.bump();
        }
        Some(_) => {
            c.bump(); // closing quote
        }
        None => {}
    }
}

/// Disambiguates `'a` (lifetime) from `'x'` (char literal); cursor is
/// on the `'`.
fn lex_quote(c: &mut Cursor) -> TokKind {
    let start = c.pos;
    // Lifetime iff `'` + ident-start and the char after the identifier
    // is NOT a closing `'`. `'_'` and `'a'` are chars; `'a` and `'static`
    // are lifetimes.
    let next = c.peek_at(1);
    if next.is_some_and(is_ident_start) {
        let mut off = 2;
        while c.peek_at(off).is_some_and(is_ident_cont) {
            off += 1;
        }
        if c.peek_at(off) != Some(b'\'') {
            c.bump(); // '
            for _ in 1..off {
                c.bump();
            }
            let text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
            return TokKind::Lifetime(text);
        }
    }
    c.bump();
    consume_char_body(c);
    TokKind::Char(String::from_utf8_lossy(&c.src[start..c.pos]).into_owned())
}

/// Lexes a numeric literal; cursor on the first digit.
fn lex_number(c: &mut Cursor) -> TokKind {
    let start = c.pos;
    let mut is_float = false;
    if c.peek() == Some(b'0') && matches!(c.peek_at(1), Some(b'x' | b'o' | b'b')) {
        c.bump();
        c.bump();
        while c.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            c.bump();
        }
        return TokKind::Int(String::from_utf8_lossy(&c.src[start..c.pos]).into_owned());
    }
    while c.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        c.bump();
    }
    // Fractional part: `1.5` yes; `1..n` no (range); `1.method()` no.
    if c.peek() == Some(b'.') {
        match c.peek_at(1) {
            Some(d) if d.is_ascii_digit() => {
                is_float = true;
                c.bump();
                while c.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                    c.bump();
                }
            }
            Some(b'.') => {}
            Some(d) if is_ident_start(d) => {}
            _ => {
                // Trailing-dot float like `1.`.
                is_float = true;
                c.bump();
            }
        }
    }
    // Exponent.
    if matches!(c.peek(), Some(b'e' | b'E')) {
        let sign = matches!(c.peek_at(1), Some(b'+' | b'-'));
        let digit_off = if sign { 2 } else { 1 };
        if c.peek_at(digit_off).is_some_and(|b| b.is_ascii_digit()) {
            is_float = true;
            c.bump();
            if sign {
                c.bump();
            }
            while c.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                c.bump();
            }
        }
    }
    // Type suffix (`u32`, `f64`, ...). An `f32`/`f64` suffix forces float.
    if c.peek().is_some_and(is_ident_start) {
        let sfx_start = c.pos;
        while c.peek().is_some_and(is_ident_cont) {
            c.bump();
        }
        let sfx = &c.src[sfx_start..c.pos];
        if sfx == b"f32" || sfx == b"f64" {
            is_float = true;
        }
    }
    let text = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
    if is_float {
        TokKind::Float(text)
    } else {
        TokKind::Int(text)
    }
}

/// Lexes punctuation, fusing the multi-char operators rules care about.
fn lex_punct(c: &mut Cursor) -> TokKind {
    let two = |c: &Cursor| {
        let a = c.peek()?;
        let b = c.peek_at(1)?;
        Some([a, b])
    };
    if let Some(pair) = two(c) {
        let fused: Option<&'static str> = match &pair {
            b"==" => Some("=="),
            b"!=" => Some("!="),
            b"::" => Some("::"),
            b"->" => Some("->"),
            b"=>" => Some("=>"),
            b".." => Some(".."),
            b"<=" => Some("<="),
            b">=" => Some(">="),
            b"&&" => Some("&&"),
            b"||" => Some("||"),
            _ => None,
        };
        if let Some(op) = fused {
            c.bump();
            c.bump();
            return TokKind::Punct(op);
        }
    }
    let b = c.bump().unwrap_or(b'?');
    TokKind::Punct(punct_str(b))
}

/// Maps a single punctuation byte to a static string (avoids per-token
/// allocation for the most common token kind).
fn punct_str(b: u8) -> &'static str {
    match b {
        b'(' => "(",
        b')' => ")",
        b'{' => "{",
        b'}' => "}",
        b'[' => "[",
        b']' => "]",
        b'<' => "<",
        b'>' => ">",
        b',' => ",",
        b';' => ";",
        b':' => ":",
        b'.' => ".",
        b'=' => "=",
        b'!' => "!",
        b'&' => "&",
        b'|' => "|",
        b'+' => "+",
        b'-' => "-",
        b'*' => "*",
        b'/' => "/",
        b'%' => "%",
        b'#' => "#",
        b'?' => "?",
        b'@' => "@",
        b'$' => "$",
        b'^' => "^",
        b'~' => "~",
        b'\\' => "\\",
        _ => "\u{fffd}",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn comments_hide_tokens_but_are_collected() {
        let l = lex("let x = 1; // unwrap() here\n/* panic!() */ let y = 2;");
        assert!(idents("// unwrap()").is_empty());
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("unwrap"));
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner unwrap() */ still comment */ let z = 3;");
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(l.tokens.iter().any(|t| t.is_ident("z")));
    }

    #[test]
    fn strings_and_raw_strings_hide_tokens() {
        let l = lex(r##"let s = "unwrap()"; let r = r#"panic!(" quote")"#; let after = 1;"##);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(l.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; let u = '\\u{41}'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> =
            l.tokens.iter().filter(|t| matches!(t.kind, TokKind::Char(_))).collect();
        assert_eq!(chars.len(), 3);
        assert!(l.tokens.iter().any(|t| t.is_ident("u")));
    }

    #[test]
    fn numbers_float_vs_int() {
        let l = lex("let a = 1; let b = 1.5; let c = 1e-9; let d = 2f64; let e = 0xff; let r = 1..9; let g = 3.0e2;");
        let floats: Vec<String> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Float(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec!["1.5", "1e-9", "2f64", "3.0e2"]);
        let ints: Vec<String> = l
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Int(s) => Some(s.clone()),
                _ => None,
            })
            .collect();
        assert!(ints.contains(&"0xff".to_string()));
        assert!(ints.contains(&"1".to_string()) && ints.contains(&"9".to_string()));
    }

    #[test]
    fn fused_operators_and_positions() {
        let l = lex("a == b\n  c != d");
        let eq = l.tokens.iter().find(|t| t.is_punct("==")).expect("==");
        assert_eq!((eq.line, eq.col), (1, 3));
        let ne = l.tokens.iter().find(|t| t.is_punct("!=")).expect("!=");
        assert_eq!((ne.line, ne.col), (2, 5));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let b = b\"unwrap()\"; let c = b'x'; let r = br##\"panic!()\"##; let tail = 7;";
        let l = lex(src);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(l.tokens.iter().any(|t| t.is_ident("tail")));
    }
}
