//! The numlint rule set.
//!
//! | ID      | Scope                         | Checks                                            |
//! |---------|-------------------------------|---------------------------------------------------|
//! | DET01   | workspace, non-test           | `HashMap`/`HashSet` iteration (unordered drains)  |
//! | DET02   | workspace minus `crates/bench`| wall-clock reads (`Instant`, `SystemTime`, …); allowed only inside `obs::WallClock` / `serve::Deadline` items |
//! | PANIC01 | seven library crates' `src/`  | `unwrap()`/`expect(`/`panic!`/`todo!`/`unimplemented!` |
//! | FLOAT01 | workspace, non-test           | `==`/`!=` on float operands (non-zero literals)   |
//! | FLOAT02 | `numkit`/`sparsekit` `src/`   | bare `as usize`/`as f64` casts                    |
//! | ERR01   | seven library crates' `src/`  | `panic!` inside `Result`-returning pub fns        |
//! | CONC01  | workspace, non-test           | `static mut`; atomic orderings other than Relaxed |
//!
//! Three more rules are *interprocedural* and live in
//! `engine::workspace_diagnostics` because they need the whole-workspace
//! call graph, not one file: PANIC02 (pub Result fns that transitively
//! reach a panic site), DET03 (transitive wall-clock reachability), and
//! SAFE01 (`#![forbid(unsafe_code)]` pinned in every library lib.rs).
//!
//! All rules are token-stream heuristics, tuned to this codebase's
//! idiom; they prefer a rare false positive (silenced with a reasoned
//! `numlint:allow`) over false negatives on the invariants PR 1 and
//! PR 2 promised.

use crate::engine::{Diagnostic, FileClass, FileContext};
use crate::lexer::{TokKind, Token};
use std::collections::BTreeSet;

/// A single lint rule.
pub struct Rule {
    /// Stable identifier (`DET01`, …) used in output, allows, baseline.
    pub id: &'static str,
    /// One-line description for `numlint rules`.
    pub summary: &'static str,
    /// Whether the rule applies to a file of the given class.
    pub applies: fn(&FileClass) -> bool,
    /// Appends findings for one file.
    pub check: fn(&FileContext, &mut Vec<Diagnostic>),
}

/// All rules, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "DET01",
        summary: "no HashMap/HashSet iteration outside test code (nondeterministic order)",
        applies: |_| true,
        check: det01,
    },
    Rule {
        id: "DET02",
        summary: "no wall-clock reads (Instant/SystemTime/UNIX_EPOCH) outside crates/bench \
                  (carve-outs: obs::WallClock and serve::Deadline items)",
        applies: |c| !c.is_bench(),
        check: det02,
    },
    Rule {
        id: "PANIC01",
        summary: "no unwrap/expect/panic!/todo!/unimplemented! in library crates",
        applies: FileClass::is_library_src,
        check: panic01,
    },
    Rule {
        id: "FLOAT01",
        summary: "no ==/!= between float-typed expressions (non-zero literals)",
        applies: |_| true,
        check: float01,
    },
    Rule {
        id: "FLOAT02",
        summary: "no bare `as usize`/`as f64` casts in numkit/sparsekit kernels",
        applies: FileClass::is_kernel_crate,
        check: float02,
    },
    Rule {
        id: "ERR01",
        summary: "Result-returning pub fns in library crates must not contain panic!",
        applies: FileClass::is_library_src,
        check: err01,
    },
    Rule {
        id: "CONC01",
        summary: "no `static mut`; atomic loads/stores use Ordering::Relaxed only",
        applies: |_| true,
        check: conc01,
    },
];

/// The interprocedural rules implemented in
/// `engine::workspace_diagnostics`: (id, summary) pairs for the
/// `numlint rules` listing and allow validation.
pub const WORKSPACE_RULES: &[(&str, &str)] = &[
    (
        "PANIC02",
        "pub Result-returning fns in library crates must not transitively reach a panic \
         site (diagnostics carry the witness call chain)",
    ),
    (
        "DET03",
        "no fn outside crates/bench and obs::WallClock may transitively reach a \
         wall-clock read",
    ),
    ("SAFE01", "every library crate's lib.rs declares #![forbid(unsafe_code)]"),
];

/// True if `id` names a rule (per-file, workspace, or the meta-rule
/// LINT00) — used to validate `numlint:allow(...)` lists.
pub fn is_known_rule(id: &str) -> bool {
    canonical_rule_id(id).is_some()
}

/// Interns a rule name back to its `&'static str` id (the cache stores
/// rule ids as plain text and `Diagnostic::rule` wants the static str).
pub fn canonical_rule_id(id: &str) -> Option<&'static str> {
    if id == "LINT00" {
        return Some("LINT00");
    }
    if let Some(r) = RULES.iter().find(|r| r.id == id) {
        return Some(r.id);
    }
    WORKSPACE_RULES.iter().find(|(w, _)| *w == id).map(|(w, _)| *w)
}

fn diag(out: &mut Vec<Diagnostic>, t: &Token, rule: &'static str, message: String) {
    out.push(Diagnostic { line: t.line, col: t.col, rule, message, chain: Vec::new() });
}

// ---------------------------------------------------------------------------
// DET01 — HashMap/HashSet iteration
// ---------------------------------------------------------------------------

const UNORDERED_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "retain"];

/// Collects identifiers bound to `HashMap`/`HashSet` in this file:
/// `let [mut] x = HashMap::…`, `let [mut] x: HashMap<…>`, and struct
/// fields / fn params `x: HashMap<…>`.
fn hash_bound_idents(toks: &[Token]) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // `x : [&][mut][&'a ] HashMap` (typed binding, field, or param).
        let mut j = i;
        while j >= 1
            && (toks[j - 1].is_punct("&")
                || toks[j - 1].is_ident("mut")
                || matches!(toks[j - 1].kind, TokKind::Lifetime(_)))
        {
            j -= 1;
        }
        if j >= 2 && toks[j - 1].is_punct(":") {
            if let Some(name) = toks[j - 2].ident() {
                set.insert(name.to_string());
            }
        }
        // `let [mut] x = HashMap ::` (inferred binding).
        if i >= 2 && toks[i - 1].is_punct("=") {
            if let Some(name) = toks[i - 2].ident() {
                let before = if i >= 3 { toks[i - 3].ident() } else { None };
                if matches!(before, Some("let" | "mut")) {
                    set.insert(name.to_string());
                }
            }
        }
    }
    set
}

fn det01(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    let hashes = hash_bound_idents(toks);
    if hashes.is_empty() {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        // `name . method (` where `name` is hash-bound.
        if let Some(m) = t.ident() {
            if UNORDERED_ITER_METHODS.contains(&m)
                && i >= 2
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                if let Some(name) = toks[i - 2].ident() {
                    if hashes.contains(name) {
                        diag(
                            out,
                            t,
                            "DET01",
                            format!(
                                "`.{m}()` on `{name}` iterates a HashMap/HashSet in \
                                 nondeterministic order; use BTreeMap/BTreeSet or sort first"
                            ),
                        );
                    }
                }
            }
        }
        // `for pat in [&][mut][self.] name {`.
        if t.is_ident("for") {
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct("(") | TokKind::Punct("[") => depth += 1,
                    TokKind::Punct(")") | TokKind::Punct("]") => depth -= 1,
                    TokKind::Ident(s) if s == "in" && depth == 0 => break,
                    TokKind::Punct("{") => {
                        j = toks.len();
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if j >= toks.len() {
                continue;
            }
            let mut k = j + 1;
            while toks.get(k).is_some_and(|x| {
                x.is_punct("&") || x.is_ident("mut") || x.is_ident("self") || x.is_punct(".")
            }) {
                k += 1;
            }
            if let Some(name_tok) = toks.get(k) {
                if let Some(name) = name_tok.ident() {
                    if hashes.contains(name) && toks.get(k + 1).is_some_and(|n| n.is_punct("{")) {
                        diag(
                            out,
                            name_tok,
                            "DET01",
                            format!(
                                "`for … in {name}` iterates a HashMap/HashSet in \
                                 nondeterministic order; use BTreeMap/BTreeSet or sort first"
                            ),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DET02 — wall-clock reads
// ---------------------------------------------------------------------------

/// Token-index extents (inclusive) of items that *mention* the
/// crate's sanctioned clock type in their header — `struct WallClock
/// {…}`, `impl WallClock {…}`, `impl Clock for WallClock {…}` in obs,
/// and the same shapes for `Deadline` in serve. Inside these, and only
/// these, the owning crate may read the wall clock:
/// `FileClass::clock_carveout_type` names the one sanctioned type per
/// crate (obs's pluggable trace clock; serve's socket-timeout
/// deadline).
pub(crate) fn wallclock_extents(toks: &[Token], sanctioned: &str) -> Vec<(usize, usize)> {
    let mut extents = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("struct") || t.is_ident("impl")) {
            continue;
        }
        // Scan the item header up to its body `{` (or `;` for a unit
        // struct), checking whether `WallClock` appears in it.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut mentions = false;
        let mut open = None;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct("(") | TokKind::Punct("[") => depth += 1,
                TokKind::Punct(")") | TokKind::Punct("]") => depth -= 1,
                TokKind::Ident(s) if s == sanctioned => mentions = true,
                TokKind::Punct("{") if depth == 0 => {
                    open = Some(j);
                    break;
                }
                TokKind::Punct(";") if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let (Some(open), true) = (open, mentions) else { continue };
        let mut level = 0i32;
        for (m, u) in toks.iter().enumerate().skip(open) {
            if u.is_punct("{") {
                level += 1;
            } else if u.is_punct("}") {
                level -= 1;
                if level == 0 {
                    extents.push((i, m));
                    break;
                }
            }
        }
    }
    extents
}

fn det02(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    let carve_outs = match ctx.class.clock_carveout_type() {
        Some(name) => wallclock_extents(toks, name),
        None => Vec::new(),
    };
    for (i, t) in toks.iter().enumerate() {
        if let Some(id) = t.ident() {
            if matches!(id, "Instant" | "SystemTime" | "UNIX_EPOCH") {
                if carve_outs.iter().any(|&(s, e)| (s..=e).contains(&i)) {
                    continue;
                }
                diag(
                    out,
                    t,
                    "DET02",
                    format!(
                        "wall-clock source `{id}` outside crates/bench breaks reproducible \
                         sweeps; keep timing in the bench crate or behind the crate's \
                         sanctioned clock type (obs::WallClock / serve::Deadline) \
                         (Duration values are fine)"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PANIC01 — panicking calls in library crates
// ---------------------------------------------------------------------------

fn panic01(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        let hit = match id {
            // `.unwrap()` / `.expect(` — method position only, so
            // `unwrap_or`/`expect_err` (distinct ident tokens) and fns
            // merely *named* unwrap don't fire.
            "unwrap" | "expect" => {
                i >= 1
                    && toks[i - 1].is_punct(".")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            }
            "panic" | "todo" | "unimplemented" => {
                toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            }
            _ => false,
        };
        if hit {
            let call = if matches!(id, "unwrap" | "expect") {
                format!(".{id}()")
            } else {
                format!("{id}!")
            };
            diag(
                out,
                t,
                "PANIC01",
                format!(
                    "`{call}` in library code aborts callers that were promised NumError \
                     propagation; return an error (or baseline/allow with a reason)"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// FLOAT01 — exact float comparison
// ---------------------------------------------------------------------------

/// Parses a float literal's numeric value, ignoring `_` separators and
/// `f32`/`f64` suffixes. Returns `None` for unparseable text.
fn float_value(lit: &str) -> Option<f64> {
    let s: String = lit.chars().filter(|&c| c != '_').collect();
    let s = s.strip_suffix("f64").or_else(|| s.strip_suffix("f32")).unwrap_or(&s);
    let s = s.strip_suffix('.').unwrap_or(s);
    s.parse::<f64>().ok()
}

/// Float-typed identifier declarations with scope information, so a
/// `let s = 1.0…` in one function cannot poison an unrelated `s` in
/// another (single-letter locals are reused constantly in kernels).
struct FloatScopes {
    /// (declaration token index, identifier).
    decls: Vec<(usize, String)>,
    /// Function extents as token-index ranges, `fn` keyword through the
    /// body's closing brace. Nested fns yield nested ranges.
    extents: Vec<(usize, usize)>,
}

impl FloatScopes {
    fn build(toks: &[Token]) -> FloatScopes {
        let mut decls = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            // `name : f64` / `name : f32` (param, field, or typed let).
            if (t.is_ident("f64") || t.is_ident("f32")) && i >= 2 && toks[i - 1].is_punct(":") {
                if let Some(name) = toks[i - 2].ident() {
                    decls.push((i - 2, name.to_string()));
                }
            }
            // `let [mut] name = [-] <float literal>…`.
            if matches!(t.kind, TokKind::Float(_)) && i >= 2 {
                let mut j = i - 1;
                if toks[j].is_punct("-") && j >= 1 {
                    j -= 1;
                }
                if toks[j].is_punct("=") && j >= 2 {
                    if let Some(name) = toks[j - 1].ident() {
                        if matches!(toks[j - 2].ident(), Some("let" | "mut")) {
                            decls.push((j - 1, name.to_string()));
                        }
                    }
                }
            }
        }
        let mut extents = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("fn") {
                continue;
            }
            // Find the body `{` (stopping at `;` for trait decls), then
            // its matching `}` — same scan as ERR01.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut open = None;
            while j < toks.len() {
                match &toks[j].kind {
                    TokKind::Punct("(") | TokKind::Punct("[") => depth += 1,
                    TokKind::Punct(")") | TokKind::Punct("]") => depth -= 1,
                    TokKind::Punct("{") if depth == 0 => {
                        open = Some(j);
                        break;
                    }
                    TokKind::Punct(";") if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(open) = open else { continue };
            let mut level = 0i32;
            for (m, u) in toks.iter().enumerate().skip(open) {
                if u.is_punct("{") {
                    level += 1;
                } else if u.is_punct("}") {
                    level -= 1;
                    if level == 0 {
                        extents.push((i, m));
                        break;
                    }
                }
            }
        }
        FloatScopes { decls, extents }
    }

    /// Innermost fn extent containing token index `i`, if any.
    fn innermost(&self, i: usize) -> Option<(usize, usize)> {
        self.extents
            .iter()
            .filter(|(s, e)| (*s..=*e).contains(&i))
            .min_by_key(|(s, e)| e - s)
            .copied()
    }

    /// True if some declaration of `name` is visible at token index
    /// `use_idx`: the declaration's innermost fn extent (module scope if
    /// none) must contain the use site.
    fn is_float_at(&self, name: &str, use_idx: usize) -> bool {
        self.decls.iter().any(|(d, n)| {
            n == name
                && match self.innermost(*d) {
                    Some((s, e)) => (s..=e).contains(&use_idx),
                    None => true,
                }
        })
    }
}

fn float01(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    let floats = FloatScopes::build(toks);
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        // Literal on the right (allowing a unary minus)?
        let rhs = match toks.get(i + 1) {
            Some(n) if n.is_punct("-") => toks.get(i + 2),
            other => other,
        };
        let rhs_lit = rhs.and_then(|n| match &n.kind {
            TokKind::Float(s) => Some(s.as_str()),
            _ => None,
        });
        let lhs_lit = toks.get(i.wrapping_sub(1)).and_then(|p| match &p.kind {
            TokKind::Float(s) => Some(s.as_str()),
            _ => None,
        });
        let lhs_ident = i
            .checked_sub(1)
            .and_then(|j| toks[j].ident())
            .filter(|id| floats.is_float_at(id, i));
        let rhs_ident =
            toks.get(i + 1).and_then(|n| n.ident()).filter(|id| floats.is_float_at(id, i));

        let lit = lhs_lit.or(rhs_lit);
        let is_float_cmp = lit.is_some() || lhs_ident.is_some() || rhs_ident.is_some();
        if !is_float_cmp {
            continue;
        }
        // Exact comparison against ±0.0 is the idiomatic structural-zero
        // / NaN-rejecting guard throughout the LU/SVD kernels (see the
        // workspace clippy policy in Cargo.toml); only non-zero literal
        // and ident-vs-ident comparisons are suspect.
        if let Some(l) = lit {
            if float_value(l) == Some(0.0) {
                continue;
            }
        }
        let op = if t.is_punct("==") { "==" } else { "!=" };
        diag(
            out,
            t,
            "FLOAT01",
            format!(
                "exact `{op}` between float-typed expressions; compare with a tolerance \
                 (or total_cmp) — roundoff makes exact equality order-dependent"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// FLOAT02 — bare numeric casts in kernels
// ---------------------------------------------------------------------------

fn float02(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("as") {
            continue;
        }
        let Some(next) = toks.get(i + 1) else { continue };
        let target = match next.ident() {
            Some("usize") => "usize",
            Some("f64") => "f64",
            _ => continue,
        };
        let hazard = if target == "usize" {
            "truncates fractions and saturates on overflow"
        } else {
            "silently rounds integers above 2^53"
        };
        diag(
            out,
            t,
            "FLOAT02",
            format!(
                "bare `as {target}` cast in kernel code {hazard}; use a checked conversion \
                 or justify with `numlint:allow(FLOAT02) <why the range is safe>`"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// CONC01 — atomic-ordering discipline
// ---------------------------------------------------------------------------

/// The workspace's concurrency is confined to counters and the PR 7
/// work-budget guards: every atomic is an independent monotone counter,
/// so `Relaxed` is sufficient and anything stronger signals either an
/// accidental synchronization dependency (which deserves a channel or a
/// mutex, not ordering games) or cargo-culted `SeqCst`. `static mut` is
/// banned outright — `#![forbid(unsafe_code)]` already keeps it out of
/// the library crates, so this mostly guards build scripts and tools.
fn conc01(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("static") && toks.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
            diag(
                out,
                t,
                "CONC01",
                "`static mut` is unsynchronized shared state; use an atomic, a lock, or \
                 thread-local storage"
                    .to_string(),
            );
        }
        if let Some(ord) = t.ident() {
            if matches!(ord, "SeqCst" | "AcqRel" | "Acquire" | "Release")
                && i >= 2
                && toks[i - 1].is_punct("::")
                && toks[i - 2].is_ident("Ordering")
            {
                diag(
                    out,
                    t,
                    "CONC01",
                    format!(
                        "`Ordering::{ord}` drifts from the Relaxed-only discipline; the \
                         workspace's atomics are independent counters — if this one \
                         synchronizes data, use a channel or mutex instead"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ERR01 — panic! inside Result-returning pub fns
// ---------------------------------------------------------------------------

fn err01(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // `pub` (or `pub(crate)` etc.) within the few tokens before `fn`.
        let lead = i.saturating_sub(6);
        let is_pub = toks[lead..i].iter().any(|t| t.is_ident("pub"));
        let name = toks.get(i + 1).and_then(|t| t.ident()).unwrap_or("?").to_string();
        // Scan the signature up to the body `{` (or `;` for trait decls),
        // tracking only (), [] nesting — signatures hold no braces.
        // A `->` counts as the fn's return arrow only at paren depth 0
        // and before any `where` clause: closure bounds like
        // `impl Fn() -> Result<…>` sit inside parens, and where-clause
        // bounds come after `where`, so neither marks the fn itself as
        // Result-returning.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut arrow = false;
        let mut in_where = false;
        let mut returns_result = false;
        let mut body_open: Option<usize> = None;
        while j < toks.len() {
            match &toks[j].kind {
                TokKind::Punct("(") | TokKind::Punct("[") => depth += 1,
                TokKind::Punct(")") | TokKind::Punct("]") => depth -= 1,
                TokKind::Ident(s) if s == "where" && depth == 0 => in_where = true,
                TokKind::Punct("->") if depth == 0 && !in_where => arrow = true,
                TokKind::Ident(s) if arrow && !in_where && s == "Result" => {
                    returns_result = true
                }
                TokKind::Punct("{") if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                TokKind::Punct(";") if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        // Walk the body; flag `panic !`. Nested fn items reset the outer
        // fn scan anyway because we restart at every `fn` keyword, so a
        // panic! in a nested non-pub helper is attributed conservatively
        // to the enclosing pub fn too — that is deliberate: the caller
        // still sees an abort instead of an Err.
        let mut level = 0i32;
        let mut k = open;
        let mut end = toks.len();
        while k < toks.len() {
            match &toks[k].kind {
                TokKind::Punct("{") => level += 1,
                TokKind::Punct("}") => {
                    level -= 1;
                    if level == 0 {
                        end = k;
                        break;
                    }
                }
                TokKind::Ident(s)
                    if is_pub
                        && returns_result
                        && s == "panic"
                        && toks.get(k + 1).is_some_and(|n| n.is_punct("!")) =>
                {
                    diag(
                        out,
                        &toks[k],
                        "ERR01",
                        format!(
                            "pub fn `{name}` returns Result yet contains `panic!`; callers \
                             rely on Err propagation — return the error instead"
                        ),
                    );
                }
                _ => {}
            }
            k += 1;
        }
        // Continue scanning after the signature, *inside* the body, so
        // nested fns are each analyzed in their own right as well.
        i = open + 1;
        let _ = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{FileClass, FileContext};

    fn run(class: FileClass, src: &str) -> Vec<Diagnostic> {
        FileContext::new(class, src).run()
    }

    fn kernel(src: &str) -> Vec<Diagnostic> {
        run(FileClass::CrateSrc("numkit".into()), src)
    }

    #[test]
    fn det01_flags_map_iteration_and_not_btree() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                   let mut m: HashMap<String, usize> = HashMap::new();\n\
                   for (k, v) in &m {\n    let _ = (k, v);\n}\n\
                   let _ = m.keys();\n\
                   let b = std::collections::BTreeMap::<u32, u32>::new();\n\
                   for x in &b {}\n\
                   }\n";
        let d = kernel(src);
        let det: Vec<_> = d.iter().filter(|d| d.rule == "DET01").collect();
        assert_eq!(det.len(), 2, "{d:?}");
    }

    #[test]
    fn det02_flags_instant_outside_bench_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(kernel(src).iter().filter(|d| d.rule == "DET02").count(), 1);
        let bench = run(FileClass::CrateSrc("bench".into()), src);
        assert!(bench.iter().all(|d| d.rule != "DET02"));
        // Duration is a value type, not a clock: no finding.
        let dur = "fn f() { let d = std::time::Duration::from_millis(3); }";
        assert!(kernel(dur).iter().all(|d| d.rule != "DET02"));
    }

    #[test]
    fn det02_obs_carve_out_covers_wallclock_items_only() {
        let obs = |src: &str| run(FileClass::CrateSrc("obs".into()), src);
        let inside = "pub struct WallClock {\n    origin: std::time::Instant,\n}\n\
                      impl Clock for WallClock {\n    fn now(&mut self) -> u64 {\n        let _ = std::time::Instant::now();\n        0\n    }\n}\n";
        assert!(obs(inside).iter().all(|d| d.rule != "DET02"), "{:?}", obs(inside));
        // A wall-clock read anywhere else in obs is still a finding.
        let outside = "fn sneaky() { let t = std::time::Instant::now(); }";
        assert_eq!(obs(outside).iter().filter(|d| d.rule == "DET02").count(), 1);
        // The carve-out exists only for crates/obs: a WallClock-named
        // item in a kernel crate gets no exemption.
        let fake = "impl WallClock { fn f() { let t = std::time::Instant::now(); } }";
        assert_eq!(kernel(fake).iter().filter(|d| d.rule == "DET02").count(), 1);
    }

    #[test]
    fn panic01_applies_to_obs() {
        let src = "fn f(x: Option<u32>) { let _ = x.unwrap(); }";
        assert_eq!(
            run(FileClass::CrateSrc("obs".into()), src)
                .iter()
                .filter(|d| d.rule == "PANIC01")
                .count(),
            1
        );
    }

    #[test]
    fn panic01_scope_and_shape() {
        let src = "fn f(x: Option<u32>) { let _ = x.unwrap(); }";
        assert_eq!(kernel(src).iter().filter(|d| d.rule == "PANIC01").count(), 1);
        // unwrap_or is fine; cli crate is out of scope.
        assert!(kernel("fn f(x: Option<u32>) { let _ = x.unwrap_or(0); }")
            .iter()
            .all(|d| d.rule != "PANIC01"));
        assert!(run(FileClass::CrateSrc("cli".into()), src)
            .iter()
            .all(|d| d.rule != "PANIC01"));
    }

    #[test]
    fn float01_zero_exempt_nonzero_flagged() {
        assert!(kernel("fn f(x: f64) -> bool { x == 0.0 }")
            .iter()
            .all(|d| d.rule != "FLOAT01"));
        assert_eq!(
            kernel("fn f(x: f64) -> bool { x == 1.0 }")
                .iter()
                .filter(|d| d.rule == "FLOAT01")
                .count(),
            1
        );
        assert_eq!(
            kernel("fn f(x: f64, y: f64) -> bool { x != y }")
                .iter()
                .filter(|d| d.rule == "FLOAT01")
                .count(),
            1
        );
        // Int comparisons never fire.
        assert!(kernel("fn f(n: usize) -> bool { n == 3 }")
            .iter()
            .all(|d| d.rule != "FLOAT01"));
    }

    #[test]
    fn float02_only_in_kernel_crates() {
        let src = "fn f(n: usize) -> f64 { n as f64 }";
        assert_eq!(kernel(src).iter().filter(|d| d.rule == "FLOAT02").count(), 1);
        assert!(run(FileClass::CrateSrc("lti".into()), src)
            .iter()
            .all(|d| d.rule != "FLOAT02"));
    }

    #[test]
    fn err01_result_pub_fn_with_panic() {
        let src = "pub fn f() -> Result<(), E> { if bad { panic!(\"no\"); } Ok(()) }";
        assert_eq!(kernel(src).iter().filter(|d| d.rule == "ERR01").count(), 1);
        // Non-pub or non-Result fns don't fire ERR01 (PANIC01 still does).
        let private = "fn g() -> Result<(), E> { panic!(\"no\") }";
        assert!(kernel(private).iter().all(|d| d.rule != "ERR01"));
        let unit = "pub fn h() { panic!(\"no\") }";
        assert!(kernel(unit).iter().all(|d| d.rule != "ERR01"));
    }

    #[test]
    fn conc01_flags_static_mut_and_strong_orderings() {
        assert_eq!(
            kernel("static mut COUNTER: u64 = 0;")
                .iter()
                .filter(|d| d.rule == "CONC01")
                .count(),
            1
        );
        assert_eq!(
            kernel("fn f(a: &AtomicU64) { a.load(Ordering::SeqCst); }")
                .iter()
                .filter(|d| d.rule == "CONC01")
                .count(),
            1
        );
        // Relaxed is the sanctioned ordering; plain statics are fine.
        assert!(kernel("fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }")
            .iter()
            .all(|d| d.rule != "CONC01"));
        assert!(kernel("static LIMIT: u64 = 3;").iter().all(|d| d.rule != "CONC01"));
    }

    #[test]
    fn workspace_rule_ids_are_known() {
        for id in ["PANIC02", "DET03", "SAFE01", "CONC01", "LINT00"] {
            assert!(is_known_rule(id), "{id}");
            assert_eq!(canonical_rule_id(id), Some(id));
        }
        assert!(!is_known_rule("NOSUCH"));
    }

    #[test]
    fn suppressions_silence_rules() {
        let src = "fn f(x: Option<u32>) {\n\
                   let _ = x.unwrap(); // numlint:allow(PANIC01) test harness glue\n\
                   }";
        assert!(kernel(src).iter().all(|d| d.rule != "PANIC01"));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) { x.unwrap(); }\n}\n";
        assert!(kernel(src).is_empty());
    }
}
