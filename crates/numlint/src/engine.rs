//! Rule-engine plumbing: file classification, test-region detection,
//! `numlint:allow` suppression, diagnostic assembly, and the
//! workspace-level pass that runs the interprocedural rules (PANIC02 /
//! DET03 / SAFE01) over the call graph built from every file's
//! extracted symbols.

use crate::callgraph;
use crate::effects::{self, ChainStep};
use crate::lexer::{self, Lexed, TokKind};
use crate::rules::{self, RULES};
use crate::symbols::{self, FileSymbols, EFF_CLOCK, EFF_GATED_PANIC};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::RangeInclusive;

/// The crates whose public APIs promise `Result`-based error
/// propagation (PR 2); PANIC01/ERR01 apply only to their `src/` trees.
/// `obs` joined in PR 4: telemetry sits below every numeric crate, so a
/// panicking span would abort the very solvers it observes. `serve`
/// joined with the reduction service: a panicking daemon drops every
/// queued job, so its socket and codec paths must propagate errors.
pub const LIBRARY_CRATES: [&str; 8] =
    ["obs", "numkit", "sparsekit", "lti", "circuits", "krylov", "pmtbr", "serve"];

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/<name>/src/**` for one of the workspace crates.
    CrateSrc(String),
    /// Workspace-root `src/**` (the `pmtbr-suite` integration lib).
    RootSrc,
    /// Integration tests (`tests/**` anywhere) — exempt from all rules.
    TestFile,
    /// `examples/**` — exempt from all rules.
    Example,
}

impl FileClass {
    /// Classifies a workspace-relative path (forward slashes).
    pub fn classify(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        if parts.contains(&"tests") {
            return FileClass::TestFile;
        }
        if parts.contains(&"examples") {
            return FileClass::Example;
        }
        if parts.len() >= 3 && parts[0] == "crates" && parts[2] == "src" {
            return FileClass::CrateSrc(parts[1].to_string());
        }
        if parts.first() == Some(&"src") {
            return FileClass::RootSrc;
        }
        // Anything else (build scripts, stray .rs) gets the root-src
        // treatment: workspace-wide rules, no crate-scoped ones.
        FileClass::RootSrc
    }

    /// True if PANIC01/ERR01 apply (the six library crates' src trees).
    pub fn is_library_src(&self) -> bool {
        matches!(self, FileClass::CrateSrc(c) if LIBRARY_CRATES.contains(&c.as_str()))
    }

    /// True if the file belongs to `crates/bench` (DET02 exempt).
    pub fn is_bench(&self) -> bool {
        matches!(self, FileClass::CrateSrc(c) if c == "bench")
    }

    /// True if the file belongs to `crates/obs`, where DET02 exempts
    /// wall-clock reads *inside* `WallClock` items only — the one
    /// sanctioned clock implementation behind the `obs::Clock` trait.
    pub fn is_obs(&self) -> bool {
        matches!(self, FileClass::CrateSrc(c) if c == "obs")
    }

    /// The single type, if any, inside whose items this file's crate
    /// may read the wall clock: `obs::WallClock` (the opt-in trace
    /// clock) and `serve::Deadline` (the submission timeout — timing
    /// that bounds socket waits, never results). DET02 and the DET03
    /// seed extraction share this table, so the structural carve-out
    /// and the transitive one can never disagree.
    pub fn clock_carveout_type(&self) -> Option<&'static str> {
        match self {
            FileClass::CrateSrc(c) if c == "obs" => Some("WallClock"),
            FileClass::CrateSrc(c) if c == "serve" => Some("Deadline"),
            _ => None,
        }
    }

    /// True if FLOAT02 applies (numkit/sparsekit kernel crates).
    pub fn is_kernel_crate(&self) -> bool {
        matches!(self, FileClass::CrateSrc(c) if c == "numkit" || c == "sparsekit")
    }

    /// True if the whole file is test/example code and no rule applies.
    pub fn is_exempt(&self) -> bool {
        matches!(self, FileClass::TestFile | FileClass::Example)
    }
}

/// One finding, positioned in a file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub line: usize,
    pub col: usize,
    pub rule: &'static str,
    pub message: String,
    /// For interprocedural findings (PANIC02/DET03): the witness call
    /// chain from the flagged function's first callee down to the seed
    /// site. Empty for per-file findings. Deliberately excluded from
    /// baseline fingerprints — chains shift with unrelated refactors.
    pub chain: Vec<ChainStep>,
}

/// Everything rules need to inspect one file.
pub struct FileContext {
    pub class: FileClass,
    pub lexed: Lexed,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items and
    /// `#[test]` functions.
    pub test_regions: Vec<RangeInclusive<usize>>,
    /// Per-line suppressions: (line, rule id). A suppression on line L
    /// silences that rule on L; a comment-only line suppresses the next
    /// code line instead.
    allows: BTreeSet<(usize, String)>,
    /// Lines that hold at least one code token (used to resolve
    /// comment-only allow lines to the following code line).
    code_lines: BTreeSet<usize>,
    /// Malformed suppression comments, reported as LINT00.
    pub bad_allows: Vec<Diagnostic>,
}

impl FileContext {
    /// Lexes `src` and precomputes test regions and suppressions.
    pub fn new(class: FileClass, src: &str) -> FileContext {
        let lexed = lexer::lex(src);
        let test_regions = find_test_regions(&lexed);
        let code_lines: BTreeSet<usize> = lexed.tokens.iter().map(|t| t.line).collect();
        let mut ctx = FileContext {
            class,
            lexed,
            test_regions,
            allows: BTreeSet::new(),
            code_lines,
            bad_allows: Vec::new(),
        };
        ctx.collect_allows();
        ctx
    }

    /// True if `line` falls inside test code.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(&line))
    }

    /// True if `rule` is suppressed on `line`.
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        self.allows.contains(&(line, rule.to_string()))
    }

    /// Parses `numlint:allow(RULE[, RULE…]) reason` comments. The allow
    /// applies to the comment's own line if it holds code, otherwise to
    /// the next line that does.
    fn collect_allows(&mut self) {
        let mut parsed: Vec<(usize, Vec<String>)> = Vec::new();
        for c in &self.lexed.comments {
            // Doc comments (`///`, `//!`, `/** */`) are prose about the
            // tool, not suppressions; only implementation comments that
            // actually open a rule list are suppression attempts.
            if matches!(c.text.as_bytes().first(), Some(b'/' | b'!' | b'*')) {
                continue;
            }
            let Some(at) = c.text.find("numlint:allow(") else { continue };
            let rest = &c.text[at + "numlint:allow".len()..];
            let open = rest.trim_start();
            let valid = (|| {
                let body = open.strip_prefix('(')?;
                let close = body.find(')')?;
                let ids: Vec<String> = body[..close]
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if ids.is_empty() || !ids.iter().all(|id| rules::is_known_rule(id)) {
                    return None;
                }
                // A justification after the closing paren is mandatory:
                // bare allows rot into unreviewable noise.
                let reason = body[close + 1..].trim();
                if reason.is_empty() {
                    return None;
                }
                Some(ids)
            })();
            match valid {
                Some(ids) => parsed.push((c.line, ids)),
                None => self.bad_allows.push(Diagnostic {
                    line: c.line,
                    col: 1,
                    rule: "LINT00",
                    message: format!(
                        "malformed suppression `{}`: expected `numlint:allow(RULE_ID[, …]) reason` \
                         with known rule ids and a non-empty reason",
                        c.text.trim()
                    ),
                    chain: Vec::new(),
                }),
            }
        }
        for (line, ids) in parsed {
            let target = if self.code_lines.contains(&line) {
                line
            } else {
                // Comment-only line: attach to the next code line.
                match self.code_lines.range(line + 1..).next() {
                    Some(&l) => l,
                    None => continue,
                }
            };
            for id in ids {
                self.allows.insert((target, id));
            }
        }
    }

    /// Runs every applicable rule and returns sorted diagnostics with
    /// suppressions and test regions already applied.
    pub fn run(&self) -> Vec<Diagnostic> {
        let mut out: Vec<Diagnostic> = Vec::new();
        if !self.class.is_exempt() {
            for rule in RULES {
                if (rule.applies)(&self.class) {
                    (rule.check)(self, &mut out);
                }
            }
            out.retain(|d| !self.in_test_code(d.line) && !self.is_allowed(d.line, d.rule));
        }
        // Malformed allows are reported even in exempt files — a broken
        // suppression is a tooling bug wherever it lives.
        out.extend(self.bad_allows.iter().cloned());
        out.sort();
        out.dedup();
        out
    }

    /// All (line, rule) suppressions, exported so the workspace pass can
    /// honor `numlint:allow(PANIC02/DET03/SAFE01)` at declaration lines.
    pub fn workspace_allows(&self) -> Vec<(usize, String)> {
        self.allows.iter().cloned().collect()
    }
}

/// The complete analysis of one file: per-file diagnostics plus the
/// extracted symbols the workspace pass consumes. This is the unit the
/// incremental cache stores and restores — everything downstream of it
/// (call graph, fixpoint, interprocedural rules) is recomputed from
/// these on every run, which is why warm runs are fast: lexing and
/// extraction dominate, the fixpoint is milliseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileAnalysis {
    pub class: FileClass,
    /// Per-file findings, with suppressions and test regions applied.
    pub diags: Vec<Diagnostic>,
    /// Function table and `use` aliases for the workspace call graph.
    pub symbols: FileSymbols,
    /// Every `numlint:allow` target in the file, so workspace rules can
    /// check suppressions at fn-declaration lines.
    pub allows: Vec<(usize, String)>,
    /// True if the file declares `#![forbid(unsafe_code)]` (SAFE01).
    pub has_forbid_unsafe: bool,
}

/// Runs the per-file rules and symbol extraction over one source file.
pub fn analyze_file(path: &str, src: &str) -> FileAnalysis {
    let class = FileClass::classify(path);
    let ctx = FileContext::new(class.clone(), src);
    let diags = ctx.run();
    let symbols = if class.is_exempt() {
        FileSymbols::default()
    } else {
        let wallclock = match class.clock_carveout_type() {
            Some(name) => rules::wallclock_extents(&ctx.lexed.tokens, name),
            None => Vec::new(),
        };
        let mut syms = symbols::extract(path, &class, &ctx.lexed, &ctx.test_regions, &wallclock);
        // An allow at the seed line for the matching workspace rule
        // removes the seed itself, so sanctioned sites (deliberate fault
        // injection, clock shims) do not radiate chains into every
        // transitive caller.
        for f in &mut syms.fns {
            f.seeds.retain(|s| {
                let rule = if s.effect == EFF_CLOCK { "DET03" } else { "PANIC02" };
                !ctx.is_allowed(s.line, rule)
            });
        }
        syms
    };
    FileAnalysis {
        has_forbid_unsafe: has_forbid_unsafe(&ctx.lexed),
        allows: ctx.workspace_allows(),
        class,
        diags,
        symbols,
    }
}

/// True if the token stream contains a `forbid(unsafe_code)` attribute
/// body (SAFE01 looks for the crate-root `#![forbid(unsafe_code)]`).
fn has_forbid_unsafe(lexed: &Lexed) -> bool {
    let toks = &lexed.tokens;
    toks.iter().enumerate().any(|(i, t)| {
        t.is_ident("forbid")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("unsafe_code"))
    })
}

/// Crates whose `lib.rs` must pin `#![forbid(unsafe_code)]` (SAFE01):
/// the library crates plus `bench`. Only crates whose `lib.rs` is
/// present in the analyzed set are checked, so partial file sets (the
/// fixture workspaces) never produce missing-crate noise.
const SAFE01_CRATES: [&str; 9] =
    ["obs", "numkit", "sparsekit", "lti", "circuits", "krylov", "pmtbr", "serve", "bench"];

/// Runs the interprocedural rules over the whole analyzed file set:
///
/// - **PANIC02** — a `pub fn … -> Result` in a library crate's `src/`
///   must not *transitively* reach an ungated panic site (`panic!` /
///   `.unwrap()` / `.expect(`) through workspace calls. Direct seeds in
///   the fn's own body are PANIC01/ERR01 territory and not re-reported.
/// - **DET03** — no fn outside `crates/bench` and the `obs::WallClock`
///   carve-out may transitively reach a wall-clock read.
/// - **SAFE01** — each library crate's `lib.rs` carries
///   `#![forbid(unsafe_code)]`.
///
/// Returns `(file, diagnostic)` pairs sorted by path then position.
pub fn workspace_diagnostics(files: &BTreeMap<String, FileAnalysis>) -> Vec<(String, Diagnostic)> {
    let g = callgraph::build(files);
    let eff = effects::fixpoint(&g);
    let allowed = |file: &str, line: usize, rule: &str| {
        files
            .get(file)
            .is_some_and(|fa| fa.allows.iter().any(|(l, r)| *l == line && r == rule))
    };
    let mut out: Vec<(String, Diagnostic)> = Vec::new();
    for (id, f) in g.fns.iter().enumerate() {
        let Some(class) = files.get(&f.file).map(|fa| &fa.class) else { continue };
        let reach = effects::reach_via_calls(&g, &eff, id);
        if class.is_library_src()
            && f.is_pub
            && f.returns_result
            && reach & EFF_GATED_PANIC != 0
            && !allowed(&f.file, f.line, "PANIC02")
        {
            let chain = effects::witness_chain(&g, &eff, id, EFF_GATED_PANIC).unwrap_or_default();
            out.push((
                f.file.clone(),
                Diagnostic {
                    line: f.line,
                    col: f.col,
                    rule: "PANIC02",
                    message: format!(
                        "pub fn `{}` returns Result but can transitively reach a panic site; \
                         propagate a NumError or contain the callee with catch_unwind",
                        f.qual
                    ),
                    chain,
                },
            ));
        }
        if !class.is_bench()
            && !f.in_wallclock
            && reach & EFF_CLOCK != 0
            && !allowed(&f.file, f.line, "DET03")
        {
            let chain = effects::witness_chain(&g, &eff, id, EFF_CLOCK).unwrap_or_default();
            out.push((
                f.file.clone(),
                Diagnostic {
                    line: f.line,
                    col: f.col,
                    rule: "DET03",
                    message: format!(
                        "fn `{}` transitively reads the wall clock; keep timing in \
                         crates/bench or behind obs::WallClock / serve::Deadline",
                        f.qual
                    ),
                    chain,
                },
            ));
        }
    }
    for c in SAFE01_CRATES {
        let lib = format!("crates/{c}/src/lib.rs");
        let Some(fa) = files.get(&lib) else { continue };
        if !fa.has_forbid_unsafe && !allowed(&lib, 1, "SAFE01") {
            out.push((
                lib.clone(),
                Diagnostic {
                    line: 1,
                    col: 1,
                    rule: "SAFE01",
                    message: format!(
                        "crate `{c}` must declare `#![forbid(unsafe_code)]` in its lib.rs"
                    ),
                    chain: Vec::new(),
                },
            ));
        }
    }
    out.sort();
    out
}

/// Finds line ranges of `#[cfg(test)]` items and `#[test]` functions by
/// scanning the token stream and matching braces.
///
/// Heuristic, not a parser: after the attribute we take the next `{` at
/// or below the current nesting level as the item body, unless a `;`
/// intervenes at item level first (e.g. `#[cfg(test)] use …;`), in
/// which case the attribute guards a braceless item and covers only the
/// lines up to that `;`.
fn find_test_regions(lexed: &Lexed) -> Vec<RangeInclusive<usize>> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_test_attribute(toks, i) {
            let attr_line = toks[i].line;
            // Skip past the attribute's closing `]`.
            let mut j = i;
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            // Find the item body `{`, stopping at an item-level `;`.
            let mut k = j + 1;
            let mut brace: Option<usize> = None;
            let mut guard = 0i32;
            while k < toks.len() {
                match &toks[k].kind {
                    TokKind::Punct("{") if guard == 0 => {
                        brace = Some(k);
                        break;
                    }
                    TokKind::Punct(";") if guard == 0 => break,
                    TokKind::Punct("(") | TokKind::Punct("[") => guard += 1,
                    TokKind::Punct(")") | TokKind::Punct("]") => guard -= 1,
                    _ => {}
                }
                k += 1;
            }
            if let Some(open) = brace {
                let mut level = 0i32;
                let mut end = open;
                for (m, t) in toks.iter().enumerate().skip(open) {
                    if t.is_punct("{") {
                        level += 1;
                    } else if t.is_punct("}") {
                        level -= 1;
                        if level == 0 {
                            end = m;
                            break;
                        }
                    }
                }
                regions.push(attr_line..=toks[end].line);
                i = end + 1;
                continue;
            } else if k < toks.len() {
                regions.push(attr_line..=toks[k].line);
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

/// True if tokens at `i` start `#[test]`, `#[cfg(test)]`, or
/// `#[cfg(all(test, …))]`-style attributes mentioning `test`.
fn is_test_attribute(toks: &[lexer::Token], i: usize) -> bool {
    if !toks[i].is_punct("#") || !toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
        return false;
    }
    let Some(head) = toks.get(i + 2) else { return false };
    if head.is_ident("test") {
        return true;
    }
    if head.is_ident("cfg") {
        // Scan the attribute body for a bare `test` ident.
        let mut depth = 0i32;
        for t in &toks[i + 1..] {
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("test") {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileContext {
        FileContext::new(FileClass::CrateSrc("numkit".into()), src)
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            FileClass::classify("crates/numkit/src/svd.rs"),
            FileClass::CrateSrc("numkit".into())
        );
        assert_eq!(FileClass::classify("crates/lti/tests/adversarial.rs"), FileClass::TestFile);
        assert_eq!(
            FileClass::classify("crates/numlint/tests/fixtures/det01.rs"),
            FileClass::TestFile
        );
        assert_eq!(FileClass::classify("src/lib.rs"), FileClass::RootSrc);
        assert_eq!(FileClass::classify("examples/reduce.rs"), FileClass::Example);
        assert!(FileClass::classify("crates/pmtbr/src/par.rs").is_library_src());
        assert!(!FileClass::classify("crates/bench/src/lib.rs").is_library_src());
        assert!(FileClass::classify("crates/bench/src/lib.rs").is_bench());
        assert!(FileClass::classify("crates/obs/src/clock.rs").is_library_src());
        assert!(FileClass::classify("crates/obs/src/clock.rs").is_obs());
        assert!(!FileClass::classify("crates/numkit/src/par.rs").is_obs());
    }

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let c = ctx(src);
        assert!(!c.in_test_code(1));
        assert!(c.in_test_code(2));
        assert!(c.in_test_code(4));
        assert!(!c.in_test_code(6));
    }

    #[test]
    fn test_regions_cover_test_fn_and_stop_at_semicolon_items() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() {}\n#[test]\nfn t() {\n    let x = 1;\n}\nfn live2() {}\n";
        let c = ctx(src);
        // `use` item: region is just the attribute + use lines.
        assert!(c.in_test_code(2));
        assert!(!c.in_test_code(3));
        assert!(c.in_test_code(6));
        assert!(!c.in_test_code(8));
    }

    #[test]
    fn allow_same_line_and_next_line() {
        let src = "let a = x.f(); // numlint:allow(PANIC01) deliberate\n\
                   // numlint:allow(FLOAT01, FLOAT02) exact sentinel check\n\
                   let b = y;\n";
        let c = ctx(src);
        assert!(c.is_allowed(1, "PANIC01"));
        assert!(!c.is_allowed(1, "FLOAT01"));
        assert!(c.is_allowed(3, "FLOAT01"));
        assert!(c.is_allowed(3, "FLOAT02"));
        assert!(c.bad_allows.is_empty());
    }

    #[test]
    fn malformed_allows_reported() {
        let bad = [
            "let a = 1; // numlint:allow(PANIC01)",       // missing reason
            "let a = 1; // numlint:allow(NOSUCH) reason", // unknown rule
            "let a = 1; // numlint:allow() reason",       // no ids
        ];
        for src in bad {
            let c = ctx(src);
            assert_eq!(c.bad_allows.len(), 1, "src: {src}");
            assert_eq!(c.bad_allows[0].rule, "LINT00");
        }
    }

    fn ws(files: &[(&str, &str)]) -> Vec<(String, Diagnostic)> {
        let mut map = BTreeMap::new();
        for (path, src) in files {
            map.insert(path.to_string(), analyze_file(path, src));
        }
        workspace_diagnostics(&map)
    }

    #[test]
    fn panic02_fires_across_crates_with_chain() {
        let d = ws(&[
            (
                "crates/pmtbr/src/pipeline.rs",
                "pub fn run() -> Result<(), E> { numkit::svd::compress(); Ok(()) }\n",
            ),
            (
                "crates/numkit/src/svd.rs",
                "pub fn compress() { jacobi_step(); }\nfn jacobi_step() { x.unwrap(); }\n",
            ),
        ]);
        let p: Vec<_> = d.iter().filter(|(_, d)| d.rule == "PANIC02").collect();
        // Fires on `run` (reaches the panic through calls); `compress`
        // is not Result-returning so PANIC02 skips it.
        assert_eq!(p.len(), 1, "{d:?}");
        assert_eq!(p[0].0, "crates/pmtbr/src/pipeline.rs");
        assert!(!p[0].1.chain.is_empty());
        let rendered = effects::render_chain(&p[0].1.chain);
        assert!(rendered.contains("jacobi_step"), "{rendered}");
    }

    #[test]
    fn panic02_respects_decl_line_allow_and_seed_line_allow() {
        // Decl-line allow.
        let d = ws(&[
            (
                "crates/lti/src/a.rs",
                "// numlint:allow(PANIC02) adversarial probe is pool-contained\n\
                 pub fn top() -> Result<(), E> { crate::b::boom(); Ok(()) }\n",
            ),
            ("crates/lti/src/b.rs", "pub fn boom() { panic!(\"x\"); }\n"),
        ]);
        assert!(d.iter().all(|(_, d)| d.rule != "PANIC02"), "{d:?}");
        // Seed-line allow removes the seed for every caller.
        let d = ws(&[
            (
                "crates/lti/src/a.rs",
                "pub fn top() -> Result<(), E> { crate::b::boom(); Ok(()) }\n",
            ),
            (
                "crates/lti/src/b.rs",
                "pub fn boom() { panic!(\"x\"); // numlint:allow(PANIC01, PANIC02) fault injection\n}\n",
            ),
        ]);
        assert!(d.iter().all(|(_, d)| d.rule != "PANIC02"), "{d:?}");
    }

    #[test]
    fn det03_fires_outside_bench_and_wallclock() {
        let d = ws(&[
            (
                "crates/lti/src/a.rs",
                "pub fn tick() { crate::b::stamp(); }\n",
            ),
            (
                "crates/lti/src/b.rs",
                "pub fn stamp() { let _ = Instant::now(); }\n",
            ),
        ]);
        let det: Vec<_> = d.iter().filter(|(_, d)| d.rule == "DET03").collect();
        assert_eq!(det.len(), 1, "{d:?}");
        assert_eq!(det[0].0, "crates/lti/src/a.rs");
        // The same chain from bench is sanctioned.
        let d = ws(&[
            ("crates/bench/src/lib.rs", "pub fn tick() { lti::b::stamp(); }\n"),
            ("crates/lti/src/b.rs", "pub fn stamp() { let _ = Instant::now(); }\n"),
        ]);
        assert!(d.iter().all(|(f, d)| !(d.rule == "DET03" && f.contains("bench"))), "{d:?}");
    }

    #[test]
    fn safe01_requires_forbid_unsafe_in_present_lib_rs() {
        let d = ws(&[
            ("crates/krylov/src/lib.rs", "pub fn arnoldi() {}\n"),
            ("crates/lti/src/lib.rs", "#![forbid(unsafe_code)]\npub fn sys() {}\n"),
        ]);
        let s: Vec<_> = d.iter().filter(|(_, d)| d.rule == "SAFE01").collect();
        assert_eq!(s.len(), 1, "{d:?}");
        assert_eq!(s[0].0, "crates/krylov/src/lib.rs");
        // Absent crates are not reported.
        assert!(!d.iter().any(|(f, _)| f.contains("numkit")));
    }
}
