//! Workspace file discovery (std-only, no walkdir).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".claude"];

/// Collects every workspace `.rs` file as a path relative to `root`,
/// sorted for deterministic reporting. The numlint fixture corpus is
/// excluded: those files *contain* violations by design and are linted
/// explicitly by the golden tests instead.
pub fn workspace_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            entries.push(entry?.path());
        }
        // read_dir order is filesystem-dependent; sort so diagnostics,
        // baselines, and JSON output are reproducible byte-for-byte.
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
                if rel.starts_with("crates/numlint/tests/fixtures") {
                    continue;
                }
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// declares `[workspace]`; returns `start` itself if none is found (the
/// caller will then simply lint what is visible from there).
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut cur = start.to_path_buf();
    loop {
        let manifest = cur.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return cur;
            }
        }
        if !cur.pop() {
            return start.to_path_buf();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here);
        assert!(root.join("Cargo.toml").exists());
        let files = workspace_rs_files(&root).expect("walk");
        assert!(files.iter().any(|p| p.ends_with("crates/numlint/src/walk.rs")));
        assert!(files.iter().all(|p| !p.starts_with("target")));
        assert!(files
            .iter()
            .all(|p| !p.starts_with("crates/numlint/tests/fixtures")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
