//! Finding baseline, v2: fingerprint-granular.
//!
//! The baseline absorbs legacy findings so new code is gated hard while
//! old sites are burned down incrementally. v1 stored a *count* per
//! `(rule, file)`, which let a fixed finding in one function mask a
//! brand-new finding elsewhere in the same file — the count stayed
//! equal. v2 stores one entry per finding, keyed by a fingerprint of
//! `(rule, path, message)`:
//!
//! ```text
//! PANIC01 crates/numkit/src/mat.rs @a3f09b2c41d7e865
//! ```
//!
//! Messages are deliberately line-number-free (every rule phrases its
//! message from the offending tokens, not positions), so fingerprints
//! survive unrelated edits to the same file; any change to the finding
//! itself — different call, different identifier — produces a new
//! fingerprint and fails the gate. Identical findings (two `.unwrap()`
//! calls in one file yield identical messages) are a multiset: each
//! occurrence needs its own baseline line.
//!
//! Legacy `RULE path count` lines still parse and absorb by count, so
//! pre-v2 baselines keep working until regenerated with
//! `scripts/numlint-baseline.sh`.

use crate::cache::fnv64;
use crate::engine::Diagnostic;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Baselined findings: fingerprint entries (v2) plus legacy counts.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// v2 entries: `(rule, path, fingerprint)` → occurrence count.
    prints: BTreeMap<(String, String, u64), usize>,
    /// Legacy v1 entries: `(rule, path)` → count.
    counts: BTreeMap<(String, String), usize>,
}

/// A parse failure with its 1-based line number.
#[derive(Debug)]
pub struct BaselineParseError {
    pub line: usize,
    pub message: String,
}

/// The stable identity of one finding. Excludes line/column (and the
/// witness chain of interprocedural findings): both shift under
/// unrelated refactors, and the message already pins *what* was found.
pub fn fingerprint(rule: &str, path: &str, message: &str) -> u64 {
    let mut buf = Vec::with_capacity(rule.len() + path.len() + message.len() + 2);
    buf.extend_from_slice(rule.as_bytes());
    buf.push(0);
    buf.extend_from_slice(path.as_bytes());
    buf.push(0);
    buf.extend_from_slice(message.as_bytes());
    fnv64(&buf)
}

impl Baseline {
    /// Parses the baseline file format (v2 `@fingerprint` entries and
    /// legacy `count` entries, freely mixed).
    pub fn parse(text: &str) -> Result<Baseline, BaselineParseError> {
        let mut b = Baseline::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let ok = (|| {
                let rule = it.next()?.to_string();
                let path = it.next()?.to_string();
                let third = it.next()?;
                if it.next().is_some() {
                    return None;
                }
                if let Some(hex) = third.strip_prefix('@') {
                    if hex.len() != 16 {
                        return None;
                    }
                    let fp = u64::from_str_radix(hex, 16).ok()?;
                    *b.prints.entry((rule, path, fp)).or_insert(0) += 1;
                } else {
                    let count: usize = third.parse().ok()?;
                    if count == 0 {
                        return None;
                    }
                    b.counts.insert((rule, path), count);
                }
                Some(())
            })();
            if ok.is_none() {
                return Err(BaselineParseError {
                    line: idx + 1,
                    message: format!(
                        "expected `RULE_ID path @fingerprint` (or legacy `RULE_ID path count`), \
                         got `{line}`"
                    ),
                });
            }
        }
        Ok(b)
    }

    /// Builds a v2 baseline covering every current finding.
    pub fn from_findings(findings: &[(String, Diagnostic)]) -> Baseline {
        let mut b = Baseline::default();
        for (path, d) in findings {
            let fp = fingerprint(d.rule, path, &d.message);
            *b.prints.entry((d.rule.to_string(), path.clone(), fp)).or_insert(0) += 1;
        }
        b
    }

    /// Serializes in the checked-in format (always v2 entries).
    pub fn render(&self) -> String {
        let mut s = String::from(
            "# numlint baseline — one `RULE path @fingerprint` line per legacy finding\n\
             # (fingerprint = fnv64 of rule+path+message, line-number-free).\n\
             # Regenerate deliberately with scripts/numlint-baseline.sh;\n\
             # findings not fingerprinted here are hard errors.\n",
        );
        for ((rule, path, fp), count) in &self.prints {
            for _ in 0..*count {
                let _ = writeln!(s, "{rule} {path} @{fp:016x}");
            }
        }
        // Legacy entries survive a render untouched only by re-parsing;
        // a regenerated baseline is always pure v2.
        for ((rule, path), count) in &self.counts {
            let _ = writeln!(s, "{rule} {path} {count}");
        }
        s
    }

    /// Splits `findings` into (reported, absorbed-count). A finding is
    /// absorbed if its fingerprint has remaining occurrences in the v2
    /// entries, or — for legacy baselines — if its `(rule, file)` count
    /// has headroom.
    pub fn apply(
        &self,
        findings: Vec<(String, Diagnostic)>,
    ) -> (Vec<(String, Diagnostic)>, usize) {
        let mut prints_used: BTreeMap<(String, String, u64), usize> = BTreeMap::new();
        let mut counts_used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut reported = Vec::new();
        let mut absorbed = 0usize;
        for (path, d) in findings {
            let fp = fingerprint(d.rule, &path, &d.message);
            let pkey = (d.rule.to_string(), path.clone(), fp);
            let pcap = self.prints.get(&pkey).copied().unwrap_or(0);
            let pu = prints_used.entry(pkey).or_insert(0);
            if *pu < pcap {
                *pu += 1;
                absorbed += 1;
                continue;
            }
            let ckey = (d.rule.to_string(), path.clone());
            let ccap = self.counts.get(&ckey).copied().unwrap_or(0);
            let cu = counts_used.entry(ckey).or_insert(0);
            if *cu < ccap {
                *cu += 1;
                absorbed += 1;
                continue;
            }
            reported.push((path, d));
        }
        (reported, absorbed)
    }

    /// Number of baselined findings (v2 occurrences + legacy counts).
    pub fn total(&self) -> usize {
        self.prints.values().sum::<usize>() + self.counts.values().sum::<usize>()
    }

    /// True if no findings are baselined.
    pub fn is_empty(&self) -> bool {
        self.prints.is_empty() && self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, line: usize, message: &str) -> Diagnostic {
        Diagnostic { line, col: 1, rule, message: message.into(), chain: Vec::new() }
    }

    #[test]
    fn roundtrip_and_apply() {
        let findings = vec![
            ("a.rs".to_string(), d("PANIC01", 1, "`.unwrap()` in library code")),
            ("a.rs".to_string(), d("PANIC01", 2, "`.unwrap()` in library code")),
            ("b.rs".to_string(), d("FLOAT01", 3, "exact `==`")),
        ];
        let b = Baseline::from_findings(&findings);
        assert_eq!(b.total(), 3);
        let parsed = Baseline::parse(&b.render()).expect("roundtrip");
        assert_eq!(parsed, b);

        // Same findings: everything absorbed (line moves are fine).
        let moved: Vec<_> =
            findings.iter().map(|(p, x)| (p.clone(), d(x.rule, x.line + 40, &x.message))).collect();
        let (rep, absorbed) = parsed.apply(moved);
        assert!(rep.is_empty());
        assert_eq!(absorbed, 3);

        // A *different* finding in an already-baselined file is NOT
        // masked — this is the v2 fix over count-based baselines.
        let mut grown = findings;
        grown.insert(2, ("a.rs".to_string(), d("PANIC01", 9, "`panic!` in library code")));
        let (rep, absorbed) = parsed.apply(grown);
        assert_eq!(absorbed, 3);
        assert_eq!(rep.len(), 1);
        assert_eq!(rep[0].1.message, "`panic!` in library code");
    }

    #[test]
    fn duplicate_findings_need_one_entry_each() {
        let one = vec![("a.rs".to_string(), d("PANIC01", 1, "`.unwrap()`"))];
        let b = Baseline::from_findings(&one);
        let two = vec![
            ("a.rs".to_string(), d("PANIC01", 1, "`.unwrap()`")),
            ("a.rs".to_string(), d("PANIC01", 2, "`.unwrap()`")),
        ];
        let (rep, absorbed) = b.apply(two);
        assert_eq!(absorbed, 1);
        assert_eq!(rep.len(), 1);
    }

    #[test]
    fn legacy_count_entries_still_absorb() {
        let b = Baseline::parse("PANIC01 a.rs 2\n").expect("legacy parse");
        assert_eq!(b.total(), 2);
        let findings = vec![
            ("a.rs".to_string(), d("PANIC01", 1, "x")),
            ("a.rs".to_string(), d("PANIC01", 2, "y")),
            ("a.rs".to_string(), d("PANIC01", 3, "z")),
        ];
        let (rep, absorbed) = b.apply(findings);
        assert_eq!(absorbed, 2);
        assert_eq!(rep.len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("PANIC01 a.rs zero").is_err());
        assert!(Baseline::parse("PANIC01 a.rs 0").is_err());
        assert!(Baseline::parse("PANIC01 a.rs 1 extra").is_err());
        assert!(Baseline::parse("PANIC01 a.rs @short").is_err());
        assert!(Baseline::parse("PANIC01 a.rs @zzzzzzzzzzzzzzzz").is_err());
        assert!(Baseline::parse("# comment\n\nPANIC01 a.rs 2\nF01 b.rs @00000000000000ab\n").is_ok());
    }
}
