//! Count-based finding baseline.
//!
//! The baseline records, per `(rule, file)`, how many findings existed
//! when the gate was introduced, so legacy call sites can be burned
//! down incrementally while *new* findings are hard errors. Counts are
//! deliberately line-number-free: editing an unrelated part of a file
//! must not invalidate the baseline, and the count can only stay equal
//! or shrink — `--update-baseline` refuses nothing, but the checked-in
//! file makes any growth visible in review.
//!
//! Format (one entry per line, `#` comments, sorted):
//!
//! ```text
//! PANIC01 crates/numkit/src/mat.rs 1
//! ```

use crate::engine::Diagnostic;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Baselined finding counts keyed by `(rule, workspace-relative path)`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String), usize>,
}

/// A parse failure with its 1-based line number.
#[derive(Debug)]
pub struct BaselineParseError {
    pub line: usize,
    pub message: String,
}

impl Baseline {
    /// Parses the baseline file format.
    pub fn parse(text: &str) -> Result<Baseline, BaselineParseError> {
        let mut counts = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let entry = (|| {
                let rule = it.next()?.to_string();
                let path = it.next()?.to_string();
                let count: usize = it.next()?.parse().ok()?;
                if it.next().is_some() || count == 0 {
                    return None;
                }
                Some(((rule, path), count))
            })();
            match entry {
                Some((key, count)) => {
                    counts.insert(key, count);
                }
                None => {
                    return Err(BaselineParseError {
                        line: idx + 1,
                        message: format!(
                            "expected `RULE_ID path count` with count > 0, got `{line}`"
                        ),
                    })
                }
            }
        }
        Ok(Baseline { counts })
    }

    /// Builds a baseline covering every current finding.
    pub fn from_findings(findings: &[(String, Diagnostic)]) -> Baseline {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for (path, d) in findings {
            *counts.entry((d.rule.to_string(), path.clone())).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Serializes in the checked-in format.
    pub fn render(&self) -> String {
        let mut s = String::from(
            "# numlint baseline — legacy finding counts per (rule, file).\n\
             # Regenerate deliberately with scripts/numlint-baseline.sh;\n\
             # new findings beyond these counts are hard errors.\n",
        );
        for ((rule, path), count) in &self.counts {
            let _ = writeln!(s, "{rule} {path} {count}");
        }
        s
    }

    /// Splits `findings` into (reported, baselined-away). For each
    /// `(rule, file)` group, up to the baselined count of findings are
    /// absorbed (the *first* ones in line order — which subset is
    /// immaterial, only the count is contractual); the excess is
    /// reported.
    pub fn apply(
        &self,
        findings: Vec<(String, Diagnostic)>,
    ) -> (Vec<(String, Diagnostic)>, usize) {
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut reported = Vec::new();
        let mut absorbed = 0usize;
        for (path, d) in findings {
            let key = (d.rule.to_string(), path.clone());
            let cap = self.counts.get(&key).copied().unwrap_or(0);
            let u = used.entry(key).or_insert(0);
            if *u < cap {
                *u += 1;
                absorbed += 1;
            } else {
                reported.push((path, d));
            }
        }
        (reported, absorbed)
    }

    /// Number of baselined entries (sum of counts).
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// True if no entries are baselined.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, line: usize) -> Diagnostic {
        Diagnostic { line, col: 1, rule, message: "m".into() }
    }

    #[test]
    fn roundtrip_and_apply() {
        let findings = vec![
            ("a.rs".to_string(), d("PANIC01", 1)),
            ("a.rs".to_string(), d("PANIC01", 2)),
            ("b.rs".to_string(), d("FLOAT01", 3)),
        ];
        let b = Baseline::from_findings(&findings);
        assert_eq!(b.total(), 3);
        let parsed = Baseline::parse(&b.render()).expect("roundtrip");
        assert_eq!(parsed, b);

        // Same counts: everything absorbed.
        let (rep, absorbed) = parsed.apply(findings.clone());
        assert!(rep.is_empty());
        assert_eq!(absorbed, 3);

        // One extra PANIC01 in a.rs: exactly one reported.
        let mut grown = findings;
        grown.insert(2, ("a.rs".to_string(), d("PANIC01", 9)));
        let (rep, absorbed) = parsed.apply(grown);
        assert_eq!(absorbed, 3);
        assert_eq!(rep.len(), 1);
        assert_eq!(rep[0].1.rule, "PANIC01");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("PANIC01 a.rs zero").is_err());
        assert!(Baseline::parse("PANIC01 a.rs 0").is_err());
        assert!(Baseline::parse("PANIC01 a.rs 1 extra").is_err());
        assert!(Baseline::parse("# comment\n\nPANIC01 a.rs 2\n").is_ok());
    }
}
