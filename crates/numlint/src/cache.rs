//! Content-hash incremental cache for per-file analyses.
//!
//! The expensive half of a `numlint check` is lexing and symbol
//! extraction over every workspace file; the workspace fixpoint itself
//! is milliseconds. So the cache stores one [`FileAnalysis`] per file,
//! keyed on an FNV-1a content hash, in a single plain-text file under
//! `target/numlint-cache/`. A warm run re-reads and re-hashes sources
//! (cheap) and skips extraction for unchanged files; the interprocedural
//! fixpoint then re-runs over the mix of cached and fresh analyses.
//!
//! Invalidation is by construction: the cache file name embeds
//! [`RULESET_VERSION`] (bump it whenever rule or extraction semantics
//! change) and every entry embeds its source hash. Any parse
//! irregularity discards the whole cache — it is a pure accelerator,
//! never a source of truth.

use crate::engine::{Diagnostic, FileAnalysis};
use crate::symbols::{CallSite, FileSymbols, FnSym, Seed};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Bump on any change to rules, extraction, or this serialization.
pub const RULESET_VERSION: u32 = 2;

/// FNV-1a 64-bit hash (std-only; no external hashing crates by design).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// In-memory cache: path → (source hash, analysis), plus hit/miss
/// accounting for the `check.sh` cache-efficiency report.
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileAnalysis)>,
    fresh: BTreeMap<String, (u64, FileAnalysis)>,
    pub hits: usize,
    pub misses: usize,
}

impl Cache {
    /// The on-disk location for a workspace root.
    pub fn path_for(root: &Path) -> PathBuf {
        root.join("target")
            .join("numlint-cache")
            .join(format!("analysis-v{RULESET_VERSION}.txt"))
    }

    /// Loads the cache, returning an empty one on any miss or
    /// irregularity (stale version files simply never match the path).
    pub fn load(root: &Path) -> Cache {
        let mut cache = Cache::default();
        let Ok(text) = fs::read_to_string(Self::path_for(root)) else { return cache };
        match parse(&text) {
            Some(entries) => cache.entries = entries,
            None => cache.entries = BTreeMap::new(),
        }
        cache
    }

    /// Fetches the analysis for `path` if the cached source hash
    /// matches, recording a hit or miss either way.
    pub fn lookup(&mut self, path: &str, hash: u64) -> Option<FileAnalysis> {
        match self.entries.get(path) {
            Some((h, fa)) if *h == hash => {
                self.hits += 1;
                Some(fa.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the analysis to be persisted by [`Cache::save`]. Only
    /// files seen this run are written back, so deleted files age out.
    pub fn record(&mut self, path: &str, hash: u64, fa: FileAnalysis) {
        self.fresh.insert(path.to_string(), (hash, fa));
    }

    /// Persists the recorded entries. Failures are reported to the
    /// caller but are never fatal: the cache is an accelerator only.
    pub fn save(&self, root: &Path) -> std::io::Result<()> {
        let path = Self::path_for(root);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut s = format!("numlint-cache v{RULESET_VERSION}\n");
        for (file, (hash, fa)) in &self.fresh {
            render_entry(&mut s, file, *hash, fa);
        }
        fs::write(path, s)
    }
}

fn render_entry(s: &mut String, file: &str, hash: u64, fa: &FileAnalysis) {
    let _ = writeln!(s, "F {hash:016x} {file}");
    let _ = writeln!(s, "B {}", u8::from(fa.has_forbid_unsafe));
    for (alias, full) in &fa.symbols.aliases {
        let _ = writeln!(s, "U {alias} {full}");
    }
    for f in &fa.symbols.fns {
        let self_ty = if f.self_ty.is_empty() { "-" } else { &f.self_ty };
        let _ = writeln!(
            s,
            "N {} {} {} {} {} {} {} {} {}",
            f.line,
            f.col,
            u8::from(f.is_pub),
            u8::from(f.returns_result),
            u8::from(f.in_wallclock),
            f.name,
            f.module,
            self_ty,
            f.qual
        );
        for seed in &f.seeds {
            let _ = writeln!(
                s,
                "S {} {} {} {}",
                seed.line,
                u8::from(seed.contained),
                seed.effect,
                seed.what
            );
        }
        for c in &f.calls {
            let _ = writeln!(
                s,
                "C {} {} {} {}",
                c.line,
                u8::from(c.contained),
                u8::from(c.is_method),
                c.path
            );
        }
    }
    for d in &fa.diags {
        let _ = writeln!(s, "D {} {} {} {}", d.line, d.col, d.rule, d.message.replace('\n', "\\n"));
    }
    for (line, rule) in &fa.allows {
        let _ = writeln!(s, "A {line} {rule}");
    }
}

/// Parses the whole cache file; `None` on any irregularity.
fn parse(text: &str) -> Option<BTreeMap<String, (u64, FileAnalysis)>> {
    let mut lines = text.lines();
    if lines.next()? != format!("numlint-cache v{RULESET_VERSION}") {
        return None;
    }
    let mut out: BTreeMap<String, (u64, FileAnalysis)> = BTreeMap::new();
    let mut cur: Option<(String, u64, FileAnalysis)> = None;
    for line in lines {
        let (tag, rest) = line.split_at(line.char_indices().nth(1).map(|(i, _)| i)?);
        let rest = rest.strip_prefix(' ')?;
        match tag {
            "F" => {
                if let Some((file, hash, fa)) = cur.take() {
                    out.insert(file, (hash, fa));
                }
                let (hash_s, file) = rest.split_once(' ')?;
                let hash = u64::from_str_radix(hash_s, 16).ok()?;
                cur = Some((
                    file.to_string(),
                    hash,
                    FileAnalysis {
                        class: crate::engine::FileClass::classify(file),
                        diags: Vec::new(),
                        symbols: FileSymbols::default(),
                        allows: Vec::new(),
                        has_forbid_unsafe: false,
                    },
                ));
            }
            "B" => cur.as_mut()?.2.has_forbid_unsafe = rest == "1",
            "U" => {
                let (alias, full) = rest.split_once(' ')?;
                cur.as_mut()?.2.symbols.aliases.push((alias.to_string(), full.to_string()));
            }
            "N" => {
                let mut it = rest.splitn(9, ' ');
                let line = it.next()?.parse().ok()?;
                let col = it.next()?.parse().ok()?;
                let is_pub = it.next()? == "1";
                let returns_result = it.next()? == "1";
                let in_wallclock = it.next()? == "1";
                let name = it.next()?.to_string();
                let module = it.next()?.to_string();
                let self_ty = match it.next()? {
                    "-" => String::new(),
                    s => s.to_string(),
                };
                let qual = it.next()?.to_string();
                let entry = cur.as_mut()?;
                entry.2.symbols.fns.push(FnSym {
                    name,
                    qual,
                    module,
                    self_ty,
                    file: entry.0.clone(),
                    line,
                    col,
                    is_pub,
                    returns_result,
                    in_wallclock,
                    seeds: Vec::new(),
                    calls: Vec::new(),
                });
            }
            "S" => {
                let mut it = rest.splitn(4, ' ');
                let line = it.next()?.parse().ok()?;
                let contained = it.next()? == "1";
                let effect = it.next()?.parse().ok()?;
                let what = it.next()?.to_string();
                cur.as_mut()?.2.symbols.fns.last_mut()?.seeds.push(Seed {
                    effect,
                    what,
                    line,
                    contained,
                });
            }
            "C" => {
                let mut it = rest.splitn(4, ' ');
                let line = it.next()?.parse().ok()?;
                let contained = it.next()? == "1";
                let is_method = it.next()? == "1";
                let path = it.next()?.to_string();
                cur.as_mut()?.2.symbols.fns.last_mut()?.calls.push(CallSite {
                    path,
                    is_method,
                    line,
                    contained,
                });
            }
            "D" => {
                let mut it = rest.splitn(4, ' ');
                let line = it.next()?.parse().ok()?;
                let col = it.next()?.parse().ok()?;
                let rule = crate::rules::canonical_rule_id(it.next()?)?;
                let message = it.next()?.replace("\\n", "\n");
                cur.as_mut()?.2.diags.push(Diagnostic {
                    line,
                    col,
                    rule,
                    message,
                    chain: Vec::new(),
                });
            }
            "A" => {
                let (line, rule) = rest.split_once(' ')?;
                cur.as_mut()?.2.allows.push((line.parse().ok()?, rule.to_string()));
            }
            _ => return None,
        }
    }
    if let Some((file, hash, fa)) = cur.take() {
        out.insert(file, (hash, fa));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_file;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
    }

    #[test]
    fn roundtrip_preserves_analysis() {
        let src = "use numkit::svd::jacobi;\n\
                   pub fn top() -> Result<(), E> { jacobi(); v[0]; Ok(()) }\n\
                   fn bad() { x.unwrap(); let t = Instant::now(); }\n";
        let path = "crates/lti/src/a.rs";
        let fa = analyze_file(path, src);
        assert!(!fa.symbols.fns.is_empty());
        assert!(!fa.diags.is_empty(), "expected DET02 finding: {:?}", fa.diags);

        let mut s = format!("numlint-cache v{RULESET_VERSION}\n");
        render_entry(&mut s, path, fnv64(src.as_bytes()), &fa);
        let parsed = parse(&s).expect("parse back");
        let (h, back) = parsed.get(path).expect("entry");
        assert_eq!(*h, fnv64(src.as_bytes()));
        assert_eq!(back, &fa);
    }

    #[test]
    fn version_mismatch_discards() {
        assert!(parse("numlint-cache v0\nF 00 x.rs\n").is_none());
        assert!(parse("garbage").is_none());
    }

    #[test]
    fn lookup_hit_and_miss_accounting() {
        let src = "pub fn f() {}\n";
        let path = "crates/lti/src/a.rs";
        let fa = analyze_file(path, src);
        let mut cache = Cache::default();
        cache.entries.insert(path.to_string(), (fnv64(src.as_bytes()), fa.clone()));
        assert!(cache.lookup(path, fnv64(src.as_bytes())).is_some());
        assert!(cache.lookup(path, fnv64(b"changed")).is_none());
        assert!(cache.lookup("crates/lti/src/b.rs", 1).is_none());
        assert_eq!((cache.hits, cache.misses), (1, 2));
    }
}
