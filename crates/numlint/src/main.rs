//! CLI driver: `cargo run -p numlint -- check [flags]`, plus the
//! documentation-consistency pass `numlint doccheck` (see [`numlint::doccheck`]).
//!
//! A `check` run has three stages:
//!
//! 1. **Per-file analysis** — lex, per-file rules, symbol extraction —
//!    memoized in the content-hash cache under `target/numlint-cache/`
//!    so warm runs skip everything whose source is unchanged.
//! 2. **Workspace pass** — call graph + effect fixpoint + the
//!    interprocedural rules (PANIC02/DET03/SAFE01). Always recomputed;
//!    it is milliseconds and depends on every file at once.
//! 3. **Baseline + reporting** — fingerprint-granular baseline
//!    absorption, then text (with witness call chains on their own
//!    `chain |` lines) or `--json` (chains as structured arrays).
//!
//! Exit codes: `0` clean (all findings baselined or none), `2` at least
//! one non-baselined finding, `1` usage or I/O error. `scripts/check.sh`
//! treats any non-zero status as a gate failure.

use numlint::baseline::Baseline;
use numlint::cache::{fnv64, Cache};
use numlint::engine::{analyze_file, workspace_diagnostics, Diagnostic, FileAnalysis};
use numlint::rules::{RULES, WORKSPACE_RULES};
use numlint::walk;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
numlint — in-tree static analysis for the PMTBR workspace

USAGE:
    numlint check [--baseline PATH] [--update-baseline] [--json] [--root DIR] [--no-cache]
    numlint doccheck [--root DIR]
    numlint rules

FLAGS (check):
    --baseline PATH      Absorb legacy findings recorded in PATH
    --update-baseline    Rewrite PATH with current finding fingerprints and exit 0
    --json               One JSON diagnostic per line (machine-readable)
    --root DIR           Workspace root (default: nearest [workspace] above cwd)
    --no-cache           Ignore and do not write target/numlint-cache
";

struct Args {
    baseline: Option<PathBuf>,
    update_baseline: bool,
    json: bool,
    root: Option<PathBuf>,
    no_cache: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        baseline: None,
        update_baseline: false,
        json: false,
        root: None,
        no_cache: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--update-baseline" => args.update_baseline = true,
            "--json" => args.json = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory")?;
                args.root = Some(PathBuf::from(v));
            }
            "--no-cache" => args.no_cache = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.update_baseline && args.baseline.is_none() {
        return Err("--update-baseline requires --baseline PATH".into());
    }
    Ok(args)
}

/// Minimal JSON string escaping (zero-dependency by design).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn emit(path: &str, d: &Diagnostic, src_line: Option<&str>, json: bool) {
    if json {
        let chain: Vec<String> = d
            .chain
            .iter()
            .map(|s| {
                format!(
                    "{{\"label\":\"{}\",\"file\":\"{}\",\"line\":{}}}",
                    json_escape(&s.label),
                    json_escape(&s.file),
                    s.line
                )
            })
            .collect();
        println!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\",\"chain\":[{}]}}",
            json_escape(path),
            d.line,
            d.col,
            json_escape(d.rule),
            json_escape(&d.message),
            chain.join(",")
        );
    } else {
        println!("{path}:{}:{} {} {}", d.line, d.col, d.rule, d.message);
        if let Some(text) = src_line {
            println!("    | {}", text.trim_end());
        }
        if !d.chain.is_empty() {
            println!("    chain | {}", numlint::effects::render_chain(&d.chain));
        }
    }
}

fn run_doccheck(argv: &[String]) -> Result<ExitCode, String> {
    let mut root = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a value")?;
                root = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown doccheck flag `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            walk::find_workspace_root(&cwd)
        }
    };
    let findings = numlint::doccheck::run(&root)?;
    for f in &findings {
        if f.line == 0 {
            println!("{} [{}] {}", f.file, f.rule, f.message);
        } else {
            println!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message);
        }
    }
    if findings.is_empty() {
        eprintln!("numlint doccheck: clean");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("numlint doccheck: {} finding(s)", findings.len());
        Ok(ExitCode::from(2))
    }
}

fn run_check(args: &Args) -> Result<ExitCode, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => walk::find_workspace_root(&cwd),
    };
    let files = walk::workspace_rs_files(&root)
        .map_err(|e| format!("walking {}: {e}", root.display()))?;

    // Stage 1: per-file analyses, served from the content-hash cache
    // where the source is unchanged.
    let mut cache = if args.no_cache { Cache::default() } else { Cache::load(&root) };
    let mut analyses: BTreeMap<String, FileAnalysis> = BTreeMap::new();
    let mut sources: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let full = root.join(rel);
        let src = fs::read_to_string(&full)
            .map_err(|e| format!("reading {}: {e}", full.display()))?;
        let hash = fnv64(src.as_bytes());
        let fa = match cache.lookup(&rel_str, hash) {
            Some(fa) => fa,
            None => analyze_file(&rel_str, &src),
        };
        cache.record(&rel_str, hash, fa.clone());
        sources.insert(rel_str.clone(), src.lines().map(str::to_string).collect());
        analyses.insert(rel_str, fa);
    }
    if !args.no_cache {
        if let Err(e) = cache.save(&root) {
            eprintln!("numlint: warning: cache not saved: {e}");
        }
    }

    // Stage 2: the workspace pass over the full (cached + fresh) set.
    let mut findings: Vec<(String, Diagnostic)> = Vec::new();
    for (path, fa) in &analyses {
        findings.extend(fa.diags.iter().cloned().map(|d| (path.clone(), d)));
    }
    findings.extend(workspace_diagnostics(&analyses));
    findings.sort();

    if args.update_baseline {
        let path = args.baseline.as_ref().ok_or("--update-baseline requires --baseline")?;
        let b = Baseline::from_findings(&findings);
        fs::write(path, b.render()).map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!(
            "numlint: baseline updated — {} finding(s) across {} file(s) recorded in {}",
            b.total(),
            findings.iter().map(|(p, _)| p).collect::<std::collections::BTreeSet<_>>().len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match &args.baseline {
        Some(path) => {
            let text = fs::read_to_string(path)
                .map_err(|e| format!("reading baseline {}: {e}", path.display()))?;
            Baseline::parse(&text)
                .map_err(|e| format!("{}:{}: {}", path.display(), e.line, e.message))?
        }
        None => Baseline::default(),
    };
    let (reported, absorbed) = baseline.apply(findings);

    for (path, d) in &reported {
        let line = sources
            .get(path)
            .and_then(|ls| ls.get(d.line.saturating_sub(1)))
            .map(String::as_str);
        emit(path, d, line, args.json);
    }
    // Cache statistics go to stderr in both modes: check.sh surfaces
    // them next to its wall-time report.
    eprintln!(
        "numlint: cache {} hit(s), {} miss(es){}",
        cache.hits,
        cache.misses,
        if args.no_cache { " (cache disabled)" } else { "" }
    );
    if !args.json {
        if reported.is_empty() {
            eprintln!(
                "numlint: clean — {} file(s) checked, {} legacy finding(s) baselined",
                files.len(),
                absorbed
            );
        } else {
            eprintln!(
                "numlint: {} finding(s) ({} baselined) — fix, `// numlint:allow(RULE) reason`, \
                 or regenerate the baseline via scripts/numlint-baseline.sh",
                reported.len(),
                absorbed
            );
        }
    }
    Ok(if reported.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("check") => match parse_args(&argv[1..]) {
            Ok(args) => match run_check(&args) {
                Ok(code) => code,
                Err(e) => {
                    eprintln!("numlint: error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("numlint: {e}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("doccheck") => match run_doccheck(&argv[1..]) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("numlint: error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("rules") => {
            for r in RULES {
                println!("{:8} {}", r.id, r.summary);
            }
            for (id, summary) in WORKSPACE_RULES {
                println!("{id:8} {summary}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
