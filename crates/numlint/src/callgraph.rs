//! The workspace call graph: resolves the syntactic call sites from
//! `symbols` against the global function table and materializes edges.
//!
//! Resolution policy (conservative toward *more* edges, never fewer,
//! within the workspace):
//!
//! - **Method calls** (`recv.name(…)`) have no receiver types on a
//!   token stream, so they resolve to the union of every *library-crate*
//!   method named `name`. A call that might hit a panicking method is
//!   treated as if it does. Methods in tooling crates (cli, bench,
//!   numlint) are excluded from the union: their names (`parse`, `load`,
//!   `run`) collide with std methods constantly, and they make no
//!   PANIC02/DET03 promises that reaching them could break.
//! - **Qualified calls** (`a::b::name(…)`) expand `use` aliases and
//!   `crate` / `self` / `super` / `Self` prefixes, then match the path
//!   as a suffix of fully qualified names. A leading workspace crate
//!   name pins the candidate crate.
//! - **Bare calls** (`name(…)`) try the alias map, then the caller's
//!   own module, then the caller's crate — the three places Rust's own
//!   resolution could find a callable without an import.
//! - Calls that resolve to nothing are std/core/macro territory and
//!   contribute no workspace effects; *direct* effect seeds (the panic
//!   and clock token classes) already cover what matters there.

use crate::engine::{FileAnalysis, LIBRARY_CRATES};
use crate::symbols::FnSym;
use std::collections::{BTreeMap, BTreeSet};

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Callee index into [`CallGraph::fns`].
    pub callee: usize,
    /// Call-site line in the caller's file.
    pub line: usize,
    /// True if the call sits inside a `catch_unwind(...)` argument:
    /// panic-class effects do not cross this edge.
    pub contained: bool,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Flattened function table, in deterministic (file, line) order.
    pub fns: Vec<FnSym>,
    /// Outgoing edges per function, sorted and deduplicated.
    pub edges: Vec<Vec<Edge>>,
}

/// Builds the call graph from per-file analyses (keyed by
/// workspace-relative path, so iteration order — and therefore fn ids,
/// edge order, and every downstream diagnostic — is deterministic).
pub fn build(files: &BTreeMap<String, FileAnalysis>) -> CallGraph {
    let mut fns: Vec<FnSym> = Vec::new();
    let mut aliases: BTreeMap<&str, BTreeMap<&str, &str>> = BTreeMap::new();
    for (path, fa) in files {
        fns.extend(fa.symbols.fns.iter().cloned());
        let map = aliases.entry(path.as_str()).or_default();
        for (alias, full) in &fa.symbols.aliases {
            map.insert(alias.as_str(), full.as_str());
        }
    }

    // Name-keyed candidate indices.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut crates: BTreeSet<&str> = BTreeSet::new();
    for (id, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(id);
        if let Some(c) = f.qual.split("::").next() {
            crates.insert(c);
        }
    }

    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
    for (id, f) in fns.iter().enumerate() {
        let file_aliases = aliases.get(f.file.as_str());
        let mut set: BTreeSet<Edge> = BTreeSet::new();
        for call in &f.calls {
            for callee in resolve(call.is_method, &call.path, f, &fns, &by_name, &crates, file_aliases)
            {
                if callee != id {
                    set.insert(Edge { callee, line: call.line, contained: call.contained });
                }
            }
        }
        edges[id] = set.into_iter().collect();
    }
    CallGraph { fns, edges }
}

/// Resolves one call site to its candidate callee ids (sorted).
fn resolve(
    is_method: bool,
    path: &str,
    caller: &FnSym,
    fns: &[FnSym],
    by_name: &BTreeMap<&str, Vec<usize>>,
    crates: &BTreeSet<&str>,
    aliases: Option<&BTreeMap<&str, &str>>,
) -> Vec<usize> {
    let mut segs: Vec<String> = path.split("::").map(str::to_string).collect();
    let name = match segs.last() {
        Some(n) => n.clone(),
        None => return Vec::new(),
    };
    let Some(candidates) = by_name.get(name.as_str()) else { return Vec::new() };

    if is_method {
        // Union of every library-crate method with this name; tooling
        // crates are excluded (see the module doc's resolution policy).
        return candidates
            .iter()
            .copied()
            .filter(|&i| {
                !fns[i].self_ty.is_empty()
                    && fns[i]
                        .qual
                        .split("::")
                        .next()
                        .is_some_and(|c| LIBRARY_CRATES.contains(&c))
            })
            .collect();
    }

    // Expand a leading alias (`use numkit::svd::jacobi;` → bare
    // `jacobi(…)`, `use numkit::svd;` → `svd::jacobi(…)`).
    if let Some(map) = aliases {
        if let Some(full) = map.get(segs[0].as_str()) {
            let mut expanded: Vec<String> = full.split("::").map(str::to_string).collect();
            expanded.extend(segs.drain(1..));
            segs = expanded;
        }
    }
    // Normalize crate-relative prefixes against the caller's position.
    let caller_crate = caller.qual.split("::").next().unwrap_or("").to_string();
    match segs[0].as_str() {
        "crate" => segs[0] = caller_crate.clone(),
        "self" => {
            let mut pre: Vec<String> = caller.module.split("::").map(str::to_string).collect();
            pre.extend(segs.drain(1..));
            segs = pre;
        }
        "super" => {
            let mut pre: Vec<String> = caller.module.split("::").map(str::to_string).collect();
            while segs.first().is_some_and(|s| s == "super") {
                segs.remove(0);
                pre.pop();
            }
            pre.append(&mut segs);
            segs = pre;
        }
        "Self" if !caller.self_ty.is_empty() => segs[0] = caller.self_ty.clone(),
        "std" | "core" | "alloc" => return Vec::new(),
        _ => {}
    }

    if segs.len() == 1 {
        // Bare call: the caller's module first, then the caller's crate.
        let in_module: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| fns[i].self_ty.is_empty() && fns[i].module == caller.module)
            .collect();
        if !in_module.is_empty() {
            return in_module;
        }
        return candidates
            .iter()
            .copied()
            .filter(|&i| {
                fns[i].self_ty.is_empty()
                    && fns[i].qual.split("::").next() == Some(caller_crate.as_str())
            })
            .collect();
    }

    // Qualified call: suffix-match against fully qualified names. A
    // leading workspace crate name additionally pins the crate.
    let suffix = segs.join("::");
    let crate_pin =
        if crates.contains(segs[0].as_str()) { Some(segs[0].clone()) } else { None };
    candidates
        .iter()
        .copied()
        .filter(|&i| {
            let q = &fns[i].qual;
            let suffix_ok = q == &suffix || q.ends_with(&format!("::{suffix}"));
            let tail_ok = || {
                // `Mat::new(…)` written without the module: match the
                // last two segments (type + name) too.
                segs.len() == 2
                    && !fns[i].self_ty.is_empty()
                    && fns[i].self_ty == segs[0]
            };
            let crate_ok = match &crate_pin {
                Some(c) => q.split("::").next() == Some(c.as_str()),
                None => true,
            };
            (suffix_ok || tail_ok()) && crate_ok
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_file;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let mut map = BTreeMap::new();
        for (path, src) in files {
            map.insert(path.to_string(), analyze_file(path, src));
        }
        build(&map)
    }

    fn edge_quals(g: &CallGraph, caller: &str) -> Vec<String> {
        let id = g.fns.iter().position(|f| f.qual == caller).expect("caller");
        g.edges[id].iter().map(|e| g.fns[e.callee].qual.clone()).collect()
    }

    #[test]
    fn cross_crate_qualified_and_alias_resolution() {
        let g = graph(&[
            (
                "crates/pmtbr/src/pipeline.rs",
                "use numkit::svd::jacobi;\n\
                 pub fn run() -> Result<(), E> { jacobi(); numkit::svd::precondition(); Ok(()) }\n",
            ),
            (
                "crates/numkit/src/svd.rs",
                "pub fn jacobi() {}\npub fn precondition() {}\n",
            ),
        ]);
        let quals = edge_quals(&g, "pmtbr::pipeline::run");
        assert!(quals.contains(&"numkit::svd::jacobi".to_string()), "{quals:?}");
        assert!(quals.contains(&"numkit::svd::precondition".to_string()), "{quals:?}");
    }

    #[test]
    fn bare_calls_stay_in_module_then_crate() {
        let g = graph(&[
            (
                "crates/lti/src/a.rs",
                "pub fn top() { helper(); other_mod_fn(); }\nfn helper() {}\n",
            ),
            ("crates/lti/src/b.rs", "pub fn other_mod_fn() {}\nfn helper() {}\n"),
            ("crates/numkit/src/c.rs", "pub fn other_mod_fn() {}\n"),
        ]);
        let quals = edge_quals(&g, "lti::a::top");
        // `helper` resolves to the same-module one only.
        assert!(quals.contains(&"lti::a::helper".to_string()), "{quals:?}");
        assert!(!quals.contains(&"lti::b::helper".to_string()), "{quals:?}");
        // `other_mod_fn` falls back to the caller's crate, not numkit.
        assert!(quals.contains(&"lti::b::other_mod_fn".to_string()), "{quals:?}");
        assert!(!quals.contains(&"numkit::c::other_mod_fn".to_string()), "{quals:?}");
    }

    #[test]
    fn method_calls_union_all_candidates() {
        let g = graph(&[
            (
                "crates/numkit/src/mat.rs",
                "impl Mat { pub fn compress(&self) {} }\n",
            ),
            (
                "crates/sparsekit/src/lu.rs",
                "impl SparseLu { pub fn compress(&self) {} }\n",
            ),
            ("crates/lti/src/a.rs", "pub fn go(x: &Mat) { x.compress(); }\n"),
        ]);
        let quals = edge_quals(&g, "lti::a::go");
        assert_eq!(quals.len(), 2, "{quals:?}");
    }

    #[test]
    fn type_qualified_assoc_fn() {
        let g = graph(&[
            (
                "crates/numkit/src/mat.rs",
                "impl Mat { pub fn new() -> Mat { Mat }\n pub fn helper(&self) {} }\n",
            ),
            ("crates/lti/src/a.rs", "pub fn go() { let m = Mat::new(); Self_less(); }\n"),
        ]);
        let quals = edge_quals(&g, "lti::a::go");
        assert!(quals.contains(&"numkit::mat::Mat::new".to_string()), "{quals:?}");
    }

    #[test]
    fn std_paths_resolve_to_nothing() {
        let g = graph(&[(
            "crates/lti/src/a.rs",
            "pub fn go() { std::mem::take(x); core::iter::empty(); }\nfn take() {}\nfn empty() {}\n",
        )]);
        assert!(edge_quals(&g, "lti::a::go").is_empty());
    }
}
