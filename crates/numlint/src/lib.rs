//! `numlint` — the PMTBR workspace's in-tree static analyzer.
//!
//! Clippy enforces general Rust hygiene; `numlint` enforces the
//! *project-specific* numerical contracts that no generic linter can
//! know about:
//!
//! - **Determinism** (DET01/DET02): sweeps must be bit-identical at any
//!   thread count, so nothing order-sensitive may iterate a `HashMap`
//!   and library crates may not read wall clocks.
//! - **Panic safety** (PANIC01/ERR01): the library crates promise
//!   `NumError` propagation; panicking shortcuts are hard errors, with
//!   a count-based baseline for incremental burndown of legacy sites.
//! - **Float discipline** (FLOAT01/FLOAT02): exact float comparisons
//!   and bare lossy casts in the numerical kernels must be either
//!   eliminated or justified in-line.
//! - **Concurrency discipline** (CONC01): no `static mut`, and atomics
//!   stick to `Ordering::Relaxed` — every atomic in the workspace is an
//!   independent counter, never a synchronization point.
//!
//! Since v2 the analyzer is whole-workspace, not per-file: a symbol
//! pass ([`symbols`]) extracts a module-path-qualified function table
//! from each file's token stream, [`callgraph`] resolves call sites
//! into a workspace call graph, and [`effects`] runs a fixpoint that
//! propagates `may_panic` and `reads_wall_clock` bits through it —
//! honoring `catch_unwind` containment boundaries. Three
//! interprocedural rules gate on the result: PANIC02 (pub Result fns
//! reaching panic sites, reported with full witness call chains), DET03
//! (transitive wall-clock reachability), and SAFE01
//! (`#![forbid(unsafe_code)]` pinned in every library crate). Per-file
//! analyses are memoized in a content-hash [`cache`] under
//! `target/numlint-cache/` so warm runs are sub-second.
//!
//! The analyzer is zero-dependency and std-only by design — it must
//! build in the same offline environment as the crates it audits. See
//! `DESIGN.md` ("Static analysis architecture") for the rule table,
//! suppression syntax, and baseline workflow.

pub mod baseline;
pub mod cache;
pub mod callgraph;
pub mod doccheck;
pub mod effects;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod symbols;
pub mod walk;

pub use baseline::Baseline;
pub use engine::{analyze_file, workspace_diagnostics, Diagnostic, FileAnalysis, FileClass, FileContext};

/// Lints one file's source text under the given classification and
/// returns sorted diagnostics (suppressions and test-region exemptions
/// already applied). This is the single entry point shared by the CLI
/// driver and the golden-fixture tests.
pub fn lint_source(class: FileClass, src: &str) -> Vec<Diagnostic> {
    FileContext::new(class, src).run()
}
