//! Symbol extraction: one pass over a file's token stream produces the
//! module-path-qualified function table the workspace call graph is
//! built from.
//!
//! This is deliberately *not* a parser. A scope stack tracks `mod` /
//! `impl` / `fn` nesting by brace matching, each `fn` item becomes a
//! [`FnSym`] with its effect seeds (panic macros, `.unwrap()` /
//! `.expect(`, slice-index expressions, wall-clock reads) and call
//! sites, and `use` declarations become an alias map for call
//! resolution. Anything the scan cannot attribute precisely is recorded
//! conservatively; the resolution policy in `callgraph` then unions
//! candidate callees rather than guessing one.

use crate::engine::FileClass;
use crate::lexer::{Lexed, TokKind, Token};
use std::ops::RangeInclusive;

/// Effect bit: reaches `panic!` / `todo!` / `unimplemented!`.
pub const EFF_PANIC_MACRO: u8 = 1;
/// Effect bit: reaches `.unwrap()` / `.expect(`.
pub const EFF_UNWRAP: u8 = 2;
/// Effect bit: reaches a slice/array index expression (`x[i]`).
pub const EFF_INDEX: u8 = 4;
/// Effect bit: reaches a wall-clock read (`Instant`, `SystemTime`, …).
pub const EFF_CLOCK: u8 = 8;
/// The panic-effect bits PANIC02 gates on. Index expressions are
/// tracked and reported in `--json` effect dumps but not gated: the
/// numeric kernels index slices pervasively and bounds are the
/// kernels' own loop invariants, not an error-propagation contract.
pub const EFF_GATED_PANIC: u8 = EFF_PANIC_MACRO | EFF_UNWRAP;
/// Every panic-class bit — the set a `catch_unwind` boundary clears.
pub const EFF_PANIC_ALL: u8 = EFF_PANIC_MACRO | EFF_UNWRAP | EFF_INDEX;

/// A direct effect source inside one function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seed {
    pub effect: u8,
    /// Human-readable site, e.g. `.unwrap()`, `panic!`, `Instant`.
    pub what: String,
    pub line: usize,
    /// True if the seed sits lexically inside a `catch_unwind(...)`
    /// argument — panic-class effects do not escape such a seed.
    pub contained: bool,
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path text as written, `::`-joined (`jacobi`, `svd::jacobi`,
    /// `numkit::svd::jacobi`). For method calls, just the method name.
    pub path: String,
    pub is_method: bool,
    pub line: usize,
    /// True if the call sits lexically inside a `catch_unwind(...)`
    /// argument: panic effects of the callee are contained there.
    pub contained: bool,
}

/// One function (free fn, inherent or trait method) in the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSym {
    /// Last path segment (`jacobi_step`).
    pub name: String,
    /// Fully qualified display path: `numkit::svd::jacobi_step`,
    /// `numkit::mat::Mat::matmul`.
    pub qual: String,
    /// Module path the fn is defined in (`numkit::svd`).
    pub module: String,
    /// Enclosing `impl` self type (`Mat`), empty for free fns.
    pub self_ty: String,
    /// Workspace-relative file path.
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub is_pub: bool,
    pub returns_result: bool,
    /// True inside the obs `WallClock` carve-out (DET03 never fires on
    /// these, matching DET02's structural exemption).
    pub in_wallclock: bool,
    pub seeds: Vec<Seed>,
    pub calls: Vec<CallSite>,
}

/// Extraction result for one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileSymbols {
    pub fns: Vec<FnSym>,
    /// `use` aliases: local name → full path text as written.
    pub aliases: Vec<(String, String)>,
}

/// Keywords that can directly precede `(` or `[` without being a call
/// or an index expression.
const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "mut", "ref", "move", "fn", "impl", "trait", "struct", "enum", "union", "mod", "use",
    "pub", "where", "unsafe", "dyn", "box", "await", "async", "static", "const", "type",
];

/// Derives the module path for a workspace-relative file path:
/// `crates/numkit/src/svd.rs` → `numkit::svd`,
/// `crates/lti/src/sub/mod.rs` → `lti::sub`, root `src/…` → the
/// `pmtbr_suite` integration crate. Dashes become underscores, matching
/// how the crate is named in Rust paths.
pub fn module_path(file: &str, class: &FileClass) -> String {
    let parts: Vec<&str> = file.split('/').collect();
    let (crate_ident, rest): (String, &[&str]) = match class {
        FileClass::CrateSrc(c) => (c.replace('-', "_"), parts.get(3..).unwrap_or(&[])),
        _ => ("pmtbr_suite".to_string(), parts.get(1..).unwrap_or(&[])),
    };
    let mut segs = vec![crate_ident];
    for (i, p) in rest.iter().enumerate() {
        let is_last = i + 1 == rest.len();
        if is_last {
            let stem = p.strip_suffix(".rs").unwrap_or(p);
            if !matches!(stem, "lib" | "mod" | "main") {
                segs.push(stem.replace('-', "_"));
            }
        } else {
            segs.push(p.replace('-', "_"));
        }
    }
    segs.join("::")
}

/// Token-index extents (inclusive) of `catch_unwind(...)` argument
/// lists: everything inside is panic-contained, matching the PR 7
/// containment model (`catch_unwind(AssertUnwindSafe(|| …))`).
fn catch_unwind_extents(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut extents = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("catch_unwind") || !toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        let mut depth = 0i32;
        for (j, u) in toks.iter().enumerate().skip(i + 1) {
            if u.is_punct("(") {
                depth += 1;
            } else if u.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    extents.push((i + 1, j));
                    break;
                }
            }
        }
    }
    extents
}

/// Token-index extents of `#[...]` attributes, so attribute arguments
/// (`#[cfg(test)]`, `#[allow(...)]`) are never mistaken for calls.
fn attribute_extents(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut extents = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        if toks[i].is_punct("#")
            && (toks[i + 1].is_punct("[")
                || (toks[i + 1].is_punct("!") && toks.get(i + 2).is_some_and(|t| t.is_punct("["))))
        {
            let open = if toks[i + 1].is_punct("[") { i + 1 } else { i + 2 };
            let mut depth = 0i32;
            let mut j = open;
            while j < toks.len() {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            extents.push((i, j.min(toks.len().saturating_sub(1))));
            i = j + 1;
            continue;
        }
        i += 1;
    }
    extents
}

fn within(extents: &[(usize, usize)], i: usize) -> bool {
    extents.iter().any(|&(s, e)| (s..=e).contains(&i))
}

/// Parses the self-type name out of an `impl` header starting at token
/// `i` (the `impl` keyword): `impl<T> Mat<T>` → `Mat`,
/// `impl Clock for WallClock` → `WallClock`.
fn impl_self_type(toks: &[Token], i: usize) -> String {
    let mut j = i + 1;
    // Skip the generic parameter list.
    if toks.get(j).is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct("<") {
                depth += 1;
            } else if toks[j].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // If a `for` appears before the body, the self type follows it.
    let mut k = j;
    let mut after_for: Option<usize> = None;
    let mut depth = 0i32;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct("(") | TokKind::Punct("[") | TokKind::Punct("<") => depth += 1,
            TokKind::Punct(")") | TokKind::Punct("]") | TokKind::Punct(">") => depth -= 1,
            TokKind::Ident(s) if s == "for" && depth == 0 => {
                after_for = Some(k + 1);
                break;
            }
            TokKind::Punct("{") | TokKind::Punct(";") if depth <= 0 => break,
            _ => {}
        }
        k += 1;
    }
    let start = after_for.unwrap_or(j);
    let mut m = start;
    while m < toks.len() {
        match &toks[m].kind {
            TokKind::Punct("&") | TokKind::Punct("*") | TokKind::Lifetime(_) => m += 1,
            TokKind::Ident(s) if matches!(s.as_str(), "mut" | "dyn" | "const") => m += 1,
            TokKind::Ident(s) => {
                // Walk path segments; the *last* segment names the type.
                let mut name = s.clone();
                let mut p = m + 1;
                while toks.get(p).is_some_and(|t| t.is_punct("::")) {
                    if let Some(TokKind::Ident(next)) = toks.get(p + 1).map(|t| &t.kind) {
                        name = next.clone();
                        p += 2;
                    } else {
                        break;
                    }
                }
                return name;
            }
            _ => break,
        }
    }
    String::new()
}

/// What a `{` we are about to enter belongs to.
enum Pending {
    Mod(String),
    Impl(String),
    Fn(Box<FnSym>),
}

enum Scope {
    Mod(String),
    Impl(String),
    Fn(usize),
    Other,
}

/// Parses the fn signature at token `i` (the `fn` keyword): returns
/// (name token idx, is_pub, returns_result). The arrow/Result scan
/// mirrors ERR01's: only depth-0 arrows before a `where` clause count.
fn fn_signature(toks: &[Token], i: usize) -> (Option<usize>, bool, bool) {
    let name_idx = match toks.get(i + 1).map(|t| &t.kind) {
        Some(TokKind::Ident(_)) => Some(i + 1),
        _ => None,
    };
    let mut lead = i;
    let mut is_pub = false;
    for _ in 0..8 {
        if lead == 0 {
            break;
        }
        lead -= 1;
        match &toks[lead].kind {
            TokKind::Punct("{") | TokKind::Punct("}") | TokKind::Punct(";") => break,
            TokKind::Ident(s) if s == "pub" => {
                is_pub = true;
                break;
            }
            _ => {}
        }
    }
    let mut j = i + 1;
    let mut depth = 0i32;
    let mut arrow = false;
    let mut in_where = false;
    let mut returns_result = false;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct("(") | TokKind::Punct("[") => depth += 1,
            TokKind::Punct(")") | TokKind::Punct("]") => depth -= 1,
            TokKind::Ident(s) if s == "where" && depth == 0 => in_where = true,
            TokKind::Punct("->") if depth == 0 && !in_where => arrow = true,
            TokKind::Ident(s) if arrow && !in_where && s == "Result" => returns_result = true,
            TokKind::Punct("{") | TokKind::Punct(";") if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    (name_idx, is_pub, returns_result)
}

/// Collects the call path ending at the identifier token `i`
/// (`a::b::name`), walking `ident ::` pairs backwards. Returns the
/// segments in source order.
fn path_segments(toks: &[Token], i: usize) -> Vec<String> {
    let mut segs = vec![toks[i].ident().unwrap_or("").to_string()];
    let mut j = i;
    while j >= 2 && toks[j - 1].is_punct("::") {
        match &toks[j - 2].kind {
            TokKind::Ident(s) => {
                segs.insert(0, s.clone());
                j -= 2;
            }
            _ => break,
        }
    }
    segs
}

/// True if the identifier at `i` heads a call's argument list,
/// accepting an optional `::<…>` turbofish between name and `(`.
fn followed_by_call_parens(toks: &[Token], i: usize) -> bool {
    match toks.get(i + 1) {
        Some(t) if t.is_punct("(") => true,
        Some(t) if t.is_punct("::") => {
            if !toks.get(i + 2).is_some_and(|t| t.is_punct("<")) {
                return false;
            }
            let mut depth = 0i32;
            for (j, u) in toks.iter().enumerate().skip(i + 2).take(48) {
                if u.is_punct("<") {
                    depth += 1;
                } else if u.is_punct(">") {
                    depth -= 1;
                    if depth == 0 {
                        return toks.get(j + 1).is_some_and(|t| t.is_punct("("));
                    }
                } else if u.is_punct(";") || u.is_punct("{") {
                    return false;
                }
            }
            false
        }
        _ => false,
    }
}

/// Parses one `use` declaration starting after the `use` keyword and
/// appends (alias → full path) pairs. Handles `a::b::c`,
/// `a::b as x`, nested groups `a::{b, c::d}`, and `self` inside
/// groups; glob imports are skipped (nothing callable is named by `*`).
fn parse_use_tree(
    toks: &[Token],
    i: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut Vec<(String, String)>,
) {
    let base = prefix.len();
    loop {
        match toks.get(*i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => {
                let seg = s.clone();
                *i += 1;
                if toks.get(*i).is_some_and(|t| t.is_punct("::")) {
                    *i += 1;
                    prefix.push(seg);
                    continue;
                }
                // Leaf segment, possibly renamed.
                let mut alias = seg.clone();
                if toks.get(*i).is_some_and(|t| t.is_ident("as")) {
                    if let Some(TokKind::Ident(a)) = toks.get(*i + 1).map(|t| &t.kind) {
                        alias = a.clone();
                        *i += 2;
                    }
                }
                if seg == "self" {
                    if let Some(last) = prefix.last() {
                        let name = if alias == "self" { last.clone() } else { alias };
                        out.push((name, prefix.join("::")));
                    }
                } else {
                    let mut full = prefix.clone();
                    full.push(seg);
                    out.push((alias, full.join("::")));
                }
            }
            Some(TokKind::Punct("{")) => {
                *i += 1;
                loop {
                    parse_use_tree(toks, i, prefix, out);
                    match toks.get(*i).map(|t| &t.kind) {
                        Some(TokKind::Punct(",")) => {
                            *i += 1;
                            continue;
                        }
                        Some(TokKind::Punct("}")) => {
                            *i += 1;
                            break;
                        }
                        _ => return,
                    }
                }
            }
            Some(TokKind::Punct("*")) => {
                *i += 1;
            }
            _ => {}
        }
        prefix.truncate(base);
        return;
    }
}

/// Extracts the function table, seeds, call sites, and `use` aliases
/// for one file. `test_regions` drops test-only functions from the
/// table entirely (they are rule-exempt and would only add resolution
/// noise); `wallclock` carve-out extents suppress clock seeds inside
/// the sanctioned `obs::WallClock` items.
pub fn extract(
    file: &str,
    class: &FileClass,
    lexed: &Lexed,
    test_regions: &[RangeInclusive<usize>],
    wallclock: &[(usize, usize)],
) -> FileSymbols {
    let toks = &lexed.tokens;
    let module_root = module_path(file, class);
    let catch = catch_unwind_extents(toks);
    let attrs = attribute_extents(toks);
    let in_test = |line: usize| test_regions.iter().any(|r| r.contains(&line));

    let mut out = FileSymbols::default();
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut pending_pd = 0i32;
    let mut last_index_line = (usize::MAX, 0usize); // (fn idx, line) dedup

    let cur_mods = |stack: &[Scope], root: &str| -> String {
        let mut segs = vec![root.to_string()];
        for s in stack {
            if let Scope::Mod(m) = s {
                segs.push(m.clone());
            }
        }
        segs.join("::")
    };
    let cur_impl = |stack: &[Scope]| -> String {
        stack
            .iter()
            .rev()
            .find_map(|s| match s {
                Scope::Impl(t) => Some(t.clone()),
                _ => None,
            })
            .unwrap_or_default()
    };
    let cur_fn = |stack: &[Scope]| -> Option<usize> {
        stack.iter().rev().find_map(|s| match s {
            Scope::Fn(id) => Some(*id),
            _ => None,
        })
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match &t.kind {
            TokKind::Punct("{") => {
                let scope = match pending.take() {
                    Some(Pending::Mod(m)) => Scope::Mod(m),
                    Some(Pending::Impl(ty)) => Scope::Impl(ty),
                    Some(Pending::Fn(sym)) => {
                        out.fns.push(*sym);
                        Scope::Fn(out.fns.len() - 1)
                    }
                    None => Scope::Other,
                };
                stack.push(scope);
                pending_pd = 0;
            }
            TokKind::Punct("}") => {
                stack.pop();
            }
            TokKind::Punct(";") if pending_pd == 0 => {
                // `mod x;`, trait method declarations, `use …;` — the
                // pending item has no body.
                pending = None;
            }
            TokKind::Punct("(") | TokKind::Punct("[") if pending.is_some() => pending_pd += 1,
            TokKind::Punct(")") | TokKind::Punct("]") if pending.is_some() => pending_pd -= 1,
            TokKind::Ident(id) => {
                match id.as_str() {
                    "mod" => {
                        if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                            pending = Some(Pending::Mod(name.clone()));
                            pending_pd = 0;
                        }
                    }
                    "impl" => {
                        pending = Some(Pending::Impl(impl_self_type(toks, i)));
                        pending_pd = 0;
                    }
                    "use" => {
                        // `use` both at item level and inside fns feeds
                        // the same per-file alias map (`pub use`
                        // re-exports reach here with `use` at i).
                        let mut j = i + 1;
                        let mut prefix = Vec::new();
                        parse_use_tree(toks, &mut j, &mut prefix, &mut out.aliases);
                        i = j;
                        continue;
                    }
                    "fn" => {
                        let (name_idx, is_pub, returns_result) = fn_signature(toks, i);
                        if let Some(ni) = name_idx {
                            let name = toks[ni].ident().unwrap_or("").to_string();
                            if !in_test(toks[i].line) && !name.is_empty() {
                                let module = cur_mods(&stack, &module_root);
                                let self_ty = cur_impl(&stack);
                                let qual = if self_ty.is_empty() {
                                    format!("{module}::{name}")
                                } else {
                                    format!("{module}::{self_ty}::{name}")
                                };
                                pending = Some(Pending::Fn(Box::new(FnSym {
                                    name,
                                    qual,
                                    module,
                                    self_ty,
                                    file: file.to_string(),
                                    line: toks[ni].line,
                                    col: toks[ni].col,
                                    is_pub,
                                    returns_result,
                                    in_wallclock: within(wallclock, i),
                                    seeds: Vec::new(),
                                    calls: Vec::new(),
                                })));
                                pending_pd = 0;
                            }
                        }
                    }
                    _ => {
                        if let Some(fi) = cur_fn(&stack) {
                            if !within(&attrs, i) {
                                collect_in_fn(toks, i, id, &catch, wallclock, &mut out.fns[fi]);
                            }
                        }
                    }
                }
            }
            TokKind::Punct("[") => {
                // Index expression inside a fn body: `expr[i]`.
                if let Some(fi) = cur_fn(&stack) {
                    if !within(&attrs, i) && i >= 1 {
                        let is_index = match &toks[i - 1].kind {
                            TokKind::Ident(p) => !KEYWORDS.contains(&p.as_str()),
                            TokKind::Punct(")") | TokKind::Punct("]") => true,
                            _ => false,
                        };
                        if is_index && last_index_line != (fi, t.line) {
                            last_index_line = (fi, t.line);
                            out.fns[fi].seeds.push(Seed {
                                effect: EFF_INDEX,
                                what: "[]-index".to_string(),
                                line: t.line,
                                contained: within(&catch, i),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out.aliases.sort();
    out.aliases.dedup();
    out
}

/// Records seeds and call sites for one identifier token inside a fn
/// body. Split out of `extract` to keep the scanner loop readable.
fn collect_in_fn(
    toks: &[Token],
    i: usize,
    id: &str,
    catch: &[(usize, usize)],
    wallclock: &[(usize, usize)],
    f: &mut FnSym,
) {
    let line = toks[i].line;
    let contained = within(catch, i);
    match id {
        "unwrap" | "expect"
            if i >= 1
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) =>
        {
            f.seeds.push(Seed {
                effect: EFF_UNWRAP,
                what: format!(".{id}()"),
                line,
                contained,
            });
        }
        "panic" | "todo" | "unimplemented"
            if toks.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
        {
            f.seeds.push(Seed {
                effect: EFF_PANIC_MACRO,
                what: format!("{id}!"),
                line,
                contained,
            });
        }
        "Instant" | "SystemTime" | "UNIX_EPOCH" => {
            if !within(wallclock, i) {
                f.seeds.push(Seed {
                    effect: EFF_CLOCK,
                    what: id.to_string(),
                    line,
                    contained,
                });
            }
        }
        _ => {
            // `catch_unwind` is the containment boundary itself, never
            // a workspace callee; keywords head control flow, not
            // calls; `Ok(…)` and friends are enum constructors.
            if KEYWORDS.contains(&id)
                || matches!(id, "catch_unwind" | "Ok" | "Err" | "Some" | "None")
            {
                return;
            }
            if !followed_by_call_parens(toks, i) {
                return;
            }
            let prev = i.checked_sub(1).map(|j| &toks[j]);
            let is_method = prev.is_some_and(|p| p.is_punct("."));
            if is_method {
                f.calls.push(CallSite { path: id.to_string(), is_method: true, line, contained });
                return;
            }
            // Skip declarations (`fn name(`).
            if prev.is_some_and(|p| p.is_ident("fn")) {
                return;
            }
            // Skip the middle of a longer path: `a::b(` scanning at `b`
            // collects the whole path; at `a` the next token is `::`,
            // so `followed_by_call_parens` already rejected it.
            let segs = path_segments(toks, i);
            f.calls.push(CallSite {
                path: segs.join("::"),
                is_method: false,
                line,
                contained,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn extract_src(src: &str) -> FileSymbols {
        let lexed = lexer::lex(src);
        extract(
            "crates/numkit/src/svd.rs",
            &FileClass::CrateSrc("numkit".into()),
            &lexed,
            &[],
            &[],
        )
    }

    #[test]
    fn module_paths() {
        let c = |s: &str| FileClass::classify(s);
        assert_eq!(module_path("crates/numkit/src/svd.rs", &c("crates/numkit/src/svd.rs")), "numkit::svd");
        assert_eq!(module_path("crates/lti/src/lib.rs", &c("crates/lti/src/lib.rs")), "lti");
        assert_eq!(module_path("crates/lti/src/sub/mod.rs", &c("crates/lti/src/sub/mod.rs")), "lti::sub");
        assert_eq!(module_path("src/lib.rs", &c("src/lib.rs")), "pmtbr_suite");
    }

    #[test]
    fn fn_table_with_impl_and_mod() {
        let s = extract_src(
            "pub fn top() -> Result<(), E> { helper(); Ok(()) }\n\
             fn helper() { x.unwrap(); }\n\
             mod inner {\n    pub fn deep() {}\n}\n\
             impl Mat {\n    pub fn get(&self) -> f64 { self.data[3] }\n}\n\
             impl Clock for WallClock {\n    fn now(&mut self) -> u64 { 0 }\n}\n",
        );
        let quals: Vec<&str> = s.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "numkit::svd::top",
                "numkit::svd::helper",
                "numkit::svd::inner::deep",
                "numkit::svd::Mat::get",
                "numkit::svd::WallClock::now",
            ]
        );
        let top = &s.fns[0];
        assert!(top.is_pub && top.returns_result);
        assert_eq!(top.calls.len(), 1);
        assert_eq!(top.calls[0].path, "helper");
        let helper = &s.fns[1];
        assert_eq!(helper.seeds.len(), 1);
        assert_eq!(helper.seeds[0].effect, EFF_UNWRAP);
        let get = &s.fns[3];
        assert!(get.seeds.iter().any(|sd| sd.effect == EFF_INDEX));
    }

    #[test]
    fn seeds_and_containment() {
        let s = extract_src(
            "fn a() { panic!(\"x\"); }\n\
             fn b() { let _ = catch_unwind(AssertUnwindSafe(|| { danger(); x.unwrap(); }));\n    after(); }\n",
        );
        let a = &s.fns[0];
        assert_eq!(a.seeds[0].effect, EFF_PANIC_MACRO);
        assert!(!a.seeds[0].contained);
        let b = &s.fns[1];
        let danger = b.calls.iter().find(|c| c.path == "danger").expect("danger call");
        assert!(danger.contained);
        let after = b.calls.iter().find(|c| c.path == "after").expect("after call");
        assert!(!after.contained);
        let unwrap = b.seeds.iter().find(|sd| sd.effect == EFF_UNWRAP).expect("unwrap seed");
        assert!(unwrap.contained);
        // catch_unwind itself is never recorded as a workspace call.
        assert!(b.calls.iter().all(|c| c.path != "catch_unwind"));
    }

    #[test]
    fn clock_seeds_and_wallclock_carveout() {
        let src = "impl WallClock {\n    fn now(&self) -> u64 { let _ = Instant::now(); 0 }\n}\n\
                   fn sneaky() { let _ = std::time::Instant::now(); }\n";
        let lexed = lexer::lex(src);
        // Carve out the WallClock impl tokens, mirroring rules::det02.
        let wc = crate::rules::wallclock_extents(&lexed.tokens, "WallClock");
        let s = extract(
            "crates/obs/src/clock.rs",
            &FileClass::CrateSrc("obs".into()),
            &lexed,
            &[],
            &wc,
        );
        let now = s.fns.iter().find(|f| f.name == "now").expect("now");
        assert!(now.in_wallclock);
        assert!(now.seeds.iter().all(|sd| sd.effect != EFF_CLOCK));
        let sneaky = s.fns.iter().find(|f| f.name == "sneaky").expect("sneaky");
        assert!(sneaky.seeds.iter().any(|sd| sd.effect == EFF_CLOCK));
    }

    #[test]
    fn call_paths_methods_and_turbofish() {
        let s = extract_src(
            "fn f() {\n\
             svd::jacobi(m);\n\
             numkit::svd::jacobi(m);\n\
             Mat::new(3);\n\
             v.push(1);\n\
             parse::<usize>(s);\n\
             if cond(x) { }\n\
             let a = [1, 2];\n\
             }\n",
        );
        let f = &s.fns[0];
        let paths: Vec<(&str, bool)> =
            f.calls.iter().map(|c| (c.path.as_str(), c.is_method)).collect();
        assert!(paths.contains(&("svd::jacobi", false)));
        assert!(paths.contains(&("numkit::svd::jacobi", false)));
        assert!(paths.contains(&("Mat::new", false)));
        assert!(paths.contains(&("push", true)));
        assert!(paths.contains(&("parse", false)));
        assert!(paths.contains(&("cond", false)));
        // `let a = [1, 2]` is an array literal, not an index seed.
        assert!(f.seeds.iter().all(|sd| sd.effect != EFF_INDEX));
    }

    #[test]
    fn use_aliases() {
        let s = extract_src(
            "use numkit::svd::jacobi;\n\
             use numkit::mat::{Mat, MatMul as MM};\n\
             use sparsekit::lu::{self, SparseLu};\n\
             use std::collections::*;\n\
             fn f() {}\n",
        );
        assert!(s.aliases.contains(&("jacobi".into(), "numkit::svd::jacobi".into())));
        assert!(s.aliases.contains(&("Mat".into(), "numkit::mat::Mat".into())));
        assert!(s.aliases.contains(&("MM".into(), "numkit::mat::MatMul".into())));
        assert!(s.aliases.contains(&("SparseLu".into(), "sparsekit::lu::SparseLu".into())));
        assert!(s.aliases.contains(&("lu".into(), "sparsekit::lu".into())));
    }

    #[test]
    fn test_region_fns_excluded() {
        let lexed = lexer::lex(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n",
        );
        let regions = vec![2..=5];
        let s = extract(
            "crates/numkit/src/svd.rs",
            &FileClass::CrateSrc("numkit".into()),
            &lexed,
            &regions,
            &[],
        );
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "live");
    }
}
