//! `numlint doccheck` — documentation-consistency pass.
//!
//! The prose is part of the contract: README and the design notes name
//! files, and the CLI README documents the method registry. Both rot
//! silently — a renamed doc breaks a link, a new `METHODS` entry never
//! makes it into the README's method list. This pass pins the two
//! invariants that have actually drifted in this repo's history:
//!
//! - **DOC01** — every relative markdown link in `README.md`,
//!   `DESIGN.md`, `EXPERIMENTS.md`, and `docs/*.md` resolves to an
//!   existing file (external `http(s)`/`mailto` targets and pure
//!   `#anchor` links are out of scope).
//! - **DOC02** — every method name registered in
//!   `pmtbr_cli::METHODS` (parsed from the `pub const METHODS` block
//!   of `crates/cli/src/lib.rs`, the single source of truth) appears
//!   as a standalone token in `README.md`.
//!
//! Zero-dependency and purely textual, like the rest of the analyzer:
//! the registry is read with the same token discipline the lexer uses
//! for sources — if the `METHODS` block cannot be found or parses to
//! an empty name list, that is an error, never a silent pass.

use std::fs;
use std::path::{Path, PathBuf};

/// One doc-consistency violation, pointing at the offending doc line.
pub struct DocFinding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// Rule id, `DOC01` or `DOC02`.
    pub rule: &'static str,
    pub message: String,
}

/// Runs the whole pass. `Err` is reserved for infrastructure problems
/// (unreadable files, missing registry); findings are the payload.
pub fn run(root: &Path) -> Result<Vec<DocFinding>, String> {
    let mut findings = Vec::new();
    for doc in doc_files(root)? {
        check_links(root, &doc, &mut findings)?;
    }
    check_registry(root, &mut findings)?;
    Ok(findings)
}

/// The audited doc set: the root-level prose plus everything under
/// `docs/`, in sorted order so findings are deterministic.
fn doc_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for name in ["README.md", "DESIGN.md", "EXPERIMENTS.md"] {
        let p = root.join(name);
        if p.is_file() {
            out.push(p);
        }
    }
    let docs = root.join("docs");
    if docs.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&docs)
            .map_err(|e| format!("read {}: {e}", docs.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "md"))
            .collect();
        entries.sort();
        out.extend(entries);
    }
    Ok(out)
}

/// DOC01: every relative `[text](target)` link in `doc` resolves.
fn check_links(root: &Path, doc: &Path, findings: &mut Vec<DocFinding>) -> Result<(), String> {
    let text = fs::read_to_string(doc).map_err(|e| format!("read {}: {e}", doc.display()))?;
    let rel = doc.strip_prefix(root).unwrap_or(doc).display().to_string();
    let base = doc.parent().unwrap_or(root);
    let mut in_fence = false;
    for (ln, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        for target in inline_link_targets(line) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or(&target);
            if !base.join(path_part).exists() {
                findings.push(DocFinding {
                    file: rel.clone(),
                    line: ln + 1,
                    rule: "DOC01",
                    message: format!("relative link `{target}` does not resolve"),
                });
            }
        }
    }
    Ok(())
}

/// Extracts the `(target)` parts of inline markdown links on one line.
/// Markdown in this repo keeps link targets paren-free, so scanning to
/// the next `)` is exact.
fn inline_link_targets(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = line[i + 2..].find(')') {
                out.push(line[i + 2..i + 2 + end].trim().to_string());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// DOC02: every registry method name appears in README as a token.
fn check_registry(root: &Path, findings: &mut Vec<DocFinding>) -> Result<(), String> {
    let names = registry_names(root)?;
    let readme_path = root.join("README.md");
    let readme =
        fs::read_to_string(&readme_path).map_err(|e| format!("read {}: {e}", readme_path.display()))?;
    for name in names {
        if !contains_token(&readme, &name) {
            findings.push(DocFinding {
                file: "README.md".to_string(),
                line: 0,
                rule: "DOC02",
                message: format!("registry method `{name}` is not documented in README.md"),
            });
        }
    }
    Ok(())
}

/// Parses the `name: "…"` fields of the `pub const METHODS` block in
/// `crates/cli/src/lib.rs`. Erroring on an unparseable or empty
/// registry keeps the check honest under refactors.
fn registry_names(root: &Path) -> Result<Vec<String>, String> {
    let path = root.join("crates/cli/src/lib.rs");
    let src = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let start = src
        .find("pub const METHODS")
        .ok_or("crates/cli/src/lib.rs: `pub const METHODS` block not found")?;
    let body = &src[start..];
    let end = body
        .find("];")
        .ok_or("crates/cli/src/lib.rs: unterminated METHODS block")?;
    let body = &body[..end];
    let mut names = Vec::new();
    let mut rest = body;
    while let Some(pos) = rest.find("name: \"") {
        let after = &rest[pos + 7..];
        let close = after
            .find('"')
            .ok_or("crates/cli/src/lib.rs: unterminated name literal in METHODS")?;
        names.push(after[..close].to_string());
        rest = &after[close..];
    }
    if names.is_empty() {
        return Err("crates/cli/src/lib.rs: METHODS block parsed to zero names".into());
    }
    Ok(names)
}

/// Token containment: `name` delimited by non-`[A-Za-z0-9_-]` on both
/// sides, so `tbr` inside `pmtbr` or `tbr-res` does not count.
fn contains_token(haystack: &str, name: &str) -> bool {
    let is_word = |c: u8| c.is_ascii_alphanumeric() || c == b'_' || c == b'-';
    let h = haystack.as_bytes();
    let n = name.as_bytes();
    let mut i = 0;
    while i + n.len() <= h.len() {
        if &h[i..i + n.len()] == n {
            let before_ok = i == 0 || !is_word(h[i - 1]);
            let after_ok = i + n.len() == h.len() || !is_word(h[i + n.len()]);
            if before_ok && after_ok {
                return true;
            }
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_matching_respects_boundaries() {
        assert!(contains_token("methods: `tbr` and more", "tbr"));
        assert!(!contains_token("only pmtbr and tbr-res here", "tbr"));
        assert!(contains_token("tbr-res|fltbr", "tbr-res"));
    }

    #[test]
    fn link_targets_are_extracted() {
        let t = inline_link_targets("see [a](docs/X.md) and [b](https://e.com) here");
        assert_eq!(t, vec!["docs/X.md".to_string(), "https://e.com".to_string()]);
    }

    #[test]
    fn this_workspace_is_clean() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = crate::walk::find_workspace_root(here);
        let findings = run(&root).expect("doccheck infrastructure");
        let msgs: Vec<String> = findings
            .iter()
            .map(|f| format!("{}:{} {} {}", f.file, f.line, f.rule, f.message))
            .collect();
        assert!(msgs.is_empty(), "doc drift:\n{}", msgs.join("\n"));
    }
}
