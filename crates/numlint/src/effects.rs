//! Interprocedural effect propagation: a fixpoint over the call graph
//! computes, for every function, which effect bits it may transitively
//! exercise — `may_panic` (macro / unwrap / index classes) and
//! `reads_wall_clock` — and a BFS reconstructs the shortest witness
//! chain for diagnostics.
//!
//! Containment matches the PR 7 runtime model: a seed or call site
//! lexically inside a `catch_unwind(...)` argument does not leak
//! panic-class bits to the enclosing function; wall-clock bits cross
//! `catch_unwind` unharmed (catching an unwind does not un-read a
//! clock).

use crate::callgraph::CallGraph;
use crate::symbols::{FnSym, EFF_CLOCK, EFF_PANIC_ALL};
use std::collections::VecDeque;

/// One step of a witness chain, ending at the seed site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChainStep {
    /// Qualified fn name for intermediate steps; the seed text
    /// (`.unwrap()`, `panic!`, `Instant`) for the final step.
    pub label: String,
    pub file: String,
    pub line: usize,
}

/// Direct effect bits of one function: the union of its seeds, with
/// panic-class bits of `catch_unwind`-contained seeds masked off.
pub fn direct_effects(f: &FnSym) -> u8 {
    let mut eff = 0u8;
    for s in &f.seeds {
        if s.contained {
            eff |= s.effect & EFF_CLOCK;
        } else {
            eff |= s.effect;
        }
    }
    eff
}

/// The effect a single edge propagates from `callee_eff` into the
/// caller: contained edges strip panic-class bits.
fn edge_mask(callee_eff: u8, contained: bool) -> u8 {
    if contained {
        callee_eff & !EFF_PANIC_ALL
    } else {
        callee_eff
    }
}

/// Computes the transitive effect bits for every function by worklist
/// fixpoint. Deterministic: iteration order depends only on the graph.
pub fn fixpoint(g: &CallGraph) -> Vec<u8> {
    let n = g.fns.len();
    let mut eff: Vec<u8> = g.fns.iter().map(direct_effects).collect();
    // Reverse adjacency: callee -> callers that must be revisited when
    // the callee's bits grow.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, edges) in g.edges.iter().enumerate() {
        for e in edges {
            callers[e.callee].push(caller);
        }
    }
    let mut queue: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(i) = queue.pop_front() {
        queued[i] = false;
        let mut new = eff[i];
        for e in &g.edges[i] {
            new |= edge_mask(eff[e.callee], e.contained);
        }
        if new != eff[i] {
            eff[i] = new;
            for &c in &callers[i] {
                if !queued[c] {
                    queued[c] = true;
                    queue.push_back(c);
                }
            }
        }
    }
    eff
}

/// Effect bits a function acquires *through its calls only* (its own
/// direct seeds excluded). This is what the interprocedural rules gate
/// on: direct seeds are already PANIC01/ERR01/DET02 territory.
pub fn reach_via_calls(g: &CallGraph, eff: &[u8], id: usize) -> u8 {
    let mut reach = 0u8;
    for e in &g.edges[id] {
        reach |= edge_mask(eff[e.callee], e.contained);
    }
    reach
}

/// Reconstructs the shortest witness chain from `start` through call
/// edges to a function holding a direct, uncontained seed with a bit
/// in `mask`. The first element is the first *callee* (the start
/// function itself is the diagnostic's subject); the last element is
/// the seed site. Returns `None` only if the effect bits were
/// inconsistent with the graph (a bug guard, not an expected path).
pub fn witness_chain(g: &CallGraph, eff: &[u8], start: usize, mask: u8) -> Option<Vec<ChainStep>> {
    // BFS over edges that can propagate `mask`.
    let n = g.fns.len();
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; n]; // (pred fn, call line)
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let goal = 'bfs: loop {
        let Some(i) = queue.pop_front() else { break None };
        if i != start {
            if let Some(seed) =
                g.fns[i].seeds.iter().find(|s| !s.contained && s.effect & mask != 0)
            {
                break 'bfs Some((i, seed.clone()));
            }
        }
        for e in &g.edges[i] {
            if seen[e.callee] || edge_mask(eff[e.callee], e.contained) & mask == 0 {
                continue;
            }
            seen[e.callee] = true;
            parent[e.callee] = Some((i, e.line));
            queue.push_back(e.callee);
        }
    };
    let (goal_id, seed) = goal?;
    let mut rev: Vec<usize> = Vec::new();
    let mut cur = goal_id;
    while cur != start {
        rev.push(cur);
        cur = parent[cur]?.0;
    }
    rev.reverse();
    let mut steps: Vec<ChainStep> = rev
        .into_iter()
        .map(|i| ChainStep {
            label: g.fns[i].qual.clone(),
            file: g.fns[i].file.clone(),
            line: g.fns[i].line,
        })
        .collect();
    steps.push(ChainStep {
        label: seed.what.clone(),
        file: g.fns[goal_id].file.clone(),
        line: seed.line,
    });
    Some(steps)
}

/// Renders a chain for text diagnostics:
/// `compress → jacobi_step → .unwrap() @ crates/numkit/src/svd.rs:412`.
pub fn render_chain(steps: &[ChainStep]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (i, s) in steps.iter().enumerate() {
        if i + 1 == steps.len() {
            parts.push(format!("{} @ {}:{}", s.label, s.file, s.line));
        } else {
            parts.push(s.label.clone());
        }
    }
    parts.join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::engine::analyze_file;
    use crate::symbols::{EFF_GATED_PANIC, EFF_UNWRAP};
    use std::collections::BTreeMap;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let mut map = BTreeMap::new();
        for (path, src) in files {
            map.insert(path.to_string(), analyze_file(path, src));
        }
        callgraph::build(&map)
    }

    fn id(g: &CallGraph, qual: &str) -> usize {
        g.fns.iter().position(|f| f.qual == qual).expect("fn")
    }

    #[test]
    fn transitive_panic_reaches_entry_point() {
        let g = graph(&[
            (
                "crates/pmtbr/src/pipeline.rs",
                "pub fn run() -> Result<(), E> { numkit::svd::compress(); Ok(()) }\n",
            ),
            (
                "crates/numkit/src/svd.rs",
                "pub fn compress() { jacobi_step(); }\nfn jacobi_step() { x.unwrap(); }\n",
            ),
        ]);
        let eff = fixpoint(&g);
        let run = id(&g, "pmtbr::pipeline::run");
        assert_ne!(reach_via_calls(&g, &eff, run) & EFF_GATED_PANIC, 0);
        let chain = witness_chain(&g, &eff, run, EFF_GATED_PANIC).expect("chain");
        let rendered = render_chain(&chain);
        assert!(
            rendered.starts_with("numkit::svd::compress → numkit::svd::jacobi_step → .unwrap() @ crates/numkit/src/svd.rs:"),
            "{rendered}"
        );
    }

    #[test]
    fn catch_unwind_blocks_panic_but_not_clock() {
        let g = graph(&[
            (
                "crates/lti/src/a.rs",
                "pub fn guarded() -> Result<(), E> {\n\
                 let _ = catch_unwind(AssertUnwindSafe(|| crate::b::danger()));\nOk(())\n}\n",
            ),
            (
                "crates/lti/src/b.rs",
                "pub fn danger() { panic!(\"x\"); let _ = Instant::now(); }\n",
            ),
        ]);
        let eff = fixpoint(&g);
        let guarded = id(&g, "lti::a::guarded");
        let reach = reach_via_calls(&g, &eff, guarded);
        assert_eq!(reach & EFF_GATED_PANIC, 0, "catch_unwind must contain panics");
        assert_ne!(reach & EFF_CLOCK, 0, "clock reads pass through catch_unwind");
    }

    #[test]
    fn contained_seed_does_not_leak() {
        let g = graph(&[(
            "crates/lti/src/a.rs",
            "pub fn f() -> Result<(), E> { let _ = catch_unwind(|| x.unwrap()); Ok(()) }\n",
        )]);
        let eff = fixpoint(&g);
        assert_eq!(eff[id(&g, "lti::a::f")] & EFF_UNWRAP, 0);
    }

    #[test]
    fn cycles_terminate() {
        let g = graph(&[(
            "crates/lti/src/a.rs",
            "pub fn ping() { pong(); }\npub fn pong() { ping(); x.unwrap(); }\n",
        )]);
        let eff = fixpoint(&g);
        assert_ne!(eff[id(&g, "lti::a::ping")] & EFF_UNWRAP, 0);
        assert_ne!(eff[id(&g, "lti::a::pong")] & EFF_UNWRAP, 0);
    }
}
