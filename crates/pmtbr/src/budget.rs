//! Deterministic work budgets for the reduction pipeline.
//!
//! A [`Budget`] caps how much numerical work [`crate::pipeline::run_guarded`]
//! may spend, measured **exclusively** in the deterministic `obs`
//! counters — LU factorizations, Jacobi SVD sweeps, retained sample
//! bytes — never wall-clock time. Because every counter is a pure
//! function of the inputs (independent of thread scheduling), a
//! budget-limited run is bit-identical at any thread count and
//! reproduces exactly: the same run either always fits the budget or
//! always exhausts it at the same point.
//!
//! Exhaustion is graceful by design: the pipeline truncates work it has
//! not started yet (e.g. sample nodes beyond the LU cap), records the
//! exhausted resource in [`crate::PipelineReport::budget_exhausted`],
//! and still returns a best-effort reduced model. Only a budget that
//! leaves room for *no* work at all turns into
//! [`NumError::BudgetExhausted`].
//!
//! The optional [`CancelToken`] rides along for cooperative
//! cancellation: the pipeline polls it at stage boundaries, and the
//! sweep polls it once per shift (via `RecoveryPolicy::cancel`), so a
//! raised token stops the run at the next deterministic checkpoint with
//! [`NumError::Cancelled`].

use numkit::{CancelToken, NumError};

/// Caps on the deterministic work counters a pipeline run may consume,
/// plus an optional cooperative cancellation token.
///
/// `None` caps are unlimited; [`Budget::default`] is fully unlimited.
///
/// ```
/// use pmtbr::Budget;
///
/// let b = Budget::default().with_max_lu_factors(8);
/// assert_eq!(b.max_lu_factors, Some(8));
/// assert!(b.max_svd_sweeps.is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Budget {
    /// Cap on successful numeric LU factorizations (`LU_FACTOR`).
    /// Enforced *a priori*: the sweep only attempts as many sample
    /// nodes as the remaining cap, so the limit is deterministic even
    /// though recovery rungs may refactor.
    pub max_lu_factors: Option<u64>,
    /// Cap on one-sided Jacobi SVD sweeps (`SVD_SWEEPS`). The
    /// compressor ladder clamps each rung's sweep cap to the remaining
    /// budget and falls back to the (SVD-free) incremental compressor
    /// when nothing remains.
    pub max_svd_sweeps: Option<u64>,
    /// Cap on retained weighted sample bytes (`SAMPLE_BYTES`).
    /// Recorded post-hoc: an overrun marks the report but never aborts
    /// a run that already holds the samples.
    pub max_sample_bytes: Option<u64>,
    /// Cooperative cancellation, polled at stage boundaries and once
    /// per sweep shift.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// `true` when no cap is set (the cancel token does not count).
    pub fn is_unlimited(&self) -> bool {
        self.max_lu_factors.is_none()
            && self.max_svd_sweeps.is_none()
            && self.max_sample_bytes.is_none()
    }

    /// Caps LU factorizations (builder style).
    #[must_use]
    pub fn with_max_lu_factors(mut self, cap: u64) -> Self {
        self.max_lu_factors = Some(cap);
        self
    }

    /// Caps SVD sweeps (builder style).
    #[must_use]
    pub fn with_max_svd_sweeps(mut self, cap: u64) -> Self {
        self.max_svd_sweeps = Some(cap);
        self
    }

    /// Caps retained sample bytes (builder style).
    #[must_use]
    pub fn with_max_sample_bytes(mut self, cap: u64) -> Self {
        self.max_sample_bytes = Some(cap);
        self
    }

    /// Attaches a cancellation token (builder style).
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Scopes a [`Budget`] to one pipeline run by snapshotting the
/// process-global counters at construction; all remaining-work queries
/// are counter deltas against that baseline (no wall clock anywhere).
pub(crate) struct BudgetTracker<'a> {
    budget: &'a Budget,
    start: obs::counters::Snapshot,
}

impl<'a> BudgetTracker<'a> {
    pub(crate) fn start(budget: &'a Budget) -> Self {
        BudgetTracker { budget, start: obs::counters::snapshot() }
    }

    /// Work spent *by this run* on counter `c`.
    fn spent(&self, c: obs::Counter) -> u64 {
        obs::counters::snapshot().delta(&self.start).get(c)
    }

    /// How many sample nodes the sweep may attempt: the remaining LU
    /// budget, read before any solve (so the cap is a pure function of
    /// the budget, not of scheduling).
    pub(crate) fn node_cap(&self) -> Option<usize> {
        self.budget.max_lu_factors.map(|cap| {
            let used = self.spent(obs::Counter::LuFactor);
            cap.saturating_sub(used) as usize
        })
    }

    /// SVD sweeps still allowed, `None` when unlimited.
    pub(crate) fn remaining_svd_sweeps(&self) -> Option<u64> {
        self.budget
            .max_svd_sweeps
            .map(|cap| cap.saturating_sub(self.spent(obs::Counter::SvdSweeps)))
    }

    /// The first budgeted resource this run has overrun, if any —
    /// recorded into the pipeline report after the fact.
    pub(crate) fn exhausted(&self) -> Option<&'static str> {
        let over = |cap: Option<u64>, c: obs::Counter| cap.is_some_and(|cap| self.spent(c) > cap);
        if over(self.budget.max_lu_factors, obs::Counter::LuFactor) {
            Some("lu-factorizations")
        } else if over(self.budget.max_svd_sweeps, obs::Counter::SvdSweeps) {
            Some("svd-sweeps")
        } else if over(self.budget.max_sample_bytes, obs::Counter::SampleBytes) {
            Some("sample-bytes")
        } else {
            None
        }
    }

    /// Errors with [`NumError::Cancelled`] when the token is raised —
    /// the pipeline's stage-boundary checkpoint.
    pub(crate) fn check_cancelled(&self) -> Result<(), NumError> {
        match &self.budget.cancel {
            Some(token) => token.check(),
            None => Ok(()),
        }
    }

    /// The cancellation token, for threading into the sweep policy.
    pub(crate) fn cancel(&self) -> Option<&CancelToken> {
        self.budget.cancel.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        let t = BudgetTracker::start(&b);
        assert_eq!(t.exhausted(), None);
        assert_eq!(t.node_cap(), None);
        assert_eq!(t.remaining_svd_sweeps(), None);
        assert!(t.check_cancelled().is_ok());
    }

    #[test]
    fn caps_count_off_the_tracker_baseline() {
        // Counters are process-global and other tests in this binary
        // run SVDs concurrently, so assert only monotone-safe facts:
        // headroom never exceeds the cap, and overrun is sticky.
        let b = Budget::default().with_max_svd_sweeps(5);
        assert!(!b.is_unlimited());
        let t = BudgetTracker::start(&b);
        assert!(t.remaining_svd_sweeps().is_some_and(|r| r <= 5));
        obs::counters::add(obs::Counter::SvdSweeps, 6);
        assert_eq!(t.remaining_svd_sweeps(), Some(0));
        assert_eq!(t.exhausted(), Some("svd-sweeps"));
        let lu = Budget::default().with_max_lu_factors(7);
        let tl = BudgetTracker::start(&lu);
        assert!(tl.node_cap().is_some_and(|c| c <= 7));
    }

    #[test]
    fn cancellation_surfaces_as_cancelled_error() {
        let token = CancelToken::new();
        let b = Budget::default().with_cancel(token.clone());
        let t = BudgetTracker::start(&b);
        assert!(t.check_cancelled().is_ok());
        token.cancel();
        assert_eq!(t.check_cancelled(), Err(NumError::Cancelled));
    }
}
