//! Parallel sample-point fan-out for the PMTBR sampling algorithms.
//!
//! PMTBR's cost is dominated by the per-sample-point shifted solves
//! `(sₖ·E − A)⁻¹·R`, which are mutually independent — the classic "almost
//! embarrassingly parallel" structure the paper's Section III points out.
//! This module routes sample points through `lti`'s multipoint engine
//! (`lti::ShiftSolveEngine` via [`lti::LtiSystem::solve_shifted_many`]),
//! which combines:
//!
//! - **factorization reuse** — sparse descriptor systems assemble the
//!   pencil on a precomputed merged pattern and refactor along one shared
//!   symbolic LU analysis instead of refactoring from scratch per point;
//! - **thread fan-out** — points are distributed over a std-only scoped
//!   thread pool (`numkit::par`); there is no external threading crate.
//!
//! # Thread count
//!
//! The worker count comes from the `PMTBR_THREADS` environment variable
//! when set to a positive integer, else from
//! `std::thread::available_parallelism`. One thread means a plain serial
//! loop with no pool overhead.
//!
//! # Determinism
//!
//! Parallel execution is bit-identical to serial execution: results are
//! collected in sample-point order, each point's arithmetic is
//! independent of scheduling, and the symbolic analysis is primed from
//! the first point before any fan-out. Changing `PMTBR_THREADS` can never
//! change a reduced model.

use lti::LtiSystem;
use numkit::{c64, NumError, ZMat};

use crate::SamplePoint;

pub use numkit::par::{num_threads, par_map, par_map_with};

/// Solves `(sₖ·E − A)·Zₖ = rhs` for every sample point, in point order.
///
/// This is the shared-right-hand-side fan-out used by [`crate::sample_basis`]
/// (and everything built on it, e.g. frequency-selective PMTBR).
///
/// # Errors
///
/// The first per-point failure, in point order.
pub fn solve_sample_points<S: LtiSystem + ?Sized>(
    sys: &S,
    points: &[SamplePoint],
    rhs: &ZMat,
) -> Result<Vec<ZMat>, NumError> {
    let shifts: Vec<c64> = points.iter().map(|p| p.s).collect();
    sys.solve_shifted_many(&shifts, rhs)
}

/// Solves `(sₖ·E − A)·Zₖ = rhssₖ` with one right-hand side per sample
/// point — the fan-out used by input-correlated PMTBR, where each point
/// carries its own stochastic excitation block.
///
/// # Errors
///
/// [`NumError::ShapeMismatch`] on a length mismatch; else the first
/// per-point failure in point order.
pub fn solve_sample_points_pairs<S: LtiSystem + ?Sized>(
    sys: &S,
    points: &[SamplePoint],
    rhss: &[ZMat],
) -> Result<Vec<ZMat>, NumError> {
    let shifts: Vec<c64> = points.iter().map(|p| p.s).collect();
    sys.solve_shifted_pairs(&shifts, rhss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sampling;
    use circuits::rc_mesh;

    #[test]
    fn fan_out_matches_per_point_solves() {
        let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0).unwrap();
        let points = Sampling::Linear { omega_max: 10.0, n: 9 }.points().unwrap();
        let rhs = sys.b.to_complex();
        let fanned = solve_sample_points(&sys, &points, &rhs).unwrap();
        assert_eq!(fanned.len(), points.len());
        for (k, pt) in points.iter().enumerate() {
            let direct = sys.solve_shifted(pt.s, &rhs).unwrap();
            assert!((&fanned[k] - &direct).norm_max() < 1e-10, "point {k}");
        }
    }

    #[test]
    fn pairs_fan_out_respects_pairing() {
        let sys = rc_mesh(3, 3, &[0, 8], 1.0, 1.0, 2.0).unwrap();
        let points = Sampling::Linear { omega_max: 5.0, n: 3 }.points().unwrap();
        let rhss: Vec<ZMat> =
            (0..points.len()).map(|k| sys.b.to_complex().scale(1.0 + k as f64)).collect();
        let fanned = solve_sample_points_pairs(&sys, &points, &rhss).unwrap();
        for (k, pt) in points.iter().enumerate() {
            let direct = sys.solve_shifted(pt.s, &rhss[k]).unwrap();
            assert!((&fanned[k] - &direct).norm_max() < 1e-10, "point {k}");
        }
        assert!(solve_sample_points_pairs(&sys, &points, &rhss[..2]).is_err());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
