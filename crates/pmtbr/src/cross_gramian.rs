//! Sampled cross-Gramian PMTBR (paper Section V-D).
//!
//! For nonsymmetric systems both Gramians matter. Rather than balancing
//! two sampled Gramians, the cross-Gramian variant samples
//! controllability vectors `z_R = (sE − A)⁻¹·B` *and* observability
//! vectors `z_L = (sE − A)⁻ᵀ·Cᵀ`, compresses the (never formed)
//! `Z_L·Z_Rᵀ` eigenproblem through a joint orthonormal basis `Q`, and
//! projects onto the dominant eigenspace — a two-sided (Petrov–Galerkin)
//! reduction whose trailing-eigenvalue sum bounds the Hankel tail.

use lti::{realify_columns, LtiSystem, StateSpace};
use numkit::{eig, svd, DMat, Lu, NumError};

use crate::{PmtbrModel, Sampling};

/// Runs cross-Gramian PMTBR, producing an order-`order` two-sided model.
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] if `order == 0` or the samples span
///   too small a space for the requested order.
/// - Propagates solve/eigen/projection errors.
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use pmtbr::{cross_gramian_pmtbr, Sampling};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0)?;
/// let m = cross_gramian_pmtbr(&sys, &Sampling::Linear { omega_max: 10.0, n: 8 }, 4)?;
/// assert_eq!(m.order, 4);
/// # Ok(())
/// # }
/// ```
pub fn cross_gramian_pmtbr<S: LtiSystem + ?Sized>(
    sys: &S,
    sampling: &Sampling,
    order: usize,
) -> Result<PmtbrModel, NumError> {
    if order == 0 {
        return Err(NumError::InvalidArgument("reduction order must be at least 1"));
    }
    let points = sampling.points()?;
    let b = sys.input_matrix().to_complex();
    let ct = sys.output_matrix().adjoint().to_complex();
    let n = sys.nstates();

    // Collect controllability (Z_R) and observability (Z_L) samples.
    let mut zr_cols: Vec<DMat> = Vec::new();
    let mut zl_cols: Vec<DMat> = Vec::new();
    for pt in &points {
        let zr = sys.solve_shifted(pt.s, &b)?.scale(pt.weight.sqrt());
        let zl = sys.solve_shifted_transpose(pt.s, &ct)?.scale(pt.weight.sqrt());
        zr_cols.push(realify_columns(&zr, 1e-13));
        zl_cols.push(realify_columns(&zl, 1e-13));
    }
    let zr = hstack_blocks(n, &zr_cols)?;
    let zl = hstack_blocks(n, &zl_cols)?;

    // Joint orthonormal basis Q of [Z_R | Z_L]. The stack is often wider
    // than tall, so use an SVD with rank truncation rather than QR.
    let joint = zr.hstack(&zl)?;
    if joint.ncols() == 0 {
        return Err(NumError::InvalidArgument("no samples collected"));
    }
    let jf = svd(&joint)?;
    let rank = jf.rank(1e-12).max(1);
    let q = jf.u.leading_cols(rank);
    let k = q.ncols();
    if order > k {
        return Err(NumError::InvalidArgument("requested order exceeds sampled subspace"));
    }
    // Compressed eigenproblem: M = (Qᵀ·Z_R)·(Qᵀ·Z_L)ᵀ, size k × k.
    let rr = &q.transpose() * &zr;
    let rl = &q.transpose() * &zl;
    let m = &rr * &rl.transpose();
    let e = eig(&m)?;

    // Realified dominant eigenbasis (conjugate pairs → [Re, Im]).
    let mut t = DMat::zeros(k, k);
    let mut moduli = Vec::with_capacity(k);
    let mut j = 0;
    let mut col = 0;
    while j < k {
        let lam = e.values[j];
        let v = e.vectors.col(j);
        if lam.im.abs() > 1e-12 * lam.abs().max(1e-300) && j + 1 < k {
            for i in 0..k {
                t[(i, col)] = v[i].re;
                t[(i, col + 1)] = v[i].im;
            }
            moduli.push(lam.abs());
            moduli.push(lam.abs());
            col += 2;
            j += 2;
        } else {
            for i in 0..k {
                t[(i, col)] = v[i].re;
            }
            moduli.push(lam.abs());
            col += 1;
            j += 1;
        }
    }
    // Don't split a conjugate pair at the boundary.
    let mut q_ord = order.min(k);
    if q_ord < k && (moduli[q_ord - 1] - moduli[q_ord]).abs() < 1e-12 * moduli[0].max(1e-300) {
        q_ord += 1;
    }
    let rs = t.leading_cols(q_ord);
    // Two-sided projection: V = Q·R_S, W = Q·(R_S⁻ᵀ columns), so WᵀV = I.
    let tinv = Lu::new(t.clone())?.inverse()?;
    let ws = tinv.transpose().leading_cols(q_ord);
    let v = &q * &rs;
    let w = &q * &ws;
    let reduced: StateSpace = sys.project(&w, &v)?;
    Ok(PmtbrModel {
        reduced,
        v,
        singular_values: moduli.clone(),
        order: q_ord,
        error_estimate: moduli.iter().skip(q_ord).sum(),
    })
}

fn hstack_blocks(n: usize, blocks: &[DMat]) -> Result<DMat, NumError> {
    let total: usize = blocks.iter().map(|b| b.ncols()).sum();
    let mut out = DMat::zeros(n, total);
    let mut col = 0;
    for blk in blocks {
        for j in 0..blk.ncols() {
            for i in 0..n {
                out[(i, col)] = blk[(i, j)];
            }
            col += 1;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{connector, rc_mesh, ConnectorParams};
    use numkit::c64;

    #[test]
    fn matches_symmetric_pmtbr_quality() {
        // On a symmetric RC system the cross-Gramian coincides with the
        // controllability picture: the reduction should be as accurate
        // as plain PMTBR.
        let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0).unwrap();
        let sampling = Sampling::Linear { omega_max: 10.0, n: 10 };
        let mcg = cross_gramian_pmtbr(&sys, &sampling, 4).unwrap();
        let mpm = crate::pmtbr(
            &sys,
            &crate::PmtbrOptions::new(sampling).with_max_order(4),
        )
        .unwrap();
        for &w in &[0.0, 0.5, 2.0] {
            let s = c64::new(0.0, w);
            let h = sys.transfer_function(s).unwrap()[(0, 0)];
            let e_cg = (mcg.reduced.transfer_function(s).unwrap()[(0, 0)] - h).abs();
            let e_pm = (mpm.reduced.transfer_function(s).unwrap()[(0, 0)] - h).abs();
            // For symmetric systems the two variants coincide.
            assert!(e_cg <= 2.0 * e_pm + 1e-12, "w = {w}: cg {e_cg:.2e} vs pmtbr {e_pm:.2e}");
        }
    }

    #[test]
    fn works_on_nonsymmetric_rlc() {
        // The connector is RLC (nonsymmetric state matrix): the two-sided
        // variant should still produce a usable model in-band.
        let sys = connector(&ConnectorParams { pins: 3, ..Default::default() }).unwrap();
        let wmax = 2.0 * std::f64::consts::PI * 8e9;
        let m =
            cross_gramian_pmtbr(&sys, &Sampling::Linear { omega_max: wmax, n: 15 }, 12).unwrap();
        let s = c64::new(0.0, wmax / 3.0);
        let h = sys.transfer_function(s).unwrap();
        let hr = m.reduced.transfer_function(s).unwrap();
        let rel = (&h - &hr).norm_max() / h.norm_max();
        assert!(rel < 0.05, "relative error {rel:.3}");
    }

    #[test]
    fn biorthogonality_of_projectors() {
        let sys = rc_mesh(3, 3, &[0, 8], 1.0, 1.0, 2.0).unwrap();
        let m = cross_gramian_pmtbr(&sys, &Sampling::Linear { omega_max: 5.0, n: 8 }, 5)
            .unwrap();
        // Reduced system dimension matches and the model is finite.
        assert_eq!(m.reduced.nstates(), m.order);
        assert!(m.reduced.a.is_finite());
    }

    #[test]
    fn zero_order_rejected() {
        let sys = rc_mesh(2, 2, &[0], 1.0, 1.0, 2.0).unwrap();
        assert!(
            cross_gramian_pmtbr(&sys, &Sampling::Linear { omega_max: 1.0, n: 2 }, 0).is_err()
        );
    }

    #[test]
    fn excessive_order_rejected() {
        let sys = rc_mesh(2, 2, &[0], 1.0, 1.0, 2.0).unwrap();
        assert!(
            cross_gramian_pmtbr(&sys, &Sampling::Linear { omega_max: 1.0, n: 1 }, 50).is_err()
        );
    }
}
