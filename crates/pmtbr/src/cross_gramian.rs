//! Sampled cross-Gramian PMTBR (paper Section V-D).
//!
//! For nonsymmetric systems both Gramians matter. Rather than balancing
//! two sampled Gramians, the cross-Gramian variant samples
//! controllability vectors `z_R = (sE − A)⁻¹·B` *and* observability
//! vectors `z_L = (sE − A)⁻ᵀ·Cᵀ` — one shared factorization per shift,
//! the observability side via the transpose solve — and compresses the
//! (never formed) cross Gramian `X = Z_R·Z_Lᵀ` through the small
//! product `N = Z_Lᵀ·Z_R`: for `λ ≠ 0`, `N·w = λ·w` maps to
//! `X·(Z_R·w) = λ·(Z_R·w)`, so one `c × c` eigenproblem (c = sample
//! columns) replaces the `n`-row joint SVD and up-to-`2c` eigenproblem
//! of the naive compression. Projection onto the dominant eigenspace is
//! two-sided (Petrov–Galerkin), with the biorthogonal left basis
//! `W = Z_L·(Λ⁻¹·T⁻¹)ᵀ` assembled from the same eigendecomposition;
//! the trailing-eigenvalue sum bounds the Hankel tail.

use lti::LtiSystem;
use numkit::NumError;

use crate::pipeline::ReductionPlan;
use crate::{PmtbrModel, Sampling};

/// Runs cross-Gramian PMTBR, producing an order-`order` two-sided model.
///
/// Executes [`ReductionPlan::cross_gramian`] through the shared
/// pipeline: both pencil sweeps run through the tolerant parallel
/// engine, a node survives only if *both* sides solved, and under
/// `PMTBR_FAULT` the quadrature degrades with renormalized weights
/// instead of erroring.
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] if `order == 0` or the samples span
///   too small a space for the requested order.
/// - Propagates solve/eigen/projection errors.
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use pmtbr::{cross_gramian_pmtbr, Sampling};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0)?;
/// let m = cross_gramian_pmtbr(&sys, &Sampling::Linear { omega_max: 10.0, n: 8 }, 4)?;
/// assert_eq!(m.order, 4);
/// # Ok(())
/// # }
/// ```
pub fn cross_gramian_pmtbr<S: LtiSystem + ?Sized>(
    sys: &S,
    sampling: &Sampling,
    order: usize,
) -> Result<PmtbrModel, NumError> {
    Ok(crate::pipeline::run(sys, &ReductionPlan::cross_gramian(sampling, order))?.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{connector, rc_mesh, ConnectorParams};
    use numkit::c64;

    #[test]
    fn matches_symmetric_pmtbr_quality() {
        // On a symmetric RC system the cross-Gramian coincides with the
        // controllability picture: the reduction should be as accurate
        // as plain PMTBR.
        let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0).unwrap();
        let sampling = Sampling::Linear { omega_max: 10.0, n: 10 };
        let mcg = cross_gramian_pmtbr(&sys, &sampling, 4).unwrap();
        let mpm = crate::pmtbr(
            &sys,
            &crate::PmtbrOptions::new(sampling).with_max_order(4),
        )
        .unwrap();
        for &w in &[0.0, 0.5, 2.0] {
            let s = c64::new(0.0, w);
            let h = sys.transfer_function(s).unwrap()[(0, 0)];
            let e_cg = (mcg.reduced.transfer_function(s).unwrap()[(0, 0)] - h).abs();
            let e_pm = (mpm.reduced.transfer_function(s).unwrap()[(0, 0)] - h).abs();
            // For symmetric systems the two variants coincide.
            assert!(e_cg <= 2.0 * e_pm + 1e-12, "w = {w}: cg {e_cg:.2e} vs pmtbr {e_pm:.2e}");
        }
    }

    #[test]
    fn works_on_nonsymmetric_rlc() {
        // The connector is RLC (nonsymmetric state matrix): the two-sided
        // variant should still produce a usable model in-band.
        let sys = connector(&ConnectorParams { pins: 3, ..Default::default() }).unwrap();
        let wmax = 2.0 * std::f64::consts::PI * 8e9;
        let m =
            cross_gramian_pmtbr(&sys, &Sampling::Linear { omega_max: wmax, n: 15 }, 12).unwrap();
        let s = c64::new(0.0, wmax / 3.0);
        let h = sys.transfer_function(s).unwrap();
        let hr = m.reduced.transfer_function(s).unwrap();
        let rel = (&h - &hr).norm_max() / h.norm_max();
        assert!(rel < 0.05, "relative error {rel:.3}");
    }

    #[test]
    fn biorthogonality_of_projectors() {
        let sys = rc_mesh(3, 3, &[0, 8], 1.0, 1.0, 2.0).unwrap();
        let m = cross_gramian_pmtbr(&sys, &Sampling::Linear { omega_max: 5.0, n: 8 }, 5)
            .unwrap();
        // Reduced system dimension matches and the model is finite.
        assert_eq!(m.reduced.nstates(), m.order);
        assert!(m.reduced.a.is_finite());
    }

    #[test]
    fn zero_order_rejected() {
        let sys = rc_mesh(2, 2, &[0], 1.0, 1.0, 2.0).unwrap();
        assert!(
            cross_gramian_pmtbr(&sys, &Sampling::Linear { omega_max: 1.0, n: 2 }, 0).is_err()
        );
    }

    #[test]
    fn excessive_order_rejected() {
        let sys = rc_mesh(2, 2, &[0], 1.0, 1.0, 2.0).unwrap();
        assert!(
            cross_gramian_pmtbr(&sys, &Sampling::Linear { omega_max: 1.0, n: 1 }, 50).is_err()
        );
    }
}
