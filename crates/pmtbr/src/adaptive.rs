//! Adaptive frequency-point selection by interval bisection.
//!
//! The paper (Sections V-B/V-C) suggests adaptive schemes — bisection of
//! frequency intervals — when resonance locations are unknown. This
//! implementation greedily adds the candidate frequency whose sample is
//! *least representable* in the current basis (largest relative
//! residual), bisecting the surrounding interval, until the residual
//! falls below `tol` or the sample budget runs out.

use lti::{realify_columns, LtiSystem, StateSpace};
use numkit::{c64, svd, DMat, NumError};

use crate::PmtbrModel;

/// Result of adaptive sampling: the reduced model plus the frequency
/// points that were actually selected.
#[derive(Debug, Clone)]
pub struct AdaptiveModel {
    /// The reduced model and spectra (as in plain PMTBR).
    pub model: PmtbrModel,
    /// The adaptively chosen angular frequencies, in selection order.
    pub chosen_omegas: Vec<f64>,
}

/// Runs adaptive PMTBR over the band `[omega_lo, omega_hi]`.
///
/// Starts from the band edges and midpoint, then repeatedly bisects the
/// interval whose midpoint sample has the largest residual against the
/// current basis. Stops when the worst residual (relative to the sample
/// norm) drops below `tol` or `max_samples` is reached.
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] for a degenerate band or
///   `max_samples < 3`.
/// - Propagates solve/SVD/projection errors.
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use pmtbr::adaptive_pmtbr;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0)?;
/// let m = adaptive_pmtbr(&sys, 0.01, 10.0, 1e-6, 20, Some(6))?;
/// assert!(m.chosen_omegas.len() <= 20);
/// # Ok(())
/// # }
/// ```
pub fn adaptive_pmtbr<S: LtiSystem + ?Sized>(
    sys: &S,
    omega_lo: f64,
    omega_hi: f64,
    tol: f64,
    max_samples: usize,
    max_order: Option<usize>,
) -> Result<AdaptiveModel, NumError> {
    if !(omega_hi > omega_lo) || omega_lo < 0.0 {
        return Err(NumError::InvalidArgument("band must satisfy 0 <= lo < hi"));
    }
    if max_samples < 3 {
        return Err(NumError::InvalidArgument("adaptive sampling needs at least 3 samples"));
    }
    let b = sys.input_matrix().to_complex();

    // Orthonormal basis columns and raw (weighted) sample columns.
    let mut qbasis: Vec<Vec<f64>> = Vec::new();
    let mut raw_cols: Vec<Vec<f64>> = Vec::new();
    let mut chosen: Vec<f64> = Vec::new();

    let take = |w: f64,
                    qbasis: &mut Vec<Vec<f64>>,
                    raw_cols: &mut Vec<Vec<f64>>,
                    chosen: &mut Vec<f64>|
     -> Result<f64, NumError> {
        // Guard against sampling exactly at a dc pole.
        let s = c64::new(0.0, w.max((omega_hi - omega_lo) * 1e-9));
        let z = sys.solve_shifted(s, &b)?;
        let real = realify_columns(&z, 1e-13);
        let mut worst: f64 = 0.0;
        for j in 0..real.ncols() {
            let col = real.col(j);
            let norm0: f64 = col.iter().map(|x| x * x).sum::<f64>().sqrt();
            raw_cols.push(col.clone());
            let mut v = col;
            for _ in 0..2 {
                for bvec in qbasis.iter() {
                    let proj: f64 = bvec.iter().zip(&v).map(|(x, y)| x * y).sum();
                    for (vi, bi) in v.iter_mut().zip(bvec) {
                        *vi -= proj * bi;
                    }
                }
            }
            let res: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm0 > 0.0 {
                worst = worst.max(res / norm0);
                if res > 1e-13 * norm0 {
                    for vi in v.iter_mut() {
                        *vi /= res;
                    }
                    qbasis.push(v);
                }
            }
        }
        chosen.push(w);
        Ok(worst)
    };

    // Seed with the band edges and midpoint.
    let mid0 = (omega_lo + omega_hi) / 2.0;
    take(omega_lo, &mut qbasis, &mut raw_cols, &mut chosen)?;
    take(omega_hi, &mut qbasis, &mut raw_cols, &mut chosen)?;
    take(mid0, &mut qbasis, &mut raw_cols, &mut chosen)?;

    // Interval queue: candidate midpoints between already-sampled points.
    while chosen.len() < max_samples {
        let mut sorted = chosen.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        // Probe each interval midpoint's residual; take the worst.
        let mut best: Option<(f64, f64)> = None; // (residual, omega)
        for pair in sorted.windows(2) {
            let mid = (pair[0] + pair[1]) / 2.0;
            if (pair[1] - pair[0]) < (omega_hi - omega_lo) * 1e-6 {
                continue;
            }
            let s = c64::new(0.0, mid.max((omega_hi - omega_lo) * 1e-9));
            let z = sys.solve_shifted(s, &b)?;
            let real = realify_columns(&z, 1e-13);
            let mut worst: f64 = 0.0;
            for j in 0..real.ncols() {
                let col = real.col(j);
                let norm0: f64 = col.iter().map(|x| x * x).sum::<f64>().sqrt();
                if norm0 == 0.0 {
                    continue;
                }
                let mut v = col;
                for bvec in qbasis.iter() {
                    let proj: f64 = bvec.iter().zip(&v).map(|(x, y)| x * y).sum();
                    for (vi, bi) in v.iter_mut().zip(bvec) {
                        *vi -= proj * bi;
                    }
                }
                let res: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                worst = worst.max(res / norm0);
            }
            if best.is_none_or(|(r, _)| worst > r) {
                best = Some((worst, mid));
            }
        }
        match best {
            Some((res, _)) if res < tol => break,
            Some((_, w)) => {
                take(w, &mut qbasis, &mut raw_cols, &mut chosen)?;
            }
            None => break,
        }
    }

    // Final compression: SVD of the collected raw samples (uniform
    // weights — the adaptive density itself encodes the weighting).
    let zmat = DMat::from_cols(&raw_cols);
    let f = svd(&zmat)?;
    if f.s.is_empty() || f.s[0] == 0.0 {
        return Err(NumError::InvalidArgument("adaptive sampling collected no energy"));
    }
    let by_tol = f.s.iter().take_while(|&&x| x > 1e-12 * f.s[0]).count().max(1);
    let order = max_order.map_or(by_tol, |cap| by_tol.min(cap)).min(f.s.len());
    let v = f.u.leading_cols(order);
    let reduced: StateSpace = sys.project(&v, &v)?;
    Ok(AdaptiveModel {
        model: PmtbrModel {
            reduced,
            v,
            singular_values: f.s.clone(),
            order,
            error_estimate: f.s.iter().skip(order).sum(),
        },
        chosen_omegas: chosen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{peec_resonator, rc_mesh, PeecParams};
    use lti::{frequency_response, linspace, max_rel_error};

    #[test]
    fn smooth_system_needs_few_points() {
        let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0).unwrap();
        let m = adaptive_pmtbr(&sys, 0.01, 10.0, 1e-8, 30, None).unwrap();
        assert!(
            m.chosen_omegas.len() < 12,
            "RC mesh is smooth; {} points is too many",
            m.chosen_omegas.len()
        );
    }

    #[test]
    fn resonant_system_concentrates_points_near_peaks() {
        let sys = peec_resonator(&PeecParams::default()).unwrap();
        let w_hi = 2.0 * std::f64::consts::PI * 20e9;
        let m = adaptive_pmtbr(&sys, w_hi * 1e-3, w_hi, 1e-7, 40, None).unwrap();
        // Model must be accurate across the band despite sharp features.
        let grid = linspace(w_hi * 0.01, w_hi * 0.99, 60);
        let h = frequency_response(&sys, &grid).unwrap();
        let hr = frequency_response(&m.model.reduced, &grid).unwrap();
        let err = max_rel_error(&h, &hr);
        assert!(err < 0.05, "adaptive model in-band error {err:.3}");
    }

    #[test]
    fn respects_sample_budget() {
        let sys = peec_resonator(&PeecParams::default()).unwrap();
        let w_hi = 2.0 * std::f64::consts::PI * 20e9;
        let m = adaptive_pmtbr(&sys, w_hi * 1e-3, w_hi, 1e-12, 8, None).unwrap();
        assert!(m.chosen_omegas.len() <= 8);
    }

    #[test]
    fn validation() {
        let sys = rc_mesh(2, 2, &[0], 1.0, 1.0, 2.0).unwrap();
        assert!(adaptive_pmtbr(&sys, 5.0, 1.0, 1e-6, 10, None).is_err());
        assert!(adaptive_pmtbr(&sys, 0.0, 1.0, 1e-6, 2, None).is_err());
    }
}
