//! Adaptive frequency-point selection by interval bisection.
//!
//! The paper (Sections V-B/V-C) suggests adaptive schemes — bisection of
//! frequency intervals — when resonance locations are unknown. This
//! implementation greedily adds the candidate frequency whose sample is
//! *least representable* in the current basis (largest relative
//! residual), bisecting the surrounding interval, until the residual
//! falls below `tol` or the sample budget runs out.
//!
//! Both the exploratory probes and the final model build run through
//! the shared reduction pipeline machinery: probe rounds are batched
//! through the tolerant parallel engine
//! ([`LtiSystem::solve_shifted_many_tolerant`]), and the chosen points
//! become a [`Sampling::Custom`] plan executed by
//! [`crate::pipeline::run_with`] — so adaptive reduction inherits the
//! same fault-tolerance ladder (`PMTBR_FAULT`), threading, and tracing
//! as every other variant.

use lti::{realify_columns, LtiSystem, NoFaults, RecoveryPolicy, SolveFault};
use numkit::{c64, NumError, ZMat};

use crate::fault::FaultPlan;
use crate::pipeline::{Compressor, InputDirections, OrderControl, ReductionPlan};
use crate::sweep::SweepDiagnostics;
use crate::{PmtbrModel, SamplePoint, Sampling};

/// Result of adaptive sampling: the reduced model plus the frequency
/// points that were actually selected.
#[derive(Debug, Clone)]
pub struct AdaptiveModel {
    /// The reduced model and spectra (as in plain PMTBR).
    pub model: PmtbrModel,
    /// The adaptively chosen angular frequencies, in selection order.
    pub chosen_omegas: Vec<f64>,
    /// Per-point account of the final model-building sweep.
    pub diagnostics: SweepDiagnostics,
}

/// Folds the realified columns of a solved sample into the orthonormal
/// probe basis (two-pass Gram–Schmidt, drop tolerance `1e-13`).
fn absorb(qbasis: &mut Vec<Vec<f64>>, z: &ZMat) {
    let real = realify_columns(z, 1e-13);
    for j in 0..real.ncols() {
        let col = real.col(j);
        let norm0: f64 = col.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm0 == 0.0 {
            continue;
        }
        let mut v = col;
        for _ in 0..2 {
            for bvec in qbasis.iter() {
                let proj: f64 = bvec.iter().zip(&v).map(|(x, y)| x * y).sum();
                for (vi, bi) in v.iter_mut().zip(bvec) {
                    *vi -= proj * bi;
                }
            }
        }
        let res: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if res > 1e-13 * norm0 {
            for vi in v.iter_mut() {
                *vi /= res;
            }
            qbasis.push(v);
        }
    }
}

/// Worst relative residual of a solved sample's realified columns
/// against the probe basis (single-pass projection — probes only rank
/// candidates, they don't need re-orthogonalization accuracy).
fn residual_against(qbasis: &[Vec<f64>], z: &ZMat) -> f64 {
    let real = realify_columns(z, 1e-13);
    let mut worst: f64 = 0.0;
    for j in 0..real.ncols() {
        let col = real.col(j);
        let norm0: f64 = col.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm0 == 0.0 {
            continue;
        }
        let mut v = col;
        for bvec in qbasis.iter() {
            let proj: f64 = bvec.iter().zip(&v).map(|(x, y)| x * y).sum();
            for (vi, bi) in v.iter_mut().zip(bvec) {
                *vi -= proj * bi;
            }
        }
        let res: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        worst = worst.max(res / norm0);
    }
    worst
}

/// Runs adaptive PMTBR over the band `[omega_lo, omega_hi]`.
///
/// Starts from the band edges and midpoint, then repeatedly bisects the
/// interval whose midpoint sample has the largest residual against the
/// current basis. Stops when the worst residual (relative to the sample
/// norm) drops below `tol` or `max_samples` is reached. The chosen
/// points are then executed as a [`Sampling::Custom`] plan through the
/// shared pipeline (uniform weights — the adaptive density itself
/// encodes the weighting), so the final sweep is parallel, traced, and
/// fault-tolerant: under `PMTBR_FAULT` both the probes and the model
/// build degrade gracefully instead of erroring.
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] for a degenerate band or
///   `max_samples < 3`.
/// - Propagates solve/SVD/projection errors from the final pipeline run.
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use pmtbr::adaptive_pmtbr;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0)?;
/// let m = adaptive_pmtbr(&sys, 0.01, 10.0, 1e-6, 20, Some(6))?;
/// assert!(m.chosen_omegas.len() <= 20);
/// # Ok(())
/// # }
/// ```
pub fn adaptive_pmtbr<S: LtiSystem + ?Sized>(
    sys: &S,
    omega_lo: f64,
    omega_hi: f64,
    tol: f64,
    max_samples: usize,
    max_order: Option<usize>,
) -> Result<AdaptiveModel, NumError> {
    match FaultPlan::from_env() {
        Ok(Some(plan)) => adaptive_driver(
            sys,
            omega_lo,
            omega_hi,
            tol,
            max_samples,
            max_order,
            &RecoveryPolicy::default(),
            &plan,
        ),
        Ok(None) => adaptive_driver(
            sys,
            omega_lo,
            omega_hi,
            tol,
            max_samples,
            max_order,
            &RecoveryPolicy::default(),
            &NoFaults,
        ),
        Err(_) => Err(NumError::InvalidArgument(
            "malformed PMTBR_FAULT spec: fix or unset it (the pmtbr CLI prints the detailed \
             parse error)",
        )),
    }
}

#[allow(clippy::too_many_arguments)]
fn adaptive_driver<S: LtiSystem + ?Sized>(
    sys: &S,
    omega_lo: f64,
    omega_hi: f64,
    tol: f64,
    max_samples: usize,
    max_order: Option<usize>,
    policy: &RecoveryPolicy,
    faults: &dyn SolveFault,
) -> Result<AdaptiveModel, NumError> {
    if !(omega_hi > omega_lo) || omega_lo < 0.0 {
        return Err(NumError::InvalidArgument("band must satisfy 0 <= lo < hi"));
    }
    if max_samples < 3 {
        return Err(NumError::InvalidArgument("adaptive sampling needs at least 3 samples"));
    }
    let b = sys.input_matrix().to_complex();
    // Guard against sampling exactly at a dc pole.
    let clamp = |w: f64| c64::new(0.0, w.max((omega_hi - omega_lo) * 1e-9));

    let mut qbasis: Vec<Vec<f64>> = Vec::new();
    let mut chosen: Vec<f64> = Vec::new();

    // Seed with the band edges and midpoint — one batched tolerant
    // solve, absorbed in order so the basis matches sequential seeding.
    let seeds = [omega_lo, omega_hi, (omega_lo + omega_hi) / 2.0];
    let shifts: Vec<c64> = seeds.iter().map(|&w| clamp(w)).collect();
    let sweep = sys.solve_shifted_many_tolerant(&shifts, &b, policy, faults);
    for (w, sol) in seeds.iter().zip(&sweep.solutions) {
        if let Some(z) = sol {
            absorb(&mut qbasis, z);
        }
        // A dropped seed still counts against the budget; the final
        // sweep retries it through the ladder.
        chosen.push(*w);
    }

    // Interval queue: candidate midpoints between already-sampled points.
    while chosen.len() < max_samples {
        let mut sorted = chosen.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut mids: Vec<f64> = Vec::new();
        for pair in sorted.windows(2) {
            if (pair[1] - pair[0]) < (omega_hi - omega_lo) * 1e-6 {
                continue;
            }
            mids.push((pair[0] + pair[1]) / 2.0);
        }
        if mids.is_empty() {
            break;
        }
        // Probe every interval midpoint in one batched tolerant sweep;
        // take the worst surviving residual and reuse its solution.
        let shifts: Vec<c64> = mids.iter().map(|&m| clamp(m)).collect();
        let sweep = sys.solve_shifted_many_tolerant(&shifts, &b, policy, faults);
        let mut best: Option<(f64, usize)> = None; // (residual, index)
        for (k, sol) in sweep.solutions.iter().enumerate() {
            let Some(z) = sol else { continue };
            let worst = residual_against(&qbasis, z);
            if best.is_none_or(|(r, _)| worst > r) {
                best = Some((worst, k));
            }
        }
        match best {
            Some((res, _)) if res < tol => break,
            Some((_, k)) => {
                if let Some(z) = &sweep.solutions[k] {
                    absorb(&mut qbasis, z);
                }
                chosen.push(mids[k]);
            }
            None => break, // every probe dropped this round
        }
    }

    // Final compression through the shared pipeline: the chosen points
    // become a custom quadrature with uniform weights.
    let points: Vec<SamplePoint> =
        chosen.iter().map(|&w| SamplePoint { s: clamp(w), weight: 1.0 }).collect();
    let plan = ReductionPlan {
        sampling: Sampling::Custom(points),
        directions: InputDirections::IdentityBlock,
        compressor: Compressor::JacobiSvd,
        order: OrderControl::Tolerance { tolerance: 1e-12, max_order },
    };
    let red = crate::pipeline::run_with(sys, &plan, policy, faults)?;
    Ok(AdaptiveModel { model: red.model, chosen_omegas: chosen, diagnostics: red.diagnostics })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{peec_resonator, rc_mesh, PeecParams};
    use lti::{frequency_response, linspace, max_rel_error};

    #[test]
    fn smooth_system_needs_few_points() {
        let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0).unwrap();
        let m = adaptive_pmtbr(&sys, 0.01, 10.0, 1e-8, 30, None).unwrap();
        assert!(
            m.chosen_omegas.len() < 12,
            "RC mesh is smooth; {} points is too many",
            m.chosen_omegas.len()
        );
        assert!(!m.diagnostics.is_degraded());
    }

    #[test]
    fn resonant_system_concentrates_points_near_peaks() {
        let sys = peec_resonator(&PeecParams::default()).unwrap();
        let w_hi = 2.0 * std::f64::consts::PI * 20e9;
        let m = adaptive_pmtbr(&sys, w_hi * 1e-3, w_hi, 1e-7, 40, None).unwrap();
        // Model must be accurate across the band despite sharp features.
        let grid = linspace(w_hi * 0.01, w_hi * 0.99, 60);
        let h = frequency_response(&sys, &grid).unwrap();
        let hr = frequency_response(&m.model.reduced, &grid).unwrap();
        let err = max_rel_error(&h, &hr);
        assert!(err < 0.05, "adaptive model in-band error {err:.3}");
    }

    #[test]
    fn respects_sample_budget() {
        let sys = peec_resonator(&PeecParams::default()).unwrap();
        let w_hi = 2.0 * std::f64::consts::PI * 20e9;
        let m = adaptive_pmtbr(&sys, w_hi * 1e-3, w_hi, 1e-12, 8, None).unwrap();
        assert!(m.chosen_omegas.len() <= 8);
        assert_eq!(m.diagnostics.requested, m.chosen_omegas.len());
    }

    #[test]
    fn survives_injected_faults() {
        let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0).unwrap();
        let plan = FaultPlan::new(13, 0.25, vec![crate::FaultKind::Panic], 2);
        let m = adaptive_driver(
            &sys,
            0.01,
            10.0,
            1e-8,
            20,
            Some(6),
            &RecoveryPolicy::default(),
            &plan,
        )
        .unwrap();
        assert!(m.model.order <= 6);
        assert_eq!(m.diagnostics.reports.len(), m.diagnostics.requested);
    }

    #[test]
    fn validation() {
        let sys = rc_mesh(2, 2, &[0], 1.0, 1.0, 2.0).unwrap();
        assert!(adaptive_pmtbr(&sys, 5.0, 1.0, 1e-6, 10, None).is_err());
        assert!(adaptive_pmtbr(&sys, 0.0, 1.0, 1e-6, 2, None).is_err());
    }
}
