//! The unified reduction pipeline: every PMTBR variant as one staged
//! [`ReductionPlan`].
//!
//! The paper's three algorithms and this repo's extensions are the
//! *same* computation with different stage choices:
//!
//! ```text
//!  SamplingPlan          InputDirections        execution engine         Compressor
//!  (nodes + weights)     (what to excite)       (tolerant sweep)         (how to truncate)
//!  ───────────────┐      ───────────────┐      ─────────────────┐      ───────────────┐
//!  Linear / Log   │      IdentityBlock  │      solve (sE−A)Z=R  │      JacobiSvd      │
//!  Bands          ├──▶   Correlated     ├──▶   via ladder +     ├──▶   Incremental    ├──▶ congruence
//!  Custom         │      (corr-SVD      │      ShiftSolveEngine │      Balance        │    projection
//!                 │       draws)        │      (+ transpose for │      CrossGramian   │
//!  ───────────────┘      ───────────────┘       two-sided)      │      ───────────────┘
//!                                              ─────────────────┘
//! ```
//!
//! Mapping of the paper's algorithms onto plans:
//!
//! - **Algorithm 1** (baseline PMTBR): any one-band sampling +
//!   `IdentityBlock` + `JacobiSvd` — [`ReductionPlan::pmtbr`].
//! - **Algorithm 2** (frequency-selective): band-restricted sampling,
//!   otherwise identical — [`ReductionPlan::frequency_selective`].
//! - **Algorithm 3** (input-correlated): stochastic correlation-SVD
//!   draws as input directions — [`ReductionPlan::input_correlated`].
//! - **Section V-D extensions** (two-sided): the same sweep run on both
//!   pencils, compressed by square-root balancing
//!   ([`ReductionPlan::balanced`]) or the joint cross-Gramian
//!   eigenproblem ([`ReductionPlan::cross_gramian`]).
//!
//! Because there is exactly one execution core ([`run_guarded`]),
//! every variant inherits the same guarantees: the parallel
//! factorization-reusing `ShiftSolveEngine`, the fault-tolerance
//! escalation ladders with [`SweepDiagnostics`] and [`PipelineReport`],
//! `PMTBR_FAULT` chaos testing ([`run`]), deterministic work budgets
//! with cooperative cancellation ([`Budget`]), `obs` tracing, and
//! bit-identical results at any thread count.
//!
//! ## Fault containment beyond the sweep
//!
//! The sweep stage has always degraded gracefully (its per-shift
//! escalation ladder drops nodes instead of aborting). [`run_guarded`]
//! extends the same discipline to the other two stages:
//!
//! - **compress** escalates through a deterministic ladder — plain SVD
//!   → raised sweep cap → column equilibration → direct
//!   (unpreconditioned) Jacobi — and, when the ladder is exhausted,
//!   *downgrades*: the eig-based [`Compressor::CrossGramian`] and the
//!   two-sided [`Compressor::Balance`] fall back to a one-sided
//!   spectral compression of the controllability samples, and any
//!   spectral failure falls back to the SVD-free
//!   [`Compressor::Incremental`] basis. Every rung is traced as a
//!   `rung` event and every downgrade is recorded in the report.
//! - **project** retries injected faults (chaos testing) and records
//!   its outcome; real projection errors still fail the run.
//!
//! Worker panics anywhere inside a rung are contained by the same
//! `catch_unwind` discipline `lti::tolerant` uses for shift solves and
//! surface as [`NumError::WorkerPanicked`] escalations, never as an
//! aborted process.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lti::{
    input_correlation_svd, realified_ncols, realify_columns_into, LtiSystem, NoFaults,
    RecoveryPolicy, ShiftOutcome, ShiftReport, SolveFault, StateSpace, TolerantSweep,
};
use numkit::{
    c64, eig, svd, svd_with_opts, svd_with_sweeps, DMat, Lu, NumError, SplitMix64, Svd,
    SvdOptions, ZMat,
};

use crate::algorithm::equilibrated_svd;
use crate::budget::BudgetTracker;
use crate::fault::{FaultStage, StageFault};
use crate::{
    Budget, IncrementalBasis, InputCorrelatedOptions, PmtbrModel, PmtbrOptions, SamplePoint,
    Sampling, SweepDiagnostics,
};

/// What to excite at each sample node (the paper's `B·d` choice).
#[derive(Debug, Clone)]
pub enum InputDirections {
    /// The full input block `B` — one column per port (Algorithms 1–2).
    IdentityBlock,
    /// Stochastic draws from the empirical input correlation
    /// (Algorithm 3): directions `B·V_K·r`, `r ~ N(0, diag(S_K²/N))`,
    /// assigned to sample nodes by cycling in draw order.
    Correlated {
        /// Observed `p × N` input waveform samples.
        u_samples: DMat,
        /// Number of stochastic draws (columns before compression).
        n_draws: usize,
        /// Correlation directions with `S_K < corr_tol·S_K[0]` are dropped.
        corr_tol: f64,
        /// RNG seed (runs are deterministic given the seed).
        seed: u64,
    },
}

/// How the (weighted, realified) sample matrix is truncated into a
/// projection basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compressor {
    /// One-shot SVD of the stacked sample matrix (with the equilibrated
    /// convergence safety net) — the paper's default.
    JacobiSvd,
    /// Incremental Gram–Schmidt QR with `R`-factor singular-value
    /// estimates ([`IncrementalBasis`], paper Section V-C): same
    /// subspace, no full re-SVD per block.
    Incremental,
    /// Two-sided square-root balancing: SVD of `Z_Lᵀ·Z_R` with
    /// `1/√σ`-scaled projectors (`WᵀV = I`).
    Balance,
    /// Two-sided cross-Gramian eigenproblem compressed through a joint
    /// orthonormal basis of `[Z_R | Z_L]` (paper Section V-D).
    CrossGramian,
}

impl Compressor {
    /// Whether this compressor needs observability-side samples
    /// (`(sE − A)⁻ᵀ·Cᵀ`) in addition to controllability-side ones.
    pub fn is_two_sided(&self) -> bool {
        matches!(self, Compressor::Balance | Compressor::CrossGramian)
    }
}

/// How the reduced order is chosen from the compressed spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OrderControl {
    /// Keep directions with `σᵢ > tolerance·σ₀`, optionally capped.
    Tolerance {
        /// Relative singular-value truncation tolerance.
        tolerance: f64,
        /// Optional hard cap on the reduced order.
        max_order: Option<usize>,
    },
    /// Exactly this order (two-sided variants; errors if the sampled
    /// subspace cannot support it).
    Exact(usize),
}

/// A complete, declarative description of one reduction: sampling
/// nodes/weights, input directions, compressor, and order control.
/// Execute with [`run`] / [`run_with`].
///
/// ```
/// use pmtbr::{pipeline::run, PmtbrOptions, ReductionPlan, Sampling};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = circuits::rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0)?;
/// let opts =
///     PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 12 }).with_max_order(6);
/// let red = run(&sys, &ReductionPlan::pmtbr(&opts))?;
/// assert!(red.model.order <= 6);
/// assert!(red.report.is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReductionPlan {
    /// Quadrature nodes and weights (the `SamplingPlan` stage).
    pub sampling: Sampling,
    /// Excitation per node.
    pub directions: InputDirections,
    /// Truncation backend.
    pub compressor: Compressor,
    /// Order selection.
    pub order: OrderControl,
}

impl ReductionPlan {
    /// Algorithm 1: baseline PMTBR under [`PmtbrOptions`].
    pub fn pmtbr(opts: &PmtbrOptions) -> Self {
        ReductionPlan {
            sampling: opts.sampling().clone(),
            directions: InputDirections::IdentityBlock,
            compressor: Compressor::JacobiSvd,
            order: OrderControl::Tolerance {
                tolerance: opts.tolerance(),
                max_order: opts.max_order(),
            },
        }
    }

    /// Algorithm 2: band-restricted sampling, otherwise Algorithm 1.
    pub fn frequency_selective(
        bands: &[(f64, f64)],
        n_samples: usize,
        max_order: Option<usize>,
        tolerance: f64,
    ) -> Self {
        ReductionPlan {
            sampling: Sampling::Bands { bands: bands.to_vec(), n: n_samples },
            directions: InputDirections::IdentityBlock,
            compressor: Compressor::JacobiSvd,
            order: OrderControl::Tolerance { tolerance, max_order },
        }
    }

    /// Algorithm 3: stochastic input-correlated sampling.
    pub fn input_correlated(u_samples: &DMat, opts: &InputCorrelatedOptions) -> Self {
        ReductionPlan {
            sampling: opts.sampling.clone(),
            directions: InputDirections::Correlated {
                u_samples: u_samples.clone(),
                n_draws: opts.n_draws,
                corr_tol: opts.corr_tol,
                seed: opts.seed,
            },
            compressor: Compressor::JacobiSvd,
            order: OrderControl::Tolerance {
                tolerance: opts.tolerance,
                max_order: opts.max_order,
            },
        }
    }

    /// Two-sided square-root balancing at a fixed order.
    pub fn balanced(sampling: &Sampling, order: usize) -> Self {
        ReductionPlan {
            sampling: sampling.clone(),
            directions: InputDirections::IdentityBlock,
            compressor: Compressor::Balance,
            order: OrderControl::Exact(order),
        }
    }

    /// Two-sided cross-Gramian reduction at a fixed order.
    pub fn cross_gramian(sampling: &Sampling, order: usize) -> Self {
        ReductionPlan {
            sampling: sampling.clone(),
            directions: InputDirections::IdentityBlock,
            compressor: Compressor::CrossGramian,
            order: OrderControl::Exact(order),
        }
    }

    /// Greedy adaptive frequency selection over `[0, omega_max]` (see
    /// `docs/SAMPLING.md`): shifts are placed one at a time where the
    /// projected-model residual surrogate is largest, stopping at the
    /// frequency-aware convergence tolerance `tol` (`0` disables early
    /// stopping) or after `max_shifts` LU-backed solves. The candidate
    /// pool defaults to the shift budget's own midpoint grid — greedy
    /// orders the fixed grid best-first and the stopping rule decides
    /// how much of it to spend, so `tol = 0` reproduces
    /// `Sampling::Linear { n: max_shifts }` exactly. Set
    /// [`ReductionPlan::sampling`] directly for a denser off-grid pool.
    ///
    /// ```
    /// use pmtbr::{pipeline::run, OrderControl, ReductionPlan};
    ///
    /// # fn main() -> Result<(), numkit::NumError> {
    /// let sys = circuits::rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0)?;
    /// // At most 6 solves, stopping early once the surrogate or the
    /// // reduced transfer function has converged below 1e-4.
    /// let order = OrderControl::Tolerance { tolerance: 1e-8, max_order: Some(6) };
    /// let red = run(&sys, &ReductionPlan::greedy(20.0, 1e-4, 6, order))?;
    /// assert!(red.diagnostics.surviving <= 6);
    /// # Ok(())
    /// # }
    /// ```
    pub fn greedy(omega_max: f64, tol: f64, max_shifts: usize, order: OrderControl) -> Self {
        ReductionPlan {
            sampling: Sampling::Greedy { omega_max, pool: max_shifts, tol, max_shifts },
            directions: InputDirections::IdentityBlock,
            compressor: Compressor::JacobiSvd,
            order,
        }
    }

    /// Swaps the compression backend (e.g. [`Compressor::Incremental`]).
    #[must_use]
    pub fn with_compressor(mut self, compressor: Compressor) -> Self {
        self.compressor = compressor;
        self
    }

    /// Cheap structural validation, run before any solve.
    fn validate(&self) -> Result<(), NumError> {
        if let OrderControl::Exact(q) = self.order {
            if q == 0 {
                return Err(NumError::InvalidArgument("reduction order must be at least 1"));
            }
        }
        if self.compressor == Compressor::CrossGramian
            && !matches!(self.order, OrderControl::Exact(_))
        {
            return Err(NumError::InvalidArgument(
                "cross-gramian compression needs an exact target order",
            ));
        }
        if let InputDirections::Correlated { n_draws, .. } = &self.directions {
            if *n_draws == 0 {
                return Err(NumError::InvalidArgument("need at least one draw"));
            }
        }
        if let Sampling::Greedy { omega_max, pool, tol, max_shifts } = &self.sampling {
            if !(*omega_max > 0.0) {
                return Err(NumError::InvalidArgument("greedy sampling needs ω_max > 0"));
            }
            if *max_shifts == 0 || pool < max_shifts {
                return Err(NumError::InvalidArgument(
                    "greedy sampling needs 1 <= max_shifts <= pool",
                ));
            }
            if !tol.is_finite() || *tol < 0.0 {
                return Err(NumError::InvalidArgument(
                    "greedy tolerance must be finite and >= 0",
                ));
            }
            if matches!(self.directions, InputDirections::Correlated { .. }) {
                return Err(NumError::InvalidArgument(
                    "greedy sampling supports identity-block input directions only",
                ));
            }
        }
        Ok(())
    }
}

/// How one pipeline stage ultimately resolved, in increasing severity.
///
/// The derived `Ord` follows severity, so `a.max(b)` is "the worse of
/// the two" — which is how [`PipelineReport::worst`] folds stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum StageOutcome {
    /// First attempt succeeded with no recovery work.
    #[default]
    Clean,
    /// The stage succeeded after its recovery ladder escalated (raised
    /// caps, equilibration, refinement, perturbation, retried injected
    /// faults) without losing accuracy guarantees.
    Recovered,
    /// The stage completed best-effort with a recorded accuracy
    /// concession: dropped sample nodes, a downgraded compressor, or a
    /// budget truncation.
    Degraded,
    /// The stage could not produce a result; the run errored.
    Failed,
}

impl StageOutcome {
    /// Short lower-case label (`"clean"`, `"recovered"`, `"degraded"`,
    /// `"failed"`) used in traces and CLI reports.
    pub fn label(&self) -> &'static str {
        match self {
            StageOutcome::Clean => "clean",
            StageOutcome::Recovered => "recovered",
            StageOutcome::Degraded => "degraded",
            StageOutcome::Failed => "failed",
        }
    }
}

/// Structured per-stage account of one pipeline run: what each stage's
/// recovery ladder had to do, whether the compressor was downgraded,
/// and whether a work budget ran dry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineReport {
    /// Outcome of the sampling sweep stage.
    pub sweep: StageOutcome,
    /// Outcome of the compression stage.
    pub compress: StageOutcome,
    /// Outcome of the projection stage.
    pub project: StageOutcome,
    /// `true` when the compressor fell back to a lower-accuracy scheme
    /// (two-sided → one-sided spectral, or spectral → incremental QR).
    pub compressor_downgraded: bool,
    /// The budgeted resource that ran out (`"lu-factorizations"`,
    /// `"svd-sweeps"`, `"sample-bytes"`), if any.
    pub budget_exhausted: Option<&'static str>,
    /// Human-readable notes explaining each recovery and downgrade.
    pub notes: Vec<String>,
}

impl PipelineReport {
    /// The worst stage outcome of the run.
    pub fn worst(&self) -> StageOutcome {
        self.sweep.max(self.compress).max(self.project)
    }

    /// `true` when every stage was clean and no budget ran out.
    pub fn is_clean(&self) -> bool {
        self.worst() == StageOutcome::Clean
            && !self.compressor_downgraded
            && self.budget_exhausted.is_none()
    }

    /// `true` when the model carries a recorded accuracy concession
    /// (dropped nodes, downgraded compressor, or exhausted budget).
    pub fn is_degraded(&self) -> bool {
        self.worst() >= StageOutcome::Degraded
            || self.compressor_downgraded
            || self.budget_exhausted.is_some()
    }
}

/// The result of executing a [`ReductionPlan`]: the reduced model plus
/// the complete per-node account of the tolerant sweep and the
/// per-stage pipeline report.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced model and spectra.
    pub model: PmtbrModel,
    /// The fate of every sample node, including weight renormalization.
    pub diagnostics: SweepDiagnostics,
    /// Per-stage outcomes, downgrades, and budget accounting.
    pub report: PipelineReport,
}

/// Executes a plan with the default [`RecoveryPolicy`], no budget, and
/// the fault plan from the `PMTBR_FAULT` environment variable (none
/// when unset) — so chaos testing applies uniformly to every variant.
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] when `PMTBR_FAULT` is set but
///   malformed — a bad spec must never run silently unfaulted. (The
///   CLI validates the variable up front and prints the detailed parse
///   error; this in-library error is deliberately static.)
/// - See [`run_guarded`] for the rest.
pub fn run<S: LtiSystem + ?Sized>(sys: &S, plan: &ReductionPlan) -> Result<Reduction, NumError> {
    run_budgeted(sys, plan, &Budget::default())
}

/// [`run`] with an explicit work budget: default policy, `PMTBR_FAULT`
/// chaos faults, budget caps, and cooperative cancellation. This is
/// what the CLI's `--budget-*` flags call.
///
/// # Errors
///
/// See [`run`] and [`run_guarded`].
pub fn run_budgeted<S: LtiSystem + ?Sized>(
    sys: &S,
    plan: &ReductionPlan,
    budget: &Budget,
) -> Result<Reduction, NumError> {
    run_cached(sys, plan, budget, &crate::cache::NullCache)
}

/// [`run_budgeted`] consulting a content-addressed [`ArtifactCache`](crate::ArtifactCache) at
/// stage boundaries — the entry point behind reduction-as-a-service.
///
/// The lookup ladder, keyed on [`LtiSystem::pencil_hash`] plus a digest
/// of the plan, the `PMTBR_FAULT` spec, and the budget caps:
///
/// 1. **Model hit** — the finished [`Reduction`] is returned and the
///    trace events captured by the computing run are replayed
///    byte-for-byte ([`obs::replay`]); the whole pipeline is skipped.
/// 2. **Sweep hit** — the realified sample matrix is reused and the run
///    skips straight to compress/project, so plans differing only in
///    compressor or order control share the expensive LU sweep.
/// 3. **Miss** — the full pipeline runs and its artifacts are offered
///    for admission.
///
/// [`NullCache`](crate::cache::NullCache) (what [`run_budgeted`] uses)
/// makes every lookup miss, so cached and uncached runs execute the
/// identical code path and are byte-identical — model, report, trace,
/// and counters. A Degraded result is never admitted (see
/// [`crate::cache`] for the full identity contract).
///
/// # Errors
///
/// See [`run`] and [`run_guarded`]. A cache hit can still return
/// [`NumError::Cancelled`] when the budget's token is already raised.
pub fn run_cached<S: LtiSystem + ?Sized>(
    sys: &S,
    plan: &ReductionPlan,
    budget: &Budget,
    cache: &dyn crate::cache::ArtifactCache,
) -> Result<Reduction, NumError> {
    let policy = RecoveryPolicy::default();
    match crate::fault::FaultPlan::from_env() {
        Ok(Some(p)) => run_guarded_cached(sys, plan, &policy, &p, budget, cache),
        Ok(None) => run_guarded_cached(sys, plan, &policy, &NoFaults, budget, cache),
        Err(_) => Err(NumError::InvalidArgument(
            "malformed PMTBR_FAULT spec: fix or unset it (the pmtbr CLI prints the detailed \
             parse error)",
        )),
    }
}

/// Executes a plan with an explicit recovery policy and sweep-level
/// fault hook, no stage-level fault injection, and no budget.
///
/// Kept for callers that only need the sweep-stage [`SolveFault`]
/// surface; [`run_guarded`] is the full execution core.
///
/// # Errors
///
/// See [`run_guarded`].
pub fn run_with<S: LtiSystem + ?Sized>(
    sys: &S,
    plan: &ReductionPlan,
    policy: &RecoveryPolicy,
    faults: &dyn SolveFault,
) -> Result<Reduction, NumError> {
    run_guarded(sys, plan, policy, &SweepOnly(faults), &Budget::default())
}

/// Adapts a sweep-only [`SolveFault`] to the [`StageFault`] surface
/// (stage hooks inert).
struct SweepOnly<'a>(&'a dyn SolveFault);

impl SolveFault for SweepOnly<'_> {
    fn inject_error(&self, index: usize, attempt: usize) -> Option<NumError> {
        self.0.inject_error(index, attempt)
    }

    fn corrupt(&self, index: usize, attempt: usize, z: &mut ZMat) {
        self.0.corrupt(index, attempt, z);
    }

    fn inject_panic(&self, index: usize) -> bool {
        self.0.inject_panic(index)
    }
}

impl StageFault for SweepOnly<'_> {}

/// Executes a plan: sweep → compress → project, with an explicit
/// recovery policy, stage-level fault hook, and deterministic work
/// budget.
///
/// This is the single execution core behind every reduction entry
/// point. All shifted solves go through the tolerant multipoint sweep
/// ([`LtiSystem::solve_shifted_many_tolerant`] and friends), so sparse
/// systems get the factorization-reusing parallel engine; failures
/// degrade the quadrature instead of aborting it; compression and
/// projection failures escalate through deterministic recovery ladders
/// (see the module docs); and the whole run is traced under the
/// `pmtbr.sample_sweep` / `pmtbr.compress` / `pmtbr.project` spans with
/// per-stage outcomes.
///
/// The budget's caps are enforced off the deterministic `obs` counters
/// (never wall clock): the sweep attempts at most the remaining
/// LU-factorization cap's worth of nodes, the compressor ladder clamps
/// its sweep caps to the remaining SVD budget, and exhaustion yields a
/// best-effort [`StageOutcome::Degraded`] model with the resource
/// recorded in [`PipelineReport::budget_exhausted`]. The budget's
/// [`numkit::CancelToken`] is polled at stage boundaries and once per
/// sweep shift.
///
/// # Errors
///
/// - Plan validation ([`NumError::InvalidArgument`]).
/// - [`NumError::InvalidArgument`] if every node was dropped, all
///   weighted samples vanished, or the sampled subspace cannot support
///   an exact-order request.
/// - [`NumError::BudgetExhausted`] when a budget leaves room for no
///   work at all (e.g. zero remaining LU factorizations before the
///   sweep).
/// - [`NumError::Cancelled`] when the budget's token is raised.
/// - Propagates unrecoverable SVD/eigen/projection errors (after the
///   compressor ladder and fallbacks are exhausted).
///
/// ```
/// use lti::{NoFaults, RecoveryPolicy};
/// use pmtbr::{
///     pipeline::run_guarded, Budget, PmtbrOptions, ReductionPlan, Sampling, StageOutcome,
/// };
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = circuits::rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0)?;
/// let opts =
///     PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 10 }).with_max_order(4);
/// let plan = ReductionPlan::pmtbr(&opts);
/// let red = run_guarded(
///     &sys,
///     &plan,
///     &RecoveryPolicy::default(),
///     &NoFaults,
///     &Budget::default().with_max_lu_factors(1_000),
/// )?;
/// assert_eq!(red.report.worst(), StageOutcome::Clean);
/// assert!(red.report.budget_exhausted.is_none());
/// # Ok(())
/// # }
/// ```
pub fn run_guarded<S: LtiSystem + ?Sized>(
    sys: &S,
    plan: &ReductionPlan,
    policy: &RecoveryPolicy,
    faults: &dyn StageFault,
    budget: &Budget,
) -> Result<Reduction, NumError> {
    run_core(sys, plan, policy, faults, budget, None, false).map(|(reduction, _)| reduction)
}

/// [`run_guarded`] with an [`ArtifactCache`](crate::cache::ArtifactCache)
/// consulted at stage boundaries: the explicit-everything core behind
/// [`run_cached`] (and the serve daemon). See [`run_cached`] for the
/// lookup ladder and the identity contract.
///
/// # Errors
///
/// See [`run_guarded`].
pub fn run_guarded_cached<S: LtiSystem + ?Sized>(
    sys: &S,
    plan: &ReductionPlan,
    policy: &RecoveryPolicy,
    faults: &dyn StageFault,
    budget: &Budget,
    cache: &dyn crate::cache::ArtifactCache,
) -> Result<Reduction, NumError> {
    use crate::cache::{self, Artifact, CacheKey, CachedReduction};

    plan.validate()?;
    BudgetTracker::start(budget).check_cancelled()?;
    // A system without a content address cannot be cached; run the
    // identical core directly (no lookup spans: there is no key to
    // look up, and the omission is deterministic per system type).
    let Some(pencil) = sys.pencil_hash() else {
        return run_core(sys, plan, policy, faults, budget, None, false)
            .map(|(reduction, _)| reduction);
    };
    let env = cache::fault_env_digest();
    let traced = obs::is_enabled();

    let model_key = CacheKey::model(pencil, cache::model_digest(plan, env, budget));
    if let Some(Artifact::Model(entry)) = cache.get(&model_key) {
        // An entry captured without a trace cannot serve a traced run:
        // replaying nothing would silently drop the pipeline spans, so
        // the lookup deterministically degrades to a miss.
        if entry.traced || !traced {
            cache::record_lookup(&model_key, true);
            if traced {
                obs::skip_seq_roots(entry.seq_watermark);
                obs::replay(&entry.events);
            }
            return Ok(entry.reduction.clone());
        }
    }
    cache::record_lookup(&model_key, false);

    let sweep_key = CacheKey::sweep(pencil, cache::sweep_digest(plan, env, budget));
    let warm_sweep = match cache.get(&sweep_key) {
        Some(Artifact::Sweep(s)) => {
            cache::record_lookup(&sweep_key, true);
            Some(s)
        }
        _ => {
            cache::record_lookup(&sweep_key, false);
            None
        }
    };

    // Capture the work events from here: a warm model hit replays
    // exactly this slice (its own `cache_lookup` spans are emitted
    // live, before the mark).
    let mark = obs::flushed_len();
    let (reduction, sweep_artifact) =
        run_core(sys, plan, policy, faults, budget, warm_sweep.as_deref(), true)?;
    if let Some(sw) = sweep_artifact {
        cache::record_offer(cache, sweep_key, Artifact::Sweep(std::sync::Arc::new(sw)));
    }
    // Poisoned-entry rejection: a Degraded result encodes this run's
    // fault/budget history and is never admitted.
    if !reduction.report.is_degraded() {
        // A run assembled from a cached sweep has no sweep span to
        // capture, so its model entry is stored unfaithful (usable only
        // by untraced runs).
        let faithful = traced && warm_sweep.is_none();
        let events = if faithful { obs::capture_since(mark) } else { Vec::new() };
        let entry = CachedReduction {
            reduction: reduction.clone(),
            seq_watermark: obs::seq_watermark(&events),
            events,
            traced: faithful,
        };
        cache::record_offer(cache, model_key, Artifact::Model(std::sync::Arc::new(entry)));
    }
    Ok(reduction)
}

/// The stage core: sweep (live, or replayed from a cached artifact) →
/// compress → project. Returns the reduction plus, when requested and
/// eligible, the sweep artifact for cache admission.
fn run_core<S: LtiSystem + ?Sized>(
    sys: &S,
    plan: &ReductionPlan,
    policy: &RecoveryPolicy,
    faults: &dyn StageFault,
    budget: &Budget,
    warm_sweep: Option<&crate::cache::CachedSweep>,
    want_sweep_artifact: bool,
) -> Result<(Reduction, Option<crate::cache::CachedSweep>), NumError> {
    plan.validate()?;
    let tracker = BudgetTracker::start(budget);
    tracker.check_cancelled()?;
    let mut report = PipelineReport::default();
    // Thread the budget's cancellation token into the sweep policy when
    // the caller didn't set one, so a single token stops every stage.
    let policy_with_cancel;
    let policy = match (policy.cancel.is_none(), tracker.cancel()) {
        (true, Some(token)) => {
            policy_with_cancel =
                RecoveryPolicy { cancel: Some(token.clone()), ..policy.clone() };
            &policy_with_cancel
        }
        _ => policy,
    };
    let mut sweep_span: Option<obs::SpanGuard> = None;
    let mut budget_truncated = 0;
    let cold: Option<crate::cache::CachedSweep> = if warm_sweep.is_some() {
        None
    } else {
        let SweptSamples {
            kept: _,
            zmat,
            blocks,
            zl,
            reports,
            requested,
            surviving,
            renorm,
            budget_truncated: truncated,
            span,
        } = sweep(
            sys,
            &plan.sampling,
            &plan.directions,
            plan.compressor.is_two_sided(),
            policy,
            faults,
            tracker.node_cap(),
        )?;
        sweep_span = Some(span);
        budget_truncated = truncated;
        Some(crate::cache::CachedSweep { zmat, blocks, zl, reports, requested, surviving, renorm })
    };
    let data = match (cold.as_ref(), warm_sweep) {
        (Some(s), _) => s,
        (None, Some(s)) => s,
        (None, None) => return Err(NumError::InvalidArgument("pipeline: no sweep source")),
    };
    // Which stage consumed the budget (satellite of the budget report:
    // exhaustion names its stage in the notes and the trace).
    let mut budget_stage: Option<&'static str> = None;
    if budget_truncated > 0 {
        report.budget_exhausted = Some("lu-factorizations");
        budget_stage = Some("sweep");
        report.notes.push(format!(
            "lu-factorization budget truncated the sweep: {budget_truncated} of {requested} \
             nodes were never attempted",
            requested = data.requested,
        ));
    }
    report.sweep = sweep_outcome(&data.reports);
    if report.budget_exhausted.is_none() {
        if let Some(resource) = tracker.exhausted() {
            report.budget_exhausted = Some(resource);
            budget_stage = Some("sweep");
        }
    }
    tracker.check_cancelled()?;
    let compressed =
        compress(&data.zmat, &data.blocks, data.zl.as_ref(), plan, faults, &tracker, &mut report)?;
    let svd_retried = compressed.retried();
    if budget_stage.is_none()
        && (report.budget_exhausted.is_some() || tracker.exhausted().is_some())
    {
        if report.budget_exhausted.is_none() {
            report.budget_exhausted = tracker.exhausted();
        }
        budget_stage = Some("compress");
    }
    if let Some(span) = sweep_span.as_mut() {
        span.field_u64("surviving", data.surviving as u64);
        span.field_u64("total_cols", data.zmat.ncols() as u64);
        span.field_f64("renorm", data.renorm);
        span.field("svd_retried", obs::Value::Bool(svd_retried));
        span.field_str("outcome", report.sweep.label());
    }
    drop(sweep_span);
    tracker.check_cancelled()?;
    let model =
        project(sys, &data.zmat, data.zl.as_ref(), compressed, &plan.order, faults, &mut report)?;
    if budget_stage.is_none() {
        if let Some(resource) = tracker.exhausted() {
            report.budget_exhausted = Some(resource);
            budget_stage = Some("project");
        }
    }
    if let (Some(resource), Some(stage)) = (report.budget_exhausted, budget_stage) {
        report.notes.push(format!("{resource} budget exhausted in the {stage} stage"));
        let mut bsp = obs::span("pmtbr.budget_exhausted");
        bsp.field_str("resource", resource);
        bsp.field_str("stage", stage);
    }
    let diagnostics = SweepDiagnostics {
        reports: data.reports.clone(),
        requested: data.requested,
        surviving: data.surviving,
        weight_renormalization: data.renorm,
        svd_retried,
    };
    let reduction = Reduction { model, diagnostics, report };
    // A sweep is poisoned for reuse if the budget truncated or
    // otherwise ran out during it, or any node was dropped.
    let sweep_artifact = if want_sweep_artifact
        && budget_truncated == 0
        && budget_stage != Some("sweep")
        && reduction.report.sweep != StageOutcome::Degraded
    {
        cold
    } else {
        None
    };
    Ok((reduction, sweep_artifact))
}

/// Folds per-shift reports into the sweep stage's outcome: dropped
/// nodes degrade the quadrature; refinement/perturbation acceptances
/// are recoveries; reuse/refactor/refresh are the clean paths.
fn sweep_outcome(reports: &[ShiftReport]) -> StageOutcome {
    let mut outcome = StageOutcome::Clean;
    for r in reports {
        let this = match r.outcome {
            ShiftOutcome::Reused | ShiftOutcome::Refactored | ShiftOutcome::Refreshed => {
                StageOutcome::Clean
            }
            ShiftOutcome::Refined | ShiftOutcome::Perturbed { .. } => StageOutcome::Recovered,
            ShiftOutcome::Dropped => StageOutcome::Degraded,
        };
        outcome = outcome.max(this);
    }
    outcome
}

/// The sampled, weighted, realified output of the sweep stage, with the
/// trace span still open so compression lands inside it.
pub(crate) struct SweptSamples {
    /// Surviving nodes: the shift *actually solved* (perturbed where the
    /// ladder had to nudge) with its renormalized weight.
    pub(crate) kept: Vec<SamplePoint>,
    /// Weighted realified controllability samples, one block per
    /// surviving node.
    pub(crate) zmat: DMat,
    /// Column range of each surviving node's block in `zmat`.
    pub(crate) blocks: Vec<(usize, usize)>,
    /// Weighted realified observability samples (two-sided sweeps only).
    pub(crate) zl: Option<DMat>,
    /// Per-node ladder reports, index-aligned with the requested nodes.
    pub(crate) reports: Vec<ShiftReport>,
    /// Number of nodes requested.
    pub(crate) requested: usize,
    /// Number of nodes that survived (on every required side).
    pub(crate) surviving: usize,
    /// Uniform quadrature-weight renormalization factor.
    pub(crate) renorm: f64,
    /// Nodes never attempted because the LU-factorization budget ran
    /// out (they are reported as dropped with
    /// [`NumError::BudgetExhausted`]).
    pub(crate) budget_truncated: usize,
    /// The open `pmtbr.sample_sweep` span.
    pub(crate) span: obs::SpanGuard,
}

/// Per-node excitations for the sweep.
enum Excitation {
    Shared(ZMat),
    PerNode(Vec<ZMat>),
}

/// Resolves [`InputDirections::Correlated`] into active nodes and their
/// per-node excitations, reproducing Algorithm 3's draw order exactly:
/// all Gaussian draws are taken in draw order (seed-stable), then
/// assigned to nodes by cycling `draw % n_nodes`.
fn correlated_rhs<S: LtiSystem + ?Sized>(
    sys: &S,
    points: &[SamplePoint],
    u_samples: &DMat,
    n_draws: usize,
    corr_tol: f64,
    seed: u64,
) -> Result<(Vec<SamplePoint>, Vec<ZMat>), NumError> {
    let p = sys.ninputs();
    if u_samples.nrows() != p {
        return Err(NumError::ShapeMismatch {
            operation: "input-correlated waveforms",
            left: (p, 0),
            right: u_samples.shape(),
        });
    }
    if points.is_empty() {
        return Err(NumError::InvalidArgument("sampling produced no points"));
    }
    // Empirical correlation 𝒰 = V_K·S_K·U_Kᵀ.
    let corr = input_correlation_svd(u_samples)?;
    let k_dirs = corr.rank(corr_tol).max(1);
    let nsamp = u_samples.ncols().max(1) as f64;
    // Standard deviations of the principal input coordinates.
    let sigmas: Vec<f64> = corr.s[..k_dirs].iter().map(|s| s / nsamp.sqrt()).collect();
    let vk = corr.u.leading_cols(k_dirs); // p × k

    let mut rng = SplitMix64::new(seed);
    let n = sys.nstates();
    let bmat = sys.input_matrix();
    let mut rhs_cols: Vec<Vec<f64>> = Vec::with_capacity(n_draws);
    for _ in 0..n_draws {
        // r ~ N(0, diag(σ²)) via Box–Muller.
        let dir: Vec<f64> = (0..k_dirs).map(|i| rng.next_gaussian() * sigmas[i]).collect();
        // rhs = B·(V_K·r), one column per draw.
        let vkr = vk.mul_vec(&dir);
        rhs_cols.push(bmat.mul_vec(&vkr));
    }
    let mut active: Vec<SamplePoint> = Vec::with_capacity(points.len());
    let mut rhss: Vec<ZMat> = Vec::with_capacity(points.len());
    for (k, pt) in points.iter().enumerate() {
        let mine: Vec<usize> = (0..n_draws).filter(|d| d % points.len() == k).collect();
        if mine.is_empty() {
            continue;
        }
        let rhs =
            ZMat::from_fn(n, mine.len(), |i, j| numkit::c64::from_real(rhs_cols[mine[j]][i]));
        active.push(*pt);
        rhss.push(rhs);
    }
    Ok((active, rhss))
}

/// The sweep stage: resolve directions, run the tolerant engine sweep
/// (both pencils for two-sided compressors), coordinate survivors,
/// renormalize quadrature weights, and realify into the sample matrix.
///
/// `node_cap` is the LU-factorization budget's a-priori node limit:
/// only the first `node_cap` nodes are attempted; the rest are
/// reported as dropped with [`NumError::BudgetExhausted`] and
/// renormalization spreads their quadrature weight over the survivors
/// (best-effort degradation instead of an open-ended run).
pub(crate) fn sweep<S: LtiSystem + ?Sized>(
    sys: &S,
    sampling: &Sampling,
    directions: &InputDirections,
    two_sided: bool,
    policy: &RecoveryPolicy,
    faults: &dyn SolveFault,
    node_cap: Option<usize>,
) -> Result<SweptSamples, NumError> {
    // Greedy sampling has no a-priori node list: the greedy driver
    // interleaves surrogate scoring with tolerant solves and builds the
    // swept samples itself (see `crate::greedy`).
    if let Sampling::Greedy { omega_max, pool, tol, max_shifts } = sampling {
        if !matches!(directions, InputDirections::IdentityBlock) {
            return Err(NumError::InvalidArgument(
                "greedy sampling supports identity-block input directions only",
            ));
        }
        return crate::greedy::greedy_sweep(
            sys, *omega_max, *pool, *tol, *max_shifts, two_sided, policy, faults, node_cap,
        );
    }
    let points = sampling.points()?;
    let (active, excitation) = match directions {
        InputDirections::IdentityBlock => {
            (points, Excitation::Shared(sys.input_matrix().to_complex()))
        }
        InputDirections::Correlated { u_samples, n_draws, corr_tol, seed } => {
            let (active, rhss) =
                correlated_rhs(sys, &points, u_samples, *n_draws, *corr_tol, *seed)?;
            (active, Excitation::PerNode(rhss))
        }
    };
    let cap = node_cap.unwrap_or(usize::MAX);
    if cap == 0 {
        return Err(NumError::BudgetExhausted { resource: "lu-factorizations" });
    }
    let attempted = active.len().min(cap);
    let excitation = match excitation {
        Excitation::PerNode(mut rhss) => {
            rhss.truncate(attempted);
            Excitation::PerNode(rhss)
        }
        shared => shared,
    };
    let mut sp = obs::span("pmtbr.sample_sweep");
    sp.field_u64("requested", active.len() as u64);
    let shifts: Vec<c64> = active[..attempted].iter().map(|p| p.s).collect();
    // Two-sided sweeps with a shared excitation go through the
    // factorization-sharing ladder: one LU per shift serves both the
    // forward and the transposed solve. Per-node excitations keep the
    // split sweeps (the pairs ladder has its own rhs per index).
    let (fwd, trans): (TolerantSweep, Option<TolerantSweep>) = match (&excitation, two_sided) {
        (Excitation::Shared(b), true) => {
            let ct = sys.output_matrix().adjoint().to_complex();
            let (f, t) = sys.solve_shifted_two_sided_tolerant(&shifts, b, &ct, policy, faults);
            (f, Some(t))
        }
        (Excitation::Shared(b), false) => {
            (sys.solve_shifted_many_tolerant(&shifts, b, policy, faults), None)
        }
        (Excitation::PerNode(rhss), _) => {
            let f = sys.solve_shifted_pairs_tolerant(&shifts, rhss, policy, faults)?;
            let t = if two_sided {
                let ct = sys.output_matrix().adjoint().to_complex();
                Some(sys.solve_shifted_transpose_many_tolerant(&shifts, &ct, policy, faults))
            } else {
                None
            };
            (f, t)
        }
    };
    debug_assert_eq!(fwd.reports.len(), attempted);
    // A node survives only if every required side solved; the report is
    // the forward one unless only the transpose side dropped.
    let requested = active.len();
    let mut reports: Vec<ShiftReport> = Vec::with_capacity(requested);
    let mut alive: Vec<bool> = Vec::with_capacity(requested);
    for k in 0..attempted {
        let f_ok = fwd.solutions[k].is_some();
        let t_ok = trans.as_ref().is_none_or(|t| t.solutions[k].is_some());
        alive.push(f_ok && t_ok);
        let rep = match &trans {
            Some(t) if f_ok && !t_ok => t.reports[k].clone(),
            _ => fwd.reports[k].clone(),
        };
        reports.push(rep);
    }
    // Nodes beyond the LU budget were never attempted: account for them
    // as budget-dropped so renormalization spreads their weight.
    for (off, pt) in active[attempted..].iter().enumerate() {
        obs::counters::add(obs::Counter::ShiftDropped, 1);
        reports.push(ShiftReport::dropped(
            attempted + off,
            pt.s,
            Some(NumError::BudgetExhausted { resource: "lu-factorizations" }),
        ));
        alive.push(false);
    }
    let surviving = alive.iter().filter(|&&a| a).count();
    if surviving == 0 {
        return Err(NumError::InvalidArgument(
            "every sample point was dropped by the fault-tolerance ladder",
        ));
    }
    let total_weight: f64 = active.iter().map(|p| p.weight).sum();
    let surviving_weight: f64 = active
        .iter()
        .zip(&alive)
        .filter(|(_, &a)| a)
        .map(|(p, _)| p.weight)
        .sum();
    let renorm = if surviving_weight > 0.0 { total_weight / surviving_weight } else { 1.0 };

    // Weighted surviving columns, at the shifts actually solved.
    let mut kept: Vec<SamplePoint> = Vec::with_capacity(surviving);
    let mut weighted: Vec<ZMat> = Vec::with_capacity(surviving);
    let mut weighted_l: Vec<ZMat> = Vec::with_capacity(if two_sided { surviving } else { 0 });
    for k in 0..requested {
        if !alive[k] {
            continue;
        }
        if let Some(z) = &fwd.solutions[k] {
            let w = active[k].weight * renorm;
            kept.push(SamplePoint { s: reports[k].s_used, weight: w });
            // 16 bytes per retained c64 sample entry.
            obs::counters::add(obs::Counter::SampleBytes, (z.nrows() * z.ncols() * 16) as u64);
            weighted.push(z.scale(w.sqrt()));
            if let Some(t) = &trans {
                if let Some(zl) = &t.solutions[k] {
                    obs::counters::add(
                        obs::Counter::SampleBytes,
                        (zl.nrows() * zl.ncols() * 16) as u64,
                    );
                    weighted_l.push(zl.scale(w.sqrt()));
                }
            }
        }
    }
    let n = sys.nstates();
    let (zmat, blocks) = realify_blocks(n, &weighted)?;
    let zl = if two_sided {
        let (zl, _) = realify_blocks(n, &weighted_l)?;
        Some(zl)
    } else {
        None
    };
    Ok(SweptSamples {
        kept,
        zmat,
        blocks,
        zl,
        reports,
        requested,
        surviving,
        renorm,
        budget_truncated: requested - attempted,
        span: sp,
    })
}

/// Stacks the realified weighted blocks into one matrix, recording each
/// block's column range.
pub(crate) fn realify_blocks(
    n: usize,
    weighted: &[ZMat],
) -> Result<(DMat, Vec<(usize, usize)>), NumError> {
    let total_cols: usize = weighted.iter().map(|zw| realified_ncols(zw, 1e-13)).sum();
    if total_cols == 0 {
        return Err(NumError::InvalidArgument("all surviving weighted samples vanished"));
    }
    let mut zmat = DMat::zeros(n, total_cols);
    let mut blocks = Vec::with_capacity(weighted.len());
    let mut col = 0;
    for zw in weighted {
        let wrote = realify_columns_into(zw, 1e-13, &mut zmat, col);
        blocks.push((col, col + wrote));
        col += wrote;
    }
    debug_assert_eq!(col, total_cols);
    Ok((zmat, blocks))
}

/// Output of the compression stage, before order selection and
/// projection.
enum Compressed {
    /// SVD of the controllability sample matrix.
    Spectral { f: Svd<f64>, retried: bool },
    /// Incremental QR with `R`-factor singular-value estimates.
    Incremental { basis: IncrementalBasis, s: Vec<f64> },
    /// SVD of the balancing product `Z_Lᵀ·Z_R`.
    Balanced { f: Svd<f64>, retried: bool },
    /// Realified eigenbasis `T` of the small cross-Gramian eigenproblem
    /// `N = Z_Lᵀ·Z_R`, its eigenvalue block structure, and moduli.
    Cross { t: DMat, eigs: Vec<CrossEig>, moduli: Vec<f64>, retried: bool },
}

/// One realified eigenvalue block of the compressed cross-Gramian
/// eigenproblem: a real eigenvalue owns one column of `T`, a conjugate
/// pair `a ± bi` owns two (`[Re v, Im v]`).
enum CrossEig {
    /// Real eigenvalue `λ` (one column).
    Real(f64),
    /// Conjugate pair `a ± bi` (two columns).
    Pair {
        /// Real part `a`.
        re: f64,
        /// Imaginary part `b` of the `+bi` member.
        im: f64,
    },
}

impl CrossEig {
    /// Number of realified columns this block owns.
    fn width(&self) -> usize {
        match self {
            CrossEig::Real(_) => 1,
            CrossEig::Pair { .. } => 2,
        }
    }
}

impl Compressed {
    fn retried(&self) -> bool {
        match self {
            Compressed::Spectral { retried, .. }
            | Compressed::Balanced { retried, .. }
            | Compressed::Cross { retried, .. } => *retried,
            Compressed::Incremental { .. } => false,
        }
    }
}

/// Hard cap on fault-poisoned attempts per stage, so a pathological
/// [`StageFault`] cannot spin a recovery loop forever. Far above any
/// real ladder depth; purely a determinism-preserving backstop.
const MAX_STAGE_ATTEMPTS: usize = 32;

/// Raised Jacobi sweep cap used by the escalation rungs (the clean
/// first rung keeps the default cap).
const RAISED_SWEEP_CAP: usize = 400;

/// `true` for errors the compressor ladder may escalate past; anything
/// else (shape mismatches, invalid arguments) propagates immediately.
fn ladder_recoverable(e: &NumError) -> bool {
    matches!(
        e,
        NumError::NotConverged { .. }
            | NumError::NotFinite
            | NumError::WorkerPanicked { .. }
            | NumError::Singular { .. }
            | NumError::BudgetExhausted { .. }
    )
}

/// Emits one compressor-ladder `rung` trace event (mirrors the sweep
/// ladder's per-rung events, with the pipeline stage attached).
fn rung_event(stage: FaultStage, cand: &'static str, attempt: usize) {
    if obs::is_enabled() {
        obs::event(
            "rung",
            vec![
                ("stage", obs::Value::Str(stage.label().to_string())),
                ("cand", obs::Value::Str(cand.to_string())),
                ("attempt", obs::Value::U64(attempt as u64)),
            ],
        );
    }
}

/// Runs one stage attempt's injected faults, if any: `Some(Err(..))`
/// when the attempt is poisoned (error- or panic-kind), `None` when
/// the attempt should run for real. Injected panics actually unwind
/// and are contained here — the same `catch_unwind` discipline the
/// sweep ladder uses for worker panics.
fn injected_outcome(
    faults: &dyn StageFault,
    stage: FaultStage,
    attempt: usize,
) -> Option<NumError> {
    if let Some(e) = faults.stage_error(stage, attempt) {
        return Some(e);
    }
    if faults.stage_panics(stage, attempt) {
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            // numlint:allow(PANIC01, ERR01) deliberate fault injection; the
            // surrounding catch_unwind contains it as WorkerPanicked.
            panic!("injected chaos panic in pipeline stage {}", stage.label());
        }));
        debug_assert!(unwound.is_err());
        return Some(NumError::WorkerPanicked { index: attempt });
    }
    None
}

/// The spectral compressor's escalation ladder: plain SVD → raised
/// sweep cap → column equilibration → direct (QR-preconditioning off)
/// Jacobi. Rung 0 is computationally identical to the pre-ladder clean
/// path. Each rung clamps its sweep cap to the remaining SVD budget;
/// a dry budget errors with [`NumError::BudgetExhausted`] so the
/// caller can fall back to the SVD-free incremental compressor.
///
/// Returns the factorization and the rung that certified it.
fn spectral_ladder(
    a: &DMat,
    faults: &dyn StageFault,
    tracker: &BudgetTracker,
    attempt: &mut usize,
) -> Result<(Svd<f64>, usize), NumError> {
    const RUNGS: [&str; 4] = ["svd", "raise-cap", "equilibrate", "direct-jacobi"];
    let mut last = NumError::NotConverged { algorithm: "compress-ladder", iterations: 0 };
    for (rung, cand) in RUNGS.iter().enumerate() {
        let this_attempt = *attempt;
        *attempt += 1;
        rung_event(FaultStage::Compress, cand, this_attempt);
        let result = match injected_outcome(faults, FaultStage::Compress, this_attempt) {
            Some(e) => Err(e),
            None => {
                // Clamp the rung's sweep cap to the remaining budget
                // (None = unlimited, keep each rung's own default).
                let cap = match tracker.remaining_svd_sweeps() {
                    Some(0) => {
                        return Err(NumError::BudgetExhausted { resource: "svd-sweeps" })
                    }
                    Some(rem) => Some((rem as usize).min(RAISED_SWEEP_CAP)),
                    None => None,
                };
                match rung {
                    0 => match cap {
                        None => svd(a),
                        Some(c) => svd_with_sweeps(a, c),
                    },
                    1 => svd_with_sweeps(a, cap.unwrap_or(RAISED_SWEEP_CAP)),
                    2 => equilibrated_svd(a, cap.unwrap_or(RAISED_SWEEP_CAP)),
                    _ => svd_with_opts(
                        a,
                        &SvdOptions {
                            max_sweeps: Some(cap.unwrap_or(RAISED_SWEEP_CAP)),
                            qr_precondition: Some(false),
                            ..SvdOptions::default()
                        },
                    ),
                }
            }
        };
        match result {
            Ok(f) => return Ok((f, rung)),
            Err(e) if ladder_recoverable(&e) => last = e,
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

/// The terminal compressor fallback: the SVD-free incremental QR basis.
/// Always records an accuracy downgrade in the report.
fn incremental_fallback(
    zmat: &DMat,
    blocks: &[(usize, usize)],
    report: &mut PipelineReport,
    cause: &NumError,
) -> Result<Compressed, NumError> {
    report.compress = StageOutcome::Degraded;
    report.compressor_downgraded = true;
    report
        .notes
        .push(format!("compressor downgraded to incremental QR after: {cause}"));
    let mut basis = IncrementalBasis::new(zmat.nrows());
    for &(c0, c1) in blocks {
        basis.push_block(&zmat.block(0, zmat.nrows(), c0, c1))?;
    }
    let s = basis.singular_value_estimates()?;
    Ok(Compressed::Incremental { basis, s })
}

/// Spectral compression of the one-sided sample stack, used both by
/// [`Compressor::JacobiSvd`] and as the downgrade target for the
/// two-sided compressors. Falls back to [`incremental_fallback`] when
/// the ladder is exhausted.
fn spectral_or_incremental(
    zmat: &DMat,
    blocks: &[(usize, usize)],
    faults: &dyn StageFault,
    tracker: &BudgetTracker,
    report: &mut PipelineReport,
    attempt: &mut usize,
) -> Result<Compressed, NumError> {
    match spectral_ladder(zmat, faults, tracker, attempt) {
        Ok((f, rung)) => {
            if rung > 0 {
                report.compress = report.compress.max(StageOutcome::Recovered);
                report.notes.push(format!(
                    "spectral compressor recovered on ladder rung {rung}"
                ));
            }
            Ok(Compressed::Spectral { f, retried: rung > 0 })
        }
        Err(e) if ladder_recoverable(&e) => {
            if let NumError::BudgetExhausted { resource } = e {
                report.budget_exhausted.get_or_insert(resource);
            }
            incremental_fallback(zmat, blocks, report, &e)
        }
        Err(e) => Err(e),
    }
}

fn compress(
    zmat: &DMat,
    blocks: &[(usize, usize)],
    zl: Option<&DMat>,
    plan: &ReductionPlan,
    faults: &dyn StageFault,
    tracker: &BudgetTracker,
    report: &mut PipelineReport,
) -> Result<Compressed, NumError> {
    let mut sp = obs::span("pmtbr.compress");
    sp.field_u64("cols", zmat.ncols() as u64);
    let mut attempt = 0usize;
    let result = match plan.compressor {
        Compressor::JacobiSvd => {
            sp.field_str("method", "jacobi-svd");
            spectral_or_incremental(zmat, blocks, faults, tracker, report, &mut attempt)
        }
        Compressor::Incremental => {
            sp.field_str("method", "incremental-qr");
            // No ladder to escalate through: retry past injected
            // faults, then build the basis for real.
            let mut last = None;
            while attempt < MAX_STAGE_ATTEMPTS {
                let this_attempt = attempt;
                attempt += 1;
                rung_event(FaultStage::Compress, "incremental", this_attempt);
                match injected_outcome(faults, FaultStage::Compress, this_attempt) {
                    Some(e) => last = Some(e),
                    None => {
                        last = None;
                        break;
                    }
                }
            }
            match last {
                Some(e) => Err(e),
                None => {
                    if attempt > 1 {
                        report.compress = report.compress.max(StageOutcome::Recovered);
                        report.notes.push(format!(
                            "incremental compressor recovered after {} injected fault(s)",
                            attempt - 1
                        ));
                    }
                    let mut basis = IncrementalBasis::new(zmat.nrows());
                    for &(c0, c1) in blocks {
                        basis.push_block(&zmat.block(0, zmat.nrows(), c0, c1))?;
                    }
                    let s = basis.singular_value_estimates()?;
                    Ok(Compressed::Incremental { basis, s })
                }
            }
        }
        Compressor::Balance => {
            sp.field_str("method", "balance");
            let zl = zl.ok_or(NumError::InvalidArgument("balance needs two-sided samples"))?;
            // Square-root balancing: SVD of Z_Lᵀ·Z_R, through the same
            // escalation ladder as the spectral path.
            let m = zl.transpose().matmul(zmat)?;
            match spectral_ladder(&m, faults, tracker, &mut attempt) {
                Ok((f, rung)) => {
                    if rung > 0 {
                        report.compress = report.compress.max(StageOutcome::Recovered);
                        report.notes.push(format!(
                            "balance compressor recovered on ladder rung {rung}"
                        ));
                    }
                    Ok(Compressed::Balanced { f, retried: rung > 0 })
                }
                Err(e) if ladder_recoverable(&e) => {
                    // Downgrade: one-sided spectral compression of the
                    // controllability samples (loses the two-sided
                    // balancing accuracy, keeps the run alive).
                    if let NumError::BudgetExhausted { resource } = e {
                        report.budget_exhausted.get_or_insert(resource);
                    }
                    report.compress = StageOutcome::Degraded;
                    report.compressor_downgraded = true;
                    report.notes.push(format!(
                        "balance compressor downgraded to one-sided jacobi-svd after: {e}"
                    ));
                    spectral_or_incremental(zmat, blocks, faults, tracker, report, &mut attempt)
                }
                Err(e) => Err(e),
            }
        }
        Compressor::CrossGramian => {
            sp.field_str("method", "cross-gramian");
            let zl = zl.ok_or(NumError::InvalidArgument(
                "cross-gramian needs two-sided samples",
            ))?;
            if zl.ncols() != zmat.ncols() {
                return Err(NumError::ShapeMismatch {
                    operation: "cross-gramian sample stacks",
                    left: zl.shape(),
                    right: zmat.shape(),
                });
            }
            // The sampled cross Gramian X = Z_R·Z_Lᵀ (n × n, never
            // formed) shares its nonzero spectrum with the small product
            // N = Z_Lᵀ·Z_R (c × c, c = sample columns): for λ ≠ 0,
            // N·w = λ·w gives X·(Z_R·w) = λ·(Z_R·w). Diagonalizing N
            // directly replaces the former joint-stack SVD plus k × k
            // (k up to 2c) eigenproblem with one c × c eigenproblem and
            // two tall matmuls in `project` — the dominant cost of the
            // old cross path.
            let nmat = zl.transpose().matmul(zmat)?;
            let mut eig_result = None;
            let mut last_err = None;
            let mut poisoned = 0usize;
            while attempt < MAX_STAGE_ATTEMPTS {
                let this_attempt = attempt;
                attempt += 1;
                rung_event(FaultStage::Compress, "eig", this_attempt);
                match injected_outcome(faults, FaultStage::Compress, this_attempt) {
                    Some(e) => {
                        // Injected: retry the eigensolve on the next
                        // attempt until the fault's depth is spent.
                        last_err = Some(e);
                        poisoned += 1;
                    }
                    None => match eig(&nmat) {
                        Ok(e) => {
                            eig_result = Some(e);
                            break;
                        }
                        Err(e) if ladder_recoverable(&e) => {
                            // A real eigensolve failure is not worth
                            // retrying verbatim: downgrade below.
                            last_err = Some(e);
                            break;
                        }
                        Err(e) => return Err(e),
                    },
                }
            }
            match eig_result {
                Some(e) => {
                    if poisoned > 0 {
                        report.compress = report.compress.max(StageOutcome::Recovered);
                        report.notes.push(format!(
                            "cross-gramian eigensolve recovered after {poisoned} injected \
                             fault(s)"
                        ));
                    }
                    let c = nmat.ncols();
                    // Realified dominant eigenbasis (conjugate pairs →
                    // [Re, Im]), in the engine's decreasing-modulus order.
                    let mut t = DMat::zeros(c, c);
                    let mut eigs = Vec::with_capacity(c);
                    let mut moduli = Vec::with_capacity(c);
                    let mut j = 0;
                    let mut col = 0;
                    while j < c {
                        let lam = e.values[j];
                        let v = e.vectors.col(j);
                        if lam.im.abs() > 1e-12 * lam.abs().max(1e-300) && j + 1 < c {
                            for i in 0..c {
                                t[(i, col)] = v[i].re;
                                t[(i, col + 1)] = v[i].im;
                            }
                            eigs.push(CrossEig::Pair { re: lam.re, im: lam.im });
                            moduli.push(lam.abs());
                            moduli.push(lam.abs());
                            col += 2;
                            j += 2;
                        } else {
                            for i in 0..c {
                                t[(i, col)] = v[i].re;
                            }
                            eigs.push(CrossEig::Real(lam.re));
                            moduli.push(lam.abs());
                            col += 1;
                            j += 1;
                        }
                    }
                    Ok(Compressed::Cross { t, eigs, moduli, retried: poisoned > 0 })
                }
                None => {
                    // Downgrade the eig-based compressor to one-sided
                    // spectral compression (then incremental if even
                    // that fails).
                    let cause = last_err.unwrap_or(NumError::NotConverged {
                        algorithm: "cross-gramian-eig",
                        iterations: MAX_STAGE_ATTEMPTS,
                    });
                    report.compress = StageOutcome::Degraded;
                    report.compressor_downgraded = true;
                    report.notes.push(format!(
                        "cross-gramian compressor downgraded to one-sided jacobi-svd after: \
                         {cause}"
                    ));
                    spectral_or_incremental(zmat, blocks, faults, tracker, report, &mut attempt)
                }
            }
        }
    };
    match &result {
        Ok(_) => {
            sp.field_str("outcome", report.compress.label());
            sp.field("downgraded", obs::Value::Bool(report.compressor_downgraded));
        }
        Err(_) => {
            report.compress = StageOutcome::Failed;
            sp.field_str("outcome", StageOutcome::Failed.label());
        }
    }
    result
}

/// Chooses the reduced order from a (descending) singular spectrum.
pub(crate) fn truncated_order(s: &[f64], order: &OrderControl) -> Result<usize, NumError> {
    if s.is_empty() || s[0] == 0.0 {
        return Err(NumError::InvalidArgument("sample basis is empty"));
    }
    match *order {
        OrderControl::Tolerance { tolerance, max_order } => {
            let by_tol = s.iter().take_while(|&&x| x > tolerance * s[0]).count().max(1);
            Ok(max_order.map_or(by_tol, |cap| by_tol.min(cap)).min(s.len()))
        }
        OrderControl::Exact(q) => {
            if q > s.len() {
                return Err(NumError::InvalidArgument("requested order exceeds sampled subspace"));
            }
            Ok(q)
        }
    }
}

/// Order selection + projector assembly + congruence projection.
///
/// Injected stage faults (chaos testing) poison whole attempts: each
/// poisoned attempt is retried until the fault's depth is spent, then
/// the real projection runs. Real projection errors still fail the run
/// (there is no meaningful lower-accuracy projection to downgrade to).
fn project<S: LtiSystem + ?Sized>(
    sys: &S,
    zmat: &DMat,
    zl: Option<&DMat>,
    compressed: Compressed,
    order: &OrderControl,
    faults: &dyn StageFault,
    report: &mut PipelineReport,
) -> Result<PmtbrModel, NumError> {
    let mut sp = obs::span("pmtbr.project");
    let mut poisoned = 0usize;
    while poisoned < MAX_STAGE_ATTEMPTS {
        match injected_outcome(faults, FaultStage::Project, poisoned) {
            Some(_) => {
                rung_event(FaultStage::Project, "retry", poisoned);
                poisoned += 1;
            }
            None => break,
        }
    }
    if poisoned > 0 {
        report.project = StageOutcome::Recovered;
        report
            .notes
            .push(format!("projection recovered after {poisoned} injected fault(s)"));
    }
    let n = sys.nstates();
    let model = match compressed {
        Compressed::Spectral { f, .. } => {
            let q = truncated_order(&f.s, order)?;
            let v = f.u.leading_cols(q);
            let reduced: StateSpace = sys.project(&v, &v)?;
            Ok(PmtbrModel {
                reduced,
                v,
                singular_values: f.s.clone(),
                order: q,
                error_estimate: f.s.iter().skip(q).sum(),
            })
        }
        Compressed::Incremental { basis, s } => {
            let mut q = truncated_order(&s, order)?;
            if matches!(order, OrderControl::Tolerance { .. }) {
                // Tolerance picks from the (padded) spectrum; an exact
                // request past the rank must error in dominant_basis.
                q = q.min(basis.rank()).max(1);
            }
            let v = basis.dominant_basis(q)?;
            let q = v.ncols();
            let reduced: StateSpace = sys.project(&v, &v)?;
            Ok(PmtbrModel {
                reduced,
                v,
                singular_values: s.clone(),
                order: q,
                error_estimate: s.iter().skip(q).sum(),
            })
        }
        Compressed::Balanced { f, .. } => {
            let zl = zl.ok_or(NumError::InvalidArgument("balance needs two-sided samples"))?;
            let rank = f.rank(1e-13).max(1);
            let q = match *order {
                OrderControl::Exact(q0) => {
                    if q0.min(rank) < q0 {
                        return Err(NumError::InvalidArgument(
                            "requested order exceeds sampled Hankel rank",
                        ));
                    }
                    q0
                }
                OrderControl::Tolerance { .. } => truncated_order(&f.s, order)?.min(rank),
            };
            // Blocked congruence products Z_R·V_q and Z_L·U_q (the
            // cache-blocked matmul sums ascending-k, bit-identical to
            // the per-entry loops this replaces), then the balancing
            // column scaling 1/√σⱼ.
            let mut v = zmat.matmul(&f.v.leading_cols(q))?;
            let mut w = zl.matmul(&f.u.leading_cols(q))?;
            for j in 0..q {
                let scale = 1.0 / f.s[j].sqrt();
                for i in 0..n {
                    v[(i, j)] *= scale;
                    w[(i, j)] *= scale;
                }
            }
            let reduced: StateSpace = sys.project(&w, &v)?;
            Ok(PmtbrModel {
                reduced,
                v,
                singular_values: f.s.clone(),
                order: q,
                error_estimate: f.s.iter().skip(q).sum(),
            })
        }
        Compressed::Cross { t, eigs, moduli, .. } => {
            let zl = zl
                .ok_or(NumError::InvalidArgument("cross-gramian needs two-sided samples"))?;
            let c = t.ncols();
            let target = match *order {
                OrderControl::Exact(q0) => q0,
                // validate() rejects this combination up front.
                OrderControl::Tolerance { .. } => {
                    return Err(NumError::InvalidArgument(
                        "cross-gramian compression needs an exact target order",
                    ));
                }
            };
            if target > c {
                return Err(NumError::InvalidArgument("requested order exceeds sampled subspace"));
            }
            // Walk whole eigenvalue blocks so a conjugate pair is never
            // split at the truncation boundary.
            let mut q_ord = 0;
            for blk in &eigs {
                if q_ord >= target {
                    break;
                }
                q_ord += blk.width();
            }
            // Dominant right eigenvectors of X = Z_R·Z_Lᵀ: V = Z_R·T_q
            // (N·w = λ·w maps to X·(Z_R·w) = λ·(Z_R·w)).
            let v = zmat.matmul(&t.leading_cols(q_ord))?;
            // Biorthogonal left basis: W = Z_L·K with K = (Λ⁻¹·T⁻¹)ᵀ,
            // since then WᵀV = Λ⁻¹·T⁻¹·N·T = Λ⁻¹·Λ = I. Only the
            // leading q_ord rows of Λ⁻¹·T⁻¹ are needed, so only the
            // dominant (nonzero) eigenvalue blocks are ever inverted:
            // 1×1 block λ, or the realified pair block
            // [[a, b], [−b, a]]⁻¹ = [[a, −b], [b, a]] / (a² + b²).
            let tinv = Lu::new(t.clone())?.inverse()?;
            let mut ksel = DMat::zeros(c, q_ord);
            let mut row = 0;
            for blk in &eigs {
                if row >= q_ord {
                    break;
                }
                match *blk {
                    CrossEig::Real(lam) => {
                        if lam == 0.0 {
                            return Err(NumError::InvalidArgument(
                                "cross-gramian eigenvalue vanished in the dominant block",
                            ));
                        }
                        for i in 0..c {
                            ksel[(i, row)] = tinv[(row, i)] / lam;
                        }
                        row += 1;
                    }
                    CrossEig::Pair { re, im } => {
                        let d = re * re + im * im;
                        if d == 0.0 {
                            return Err(NumError::InvalidArgument(
                                "cross-gramian eigenvalue vanished in the dominant block",
                            ));
                        }
                        for i in 0..c {
                            let x = tinv[(row, i)];
                            let y = tinv[(row + 1, i)];
                            ksel[(i, row)] = (re * x - im * y) / d;
                            ksel[(i, row + 1)] = (im * x + re * y) / d;
                        }
                        row += 2;
                    }
                }
            }
            debug_assert_eq!(row, q_ord);
            let w = zl.matmul(&ksel)?;
            let reduced: StateSpace = sys.project(&w, &v)?;
            Ok(PmtbrModel {
                reduced,
                v,
                singular_values: moduli.clone(),
                order: q_ord,
                error_estimate: moduli.iter().skip(q_ord).sum(),
            })
        }
    };
    match &model {
        Ok(m) => {
            sp.field_u64("order", m.order as u64);
            sp.field_str("outcome", report.project.label());
        }
        Err(_) => {
            report.project = StageOutcome::Failed;
            sp.field_str("outcome", StageOutcome::Failed.label());
        }
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::rc_mesh;
    use numkit::c64;

    fn mesh() -> lti::Descriptor {
        rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0).unwrap()
    }

    #[test]
    fn plan_validation_rejects_degenerate_requests() {
        let sampling = Sampling::Linear { omega_max: 10.0, n: 8 };
        let err = run(&mesh(), &ReductionPlan::balanced(&sampling, 0)).unwrap_err();
        assert!(matches!(err, NumError::InvalidArgument(_)));
        let mut plan = ReductionPlan::cross_gramian(&sampling, 3);
        plan.order = OrderControl::Tolerance { tolerance: 1e-10, max_order: None };
        assert!(run(&mesh(), &plan).is_err());
    }

    #[test]
    fn default_plan_matches_classic_pmtbr() {
        let sys = mesh();
        let opts = PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 15 }).with_max_order(6);
        let classic = crate::pmtbr(&sys, &opts).unwrap();
        let planned = run(&sys, &ReductionPlan::pmtbr(&opts)).unwrap();
        assert_eq!(classic.order, planned.model.order);
        assert_eq!(classic.singular_values, planned.model.singular_values);
        assert!(!planned.diagnostics.is_degraded());
    }

    #[test]
    fn incremental_compressor_matches_svd_subspace() {
        let sys = mesh();
        let opts = PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 12 }).with_max_order(5);
        let svd_red = run(&sys, &ReductionPlan::pmtbr(&opts)).unwrap();
        let inc_red = run(
            &sys,
            &ReductionPlan::pmtbr(&opts).with_compressor(Compressor::Incremental),
        )
        .unwrap();
        assert_eq!(svd_red.model.order, inc_red.model.order);
        // Same singular values (the R factor is exact) and same subspace.
        for (a, b) in svd_red
            .model
            .singular_values
            .iter()
            .zip(&inc_red.model.singular_values)
        {
            assert!((a - b).abs() < 1e-9 * (1.0 + a), "{a} vs {b}");
        }
        let angle =
            numkit::max_principal_angle(&svd_red.model.v, &inc_red.model.v).unwrap();
        assert!(angle < 1e-6, "subspace angle {angle}");
    }

    #[test]
    fn compress_ladder_escalates_one_rung_per_fault_depth() {
        use crate::fault::{FaultKind, FaultPlan, FaultStage};
        let sys = mesh();
        let opts =
            PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 10 }).with_max_order(4);
        let plan = ReductionPlan::pmtbr(&opts);
        let clean = run(&sys, &plan).unwrap();
        // Depth d poisons the first d rungs (drift ⇒ NotConverged), so
        // the ladder certifies on rung d: 1 = raised cap, 2 =
        // equilibration, 3 = direct Jacobi.
        for depth in 1..=3 {
            let faults = FaultPlan::new(11, 1.0, vec![FaultKind::Drift], depth)
                .with_stages(vec![FaultStage::Compress]);
            let red = run_guarded(
                &sys,
                &plan,
                &RecoveryPolicy::default(),
                &faults,
                &Budget::default(),
            )
            .unwrap();
            assert_eq!(red.report.compress, StageOutcome::Recovered, "depth {depth}");
            assert!(!red.report.compressor_downgraded, "depth {depth}");
            assert!(
                red.report.notes.iter().any(|n| n.contains(&format!("rung {depth}"))),
                "depth {depth}: missing rung note in {:?}",
                red.report.notes
            );
            assert_eq!(red.model.order, clean.model.order, "depth {depth}");
            for (a, b) in clean
                .model
                .singular_values
                .iter()
                .zip(&red.model.singular_values)
            {
                assert!((a - b).abs() < 1e-7 * (1.0 + a), "depth {depth}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn exhausted_spectral_ladder_downgrades_to_incremental() {
        use crate::fault::{FaultKind, FaultPlan, FaultStage};
        let sys = mesh();
        let opts =
            PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 10 }).with_max_order(4);
        let plan = ReductionPlan::pmtbr(&opts);
        // Depth 4 poisons every spectral rung: the compressor must fall
        // back to the SVD-free incremental basis and record the
        // downgrade instead of erroring.
        let faults = FaultPlan::new(11, 1.0, vec![FaultKind::Drift], 4)
            .with_stages(vec![FaultStage::Compress]);
        let red = run_guarded(
            &sys,
            &plan,
            &RecoveryPolicy::default(),
            &faults,
            &Budget::default(),
        )
        .unwrap();
        assert_eq!(red.report.compress, StageOutcome::Degraded);
        assert!(red.report.compressor_downgraded);
        assert!(red.report.is_degraded());
        assert!(red
            .report
            .notes
            .iter()
            .any(|n| n.contains("downgraded to incremental QR")));
        assert!(red.model.singular_values.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn injected_compress_panic_is_contained_and_recovered() {
        use crate::fault::{FaultKind, FaultPlan, FaultStage};
        let sys = mesh();
        let opts =
            PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 10 }).with_max_order(4);
        let plan = ReductionPlan::pmtbr(&opts);
        let faults = FaultPlan::new(3, 1.0, vec![FaultKind::Panic], 1)
            .with_stages(vec![FaultStage::Compress]);
        // The injected panic unwinds inside the stage's catch_unwind;
        // the ladder records it as a contained worker panic and
        // certifies on the next rung.
        let red = run_guarded(
            &sys,
            &plan,
            &RecoveryPolicy::default(),
            &faults,
            &Budget::default(),
        )
        .unwrap();
        assert_eq!(red.report.compress, StageOutcome::Recovered);
        assert!(!red.report.compressor_downgraded);
    }

    #[test]
    fn balance_compressor_downgrades_to_one_sided() {
        use crate::fault::{FaultKind, FaultPlan, FaultStage};
        let sys = mesh();
        let sampling = Sampling::Linear { omega_max: 20.0, n: 12 };
        let plan = ReductionPlan::balanced(&sampling, 4);
        // Depth 4 exhausts the balance product's whole spectral ladder;
        // the shared attempt counter then lets the one-sided downgrade
        // succeed on its first (fifth overall) attempt.
        let faults = FaultPlan::new(11, 1.0, vec![FaultKind::Drift], 4)
            .with_stages(vec![FaultStage::Compress]);
        let red = run_guarded(
            &sys,
            &plan,
            &RecoveryPolicy::default(),
            &faults,
            &Budget::default(),
        )
        .unwrap();
        assert_eq!(red.report.compress, StageOutcome::Degraded);
        assert!(red.report.compressor_downgraded);
        assert!(red
            .report
            .notes
            .iter()
            .any(|n| n.contains("balance compressor downgraded to one-sided")));
        assert_eq!(red.model.order, 4);
    }

    #[test]
    fn cross_gramian_eigensolve_retries_past_injected_faults() {
        use crate::fault::{FaultKind, FaultPlan, FaultStage};
        let sys = mesh();
        let sampling = Sampling::Linear { omega_max: 20.0, n: 12 };
        let plan = ReductionPlan::cross_gramian(&sampling, 3);
        let clean = run(&sys, &plan).unwrap();
        let faults = FaultPlan::new(5, 1.0, vec![FaultKind::Nan], 2)
            .with_stages(vec![FaultStage::Compress]);
        let red = run_guarded(
            &sys,
            &plan,
            &RecoveryPolicy::default(),
            &faults,
            &Budget::default(),
        )
        .unwrap();
        assert_eq!(red.report.compress, StageOutcome::Recovered);
        assert!(!red.report.compressor_downgraded);
        // Retried attempts re-run the identical eigensolve: the model
        // must match the clean run bit for bit.
        assert_eq!(red.model.singular_values, clean.model.singular_values);
        assert_eq!(red.model.order, clean.model.order);
    }

    #[test]
    fn project_stage_retries_injected_faults() {
        use crate::fault::{FaultKind, FaultPlan, FaultStage};
        let sys = mesh();
        let opts =
            PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 10 }).with_max_order(4);
        let plan = ReductionPlan::pmtbr(&opts);
        let clean = run(&sys, &plan).unwrap();
        let faults = FaultPlan::new(9, 1.0, vec![FaultKind::Singular], 2)
            .with_stages(vec![FaultStage::Project]);
        let red = run_guarded(
            &sys,
            &plan,
            &RecoveryPolicy::default(),
            &faults,
            &Budget::default(),
        )
        .unwrap();
        assert_eq!(red.report.project, StageOutcome::Recovered);
        assert_eq!(red.report.compress, StageOutcome::Clean);
        // Poisoned attempts never touch the data: bit-identical model.
        assert_eq!(red.model.singular_values, clean.model.singular_values);
    }

    #[test]
    fn lu_budget_truncates_sweep_into_degraded_model() {
        let sys = mesh();
        let opts =
            PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 10 }).with_max_order(4);
        let plan = ReductionPlan::pmtbr(&opts);
        let budget = Budget::default().with_max_lu_factors(4);
        // Counters are process-global and other tests factor LUs
        // concurrently, so the effective cap may shrink below 4 — a
        // budget run must then still terminate with either a best-effort
        // degraded model or an explicit exhaustion error, never a hang.
        match run_guarded(&sys, &plan, &RecoveryPolicy::default(), &NoFaults, &budget) {
            Ok(red) => {
                assert_eq!(red.report.budget_exhausted, Some("lu-factorizations"));
                assert_eq!(red.report.sweep, StageOutcome::Degraded);
                assert!(red.report.is_degraded());
                assert!(red.diagnostics.dropped() > 0);
                assert!(red.model.singular_values.iter().all(|s| s.is_finite()));
            }
            Err(NumError::BudgetExhausted { resource }) => {
                assert_eq!(resource, "lu-factorizations");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn svd_budget_exhaustion_falls_back_to_incremental() {
        let sys = mesh();
        let opts =
            PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 10 }).with_max_order(4);
        let plan = ReductionPlan::pmtbr(&opts);
        // A zero SVD budget dries the spectral ladder immediately; the
        // run still completes on the SVD-free incremental compressor
        // with the exhaustion recorded.
        let budget = Budget::default().with_max_svd_sweeps(0);
        let red = run_guarded(&sys, &plan, &RecoveryPolicy::default(), &NoFaults, &budget)
            .unwrap();
        assert_eq!(red.report.budget_exhausted, Some("svd-sweeps"));
        assert!(red.report.compressor_downgraded);
        assert!(red.report.is_degraded());
        assert!(red.model.singular_values.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn pre_cancelled_run_stops_at_first_checkpoint() {
        let sys = mesh();
        let opts =
            PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 10 }).with_max_order(4);
        let plan = ReductionPlan::pmtbr(&opts);
        let token = numkit::CancelToken::new();
        token.cancel();
        let budget = Budget::default().with_cancel(token);
        let err = run_guarded(&sys, &plan, &RecoveryPolicy::default(), &NoFaults, &budget)
            .unwrap_err();
        assert_eq!(err, NumError::Cancelled);
    }

    #[test]
    fn two_sided_plans_survive_dropped_nodes() {
        use crate::fault::{FaultKind, FaultPlan};
        let sys = mesh();
        let sampling = Sampling::Linear { omega_max: 20.0, n: 16 };
        let plan = ReductionPlan::balanced(&sampling, 4);
        let faults = FaultPlan::new(7, 0.25, vec![FaultKind::Panic], 2);
        let red = run_with(&sys, &plan, &RecoveryPolicy::default(), &faults).unwrap();
        assert!(red.diagnostics.dropped() > 0, "plan must actually drop nodes");
        assert_eq!(red.model.order, 4);
        assert!(red.diagnostics.weight_renormalization > 1.0);
        // The degraded two-sided model still tracks the transfer function.
        let s = c64::new(0.0, 1.0);
        let h = sys.transfer_function(s).unwrap()[(0, 0)];
        let hr = red.model.reduced.transfer_function(s).unwrap()[(0, 0)];
        assert!((h - hr).abs() < 5e-2 * h.abs().max(1e-12), "err {}", (h - hr).abs());
    }
}
