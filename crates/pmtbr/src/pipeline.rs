//! The unified reduction pipeline: every PMTBR variant as one staged
//! [`ReductionPlan`].
//!
//! The paper's three algorithms and this repo's extensions are the
//! *same* computation with different stage choices:
//!
//! ```text
//!  SamplingPlan          InputDirections        execution engine         Compressor
//!  (nodes + weights)     (what to excite)       (tolerant sweep)         (how to truncate)
//!  ───────────────┐      ───────────────┐      ─────────────────┐      ───────────────┐
//!  Linear / Log   │      IdentityBlock  │      solve (sE−A)Z=R  │      JacobiSvd      │
//!  Bands          ├──▶   Correlated     ├──▶   via ladder +     ├──▶   Incremental    ├──▶ congruence
//!  Custom         │      (corr-SVD      │      ShiftSolveEngine │      Balance        │    projection
//!                 │       draws)        │      (+ transpose for │      CrossGramian   │
//!  ───────────────┘      ───────────────┘       two-sided)      │      ───────────────┘
//!                                              ─────────────────┘
//! ```
//!
//! Mapping of the paper's algorithms onto plans:
//!
//! - **Algorithm 1** (baseline PMTBR): any one-band sampling +
//!   `IdentityBlock` + `JacobiSvd` — [`ReductionPlan::pmtbr`].
//! - **Algorithm 2** (frequency-selective): band-restricted sampling,
//!   otherwise identical — [`ReductionPlan::frequency_selective`].
//! - **Algorithm 3** (input-correlated): stochastic correlation-SVD
//!   draws as input directions — [`ReductionPlan::input_correlated`].
//! - **Section V-D extensions** (two-sided): the same sweep run on both
//!   pencils, compressed by square-root balancing
//!   ([`ReductionPlan::balanced`]) or the joint cross-Gramian
//!   eigenproblem ([`ReductionPlan::cross_gramian`]).
//!
//! Because there is exactly one execution core ([`run_with`]), every
//! variant inherits the same guarantees: the parallel
//! factorization-reusing `ShiftSolveEngine`, the fault-tolerance
//! escalation ladder with [`SweepDiagnostics`], `PMTBR_FAULT` chaos
//! testing ([`run`]), `obs` tracing, and bit-identical results at any
//! thread count.

use lti::{
    input_correlation_svd, realified_ncols, realify_columns_into, LtiSystem, NoFaults,
    RecoveryPolicy, ShiftReport, SolveFault, StateSpace, TolerantSweep,
};
use numkit::{c64, eig, DMat, Lu, NumError, SplitMix64, Svd, ZMat};

use crate::algorithm::robust_svd;
use crate::{
    IncrementalBasis, InputCorrelatedOptions, PmtbrModel, PmtbrOptions, SamplePoint, Sampling,
    SweepDiagnostics,
};

/// What to excite at each sample node (the paper's `B·d` choice).
#[derive(Debug, Clone)]
pub enum InputDirections {
    /// The full input block `B` — one column per port (Algorithms 1–2).
    IdentityBlock,
    /// Stochastic draws from the empirical input correlation
    /// (Algorithm 3): directions `B·V_K·r`, `r ~ N(0, diag(S_K²/N))`,
    /// assigned to sample nodes by cycling in draw order.
    Correlated {
        /// Observed `p × N` input waveform samples.
        u_samples: DMat,
        /// Number of stochastic draws (columns before compression).
        n_draws: usize,
        /// Correlation directions with `S_K < corr_tol·S_K[0]` are dropped.
        corr_tol: f64,
        /// RNG seed (runs are deterministic given the seed).
        seed: u64,
    },
}

/// How the (weighted, realified) sample matrix is truncated into a
/// projection basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compressor {
    /// One-shot SVD of the stacked sample matrix (with the equilibrated
    /// convergence safety net) — the paper's default.
    JacobiSvd,
    /// Incremental Gram–Schmidt QR with `R`-factor singular-value
    /// estimates ([`IncrementalBasis`], paper Section V-C): same
    /// subspace, no full re-SVD per block.
    Incremental,
    /// Two-sided square-root balancing: SVD of `Z_Lᵀ·Z_R` with
    /// `1/√σ`-scaled projectors (`WᵀV = I`).
    Balance,
    /// Two-sided cross-Gramian eigenproblem compressed through a joint
    /// orthonormal basis of `[Z_R | Z_L]` (paper Section V-D).
    CrossGramian,
}

impl Compressor {
    /// Whether this compressor needs observability-side samples
    /// (`(sE − A)⁻ᵀ·Cᵀ`) in addition to controllability-side ones.
    pub fn is_two_sided(&self) -> bool {
        matches!(self, Compressor::Balance | Compressor::CrossGramian)
    }
}

/// How the reduced order is chosen from the compressed spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OrderControl {
    /// Keep directions with `σᵢ > tolerance·σ₀`, optionally capped.
    Tolerance {
        /// Relative singular-value truncation tolerance.
        tolerance: f64,
        /// Optional hard cap on the reduced order.
        max_order: Option<usize>,
    },
    /// Exactly this order (two-sided variants; errors if the sampled
    /// subspace cannot support it).
    Exact(usize),
}

/// A complete, declarative description of one reduction: sampling
/// nodes/weights, input directions, compressor, and order control.
/// Execute with [`run`] / [`run_with`].
#[derive(Debug, Clone)]
pub struct ReductionPlan {
    /// Quadrature nodes and weights (the `SamplingPlan` stage).
    pub sampling: Sampling,
    /// Excitation per node.
    pub directions: InputDirections,
    /// Truncation backend.
    pub compressor: Compressor,
    /// Order selection.
    pub order: OrderControl,
}

impl ReductionPlan {
    /// Algorithm 1: baseline PMTBR under [`PmtbrOptions`].
    pub fn pmtbr(opts: &PmtbrOptions) -> Self {
        ReductionPlan {
            sampling: opts.sampling().clone(),
            directions: InputDirections::IdentityBlock,
            compressor: Compressor::JacobiSvd,
            order: OrderControl::Tolerance {
                tolerance: opts.tolerance(),
                max_order: opts.max_order(),
            },
        }
    }

    /// Algorithm 2: band-restricted sampling, otherwise Algorithm 1.
    pub fn frequency_selective(
        bands: &[(f64, f64)],
        n_samples: usize,
        max_order: Option<usize>,
        tolerance: f64,
    ) -> Self {
        ReductionPlan {
            sampling: Sampling::Bands { bands: bands.to_vec(), n: n_samples },
            directions: InputDirections::IdentityBlock,
            compressor: Compressor::JacobiSvd,
            order: OrderControl::Tolerance { tolerance, max_order },
        }
    }

    /// Algorithm 3: stochastic input-correlated sampling.
    pub fn input_correlated(u_samples: &DMat, opts: &InputCorrelatedOptions) -> Self {
        ReductionPlan {
            sampling: opts.sampling.clone(),
            directions: InputDirections::Correlated {
                u_samples: u_samples.clone(),
                n_draws: opts.n_draws,
                corr_tol: opts.corr_tol,
                seed: opts.seed,
            },
            compressor: Compressor::JacobiSvd,
            order: OrderControl::Tolerance {
                tolerance: opts.tolerance,
                max_order: opts.max_order,
            },
        }
    }

    /// Two-sided square-root balancing at a fixed order.
    pub fn balanced(sampling: &Sampling, order: usize) -> Self {
        ReductionPlan {
            sampling: sampling.clone(),
            directions: InputDirections::IdentityBlock,
            compressor: Compressor::Balance,
            order: OrderControl::Exact(order),
        }
    }

    /// Two-sided cross-Gramian reduction at a fixed order.
    pub fn cross_gramian(sampling: &Sampling, order: usize) -> Self {
        ReductionPlan {
            sampling: sampling.clone(),
            directions: InputDirections::IdentityBlock,
            compressor: Compressor::CrossGramian,
            order: OrderControl::Exact(order),
        }
    }

    /// Swaps the compression backend (e.g. [`Compressor::Incremental`]).
    #[must_use]
    pub fn with_compressor(mut self, compressor: Compressor) -> Self {
        self.compressor = compressor;
        self
    }

    /// Cheap structural validation, run before any solve.
    fn validate(&self) -> Result<(), NumError> {
        if let OrderControl::Exact(q) = self.order {
            if q == 0 {
                return Err(NumError::InvalidArgument("reduction order must be at least 1"));
            }
        }
        if self.compressor == Compressor::CrossGramian
            && !matches!(self.order, OrderControl::Exact(_))
        {
            return Err(NumError::InvalidArgument(
                "cross-gramian compression needs an exact target order",
            ));
        }
        if let InputDirections::Correlated { n_draws, .. } = &self.directions {
            if *n_draws == 0 {
                return Err(NumError::InvalidArgument("need at least one draw"));
            }
        }
        Ok(())
    }
}

/// The result of executing a [`ReductionPlan`]: the reduced model plus
/// the complete per-node account of the tolerant sweep.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced model and spectra.
    pub model: PmtbrModel,
    /// The fate of every sample node, including weight renormalization.
    pub diagnostics: SweepDiagnostics,
}

/// Executes a plan with the default [`RecoveryPolicy`] and the fault
/// plan from the `PMTBR_FAULT` environment variable (none when unset) —
/// so chaos testing applies uniformly to every variant.
///
/// # Errors
///
/// See [`run_with`].
pub fn run<S: LtiSystem + ?Sized>(sys: &S, plan: &ReductionPlan) -> Result<Reduction, NumError> {
    match crate::fault::FaultPlan::from_env() {
        Some(p) => run_with(sys, plan, &RecoveryPolicy::default(), &p),
        None => run_with(sys, plan, &RecoveryPolicy::default(), &NoFaults),
    }
}

/// Executes a plan: sweep → compress → project, with an explicit
/// recovery policy and fault hook.
///
/// This is the single execution core behind every reduction entry
/// point. All shifted solves go through the tolerant multipoint sweep
/// ([`LtiSystem::solve_shifted_many_tolerant`] and friends), so sparse
/// systems get the factorization-reusing parallel engine, failures
/// degrade the quadrature instead of aborting it, and the whole run is
/// traced under the `pmtbr.sample_sweep` span.
///
/// # Errors
///
/// - Plan validation ([`NumError::InvalidArgument`]).
/// - [`NumError::InvalidArgument`] if every node was dropped, all
///   weighted samples vanished, or the sampled subspace cannot support
///   an exact-order request.
/// - Propagates SVD/eigen/projection errors.
pub fn run_with<S: LtiSystem + ?Sized>(
    sys: &S,
    plan: &ReductionPlan,
    policy: &RecoveryPolicy,
    faults: &dyn SolveFault,
) -> Result<Reduction, NumError> {
    plan.validate()?;
    let SweptSamples {
        kept: _,
        zmat,
        blocks,
        zl,
        reports,
        requested,
        surviving,
        renorm,
        mut span,
    } = sweep(sys, &plan.sampling, &plan.directions, plan.compressor.is_two_sided(), policy, faults)?;
    let compressed = compress(&zmat, &blocks, zl.as_ref(), plan)?;
    let svd_retried = compressed.retried();
    span.field_u64("surviving", surviving as u64);
    span.field_u64("total_cols", zmat.ncols() as u64);
    span.field_f64("renorm", renorm);
    span.field("svd_retried", obs::Value::Bool(svd_retried));
    drop(span);
    let model = project(sys, &zmat, zl.as_ref(), compressed, &plan.order)?;
    Ok(Reduction {
        model,
        diagnostics: SweepDiagnostics {
            reports,
            requested,
            surviving,
            weight_renormalization: renorm,
            svd_retried,
        },
    })
}

/// The sampled, weighted, realified output of the sweep stage, with the
/// trace span still open so compression lands inside it.
pub(crate) struct SweptSamples {
    /// Surviving nodes: the shift *actually solved* (perturbed where the
    /// ladder had to nudge) with its renormalized weight.
    pub(crate) kept: Vec<SamplePoint>,
    /// Weighted realified controllability samples, one block per
    /// surviving node.
    pub(crate) zmat: DMat,
    /// Column range of each surviving node's block in `zmat`.
    pub(crate) blocks: Vec<(usize, usize)>,
    /// Weighted realified observability samples (two-sided sweeps only).
    pub(crate) zl: Option<DMat>,
    /// Per-node ladder reports, index-aligned with the requested nodes.
    pub(crate) reports: Vec<ShiftReport>,
    /// Number of nodes requested.
    pub(crate) requested: usize,
    /// Number of nodes that survived (on every required side).
    pub(crate) surviving: usize,
    /// Uniform quadrature-weight renormalization factor.
    pub(crate) renorm: f64,
    /// The open `pmtbr.sample_sweep` span.
    pub(crate) span: obs::SpanGuard,
}

/// Per-node excitations for the sweep.
enum Excitation {
    Shared(ZMat),
    PerNode(Vec<ZMat>),
}

/// Resolves [`InputDirections::Correlated`] into active nodes and their
/// per-node excitations, reproducing Algorithm 3's draw order exactly:
/// all Gaussian draws are taken in draw order (seed-stable), then
/// assigned to nodes by cycling `draw % n_nodes`.
fn correlated_rhs<S: LtiSystem + ?Sized>(
    sys: &S,
    points: &[SamplePoint],
    u_samples: &DMat,
    n_draws: usize,
    corr_tol: f64,
    seed: u64,
) -> Result<(Vec<SamplePoint>, Vec<ZMat>), NumError> {
    let p = sys.ninputs();
    if u_samples.nrows() != p {
        return Err(NumError::ShapeMismatch {
            operation: "input-correlated waveforms",
            left: (p, 0),
            right: u_samples.shape(),
        });
    }
    if points.is_empty() {
        return Err(NumError::InvalidArgument("sampling produced no points"));
    }
    // Empirical correlation 𝒰 = V_K·S_K·U_Kᵀ.
    let corr = input_correlation_svd(u_samples)?;
    let k_dirs = corr.rank(corr_tol).max(1);
    let nsamp = u_samples.ncols().max(1) as f64;
    // Standard deviations of the principal input coordinates.
    let sigmas: Vec<f64> = corr.s[..k_dirs].iter().map(|s| s / nsamp.sqrt()).collect();
    let vk = corr.u.leading_cols(k_dirs); // p × k

    let mut rng = SplitMix64::new(seed);
    let n = sys.nstates();
    let bmat = sys.input_matrix();
    let mut rhs_cols: Vec<Vec<f64>> = Vec::with_capacity(n_draws);
    for _ in 0..n_draws {
        // r ~ N(0, diag(σ²)) via Box–Muller.
        let dir: Vec<f64> = (0..k_dirs).map(|i| rng.next_gaussian() * sigmas[i]).collect();
        // rhs = B·(V_K·r), one column per draw.
        let vkr = vk.mul_vec(&dir);
        rhs_cols.push(bmat.mul_vec(&vkr));
    }
    let mut active: Vec<SamplePoint> = Vec::with_capacity(points.len());
    let mut rhss: Vec<ZMat> = Vec::with_capacity(points.len());
    for (k, pt) in points.iter().enumerate() {
        let mine: Vec<usize> = (0..n_draws).filter(|d| d % points.len() == k).collect();
        if mine.is_empty() {
            continue;
        }
        let rhs =
            ZMat::from_fn(n, mine.len(), |i, j| numkit::c64::from_real(rhs_cols[mine[j]][i]));
        active.push(*pt);
        rhss.push(rhs);
    }
    Ok((active, rhss))
}

/// The sweep stage: resolve directions, run the tolerant engine sweep
/// (both pencils for two-sided compressors), coordinate survivors,
/// renormalize quadrature weights, and realify into the sample matrix.
pub(crate) fn sweep<S: LtiSystem + ?Sized>(
    sys: &S,
    sampling: &Sampling,
    directions: &InputDirections,
    two_sided: bool,
    policy: &RecoveryPolicy,
    faults: &dyn SolveFault,
) -> Result<SweptSamples, NumError> {
    let points = sampling.points()?;
    let (active, excitation) = match directions {
        InputDirections::IdentityBlock => {
            (points, Excitation::Shared(sys.input_matrix().to_complex()))
        }
        InputDirections::Correlated { u_samples, n_draws, corr_tol, seed } => {
            let (active, rhss) =
                correlated_rhs(sys, &points, u_samples, *n_draws, *corr_tol, *seed)?;
            (active, Excitation::PerNode(rhss))
        }
    };
    let mut sp = obs::span("pmtbr.sample_sweep");
    sp.field_u64("requested", active.len() as u64);
    let shifts: Vec<c64> = active.iter().map(|p| p.s).collect();
    // Two-sided sweeps with a shared excitation go through the
    // factorization-sharing ladder: one LU per shift serves both the
    // forward and the transposed solve. Per-node excitations keep the
    // split sweeps (the pairs ladder has its own rhs per index).
    let (fwd, trans): (TolerantSweep, Option<TolerantSweep>) = match (&excitation, two_sided) {
        (Excitation::Shared(b), true) => {
            let ct = sys.output_matrix().adjoint().to_complex();
            let (f, t) = sys.solve_shifted_two_sided_tolerant(&shifts, b, &ct, policy, faults);
            (f, Some(t))
        }
        (Excitation::Shared(b), false) => {
            (sys.solve_shifted_many_tolerant(&shifts, b, policy, faults), None)
        }
        (Excitation::PerNode(rhss), _) => {
            let f = sys.solve_shifted_pairs_tolerant(&shifts, rhss, policy, faults)?;
            let t = if two_sided {
                let ct = sys.output_matrix().adjoint().to_complex();
                Some(sys.solve_shifted_transpose_many_tolerant(&shifts, &ct, policy, faults))
            } else {
                None
            };
            (f, t)
        }
    };
    debug_assert_eq!(fwd.reports.len(), active.len());
    // A node survives only if every required side solved; the report is
    // the forward one unless only the transpose side dropped.
    let requested = active.len();
    let mut reports: Vec<ShiftReport> = Vec::with_capacity(requested);
    let mut alive: Vec<bool> = Vec::with_capacity(requested);
    for k in 0..requested {
        let f_ok = fwd.solutions[k].is_some();
        let t_ok = trans.as_ref().is_none_or(|t| t.solutions[k].is_some());
        alive.push(f_ok && t_ok);
        let rep = match &trans {
            Some(t) if f_ok && !t_ok => t.reports[k].clone(),
            _ => fwd.reports[k].clone(),
        };
        reports.push(rep);
    }
    let surviving = alive.iter().filter(|&&a| a).count();
    if surviving == 0 {
        return Err(NumError::InvalidArgument(
            "every sample point was dropped by the fault-tolerance ladder",
        ));
    }
    let total_weight: f64 = active.iter().map(|p| p.weight).sum();
    let surviving_weight: f64 = active
        .iter()
        .zip(&alive)
        .filter(|(_, &a)| a)
        .map(|(p, _)| p.weight)
        .sum();
    let renorm = if surviving_weight > 0.0 { total_weight / surviving_weight } else { 1.0 };

    // Weighted surviving columns, at the shifts actually solved.
    let mut kept: Vec<SamplePoint> = Vec::with_capacity(surviving);
    let mut weighted: Vec<ZMat> = Vec::with_capacity(surviving);
    let mut weighted_l: Vec<ZMat> = Vec::with_capacity(if two_sided { surviving } else { 0 });
    for k in 0..requested {
        if !alive[k] {
            continue;
        }
        if let Some(z) = &fwd.solutions[k] {
            let w = active[k].weight * renorm;
            kept.push(SamplePoint { s: reports[k].s_used, weight: w });
            // 16 bytes per retained c64 sample entry.
            obs::counters::add(obs::Counter::SampleBytes, (z.nrows() * z.ncols() * 16) as u64);
            weighted.push(z.scale(w.sqrt()));
            if let Some(t) = &trans {
                if let Some(zl) = &t.solutions[k] {
                    obs::counters::add(
                        obs::Counter::SampleBytes,
                        (zl.nrows() * zl.ncols() * 16) as u64,
                    );
                    weighted_l.push(zl.scale(w.sqrt()));
                }
            }
        }
    }
    let n = sys.nstates();
    let (zmat, blocks) = realify_blocks(n, &weighted)?;
    let zl = if two_sided {
        let (zl, _) = realify_blocks(n, &weighted_l)?;
        Some(zl)
    } else {
        None
    };
    Ok(SweptSamples {
        kept,
        zmat,
        blocks,
        zl,
        reports,
        requested,
        surviving,
        renorm,
        span: sp,
    })
}

/// Stacks the realified weighted blocks into one matrix, recording each
/// block's column range.
fn realify_blocks(n: usize, weighted: &[ZMat]) -> Result<(DMat, Vec<(usize, usize)>), NumError> {
    let total_cols: usize = weighted.iter().map(|zw| realified_ncols(zw, 1e-13)).sum();
    if total_cols == 0 {
        return Err(NumError::InvalidArgument("all surviving weighted samples vanished"));
    }
    let mut zmat = DMat::zeros(n, total_cols);
    let mut blocks = Vec::with_capacity(weighted.len());
    let mut col = 0;
    for zw in weighted {
        let wrote = realify_columns_into(zw, 1e-13, &mut zmat, col);
        blocks.push((col, col + wrote));
        col += wrote;
    }
    debug_assert_eq!(col, total_cols);
    Ok((zmat, blocks))
}

/// Output of the compression stage, before order selection and
/// projection.
enum Compressed {
    /// SVD of the controllability sample matrix.
    Spectral { f: Svd<f64>, retried: bool },
    /// Incremental QR with `R`-factor singular-value estimates.
    Incremental { basis: IncrementalBasis, s: Vec<f64> },
    /// SVD of the balancing product `Z_Lᵀ·Z_R`.
    Balanced { f: Svd<f64>, retried: bool },
    /// Realified eigenbasis `T` of the small cross-Gramian eigenproblem
    /// `N = Z_Lᵀ·Z_R`, its eigenvalue block structure, and moduli.
    Cross { t: DMat, eigs: Vec<CrossEig>, moduli: Vec<f64>, retried: bool },
}

/// One realified eigenvalue block of the compressed cross-Gramian
/// eigenproblem: a real eigenvalue owns one column of `T`, a conjugate
/// pair `a ± bi` owns two (`[Re v, Im v]`).
enum CrossEig {
    /// Real eigenvalue `λ` (one column).
    Real(f64),
    /// Conjugate pair `a ± bi` (two columns).
    Pair {
        /// Real part `a`.
        re: f64,
        /// Imaginary part `b` of the `+bi` member.
        im: f64,
    },
}

impl CrossEig {
    /// Number of realified columns this block owns.
    fn width(&self) -> usize {
        match self {
            CrossEig::Real(_) => 1,
            CrossEig::Pair { .. } => 2,
        }
    }
}

impl Compressed {
    fn retried(&self) -> bool {
        match self {
            Compressed::Spectral { retried, .. }
            | Compressed::Balanced { retried, .. }
            | Compressed::Cross { retried, .. } => *retried,
            Compressed::Incremental { .. } => false,
        }
    }
}

fn compress(
    zmat: &DMat,
    blocks: &[(usize, usize)],
    zl: Option<&DMat>,
    plan: &ReductionPlan,
) -> Result<Compressed, NumError> {
    let mut sp = obs::span("pmtbr.compress");
    sp.field_u64("cols", zmat.ncols() as u64);
    match plan.compressor {
        Compressor::JacobiSvd => {
            sp.field_str("method", "jacobi-svd");
            let (f, retried) = robust_svd(zmat)?;
            Ok(Compressed::Spectral { f, retried })
        }
        Compressor::Incremental => {
            sp.field_str("method", "incremental-qr");
            let mut basis = IncrementalBasis::new(zmat.nrows());
            for &(c0, c1) in blocks {
                basis.push_block(&zmat.block(0, zmat.nrows(), c0, c1))?;
            }
            let s = basis.singular_value_estimates()?;
            Ok(Compressed::Incremental { basis, s })
        }
        Compressor::Balance => {
            sp.field_str("method", "balance");
            let zl = zl.ok_or(NumError::InvalidArgument("balance needs two-sided samples"))?;
            // Square-root balancing: SVD of Z_Lᵀ·Z_R.
            let m = zl.transpose().matmul(zmat)?;
            let (f, retried) = robust_svd(&m)?;
            Ok(Compressed::Balanced { f, retried })
        }
        Compressor::CrossGramian => {
            sp.field_str("method", "cross-gramian");
            let zl = zl.ok_or(NumError::InvalidArgument(
                "cross-gramian needs two-sided samples",
            ))?;
            if zl.ncols() != zmat.ncols() {
                return Err(NumError::ShapeMismatch {
                    operation: "cross-gramian sample stacks",
                    left: zl.shape(),
                    right: zmat.shape(),
                });
            }
            // The sampled cross Gramian X = Z_R·Z_Lᵀ (n × n, never
            // formed) shares its nonzero spectrum with the small product
            // N = Z_Lᵀ·Z_R (c × c, c = sample columns): for λ ≠ 0,
            // N·w = λ·w gives X·(Z_R·w) = λ·(Z_R·w). Diagonalizing N
            // directly replaces the former joint-stack SVD plus k × k
            // (k up to 2c) eigenproblem with one c × c eigenproblem and
            // two tall matmuls in `project` — the dominant cost of the
            // old cross path.
            let nmat = zl.transpose().matmul(zmat)?;
            let c = nmat.ncols();
            let e = eig(&nmat)?;
            // Realified dominant eigenbasis (conjugate pairs → [Re, Im]),
            // in the engine's decreasing-modulus order.
            let mut t = DMat::zeros(c, c);
            let mut eigs = Vec::with_capacity(c);
            let mut moduli = Vec::with_capacity(c);
            let mut j = 0;
            let mut col = 0;
            while j < c {
                let lam = e.values[j];
                let v = e.vectors.col(j);
                if lam.im.abs() > 1e-12 * lam.abs().max(1e-300) && j + 1 < c {
                    for i in 0..c {
                        t[(i, col)] = v[i].re;
                        t[(i, col + 1)] = v[i].im;
                    }
                    eigs.push(CrossEig::Pair { re: lam.re, im: lam.im });
                    moduli.push(lam.abs());
                    moduli.push(lam.abs());
                    col += 2;
                    j += 2;
                } else {
                    for i in 0..c {
                        t[(i, col)] = v[i].re;
                    }
                    eigs.push(CrossEig::Real(lam.re));
                    moduli.push(lam.abs());
                    col += 1;
                    j += 1;
                }
            }
            Ok(Compressed::Cross { t, eigs, moduli, retried: false })
        }
    }
}

/// Chooses the reduced order from a (descending) singular spectrum.
pub(crate) fn truncated_order(s: &[f64], order: &OrderControl) -> Result<usize, NumError> {
    if s.is_empty() || s[0] == 0.0 {
        return Err(NumError::InvalidArgument("sample basis is empty"));
    }
    match *order {
        OrderControl::Tolerance { tolerance, max_order } => {
            let by_tol = s.iter().take_while(|&&x| x > tolerance * s[0]).count().max(1);
            Ok(max_order.map_or(by_tol, |cap| by_tol.min(cap)).min(s.len()))
        }
        OrderControl::Exact(q) => {
            if q > s.len() {
                return Err(NumError::InvalidArgument("requested order exceeds sampled subspace"));
            }
            Ok(q)
        }
    }
}

/// Order selection + projector assembly + congruence projection.
fn project<S: LtiSystem + ?Sized>(
    sys: &S,
    zmat: &DMat,
    zl: Option<&DMat>,
    compressed: Compressed,
    order: &OrderControl,
) -> Result<PmtbrModel, NumError> {
    let mut sp = obs::span("pmtbr.project");
    let n = sys.nstates();
    let model = match compressed {
        Compressed::Spectral { f, .. } => {
            let q = truncated_order(&f.s, order)?;
            let v = f.u.leading_cols(q);
            let reduced: StateSpace = sys.project(&v, &v)?;
            Ok(PmtbrModel {
                reduced,
                v,
                singular_values: f.s.clone(),
                order: q,
                error_estimate: f.s.iter().skip(q).sum(),
            })
        }
        Compressed::Incremental { basis, s } => {
            let mut q = truncated_order(&s, order)?;
            if matches!(order, OrderControl::Tolerance { .. }) {
                // Tolerance picks from the (padded) spectrum; an exact
                // request past the rank must error in dominant_basis.
                q = q.min(basis.rank()).max(1);
            }
            let v = basis.dominant_basis(q)?;
            let q = v.ncols();
            let reduced: StateSpace = sys.project(&v, &v)?;
            Ok(PmtbrModel {
                reduced,
                v,
                singular_values: s.clone(),
                order: q,
                error_estimate: s.iter().skip(q).sum(),
            })
        }
        Compressed::Balanced { f, .. } => {
            let zl = zl.ok_or(NumError::InvalidArgument("balance needs two-sided samples"))?;
            let rank = f.rank(1e-13).max(1);
            let q = match *order {
                OrderControl::Exact(q0) => {
                    if q0.min(rank) < q0 {
                        return Err(NumError::InvalidArgument(
                            "requested order exceeds sampled Hankel rank",
                        ));
                    }
                    q0
                }
                OrderControl::Tolerance { .. } => truncated_order(&f.s, order)?.min(rank),
            };
            // Blocked congruence products Z_R·V_q and Z_L·U_q (the
            // cache-blocked matmul sums ascending-k, bit-identical to
            // the per-entry loops this replaces), then the balancing
            // column scaling 1/√σⱼ.
            let mut v = zmat.matmul(&f.v.leading_cols(q))?;
            let mut w = zl.matmul(&f.u.leading_cols(q))?;
            for j in 0..q {
                let scale = 1.0 / f.s[j].sqrt();
                for i in 0..n {
                    v[(i, j)] *= scale;
                    w[(i, j)] *= scale;
                }
            }
            let reduced: StateSpace = sys.project(&w, &v)?;
            Ok(PmtbrModel {
                reduced,
                v,
                singular_values: f.s.clone(),
                order: q,
                error_estimate: f.s.iter().skip(q).sum(),
            })
        }
        Compressed::Cross { t, eigs, moduli, .. } => {
            let zl = zl
                .ok_or(NumError::InvalidArgument("cross-gramian needs two-sided samples"))?;
            let c = t.ncols();
            let target = match *order {
                OrderControl::Exact(q0) => q0,
                // validate() rejects this combination up front.
                OrderControl::Tolerance { .. } => {
                    return Err(NumError::InvalidArgument(
                        "cross-gramian compression needs an exact target order",
                    ));
                }
            };
            if target > c {
                return Err(NumError::InvalidArgument("requested order exceeds sampled subspace"));
            }
            // Walk whole eigenvalue blocks so a conjugate pair is never
            // split at the truncation boundary.
            let mut q_ord = 0;
            for blk in &eigs {
                if q_ord >= target {
                    break;
                }
                q_ord += blk.width();
            }
            // Dominant right eigenvectors of X = Z_R·Z_Lᵀ: V = Z_R·T_q
            // (N·w = λ·w maps to X·(Z_R·w) = λ·(Z_R·w)).
            let v = zmat.matmul(&t.leading_cols(q_ord))?;
            // Biorthogonal left basis: W = Z_L·K with K = (Λ⁻¹·T⁻¹)ᵀ,
            // since then WᵀV = Λ⁻¹·T⁻¹·N·T = Λ⁻¹·Λ = I. Only the
            // leading q_ord rows of Λ⁻¹·T⁻¹ are needed, so only the
            // dominant (nonzero) eigenvalue blocks are ever inverted:
            // 1×1 block λ, or the realified pair block
            // [[a, b], [−b, a]]⁻¹ = [[a, −b], [b, a]] / (a² + b²).
            let tinv = Lu::new(t.clone())?.inverse()?;
            let mut ksel = DMat::zeros(c, q_ord);
            let mut row = 0;
            for blk in &eigs {
                if row >= q_ord {
                    break;
                }
                match *blk {
                    CrossEig::Real(lam) => {
                        if lam == 0.0 {
                            return Err(NumError::InvalidArgument(
                                "cross-gramian eigenvalue vanished in the dominant block",
                            ));
                        }
                        for i in 0..c {
                            ksel[(i, row)] = tinv[(row, i)] / lam;
                        }
                        row += 1;
                    }
                    CrossEig::Pair { re, im } => {
                        let d = re * re + im * im;
                        if d == 0.0 {
                            return Err(NumError::InvalidArgument(
                                "cross-gramian eigenvalue vanished in the dominant block",
                            ));
                        }
                        for i in 0..c {
                            let x = tinv[(row, i)];
                            let y = tinv[(row + 1, i)];
                            ksel[(i, row)] = (re * x - im * y) / d;
                            ksel[(i, row + 1)] = (im * x + re * y) / d;
                        }
                        row += 2;
                    }
                }
            }
            debug_assert_eq!(row, q_ord);
            let w = zl.matmul(&ksel)?;
            let reduced: StateSpace = sys.project(&w, &v)?;
            Ok(PmtbrModel {
                reduced,
                v,
                singular_values: moduli.clone(),
                order: q_ord,
                error_estimate: moduli.iter().skip(q_ord).sum(),
            })
        }
    };
    if let Ok(m) = &model {
        sp.field_u64("order", m.order as u64);
    }
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::rc_mesh;
    use numkit::c64;

    fn mesh() -> lti::Descriptor {
        rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0).unwrap()
    }

    #[test]
    fn plan_validation_rejects_degenerate_requests() {
        let sampling = Sampling::Linear { omega_max: 10.0, n: 8 };
        let err = run(&mesh(), &ReductionPlan::balanced(&sampling, 0)).unwrap_err();
        assert!(matches!(err, NumError::InvalidArgument(_)));
        let mut plan = ReductionPlan::cross_gramian(&sampling, 3);
        plan.order = OrderControl::Tolerance { tolerance: 1e-10, max_order: None };
        assert!(run(&mesh(), &plan).is_err());
    }

    #[test]
    fn default_plan_matches_classic_pmtbr() {
        let sys = mesh();
        let opts = PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 15 }).with_max_order(6);
        let classic = crate::pmtbr(&sys, &opts).unwrap();
        let planned = run(&sys, &ReductionPlan::pmtbr(&opts)).unwrap();
        assert_eq!(classic.order, planned.model.order);
        assert_eq!(classic.singular_values, planned.model.singular_values);
        assert!(!planned.diagnostics.is_degraded());
    }

    #[test]
    fn incremental_compressor_matches_svd_subspace() {
        let sys = mesh();
        let opts = PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 12 }).with_max_order(5);
        let svd_red = run(&sys, &ReductionPlan::pmtbr(&opts)).unwrap();
        let inc_red = run(
            &sys,
            &ReductionPlan::pmtbr(&opts).with_compressor(Compressor::Incremental),
        )
        .unwrap();
        assert_eq!(svd_red.model.order, inc_red.model.order);
        // Same singular values (the R factor is exact) and same subspace.
        for (a, b) in svd_red
            .model
            .singular_values
            .iter()
            .zip(&inc_red.model.singular_values)
        {
            assert!((a - b).abs() < 1e-9 * (1.0 + a), "{a} vs {b}");
        }
        let angle =
            numkit::max_principal_angle(&svd_red.model.v, &inc_red.model.v).unwrap();
        assert!(angle < 1e-6, "subspace angle {angle}");
    }

    #[test]
    fn two_sided_plans_survive_dropped_nodes() {
        use crate::fault::{FaultKind, FaultPlan};
        let sys = mesh();
        let sampling = Sampling::Linear { omega_max: 20.0, n: 16 };
        let plan = ReductionPlan::balanced(&sampling, 4);
        let faults = FaultPlan::new(7, 0.25, vec![FaultKind::Panic], 2);
        let red = run_with(&sys, &plan, &RecoveryPolicy::default(), &faults).unwrap();
        assert!(red.diagnostics.dropped() > 0, "plan must actually drop nodes");
        assert_eq!(red.model.order, 4);
        assert!(red.diagnostics.weight_renormalization > 1.0);
        // The degraded two-sided model still tracks the transfer function.
        let s = c64::new(0.0, 1.0);
        let h = sys.transfer_function(s).unwrap()[(0, 0)];
        let hr = red.model.reduced.transfer_function(s).unwrap()[(0, 0)];
        assert!((h - hr).abs() < 5e-2 * h.abs().max(1e-12), "err {}", (h - hr).abs());
    }
}
