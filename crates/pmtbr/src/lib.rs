//! # pmtbr — Poor Man's TBR
//!
//! A Rust implementation of the model order reduction family from
//! J. R. Phillips and L. M. Silveira, *"Poor Man's TBR: A Simple Model
//! Reduction Scheme"* (DATE 2004 / IEEE TCAD 24(1), 2005).
//!
//! The key observation: multipoint frequency sampling
//! `z_k = (s_k·E − A)⁻¹·B` followed by an SVD of the weighted sample
//! matrix `ZW` is numerical quadrature for the controllability Gramian
//! (paper eq. (8)–(11)). The singular values approximate Hankel singular
//! values — giving TBR-style order/error control at multipoint-projection
//! cost — and the sampling scheme *is* a frequency weighting, which turns
//! statistical knowledge about the inputs into smaller models.
//!
//! Provided variants:
//!
//! - [`pmtbr`] — Algorithm 1, with [`Sampling`] schemes (uniform, log,
//!   per-band, custom) and SVD order control;
//! - [`frequency_selective_pmtbr`] — Algorithm 2: sampling restricted to
//!   bands of interest;
//! - [`input_correlated_pmtbr`] — Algorithm 3: stochastic sampling of the
//!   input-correlated Gramian for massively coupled networks;
//! - [`cross_gramian_pmtbr`] — the two-sided (Section V-D) variant for
//!   nonsymmetric systems;
//! - [`balanced_pmtbr`] — square-root balancing of *sampled*
//!   controllability and observability Gramians (two-sided);
//! - [`adaptive_pmtbr`] — residual-driven bisection point selection;
//! - [`pod_reduce`] — snapshot-based (time-domain empirical Gramian)
//!   reduction, the statistical interpretation taken literally;
//! - [`IncrementalBasis`] — on-the-fly order control without re-SVDs
//!   (Section V-C).
//!
//! Every variant above is a thin constructor over one staged execution
//! core: [`pipeline::ReductionPlan`] describes the reduction (sampling,
//! input directions, compressor, order control) and [`pipeline::run`]
//! executes it through the shared tolerant multipoint sweep — so
//! parallelism, fault tolerance (`PMTBR_FAULT`), weight
//! renormalization, and tracing behave identically across variants.
//!
//! All of them accept anything implementing `lti::LtiSystem`, including
//! sparse descriptor systems with singular `E` (Section V-A).
//!
//! ```
//! use circuits::rc_mesh;
//! use pmtbr::{pmtbr, PmtbrOptions, Sampling};
//!
//! # fn main() -> Result<(), numkit::NumError> {
//! let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0)?;
//! let model = pmtbr(
//!     &sys,
//!     &PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 20 }).with_max_order(6),
//! )?;
//! println!("order {} with error estimate {:.2e}", model.order, model.error_estimate);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `NumError`, not abort: panics
// are reserved for violated internal invariants (and tests).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod adaptive;
mod balanced;
mod algorithm;
mod budget;
pub mod cache;
mod cross_gramian;
pub mod fault;
mod frequency_selective;
mod greedy;
mod input_correlated;
mod order_control;
pub mod par;
pub mod pipeline;
mod pod;
mod sampling;
mod sweep;

pub use adaptive::{adaptive_pmtbr, AdaptiveModel};
pub use balanced::balanced_pmtbr;
pub use algorithm::{pmtbr, reduce_with_basis, sample_basis, PmtbrModel, PmtbrOptions, SampleBasis};
pub use cross_gramian::cross_gramian_pmtbr;
pub use frequency_selective::frequency_selective_pmtbr;
pub use input_correlated::{input_correlated_pmtbr, InputCorrelatedOptions};
pub use budget::Budget;
pub use cache::{
    Artifact, ArtifactCache, ArtifactKind, CacheKey, CachedReduction, CachedSweep, LruCache,
    NullCache,
};
pub use order_control::IncrementalBasis;
pub use fault::{FaultKind, FaultPlan, FaultStage, StageFault};
pub use pipeline::{
    Compressor, InputDirections, OrderControl, PipelineReport, Reduction, ReductionPlan,
    StageOutcome,
};
pub use pod::{pod_reduce, PodOptions};
pub use sampling::{SamplePoint, Sampling};
pub use sweep::{pmtbr_tolerant, sample_basis_tolerant, SweepDiagnostics};
