//! Algorithm 2: frequency-selective PMTBR.
//!
//! The statistical reading of the Gramian (paper Section IV-B) says the
//! standard TBR weighting is only optimal for white-spectrum inputs.
//! When the inputs are band-limited — or only in-band accuracy matters —
//! restricting the quadrature to the bands of interest yields a
//! "finite-bandwidth Gramian" and much smaller models at equal in-band
//! accuracy. Mechanically this is [`pmtbr`] with band-restricted
//! sampling; the convenience wrapper here packages the paper's
//! Algorithm 2 interface.

use lti::LtiSystem;
use numkit::NumError;

use crate::pipeline::ReductionPlan;
use crate::PmtbrModel;

/// Runs frequency-selective PMTBR over the union of `bands`
/// (each `(lo, hi)` in rad/s), using `n_samples` total quadrature nodes.
///
/// Executes [`ReductionPlan::frequency_selective`] through the shared
/// pipeline, so band-restricted sweeps get the same parallel engine,
/// fault-tolerance ladder (`PMTBR_FAULT` degrades the quadrature
/// instead of erroring), and tracing as every other variant.
///
/// # Errors
///
/// Propagates sampling validation and [`crate::pipeline::run`] errors.
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use pmtbr::frequency_selective_pmtbr;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(4, 4, &[0], 1.0, 1.0, 2.0)?;
/// // Accuracy wanted only in ω ∈ [0, 2] rad/s.
/// let m = frequency_selective_pmtbr(&sys, &[(0.0, 2.0)], 15, Some(5), 1e-10)?;
/// assert!(m.order <= 5);
/// # Ok(())
/// # }
/// ```
pub fn frequency_selective_pmtbr<S: LtiSystem + ?Sized>(
    sys: &S,
    bands: &[(f64, f64)],
    n_samples: usize,
    max_order: Option<usize>,
    tolerance: f64,
) -> Result<PmtbrModel, NumError> {
    let plan = ReductionPlan::frequency_selective(bands, n_samples, max_order, tolerance);
    Ok(crate::pipeline::run(sys, &plan)?.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{peec_resonator, PeecParams};
    use lti::{frequency_response, linspace, max_rel_error};

    #[test]
    fn in_band_beats_out_of_band_accuracy() {
        // Reduce a resonant system focusing on a low band; in-band error
        // must be far smaller than out-of-band error.
        let sys = peec_resonator(&PeecParams::default()).unwrap();
        let band_hi = 2.0 * std::f64::consts::PI * 3e9;
        let m = frequency_selective_pmtbr(&sys, &[(0.0, band_hi)], 40, Some(12), 1e-12).unwrap();

        let in_grid: Vec<f64> = linspace(band_hi * 0.02, band_hi * 0.98, 40);
        let out_grid: Vec<f64> = linspace(band_hi * 2.0, band_hi * 6.0, 40);
        let h_in = frequency_response(&sys, &in_grid).unwrap();
        let h_in_r = frequency_response(&m.reduced, &in_grid).unwrap();
        let h_out = frequency_response(&sys, &out_grid).unwrap();
        let h_out_r = frequency_response(&m.reduced, &out_grid).unwrap();
        let e_in = max_rel_error(&h_in, &h_in_r);
        let e_out = max_rel_error(&h_out, &h_out_r);
        assert!(
            e_in < 0.05 && e_in * 3.0 < e_out,
            "in-band {e_in:.2e} must be far better than out-of-band {e_out:.2e}"
        );
    }

    #[test]
    fn multiple_bands_are_all_covered() {
        let sys = peec_resonator(&PeecParams::default()).unwrap();
        let w0 = 2.0 * std::f64::consts::PI * 1e9;
        let m =
            frequency_selective_pmtbr(&sys, &[(0.0, w0), (4.0 * w0, 5.0 * w0)], 30, Some(12), 1e-12)
                .unwrap();
        for grid in [linspace(w0 * 0.1, w0 * 0.9, 20), linspace(4.1 * w0, 4.9 * w0, 20)] {
            let h = frequency_response(&sys, &grid).unwrap();
            let hr = frequency_response(&m.reduced, &grid).unwrap();
            assert!(max_rel_error(&h, &hr) < 0.1, "both bands must be approximated");
        }
    }
}
