//! Algorithm 3: input-correlated PMTBR for massively coupled networks.
//!
//! When port waveforms are correlated — signals from a common functional
//! block or clock domain — the relevant Gramian is `A·X + X·Aᵀ + B·K·Bᵀ`
//! with `K` the input correlation matrix, whose eigenvalues decay much
//! faster than the uncorrelated (`K = I`) Gramian's. Algorithm 3 samples
//! that Gramian stochastically: draw input directions from the empirical
//! correlation (the SVD of observed waveforms) and solve one shifted
//! system per draw — so the basis growth is decoupled from the port
//! count, unlike block moment matching.
//!
//! Note on the paper's notation: Fig. 4 writes `B·U_K·r` with
//! `𝒰 = V_K·S_K·U_Kᵀ`; dimensionally the input-direction matrix must be
//! the *left* factor `V_K` (p × p). We implement `B·V_K·r`,
//! `r ~ N(0, diag(S_K²/N))`. See DESIGN.md.

use lti::LtiSystem;
use numkit::{DMat, NumError};

use crate::pipeline::ReductionPlan;
use crate::{PmtbrModel, Sampling};

/// Configuration for input-correlated PMTBR.
#[derive(Debug, Clone, PartialEq)]
pub struct InputCorrelatedOptions {
    /// Frequency sampling scheme; draws cycle through its points.
    pub sampling: Sampling,
    /// Number of stochastic samples (columns before compression).
    pub n_draws: usize,
    /// Relative singular-value truncation tolerance.
    pub tolerance: f64,
    /// Optional order cap.
    pub max_order: Option<usize>,
    /// Correlation directions with `S_K < corr_tol·S_K[0]` are dropped.
    pub corr_tol: f64,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
}

impl InputCorrelatedOptions {
    /// Sensible defaults: 64 draws, `1e-10` truncation, no cap.
    pub fn new(sampling: Sampling) -> Self {
        InputCorrelatedOptions {
            sampling,
            n_draws: 64,
            tolerance: 1e-10,
            max_order: None,
            corr_tol: 1e-8,
            seed: 0x9e3779b9,
        }
    }
}

/// Runs input-correlated PMTBR (Algorithm 3).
///
/// `u_samples` is the `p × N` matrix of observed input waveform samples
/// (each column one time sample across all `p` ports) — e.g. from
/// [`lti::dithered_square_inputs`] or a circuit-level simulation without
/// the parasitic network.
///
/// Executes [`ReductionPlan::input_correlated`] through the shared
/// pipeline: the stochastic draws become per-node input directions for
/// the same tolerant, parallel, traced sweep every variant uses —
/// under `PMTBR_FAULT` the quadrature degrades gracefully instead of
/// erroring, exactly like the other entry points.
///
/// # Errors
///
/// - [`NumError::ShapeMismatch`] if `u_samples` has a row count other
///   than the system's input count.
/// - Propagates sampling/solve/SVD/projection errors.
///
/// # Examples
///
/// ```
/// use circuits::multiport_rc32;
/// use lti::dithered_square_inputs;
/// use pmtbr::{input_correlated_pmtbr, InputCorrelatedOptions, Sampling};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = multiport_rc32()?;
/// let u = dithered_square_inputs(32, 200, 0.05, 4.0, 0.1, 7);
/// let mut opts = InputCorrelatedOptions::new(Sampling::Linear { omega_max: 8.0, n: 16 });
/// opts.max_order = Some(15);
/// opts.n_draws = 40;
/// let m = input_correlated_pmtbr(&sys, &u, &opts)?;
/// assert!(m.order <= 15);
/// # Ok(())
/// # }
/// ```
pub fn input_correlated_pmtbr<S: LtiSystem + ?Sized>(
    sys: &S,
    u_samples: &DMat,
    opts: &InputCorrelatedOptions,
) -> Result<PmtbrModel, NumError> {
    let plan = ReductionPlan::input_correlated(u_samples, opts);
    Ok(crate::pipeline::run(sys, &plan)?.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{rc_mesh, spread_ports};
    use lti::{
        dithered_square_inputs, max_transient_error, random_phase_square_inputs,
        simulate_descriptor, simulate_ss,
    };

    fn test_system() -> lti::Descriptor {
        let ports = spread_ports(4, 8, 16);
        rc_mesh(4, 8, &ports, 1.0, 1.0, 2.0).unwrap()
    }

    fn opts(n_draws: usize, order: usize) -> InputCorrelatedOptions {
        let mut o = InputCorrelatedOptions::new(Sampling::Linear { omega_max: 6.0, n: 12 });
        o.n_draws = n_draws;
        o.max_order = Some(order);
        o
    }

    #[test]
    fn shape_validation() {
        let sys = test_system();
        let u = DMat::zeros(5, 10); // wrong row count
        assert!(input_correlated_pmtbr(&sys, &u, &opts(8, 4)).is_err());
    }

    #[test]
    fn correlated_model_tracks_in_class_inputs_and_beats_tbr() {
        let sys = test_system();
        let h = 0.05;
        let nt = 400;
        let period = 4.0;
        let order = 10;
        let u_train = dithered_square_inputs(16, nt, h, period, 0.1, 1);
        let m = input_correlated_pmtbr(&sys, &u_train, &opts(64, order)).unwrap();
        assert!(m.order <= order);

        // Simulate full vs reduced on fresh in-class inputs.
        let u_test = dithered_square_inputs(16, nt, h, period, 0.1, 2);
        let full = simulate_descriptor(&sys, &u_test, h).unwrap();
        let red = simulate_ss(&m.reduced, &u_test, h).unwrap();
        let scale = full.y.norm_max();
        let e_ic = max_transient_error(&full, &red) / scale;
        assert!(e_ic < 0.10, "in-class relative error {e_ic:.3} too large");

        // The paper's Fig. 13 claim: same-order *uncorrelated* TBR is
        // much worse on the same workload.
        let tbr_model = lti::tbr(&sys.to_state_space().unwrap(), order).unwrap();
        let red_tbr = simulate_ss(&tbr_model.reduced, &u_test, h).unwrap();
        let e_tbr = max_transient_error(&full, &red_tbr) / scale;
        assert!(
            e_ic < e_tbr,
            "input-correlated ({e_ic:.3}) must beat plain TBR ({e_tbr:.3}) at equal order"
        );
    }

    #[test]
    fn out_of_class_inputs_degrade_accuracy() {
        // The Fig. 14 effect: random-phase inputs break the correlated model.
        let sys = test_system();
        let h = 0.05;
        let nt = 400;
        let period = 4.0;
        let u_train = dithered_square_inputs(16, nt, h, period, 0.1, 1);
        let m = input_correlated_pmtbr(&sys, &u_train, &opts(48, 6)).unwrap();

        let u_in = dithered_square_inputs(16, nt, h, period, 0.1, 3);
        let u_out = random_phase_square_inputs(16, nt, h, period, 3);
        let err = |u: &DMat| {
            let full = simulate_descriptor(&sys, u, h).unwrap();
            let red = simulate_ss(&m.reduced, u, h).unwrap();
            max_transient_error(&full, &red) / full.y.norm_max()
        };
        let e_in = err(&u_in);
        let e_out = err(&u_out);
        assert!(
            e_out > 2.0 * e_in,
            "out-of-class error {e_out:.3} must exceed in-class {e_in:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let sys = test_system();
        let u = dithered_square_inputs(16, 200, 0.05, 4.0, 0.1, 1);
        let a = input_correlated_pmtbr(&sys, &u, &opts(16, 5)).unwrap();
        let b = input_correlated_pmtbr(&sys, &u, &opts(16, 5)).unwrap();
        assert_eq!(a.singular_values, b.singular_values);
    }
}
