//! Algorithm 1: the core PMTBR procedure.
//!
//! Sample `z_k = (s_k·E − A)⁻¹·B` at quadrature nodes, weight by `√w_k`,
//! realify, and take the SVD of the stacked sample matrix `ZW`. Its left
//! singular vectors approximate the dominant eigenvectors of the
//! (weighted) controllability Gramian, its singular values approximate
//! the Hankel singular values, and the trailing-value sum drives order
//! and error control.

use lti::{LtiSystem, NoFaults, RecoveryPolicy, StateSpace};
use numkit::{svd, svd_with_sweeps, DMat, NumError, Svd};

use crate::pipeline::{InputDirections, ReductionPlan, SweptSamples};
use crate::{SamplePoint, Sampling};

/// SVD of the sample matrix with a convergence safety net.
///
/// The one-sided Jacobi SVD can (rarely) exhaust its sweep budget on
/// sample matrices whose columns span 15+ orders of magnitude. When it
/// reports [`NumError::NotConverged`], this retries once with column
/// equilibration: with `D = diag(1/‖aⱼ‖₂)` the scaled matrix `A·D` has
/// unit columns and converges quickly; `A = U₁·(S₁·V₁ᵀ·D⁻¹)` is then
/// recombined *exactly* through a second small SVD of the `k × c`
/// middle factor, so the returned triplet is a genuine SVD of the
/// original matrix. Both retry stages run with a raised sweep cap.
///
/// Returns the factorization and whether the retry path was taken.
pub(crate) fn robust_svd(a: &DMat) -> Result<(Svd<f64>, bool), NumError> {
    match svd(a) {
        Ok(f) => Ok((f, false)),
        Err(NumError::NotConverged { .. }) => equilibrated_svd(a, 400).map(|f| (f, true)),
        Err(e) => Err(e),
    }
}

/// The equilibrated retry behind [`robust_svd`] (and rung 2 of the
/// pipeline's compressor ladder): factor `A·D` with unit columns, then
/// recombine exactly through a second small SVD. Both internal SVDs run
/// under `max_sweeps`, so a work budget can clamp the retry.
pub(crate) fn equilibrated_svd(a: &DMat, max_sweeps: usize) -> Result<Svd<f64>, NumError> {
    let (n, c) = a.shape();
    let norms: Vec<f64> = (0..c)
        .map(|j| (0..n).map(|i| a[(i, j)] * a[(i, j)]).sum::<f64>().sqrt())
        .collect();
    let ad = DMat::from_fn(n, c, |i, j| {
        if norms[j] > 0.0 {
            a[(i, j)] / norms[j]
        } else {
            0.0
        }
    });
    let f1 = svd_with_sweeps(&ad, max_sweeps)?;
    // Truncate stage 1 to its numerical rank: below it, the rows of the
    // middle factor are pure noise and would hand the second SVD
    // non-orthogonal null directions.
    let r = f1.rank(f64::EPSILON);
    if r == 0 {
        return Ok(f1); // A is (numerically) zero; f1 is already its SVD
    }
    let f1 = f1.truncated(r);
    // Middle factor M = S₁·V₁ᵀ·D⁻¹ (r × c, small).
    let m = DMat::from_fn(r, c, |i, j| f1.s[i] * f1.v[(j, i)] * norms[j]);
    let f2 = svd_with_sweeps(&m, max_sweeps)?;
    Ok(Svd { u: f1.u.matmul(&f2.u)?, s: f2.s, v: f2.v })
}

/// Configuration for a PMTBR run.
///
/// Build with [`PmtbrOptions::new`] and the `with_*` methods
/// (builder style):
///
/// ```
/// use pmtbr::{PmtbrOptions, Sampling};
///
/// let opts = PmtbrOptions::new(Sampling::Linear { omega_max: 10.0, n: 20 })
///     .with_tolerance(1e-8)
///     .with_max_order(12);
/// assert_eq!(opts.max_order(), Some(12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PmtbrOptions {
    sampling: Sampling,
    tolerance: f64,
    max_order: Option<usize>,
}

impl PmtbrOptions {
    /// Creates options with the given sampling scheme, relative singular
    /// value tolerance `1e-10`, and no order cap.
    pub fn new(sampling: Sampling) -> Self {
        PmtbrOptions { sampling, tolerance: 1e-10, max_order: None }
    }

    /// Sets the relative truncation tolerance: directions with
    /// `σᵢ ≤ tol·σ₀` are dropped.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Caps the reduced order.
    #[must_use]
    pub fn with_max_order(mut self, order: usize) -> Self {
        self.max_order = Some(order);
        self
    }

    /// The sampling scheme.
    pub fn sampling(&self) -> &Sampling {
        &self.sampling
    }

    /// The relative truncation tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The order cap, if any.
    pub fn max_order(&self) -> Option<usize> {
        self.max_order
    }
}

/// The factored sample matrix `ZW` — PMTBR's intermediate product.
///
/// Exposed separately (C-INTERMEDIATE) because the experiments consume
/// it directly: Fig. 5 plots its singular values against exact Hankel
/// values, Fig. 6 measures subspace angles of its leading vectors, and
/// Fig. 8 tracks singular-value convergence as samples accumulate.
#[derive(Debug, Clone)]
pub struct SampleBasis {
    /// Thin SVD of the realified, weighted sample matrix.
    pub svd: Svd<f64>,
    /// The quadrature nodes that produced it.
    pub points: Vec<SamplePoint>,
}

impl SampleBasis {
    /// Singular values of `ZW` (squared, these estimate Gramian
    /// eigenvalues; directly, they estimate Hankel singular values in
    /// the symmetric case).
    pub fn singular_values(&self) -> &[f64] {
        &self.svd.s
    }

    /// Error estimate for each order `q`: the trailing sum
    /// `Σ_{i≥q} σᵢ` (index 0 = estimate for the order-0 model).
    pub fn error_estimates(&self) -> Vec<f64> {
        let s = &self.svd.s;
        let mut tails = vec![0.0; s.len() + 1];
        for i in (0..s.len()).rev() {
            tails[i] = tails[i + 1] + s[i];
        }
        tails
    }

    /// Smallest order whose trailing singular-value sum drops below
    /// `tol` (absolute), per the paper's Section V-B criterion.
    pub fn suggest_order(&self, tol: f64) -> usize {
        let tails = self.error_estimates();
        tails.iter().position(|&t| t < tol).unwrap_or(self.svd.s.len())
    }

    /// The projection basis spanned by the `order` dominant directions.
    ///
    /// # Panics
    ///
    /// Panics if `order` exceeds the number of computed directions.
    pub fn basis(&self, order: usize) -> DMat {
        self.svd.u.leading_cols(order)
    }
}

/// Computes the PMTBR sample basis for a system under a sampling scheme.
///
/// Runs the shared pipeline sweep stage ([`crate::pipeline`]) in strict
/// mode (no fault injection): sparse descriptor systems reuse one
/// symbolic LU analysis across all sample points and fan the numeric
/// work across threads (`PMTBR_THREADS` overrides the count). Results
/// are identical for every thread count, and bit-identical to the
/// per-variant solve loops this path replaced.
///
/// Strict means strict: where [`crate::sample_basis_tolerant`] degrades
/// the quadrature, this function turns any dropped sample point into an
/// error (the ladder may still repair transient trouble — e.g. by
/// refinement — without affecting the result).
///
/// # Errors
///
/// - Propagates sampling validation and shifted-solve errors; the first
///   dropped point's underlying solver error is returned verbatim.
/// - [`NumError::InvalidArgument`] if every weighted sample vanished.
pub fn sample_basis<S: LtiSystem + ?Sized>(
    sys: &S,
    sampling: &Sampling,
) -> Result<SampleBasis, NumError> {
    let SweptSamples { kept, zmat, surviving, requested, reports, mut span, .. } =
        crate::pipeline::sweep(
            sys,
            sampling,
            &InputDirections::IdentityBlock,
            false,
            &RecoveryPolicy::default(),
            &NoFaults,
            None,
        )?;
    if surviving < requested {
        // Strict contract: a dropped node is an error, not degradation.
        let cause = reports
            .iter()
            .find_map(|r| if r.outcome.is_dropped() { r.error.clone() } else { None });
        return Err(cause.unwrap_or(NumError::InvalidArgument("sample point dropped")));
    }
    let svd = robust_svd(&zmat)?.0;
    span.field_u64("surviving", surviving as u64);
    span.field_u64("total_cols", zmat.ncols() as u64);
    drop(span);
    Ok(SampleBasis { svd, points: kept })
}

/// A reduced model produced by any PMTBR variant.
#[derive(Debug, Clone)]
pub struct PmtbrModel {
    /// The reduced model (congruence-projected: `W = V`).
    pub reduced: StateSpace,
    /// The projection basis (`n × order`).
    pub v: DMat,
    /// All singular values of the sample matrix (before truncation).
    pub singular_values: Vec<f64>,
    /// The realized order.
    pub order: usize,
    /// Trailing singular-value sum at the realized order — the PMTBR
    /// error estimate (not a strict bound; see paper Section V-B).
    pub error_estimate: f64,
}

/// Runs PMTBR (Algorithm 1) end to end.
///
/// Equivalent to executing [`ReductionPlan::pmtbr`] through
/// [`crate::pipeline::run`]: the sweep honors `PMTBR_FAULT` (degrading
/// gracefully and discarding the per-point account — use
/// [`crate::pmtbr_tolerant`] or the pipeline API to inspect it) and is
/// traced under the `pmtbr.sample_sweep` span.
///
/// # Errors
///
/// Propagates sampling, solve, SVD, and projection errors.
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use pmtbr::{pmtbr, PmtbrOptions, Sampling};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0)?;
/// let opts = PmtbrOptions::new(Sampling::Linear { omega_max: 10.0, n: 15 })
///     .with_max_order(6);
/// let model = pmtbr(&sys, &opts)?;
/// assert!(model.order <= 6);
/// assert!(model.reduced.is_stable()?);
/// # Ok(())
/// # }
/// ```
pub fn pmtbr<S: LtiSystem + ?Sized>(sys: &S, opts: &PmtbrOptions) -> Result<PmtbrModel, NumError> {
    Ok(crate::pipeline::run(sys, &ReductionPlan::pmtbr(opts))?.model)
}

/// Projects a system onto a precomputed [`SampleBasis`] under the given
/// truncation options — the second half of Algorithm 1, split out so
/// multiple orders can be extracted from one (expensive) sampling pass.
///
/// # Errors
///
/// Propagates projection errors (e.g. a singular reduced descriptor).
pub fn reduce_with_basis<S: LtiSystem + ?Sized>(
    sys: &S,
    basis: &SampleBasis,
    opts: &PmtbrOptions,
) -> Result<PmtbrModel, NumError> {
    let s = basis.singular_values();
    if s.is_empty() || s[0] == 0.0 {
        return Err(NumError::InvalidArgument("sample basis is empty"));
    }
    let by_tol = s.iter().take_while(|&&x| x > opts.tolerance() * s[0]).count().max(1);
    let order = opts.max_order().map_or(by_tol, |cap| by_tol.min(cap)).min(s.len());
    let v = basis.basis(order);
    let reduced = sys.project(&v, &v)?;
    Ok(PmtbrModel {
        reduced,
        v,
        singular_values: s.to_vec(),
        order,
        error_estimate: s.iter().skip(order).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{clock_tree, rc_mesh};
    use numkit::c64;

    #[test]
    fn equilibrated_svd_matches_direct_on_graded_columns() {
        // Full-rank columns spanning 12 orders of magnitude — the regime
        // where the plain Jacobi sweep budget is under the most pressure.
        // Distinct frequencies per column keep the matrix full rank.
        let a = DMat::from_fn(8, 5, |i, j| {
            let scale = 10f64.powi(-3 * j as i32);
            scale * ((i * 7 + 1) as f64 * (0.37 + 0.11 * j as f64)).sin()
        });
        let direct = svd(&a).unwrap();
        let equil = super::equilibrated_svd(&a, 400).unwrap();
        assert_eq!(direct.s.len(), equil.s.len());
        for (d, e) in direct.s.iter().zip(&equil.s) {
            assert!((d - e).abs() <= 1e-10 * direct.s[0], "{d} vs {e}");
        }
        // The recombination must be an actual factorization of A.
        let k = equil.s.len();
        let mut recon = DMat::zeros(8, 5);
        for i in 0..8 {
            for j in 0..5 {
                for t in 0..k {
                    recon[(i, j)] += equil.u[(i, t)] * equil.s[t] * equil.v[(j, t)];
                }
            }
        }
        assert!((&recon - &a).norm_max() < 1e-12 * direct.s[0]);
        // And U must be orthonormal.
        let g = equil.u.transpose().matmul(&equil.u).unwrap();
        let ortho = (&g - &DMat::identity(k)).norm_max();
        assert!(ortho < 1e-12, "orthonormality defect {ortho}");
    }

    #[test]
    fn equilibrated_svd_truncates_rank_deficient_input_cleanly() {
        // Every column is a combination of one sin/cos pair → rank 2.
        // The equilibrated path must truncate the noise directions
        // instead of returning non-orthogonal null vectors.
        let a = DMat::from_fn(8, 5, |i, j| {
            let scale = 10f64.powi(-3 * j as i32);
            scale * ((i * 7 + j * 3 + 1) as f64 * 0.37).sin()
        });
        let equil = super::equilibrated_svd(&a, 400).unwrap();
        let k = equil.s.len();
        assert!(k < 5, "noise directions must be truncated: {:?}", equil.s);
        assert!(equil.s[1] > 1e-12 * equil.s[0], "both true directions kept");
        let g = equil.u.transpose().matmul(&equil.u).unwrap();
        let ortho = (&g - &DMat::identity(k)).norm_max();
        assert!(ortho < 1e-12, "orthonormality defect {ortho}");
        let direct = svd(&a).unwrap();
        for (d, e) in direct.s.iter().take(2).zip(&equil.s) {
            assert!((d - e).abs() <= 1e-10 * direct.s[0], "{d} vs {e}");
        }
    }

    #[test]
    fn options_builder() {
        let opts = PmtbrOptions::new(Sampling::Linear { omega_max: 1.0, n: 2 })
            .with_tolerance(1e-6)
            .with_max_order(3);
        assert_eq!(opts.tolerance(), 1e-6);
        assert_eq!(opts.max_order(), Some(3));
    }

    #[test]
    fn pmtbr_reduces_rc_mesh_accurately() {
        let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0).unwrap();
        let opts =
            PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 25 }).with_max_order(8);
        let m = pmtbr(&sys, &opts).unwrap();
        assert!(m.order <= 8);
        for &w in &[0.0f64, 0.3, 1.0, 5.0] {
            let s = c64::new(0.0, w);
            let h = sys.transfer_function(s).unwrap();
            let hr = m.reduced.transfer_function(s).unwrap();
            let err = (&h - &hr).norm_max();
            assert!(err < 1e-3 * h.norm_max().max(1e-12), "w={w}: error {err}");
        }
    }

    #[test]
    fn singular_values_decay_for_low_order_system() {
        let sys = clock_tree(4, 1.0, 1.0, 0.5, 2.0).unwrap();
        let basis =
            sample_basis(&sys, &Sampling::Linear { omega_max: 10.0, n: 30 }).unwrap();
        let s = basis.singular_values();
        assert!(s[10] < 1e-8 * s[0], "clock tree must be intrinsically low order");
        // Error estimates are non-increasing tail sums.
        let est = basis.error_estimates();
        for w in est.windows(2) {
            assert!(w[0] >= w[1] - 1e-15);
        }
    }

    #[test]
    fn suggest_order_matches_tail_definition() {
        let sys = clock_tree(3, 1.0, 1.0, 0.5, 2.0).unwrap();
        let basis =
            sample_basis(&sys, &Sampling::Linear { omega_max: 10.0, n: 20 }).unwrap();
        let q = basis.suggest_order(1e-6);
        let tail: f64 = basis.singular_values().iter().skip(q).sum();
        assert!(tail < 1e-6);
        if q > 0 {
            let tail_prev: f64 = basis.singular_values().iter().skip(q - 1).sum();
            assert!(tail_prev >= 1e-6);
        }
    }

    #[test]
    fn tolerance_controls_order() {
        let sys = rc_mesh(4, 4, &[0], 1.0, 1.0, 2.0).unwrap();
        let sampling = Sampling::Linear { omega_max: 20.0, n: 20 };
        let loose = pmtbr(&sys, &PmtbrOptions::new(sampling.clone()).with_tolerance(1e-2))
            .unwrap();
        let tight = pmtbr(&sys, &PmtbrOptions::new(sampling).with_tolerance(1e-12)).unwrap();
        assert!(loose.order < tight.order, "{} !< {}", loose.order, tight.order);
    }

    #[test]
    fn projection_basis_is_orthonormal() {
        let sys = rc_mesh(3, 3, &[0, 8], 1.0, 1.0, 2.0).unwrap();
        let m = pmtbr(
            &sys,
            &PmtbrOptions::new(Sampling::Linear { omega_max: 10.0, n: 10 }).with_max_order(5),
        )
        .unwrap();
        let g = &m.v.transpose() * &m.v;
        assert!((&g - &DMat::identity(m.order)).norm_max() < 1e-10);
    }

    #[test]
    fn log_sampling_works_on_wide_dynamics() {
        let sys = clock_tree(4, 1.0, 1.0, 0.5, 2.0).unwrap();
        let m = pmtbr(
            &sys,
            &PmtbrOptions::new(Sampling::Log { omega_min: 1e-3, omega_max: 1e3, n: 25 })
                .with_max_order(8),
        )
        .unwrap();
        let s = c64::new(0.0, 0.1);
        let h = sys.transfer_function(s).unwrap()[(0, 0)];
        let hr = m.reduced.transfer_function(s).unwrap()[(0, 0)];
        assert!((h - hr).abs() < 1e-4 * h.abs());
    }
}
