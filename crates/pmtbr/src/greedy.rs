//! Greedy adaptive frequency selection with a frequency-aware stopping
//! rule (`Sampling::Greedy`).
//!
//! Fixed-grid quadrature spends one LU-backed shifted solve per node
//! whether or not the node teaches the basis anything. The greedy stage
//! inverts the cost model (greedy rational approximation in the spirit
//! of Bělík/Chen/Narayan): every *candidate* frequency is scored by a
//! cheap solve-free error surrogate, and only the argmax candidate is
//! promoted to a real tolerant solve. Selection stops when the surrogate
//! and the reduced transfer function have both stabilized over the band
//! — the frequency-aware convergence criterion of the extended-Krylov
//! balanced-truncation literature (Giamouzis et al.) — or when the hard
//! shift budget runs out.
//!
//! The candidate pool reuses `Sampling::Linear`'s midpoint rule, and by
//! default it *is* the shift budget's own quadrature grid: greedy then
//! orders the grid best-first and the stopping rule decides how much of
//! it to spend, so `tol = 0` with a pool-sized budget reproduces the
//! fixed grid exactly. A denser pool (`pool > max_shifts`) buys
//! off-grid placement freedom at the cost of a lumpier Voronoi
//! quadrature — useful for sharply peaked responses — and leaves spare
//! candidates for fault re-entry.
//!
//! # The surrogate
//!
//! With `V` an orthonormal basis of the realified samples accepted so
//! far (truncated to its [`SURROGATE_CAP`] dominant directions), the
//! one-sided Galerkin reduced model at a candidate `s = jω_c` is
//!
//! ```text
//! (Vᵀ(sE − A)V)·x̂(s) = VᵀB ,      Ĥ(s) = C·V·x̂(s) + D ,
//! r(s) = B − (sE − A)·V·x̂(s) ,
//!             ‖r(s)‖_F                    ‖B‖_F
//! η(s) = ─────────────────────────── · ──────────
//!        |s|·‖EVx̂‖_F + ‖AVx̂‖_F       ‖Ĥ(s)‖_F
//! ```
//!
//! (see [`Surrogate::score`] for why each factor is there).
//!
//! Everything here is factorization-free: `E·V` and `A·V` come from two
//! [`LtiSystem::apply_shifted`] pencil applications per round (cheap
//! sparse matvecs), each candidate then costs one `k × k` dense solve
//! with `k ≤ SURROGATE_CAP`. The LU factorizations counted by
//! `obs::Counter::LuFactor` are spent only on *accepted* shifts, inside
//! the same tolerant escalation ladder every fixed-grid sweep uses — so
//! greedy composes with the recovery ladder (a dropped shift re-enters
//! selection instead of silently shrinking the basis), with
//! `pmtbr::Budget`'s LU node cap, and with `PMTBR_FAULT` chaos testing.
//!
//! The driver is strictly sequential (the parallelism lives inside each
//! tolerant solve), so the selected shifts, the trace events, and the
//! `GREEDY_SCORED` / `GREEDY_ACCEPTED` counters are bit-identical at
//! any thread count.
//!
//! See `docs/SAMPLING.md` for the full derivation and the paper-to-code
//! map.

use lti::{realify_columns, LtiSystem, RecoveryPolicy, ShiftReport, SolveFault};
use numkit::{c64, Lu, NumError, ZMat};

use crate::order_control::IncrementalBasis;
use crate::pipeline::{realify_blocks, SweptSamples};
use crate::SamplePoint;

/// Column cap on the surrogate basis `V`: per-candidate scoring solves a
/// `k × k` system with `k ≤ SURROGATE_CAP`, so scoring stays cheap even
/// when many wide (multi-port) sample blocks have been accepted.
pub(crate) const SURROGATE_CAP: usize = 1024;

/// Realified-column drop tolerance, shared with the pipeline sweep.
const REALIFY_TOL: f64 = 1e-13;

/// Re-indexes the caller's fault hook so each candidate keeps its own
/// deterministic fault stream: greedy promotes shifts through
/// *single-shift* tolerant solves, whose internal index is always 0, and
/// without the offset every solve of a run would share fault decisions.
struct OffsetFaults<'a> {
    inner: &'a dyn SolveFault,
    offset: usize,
}

impl SolveFault for OffsetFaults<'_> {
    fn inject_error(&self, index: usize, attempt: usize) -> Option<NumError> {
        self.inner.inject_error(self.offset + index, attempt)
    }

    fn corrupt(&self, index: usize, attempt: usize, z: &mut ZMat) {
        self.inner.corrupt(self.offset + index, attempt, z);
    }

    fn inject_panic(&self, index: usize) -> bool {
        self.inner.inject_panic(self.offset + index)
    }
}

/// Per-round projected quantities, rebuilt after every accepted shift.
struct Surrogate {
    /// `E·V` and `A·V`, recovered from two pencil applications of the
    /// orthonormal surrogate basis `V` (≤ [`SURROGATE_CAP`] columns).
    ev: ZMat,
    av: ZMat,
    /// Projected pencil factors `VᵀEV`, `VᵀAV` (`k × k`).
    er: ZMat,
    ar: ZMat,
    /// Projected input `VᵀB` (`k × p`).
    bh: ZMat,
    /// Output map `C·V` (`q × k`).
    cv: ZMat,
}

impl Surrogate {
    /// Builds the round's projected model from the truncated basis.
    fn build<S: LtiSystem + ?Sized>(
        sys: &S,
        basis: &IncrementalBasis,
        b: &ZMat,
    ) -> Result<Surrogate, NumError> {
        let k = basis.rank().min(SURROGATE_CAP);
        let v = basis.dominant_basis(k)?;
        let vz = v.to_complex();
        // (1·E − A)·V − (0·E − A)·V = E·V ; −(0·E − A)·V = A·V.
        let p1 = sys.apply_shifted(c64::ONE, &vz)?;
        let p0 = sys.apply_shifted(c64::ZERO, &vz)?;
        let ev = ZMat::from_fn(p1.nrows(), p1.ncols(), |i, j| p1[(i, j)] - p0[(i, j)]);
        let av = ZMat::from_fn(p0.nrows(), p0.ncols(), |i, j| -p0[(i, j)]);
        let vt = v.transpose().to_complex();
        let er = vt.matmul(&ev)?;
        let ar = vt.matmul(&av)?;
        let bh = vt.matmul(b)?;
        let cv = sys.output_matrix().to_complex().matmul(&vz)?;
        Ok(Surrogate { ev, av, er, ar, bh, cv })
    }

    /// Scores one candidate: the *relative-error–aligned* pencil
    /// residual of the projected solution, and the reduced transfer
    /// function at `s` (for the frequency-aware stopping rule).
    ///
    /// Two normalizations turn the raw residual into a useful
    /// indicator:
    ///
    /// - The raw `‖r‖ = ‖B − (sE − A)·V·x̂‖` amplifies the solution
    ///   error by the pencil's norm — at `s = jω` that grows like
    ///   `ω·‖E‖`, which would bias selection toward the top of the band
    ///   regardless of where the model is actually wrong. Dividing by
    ///   the pencil's action on the projected solution,
    ///   `|s|·‖EVx̂‖ + ‖AVx̂‖`, converts it into a backward-error-like
    ///   measure of the *solution* mismatch, uniform across the band.
    ///
    /// - The bench metric is the *relative* transfer error
    ///   `‖H − Ĥ‖/‖H‖`, and low-pass responses roll off with ω: the
    ///   same backward error produces a much larger relative output
    ///   error where `‖Ĥ(s)‖` is small. Multiplying by
    ///   `‖B‖/‖Ĥ(s)‖` keeps rolled-off candidates scoring high until
    ///   the model is relatively — not just absolutely — converged
    ///   there. (`‖B‖` makes the score invariant under input scaling;
    ///   within a round it is a constant and never reorders
    ///   candidates.)
    ///
    /// A singular projected pencil scores `+∞` — the candidate sits on
    /// a feature the basis cannot represent yet, exactly what greedy
    /// wants to sample next.
    fn score(
        &self,
        s: c64,
        b: &ZMat,
        bnorm: f64,
        d: &ZMat,
    ) -> Result<(f64, Option<ZMat>), NumError> {
        let k = self.er.nrows();
        let hr = ZMat::from_fn(k, k, |i, j| s * self.er[(i, j)] - self.ar[(i, j)]);
        let xhat = match Lu::new(hr).and_then(|lu| lu.solve_mat(&self.bh)) {
            Ok(x) => x,
            Err(NumError::Singular { .. }) | Err(NumError::NotFinite) => {
                return Ok((f64::INFINITY, None));
            }
            Err(e) => return Err(e),
        };
        let evx = self.ev.matmul(&xhat)?;
        let avx = self.av.matmul(&xhat)?;
        let resid = ZMat::from_fn(b.nrows(), b.ncols(), |i, j| {
            b[(i, j)] - (s * evx[(i, j)] - avx[(i, j)])
        });
        let cvx = self.cv.matmul(&xhat)?;
        let h = ZMat::from_fn(cvx.nrows(), cvx.ncols(), |i, j| cvx[(i, j)] + d[(i, j)]);
        let pencil = s.abs() * evx.norm_fro() + avx.norm_fro();
        let den = (pencil * h.norm_fro() / bnorm.max(1e-300)).max(1e-300);
        let eta = resid.norm_fro() / den;
        Ok((eta, Some(h)))
    }
}

/// One promoted candidate: the tolerant solve's outputs, kept until the
/// final Voronoi weighting.
struct Accepted {
    /// Candidate index in the pool (defines the Voronoi geometry).
    cand: usize,
    /// The shift actually solved (perturbed where the ladder nudged).
    s_used: c64,
    /// Forward (controllability) solution.
    z: ZMat,
    /// Transposed (observability) solution, two-sided compressors only.
    zl: Option<ZMat>,
}

/// Runs greedy selection and packages the result as the sweep stage's
/// output. Called by `pipeline::sweep` when the plan's sampling is
/// [`crate::Sampling::Greedy`]; see the module docs for the algorithm.
#[allow(clippy::too_many_arguments)]
pub(crate) fn greedy_sweep<S: LtiSystem + ?Sized>(
    sys: &S,
    omega_max: f64,
    pool: usize,
    tol: f64,
    max_shifts: usize,
    two_sided: bool,
    policy: &RecoveryPolicy,
    faults: &dyn SolveFault,
    node_cap: Option<usize>,
) -> Result<SweptSamples, NumError> {
    if !(omega_max > 0.0) || !(tol >= 0.0) || !tol.is_finite() {
        return Err(NumError::InvalidArgument(
            "greedy sampling needs ω_max > 0 and a finite tol >= 0",
        ));
    }
    if max_shifts == 0 || pool < max_shifts {
        return Err(NumError::InvalidArgument(
            "greedy sampling needs 1 <= max_shifts <= pool",
        ));
    }
    let cap = node_cap.unwrap_or(usize::MAX);
    if cap == 0 {
        return Err(NumError::BudgetExhausted { resource: "lu-factorizations" });
    }

    let mut sp = obs::span("pmtbr.sample_sweep");
    sp.field_str("sampling", "greedy");
    sp.field_u64("pool", pool as u64);
    sp.field_f64("greedy_tol", tol);
    sp.field_u64("max_shifts", max_shifts as u64);

    // Candidate pool: the same midpoint rule as Sampling::Linear, so the
    // pool never touches a dc pole and a pool-sized selection reproduces
    // the fixed grid's node positions.
    let dw = omega_max / pool as f64;
    let omega = |c: usize| dw * (c as f64 + 0.5);
    let mut remaining: Vec<usize> = (0..pool).collect();

    let b = sys.input_matrix().to_complex();
    let bnorm = b.norm_fro().max(1e-300);
    let d = sys.feedthrough().to_complex();
    let ct = if two_sided {
        Some(sys.output_matrix().adjoint().to_complex())
    } else {
        None
    };

    let mut basis = IncrementalBasis::new(sys.nstates());
    let mut accepted: Vec<Accepted> = Vec::new();
    let mut reports: Vec<ShiftReport> = Vec::new();
    let mut attempts = 0usize;
    let mut scored_total = 0u64;
    let mut budget_truncated = 0usize;
    // Reduced transfer function per candidate from the previous round,
    // for the frequency-aware stopping rule.
    let mut prev_h: Vec<Option<ZMat>> = vec![None; pool];
    let mut stop_reason = "max-shifts";

    while accepted.len() < max_shifts {
        if remaining.is_empty() {
            stop_reason = "pool-exhausted";
            break;
        }
        if attempts >= cap {
            // The LU budget ran dry before the stopping rule fired:
            // account for the unexplored shift allowance as
            // budget-dropped nodes so the pipeline report records the
            // exhaustion and weight renormalization stays honest.
            budget_truncated = remaining.len().min(max_shifts - accepted.len());
            for &c in remaining.iter().take(budget_truncated) {
                obs::counters::add(obs::Counter::ShiftDropped, 1);
                reports.push(ShiftReport::dropped(
                    reports.len(),
                    c64::new(0.0, omega(c)),
                    Some(NumError::BudgetExhausted { resource: "lu-factorizations" }),
                ));
            }
            stop_reason = "lu-budget";
            break;
        }

        // Score the pool (skipped while the basis is empty: every
        // candidate ties at η = 1, and the lowest-index rule seeds the
        // lowest pool frequency).
        let pick = if accepted.is_empty() {
            remaining[0]
        } else {
            let surr = Surrogate::build(sys, &basis, &b)?;
            let mut best_score = f64::NEG_INFINITY;
            let mut best = remaining[0];
            let mut h_scale: f64 = 0.0;
            let mut h_change: f64 = 0.0;
            let mut round_h: Vec<(usize, ZMat)> = Vec::with_capacity(remaining.len());
            for &c in &remaining {
                let s = c64::new(0.0, omega(c));
                let (eta, h) = surr.score(s, &b, bnorm, &d)?;
                scored_total += 1;
                obs::counters::add(obs::Counter::GreedyScored, 1);
                // Strict `>` keeps the lowest candidate index on ties.
                if eta > best_score {
                    best_score = eta;
                    best = c;
                }
                if let Some(h) = h {
                    h_scale = h_scale.max(h.norm_fro());
                    if let Some(old) = &prev_h[c] {
                        let diff = ZMat::from_fn(h.nrows(), h.ncols(), |i, j| {
                            h[(i, j)] - old[(i, j)]
                        });
                        h_change = h_change.max(diff.norm_fro());
                    }
                    round_h.push((c, h));
                }
            }
            let had_prev = prev_h.iter().any(|h| h.is_some());
            for (c, h) in round_h {
                prev_h[c] = Some(h);
            }
            // Frequency-aware stopping: the surrogate residual has
            // converged over the band, or the reduced transfer function
            // stopped moving between consecutive rounds.
            if best_score < tol {
                stop_reason = "surrogate-converged";
                break;
            }
            if had_prev && h_scale > 0.0 && h_change < tol * h_scale {
                stop_reason = "transfer-converged";
                break;
            }
            best
        };

        // Promote the winner through the tolerant ladder (one LU-backed
        // solve, both pencils for two-sided compressors).
        let s_req = c64::new(0.0, omega(pick));
        let hooked = OffsetFaults { inner: faults, offset: pick };
        attempts += 1;
        let (mut rep, fwd_z, trans_z) = match &ct {
            Some(ct) => {
                let (f, t) =
                    sys.solve_shifted_two_sided_tolerant(&[s_req], &b, ct, policy, &hooked);
                let f_ok = f.solutions[0].is_some();
                let t_ok = t.solutions[0].is_some();
                let rep = if f_ok && !t_ok { t.reports[0].clone() } else { f.reports[0].clone() };
                (rep, f.solutions.into_iter().next().flatten(), t.solutions.into_iter().next().flatten())
            }
            None => {
                let f = sys.solve_shifted_many_tolerant(&[s_req], &b, policy, &hooked);
                (f.reports[0].clone(), f.solutions.into_iter().next().flatten(), None)
            }
        };
        rep.index = reports.len();
        let alive = fwd_z.is_some() && (ct.is_none() || trans_z.is_some());
        if obs::is_enabled() {
            obs::event(
                "greedy_pick",
                vec![
                    ("cand", obs::Value::U64(pick as u64)),
                    ("omega", obs::Value::F64(omega(pick))),
                    ("accepted", obs::Value::Bool(alive)),
                ],
            );
        }
        // Selection re-enters after a drop: the candidate leaves the
        // pool, its report stays, and the loop keeps scoring the rest —
        // a faulted shift never silently shrinks the shift budget's
        // worth of basis.
        remaining.retain(|&c| c != pick);
        if alive {
            let z = fwd_z.ok_or(NumError::InvalidArgument("greedy: missing accepted solve"))?;
            basis.push_block(&realify_columns(&z, REALIFY_TOL))?;
            obs::counters::add(obs::Counter::GreedyAccepted, 1);
            accepted.push(Accepted { cand: pick, s_used: rep.s_used, z, zl: trans_z });
        }
        reports.push(rep);
    }

    if accepted.is_empty() {
        return Err(NumError::InvalidArgument(
            "every sample point was dropped by the fault-tolerance ladder",
        ));
    }

    // Voronoi-cell quadrature weights: each accepted frequency owns the
    // band segment closer to it than to any other accepted frequency,
    // so the weights tile [0, ω_max] exactly (renormalization stays 1 —
    // dropped candidates re-entered selection instead of losing mass).
    let weights = voronoi_weights(
        &accepted.iter().map(|a| omega(a.cand)).collect::<Vec<f64>>(),
        omega_max,
    );

    let mut kept: Vec<SamplePoint> = Vec::with_capacity(accepted.len());
    let mut weighted: Vec<ZMat> = Vec::with_capacity(accepted.len());
    let mut weighted_l: Vec<ZMat> = Vec::new();
    for (a, &w) in accepted.iter().zip(&weights) {
        kept.push(SamplePoint { s: a.s_used, weight: w });
        obs::counters::add(
            obs::Counter::SampleBytes,
            (a.z.nrows() * a.z.ncols() * 16) as u64,
        );
        weighted.push(a.z.scale(w.sqrt()));
        if let Some(zl) = &a.zl {
            obs::counters::add(
                obs::Counter::SampleBytes,
                (zl.nrows() * zl.ncols() * 16) as u64,
            );
            weighted_l.push(zl.scale(w.sqrt()));
        }
    }
    let n = sys.nstates();
    let (zmat, blocks) = realify_blocks(n, &weighted)?;
    let zl = if two_sided {
        let (zl, _) = realify_blocks(n, &weighted_l)?;
        Some(zl)
    } else {
        None
    };

    sp.field_u64("requested", reports.len() as u64);
    sp.field_u64("scored", scored_total);
    sp.field_str("greedy_stop", stop_reason);
    let surviving = accepted.len();
    let requested = reports.len();
    Ok(SweptSamples {
        kept,
        zmat,
        blocks,
        zl,
        reports,
        requested,
        surviving,
        renorm: 1.0,
        budget_truncated,
        span: sp,
    })
}

/// Voronoi cell lengths of `omegas` (in acceptance order) over
/// `[0, omega_max]`: the cell of each frequency runs from the midpoint
/// to its lower neighbor (or 0) up to the midpoint to its upper
/// neighbor (or `omega_max`). The weights sum to `omega_max`.
fn voronoi_weights(omegas: &[f64], omega_max: f64) -> Vec<f64> {
    let mut order: Vec<usize> = (0..omegas.len()).collect();
    order.sort_by(|&a, &b| omegas[a].total_cmp(&omegas[b]));
    let mut weights = vec![0.0; omegas.len()];
    for (rank, &i) in order.iter().enumerate() {
        let lo = if rank == 0 {
            0.0
        } else {
            (omegas[order[rank - 1]] + omegas[i]) / 2.0
        };
        let hi = if rank + 1 == order.len() {
            omega_max
        } else {
            (omegas[i] + omegas[order[rank + 1]]) / 2.0
        };
        weights[i] = (hi - lo).max(0.0);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voronoi_weights_tile_the_band() {
        // Acceptance order deliberately unsorted.
        let w = voronoi_weights(&[6.0, 2.0, 9.0], 10.0);
        let total: f64 = w.iter().sum();
        assert!((total - 10.0).abs() < 1e-12, "weights must tile the band: {total}");
        // Cells: [0,4), [4,7.5), [7.5,10] for ω = 2, 6, 9.
        assert!((w[1] - 4.0).abs() < 1e-12);
        assert!((w[0] - 3.5).abs() < 1e-12);
        assert!((w[2] - 2.5).abs() < 1e-12);
    }

    #[test]
    fn single_point_owns_the_whole_band() {
        let w = voronoi_weights(&[3.0], 10.0);
        assert_eq!(w.len(), 1);
        assert!((w[0] - 10.0).abs() < 1e-12);
    }
}
