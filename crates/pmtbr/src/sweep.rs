//! Fault-tolerant PMTBR sweeps: partial sampling with quadrature-weight
//! renormalization and full per-shift diagnostics.
//!
//! PMTBR's sample matrix is a numerical quadrature of the Gramian
//! integral (paper eq. (8)–(11)), so a failed sample point is a lost
//! quadrature node — the right response is to *degrade* the rule, not
//! abort the reduction. [`sample_basis_tolerant`] runs the multipoint
//! sweep through the escalation ladder
//! ([`LtiSystem::solve_shifted_many_tolerant`]), builds the basis from
//! the surviving columns, and renormalizes the surviving quadrature
//! weights so they still carry the full rule's mass:
//!
//! ```text
//! w̃ₖ = wₖ · Σall w / Σsurviving w
//! ```
//!
//! The renormalization is a single uniform scale factor, so it cannot
//! rotate the sample subspace — it only restores the magnitude of the
//! Gramian estimate (and hence the singular-value/error scale) that the
//! dropped nodes would have contributed.
//!
//! Every sweep returns a [`SweepDiagnostics`] accounting for the fate
//! of *each* requested sample point, which the CLI surfaces as a
//! degradation report and exit-code policy.

use lti::{LtiSystem, RecoveryPolicy, ShiftOutcome, ShiftReport, SolveFault};
use numkit::NumError;

use crate::algorithm::{robust_svd, PmtbrModel, PmtbrOptions, SampleBasis};
use crate::pipeline::{InputDirections, ReductionPlan, SweptSamples};
use crate::Sampling;

/// The complete account of a fault-tolerant sampling sweep.
#[derive(Debug, Clone)]
pub struct SweepDiagnostics {
    /// Per-shift ladder reports, index-aligned with the requested
    /// sample points (every requested point appears exactly once).
    pub reports: Vec<ShiftReport>,
    /// Number of sample points requested.
    pub requested: usize,
    /// Number of sample points that produced a basis column block.
    pub surviving: usize,
    /// The uniform factor applied to surviving quadrature weights
    /// (`1.0` for a complete sweep).
    pub weight_renormalization: f64,
    /// Whether the sample-matrix SVD needed the equilibrated retry.
    pub svd_retried: bool,
}

impl SweepDiagnostics {
    /// Number of dropped sample points.
    pub fn dropped(&self) -> usize {
        self.requested - self.surviving
    }

    /// `true` when any sample point was dropped or perturbed — i.e. the
    /// sweep did not execute exactly as requested.
    pub fn is_degraded(&self) -> bool {
        self.dropped() > 0
            || self.reports.iter().any(|r| matches!(r.outcome, ShiftOutcome::Perturbed { .. }))
    }

    /// Count of reports with the given outcome label (see
    /// [`ShiftOutcome::label`]).
    pub fn count(&self, label: &str) -> usize {
        self.reports.iter().filter(|r| r.outcome.label() == label).count()
    }

    /// Worst (smallest) reciprocal condition estimate among accepted
    /// solves; `NaN` when none was estimated.
    pub fn worst_rcond(&self) -> f64 {
        self.reports
            .iter()
            .filter(|r| !r.outcome.is_dropped())
            .map(|r| r.rcond)
            .filter(|r| r.is_finite())
            .fold(f64::NAN, |acc, r| if acc.is_nan() || r < acc { r } else { acc })
    }

    /// Largest certified residual among accepted solves; `NaN` when no
    /// sample survived.
    pub fn worst_residual(&self) -> f64 {
        self.reports
            .iter()
            .filter(|r| !r.outcome.is_dropped())
            .map(|r| r.residual)
            .fold(f64::NAN, |acc, r| if acc.is_nan() || r > acc { r } else { acc })
    }

    /// A one-paragraph human-readable account, used by the CLI's
    /// degradation report.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "sweep: {}/{} sample points survived",
            self.surviving, self.requested
        );
        for label in ["reused", "refactored", "refreshed", "refined", "perturbed", "dropped"] {
            let n = self.count(label);
            if n > 0 {
                s.push_str(&format!(", {n} {label}"));
            }
        }
        // numlint:allow(FLOAT01) complete sweeps give total/surviving = x/x, exactly 1.0 in IEEE; only gates a diagnostic string
        if self.weight_renormalization != 1.0 {
            s.push_str(&format!(
                ", weights renormalized by {:.6}",
                self.weight_renormalization
            ));
        }
        if self.svd_retried {
            s.push_str(", svd retried with equilibration");
        }
        if let Some(worst) = self
            .reports
            .iter()
            .filter(|r| r.outcome.is_dropped())
            .filter_map(|r| r.error.as_ref())
            .next()
        {
            s.push_str(&format!(", first drop cause: {worst}"));
        }
        s
    }
}

/// Computes the PMTBR sample basis through the fault-tolerance ladder,
/// degrading gracefully: dropped sample points lose their columns, the
/// surviving quadrature weights are renormalized, and the full
/// per-point account is returned alongside the basis.
///
/// The returned [`SampleBasis`] keeps only surviving points, each with
/// the shift *actually solved* (perturbed where the ladder had to
/// nudge) and its renormalized weight.
///
/// # Errors
///
/// - Propagates sampling validation errors.
/// - [`NumError::InvalidArgument`] if every sample point was dropped or
///   all surviving weighted samples vanished — with zero quadrature
///   nodes there is no model to build, degraded or otherwise.
pub fn sample_basis_tolerant<S: LtiSystem + ?Sized>(
    sys: &S,
    sampling: &Sampling,
    policy: &RecoveryPolicy,
    faults: &dyn SolveFault,
) -> Result<(SampleBasis, SweepDiagnostics), NumError> {
    let SweptSamples { kept, zmat, reports, requested, surviving, renorm, mut span, .. } =
        crate::pipeline::sweep(
            sys,
            sampling,
            &InputDirections::IdentityBlock,
            false,
            policy,
            faults,
            None,
        )?;
    let (svd, svd_retried) = robust_svd(&zmat)?;
    span.field_u64("surviving", surviving as u64);
    span.field_u64("total_cols", zmat.ncols() as u64);
    span.field_f64("renorm", renorm);
    span.field("svd_retried", obs::Value::Bool(svd_retried));
    drop(span);
    let diagnostics = SweepDiagnostics {
        reports,
        requested,
        surviving,
        weight_renormalization: renorm,
        svd_retried,
    };
    Ok((SampleBasis { svd, points: kept }, diagnostics))
}

/// Fault-tolerant PMTBR end to end: [`sample_basis_tolerant`] followed
/// by the usual truncation and congruence projection.
///
/// The model is built from whatever quadrature nodes survived; consult
/// the returned [`SweepDiagnostics`] (e.g.
/// [`SweepDiagnostics::is_degraded`]) to decide whether a degraded
/// sweep is acceptable — the library accepts any sweep with at least
/// one surviving sample and leaves the policy decision to the caller.
///
/// # Errors
///
/// Propagates [`sample_basis_tolerant`] and projection errors.
pub fn pmtbr_tolerant<S: LtiSystem + ?Sized>(
    sys: &S,
    opts: &PmtbrOptions,
    policy: &RecoveryPolicy,
    faults: &dyn SolveFault,
) -> Result<(PmtbrModel, SweepDiagnostics), NumError> {
    let red = crate::pipeline::run_with(sys, &ReductionPlan::pmtbr(opts), policy, faults)?;
    Ok((red.model, red.diagnostics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::{pmtbr, sample_basis};
    use circuits::rc_mesh;
    use lti::NoFaults;
    use numkit::c64;

    #[test]
    fn clean_tolerant_sweep_matches_strict_pipeline() {
        let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0).unwrap();
        let sampling = Sampling::Linear { omega_max: 20.0, n: 15 };
        let strict = sample_basis(&sys, &sampling).unwrap();
        let (tolerant, diag) = sample_basis_tolerant(
            &sys,
            &sampling,
            &RecoveryPolicy::default(),
            &NoFaults,
        )
        .unwrap();
        assert!(!diag.is_degraded());
        assert_eq!(diag.surviving, diag.requested);
        assert_eq!(diag.weight_renormalization, 1.0);
        assert_eq!(strict.svd.s.len(), tolerant.svd.s.len());
        for (a, b) in strict.svd.s.iter().zip(&tolerant.svd.s) {
            assert!((a - b).abs() <= 1e-12 * strict.svd.s[0], "{a} vs {b}");
        }
    }

    #[test]
    fn dropped_points_renormalize_weights_and_still_reduce() {
        let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0).unwrap();
        let sampling = Sampling::Linear { omega_max: 20.0, n: 16 };
        // Panic faults drop points outright — the harshest degradation.
        let plan = FaultPlan::new(11, 0.3, vec![FaultKind::Panic], 2);
        let opts = PmtbrOptions::new(sampling.clone()).with_max_order(8);
        let (model, diag) =
            pmtbr_tolerant(&sys, &opts, &RecoveryPolicy::default(), &plan).unwrap();
        assert!(diag.dropped() > 0, "plan must actually drop points");
        assert!(diag.surviving > 0);
        assert!(diag.weight_renormalization > 1.0);
        assert_eq!(diag.reports.len(), diag.requested);
        // The degraded model must still track the full model closely.
        let full = pmtbr(&sys, &opts).unwrap();
        for &w in &[0.0f64, 0.5, 2.0, 10.0] {
            let s = c64::new(0.0, w);
            let h = sys.transfer_function(s).unwrap()[(0, 0)];
            let hd = model.reduced.transfer_function(s).unwrap()[(0, 0)];
            let hf = full.reduced.transfer_function(s).unwrap()[(0, 0)];
            assert!(
                (h - hd).abs() < 1e-2 * h.abs().max(1e-12),
                "w={w}: degraded model error {}",
                (h - hd).abs()
            );
            // Sanity: the full model is also accurate (the comparison
            // above is meaningful).
            assert!((h - hf).abs() < 1e-3 * h.abs().max(1e-12));
        }
    }

    #[test]
    fn diagnostics_summary_mentions_degradation() {
        let sys = rc_mesh(3, 3, &[0, 8], 1.0, 1.0, 2.0).unwrap();
        let plan = FaultPlan::new(2, 0.4, vec![FaultKind::Panic], 2);
        let (_, diag) = sample_basis_tolerant(
            &sys,
            &Sampling::Linear { omega_max: 10.0, n: 12 },
            &RecoveryPolicy::default(),
            &plan,
        )
        .unwrap();
        let text = diag.summary();
        assert!(text.contains("sample points survived"), "{text}");
        if diag.dropped() > 0 {
            assert!(text.contains("dropped"), "{text}");
            assert!(text.contains("weights renormalized"), "{text}");
        }
    }

    #[test]
    fn all_points_dropped_is_a_clean_error() {
        let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0).unwrap();
        let plan = FaultPlan::new(1, 1.0, vec![FaultKind::Panic], 2);
        let err = sample_basis_tolerant(
            &sys,
            &Sampling::Linear { omega_max: 10.0, n: 6 },
            &RecoveryPolicy::default(),
            &plan,
        )
        .unwrap_err();
        assert!(matches!(err, NumError::InvalidArgument(_)));
    }

    #[test]
    fn drift_faults_are_repaired_not_dropped() {
        let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0).unwrap();
        let plan = FaultPlan::new(21, 0.5, vec![FaultKind::Drift], 2);
        let (_, diag) = sample_basis_tolerant(
            &sys,
            &Sampling::Linear { omega_max: 20.0, n: 12 },
            &RecoveryPolicy::default(),
            &plan,
        )
        .unwrap();
        assert_eq!(diag.dropped(), 0, "drift must never cost a sample");
        assert!(diag.count("refined") > 0, "refinement must have engaged: {}", diag.summary());
        assert!(diag.worst_residual() <= 1e-10);
    }
}
