//! Frequency sampling schemes and quadrature weights.
//!
//! Every `ZW` matrix implicitly defines a frequency weighting (paper
//! Section IV-B): the scheme chooses where the Gramian quadrature (8) is
//! sampled and with what weights. Uniform sampling approximates the
//! unweighted (TBR) Gramian on a finite band; band-restricted sampling
//! *is* the frequency-selective variant; log sampling suits systems with
//! dynamics spread over decades.

use numkit::{c64, NumError};

/// One quadrature node: a complex frequency point and its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplePoint {
    /// Complex frequency `s` (typically `jω`).
    pub s: c64,
    /// Quadrature weight `w ≥ 0` (the sample column is scaled by `√w`).
    pub weight: f64,
}

/// A frequency sampling scheme.
#[derive(Debug, Clone, PartialEq)]
pub enum Sampling {
    /// `n` uniformly spaced points on `jω`, `ω ∈ [0, omega_max]`
    /// (rectangle rule — the "very crude uniform sampling" of Fig. 8).
    Linear {
        /// Upper band edge in rad/s.
        omega_max: f64,
        /// Number of sample points.
        n: usize,
    },
    /// `n` logarithmically spaced points on `jω`,
    /// `ω ∈ [omega_min, omega_max]`, weighted by local interval length.
    Log {
        /// Lower band edge in rad/s (must be > 0).
        omega_min: f64,
        /// Upper band edge in rad/s.
        omega_max: f64,
        /// Number of sample points.
        n: usize,
    },
    /// Frequency-selective sampling: `n` points distributed over the
    /// union of bands `[lo, hi]` (in rad/s), proportionally to bandwidth
    /// (Algorithm 2's point selection).
    Bands {
        /// Bands of interest, each `(lo, hi)` in rad/s.
        bands: Vec<(f64, f64)>,
        /// Total number of sample points across all bands.
        n: usize,
    },
    /// Explicit user-chosen points and weights.
    Custom(Vec<SamplePoint>),
    /// Greedy adaptive placement over `jω`, `ω ∈ [0, omega_max]`: shifts
    /// are chosen one at a time where a cheap residual surrogate of the
    /// current projected model is largest, stopping when the surrogate
    /// and the reduced transfer function have both converged (relative
    /// tolerance `tol`) or `max_shifts` solves have been spent.
    ///
    /// Unlike the fixed-grid schemes this variant has no a-priori node
    /// list: [`Sampling::points`] errors and the pipeline sweep resolves
    /// the placement at execution time (see `pmtbr::pipeline` and
    /// `docs/SAMPLING.md`). Quadrature weights are the Voronoi cell
    /// lengths of the accepted frequencies, so they tile `[0, omega_max]`
    /// exactly like [`Sampling::Linear`]'s midpoint rule.
    Greedy {
        /// Upper band edge in rad/s.
        omega_max: f64,
        /// Candidate-pool size: the surrogate is scored on this many
        /// midpoint frequencies over the band.
        pool: usize,
        /// Relative convergence tolerance of the stopping rule
        /// (`0` disables early stopping: exactly `max_shifts` solves).
        tol: f64,
        /// Hard budget on accepted shifts (each costs one LU-backed
        /// tolerant solve).
        max_shifts: usize,
    },
}

impl Sampling {
    /// Materializes the scheme into concrete quadrature nodes.
    ///
    /// # Errors
    ///
    /// [`NumError::InvalidArgument`] for empty/degenerate parameters
    /// (zero points, non-positive band edges, inverted bands).
    pub fn points(&self) -> Result<Vec<SamplePoint>, NumError> {
        match self {
            Sampling::Linear { omega_max, n } => {
                if *n == 0 || !(*omega_max > 0.0) {
                    return Err(NumError::InvalidArgument("linear sampling needs n > 0, ω_max > 0"));
                }
                let dw = omega_max / *n as f64;
                Ok((0..*n)
                    .map(|k| SamplePoint {
                        // Midpoint rule avoids placing a sample exactly at
                        // a dc pole.
                        s: c64::new(0.0, dw * (k as f64 + 0.5)),
                        weight: dw,
                    })
                    .collect())
            }
            Sampling::Log { omega_min, omega_max, n } => {
                if *n == 0 || !(*omega_min > 0.0) || omega_max <= omega_min {
                    return Err(NumError::InvalidArgument(
                        "log sampling needs n > 0 and 0 < ω_min < ω_max",
                    ));
                }
                if *n == 1 {
                    return Ok(vec![SamplePoint {
                        s: c64::new(0.0, (omega_min * omega_max).sqrt()),
                        weight: omega_max - omega_min,
                    }]);
                }
                let lmin = omega_min.ln();
                let lmax = omega_max.ln();
                let step = (lmax - lmin) / (*n as f64 - 1.0);
                let omegas: Vec<f64> =
                    (0..*n).map(|k| (lmin + step * k as f64).exp()).collect();
                Ok((0..*n)
                    .map(|k| {
                        // Trapezoid-like local interval length as weight.
                        let lo = if k == 0 { omegas[0] } else { (omegas[k - 1] + omegas[k]) / 2.0 };
                        let hi = if k + 1 == *n {
                            omegas[*n - 1]
                        } else {
                            (omegas[k] + omegas[k + 1]) / 2.0
                        };
                        SamplePoint { s: c64::new(0.0, omegas[k]), weight: (hi - lo).max(0.0) }
                    })
                    .collect())
            }
            Sampling::Bands { bands, n } => {
                if bands.is_empty() || *n == 0 {
                    return Err(NumError::InvalidArgument("band sampling needs bands and n > 0"));
                }
                let mut total = 0.0;
                for &(lo, hi) in bands {
                    if !(hi > lo) || lo < 0.0 {
                        return Err(NumError::InvalidArgument("bands must satisfy 0 <= lo < hi"));
                    }
                    total += hi - lo;
                }
                // Allocate points proportionally to bandwidth (≥1 each).
                let mut pts = Vec::with_capacity(*n);
                let mut remaining = *n;
                for (idx, &(lo, hi)) in bands.iter().enumerate() {
                    let share = if idx + 1 == bands.len() {
                        remaining
                    } else {
                        (((hi - lo) / total * *n as f64).round() as usize)
                            .clamp(1, remaining.saturating_sub(bands.len() - idx - 1))
                    };
                    remaining -= share;
                    let dw = (hi - lo) / share as f64;
                    for k in 0..share {
                        pts.push(SamplePoint {
                            s: c64::new(0.0, lo + dw * (k as f64 + 0.5)),
                            weight: dw,
                        });
                    }
                }
                Ok(pts)
            }
            Sampling::Greedy { .. } => Err(NumError::InvalidArgument(
                "greedy sampling has no a-priori point list; execute the plan through \
                 pmtbr::pipeline (run/run_budgeted/run_guarded), which resolves the \
                 placement adaptively",
            )),
            Sampling::Custom(pts) => {
                if pts.is_empty() {
                    return Err(NumError::InvalidArgument("custom sampling needs points"));
                }
                if pts.iter().any(|p| !(p.weight >= 0.0) || !p.s.is_finite()) {
                    return Err(NumError::InvalidArgument(
                        "custom points need finite s and non-negative weights",
                    ));
                }
                Ok(pts.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_weights_sum_to_band() {
        let pts = Sampling::Linear { omega_max: 10.0, n: 8 }.points().unwrap();
        assert_eq!(pts.len(), 8);
        let total: f64 = pts.iter().map(|p| p.weight).sum();
        assert!((total - 10.0).abs() < 1e-12);
        // Midpoint rule: first point at dw/2, not 0.
        assert!(pts[0].s.im > 0.0);
    }

    #[test]
    fn log_points_are_geometric() {
        let pts = Sampling::Log { omega_min: 1.0, omega_max: 100.0, n: 3 }.points().unwrap();
        assert!((pts[1].s.im - 10.0).abs() < 1e-9);
        let total: f64 = pts.iter().map(|p| p.weight).sum();
        assert!((total - 99.0).abs() < 1e-9, "weights tile the band: {total}");
    }

    #[test]
    fn bands_allocate_proportionally() {
        let pts = Sampling::Bands { bands: vec![(0.0, 1.0), (10.0, 13.0)], n: 8 }
            .points()
            .unwrap();
        assert_eq!(pts.len(), 8);
        let in_first = pts.iter().filter(|p| p.s.im <= 1.0).count();
        assert_eq!(in_first, 2, "1/4 of bandwidth gets 1/4 of points");
        let total: f64 = pts.iter().map(|p| p.weight).sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_schemes_rejected() {
        assert!(Sampling::Linear { omega_max: 0.0, n: 4 }.points().is_err());
        assert!(Sampling::Log { omega_min: 0.0, omega_max: 1.0, n: 4 }.points().is_err());
        assert!(Sampling::Bands { bands: vec![(2.0, 1.0)], n: 4 }.points().is_err());
        assert!(Sampling::Custom(vec![]).points().is_err());
        assert!(Sampling::Custom(vec![SamplePoint { s: c64::ONE, weight: -1.0 }])
            .points()
            .is_err());
    }

    #[test]
    fn greedy_has_no_a_priori_points() {
        let err = Sampling::Greedy { omega_max: 10.0, pool: 64, tol: 1e-3, max_shifts: 8 }
            .points()
            .unwrap_err();
        assert!(matches!(err, NumError::InvalidArgument(_)));
    }

    #[test]
    fn custom_points_pass_through() {
        let pts = vec![SamplePoint { s: c64::new(1.0, 2.0), weight: 0.5 }];
        assert_eq!(Sampling::Custom(pts.clone()).points().unwrap(), pts);
    }
}
