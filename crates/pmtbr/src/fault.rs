//! Deterministic fault injection for the sampling pipeline.
//!
//! Robustness code that only runs when hardware misbehaves is dead code
//! until the day it isn't. This module makes the escalation ladder
//! testable on demand: a [`FaultPlan`] implements [`lti::SolveFault`]
//! and deterministically injects numerical faults into a chosen
//! fraction of sample points — singular pivots, NaN contamination,
//! small solution drift, or outright worker panics.
//!
//! Determinism: whether (and how) point `index` is faulted depends only
//! on `(seed, index)` via a per-index [`SplitMix64`] stream, never on
//! thread scheduling — so faulted sweeps keep the bit-identical-at-any-
//! thread-count guarantee, and a failing run reproduces exactly.
//!
//! The plan can also be read from the `PMTBR_FAULT` environment
//! variable (see [`FaultPlan::from_env`]), which is how the CLI exposes
//! chaos testing without a dedicated flag:
//!
//! ```text
//! PMTBR_FAULT="seed=42,rate=0.25,kinds=singular|nan|drift|panic,depth=2"
//! ```

use lti::SolveFault;
use numkit::{c64, NumError, SplitMix64, ZMat};

/// The kinds of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Factorization attempts fail with [`NumError::Singular`] until the
    /// ladder has escalated `depth` rungs — exercising the perturbation
    /// rung when `depth` exceeds the refactor+refresh rung count.
    Singular,
    /// The first solution is contaminated with a NaN — exercising
    /// residual certification and the fresh-factorization rung.
    Nan,
    /// The first solution is multiplied by `1 + 1e-6` — a silent small
    /// error that only iterative refinement can detect and repair.
    Drift,
    /// The worker computing this point panics — exercising panic
    /// containment and graceful sample dropping.
    Panic,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s.trim() {
            "singular" => Some(FaultKind::Singular),
            "nan" => Some(FaultKind::Nan),
            "drift" => Some(FaultKind::Drift),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }
}

/// A deterministic fault-injection plan over sweep indices.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    kinds: Vec<FaultKind>,
    depth: usize,
}

impl FaultPlan {
    /// A plan faulting roughly `rate` of all indices, choosing uniformly
    /// among `kinds`. `depth` is how many factorization attempts a
    /// [`FaultKind::Singular`] fault poisons before letting the ladder
    /// through (2 ⇒ refactor and refresh both fail, forcing the
    /// perturbation rung).
    pub fn new(seed: u64, rate: f64, kinds: Vec<FaultKind>, depth: usize) -> Self {
        FaultPlan { seed, rate: rate.clamp(0.0, 1.0), kinds, depth }
    }

    /// Reads a plan from the `PMTBR_FAULT` environment variable.
    ///
    /// Comma-separated `key=value` pairs: `seed` (u64, default 0),
    /// `rate` (fraction in `[0,1]`, default 0.25), `kinds`
    /// (`|`-separated subset of `singular|nan|drift|panic`, default all),
    /// `depth` (default 2). Returns `None` when the variable is unset,
    /// empty, or `off`; unknown keys and malformed values fall back to
    /// their defaults rather than erroring (chaos testing should not
    /// add configuration failure modes of its own).
    pub fn from_env() -> Option<FaultPlan> {
        FaultPlan::parse_spec(&std::env::var("PMTBR_FAULT").ok()?)
    }

    /// Parses a `PMTBR_FAULT`-style spec string (see [`FaultPlan::from_env`]
    /// for the grammar) without touching the process environment.
    ///
    /// Returns `None` for an empty, `off`, or `0` spec.
    pub fn parse_spec(spec: &str) -> Option<FaultPlan> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "off" || spec == "0" {
            return None;
        }
        let mut plan = FaultPlan::new(
            0,
            0.25,
            vec![FaultKind::Singular, FaultKind::Nan, FaultKind::Drift, FaultKind::Panic],
            2,
        );
        for part in spec.split(',') {
            let Some((key, value)) = part.split_once('=') else { continue };
            match key.trim() {
                "seed" => {
                    if let Ok(v) = value.trim().parse() {
                        plan.seed = v;
                    }
                }
                "rate" => {
                    if let Ok(v) = value.trim().parse::<f64>() {
                        plan.rate = v.clamp(0.0, 1.0);
                    }
                }
                "depth" => {
                    if let Ok(v) = value.trim().parse() {
                        plan.depth = v;
                    }
                }
                "kinds" => {
                    let kinds: Vec<FaultKind> =
                        value.split('|').filter_map(FaultKind::parse).collect();
                    if !kinds.is_empty() {
                        plan.kinds = kinds;
                    }
                }
                _ => {}
            }
        }
        Some(plan)
    }

    /// The fault (if any) this plan assigns to sweep index `index` —
    /// a pure function of `(seed, index)`.
    pub fn fault_for(&self, index: usize) -> Option<FaultKind> {
        if self.kinds.is_empty() {
            return None;
        }
        let mut rng = SplitMix64::new(
            self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        if rng.next_f64() >= self.rate {
            return None;
        }
        Some(self.kinds[rng.next_usize(self.kinds.len())])
    }

    /// The configured fault rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl SolveFault for FaultPlan {
    fn inject_error(&self, index: usize, attempt: usize) -> Option<NumError> {
        match self.fault_for(index) {
            Some(FaultKind::Singular) if attempt < self.depth => {
                Some(NumError::Singular { pivot: index })
            }
            _ => None,
        }
    }

    fn corrupt(&self, index: usize, attempt: usize, z: &mut ZMat) {
        if attempt != 0 {
            return; // corruption hits only the first factorization's solve
        }
        match self.fault_for(index) {
            Some(FaultKind::Nan)
                if z.nrows() > 0 && z.ncols() > 0 => {
                    z[(0, 0)] = c64::new(f64::NAN, 0.0);
                }
            Some(FaultKind::Drift) => {
                for i in 0..z.nrows() {
                    for j in 0..z.ncols() {
                        z[(i, j)] = z[(i, j)].scale(1.0 + 1e-6);
                    }
                }
            }
            _ => {}
        }
    }

    fn inject_panic(&self, index: usize) -> bool {
        self.fault_for(index) == Some(FaultKind::Panic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<FaultKind> {
        vec![FaultKind::Singular, FaultKind::Nan, FaultKind::Drift, FaultKind::Panic]
    }

    #[test]
    fn fault_assignment_is_deterministic_and_rate_respecting() {
        let plan = FaultPlan::new(7, 0.25, all_kinds(), 2);
        let first: Vec<_> = (0..400).map(|i| plan.fault_for(i)).collect();
        let second: Vec<_> = (0..400).map(|i| plan.fault_for(i)).collect();
        assert_eq!(first, second);
        let faulted = first.iter().filter(|f| f.is_some()).count();
        assert!((50..150).contains(&faulted), "rate 0.25 gave {faulted}/400");
    }

    #[test]
    fn zero_rate_never_faults_and_full_rate_always_does() {
        let silent = FaultPlan::new(1, 0.0, all_kinds(), 2);
        let loud = FaultPlan::new(1, 1.0, all_kinds(), 2);
        for i in 0..100 {
            assert_eq!(silent.fault_for(i), None);
            assert!(loud.fault_for(i).is_some());
        }
    }

    #[test]
    fn singular_injection_respects_depth() {
        let plan = FaultPlan::new(3, 1.0, vec![FaultKind::Singular], 2);
        let idx = 0;
        assert!(plan.inject_error(idx, 0).is_some());
        assert!(plan.inject_error(idx, 1).is_some());
        assert!(plan.inject_error(idx, 2).is_none());
        // Non-singular kinds never inject factorization errors.
        let nan = FaultPlan::new(3, 1.0, vec![FaultKind::Nan], 2);
        assert!(nan.inject_error(idx, 0).is_none());
    }

    #[test]
    fn corruption_applies_only_to_first_attempt() {
        let plan = FaultPlan::new(5, 1.0, vec![FaultKind::Nan], 2);
        let mut z = ZMat::zeros(2, 2);
        plan.corrupt(0, 1, &mut z);
        assert!(!z[(0, 0)].re.is_nan());
        plan.corrupt(0, 0, &mut z);
        assert!(z[(0, 0)].re.is_nan());
    }

    #[test]
    fn spec_parsing_roundtrip() {
        // Exercise the spec parser directly — mutating the live
        // environment here would race with other tests in this binary
        // that run the pipeline (which consults PMTBR_FAULT).
        let plan = FaultPlan::parse_spec("seed=9,rate=0.5,kinds=drift|panic,depth=3")
            .expect("plan must parse");
        assert_eq!(plan.seed, 9);
        assert!((plan.rate - 0.5).abs() < 1e-15);
        assert_eq!(plan.kinds, vec![FaultKind::Drift, FaultKind::Panic]);
        assert_eq!(plan.depth, 3);
        assert!(FaultPlan::parse_spec("").is_none());
        assert!(FaultPlan::parse_spec("off").is_none());
        assert!(FaultPlan::parse_spec("0").is_none());
    }
}
