//! Deterministic fault injection for the reduction pipeline.
//!
//! Robustness code that only runs when hardware misbehaves is dead code
//! until the day it isn't. This module makes the escalation ladders
//! testable on demand: a [`FaultPlan`] implements [`lti::SolveFault`]
//! and deterministically injects numerical faults into a chosen
//! fraction of sample points — singular pivots, NaN contamination,
//! small solution drift, or outright worker panics — and, with
//! `stage=` targeting, into the compress and project stages of
//! [`crate::pipeline`] as well.
//!
//! Determinism: whether (and how) point `index` is faulted depends only
//! on `(seed, index)` via a per-index [`SplitMix64`] stream, and
//! whether a pipeline stage is faulted depends only on
//! `(seed, stage)` — never on thread scheduling. Faulted runs keep the
//! bit-identical-at-any-thread-count guarantee, and a failing run
//! reproduces exactly.
//!
//! The plan can also be read from the `PMTBR_FAULT` environment
//! variable (see [`FaultPlan::from_env`]), which is how the CLI exposes
//! chaos testing without a dedicated flag:
//!
//! ```text
//! PMTBR_FAULT="seed=42,rate=0.25,kinds=singular|nan|drift|panic,stage=compress"
//! ```
//!
//! A malformed spec is a hard error, never a silently unfaulted run: a
//! chaos harness that typos `rate=0.5` into `rte=0.5` must hear about
//! it instead of concluding the pipeline survived a storm it never saw.

use lti::{NoFaults, SolveFault};
use numkit::{c64, NumError, SplitMix64, ZMat};

/// Stage-level fault injection: everything [`SolveFault`] covers for
/// the sweep, plus deterministic poisoning of compress/project
/// attempts in [`crate::pipeline::run_guarded`].
///
/// The `attempt` argument is the pipeline's per-stage attempt counter
/// (0 = first try), shared across a stage's whole recovery ladder — so
/// a fault of depth `d` forces exactly `d` escalations before letting
/// the stage through, whichever rung those escalations land on.
pub trait StageFault: SolveFault {
    /// The error to inject into attempt `attempt` of `stage`; `None`
    /// lets the attempt run normally.
    fn stage_error(&self, _stage: FaultStage, _attempt: usize) -> Option<NumError> {
        None
    }

    /// `true` when attempt `attempt` of `stage` must panic (the stage
    /// ladder contains the unwind).
    fn stage_panics(&self, _stage: FaultStage, _attempt: usize) -> bool {
        false
    }
}

impl StageFault for NoFaults {}

impl StageFault for FaultPlan {
    fn stage_error(&self, stage: FaultStage, attempt: usize) -> Option<NumError> {
        FaultPlan::stage_error(self, stage, attempt)
    }

    fn stage_panics(&self, stage: FaultStage, attempt: usize) -> bool {
        FaultPlan::stage_panics(self, stage, attempt)
    }
}

/// The kinds of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Factorization attempts fail with [`NumError::Singular`] until the
    /// ladder has escalated `depth` rungs — exercising the perturbation
    /// rung when `depth` exceeds the refactor+refresh rung count.
    Singular,
    /// The first solution is contaminated with a NaN — exercising
    /// residual certification and the fresh-factorization rung.
    Nan,
    /// The first solution is multiplied by `1 + 1e-6` — a silent small
    /// error that only iterative refinement can detect and repair.
    Drift,
    /// The worker computing this point panics — exercising panic
    /// containment and graceful sample dropping.
    Panic,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s.trim() {
            "singular" => Some(FaultKind::Singular),
            "nan" => Some(FaultKind::Nan),
            "drift" => Some(FaultKind::Drift),
            "panic" => Some(FaultKind::Panic),
            _ => None,
        }
    }
}

/// The pipeline stages a [`FaultPlan`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// The multipoint sampling sweep (per-shift faults through
    /// [`lti::SolveFault`] — the PR-2 behavior, and the default).
    Sweep,
    /// The compression stage (SVD / eigendecomposition of the sample
    /// stack): faults poison compressor-ladder attempts.
    Compress,
    /// The projection stage: faults poison projection attempts.
    Project,
}

impl FaultStage {
    fn parse(s: &str) -> Option<FaultStage> {
        match s.trim() {
            "sweep" => Some(FaultStage::Sweep),
            "compress" => Some(FaultStage::Compress),
            "project" => Some(FaultStage::Project),
            _ => None,
        }
    }

    /// Lower-case label (`"sweep"`, `"compress"`, `"project"`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultStage::Sweep => "sweep",
            FaultStage::Compress => "compress",
            FaultStage::Project => "project",
        }
    }

    /// Per-stage seed salt, so `stage_fault` draws an independent
    /// deterministic stream per stage.
    fn salt(self) -> u64 {
        match self {
            FaultStage::Sweep => 0xA076_1D64_78BD_642F,
            FaultStage::Compress => 0xE703_7ED1_A0B4_28DB,
            FaultStage::Project => 0x8EBC_6AF0_9C88_C6E3,
        }
    }
}

/// A deterministic fault-injection plan over sweep indices and
/// pipeline stages.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    kinds: Vec<FaultKind>,
    depth: usize,
    stages: Vec<FaultStage>,
}

impl FaultPlan {
    /// A plan faulting roughly `rate` of all sweep indices, choosing
    /// uniformly among `kinds`. `depth` is how many attempts a fault
    /// poisons before letting the ladder through (2 ⇒ refactor and
    /// refresh both fail, forcing the perturbation rung). Targets the
    /// sweep stage only; see [`FaultPlan::with_stages`].
    pub fn new(seed: u64, rate: f64, kinds: Vec<FaultKind>, depth: usize) -> Self {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            kinds,
            depth,
            stages: vec![FaultStage::Sweep],
        }
    }

    /// Replaces the targeted stage set (builder style).
    pub fn with_stages(mut self, stages: Vec<FaultStage>) -> Self {
        self.stages = stages;
        self
    }

    /// Reads a plan from the `PMTBR_FAULT` environment variable.
    ///
    /// Comma-separated `key=value` pairs: `seed` (u64, default 0),
    /// `rate` (fraction in `[0,1]`, default 0.25), `kinds`
    /// (`|`-separated subset of `singular|nan|drift|panic`, default all),
    /// `depth` (default 2), `stage` (`|`-separated subset of
    /// `sweep|compress|project` or `all`, default `sweep`).
    ///
    /// # Errors
    ///
    /// `Ok(None)` when the variable is unset, empty, `off`, or `0`;
    /// `Err` with a human-readable message for unknown keys or
    /// malformed values — a bad spec must never run unfaulted.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var("PMTBR_FAULT") {
            Ok(spec) => FaultPlan::parse_spec(&spec),
            Err(_) => Ok(None),
        }
    }

    /// Parses a `PMTBR_FAULT`-style spec string (see [`FaultPlan::from_env`]
    /// for the grammar) without touching the process environment.
    ///
    /// # Errors
    ///
    /// `Ok(None)` for an empty, `off`, or `0` spec; `Err` for unknown
    /// keys, unknown kind/stage tokens, or unparsable values.
    pub fn parse_spec(spec: &str) -> Result<Option<FaultPlan>, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "off" || spec == "0" {
            return Ok(None);
        }
        let mut plan = FaultPlan::new(
            0,
            0.25,
            vec![FaultKind::Singular, FaultKind::Nan, FaultKind::Drift, FaultKind::Panic],
            2,
        );
        for part in spec.split(',') {
            let part = part.trim();
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!(
                    "malformed PMTBR_FAULT segment `{part}`: expected key=value \
                     (keys: seed, rate, kinds, depth, stage)"
                ));
            };
            let value = value.trim();
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("invalid PMTBR_FAULT seed `{value}`: expected u64"))?;
                }
                "rate" => {
                    let v: f64 = value.parse().map_err(|_| {
                        format!("invalid PMTBR_FAULT rate `{value}`: expected a number in [0,1]")
                    })?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!(
                            "invalid PMTBR_FAULT rate `{value}`: must be in [0,1]"
                        ));
                    }
                    plan.rate = v;
                }
                "depth" => {
                    plan.depth = value.parse().map_err(|_| {
                        format!("invalid PMTBR_FAULT depth `{value}`: expected an integer")
                    })?;
                }
                "kinds" => {
                    let mut kinds = Vec::new();
                    for tok in value.split('|') {
                        let kind = FaultKind::parse(tok).ok_or_else(|| {
                            format!(
                                "unknown PMTBR_FAULT kind `{}`: expected \
                                 singular|nan|drift|panic",
                                tok.trim()
                            )
                        })?;
                        if !kinds.contains(&kind) {
                            kinds.push(kind);
                        }
                    }
                    if kinds.is_empty() {
                        return Err("PMTBR_FAULT kinds list is empty".to_string());
                    }
                    plan.kinds = kinds;
                }
                "stage" | "stages" => {
                    let mut stages = Vec::new();
                    for tok in value.split('|') {
                        if tok.trim() == "all" {
                            stages =
                                vec![FaultStage::Sweep, FaultStage::Compress, FaultStage::Project];
                            break;
                        }
                        let stage = FaultStage::parse(tok).ok_or_else(|| {
                            format!(
                                "unknown PMTBR_FAULT stage `{}`: expected \
                                 sweep|compress|project|all",
                                tok.trim()
                            )
                        })?;
                        if !stages.contains(&stage) {
                            stages.push(stage);
                        }
                    }
                    if stages.is_empty() {
                        return Err("PMTBR_FAULT stage list is empty".to_string());
                    }
                    plan.stages = stages;
                }
                other => {
                    return Err(format!(
                        "unknown PMTBR_FAULT key `{other}`: expected \
                         seed, rate, kinds, depth, or stage"
                    ));
                }
            }
        }
        Ok(Some(plan))
    }

    /// `true` when this plan injects faults into `stage`.
    pub fn targets(&self, stage: FaultStage) -> bool {
        self.stages.contains(&stage)
    }

    /// The fault (if any) this plan assigns to sweep index `index` —
    /// a pure function of `(seed, index)`. `None` when the sweep stage
    /// is not targeted.
    pub fn fault_for(&self, index: usize) -> Option<FaultKind> {
        if !self.targets(FaultStage::Sweep) {
            return None;
        }
        self.draw(self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The fault (if any) this plan assigns to pipeline stage `stage` —
    /// a pure function of `(seed, stage)`. `None` when `stage` is not
    /// targeted. The sweep stage is excluded (it faults per *index*,
    /// via [`FaultPlan::fault_for`]).
    pub fn stage_fault(&self, stage: FaultStage) -> Option<FaultKind> {
        if stage == FaultStage::Sweep || !self.targets(stage) {
            return None;
        }
        self.draw(self.seed ^ stage.salt())
    }

    /// The error a stage-targeted fault injects into attempt `attempt`
    /// of `stage`, or `None` once the ladder has escalated past
    /// `depth` attempts (or for panic-kind faults, which unwind via
    /// [`FaultPlan::stage_panics`] instead).
    pub fn stage_error(&self, stage: FaultStage, attempt: usize) -> Option<NumError> {
        if attempt >= self.depth {
            return None;
        }
        match self.stage_fault(stage)? {
            FaultKind::Singular => Some(NumError::Singular { pivot: attempt }),
            FaultKind::Nan => Some(NumError::NotFinite),
            FaultKind::Drift => {
                Some(NumError::NotConverged { algorithm: "fault-injection", iterations: attempt })
            }
            FaultKind::Panic => None,
        }
    }

    /// `true` when attempt `attempt` of `stage` must panic (contained
    /// by the stage ladder's `catch_unwind`).
    pub fn stage_panics(&self, stage: FaultStage, attempt: usize) -> bool {
        attempt < self.depth && self.stage_fault(stage) == Some(FaultKind::Panic)
    }

    fn draw(&self, stream: u64) -> Option<FaultKind> {
        if self.kinds.is_empty() {
            return None;
        }
        let mut rng = SplitMix64::new(stream);
        if rng.next_f64() >= self.rate {
            return None;
        }
        Some(self.kinds[rng.next_usize(self.kinds.len())])
    }

    /// The configured fault rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl SolveFault for FaultPlan {
    fn inject_error(&self, index: usize, attempt: usize) -> Option<NumError> {
        match self.fault_for(index) {
            Some(FaultKind::Singular) if attempt < self.depth => {
                Some(NumError::Singular { pivot: index })
            }
            _ => None,
        }
    }

    fn corrupt(&self, index: usize, attempt: usize, z: &mut ZMat) {
        if attempt != 0 {
            return; // corruption hits only the first factorization's solve
        }
        match self.fault_for(index) {
            Some(FaultKind::Nan)
                if z.nrows() > 0 && z.ncols() > 0 => {
                    z[(0, 0)] = c64::new(f64::NAN, 0.0);
                }
            Some(FaultKind::Drift) => {
                for i in 0..z.nrows() {
                    for j in 0..z.ncols() {
                        z[(i, j)] = z[(i, j)].scale(1.0 + 1e-6);
                    }
                }
            }
            _ => {}
        }
    }

    fn inject_panic(&self, index: usize) -> bool {
        self.fault_for(index) == Some(FaultKind::Panic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<FaultKind> {
        vec![FaultKind::Singular, FaultKind::Nan, FaultKind::Drift, FaultKind::Panic]
    }

    #[test]
    fn fault_assignment_is_deterministic_and_rate_respecting() {
        let plan = FaultPlan::new(7, 0.25, all_kinds(), 2);
        let first: Vec<_> = (0..400).map(|i| plan.fault_for(i)).collect();
        let second: Vec<_> = (0..400).map(|i| plan.fault_for(i)).collect();
        assert_eq!(first, second);
        let faulted = first.iter().filter(|f| f.is_some()).count();
        assert!((50..150).contains(&faulted), "rate 0.25 gave {faulted}/400");
    }

    #[test]
    fn zero_rate_never_faults_and_full_rate_always_does() {
        let silent = FaultPlan::new(1, 0.0, all_kinds(), 2);
        let loud = FaultPlan::new(1, 1.0, all_kinds(), 2);
        for i in 0..100 {
            assert_eq!(silent.fault_for(i), None);
            assert!(loud.fault_for(i).is_some());
        }
    }

    #[test]
    fn singular_injection_respects_depth() {
        let plan = FaultPlan::new(3, 1.0, vec![FaultKind::Singular], 2);
        let idx = 0;
        assert!(plan.inject_error(idx, 0).is_some());
        assert!(plan.inject_error(idx, 1).is_some());
        assert!(plan.inject_error(idx, 2).is_none());
        // Non-singular kinds never inject factorization errors.
        let nan = FaultPlan::new(3, 1.0, vec![FaultKind::Nan], 2);
        assert!(nan.inject_error(idx, 0).is_none());
    }

    #[test]
    fn corruption_applies_only_to_first_attempt() {
        let plan = FaultPlan::new(5, 1.0, vec![FaultKind::Nan], 2);
        let mut z = ZMat::zeros(2, 2);
        plan.corrupt(0, 1, &mut z);
        assert!(!z[(0, 0)].re.is_nan());
        plan.corrupt(0, 0, &mut z);
        assert!(z[(0, 0)].re.is_nan());
    }

    #[test]
    fn spec_parsing_roundtrip() {
        // Exercise the spec parser directly — mutating the live
        // environment here would race with other tests in this binary
        // that run the pipeline (which consults PMTBR_FAULT).
        let plan = FaultPlan::parse_spec("seed=9,rate=0.5,kinds=drift|panic,depth=3")
            .expect("spec must be well-formed")
            .expect("plan must parse");
        assert_eq!(plan.seed, 9);
        assert!((plan.rate - 0.5).abs() < 1e-15);
        assert_eq!(plan.kinds, vec![FaultKind::Drift, FaultKind::Panic]);
        assert_eq!(plan.depth, 3);
        assert_eq!(plan.stages, vec![FaultStage::Sweep]);
        assert!(FaultPlan::parse_spec("").expect("empty is off").is_none());
        assert!(FaultPlan::parse_spec("off").expect("off is off").is_none());
        assert!(FaultPlan::parse_spec("0").expect("0 is off").is_none());
    }

    #[test]
    fn malformed_specs_are_rejected_not_ignored() {
        // The historical bug: `rte=0.5` ran completely unfaulted.
        assert!(FaultPlan::parse_spec("rte=0.5").is_err());
        assert!(FaultPlan::parse_spec("rate").is_err());
        assert!(FaultPlan::parse_spec("rate=fast").is_err());
        assert!(FaultPlan::parse_spec("rate=1.5").is_err());
        assert!(FaultPlan::parse_spec("seed=-1").is_err());
        assert!(FaultPlan::parse_spec("depth=two").is_err());
        assert!(FaultPlan::parse_spec("kinds=singular|typo").is_err());
        assert!(FaultPlan::parse_spec("stage=compress|typo").is_err());
        let msg = FaultPlan::parse_spec("rte=0.5").unwrap_err();
        assert!(msg.contains("rte"), "error names the bad key: {msg}");
    }

    #[test]
    fn stage_targeting_parses_and_gates_injection() {
        let plan = FaultPlan::parse_spec("seed=42,rate=1.0,kinds=singular,stage=compress")
            .expect("well-formed")
            .expect("parses");
        assert_eq!(plan.stages, vec![FaultStage::Compress]);
        // Sweep hooks are inert when the sweep stage is not targeted.
        assert_eq!(plan.fault_for(0), None);
        assert!(plan.inject_error(0, 0).is_none());
        assert!(!plan.inject_panic(0));
        // Compress-stage draws are deterministic and respect depth.
        assert_eq!(plan.stage_fault(FaultStage::Compress), Some(FaultKind::Singular));
        assert_eq!(plan.stage_fault(FaultStage::Project), None);
        assert!(plan.stage_error(FaultStage::Compress, 0).is_some());
        assert!(plan.stage_error(FaultStage::Compress, 1).is_some());
        assert!(plan.stage_error(FaultStage::Compress, 2).is_none());

        let all = FaultPlan::parse_spec("rate=1.0,stage=all").expect("ok").expect("plan");
        assert!(all.targets(FaultStage::Sweep));
        assert!(all.targets(FaultStage::Compress));
        assert!(all.targets(FaultStage::Project));

        // Panic-kind stage faults unwind instead of erroring.
        let p = FaultPlan::parse_spec("rate=1.0,kinds=panic,stage=project")
            .expect("ok")
            .expect("plan");
        assert!(p.stage_panics(FaultStage::Project, 0));
        assert!(!p.stage_panics(FaultStage::Project, 2));
        assert!(p.stage_error(FaultStage::Project, 0).is_none());
    }
}
