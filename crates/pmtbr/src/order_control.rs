//! On-the-fly order control (paper Section V-C).
//!
//! Re-running a full SVD after every new sample is wasteful; the paper
//! points to updatable rank-revealing factorizations (RRQR/UTV) instead.
//! [`IncrementalBasis`] maintains a growing QR factorization of the
//! sample matrix: each new block costs one Gram–Schmidt pass, and the
//! singular values of the small `R` factor (cheap: `m × m` with `m` =
//! samples, not states) equal those of the full sample matrix — giving
//! exact trailing-value estimates without touching the `n × m` matrix
//! again.

use numkit::{singular_values, DMat, NumError};

/// An incrementally updated orthonormal basis with order-control
/// estimates, fed by sample blocks.
///
/// # Examples
///
/// ```
/// use numkit::DMat;
/// use pmtbr::IncrementalBasis;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let mut basis = IncrementalBasis::new(3);
/// basis.push_block(&DMat::from_rows(&[&[1.0], &[0.0], &[0.0]]))?;
/// basis.push_block(&DMat::from_rows(&[&[1.0], &[1.0], &[0.0]]))?;
/// let s = basis.singular_value_estimates()?;
/// assert_eq!(s.len(), 2);
/// assert!(s[0] > s[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalBasis {
    n: usize,
    /// Orthonormal columns accumulated so far.
    q: Vec<Vec<f64>>,
    /// Rows of the R factor: `r[j]` holds column `j`'s coefficients in
    /// the `q` basis (length = q.len() at insertion time, padded later).
    r_cols: Vec<Vec<f64>>,
    /// History of the top singular-value estimates after each block.
    history: Vec<Vec<f64>>,
}

impl IncrementalBasis {
    /// Creates an empty basis for vectors of dimension `n`.
    pub fn new(n: usize) -> Self {
        IncrementalBasis { n, q: Vec::new(), r_cols: Vec::new(), history: Vec::new() }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of sample columns absorbed.
    pub fn ncols(&self) -> usize {
        self.r_cols.len()
    }

    /// Current basis rank (orthonormal directions kept).
    pub fn rank(&self) -> usize {
        self.q.len()
    }

    /// Absorbs a block of sample columns (e.g. one frequency point's
    /// realified solve), updating the QR factors.
    ///
    /// # Errors
    ///
    /// [`NumError::ShapeMismatch`] if the block's row count differs from
    /// the basis dimension.
    pub fn push_block(&mut self, block: &DMat) -> Result<(), NumError> {
        if block.nrows() != self.n {
            return Err(NumError::ShapeMismatch {
                operation: "incremental basis block",
                left: (self.n, 0),
                right: block.shape(),
            });
        }
        for j in 0..block.ncols() {
            let mut v = block.col(j);
            let mut coeffs = vec![0.0; self.q.len()];
            // Two Gram–Schmidt passes, accumulating coefficients.
            for _ in 0..2 {
                for (bi, b) in self.q.iter().enumerate() {
                    let proj: f64 = b.iter().zip(&v).map(|(x, y)| x * y).sum();
                    coeffs[bi] += proj;
                    for (vi, bv) in v.iter_mut().zip(b) {
                        *vi -= proj * bv;
                    }
                }
            }
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            let col_norm: f64 = block.col(j).iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1e-14 * col_norm.max(1e-300) {
                for vi in v.iter_mut() {
                    *vi /= norm;
                }
                self.q.push(v);
                coeffs.push(norm);
            }
            self.r_cols.push(coeffs);
        }
        let est = self.singular_value_estimates()?;
        self.history.push(est.into_iter().take(8).collect());
        Ok(())
    }

    /// Singular values of the accumulated sample matrix, computed from
    /// the small `R` factor (`rank × ncols`): identical to the full
    /// matrix's singular values because `Q` is orthonormal.
    ///
    /// # Errors
    ///
    /// Propagates SVD failures.
    pub fn singular_value_estimates(&self) -> Result<Vec<f64>, NumError> {
        if self.r_cols.is_empty() {
            return Ok(Vec::new());
        }
        let k = self.q.len();
        let m = self.r_cols.len();
        let r = DMat::from_fn(k, m, |i, j| self.r_cols[j].get(i).copied().unwrap_or(0.0));
        singular_values(&r)
    }

    /// `true` once the trailing singular-value sum beyond `order` has
    /// dropped below `tol` *and* the leading values changed by less than
    /// `rel_change` between the last two blocks — the paper's "stop
    /// adding vectors" test.
    ///
    /// # Errors
    ///
    /// Propagates SVD failures.
    pub fn converged(&self, order: usize, tol: f64, rel_change: f64) -> Result<bool, NumError> {
        // Require samples in excess of the order (paper Section V-B).
        if self.ncols() <= order {
            return Ok(false);
        }
        let s = self.singular_value_estimates()?;
        let tail: f64 = s.iter().skip(order).sum();
        if tail >= tol {
            return Ok(false);
        }
        let h = &self.history;
        if h.len() < 2 {
            return Ok(false);
        }
        let prev = &h[h.len() - 2];
        let last = &h[h.len() - 1];
        let top = last.first().copied().unwrap_or(0.0).max(1e-300);
        let drift = prev
            .iter()
            .zip(last)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        Ok(drift <= rel_change * top)
    }

    /// The orthonormal basis truncated to the `order` dominant
    /// directions of the sample matrix (via the `R`-factor SVD).
    ///
    /// # Errors
    ///
    /// [`NumError::InvalidArgument`] if `order` exceeds the rank.
    pub fn dominant_basis(&self, order: usize) -> Result<DMat, NumError> {
        let k = self.q.len();
        if order > k {
            return Err(NumError::InvalidArgument("order exceeds basis rank"));
        }
        let m = self.r_cols.len();
        let r = DMat::from_fn(k, m, |i, j| self.r_cols[j].get(i).copied().unwrap_or(0.0));
        let f = numkit::svd(&r)?;
        // V = Q · U_r[:, :order].
        let qmat = DMat::from_cols(&self.q);
        qmat.matmul(&f.u.leading_cols(order))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numkit::svd;

    fn sample_matrix() -> DMat {
        DMat::from_fn(6, 5, |i, j| {
            ((i * 3 + j * 7) % 11) as f64 / 3.0 - 1.5 + if i == j { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn estimates_match_full_svd_exactly() {
        let a = sample_matrix();
        let mut basis = IncrementalBasis::new(6);
        basis.push_block(&a.block(0, 6, 0, 2)).unwrap();
        basis.push_block(&a.block(0, 6, 2, 5)).unwrap();
        let inc = basis.singular_value_estimates().unwrap();
        let full = svd(&a).unwrap().s;
        assert_eq!(inc.len(), full.len());
        for (x, y) in inc.iter().zip(&full) {
            assert!((x - y).abs() < 1e-10 * (1.0 + y), "{x} vs {y}");
        }
    }

    #[test]
    fn dominant_basis_spans_svd_subspace() {
        let a = sample_matrix();
        let mut basis = IncrementalBasis::new(6);
        basis.push_block(&a).unwrap();
        let v = basis.dominant_basis(2).unwrap();
        let u = svd(&a).unwrap().u.leading_cols(2);
        let angle = numkit::max_principal_angle(&v, &u).unwrap();
        assert!(angle < 1e-7, "angle {angle}");
    }

    #[test]
    fn dependent_columns_do_not_grow_rank() {
        let mut basis = IncrementalBasis::new(4);
        let b1 = DMat::from_cols(&[vec![1.0, 1.0, 0.0, 0.0]]);
        let b2 = DMat::from_cols(&[vec![2.0, 2.0, 0.0, 0.0]]); // dependent
        basis.push_block(&b1).unwrap();
        basis.push_block(&b2).unwrap();
        assert_eq!(basis.rank(), 1);
        assert_eq!(basis.ncols(), 2);
        // Singular values still reflect both columns: ‖[v, 2v]‖.
        let s = basis.singular_value_estimates().unwrap();
        let expect = (2.0f64 + 8.0).sqrt(); // sqrt(|v|² + |2v|²), |v|² = 2
        assert!((s[0] - expect).abs() < 1e-10);
    }

    #[test]
    fn convergence_detector() {
        // A rank-2 process: after enough samples, order-2 converges.
        let mut basis = IncrementalBasis::new(5);
        let gen = |k: usize| {
            DMat::from_cols(&[vec![
                1.0,
                (k as f64 * 0.3).sin() * 0.5,
                0.0,
                0.0,
                0.0,
            ]])
        };
        for k in 0..6 {
            basis.push_block(&gen(k)).unwrap();
        }
        assert!(basis.converged(2, 1e-8, 0.5).unwrap());
        assert!(!basis.converged(0, 1e-8, 0.5).unwrap(), "order 0 can't capture energy");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut basis = IncrementalBasis::new(3);
        assert!(basis.push_block(&DMat::zeros(4, 1)).is_err());
    }
}
