//! Balanced PMTBR: square-root balancing of *sampled* controllability
//! and observability Gramians.
//!
//! Section V-D of the paper notes that nonsymmetric systems need both
//! Gramians and proposes the cross-Gramian compression. An alternative
//! with the classical square-root structure: sample
//! `z_R = (sE − A)⁻¹·B` *and* `z_L = (sE − A)⁻ᵀ·Cᵀ`, treat the realified
//! weighted sample blocks `Z_R`, `Z_L` as Gramian square-root factors
//! (`X̂ = Z_R·Z_Rᵀ`, `Ŷ = Z_L·Z_Lᵀ`), and balance them exactly as
//! square-root TBR balances Cholesky factors — SVD of `Z_Lᵀ·Z_R`,
//! two-sided projection with `WᵀV = I`.

use lti::LtiSystem;
use numkit::NumError;

use crate::pipeline::ReductionPlan;
use crate::{PmtbrModel, Sampling};

/// Runs balanced (two-sided) PMTBR.
///
/// The singular values of `Z_Lᵀ·Z_R` estimate the Hankel singular values
/// directly (not their squares), so the `error_estimate` tail carries
/// the familiar TBR interpretation.
///
/// Executes [`ReductionPlan::balanced`] through the shared pipeline:
/// both pencil sweeps (`(sE − A)⁻¹·B` and `(sE − A)⁻ᵀ·Cᵀ`) run through
/// the tolerant parallel engine, a node survives only if *both* sides
/// solved, and under `PMTBR_FAULT` the quadrature degrades with
/// renormalized weights instead of erroring.
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] if `order == 0` or the sampled
///   subspaces cannot support the requested order.
/// - Propagates solve/SVD/projection errors.
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use pmtbr::{balanced_pmtbr, Sampling};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0)?;
/// let m = balanced_pmtbr(&sys, &Sampling::Linear { omega_max: 10.0, n: 8 }, 4)?;
/// assert_eq!(m.order, 4);
/// # Ok(())
/// # }
/// ```
pub fn balanced_pmtbr<S: LtiSystem + ?Sized>(
    sys: &S,
    sampling: &Sampling,
    order: usize,
) -> Result<PmtbrModel, NumError> {
    Ok(crate::pipeline::run(sys, &ReductionPlan::balanced(sampling, order))?.model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{connector, rc_mesh, ConnectorParams};
    use numkit::c64;

    #[test]
    fn biorthogonal_projectors() {
        let sys = rc_mesh(3, 3, &[0, 8], 1.0, 1.0, 2.0).unwrap();
        let m =
            balanced_pmtbr(&sys, &Sampling::Linear { omega_max: 10.0, n: 8 }, 5).unwrap();
        assert_eq!(m.reduced.nstates(), 5);
        assert!(m.reduced.a.is_finite());
    }

    #[test]
    fn singular_values_estimate_hankel_values() {
        // Symmetric case: σ(Z_Lᵀ Z_R) should track the Hankel spectrum
        // shape (both sides sample the same Gramian).
        let sys = rc_mesh(4, 4, &[0], 1.0, 1.0, 2.0).unwrap();
        let ss = sys.to_state_space().unwrap();
        let hsv = lti::hankel_singular_values(&ss).unwrap();
        let m = balanced_pmtbr(
            &sys,
            &Sampling::Log { omega_min: 1e-2, omega_max: 50.0, n: 30 },
            4,
        )
        .unwrap();
        // Normalized decay within 2 decades over the first few values.
        for k in 1..4 {
            let exact = hsv[k] / hsv[0];
            let est = m.singular_values[k] / m.singular_values[0];
            assert!(
                est < exact * 100.0 && exact < est * 100.0,
                "index {k}: {exact:.2e} vs {est:.2e}"
            );
        }
    }

    #[test]
    fn improves_on_one_sided_for_nonsymmetric_system() {
        // RLC connector: the two-sided variant accounts for observability
        // and should be at least competitive with one-sided PMTBR.
        let sys = connector(&ConnectorParams { pins: 3, ..Default::default() }).unwrap();
        let wmax = 2.0 * std::f64::consts::PI * 8e9;
        let sampling = Sampling::Linear { omega_max: wmax, n: 20 };
        let order = 12;
        let bal = balanced_pmtbr(&sys, &sampling, order).unwrap();
        let one = crate::pmtbr(
            &sys,
            &crate::PmtbrOptions::new(sampling).with_max_order(order),
        )
        .unwrap();
        let mut e_bal: f64 = 0.0;
        let mut e_one: f64 = 0.0;
        for k in 1..=10 {
            let s = c64::new(0.0, wmax * k as f64 / 10.0);
            let h = sys.transfer_function(s).unwrap();
            e_bal = e_bal.max((&bal.reduced.transfer_function(s).unwrap() - &h).norm_max());
            e_one = e_one.max((&one.reduced.transfer_function(s).unwrap() - &h).norm_max());
        }
        assert!(
            e_bal < 10.0 * e_one,
            "balanced variant must stay competitive: {e_bal:.2e} vs {e_one:.2e}"
        );
    }

    #[test]
    fn order_validation() {
        let sys = rc_mesh(2, 2, &[0], 1.0, 1.0, 2.0).unwrap();
        assert!(balanced_pmtbr(&sys, &Sampling::Linear { omega_max: 5.0, n: 4 }, 0).is_err());
        assert!(
            balanced_pmtbr(&sys, &Sampling::Linear { omega_max: 5.0, n: 1 }, 50).is_err()
        );
    }
}
