//! Proper orthogonal decomposition (POD): the time-domain sibling of
//! PMTBR under the paper's statistical interpretation.
//!
//! Section IV-A reads the controllability Gramian as the state
//! covariance `E{x·xᵀ}` under stochastic inputs. PMTBR samples that
//! covariance in the frequency domain; POD samples it in the time
//! domain, from snapshots of simulated trajectories driven by
//! representative inputs. Both end in the same place — an SVD of a
//! sample matrix and a congruence projection — which makes POD a natural
//! cross-check (and a genuinely input-aware alternative when only
//! time-domain waveforms exist).

use lti::{state_snapshots, Descriptor};
use numkit::{svd, DMat, NumError};

use crate::PmtbrModel;

/// Options for snapshot-based (POD) reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PodOptions {
    /// Simulation time step.
    pub h: f64,
    /// Keep every `stride`-th state as a snapshot.
    pub stride: usize,
    /// Relative singular-value truncation tolerance.
    pub tolerance: f64,
    /// Optional order cap.
    pub max_order: Option<usize>,
}

impl PodOptions {
    /// Defaults: stride 1, tolerance `1e-10`, no cap.
    pub fn new(h: f64) -> Self {
        PodOptions { h, stride: 1, tolerance: 1e-10, max_order: None }
    }
}

/// Snapshot-based (POD / empirical-Gramian) reduction of a descriptor
/// system, driven by the representative input record `u` (`p × nt`).
///
/// The snapshot stack is tall (`n` states × kept snapshots), so its SVD
/// takes the QR-preconditioned parallel Jacobi path automatically —
/// the factor-to-R-first trick keeps the rotation cost independent of
/// the state count.
///
/// # Errors
///
/// - Propagates simulation errors (shape mismatch, bad step).
/// - [`NumError::InvalidArgument`] if the trajectory never leaves the
///   origin (zero snapshot matrix).
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use lti::dithered_square_inputs;
/// use pmtbr::{pod_reduce, PodOptions};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0)?;
/// let u = dithered_square_inputs(2, 300, 0.05, 4.0, 0.1, 3);
/// let mut opts = PodOptions::new(0.05);
/// opts.max_order = Some(6);
/// let model = pod_reduce(&sys, &u, &opts)?;
/// assert!(model.order <= 6);
/// # Ok(())
/// # }
/// ```
pub fn pod_reduce(
    sys: &Descriptor,
    u: &DMat,
    opts: &PodOptions,
) -> Result<PmtbrModel, NumError> {
    let snaps = state_snapshots(sys, u, opts.h, opts.stride)?;
    let f = svd(&snaps)?;
    if f.s.is_empty() || f.s[0] == 0.0 {
        return Err(NumError::InvalidArgument("trajectory snapshots are identically zero"));
    }
    let by_tol = f.s.iter().take_while(|&&x| x > opts.tolerance * f.s[0]).count().max(1);
    let order = opts.max_order.map_or(by_tol, |cap| by_tol.min(cap)).min(f.s.len());
    let v = f.u.leading_cols(order);
    let reduced = sys.project(&v, &v)?;
    Ok(PmtbrModel {
        reduced,
        v,
        singular_values: f.s.clone(),
        order,
        error_estimate: f.s.iter().skip(order).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::{rc_mesh, spread_ports};
    use lti::{dithered_square_inputs, max_transient_error, simulate_descriptor, simulate_ss};

    #[test]
    fn pod_tracks_training_inputs() {
        let ports = spread_ports(4, 4, 4);
        let sys = rc_mesh(4, 4, &ports, 1.0, 1.0, 2.0).unwrap();
        let u = dithered_square_inputs(4, 400, 0.05, 4.0, 0.1, 7);
        let mut opts = PodOptions::new(0.05);
        opts.max_order = Some(6);
        let m = pod_reduce(&sys, &u, &opts).unwrap();
        let full = simulate_descriptor(&sys, &u, 0.05).unwrap();
        let red = simulate_ss(&m.reduced, &u, 0.05).unwrap();
        let rel = max_transient_error(&full, &red) / full.y.norm_max();
        assert!(rel < 0.05, "POD must capture its own training trajectory: {rel:.3}");
    }

    #[test]
    fn pod_and_ic_pmtbr_find_similar_subspace_dimension() {
        // Both estimate the covariance of x under the same input class:
        // their significant-direction counts should be comparable.
        let ports = spread_ports(4, 4, 4);
        let sys = rc_mesh(4, 4, &ports, 1.0, 1.0, 2.0).unwrap();
        let u = dithered_square_inputs(4, 400, 0.05, 4.0, 0.1, 7);
        let pod = {
            let opts = PodOptions::new(0.05);
            pod_reduce(&sys, &u, &opts).unwrap()
        };
        let rank = |s: &[f64]| s.iter().take_while(|&&x| x > 1e-4 * s[0]).count();
        let mut ic_opts = crate::InputCorrelatedOptions::new(crate::Sampling::Linear {
            omega_max: 12.0,
            n: 10,
        });
        ic_opts.n_draws = 40;
        let ic = crate::input_correlated_pmtbr(&sys, &u, &ic_opts).unwrap();
        let r_pod = rank(&pod.singular_values);
        let r_ic = rank(&ic.singular_values);
        assert!(
            r_pod.abs_diff(r_ic) <= 6,
            "covariance ranks should be comparable: pod {r_pod} vs ic {r_ic}"
        );
    }

    #[test]
    fn zero_input_rejected() {
        let sys = rc_mesh(2, 2, &[0], 1.0, 1.0, 2.0).unwrap();
        let u = DMat::zeros(1, 50);
        let opts = PodOptions::new(0.05);
        assert!(pod_reduce(&sys, &u, &opts).is_err());
    }
}
