//! Content-addressed artifact cache for the reduction pipeline.
//!
//! Reduction-as-a-service needs warm requests to skip work a previous
//! run already paid for, **without** changing a single bit of the
//! answer. This module provides the substrate: an [`ArtifactCache`]
//! trait the pipeline consults at stage boundaries, a no-op
//! [`NullCache`] (the default, so cached and uncached runs execute the
//! identical code path), and a deterministic in-memory [`LruCache`]
//! with a byte-budget eviction policy.
//!
//! # Keys
//!
//! Every key is a [`CacheKey`]: an [`ArtifactKind`] plus the system's
//! [`lti::LtiSystem::pencil_hash`] and a digest of everything else that
//! can change the bits of the result — the full [`ReductionPlan`]
//! (sampling nodes, input directions, compressor, order control), the
//! raw `PMTBR_FAULT` environment spec, and the [`Budget`] caps. Two
//! runs with equal keys are bit-identical by the determinism contract,
//! so a cache hit is exact, never approximate.
//!
//! # Identity contract
//!
//! - A **cold** run through a cache (every lookup misses) is
//!   byte-identical — model, report, trace, and counters — to a run
//!   through [`NullCache`]: both emit the same `cache_lookup` /
//!   `cache_store` spans, and [`obs::Counter::CacheBytes`] counts bytes
//!   *offered* for admission whether or not the backend keeps them.
//! - A **warm** model hit returns the stored [`Reduction`] clone and
//!   replays the trace events captured when the entry was computed
//!   (see [`obs::replay`]), so the work events are byte-identical to
//!   the cold run; only the `cache_lookup` outcome and the hit/miss
//!   counters legitimately differ.
//! - A **sweep** hit reuses the realified sample matrix and re-runs
//!   compress/project live (this is what lets a warm run with a
//!   different compressor "skip straight to compress"); the model is
//!   bit-identical, the trace simply has no sweep span to replay.
//!
//! # Poisoned entries
//!
//! A Degraded result is never admitted ([`crate::StageOutcome`]): a
//! degraded model encodes *this run's* fault and budget history, and
//! serving it to a later identical request would launder a degraded
//! answer as a clean one. The pipeline enforces this before every
//! `put`; [`LruCache`] is policy-free storage.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use lti::hash::Fnv64;
use numkit::DMat;
use obs::Counter;

use crate::pipeline::{Compressor, InputDirections, OrderControl, ReductionPlan, Reduction};
use crate::{Budget, Sampling};

/// Which pipeline stage an artifact caches. Part of the key, so kinds
/// can never collide even when their digests do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// A finished reduced model (skips the whole pipeline).
    Model,
    /// A realified sample sweep (skips straight to compress/project).
    Sweep,
    /// A serialized symbolic LU analysis (`sparsekit::SymbolicLu`
    /// bytes), keyed on the pencil and its priming shift.
    Symbolic,
    /// A serialized factored shift (`sparsekit::SparseLu<c64>` bytes).
    Factor,
}

impl ArtifactKind {
    /// Stable label used in `cache_lookup` trace spans.
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::Model => "model",
            ArtifactKind::Sweep => "sweep",
            ArtifactKind::Symbolic => "symbolic",
            ArtifactKind::Factor => "factor",
        }
    }
}

/// Content address of one artifact: kind, pencil hash, request digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Stage the artifact belongs to.
    pub kind: ArtifactKind,
    /// [`lti::LtiSystem::pencil_hash`] of the system.
    pub pencil: u64,
    /// Digest of everything else that can change the result's bits.
    pub digest: u64,
}

impl CacheKey {
    /// Key for a finished reduced model.
    pub fn model(pencil: u64, digest: u64) -> Self {
        CacheKey { kind: ArtifactKind::Model, pencil, digest }
    }

    /// Key for a realified sample sweep.
    pub fn sweep(pencil: u64, digest: u64) -> Self {
        CacheKey { kind: ArtifactKind::Sweep, pencil, digest }
    }

    /// Key for a serialized symbolic LU analysis. The digest is the
    /// priming shift's bit pattern: reusing a symbolic analysis primed
    /// at a *different* shift would change the pivot order and thus the
    /// result's bits (see `DESIGN.md`, "Service architecture").
    pub fn symbolic(pencil: u64, shift: numkit::c64) -> Self {
        CacheKey { kind: ArtifactKind::Symbolic, pencil, digest: shift_digest(shift) }
    }

    /// Key for a serialized factored shift.
    pub fn factor(pencil: u64, shift: numkit::c64) -> Self {
        CacheKey { kind: ArtifactKind::Factor, pencil, digest: shift_digest(shift) }
    }
}

/// Digest of one complex shift (exact bit pattern — a shift perturbed
/// by one ulp is a different factorization).
fn shift_digest(s: numkit::c64) -> u64 {
    let mut h = Fnv64::new();
    h.label("pmtbr-shift-v1");
    h.word(s.re.to_bits()).word(s.im.to_bits());
    h.finish()
}

/// A cached finished reduction: the result plus the trace events the
/// computing run emitted, so a warm hit can replay them byte-for-byte.
#[derive(Debug, Clone)]
pub struct CachedReduction {
    /// The finished reduction (model, diagnostics, report).
    pub reduction: Reduction,
    /// Trace events captured while the entry was computed (empty when
    /// the computing run was untraced).
    pub events: Vec<obs::Event>,
    /// Sequential-root numbering watermark of `events` (pre-computed so
    /// a warm hit can advance live numbering with
    /// [`obs::skip_seq_roots`] before replaying).
    pub seq_watermark: u64,
    /// `true` when `events` is a faithful capture (the computing run
    /// was traced). A traced run must treat an unfaithful entry as a
    /// miss, or its trace would silently lose the pipeline spans.
    pub traced: bool,
}

/// A cached sample sweep: everything compress/project need, minus the
/// (unfinishable) open trace span.
#[derive(Debug, Clone)]
pub struct CachedSweep {
    /// Weighted realified controllability samples.
    pub zmat: DMat,
    /// Column range of each surviving node's block in `zmat`.
    pub blocks: Vec<(usize, usize)>,
    /// Weighted realified observability samples (two-sided sweeps only).
    pub zl: Option<DMat>,
    /// Per-node ladder reports, index-aligned with the requested nodes.
    pub reports: Vec<lti::ShiftReport>,
    /// Number of nodes requested.
    pub requested: usize,
    /// Number of nodes that survived.
    pub surviving: usize,
    /// Uniform quadrature-weight renormalization factor.
    pub renorm: f64,
}

/// One cached artifact. Large payloads sit behind [`Arc`] so a hit is a
/// pointer clone, never a matrix copy.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A finished reduced model.
    Model(Arc<CachedReduction>),
    /// A realified sample sweep.
    Sweep(Arc<CachedSweep>),
    /// Serialized `sparsekit::SymbolicLu` bytes.
    Symbolic(Arc<Vec<u8>>),
    /// Serialized `sparsekit::SparseLu<c64>` bytes.
    Factor(Arc<Vec<u8>>),
}

impl Artifact {
    /// Deterministic size estimate used for byte-budget accounting and
    /// the [`obs::Counter::CacheBytes`] counter. A pure function of the
    /// artifact's contents — never of the backend's state — so every
    /// backend offers identical byte counts.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Artifact::Model(m) => {
                let model = &m.reduction.model;
                let mats = dmat_bytes(&model.reduced.a)
                    + dmat_bytes(&model.reduced.b)
                    + dmat_bytes(&model.reduced.c)
                    + dmat_bytes(&model.reduced.d)
                    + dmat_bytes(&model.v)
                    + model.singular_values.len() * 8;
                let diag = m.reduction.diagnostics.reports.len() * 48;
                mats + diag + m.events.len() * 160 + 128
            }
            Artifact::Sweep(s) => {
                dmat_bytes(&s.zmat)
                    + s.zl.as_ref().map_or(0, dmat_bytes)
                    + s.blocks.len() * 16
                    + s.reports.len() * 48
                    + 96
            }
            Artifact::Symbolic(b) | Artifact::Factor(b) => b.len(),
        }
    }
}

fn dmat_bytes(m: &DMat) -> usize {
    m.nrows() * m.ncols() * 8
}

/// Storage the pipeline consults at stage boundaries.
///
/// Implementations are *policy-free byte stores*: admission policy
/// (never cache a Degraded result) and all counter/trace emission live
/// in the pipeline, so every backend observes identical traffic and a
/// cold run is byte-identical across backends.
pub trait ArtifactCache: Send + Sync {
    /// Returns the artifact stored under `key`, if any, refreshing its
    /// recency.
    fn get(&self, key: &CacheKey) -> Option<Artifact>;

    /// Offers an artifact for admission. The backend may store it,
    /// evict older entries to make room, or discard the offer.
    fn put(&self, key: CacheKey, value: Artifact);

    /// `(entries, bytes)` currently resident.
    fn stats(&self) -> (usize, usize);
}

/// The no-op cache: every lookup misses, every offer is discarded.
///
/// This is the backend behind the plain `run_*` entry points, which
/// keeps the cached and uncached code paths literally the same path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCache;

impl ArtifactCache for NullCache {
    fn get(&self, _key: &CacheKey) -> Option<Artifact> {
        None
    }

    fn put(&self, _key: CacheKey, _value: Artifact) {}

    fn stats(&self) -> (usize, usize) {
        (0, 0)
    }
}

/// In-memory least-recently-used cache with a byte budget.
///
/// Deterministic by construction: entries live in `BTreeMap`s (numlint
/// DET01 — no hash-order iteration), recency is an explicit monotone
/// sequence number, and eviction pops the smallest sequence number
/// until the budget holds. An artifact larger than the whole budget is
/// discarded outright (evicting everything still wouldn't fit it).
/// Evictions increment [`obs::Counter::CacheEvict`] — the one counter
/// that is backend state, which is why the identity contract pins it
/// only on hit-free runs.
#[derive(Debug)]
pub struct LruCache {
    budget: usize,
    inner: Mutex<LruInner>,
}

#[derive(Debug, Default)]
struct LruInner {
    entries: BTreeMap<CacheKey, LruEntry>,
    recency: BTreeMap<u64, CacheKey>,
    seq: u64,
    bytes: usize,
}

#[derive(Debug)]
struct LruEntry {
    value: Artifact,
    bytes: usize,
    seq: u64,
}

impl LruCache {
    /// Creates a cache holding at most `budget_bytes` of artifact data
    /// (as measured by [`Artifact::approx_bytes`]).
    pub fn new(budget_bytes: usize) -> Self {
        LruCache { budget: budget_bytes, inner: Mutex::new(LruInner::default()) }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LruInner> {
        // A poisoned mutex means another thread panicked mid-update;
        // the maps themselves are always structurally valid between
        // statements that hold the lock, so continuing is safe.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl ArtifactCache for LruCache {
    fn get(&self, key: &CacheKey) -> Option<Artifact> {
        let mut inner = self.lock();
        inner.seq += 1;
        let seq = inner.seq;
        let entry = inner.entries.get_mut(key)?;
        let old = entry.seq;
        entry.seq = seq;
        let value = entry.value.clone();
        inner.recency.remove(&old);
        inner.recency.insert(seq, *key);
        Some(value)
    }

    fn put(&self, key: CacheKey, value: Artifact) {
        let bytes = value.approx_bytes();
        if bytes > self.budget {
            return;
        }
        let mut inner = self.lock();
        inner.seq += 1;
        let seq = inner.seq;
        if let Some(old) = inner.entries.remove(&key) {
            inner.recency.remove(&old.seq);
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        inner.entries.insert(key, LruEntry { value, bytes, seq });
        inner.recency.insert(seq, key);
        while inner.bytes > self.budget {
            let Some((&oldest, _)) = inner.recency.iter().next() else { break };
            let Some(victim) = inner.recency.remove(&oldest) else { break };
            if let Some(evicted) = inner.entries.remove(&victim) {
                inner.bytes -= evicted.bytes;
                obs::counters::add(Counter::CacheEvict, 1);
            }
        }
    }

    fn stats(&self) -> (usize, usize) {
        let inner = self.lock();
        (inner.entries.len(), inner.bytes)
    }
}

/// Digest of the raw `PMTBR_FAULT` environment spec. Fault injection
/// changes results bit-for-bit, so it must be part of every key; the
/// raw string is hashed (not the parsed plan) because parsing is
/// total on the cached path anyway — a malformed spec never reaches a
/// lookup.
pub(crate) fn fault_env_digest() -> u64 {
    let mut h = Fnv64::new();
    h.label("pmtbr-fault-env-v1");
    match std::env::var("PMTBR_FAULT") {
        Ok(spec) => h.label(&spec),
        Err(_) => h.word(0),
    };
    h.finish()
}

/// Digest of the budget caps (the cancel token carries no numeric
/// semantics and is excluded).
fn budget_words(h: &mut Fnv64, budget: &Budget) {
    for cap in [budget.max_lu_factors, budget.max_svd_sweeps, budget.max_sample_bytes] {
        match cap {
            Some(v) => h.word(1).word(v),
            None => h.word(0).word(0),
        };
    }
}

fn sampling_words(h: &mut Fnv64, sampling: &Sampling) {
    match sampling {
        Sampling::Linear { omega_max, n } => {
            h.word(1).word(omega_max.to_bits()).word(*n as u64);
        }
        Sampling::Log { omega_min, omega_max, n } => {
            h.word(2).word(omega_min.to_bits()).word(omega_max.to_bits()).word(*n as u64);
        }
        Sampling::Bands { bands, n } => {
            h.word(3).word(bands.len() as u64).word(*n as u64);
            for (lo, hi) in bands {
                h.word(lo.to_bits()).word(hi.to_bits());
            }
        }
        Sampling::Custom(points) => {
            h.word(4).word(points.len() as u64);
            for p in points {
                h.word(p.s.re.to_bits()).word(p.s.im.to_bits()).word(p.weight.to_bits());
            }
        }
        Sampling::Greedy { omega_max, pool, tol, max_shifts } => {
            h.word(5)
                .word(omega_max.to_bits())
                .word(*pool as u64)
                .word(tol.to_bits())
                .word(*max_shifts as u64);
        }
    }
}

fn directions_words(h: &mut Fnv64, directions: &InputDirections) {
    match directions {
        InputDirections::IdentityBlock => {
            h.word(1);
        }
        InputDirections::Correlated { u_samples, n_draws, corr_tol, seed } => {
            h.word(2)
                .word(lti::hash::hash_dense(6, u_samples))
                .word(*n_draws as u64)
                .word(corr_tol.to_bits())
                .word(*seed);
        }
    }
}

fn order_words(h: &mut Fnv64, order: &OrderControl) {
    match order {
        OrderControl::Tolerance { tolerance, max_order } => {
            h.word(1).word(tolerance.to_bits());
            match max_order {
                Some(q) => h.word(1).word(*q as u64),
                None => h.word(0).word(0),
            };
        }
        OrderControl::Exact(q) => {
            h.word(2).word(*q as u64);
        }
    }
}

fn compressor_word(compressor: &Compressor) -> u64 {
    match compressor {
        Compressor::JacobiSvd => 1,
        Compressor::Incremental => 2,
        Compressor::Balance => 3,
        Compressor::CrossGramian => 4,
    }
}

/// Digest of a full model request: plan + fault spec + budget caps.
/// Everything that can change the finished model's bits, except the
/// pencil itself (which is the other half of the key).
pub(crate) fn model_digest(plan: &ReductionPlan, env: u64, budget: &Budget) -> u64 {
    let mut h = Fnv64::new();
    h.label("pmtbr-model-key-v1");
    sampling_words(&mut h, &plan.sampling);
    directions_words(&mut h, &plan.directions);
    h.word(compressor_word(&plan.compressor));
    order_words(&mut h, &plan.order);
    h.word(env);
    budget_words(&mut h, budget);
    h.finish()
}

/// Digest of a sweep request: everything the sweep stage's bits depend
/// on. The compressor contributes only its *sidedness* (a two-sided
/// sweep also solves the transposed system), and order control not at
/// all — that is exactly what lets plans differing only in compressor
/// or order share one cached sweep.
pub(crate) fn sweep_digest(plan: &ReductionPlan, env: u64, budget: &Budget) -> u64 {
    let mut h = Fnv64::new();
    h.label("pmtbr-sweep-key-v1");
    sampling_words(&mut h, &plan.sampling);
    directions_words(&mut h, &plan.directions);
    h.word(u64::from(plan.compressor.is_two_sided()));
    h.word(env);
    budget_words(&mut h, budget);
    h.finish()
}

/// Emits the `cache_lookup` span (artifact kind, key, outcome) and
/// bumps the hit/miss counters. Called on *every* lookup, hit or miss,
/// by every backend — the span sequence is part of the trace identity
/// contract.
pub(crate) fn record_lookup(key: &CacheKey, hit: bool) {
    obs::counters::add(if hit { Counter::CacheHit } else { Counter::CacheMiss }, 1);
    let mut sp = obs::span("cache_lookup");
    sp.field_str("artifact", key.kind.label());
    sp.field_u64("pencil", key.pencil);
    sp.field_u64("digest", key.digest);
    sp.field_str("outcome", if hit { "hit" } else { "miss" });
}

/// Offers an artifact for admission: counts the bytes offered (a pure
/// function of the artifact, identical for every backend), emits the
/// `cache_store` span, and forwards to the backend.
pub(crate) fn record_offer(cache: &dyn ArtifactCache, key: CacheKey, value: Artifact) {
    let bytes = value.approx_bytes();
    obs::counters::add(Counter::CacheBytes, bytes as u64);
    let mut sp = obs::span("cache_store");
    sp.field_str("artifact", key.kind.label());
    sp.field_u64("pencil", key.pencil);
    sp.field_u64("digest", key.digest);
    sp.field_u64("bytes", bytes as u64);
    cache.put(key, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(bytes: usize) -> Artifact {
        Artifact::Symbolic(Arc::new(vec![0u8; bytes]))
    }

    #[test]
    fn null_cache_never_stores() {
        let c = NullCache;
        c.put(CacheKey::model(1, 2), probe(10));
        assert!(c.get(&CacheKey::model(1, 2)).is_none());
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let c = LruCache::new(100);
        c.put(CacheKey::model(1, 0), probe(40));
        c.put(CacheKey::model(2, 0), probe(40));
        // Touch entry 1 so entry 2 becomes the eviction victim.
        assert!(c.get(&CacheKey::model(1, 0)).is_some());
        c.put(CacheKey::model(3, 0), probe(40));
        assert!(c.get(&CacheKey::model(1, 0)).is_some());
        assert!(c.get(&CacheKey::model(2, 0)).is_none());
        assert!(c.get(&CacheKey::model(3, 0)).is_some());
        assert_eq!(c.stats(), (2, 80));
    }

    #[test]
    fn oversized_offers_are_discarded() {
        let c = LruCache::new(16);
        c.put(CacheKey::sweep(1, 0), probe(17));
        assert_eq!(c.stats(), (0, 0));
        c.put(CacheKey::sweep(1, 0), probe(16));
        assert_eq!(c.stats(), (1, 16));
    }

    #[test]
    fn replacing_a_key_reclaims_its_bytes() {
        let c = LruCache::new(100);
        c.put(CacheKey::factor(1, numkit::c64::new(0.0, 1.0)), probe(60));
        c.put(CacheKey::factor(1, numkit::c64::new(0.0, 1.0)), probe(30));
        assert_eq!(c.stats(), (1, 30));
    }

    #[test]
    fn kinds_never_collide() {
        let c = LruCache::new(1000);
        c.put(CacheKey::model(7, 9), probe(8));
        assert!(c.get(&CacheKey::sweep(7, 9)).is_none());
        assert!(c.get(&CacheKey::model(7, 9)).is_some());
    }

    #[test]
    fn shift_digest_is_bit_exact() {
        let a = shift_digest(numkit::c64::new(0.0, 1.0));
        let b = shift_digest(numkit::c64::new(0.0, 1.0 + f64::EPSILON));
        let neg = shift_digest(numkit::c64::new(-0.0, 1.0));
        assert_ne!(a, b);
        assert_ne!(a, neg, "-0.0 primes a different factorization than +0.0");
    }
}
