//! Greedy adaptive frequency selection: accuracy at a matched solve
//! budget, deterministic selection across thread counts, and recovery
//! composition (dropped shifts re-enter selection; LU budgets truncate
//! with honest accounting).

use lti::{Descriptor, NoFaults, RecoveryPolicy};
use numkit::{c64, NumError};
use pmtbr::{
    pipeline::{run_guarded, run_with},
    Budget, FaultKind, FaultPlan, FaultStage, OrderControl, PmtbrOptions, ReductionPlan, Sampling,
};

fn test_system() -> Descriptor {
    let ports = circuits::spread_ports(4, 6, 8);
    circuits::rc_mesh(4, 6, &ports, 1.0, 1.0, 2.0).unwrap()
}

/// In-band max relative transfer-function error on a fixed grid.
fn inband_error(sys: &Descriptor, red: &lti::StateSpace, omega_max: f64) -> f64 {
    let mut worst: f64 = 0.0;
    for k in 0..20 {
        let s = c64::new(0.0, omega_max * (k as f64 + 0.5) / 20.0);
        let h = sys.transfer_function(s).unwrap();
        let hr = red.transfer_function(s).unwrap();
        let mut num: f64 = 0.0;
        let mut den: f64 = 0.0;
        for i in 0..h.nrows() {
            for j in 0..h.ncols() {
                num += (h[(i, j)] - hr[(i, j)]).abs().powi(2);
                den += h[(i, j)].abs().powi(2);
            }
        }
        worst = worst.max((num / den.max(1e-300)).sqrt());
    }
    worst
}

fn order() -> OrderControl {
    OrderControl::Tolerance { tolerance: 1e-12, max_order: Some(6) }
}

#[test]
fn greedy_no_worse_than_fixed_grid_at_equal_solve_budget() {
    let sys = test_system();
    let omega_max = 10.0;
    let budget = 8;
    let fixed_opts = PmtbrOptions::new(Sampling::Linear { omega_max, n: budget })
        .with_tolerance(1e-12)
        .with_max_order(6);
    let fixed = run_with(
        &sys,
        &ReductionPlan::pmtbr(&fixed_opts),
        &RecoveryPolicy::default(),
        &NoFaults,
    )
    .unwrap();
    // tol = 0 disables early stopping: exactly `budget` accepted shifts,
    // the same number of LU-backed solves the fixed grid spends. The
    // default pool is the budget's own midpoint grid, so the exhausted
    // greedy selection is the fixed grid — only accepted in
    // surrogate-score order.
    let greedy = run_with(
        &sys,
        &ReductionPlan::greedy(omega_max, 0.0, budget, order()),
        &RecoveryPolicy::default(),
        &NoFaults,
    )
    .unwrap();
    assert_eq!(greedy.diagnostics.surviving, budget);
    assert_eq!(greedy.diagnostics.requested, budget);
    assert!(greedy.report.is_clean(), "clean run expected: {:?}", greedy.report);
    // Same column set, so the weighted-sample singular values agree to
    // roundoff (acceptance order only permutes columns, which shifts the
    // Jacobi rotation order by a few ulps).
    assert_eq!(greedy.model.singular_values.len(), fixed.model.singular_values.len());
    for (g, f) in greedy.model.singular_values.iter().zip(&fixed.model.singular_values) {
        assert!(
            (g - f).abs() <= 1e-10 * f.abs().max(1.0),
            "exhausting the default pool must reproduce the fixed grid: {g} vs {f}"
        );
    }
    let fixed_err = inband_error(&sys, &fixed.model.reduced, omega_max);
    let greedy_err = inband_error(&sys, &greedy.model.reduced, omega_max);
    assert!(
        greedy_err <= fixed_err * (1.0 + 1e-6),
        "greedy {greedy_err:.3e} must be no worse than fixed grid {fixed_err:.3e}"
    );

    // A denser pool trades quadrature uniformity for placement freedom;
    // it must still stay in the fixed grid's accuracy neighborhood.
    let mut dense = ReductionPlan::greedy(omega_max, 0.0, budget, order());
    dense.sampling =
        Sampling::Greedy { omega_max, pool: 4 * budget, tol: 0.0, max_shifts: budget };
    let dense = run_with(&sys, &dense, &RecoveryPolicy::default(), &NoFaults).unwrap();
    let dense_err = inband_error(&sys, &dense.model.reduced, omega_max);
    assert!(
        dense_err <= fixed_err * 1.25,
        "dense-pool greedy {dense_err:.3e} strayed too far from fixed grid {fixed_err:.3e}"
    );
}

#[test]
fn greedy_converges_early_under_loose_tolerance() {
    let sys = test_system();
    // A loose tolerance with a generous shift budget must trigger the
    // frequency-aware stopping rule well before the budget.
    let red = run_with(
        &sys,
        &ReductionPlan::greedy(10.0, 0.05, 32, order()),
        &RecoveryPolicy::default(),
        &NoFaults,
    )
    .unwrap();
    assert!(
        red.diagnostics.surviving < 32,
        "expected early convergence, used {} shifts",
        red.diagnostics.surviving
    );
    // The converged model still tracks the transfer function: at this
    // order cap the error is truncation-dominated, so a handful of
    // shifts must land within a modest factor of a generous fixed grid.
    let fixed_opts = PmtbrOptions::new(Sampling::Linear { omega_max: 10.0, n: 8 })
        .with_tolerance(1e-12)
        .with_max_order(6);
    let fixed = run_with(
        &sys,
        &ReductionPlan::pmtbr(&fixed_opts),
        &RecoveryPolicy::default(),
        &NoFaults,
    )
    .unwrap();
    let fixed_err = inband_error(&sys, &fixed.model.reduced, 10.0);
    let greedy_err = inband_error(&sys, &red.model.reduced, 10.0);
    assert!(
        greedy_err <= fixed_err * 1.5,
        "converged greedy {greedy_err:.3e} vs fixed grid {fixed_err:.3e}"
    );
}

fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let prior = std::env::var("PMTBR_THREADS").ok();
    std::env::set_var("PMTBR_THREADS", threads.to_string());
    let out = f();
    match prior {
        Some(v) => std::env::set_var("PMTBR_THREADS", v),
        None => std::env::remove_var("PMTBR_THREADS"),
    }
    out
}

#[test]
fn greedy_selection_bit_identical_across_thread_counts() {
    let sys = test_system();
    let plan = ReductionPlan::greedy(10.0, 1e-4, 10, order());
    let run = |threads: usize| {
        with_threads(threads, || {
            run_with(&sys, &plan, &RecoveryPolicy::default(), &NoFaults).unwrap()
        })
    };
    let base = run(1);
    let base_shifts: Vec<c64> = base.diagnostics.reports.iter().map(|r| r.s_used).collect();
    for threads in [2usize, 8] {
        let red = run(threads);
        let shifts: Vec<c64> = red.diagnostics.reports.iter().map(|r| r.s_used).collect();
        assert_eq!(shifts, base_shifts, "threads {threads}: selected shifts differ");
        assert_eq!(
            red.model.singular_values, base.model.singular_values,
            "threads {threads}: singular values differ"
        );
        assert_eq!(red.model.v, base.model.v, "threads {threads}: projection basis differs");
    }
}

#[test]
fn greedy_dropped_shifts_reenter_selection() {
    let sys = test_system();
    let max_shifts = 6;
    let mut plan = ReductionPlan::greedy(10.0, 0.0, max_shifts, order());
    // A pool wider than the budget leaves spare candidates, so dropped
    // shifts can be replaced instead of exhausting the pool.
    plan.sampling = Sampling::Greedy { omega_max: 10.0, pool: 24, tol: 0.0, max_shifts };
    // Injected panics at depth 2 drop whole candidates (both escalation
    // attempts are poisoned). A dropped candidate must re-enter
    // selection: the basis still reaches the full shift budget, and the
    // drops stay visible in the per-node reports.
    let faults = FaultPlan::new(7, 0.25, vec![FaultKind::Panic], 2)
        .with_stages(vec![FaultStage::Sweep]);
    let red = run_guarded(&sys, &plan, &RecoveryPolicy::default(), &faults, &Budget::default())
        .unwrap();
    assert!(red.diagnostics.dropped() > 0, "fault plan must actually drop shifts");
    assert_eq!(
        red.diagnostics.surviving, max_shifts,
        "dropped greedy shifts must re-enter selection, not shrink the basis"
    );
    assert_eq!(
        red.diagnostics.requested,
        max_shifts + red.diagnostics.dropped(),
        "every attempt is reported exactly once"
    );
    // Weights tile the band regardless of drops: no renormalization.
    assert_eq!(red.diagnostics.weight_renormalization, 1.0);
    assert!(red.model.singular_values.iter().all(|s| s.is_finite()));

    // Determinism under injected faults: the identical plan and fault
    // seed reproduce the run bit for bit, at any worker count.
    for threads in [1usize, 2, 8] {
        let again = with_threads(threads, || {
            run_guarded(&sys, &plan, &RecoveryPolicy::default(), &faults, &Budget::default())
                .unwrap()
        });
        assert_eq!(
            again.model.singular_values, red.model.singular_values,
            "threads {threads}: singular values differ under faults"
        );
        assert_eq!(again.model.v, red.model.v, "threads {threads}: basis differs under faults");
        assert_eq!(again.diagnostics.requested, red.diagnostics.requested);
    }
}

#[test]
fn greedy_composes_with_lu_budget() {
    let sys = test_system();
    let plan = ReductionPlan::greedy(10.0, 0.0, 8, order());
    let budget = Budget::default().with_max_lu_factors(3);
    // Counters are process-global and other tests factor LUs
    // concurrently, so the effective cap may shrink below 3 — the run
    // must then still terminate with either a best-effort degraded
    // model or an explicit exhaustion error, never a hang.
    match run_guarded(&sys, &plan, &RecoveryPolicy::default(), &NoFaults, &budget) {
        Ok(red) => {
            assert_eq!(red.report.budget_exhausted, Some("lu-factorizations"));
            assert!(red.report.is_degraded());
            assert!(red.diagnostics.surviving < 8);
            assert!(red.model.singular_values.iter().all(|s| s.is_finite()));
        }
        Err(NumError::BudgetExhausted { resource }) => {
            assert_eq!(resource, "lu-factorizations");
        }
        Err(e) => panic!("unexpected error: {e}"),
    }
}

#[test]
fn greedy_plan_validation() {
    let sys = test_system();
    let run = |plan: &ReductionPlan| run_with(&sys, plan, &RecoveryPolicy::default(), &NoFaults);
    // Degenerate parameters are rejected before any solve.
    let mut plan = ReductionPlan::greedy(10.0, 1e-3, 4, order());
    plan.sampling = Sampling::Greedy { omega_max: 10.0, pool: 2, tol: 1e-3, max_shifts: 4 };
    assert!(run(&plan).is_err(), "pool < max_shifts must be rejected");
    plan.sampling = Sampling::Greedy { omega_max: 0.0, pool: 64, tol: 1e-3, max_shifts: 4 };
    assert!(run(&plan).is_err(), "ω_max = 0 must be rejected");
    plan.sampling = Sampling::Greedy { omega_max: 10.0, pool: 64, tol: f64::NAN, max_shifts: 4 };
    assert!(run(&plan).is_err(), "NaN tolerance must be rejected");
    // Greedy scoring needs the identity-block excitation.
    let mut plan = ReductionPlan::greedy(10.0, 1e-3, 4, order());
    plan.directions = pmtbr::InputDirections::Correlated {
        u_samples: numkit::DMat::zeros(8, 10),
        n_draws: 4,
        corr_tol: 1e-8,
        seed: 1,
    };
    assert!(run(&plan).is_err(), "greedy × correlated must be rejected");
}

#[test]
fn greedy_works_two_sided() {
    let sys = test_system();
    let mut plan = ReductionPlan::greedy(10.0, 0.0, 8, OrderControl::Exact(4));
    plan.compressor = pmtbr::Compressor::Balance;
    let red = run_with(&sys, &plan, &RecoveryPolicy::default(), &NoFaults).unwrap();
    assert_eq!(red.model.order, 4);
    // Exhausting the default pool must land on the fixed-grid balanced
    // reduction (same nodes, same weights, both pencils solved).
    let fixed = run_with(
        &sys,
        &ReductionPlan::balanced(&Sampling::Linear { omega_max: 10.0, n: 8 }, 4),
        &RecoveryPolicy::default(),
        &NoFaults,
    )
    .unwrap();
    let fixed_err = inband_error(&sys, &fixed.model.reduced, 10.0);
    let greedy_err = inband_error(&sys, &red.model.reduced, 10.0);
    assert!(
        greedy_err <= fixed_err * (1.0 + 1e-6),
        "two-sided greedy {greedy_err:.3e} vs fixed balanced {fixed_err:.3e}"
    );
}
