//! Integration tests for the content-addressed artifact cache: the
//! bit-identity contract between uncached, cold-cached, and warm-cached
//! runs (models *and* traces, at several thread counts), byte-budget
//! eviction, and poisoned-entry (Degraded) rejection.
//!
//! The obs collector, counters, and `PMTBR_THREADS` are process-global,
//! so every test serializes on one mutex.

use std::sync::{Mutex, MutexGuard, OnceLock};

use obs::ClockKind;
use pmtbr::cache::{Artifact, ArtifactCache, CacheKey};
use pmtbr::pipeline::{run_budgeted, run_cached};
use pmtbr::{
    Budget, Compressor, LruCache, NullCache, PmtbrOptions, Reduction, ReductionPlan, Sampling,
};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn mesh() -> lti::Descriptor {
    circuits::rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0).unwrap()
}

fn plan() -> ReductionPlan {
    let opts = PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 8 }).with_max_order(6);
    ReductionPlan::pmtbr(&opts)
}

/// Exact bit comparison of two reductions: every matrix entry, the
/// singular spectrum, the order, and the full report.
fn assert_bit_identical(a: &Reduction, b: &Reduction) {
    let (ra, rb) = (&a.model.reduced, &b.model.reduced);
    for (ma, mb) in
        [(&ra.a, &rb.a), (&ra.b, &rb.b), (&ra.c, &rb.c), (&ra.d, &rb.d), (&a.model.v, &b.model.v)]
    {
        assert_eq!(ma.shape(), mb.shape());
        for i in 0..ma.nrows() {
            for j in 0..ma.ncols() {
                assert_eq!(ma[(i, j)].to_bits(), mb[(i, j)].to_bits(), "entry ({i},{j})");
            }
        }
    }
    let sa: Vec<u64> = a.model.singular_values.iter().map(|v| v.to_bits()).collect();
    let sb: Vec<u64> = b.model.singular_values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(sa, sb);
    assert_eq!(a.model.order, b.model.order);
    assert_eq!(a.report, b.report);
}

/// Runs `f` with a fresh trace collector installed and returns its
/// result plus the serialized trace.
fn traced<T>(f: impl FnOnce() -> T) -> (T, String) {
    assert!(obs::install(ClockKind::Counter));
    let out = f();
    let trace = obs::drain().expect("trace installed").to_jsonl();
    (out, trace)
}

/// Event lines that are not cache bookkeeping: the work-event slice the
/// replay contract pins byte-for-byte.
fn work_lines(trace: &str) -> Vec<&str> {
    trace
        .lines()
        .filter(|l| l.contains("\"span\":\"") && !l.contains("\"span\":\"cache_"))
        .collect()
}

#[test]
fn cached_and_uncached_runs_are_bit_identical_across_threads() {
    let _g = lock();
    let sys = mesh();
    let plan = plan();
    let budget = Budget::default();
    for threads in ["1", "2", "8"] {
        std::env::set_var("PMTBR_THREADS", threads);
        let (baseline, baseline_trace) =
            traced(|| run_budgeted(&sys, &plan, &budget).expect("uncached run"));

        // Cold run through a real cache: byte-identical to the uncached
        // run — same model, same report, same trace, same counters line.
        let cache = LruCache::new(64 << 20);
        let (cold, cold_trace) =
            traced(|| run_cached(&sys, &plan, &budget, &cache).expect("cold run"));
        assert_bit_identical(&baseline, &cold);
        assert_eq!(baseline_trace, cold_trace, "cold-cached trace must equal uncached trace");

        // Warm run: the model is bit-identical and the replayed work
        // events are byte-identical; only the cache_lookup outcome and
        // the counters line may differ.
        let (warm, warm_trace) =
            traced(|| run_cached(&sys, &plan, &budget, &cache).expect("warm run"));
        assert_bit_identical(&baseline, &warm);
        assert_eq!(work_lines(&cold_trace), work_lines(&warm_trace));
        assert!(warm_trace.contains("\"outcome\":\"hit\""));
    }
    std::env::remove_var("PMTBR_THREADS");
}

#[test]
fn warm_hits_skip_the_sweep_entirely() {
    let _g = lock();
    let sys = mesh();
    let plan = plan();
    let budget = Budget::default();
    let cache = LruCache::new(64 << 20);
    run_cached(&sys, &plan, &budget, &cache).expect("cold run");
    let lu_before = obs::counters::get(obs::Counter::LuFactor);
    let hits_before = obs::counters::get(obs::Counter::CacheHit);
    let warm = run_cached(&sys, &plan, &budget, &cache).expect("warm run");
    assert_eq!(obs::counters::get(obs::Counter::LuFactor), lu_before, "no new factorizations");
    assert_eq!(obs::counters::get(obs::Counter::CacheHit), hits_before + 1);
    assert!(warm.report.is_clean());
}

#[test]
fn plans_sharing_a_sweep_hit_the_sweep_artifact() {
    let _g = lock();
    let sys = mesh();
    let budget = Budget::default();
    let cache = LruCache::new(64 << 20);
    run_cached(&sys, &plan(), &budget, &cache).expect("cold run");

    // Same sampling and directions, different compressor: the model key
    // misses but the sweep key hits, so no new LU work is spent.
    let mut alt = plan();
    alt.compressor = Compressor::Incremental;
    let lu_before = obs::counters::get(obs::Counter::LuFactor);
    let via_cache = run_cached(&sys, &alt, &budget, &cache).expect("sweep-hit run");
    assert_eq!(obs::counters::get(obs::Counter::LuFactor), lu_before, "sweep was reused");

    // And the model it produces is bit-identical to a from-scratch run
    // of the same plan.
    let from_scratch = run_cached(&sys, &alt, &budget, &NullCache).expect("scratch run");
    assert_bit_identical(&from_scratch, &via_cache);
}

#[test]
fn tiny_byte_budgets_evict_deterministically() {
    let _g = lock();
    let sys = mesh();
    let budget = Budget::default();
    // Big enough for one run's artifacts, not two runs' worth.
    let one_run = {
        let probe = LruCache::new(usize::MAX >> 1);
        run_cached(&sys, &plan(), &budget, &probe).expect("probe run");
        probe.stats().1
    };
    let cache = LruCache::new(one_run + one_run / 4);
    let evicted_before = obs::counters::get(obs::Counter::CacheEvict);
    run_cached(&sys, &plan(), &budget, &cache).expect("first plan");
    // A different node count is a different sweep key, so a second full
    // sweep artifact is offered and the budget must evict.
    let opts = PmtbrOptions::new(Sampling::Linear { omega_max: 20.0, n: 9 }).with_max_order(6);
    run_cached(&sys, &ReductionPlan::pmtbr(&opts), &budget, &cache).expect("second plan");
    let (entries, bytes) = cache.stats();
    assert!(bytes <= cache.budget_bytes(), "byte budget holds after eviction");
    assert!(entries < 4, "older artifacts were evicted, not accumulated");
    assert!(
        obs::counters::get(obs::Counter::CacheEvict) > evicted_before,
        "evictions are counted"
    );
}

#[test]
fn degraded_results_are_never_cached() {
    let _g = lock();
    let sys = mesh();
    // A one-factorization budget truncates the sweep: the result is
    // Degraded and must be rejected by the admission policy.
    let budget = Budget::default().with_max_lu_factors(1);
    let cache = LruCache::new(64 << 20);
    let red = run_cached(&sys, &plan(), &budget, &cache).expect("degraded run");
    assert!(red.report.is_degraded());
    assert_eq!(cache.stats(), (0, 0), "no poisoned entries admitted");
    // The degraded report names the stage that consumed the budget.
    assert!(red.report.notes.iter().any(|n| n.contains("sweep")), "notes: {:?}", red.report.notes);
}

#[test]
fn sparsekit_artifacts_round_trip_through_the_cache() {
    let _g = lock();
    let sys = mesh();
    let pencil = lti::LtiSystem::pencil_hash(&sys).expect("descriptor has a pencil hash");
    let shift = numkit::c64::new(0.0, 1.5);
    let lu = sys.factor_shifted(shift).expect("factor");
    let bytes = lu.to_bytes();
    let cache = LruCache::new(1 << 20);
    cache.put(CacheKey::factor(pencil, shift), Artifact::Factor(bytes.clone().into()));
    match cache.get(&CacheKey::factor(pencil, shift)) {
        Some(Artifact::Factor(stored)) => assert_eq!(*stored, bytes),
        other => panic!("expected a factor artifact, got {other:?}"),
    }
    // A one-ulp shift perturbation is a different key.
    let nudged = numkit::c64::new(0.0, 1.5 + f64::EPSILON);
    assert!(cache.get(&CacheKey::factor(pencil, nudged)).is_none());
}
