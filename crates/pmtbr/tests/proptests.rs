//! Randomized property tests for the PMTBR algorithms on stable systems.
//!
//! Random stable symmetric (RC-like) systems are generated with the
//! in-tree [`SplitMix64`] generator (the workspace builds with zero
//! external crates, so no proptest).

use lti::StateSpace;
use numkit::{DMat, SplitMix64};
use pmtbr::{pmtbr, sample_basis, PmtbrOptions, SamplePoint, Sampling};

const SEEDS: u64 = 24;

/// A random stable symmetric system (RC-like) of size 4–8.
fn stable_symmetric(rng: &mut SplitMix64) -> StateSpace {
    let n = 4 + rng.next_usize(5);
    let mut a = DMat::from_fn(n, n, |_, _| rng.next_range(-1.0, 1.0));
    a.symmetrize();
    for i in 0..n {
        let rowsum: f64 = (0..n).map(|j| a[(i, j)].abs()).sum();
        a[(i, i)] = -(rowsum + 0.5);
    }
    let b = DMat::from_fn(n, 1, |_, _| rng.next_range(-1.0, 1.0));
    let c = b.transpose();
    StateSpace::new(a, b, c, None).expect("consistent shapes")
}

/// Scaling all quadrature weights by a constant rescales the singular
/// values but leaves the projection subspace (and thus the reduced model)
/// unchanged.
#[test]
fn weight_scaling_invariance() {
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(seed);
        let sys = stable_symmetric(&mut rng);
        let scale = rng.next_range(0.1, 10.0);
        let base: Vec<SamplePoint> =
            Sampling::Linear { omega_max: 10.0, n: 6 }.points().unwrap();
        let scaled: Vec<SamplePoint> = base
            .iter()
            .map(|p| SamplePoint { s: p.s, weight: p.weight * scale })
            .collect();
        let m1 =
            pmtbr(&sys, &PmtbrOptions::new(Sampling::Custom(base)).with_max_order(3)).unwrap();
        let m2 =
            pmtbr(&sys, &PmtbrOptions::new(Sampling::Custom(scaled)).with_max_order(3)).unwrap();
        // Transfer functions of the reduced models agree.
        for &w in &[0.0, 1.0, 4.0] {
            let s = numkit::c64::new(0.0, w);
            let h1 = m1.reduced.transfer_function(s).unwrap()[(0, 0)];
            let h2 = m2.reduced.transfer_function(s).unwrap()[(0, 0)];
            assert!((h1 - h2).abs() < 1e-8 * (1.0 + h1.abs()), "seed {seed}");
        }
        // Singular values scale by √scale.
        for (a, b) in m1.singular_values.iter().zip(&m2.singular_values) {
            assert!((b - a * scale.sqrt()).abs() < 1e-8 * (1.0 + b.abs()), "seed {seed}");
        }
    }
}

/// The reduced model of a stable symmetric system is stable (congruence
/// projection of a negative definite matrix).
#[test]
fn reduced_models_stay_stable() {
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(seed);
        let sys = stable_symmetric(&mut rng);
        let m = pmtbr(
            &sys,
            &PmtbrOptions::new(Sampling::Linear { omega_max: 15.0, n: 8 }).with_max_order(3),
        )
        .unwrap();
        assert!(m.reduced.is_stable().unwrap(), "seed {seed}");
    }
}

/// Error estimates decrease monotonically with order, and the model error
/// at the sample frequencies is controlled by the spectrum: keeping
/// everything significant reproduces the samples.
#[test]
fn estimates_monotone_and_interpolatory() {
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(seed);
        let sys = stable_symmetric(&mut rng);
        let sampling = Sampling::Linear { omega_max: 12.0, n: 8 };
        let basis = sample_basis(&sys, &sampling).unwrap();
        let est = basis.error_estimates();
        for w in est.windows(2) {
            assert!(w[0] >= w[1] - 1e-14, "seed {seed}");
        }
        let m =
            pmtbr(&sys, &PmtbrOptions::new(sampling.clone()).with_tolerance(1e-13)).unwrap();
        for pt in sampling.points().unwrap() {
            let h = sys.transfer_function(pt.s).unwrap()[(0, 0)];
            let hr = m.reduced.transfer_function(pt.s).unwrap()[(0, 0)];
            assert!(
                (h - hr).abs() < 1e-6 * (1.0 + h.abs()),
                "seed {seed}: sample at {} not interpolated: {} vs {}",
                pt.s,
                h,
                hr
            );
        }
    }
}

/// More samples never make the captured subspace smaller: nested uniform
/// refinements keep the total captured energy within a modest factor.
#[test]
fn energy_grows_with_samples() {
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(seed);
        let sys = stable_symmetric(&mut rng);
        let few = sample_basis(&sys, &Sampling::Linear { omega_max: 10.0, n: 4 }).unwrap();
        let many = sample_basis(&sys, &Sampling::Linear { omega_max: 10.0, n: 16 }).unwrap();
        let sum = |s: &[f64]| s.iter().map(|x| x * x).sum::<f64>();
        // Total sample energy approximates ∫‖z‖²dω: refinement converges,
        // so the two should be within a factor ~4 (loose sanity bound).
        let (ef, em) = (sum(few.singular_values()), sum(many.singular_values()));
        assert!(em < 4.0 * ef && ef < 4.0 * em, "seed {seed}: energies diverged: {ef} vs {em}");
    }
}
