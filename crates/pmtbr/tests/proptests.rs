//! Property tests for the PMTBR algorithms on randomized stable systems.

use lti::StateSpace;
use numkit::DMat;
use pmtbr::{pmtbr, sample_basis, PmtbrOptions, SamplePoint, Sampling};
use proptest::prelude::*;

/// Strategy: a random stable symmetric system (RC-like) of size 4–8.
fn stable_symmetric() -> impl Strategy<Value = StateSpace> {
    (4usize..9).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * n + n).prop_map(move |data| {
            let mut a = DMat::from_row_major(n, n, data[..n * n].to_vec());
            a.symmetrize();
            for i in 0..n {
                let rowsum: f64 = (0..n).map(|j| a[(i, j)].abs()).sum();
                a[(i, i)] = -(rowsum + 0.5);
            }
            let b = DMat::from_fn(n, 1, |i, _| data[n * n + i]);
            let c = b.transpose();
            StateSpace::new(a, b, c, None).expect("consistent shapes")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scaling all quadrature weights by a constant rescales the
    /// singular values but leaves the projection subspace (and thus the
    /// reduced model) unchanged.
    #[test]
    fn weight_scaling_invariance(sys in stable_symmetric(), scale in 0.1f64..10.0) {
        let base: Vec<SamplePoint> = Sampling::Linear { omega_max: 10.0, n: 6 }
            .points()
            .unwrap();
        let scaled: Vec<SamplePoint> = base
            .iter()
            .map(|p| SamplePoint { s: p.s, weight: p.weight * scale })
            .collect();
        let m1 = pmtbr(
            &sys,
            &PmtbrOptions::new(Sampling::Custom(base)).with_max_order(3),
        )
        .unwrap();
        let m2 = pmtbr(
            &sys,
            &PmtbrOptions::new(Sampling::Custom(scaled)).with_max_order(3),
        )
        .unwrap();
        // Transfer functions of the reduced models agree.
        for &w in &[0.0, 1.0, 4.0] {
            let s = numkit::c64::new(0.0, w);
            let h1 = m1.reduced.transfer_function(s).unwrap()[(0, 0)];
            let h2 = m2.reduced.transfer_function(s).unwrap()[(0, 0)];
            prop_assert!((h1 - h2).abs() < 1e-8 * (1.0 + h1.abs()));
        }
        // Singular values scale by √scale.
        for (a, b) in m1.singular_values.iter().zip(&m2.singular_values) {
            prop_assert!((b - a * scale.sqrt()).abs() < 1e-8 * (1.0 + b.abs()));
        }
    }

    /// The reduced model of a stable symmetric system is stable
    /// (congruence projection of a negative definite matrix).
    #[test]
    fn reduced_models_stay_stable(sys in stable_symmetric()) {
        let m = pmtbr(
            &sys,
            &PmtbrOptions::new(Sampling::Linear { omega_max: 15.0, n: 8 }).with_max_order(3),
        )
        .unwrap();
        prop_assert!(m.reduced.is_stable().unwrap());
    }

    /// Error estimates decrease monotonically with order, and the model
    /// error at the sample frequencies is controlled by the spectrum:
    /// keeping everything significant reproduces the samples.
    #[test]
    fn estimates_monotone_and_interpolatory(sys in stable_symmetric()) {
        let sampling = Sampling::Linear { omega_max: 12.0, n: 8 };
        let basis = sample_basis(&sys, &sampling).unwrap();
        let est = basis.error_estimates();
        for w in est.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-14);
        }
        let m = pmtbr(&sys, &PmtbrOptions::new(sampling.clone()).with_tolerance(1e-13))
            .unwrap();
        for pt in sampling.points().unwrap() {
            let h = sys.transfer_function(pt.s).unwrap()[(0, 0)];
            let hr = m.reduced.transfer_function(pt.s).unwrap()[(0, 0)];
            prop_assert!(
                (h - hr).abs() < 1e-6 * (1.0 + h.abs()),
                "sample at {} not interpolated: {} vs {}", pt.s, h, hr
            );
        }
    }

    /// More samples never make the captured subspace smaller: the
    /// leading singular value is non-decreasing in the sample set (for
    /// nested uniform refinements the total captured energy grows).
    #[test]
    fn energy_grows_with_samples(sys in stable_symmetric()) {
        let few = sample_basis(&sys, &Sampling::Linear { omega_max: 10.0, n: 4 }).unwrap();
        let many = sample_basis(&sys, &Sampling::Linear { omega_max: 10.0, n: 16 }).unwrap();
        let sum = |s: &[f64]| s.iter().map(|x| x * x).sum::<f64>();
        // Total sample energy approximates ∫‖z‖²dω: refinement converges,
        // so the two should be within a factor ~4 (loose sanity bound).
        let (ef, em) = (sum(few.singular_values()), sum(many.singular_values()));
        prop_assert!(em < 4.0 * ef && ef < 4.0 * em, "energies diverged: {} vs {}", ef, em);
    }
}
