//! Determinism of the parallel sampling engine.
//!
//! The contract: `PMTBR_THREADS` (and the machine's core count) must
//! never change any numeric result. These tests pin that down by running
//! the same reductions at thread counts {1, 2, 8} and demanding
//! bit-identical outputs, and by checking the engine path against the
//! plain sequential per-point formulation.

use lti::{Descriptor, ShiftSolveEngine};
use numkit::{c64, DMat, ZMat};
use pmtbr::{sample_basis, SampleBasis, Sampling};

fn test_system() -> Descriptor {
    let ports = circuits::spread_ports(4, 6, 8);
    circuits::rc_mesh(4, 6, &ports, 1.0, 1.0, 2.0).unwrap()
}

/// Runs `f` with `PMTBR_THREADS` set to `threads`, restoring the prior
/// value afterwards.
fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let prior = std::env::var("PMTBR_THREADS").ok();
    std::env::set_var("PMTBR_THREADS", threads.to_string());
    let out = f();
    match prior {
        Some(v) => std::env::set_var("PMTBR_THREADS", v),
        None => std::env::remove_var("PMTBR_THREADS"),
    }
    out
}

#[test]
fn sample_basis_bit_identical_across_thread_counts() {
    let sys = test_system();
    let sampling = Sampling::Linear { omega_max: 10.0, n: 17 };
    let runs: Vec<SampleBasis> = [1usize, 2, 8]
        .iter()
        .map(|&t| with_threads(t, || sample_basis(&sys, &sampling).unwrap()))
        .collect();
    for (k, run) in runs.iter().enumerate().skip(1) {
        assert_eq!(run.svd.s, runs[0].svd.s, "threads run {k}: singular values differ");
        assert_eq!(run.svd.u, runs[0].svd.u, "threads run {k}: left vectors differ");
        assert_eq!(run.svd.v, runs[0].svd.v, "threads run {k}: right vectors differ");
    }
}

#[test]
fn engine_sample_basis_matches_sequential_seed_path() {
    // The pre-engine formulation: one fresh factorization per point,
    // sequential. The engine (symbolic reuse, fan-out) must agree to
    // far better than 1e-12 on every singular value.
    let sys = test_system();
    let sampling = Sampling::Linear { omega_max: 10.0, n: 13 };
    let basis = with_threads(2, || sample_basis(&sys, &sampling).unwrap());

    let points = sampling.points().unwrap();
    let b = sys.b.to_complex();
    let mut cols: Vec<Vec<f64>> = Vec::new();
    for pt in &points {
        let z = sys.solve_shifted(pt.s, &b).unwrap();
        let zw = z.scale(pt.weight.sqrt());
        let real = lti::realify_columns(&zw, 1e-13);
        for j in 0..real.ncols() {
            cols.push((0..real.nrows()).map(|i| real[(i, j)]).collect());
        }
    }
    let zmat = DMat::from_cols(&cols);
    let reference = numkit::svd(&zmat).unwrap();

    assert_eq!(basis.svd.s.len(), reference.s.len(), "column counts diverged");
    let s0 = reference.s[0];
    for (a, r) in basis.svd.s.iter().zip(&reference.s) {
        assert!((a - r).abs() <= 1e-12 * s0, "engine {a} vs seed path {r}");
    }
}

#[test]
fn input_correlated_identical_across_thread_counts() {
    let sys = test_system();
    let u = lti::dithered_square_inputs(8, 150, 0.05, 4.0, 0.1, 1);
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut opts = pmtbr::InputCorrelatedOptions::new(Sampling::Linear {
                omega_max: 6.0,
                n: 7,
            });
            opts.n_draws = 20;
            opts.max_order = Some(5);
            pmtbr::input_correlated_pmtbr(&sys, &u, &opts).unwrap()
        })
    };
    let base = run(1);
    for threads in [2usize, 8] {
        let m = run(threads);
        assert_eq!(m.singular_values, base.singular_values, "threads {threads}");
        assert_eq!(m.v, base.v, "threads {threads}: projection basis differs");
    }
}

#[test]
fn frequency_selective_identical_across_thread_counts() {
    let sys = test_system();
    let run = |threads: usize| {
        with_threads(threads, || {
            pmtbr::frequency_selective_pmtbr(&sys, &[(0.0, 4.0)], 11, Some(6), 1e-12).unwrap()
        })
    };
    let base = run(1);
    for threads in [2usize, 8] {
        let m = run(threads);
        assert_eq!(m.singular_values, base.singular_values, "threads {threads}");
        assert_eq!(m.v, base.v, "threads {threads}");
    }
}

#[test]
fn engine_solutions_bitwise_equal_across_thread_counts() {
    let sys = test_system();
    let rhs: ZMat = sys.b.to_complex();
    let shifts: Vec<c64> = (0..12).map(|k| c64::new(0.0, 0.8 * k as f64)).collect();
    let baseline = ShiftSolveEngine::new(&sys).solve_many(&shifts, &rhs, 1).unwrap();
    for threads in [2usize, 8] {
        let zs = ShiftSolveEngine::new(&sys).solve_many(&shifts, &rhs, threads).unwrap();
        for (k, (z, b)) in zs.iter().zip(&baseline).enumerate() {
            assert_eq!(z, b, "threads {threads} shift {k}");
        }
    }
}
