//! Declarative method registry for `pmtbr-cli reduce`.
//!
//! Every reduction algorithm the CLI can run is one [`Method`] entry in
//! [`METHODS`]: a name, a one-line summary, whether `--order` is
//! mandatory, and a runner from `(system, request)` to a reduced model
//! plus report lines. The binary's `reduce` dispatch, its usage text,
//! and its unknown-method error are all derived from this table, so the
//! three can never drift apart again — adding a variant here is the
//! whole job.
//!
//! The PMTBR-family entries are thin [`pmtbr::ReductionPlan`]
//! constructors executed by [`pmtbr::pipeline::run`], which means every
//! method inherits the tolerant parallel sweep: `PMTBR_FAULT` degrades
//! the quadrature instead of erroring, `--threads` pins the worker
//! count, `--trace` records the sweep, and the returned
//! [`SweepDiagnostics`] drive the binary's exit-code policy uniformly.
//! The Krylov and dense-TBR baselines carry no sweep diagnostics
//! (`diagnostics: None`) and are always strict.

use lti::{Descriptor, StateSpace};
use numkit::c64;
use pmtbr::{
    ArtifactCache, Budget, InputCorrelatedOptions, PipelineReport, PmtbrOptions, ReductionPlan,
    Sampling, SweepDiagnostics,
};

mod policy;
mod service;

pub use policy::{evaluate_acceptance, summarize_pipeline, summarize_sweep, Acceptance, Verdict};
pub use service::{handle_job, mat_to_wire, wire_to_mat};

/// What `reduce` collected from the command line; method runners read
/// only the fields they use.
#[derive(Debug, Clone)]
pub struct ReduceRequest {
    /// Upper band edge in rad/s (`--band`, converted from Hz).
    pub omega_max: f64,
    /// Frequency bands in rad/s (`--bands`, default `[(0, omega_max)]`);
    /// only the frequency-selective method reads more than the default.
    pub bands: Vec<(f64, f64)>,
    /// Number of quadrature nodes (`--samples`).
    pub samples: usize,
    /// Relative singular-value truncation tolerance (`--tol`).
    pub tol: f64,
    /// Requested reduced order (`--order`); methods with
    /// [`Method::needs_order`] refuse to run without it, the others
    /// treat it as a cap.
    pub order: Option<usize>,
    /// Deterministic work budget (`--budget-*` flags); only the
    /// pipeline-backed methods enforce it, the strict baselines ignore
    /// it.
    pub budget: Budget,
    /// Greedy-sampling convergence tolerance (`--greedy-tol`; `0`
    /// disables early stopping). Only the `greedy` method reads it.
    pub greedy_tol: f64,
    /// Greedy-sampling hard shift budget (`--greedy-max-shifts`;
    /// defaults to `--samples`). Only the `greedy` method reads it.
    pub greedy_max_shifts: Option<usize>,
}

impl ReduceRequest {
    /// A request over `[0, omega_max]` with the CLI's defaults.
    pub fn new(omega_max: f64, samples: usize) -> Self {
        ReduceRequest {
            omega_max,
            bands: vec![(0.0, omega_max)],
            samples,
            tol: 1e-8,
            order: None,
            budget: Budget::default(),
            greedy_tol: 1e-3,
            greedy_max_shifts: None,
        }
    }

    fn sampling(&self) -> Sampling {
        Sampling::Linear { omega_max: self.omega_max, n: self.samples }
    }

    fn pmtbr_options(&self) -> PmtbrOptions {
        let mut opts = PmtbrOptions::new(self.sampling()).with_tolerance(self.tol);
        if let Some(q) = self.order {
            opts = opts.with_max_order(q);
        }
        opts
    }

    fn order_required(&self, name: &str) -> Result<usize, String> {
        self.order.ok_or_else(|| format!("{name} requires --order"))
    }
}

/// A reduced model plus everything the CLI prints about it.
#[derive(Debug)]
pub struct MethodOutput {
    /// The reduced state-space model (dumped as A/B/C and cross-checked
    /// by `--check`).
    pub reduced: StateSpace,
    /// Report lines for stdout, starting with `method: <label>`.
    pub report: Vec<String>,
    /// Sweep accounting for pipeline-backed methods; `None` for strict
    /// baselines. Drives the degraded/rejected exit-code policy.
    pub diagnostics: Option<SweepDiagnostics>,
    /// Per-stage fault-containment outcomes for pipeline-backed
    /// methods; `None` for strict baselines. A non-clean report is
    /// echoed to stderr and budget exhaustion maps to its own exit
    /// code.
    pub pipeline: Option<PipelineReport>,
}

/// One `reduce --method` entry.
pub struct Method {
    /// The `--method` spelling.
    pub name: &'static str,
    /// One-line description for the usage text.
    pub summary: &'static str,
    /// Whether `--order` is mandatory (`false` ⇒ tolerance-driven with
    /// `--order` as an optional cap).
    pub needs_order: bool,
    /// Builds the reduced model.
    pub run: fn(&Descriptor, &ReduceRequest, &dyn ArtifactCache) -> Result<MethodOutput, String>,
}

/// Report lines shared by every pipeline-backed method.
fn pipeline_report(label: &str, red: &pmtbr::Reduction) -> Vec<String> {
    let m = &red.model;
    let diag = &red.diagnostics;
    let mut lines = vec![
        format!("method: {label}"),
        format!("order: {}", m.order),
        format!("error_estimate: {:.6e}", m.error_estimate),
        format!("samples_surviving: {}/{}", diag.surviving, diag.requested),
        "singular_values:".to_string(),
    ];
    for (i, s) in m.singular_values.iter().take(m.order + 5).enumerate() {
        lines.push(format!("  sigma_{i}: {s:.6e}"));
    }
    lines
}

fn run_plan(
    sys: &Descriptor,
    plan: &ReductionPlan,
    req: &ReduceRequest,
    cache: &dyn ArtifactCache,
    label: &str,
) -> Result<MethodOutput, String> {
    let red = pmtbr::pipeline::run_cached(sys, plan, &req.budget, cache)
        .map_err(|e| e.to_string())?;
    Ok(MethodOutput {
        report: pipeline_report(label, &red),
        reduced: red.model.reduced.clone(),
        diagnostics: Some(red.diagnostics),
        pipeline: Some(red.report),
    })
}

fn run_pmtbr(sys: &Descriptor, req: &ReduceRequest, cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    run_plan(sys, &ReductionPlan::pmtbr(&req.pmtbr_options()), req, cache, "pmtbr")
}

fn run_balanced(sys: &Descriptor, req: &ReduceRequest, cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    let q = req.order_required("balanced")?;
    run_plan(sys, &ReductionPlan::balanced(&req.sampling(), q), req, cache, "balanced-pmtbr")
}

fn run_cross(sys: &Descriptor, req: &ReduceRequest, cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    let q = req.order_required("cross")?;
    run_plan(sys, &ReductionPlan::cross_gramian(&req.sampling(), q), req, cache, "cross-gramian-pmtbr")
}

fn run_fsel(sys: &Descriptor, req: &ReduceRequest, cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    let plan = ReductionPlan::frequency_selective(&req.bands, req.samples, req.order, req.tol);
    run_plan(sys, &plan, req, cache, "frequency-selective-pmtbr")
}

fn run_adaptive(sys: &Descriptor, req: &ReduceRequest, _cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    let m = pmtbr::adaptive_pmtbr(
        sys,
        adaptive_lo(req.omega_max),
        req.omega_max,
        req.tol,
        req.samples.max(3),
        req.order,
    )
    .map_err(|e| e.to_string())?;
    let mut report = vec![
        "method: adaptive-pmtbr".to_string(),
        format!("order: {}", m.model.order),
        format!("error_estimate: {:.6e}", m.model.error_estimate),
        format!(
            "samples_surviving: {}/{}",
            m.diagnostics.surviving, m.diagnostics.requested
        ),
        format!("chosen_points: {}", m.chosen_omegas.len()),
        "singular_values:".to_string(),
    ];
    for (i, s) in m.model.singular_values.iter().take(m.model.order + 5).enumerate() {
        report.push(format!("  sigma_{i}: {s:.6e}"));
    }
    Ok(MethodOutput {
        reduced: m.model.reduced,
        report,
        diagnostics: Some(m.diagnostics),
        pipeline: None,
    })
}

/// Adaptive bisection needs a nonzero lower edge well below the band.
fn adaptive_lo(omega_max: f64) -> f64 {
    omega_max * 1e-3
}

fn run_greedy(sys: &Descriptor, req: &ReduceRequest, cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    let max_shifts = req.greedy_max_shifts.unwrap_or(req.samples).max(1);
    let order = pmtbr::OrderControl::Tolerance { tolerance: req.tol, max_order: req.order };
    let plan = ReductionPlan::greedy(req.omega_max, req.greedy_tol, max_shifts, order);
    run_plan(sys, &plan, req, cache, "greedy-pmtbr")
}

fn run_correlated(sys: &Descriptor, req: &ReduceRequest, cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    // No waveform file flows through the CLI yet, so train on the
    // deterministic dithered-square ensemble the paper's transient
    // experiments use, time-scaled to the requested band.
    let h = 2.5 / req.omega_max;
    let u = lti::dithered_square_inputs(sys.ninputs(), 200, h, 80.0 * h, 0.1, 1);
    let mut opts = InputCorrelatedOptions::new(req.sampling());
    opts.tolerance = req.tol;
    opts.max_order = req.order;
    opts.n_draws = (2 * req.samples).max(8);
    run_plan(
        sys,
        &ReductionPlan::input_correlated(&u, &opts),
        req,
        cache,
        "input-correlated-pmtbr",
    )
}

fn run_prima(sys: &Descriptor, req: &ReduceRequest, _cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    let q = req.order_required("prima")?;
    let m = krylov::prima(sys, q, 0.0).map_err(|e| e.to_string())?;
    Ok(MethodOutput {
        report: vec![
            "method: prima".to_string(),
            format!("order: {}", m.reduced.nstates()),
        ],
        reduced: m.reduced,
        diagnostics: None,
        pipeline: None,
    })
}

fn run_mpproj(sys: &Descriptor, req: &ReduceRequest, _cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    let q = req.order_required("mpproj")?;
    let pts: Vec<c64> = req
        .sampling()
        .points()
        .map_err(|e| e.to_string())?
        .iter()
        .map(|p| p.s)
        .collect();
    let m = krylov::mpproj(sys, &pts, q).map_err(|e| e.to_string())?;
    Ok(MethodOutput {
        report: vec![
            "method: mpproj".to_string(),
            format!("order: {}", m.reduced.nstates()),
        ],
        reduced: m.reduced,
        diagnostics: None,
        pipeline: None,
    })
}

fn run_tbr_family(
    sys: &Descriptor,
    req: &ReduceRequest,
    name: &'static str,
) -> Result<MethodOutput, String> {
    let q = req.order_required(name)?;
    let ss = sys
        .to_state_space()
        .map_err(|e| format!("{name} needs an invertible E matrix: {e}"))?;
    let m = match name {
        "tbr" => lti::tbr(&ss, q),
        "tbr-res" => lti::tbr_residualized(&ss, q),
        _ => lti::frequency_limited_tbr(&ss, req.omega_max, q),
    }
    .map_err(|e| e.to_string())?;
    Ok(MethodOutput {
        report: vec![
            format!("method: {name}"),
            format!("order: {}", m.reduced.nstates()),
            format!("error_bound: {:.6e}", m.error_bound),
        ],
        reduced: m.reduced,
        diagnostics: None,
        pipeline: None,
    })
}

fn run_tbr(sys: &Descriptor, req: &ReduceRequest, _cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    run_tbr_family(sys, req, "tbr")
}

fn run_tbr_res(sys: &Descriptor, req: &ReduceRequest, _cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    run_tbr_family(sys, req, "tbr-res")
}

fn run_fltbr(sys: &Descriptor, req: &ReduceRequest, _cache: &dyn ArtifactCache) -> Result<MethodOutput, String> {
    run_tbr_family(sys, req, "fltbr")
}

/// Every reduction method `pmtbr-cli reduce` can run, in display order.
pub const METHODS: &[Method] = &[
    Method {
        name: "pmtbr",
        summary: "multipoint sampling + SVD truncation (paper Algorithm 1)",
        needs_order: false,
        run: run_pmtbr,
    },
    Method {
        name: "balanced",
        summary: "two-sided square-root balancing of sampled Gramians",
        needs_order: true,
        run: run_balanced,
    },
    Method {
        name: "cross",
        summary: "sampled cross-Gramian eigenprojection (paper Section V-D)",
        needs_order: true,
        run: run_cross,
    },
    Method {
        name: "fsel",
        summary: "frequency-selective quadrature over --bands (paper Algorithm 2)",
        needs_order: false,
        run: run_fsel,
    },
    Method {
        name: "adaptive",
        summary: "residual-driven bisection of the band (paper Section V-B)",
        needs_order: false,
        run: run_adaptive,
    },
    Method {
        name: "greedy",
        summary: "greedy adaptive shift placement with convergence stopping (docs/SAMPLING.md)",
        needs_order: false,
        run: run_greedy,
    },
    Method {
        name: "correlated",
        summary: "input-correlated stochastic sampling (paper Algorithm 3)",
        needs_order: false,
        run: run_correlated,
    },
    Method {
        name: "prima",
        summary: "passive block Krylov moment matching (baseline)",
        needs_order: true,
        run: run_prima,
    },
    Method {
        name: "mpproj",
        summary: "multipoint rational Krylov projection (baseline)",
        needs_order: true,
        run: run_mpproj,
    },
    Method {
        name: "tbr",
        summary: "exact dense balanced truncation (baseline)",
        needs_order: true,
        run: run_tbr,
    },
    Method {
        name: "tbr-res",
        summary: "balanced truncation with DC residualization (baseline)",
        needs_order: true,
        run: run_tbr_res,
    },
    Method {
        name: "fltbr",
        summary: "frequency-limited balanced truncation (baseline)",
        needs_order: true,
        run: run_fltbr,
    },
];

/// Looks a method up by its `--method` spelling.
pub fn find(name: &str) -> Option<&'static Method> {
    METHODS.iter().find(|m| m.name == name)
}

/// The `|`-joined method names, for usage text and error messages.
pub fn method_list() -> String {
    METHODS.iter().map(|m| m.name).collect::<Vec<_>>().join("|")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        for (i, m) in METHODS.iter().enumerate() {
            assert!(find(m.name).is_some());
            assert!(
                METHODS.iter().skip(i + 1).all(|o| o.name != m.name),
                "duplicate method name {}",
                m.name
            );
        }
        assert!(find("no-such-method").is_none());
    }

    #[test]
    fn method_list_is_pipe_joined() {
        let list = method_list();
        assert!(list.starts_with("pmtbr|"));
        assert_eq!(list.matches('|').count(), METHODS.len() - 1);
    }

    #[test]
    fn order_gate_is_enforced_per_entry() {
        let sys = circuits::rc_mesh(2, 2, &[0], 1.0, 1.0, 2.0).expect("mesh");
        let req = ReduceRequest::new(10.0, 8);
        for m in METHODS.iter().filter(|m| m.needs_order) {
            let err = (m.run)(&sys, &req, &pmtbr::NullCache).expect_err("must demand --order");
            assert!(err.contains("requires --order"), "{}: {err}", m.name);
        }
    }
}
