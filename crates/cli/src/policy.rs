//! The shared acceptance policy for reduced models.
//!
//! `reduce` (local run) and `submit` (service round trip) must agree,
//! exit code for exit code, on when a degraded model is acceptable.
//! This module is that single decision procedure: both commands turn
//! their pipeline/sweep accounting into the wire-level summaries
//! ([`serve::PipelineSummary`], [`serve::SweepSummary`]) and feed them
//! through [`evaluate_acceptance`]. `reduce` summarizes the in-process
//! report; `submit` gets the identical summaries from the server's
//! response — so the verdict cannot drift between the two paths.

use pmtbr::{PipelineReport, SweepDiagnostics};
use serve::{PipelineSummary, SweepSummary};

/// The non-failure outcomes of the acceptance policy, in ascending
/// exit-code order (0, 2, 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every stage ran clean: exit 0.
    Clean,
    /// The model is usable but the sweep degraded: exit 2.
    Degraded,
    /// A work budget ran out and the result is partial: exit 4.
    BudgetExhausted,
}

/// What [`evaluate_acceptance`] decided: the stderr commentary emitted
/// so far (printed even when the model is then rejected) plus either a
/// verdict or the rejection message.
#[derive(Debug)]
pub struct Acceptance {
    /// Diagnostic lines for stderr, in emission order.
    pub stderr: Vec<String>,
    /// The accepted verdict, or the `Rejected` message (exit 3).
    pub verdict: Result<Verdict, String>,
}

/// Projects a [`PipelineReport`] onto its wire summary.
pub fn summarize_pipeline(rep: &PipelineReport) -> PipelineSummary {
    PipelineSummary {
        sweep: rep.sweep.label().to_string(),
        compress: rep.compress.label().to_string(),
        project: rep.project.label().to_string(),
        downgraded: rep.compressor_downgraded,
        budget_exhausted: rep.budget_exhausted.map(str::to_string),
        degraded: rep.is_degraded(),
        clean: rep.is_clean(),
        notes: rep.notes.clone(),
    }
}

/// Projects [`SweepDiagnostics`] onto their wire summary.
pub fn summarize_sweep(diag: &SweepDiagnostics) -> SweepSummary {
    SweepSummary {
        degraded: diag.is_degraded(),
        dropped: diag.dropped() as u64,
        summary: diag.summary(),
    }
}

/// Decides whether a reduced model is acceptable and what to say about
/// it, exactly as `reduce` has always done: a non-clean pipeline is
/// echoed (and rejected under `strict`), a degraded sweep is echoed
/// (rejected under `strict`, or when more than `max_dropped` sample
/// points were lost), and budget exhaustion trumps plain degradation
/// in the final verdict.
pub fn evaluate_acceptance(
    pipeline: Option<&PipelineSummary>,
    sweep: Option<&SweepSummary>,
    strict: bool,
    max_dropped: usize,
) -> Acceptance {
    let mut stderr = Vec::new();
    let mut verdict = Verdict::Clean;
    if let Some(rep) = pipeline {
        if !rep.clean {
            stderr.push(format!(
                "pipeline: sweep={} compress={} project={} downgraded={}{}",
                rep.sweep,
                rep.compress,
                rep.project,
                rep.downgraded,
                match &rep.budget_exhausted {
                    Some(r) => format!(" budget_exhausted={r}"),
                    None => String::new(),
                }
            ));
            for note in &rep.notes {
                stderr.push(format!("  note: {note}"));
            }
        }
        if strict && rep.degraded {
            return Acceptance {
                stderr,
                verdict: Err(format!(
                    "--strict: pipeline degraded (sweep={} compress={} project={} downgraded={})",
                    rep.sweep, rep.compress, rep.project, rep.downgraded,
                )),
            };
        }
    }
    if let Some(diag) = sweep {
        if diag.degraded {
            stderr.push(format!("degraded {}", diag.summary));
            if strict {
                return Acceptance {
                    stderr,
                    verdict: Err(format!("--strict: sweep degraded ({})", diag.summary)),
                };
            }
            if diag.dropped > max_dropped as u64 {
                return Acceptance {
                    stderr,
                    verdict: Err(format!(
                        "{} sample points dropped exceeds --max-dropped-samples {} ({})",
                        diag.dropped, max_dropped, diag.summary
                    )),
                };
            }
            verdict = Verdict::Degraded;
        }
    }
    if pipeline.is_some_and(|r| r.budget_exhausted.is_some()) {
        verdict = Verdict::BudgetExhausted;
    }
    Acceptance { stderr, verdict: Ok(verdict) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_pipeline() -> PipelineSummary {
        PipelineSummary {
            sweep: "Clean".into(),
            compress: "Clean".into(),
            project: "Clean".into(),
            downgraded: false,
            budget_exhausted: None,
            degraded: false,
            clean: true,
            notes: vec![],
        }
    }

    fn degraded_sweep() -> SweepSummary {
        SweepSummary { degraded: true, dropped: 3, summary: "3/12 dropped".into() }
    }

    #[test]
    fn clean_run_is_silent_and_clean() {
        let acc = evaluate_acceptance(Some(&clean_pipeline()), None, true, 0);
        assert!(acc.stderr.is_empty());
        assert_eq!(acc.verdict.unwrap(), Verdict::Clean);
    }

    #[test]
    fn strict_rejects_but_still_reports() {
        let mut rep = clean_pipeline();
        rep.clean = false;
        rep.degraded = true;
        rep.notes = vec!["shift 3 dropped".into()];
        let acc = evaluate_acceptance(Some(&rep), None, true, 0);
        assert_eq!(acc.stderr.len(), 2, "pipeline line + note precede the rejection");
        assert!(acc.verdict.unwrap_err().starts_with("--strict: pipeline degraded"));
    }

    #[test]
    fn dropped_samples_gate_on_max_dropped() {
        let tolerant = evaluate_acceptance(None, Some(&degraded_sweep()), false, 3);
        assert_eq!(tolerant.verdict.unwrap(), Verdict::Degraded);
        let tight = evaluate_acceptance(None, Some(&degraded_sweep()), false, 2);
        assert!(tight.verdict.unwrap_err().contains("exceeds --max-dropped-samples 2"));
    }

    #[test]
    fn budget_exhaustion_outranks_degradation() {
        let mut rep = clean_pipeline();
        rep.clean = false;
        rep.budget_exhausted = Some("lu_factors".into());
        let acc = evaluate_acceptance(Some(&rep), Some(&degraded_sweep()), false, 10);
        assert_eq!(acc.verdict.unwrap(), Verdict::BudgetExhausted);
        assert!(acc.stderr.iter().any(|l| l.contains("budget_exhausted=lu_factors")));
    }
}
