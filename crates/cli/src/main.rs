//! `pmtbr-cli` — reduce SPICE-flavored RLC netlists from the shell.
//!
//! ```text
//! pmtbr-cli sweep  <netlist> --from <hz> --to <hz> [--points N] [--log]
//! pmtbr-cli hsv    <netlist> [--band <hz>] [--samples N]
//! pmtbr-cli reduce <netlist> [--order N] [--tol T] [--band <hz>]
//!                  [--bands lo:hi[,lo:hi...]] [--samples N] [--method M]
//!                  [--check N] [--max-dropped-samples N] [--strict]
//! ```
//!
//! The `--method` names, the usage text, and the unknown-method error
//! are all derived from the [`pmtbr_cli::METHODS`] registry — run
//! `pmtbr-cli help` for the current list with one-line summaries.
//!
//! All frequency arguments are in hertz. `sweep` prints the port
//! impedance magnitudes as CSV; `hsv` prints the PMTBR singular-value
//! estimates (and exact Hankel values when the descriptor admits a
//! state-space form); `reduce` builds a reduced model, reports its
//! spectra and error estimate, and optionally cross-checks it against
//! the full model over the band.
//!
//! Every command accepts `--threads N` to pin the sampling engine's
//! worker count (equivalent to setting `PMTBR_THREADS=N`); results are
//! identical at every thread count.
//!
//! Every command also accepts `--trace <path>` to record a JSON-lines
//! solver trace (spans over the sparse LU, shift ladder, sampling sweep,
//! and SVD, plus the global counters; see `docs/OBSERVABILITY.md`). The
//! default deterministic clock makes the trace byte-identical at every
//! thread count; add `--trace-wall` for wall-clock nanosecond stamps
//! (and per-worker pool occupancy) at the price of reproducibility.
//!
//! # Degradation policy and exit codes
//!
//! Every PMTBR-family method runs the fault-tolerant sampling pipeline:
//! sample points whose shifted solves fail beyond recovery are dropped
//! and the quadrature degrades gracefully. The per-point account is
//! printed to stderr whenever the sweep deviated from the request; the
//! strict Krylov/TBR baselines never degrade (they either succeed
//! cleanly or fail with exit 1).
//!
//! - `0` — clean run, every sample point solved as requested;
//! - `2` — degraded but accepted (drops within `--max-dropped-samples`,
//!   default: any number as long as one point survives);
//! - `3` — degradation rejected: drops exceeded `--max-dropped-samples`,
//!   or `--strict` was set and the pipeline recorded any accuracy
//!   concession (dropped/perturbed points, downgraded compressor,
//!   exhausted budget);
//! - `4` — a `--budget-*` work budget ran out and the printed model is
//!   best-effort (accepted, but explicitly marked);
//! - `1` — any other error (bad arguments, unreadable netlist, a
//!   malformed `PMTBR_FAULT` spec, …).
//!
//! (The canonical exit-code table lives in the repository README under
//! "Error handling and exit codes"; keep the two in sync.)
//!
//! The `PMTBR_FAULT` environment variable injects deterministic faults
//! for chaos-testing the ladder (see `pmtbr::FaultPlan::from_env`); a
//! malformed spec is rejected up front with exit 1 rather than silently
//! ignored.

use std::process::ExitCode;

use lti::{frequency_response, linspace, logspace, max_rel_error, SquareWave};
use pmtbr::{sample_basis, Sampling};

const TAU: f64 = 2.0 * std::f64::consts::PI;

/// How a successful command ran.
enum Status {
    /// Everything executed exactly as requested → exit 0.
    Clean,
    /// The sampling sweep degraded (drops/perturbations) but stayed
    /// within the acceptance policy → exit 2.
    Degraded,
    /// A `--budget-*` cap ran out and the model is best-effort → exit 4.
    BudgetExhausted,
}

/// Why a command failed.
enum Failure {
    /// Ordinary error (bad arguments, I/O, numerics) → exit 1.
    Error(String),
    /// The sweep degraded beyond what the policy accepts → exit 3.
    Rejected(String),
    /// `submit`/`serve` could not speak the wire protocol (unreachable
    /// server, timeout, malformed frame) → exit 5. Distinct from exit 1
    /// so scripts can tell "the job failed" from "the service failed".
    Protocol(String),
}

impl From<String> for Failure {
    fn from(msg: String) -> Self {
        Failure::Error(msg)
    }
}

impl From<&str> for Failure {
    fn from(msg: &str) -> Self {
        Failure::Error(msg.to_string())
    }
}

type CmdResult = Result<Status, Failure>;

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(argv: &[String]) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = if it.peek().is_some_and(|v| !v.starts_with("--")) {
                    Some(it.next().expect("peeked").clone())
                } else {
                    None
                };
                flags.push((name.to_string(), value));
            } else {
                positional.push(tok.clone());
            }
        }
        Args { positional, flags }
    }

    fn flag_value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag_present(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.flag_value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: expected a number, got `{v}`")),
        }
    }

    fn int(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.flag_value(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: expected an integer, got `{v}`")),
        }
    }

    /// An optional `u64` cap: absent flag means "unlimited".
    fn cap(&self, name: &str) -> Result<Option<u64>, String> {
        self.flag_value(name)
            .map(|v| {
                v.parse().map_err(|_| format!("--{name}: expected an integer, got `{v}`"))
            })
            .transpose()
    }
}

fn load(path: &str) -> Result<lti::Descriptor, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let nl = circuits::parse_netlist(&text).map_err(|e| e.to_string())?;
    nl.build().map_err(|e| format!("mna assembly failed: {e}"))
}

fn cmd_sweep(args: &Args) -> CmdResult {
    let path = args.positional.first().ok_or("sweep: missing netlist path")?;
    let sys = load(path)?;
    let from = args.num("from", 1e6)?;
    let to = args.num("to", 1e10)?;
    let points = args.int("points", 50)?;
    if !(to > from && from > 0.0) || points == 0 {
        return Err("sweep: need 0 < --from < --to and --points > 0".into());
    }
    let freqs =
        if args.flag_present("log") { logspace(from, to, points) } else { linspace(from, to, points) };
    let omega: Vec<f64> = freqs.iter().map(|f| f * TAU).collect();
    let resp = frequency_response(&sys, &omega).map_err(|e| e.to_string())?;
    let q = sys.noutputs();
    let p = sys.ninputs();
    print!("freq_hz");
    for i in 0..q {
        for j in 0..p {
            print!(",mag_z{}{}", i + 1, j + 1);
        }
    }
    println!();
    for (k, f) in freqs.iter().enumerate() {
        print!("{f:.6e}");
        for i in 0..q {
            for j in 0..p {
                print!(",{:.6e}", resp.h[k][(i, j)].abs());
            }
        }
        println!();
    }
    Ok(Status::Clean)
}

fn cmd_hsv(args: &Args) -> CmdResult {
    let path = args.positional.first().ok_or("hsv: missing netlist path")?;
    let sys = load(path)?;
    let band = args.num("band", 1e10)?;
    let samples = args.int("samples", 40)?;
    let basis = sample_basis(&sys, &Sampling::Linear { omega_max: band * TAU, n: samples })
        .map_err(|e| e.to_string())?;
    let est = basis.singular_values();
    let exact = sys.to_state_space().ok().and_then(|ss| lti::hankel_singular_values(&ss).ok());
    println!("index,pmtbr_estimate{}", if exact.is_some() { ",exact_hankel" } else { "" });
    for (i, s) in est.iter().take(40).enumerate() {
        match &exact {
            Some(h) => println!("{i},{s:.6e},{:.6e}", h.get(i).copied().unwrap_or(0.0)),
            None => println!("{i},{s:.6e}"),
        }
    }
    if exact.is_none() {
        eprintln!("(E is singular: exact Hankel values unavailable — PMTBR estimates only)");
    }
    Ok(Status::Clean)
}

/// Parses `--bands lo:hi[,lo:hi...]` (hertz) into rad/s band edges.
fn parse_bands(spec: &str) -> Result<Vec<(f64, f64)>, String> {
    let mut bands = Vec::new();
    for part in spec.split(',') {
        let (lo, hi) = part
            .split_once(':')
            .ok_or_else(|| format!("--bands: expected lo:hi, got `{part}`"))?;
        let lo: f64 = lo.parse().map_err(|_| format!("--bands: bad number `{lo}`"))?;
        let hi: f64 = hi.parse().map_err(|_| format!("--bands: bad number `{hi}`"))?;
        bands.push((lo * TAU, hi * TAU));
    }
    Ok(bands)
}

fn cmd_reduce(args: &Args) -> CmdResult {
    let path = args.positional.first().ok_or("reduce: missing netlist path")?;
    let sys = load(path)?;
    let band = args.num("band", 1e10)?;
    let samples = args.int("samples", 40)?;
    let tol = args.num("tol", 1e-8)?;
    let order = args.flag_value("order").map(|v| v.parse::<usize>()).transpose().map_err(|_| "--order: invalid integer".to_string())?;
    let method_name = args.flag_value("method").unwrap_or("pmtbr");
    let omega_max = band * TAU;
    let max_dropped = args.int("max-dropped-samples", samples)?;
    let strict = args.flag_present("strict");

    // Dispatch, usage, and the error below all come from the registry.
    let method = pmtbr_cli::find(method_name).ok_or_else(|| {
        format!("unknown --method `{method_name}` ({})", pmtbr_cli::method_list())
    })?;
    let mut req = pmtbr_cli::ReduceRequest::new(omega_max, samples);
    req.tol = tol;
    req.order = order;
    if let Some(spec) = args.flag_value("bands") {
        req.bands = parse_bands(spec)?;
    }
    req.greedy_tol = args.num("greedy-tol", req.greedy_tol)?;
    req.greedy_max_shifts = args
        .flag_value("greedy-max-shifts")
        .map(|v| v.parse::<usize>())
        .transpose()
        .map_err(|_| "--greedy-max-shifts: invalid integer".to_string())?;
    req.budget.max_lu_factors = args.cap("budget-lu")?;
    req.budget.max_svd_sweeps = args.cap("budget-svd-sweeps")?;
    req.budget.max_sample_bytes = args.cap("budget-sample-bytes")?;
    // PMTBR_FAULT (chaos testing) is the only fault source in
    // production; real solver failures flow through the same ladder and
    // the same degradation accounting inside the pipeline.
    let out = (method.run)(&sys, &req, &pmtbr::NullCache).map_err(Failure::Error)?;

    // The acceptance policy — shared verbatim with `submit` via
    // `pmtbr_cli::evaluate_acceptance` — runs before any stdout so a
    // rejected sweep never prints a half-report. The per-stage pipeline
    // report goes to stderr whenever any stage deviated from a clean
    // run.
    let pipeline = out.pipeline.as_ref().map(pmtbr_cli::summarize_pipeline);
    let sweep = out.diagnostics.as_ref().map(pmtbr_cli::summarize_sweep);
    let acc =
        pmtbr_cli::evaluate_acceptance(pipeline.as_ref(), sweep.as_ref(), strict, max_dropped);
    for line in &acc.stderr {
        eprintln!("{line}");
    }
    let status = verdict_status(acc.verdict.map_err(Failure::Rejected)?);
    for line in &out.report {
        println!("{line}");
    }
    let reduced = out.reduced;

    if let Some(npts) = args.flag_value("check") {
        print_check(npts, omega_max, &sys, &reduced)?;
    }
    print_model(&reduced);
    Ok(status)
}

fn verdict_status(verdict: pmtbr_cli::Verdict) -> Status {
    match verdict {
        pmtbr_cli::Verdict::Clean => Status::Clean,
        pmtbr_cli::Verdict::Degraded => Status::Degraded,
        pmtbr_cli::Verdict::BudgetExhausted => Status::BudgetExhausted,
    }
}

/// `--check N`: compares full and reduced responses over the band.
fn print_check(
    npts: &str,
    omega_max: f64,
    sys: &lti::Descriptor,
    reduced: &lti::StateSpace,
) -> Result<(), Failure> {
    let npts: usize = npts.parse().map_err(|_| "--check: invalid integer".to_string())?;
    let omega: Vec<f64> = linspace(omega_max / npts as f64, omega_max, npts);
    let h_full = frequency_response(sys, &omega).map_err(|e| e.to_string())?;
    let h_red = frequency_response(reduced, &omega).map_err(|e| e.to_string())?;
    println!("check_max_rel_error: {:.6e}", max_rel_error(&h_full, &h_red));
    Ok(())
}

/// Emits the reduced model in a plain, parseable form (shared by
/// `reduce` and `submit`).
fn print_model(reduced: &lti::StateSpace) {
    let q = reduced.nstates();
    println!("A: # {q}x{q}");
    for i in 0..q {
        let row: Vec<String> = (0..q).map(|j| format!("{:.12e}", reduced.a[(i, j)])).collect();
        println!("  {}", row.join(" "));
    }
    println!("B: # {q}x{}", reduced.ninputs());
    for i in 0..q {
        let row: Vec<String> =
            (0..reduced.ninputs()).map(|j| format!("{:.12e}", reduced.b[(i, j)])).collect();
        println!("  {}", row.join(" "));
    }
    println!("C: # {}x{q}", reduced.noutputs());
    for i in 0..reduced.noutputs() {
        let row: Vec<String> = (0..q).map(|j| format!("{:.12e}", reduced.c[(i, j)])).collect();
        println!("  {}", row.join(" "));
    }
}

/// `pmtbr-cli serve`: bind, print the bound address, and run the
/// batching scheduler over one shared artifact cache until `--max-jobs`
/// jobs have completed (or forever).
fn cmd_serve(args: &Args) -> CmdResult {
    let addr = args.flag_value("addr").unwrap_or("127.0.0.1:7117");
    let cache_mb = args.int("cache-mb", 256)?;
    let max_jobs = args.cap("max-jobs")?;
    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| Failure::Protocol(format!("serve: cannot bind {addr}: {e}")))?;
    let bound = listener
        .local_addr()
        .map_err(|e| Failure::Protocol(format!("serve: no local address: {e}")))?;
    // Scripts scrape this line for the ephemeral port of `--addr :0`.
    println!("listening {bound} cache_mb {cache_mb}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let cache = pmtbr::LruCache::new(cache_mb << 20);
    let handler = |job: &serve::JobRequest| pmtbr_cli::handle_job(job, &cache);
    let opts = serve::ServeOptions { max_jobs, ..Default::default() };
    let shutdown = std::sync::atomic::AtomicBool::new(false);
    let stats = serve::serve(&listener, &handler, &opts, &shutdown)
        .map_err(|e| Failure::Protocol(e.to_string()))?;
    let (entries, bytes) = pmtbr::ArtifactCache::stats(&cache);
    eprintln!(
        "served {} job(s) in {} batch(es), {} grouped; cache holds {entries} artifact(s), {bytes} byte(s)",
        stats.jobs, stats.batches, stats.grouped
    );
    Ok(Status::Clean)
}

/// `pmtbr-cli submit`: ship a netlist plus `reduce` flags to a running
/// server and apply the *local* acceptance policy to the response, so
/// the exit code matches what `reduce` would have returned.
fn cmd_submit(args: &Args, trace_path: Option<&str>) -> CmdResult {
    let path = args.positional.first().ok_or("submit: missing netlist path")?;
    let netlist =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if args.flag_present("trace-wall") {
        return Err("submit: --trace-wall is unsupported (server traces use the deterministic clock)"
            .into());
    }
    let band = args.num("band", 1e10)?;
    let samples = args.int("samples", 40)?;
    let omega_max = band * TAU;
    let max_dropped = args.int("max-dropped-samples", samples)?;
    let strict = args.flag_present("strict");
    let method_name = args.flag_value("method").unwrap_or("pmtbr");
    // Validate locally for the fast error; the server re-validates.
    pmtbr_cli::find(method_name).ok_or_else(|| {
        format!("unknown --method `{method_name}` ({})", pmtbr_cli::method_list())
    })?;
    let bands = match args.flag_value("bands") {
        Some(spec) => parse_bands(spec)?,
        None => Vec::new(),
    };
    let order = args.cap("order")?;
    let job = serve::JobRequest {
        method: method_name.to_string(),
        netlist: netlist.clone(),
        omega_max,
        bands,
        samples: samples as u64,
        tol: args.num("tol", 1e-8)?,
        order,
        greedy_tol: args.num("greedy-tol", 1e-3)?,
        greedy_max_shifts: args.cap("greedy-max-shifts")?,
        budget_lu: args.cap("budget-lu")?,
        budget_svd: args.cap("budget-svd-sweeps")?,
        budget_bytes: args.cap("budget-sample-bytes")?,
        trace: trace_path.is_some(),
    };
    let addr = args.flag_value("addr").unwrap_or("127.0.0.1:7117");
    let timeout = std::time::Duration::from_millis(args.int("timeout-ms", 30_000)? as u64);
    let result = match serve::submit(addr, &job, timeout)
        .map_err(|e| Failure::Protocol(e.to_string()))?
    {
        serve::JobResponse::Err(e) => return Err(Failure::Error(e)),
        serve::JobResponse::Ok(result) => result,
    };
    // The trace is written before the acceptance gate for the same
    // reason `reduce` writes it on failure paths: a rejected sweep is
    // exactly when the telemetry matters.
    if let (Some(path), Some(trace)) = (trace_path, &result.trace) {
        match std::fs::write(path, trace) {
            Ok(()) => eprintln!("trace: {} lines -> {path}", trace.lines().count()),
            Err(e) => eprintln!("warning: cannot write trace to {path}: {e}"),
        }
    }
    let acc = pmtbr_cli::evaluate_acceptance(
        result.pipeline.as_ref(),
        result.sweep.as_ref(),
        strict,
        max_dropped,
    );
    for line in &acc.stderr {
        eprintln!("{line}");
    }
    let status = verdict_status(acc.verdict.map_err(Failure::Rejected)?);
    for line in &result.report_lines {
        println!("{line}");
    }
    let reduced = lti::StateSpace::new(
        pmtbr_cli::wire_to_mat(&result.a).map_err(Failure::Protocol)?,
        pmtbr_cli::wire_to_mat(&result.b).map_err(Failure::Protocol)?,
        pmtbr_cli::wire_to_mat(&result.c).map_err(Failure::Protocol)?,
        Some(pmtbr_cli::wire_to_mat(&result.d).map_err(Failure::Protocol)?),
    )
    .map_err(|e| Failure::Protocol(format!("inconsistent model shapes in response: {e}")))?;
    if let Some(npts) = args.flag_value("check") {
        // The netlist is local, so the cross-check runs exactly as it
        // does for `reduce`, against a locally assembled full model.
        let sys = circuits::parse_netlist(&netlist)
            .map_err(|e| e.to_string())
            .and_then(|nl| nl.build().map_err(|e| format!("mna assembly failed: {e}")))?;
        print_check(npts, omega_max, &sys, &reduced)?;
    }
    print_model(&reduced);
    Ok(status)
}

/// Simulates the netlist's transient response to square waves on every
/// port and prints t + all port voltages as CSV.
fn cmd_transient(args: &Args) -> CmdResult {
    let path = args.positional.first().ok_or("transient: missing netlist path")?;
    let sys = load(path)?;
    let period = args.num("period", 1e-9)?;
    let steps = args.int("steps", 400)?;
    if !(period > 0.0) || steps < 2 {
        return Err("transient: need --period > 0 and --steps >= 2".into());
    }
    let h = 2.0 * period / steps as f64; // two periods by default
    let p = sys.ninputs();
    let mut u = numkit::DMat::zeros(p, steps);
    for i in 0..p {
        // Stagger phases so ports are distinguishable.
        let w = SquareWave { phase: period * i as f64 / p.max(1) as f64, ..SquareWave::new(period) };
        for (k, v) in w.sample(steps, h).into_iter().enumerate() {
            u[(i, k)] = v;
        }
    }
    let tr = lti::simulate_descriptor(&sys, &u, h).map_err(|e| e.to_string())?;
    print!("t");
    for i in 0..sys.noutputs() {
        print!(",y{}", i + 1);
    }
    println!();
    for k in 0..steps {
        print!("{:.6e}", tr.t[k]);
        for i in 0..sys.noutputs() {
            print!(",{:.6e}", tr.y[(i, k)]);
        }
        println!();
    }
    Ok(Status::Clean)
}

fn usage() -> String {
    let mut s = format!(
        "usage:\n  pmtbr-cli sweep     <netlist> --from <hz> --to <hz> [--points N] [--log]\n  pmtbr-cli hsv       <netlist> [--band <hz>] [--samples N]\n  pmtbr-cli transient <netlist> [--period <s>] [--steps N]\n  pmtbr-cli reduce    <netlist> [--order N] [--tol T] [--band <hz>] [--bands lo:hi[,lo:hi...]] [--samples N] [--method {}] [--check N] [--max-dropped-samples N] [--strict] [--greedy-tol T] [--greedy-max-shifts N] [--budget-lu N] [--budget-svd-sweeps N] [--budget-sample-bytes N]\n  pmtbr-cli serve     [--addr host:port] [--cache-mb N] [--max-jobs N]\n  pmtbr-cli submit    <netlist> [reduce flags] [--addr host:port] [--timeout-ms N]\nmethods:\n",
        pmtbr_cli::method_list()
    );
    for m in pmtbr_cli::METHODS {
        s.push_str(&format!(
            "  {:<11} {}{}\n",
            m.name,
            m.summary,
            if m.needs_order { " [needs --order]" } else { "" }
        ));
    }
    s.push_str(
        "global flags:\n  --threads N         worker count for the sampling engine (PMTBR_THREADS)\n  --trace <path>      write a JSON-lines solver trace (docs/OBSERVABILITY.md)\n  --trace-wall        stamp the trace with wall-clock nanoseconds instead of\n                      the deterministic event counter\nbudget flags (reduce, pipeline-backed methods only; counted off the\ndeterministic obs counters, never wall clock):\n  --greedy-tol T           greedy method: convergence tolerance (default 1e-3; 0 = run\n                           to the shift budget)\n  --greedy-max-shifts N    greedy method: hard cap on accepted shifts (default --samples)\n  --budget-lu N            cap on LU factorizations\n  --budget-svd-sweeps N    cap on Jacobi SVD sweeps\n  --budget-sample-bytes N  cap on retained weighted sample bytes\nservice flags (serve/submit):\n  --addr host:port    server address (default 127.0.0.1:7117; serve accepts :0 and\n                      prints the bound port)\n  --cache-mb N        serve: artifact-cache byte budget in MiB (default 256)\n  --max-jobs N        serve: exit cleanly after N jobs (tests/benches)\n  --timeout-ms N      submit: deadline for the whole round trip (default 30000)\nexit codes:\n  0 clean  |  2 degraded sweep, accepted  |  3 degradation rejected  |  4 budget exhausted, best-effort model  |  5 service protocol error (submit/serve)  |  1 error\n  (canonical table: README.md, \"Error handling and exit codes\")",
    );
    s
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args::parse(rest);
    // Reject a malformed PMTBR_FAULT spec up front (satellite of the
    // fault-containment work): a chaos run with a typo'd spec must fail
    // loudly, not silently run without faults.
    if let Err(e) = pmtbr::FaultPlan::from_env() {
        eprintln!("error: invalid PMTBR_FAULT: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(t) = args.flag_value("threads") {
        match t.parse::<usize>() {
            Ok(n) if n > 0 => std::env::set_var("PMTBR_THREADS", n.to_string()),
            _ => {
                eprintln!("error: --threads: expected a positive integer, got `{t}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let trace_path = args.flag_value("trace").map(str::to_string);
    if args.flag_present("trace") && trace_path.is_none() {
        eprintln!("error: --trace requires an output path");
        return ExitCode::FAILURE;
    }
    // `submit` traces remotely (the server runs the reduction and ships
    // the jsonl back); `serve` traces per-job inside the handler. Only
    // the local commands install a process-wide collector here.
    let local_trace = trace_path.is_some() && !matches!(cmd.as_str(), "serve" | "submit");
    if local_trace {
        let kind = if args.flag_present("trace-wall") {
            obs::ClockKind::Wall
        } else {
            obs::ClockKind::Counter
        };
        obs::install(kind);
    }
    let result = match cmd.as_str() {
        "sweep" => cmd_sweep(&args),
        "hsv" => cmd_hsv(&args),
        "transient" => cmd_transient(&args),
        "reduce" => cmd_reduce(&args),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args, trace_path.as_deref()),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(Status::Clean)
        }
        other => Err(Failure::Error(format!("unknown command `{other}`\n{}", usage()))),
    };
    // The trace is written on failure paths too: a degraded or rejected
    // sweep is exactly when the ladder telemetry matters most.
    if local_trace {
        if let (Some(path), Some(tr)) = (&trace_path, obs::drain()) {
            match std::fs::write(path, tr.to_jsonl()) {
                Ok(()) => eprintln!("trace: {} events -> {path}", tr.events().len()),
                Err(e) => eprintln!("warning: cannot write trace to {path}: {e}"),
            }
        }
    }
    match result {
        Ok(Status::Clean) => ExitCode::SUCCESS,
        Ok(Status::Degraded) => ExitCode::from(2),
        Ok(Status::BudgetExhausted) => ExitCode::from(4),
        Err(Failure::Rejected(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(3)
        }
        Err(Failure::Protocol(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(5)
        }
        Err(Failure::Error(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["file.sp", "--order", "12", "--log", "--band", "8e9"]);
        assert_eq!(a.positional, vec!["file.sp"]);
        assert_eq!(a.flag_value("order"), Some("12"));
        assert!(a.flag_present("log"));
        assert_eq!(a.num("band", 0.0).unwrap(), 8e9);
        assert_eq!(a.int("order", 0).unwrap(), 12);
    }

    #[test]
    fn defaults_and_errors() {
        let a = args(&["x"]);
        assert_eq!(a.num("missing", 2.5).unwrap(), 2.5);
        assert_eq!(a.int("missing", 7).unwrap(), 7);
        let bad = args(&["x", "--order", "abc"]);
        assert!(bad.int("order", 1).is_err());
    }

    #[test]
    fn last_flag_wins() {
        let a = args(&["--band", "1", "--band", "2"]);
        assert_eq!(a.num("band", 0.0).unwrap(), 2.0);
    }
}
