//! The server-side job handler: from a wire [`serve::JobRequest`] to a
//! wire [`serve::JobResponse`], through the exact code path a local
//! `reduce` takes.
//!
//! `pmtbr-cli serve` injects [`handle_job`] (closed over one shared
//! [`pmtbr::LruCache`]) into [`serve::serve`]'s scheduler. Because the
//! handler calls the same [`crate::Method`] runners as the local
//! command and ships matrices as raw IEEE-754 bits, a submitted job's
//! model is bit-identical to the model the same flags would produce
//! locally — the cache only changes how fast the answer arrives, never
//! which answer.

use numkit::DMat;
use pmtbr::ArtifactCache;
use serve::{JobRequest, JobResponse, JobResult, WireMat};

use crate::{summarize_pipeline, summarize_sweep, ReduceRequest};

/// Converts a dense matrix to its wire form, preserving every bit.
pub fn mat_to_wire(m: &DMat) -> WireMat {
    let mut bits = Vec::with_capacity(m.nrows() * m.ncols());
    for i in 0..m.nrows() {
        for j in 0..m.ncols() {
            bits.push(m[(i, j)].to_bits());
        }
    }
    WireMat { rows: m.nrows(), cols: m.ncols(), bits }
}

/// Reconstructs a dense matrix from its wire form, preserving every
/// bit.
///
/// # Errors
///
/// Returns a message when the bit count disagrees with the dimensions.
pub fn wire_to_mat(w: &WireMat) -> Result<DMat, String> {
    if w.bits.len() != w.rows * w.cols {
        return Err(format!(
            "matrix claims {}x{} but carries {} entries",
            w.rows,
            w.cols,
            w.bits.len()
        ));
    }
    let mut m = DMat::zeros(w.rows, w.cols);
    for i in 0..w.rows {
        for j in 0..w.cols {
            m[(i, j)] = f64::from_bits(w.bits[i * w.cols + j]);
        }
    }
    Ok(m)
}

/// Builds the local [`ReduceRequest`] a job's flags describe.
fn reduce_request(job: &JobRequest) -> ReduceRequest {
    let mut req = ReduceRequest::new(job.omega_max, job.samples as usize);
    req.tol = job.tol;
    req.order = job.order.map(|o| o as usize);
    if !job.bands.is_empty() {
        req.bands = job.bands.clone();
    }
    req.greedy_tol = job.greedy_tol;
    req.greedy_max_shifts = job.greedy_max_shifts.map(|s| s as usize);
    req.budget.max_lu_factors = job.budget_lu;
    req.budget.max_svd_sweeps = job.budget_svd;
    req.budget.max_sample_bytes = job.budget_bytes;
    req
}

/// Runs one job against the shared artifact cache.
///
/// Parse failures, unknown methods, and numerical errors all come back
/// as [`JobResponse::Err`] — a *well-formed* response the client maps
/// to exit 1, exactly as the local command would. When the job asks
/// for a trace, a deterministic (counter-clock) collector is installed
/// around just this job and its JSON-lines serialization rides back in
/// the response.
pub fn handle_job(job: &JobRequest, cache: &dyn ArtifactCache) -> JobResponse {
    let sys = match circuits::parse_netlist(&job.netlist).map_err(|e| e.to_string()).and_then(
        |nl| nl.build().map_err(|e| e.to_string()),
    ) {
        Ok(sys) => sys,
        Err(e) => return JobResponse::Err(format!("netlist: {e}")),
    };
    let Some(method) = crate::find(&job.method) else {
        return JobResponse::Err(format!(
            "unknown --method `{}` ({})",
            job.method,
            crate::method_list()
        ));
    };
    let req = reduce_request(job);
    if job.trace {
        obs::install(obs::ClockKind::Counter);
    }
    let outcome = (method.run)(&sys, &req, cache);
    let trace = if job.trace { obs::drain().map(|t| t.to_jsonl()) } else { None };
    match outcome {
        Err(e) => JobResponse::Err(e),
        Ok(out) => JobResponse::Ok(Box::new(JobResult {
            report_lines: out.report,
            pipeline: out.pipeline.as_ref().map(summarize_pipeline),
            sweep: out.diagnostics.as_ref().map(summarize_sweep),
            a: mat_to_wire(&out.reduced.a),
            b: mat_to_wire(&out.reduced.b),
            c: mat_to_wire(&out.reduced.c),
            d: mat_to_wire(&out.reduced.d),
            trace,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmtbr::{LruCache, NullCache};

    fn job() -> JobRequest {
        JobRequest {
            method: "pmtbr".into(),
            netlist: circuits::rc_mesh_netlist(3, 3, &[0, 8], 1.0, 1.0, 2.0),
            omega_max: 20.0,
            bands: vec![],
            samples: 6,
            tol: 1e-8,
            order: Some(4),
            greedy_tol: 1e-3,
            greedy_max_shifts: None,
            budget_lu: None,
            budget_svd: None,
            budget_bytes: None,
            trace: false,
        }
    }

    #[test]
    fn handled_job_matches_local_run_bit_for_bit() {
        let job = job();
        let cache = LruCache::new(16 << 20);
        let JobResponse::Ok(remote) = handle_job(&job, &cache) else {
            panic!("job must succeed");
        };
        // The same flags run locally, straight through the registry.
        let sys = circuits::parse_netlist(&job.netlist).unwrap().build().unwrap();
        let method = crate::find("pmtbr").unwrap();
        let local = (method.run)(&sys, &reduce_request(&job), &NullCache).unwrap();
        assert_eq!(remote.report_lines, local.report);
        for (wire, here) in [
            (&remote.a, &local.reduced.a),
            (&remote.b, &local.reduced.b),
            (&remote.c, &local.reduced.c),
            (&remote.d, &local.reduced.d),
        ] {
            assert_eq!(wire, &mat_to_wire(here), "wire trip must be bit-exact");
            assert!(wire_to_mat(wire).unwrap() == *here);
        }
        assert!(remote.pipeline.is_some() && remote.sweep.is_some());
    }

    #[test]
    fn bad_inputs_are_job_errors_not_panics() {
        let cache = NullCache;
        let mut bad_netlist = job();
        bad_netlist.netlist = "Q1 broken card".into();
        assert!(matches!(handle_job(&bad_netlist, &cache), JobResponse::Err(e) if e.starts_with("netlist:")));
        let mut bad_method = job();
        bad_method.method = "no-such".into();
        assert!(matches!(handle_job(&bad_method, &cache), JobResponse::Err(e) if e.contains("unknown --method")));
        let mut no_order = job();
        no_order.method = "tbr".into();
        no_order.order = None;
        assert!(matches!(handle_job(&no_order, &cache), JobResponse::Err(e) if e.contains("requires --order")));
    }
}
