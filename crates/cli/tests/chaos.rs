//! Chaos harness: drives the `pmtbr-cli` binary through the full
//! `PMTBR_FAULT` fault matrix — every registry method × targeted stage
//! × thread count — and asserts the pipeline's containment contract:
//!
//! - no escaped panic or signal ever reaches the process boundary
//!   (exit codes stay within the documented `{0, 1, 2, 3, 4}` set);
//! - every printed model is finite (no `NaN`/`inf` leaks into the
//!   A/B/C dump);
//! - at a fixed fault seed the *stdout is byte-identical* at 1, 2, and
//!   8 threads — fault injection, recovery ladders, and budgets are all
//!   deterministic functions of the inputs, never of scheduling.
//!
//! Faults are injected via each spawned `Command`'s own environment, so
//! the matrix never mutates this test process's env (no cross-test
//! races). The quick CI gate in `scripts/check.sh` runs the same matrix
//! through this test.

use std::process::{Command, Output};

const RLC_LADDER: &str = "\
* Two-port RLC ladder with enough states to drop nodes under chaos.
R1 1 2 50
L1 2 3 10n
C1 3 0 1p
R2 3 4 20
L2 4 5 5n
C2 5 0 2p
R3 5 0 1k
PORT 1
PORT 5
.end";

fn netlist_path() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pmtbr-chaos");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("ladder.sp");
    std::fs::write(&path, RLC_LADDER).expect("write netlist");
    path
}

/// Runs `reduce` with the given method, fault spec, and thread count;
/// the fault spec rides on the child's environment only.
fn run_reduce(method: &pmtbr_cli::Method, fault: Option<&str>, threads: &str) -> Output {
    let netlist = netlist_path();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pmtbr-cli"));
    cmd.arg("reduce")
        .arg(&netlist)
        .args(["--method", method.name])
        .args(["--band", "2e9", "--samples", "8"])
        .args(["--threads", threads])
        .env_remove("PMTBR_FAULT")
        .env_remove("PMTBR_THREADS");
    if method.needs_order {
        cmd.args(["--order", "2"]);
    }
    if let Some(spec) = fault {
        cmd.env("PMTBR_FAULT", spec);
    }
    cmd.output().expect("spawn pmtbr-cli")
}

/// The containment contract every chaos run must satisfy.
fn assert_contained(out: &Output, ctx: &str) {
    let code = out.status.code();
    assert!(
        matches!(code, Some(0..=4)),
        "{ctx}: exit {code:?} outside the documented set (signal or escaped panic?)\n\
         stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    for token in ["NaN", "inf"] {
        assert!(
            !stdout.contains(token),
            "{ctx}: non-finite `{token}` leaked into stdout"
        );
    }
    assert!(
        !stderr.contains("panicked at"),
        "{ctx}: a panic escaped to stderr:\n{stderr}"
    );
}

#[test]
fn chaos_matrix_contains_faults_across_methods_stages_threads() {
    let stages = ["sweep", "compress", "project", "all"];
    for method in pmtbr_cli::METHODS {
        for stage in stages {
            let spec = format!(
                "seed=42,rate=0.25,kinds=singular|nan|drift|panic,depth=2,stage={stage}"
            );
            let mut baseline: Option<(Option<i32>, Vec<u8>)> = None;
            for threads in ["1", "2", "8"] {
                let ctx = format!("method={} stage={stage} threads={threads}", method.name);
                let out = run_reduce(method, Some(&spec), threads);
                assert_contained(&out, &ctx);
                match &baseline {
                    None => baseline = Some((out.status.code(), out.stdout)),
                    Some((code, stdout)) => {
                        assert_eq!(
                            *code,
                            out.status.code(),
                            "{ctx}: exit code diverged across thread counts"
                        );
                        assert_eq!(
                            stdout, &out.stdout,
                            "{ctx}: stdout diverged across thread counts"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn malformed_fault_specs_fail_fast_with_exit_1() {
    let method = pmtbr_cli::find("pmtbr").expect("registry");
    for bad in ["bogus", "rate=not-a-number", "seed=1,typo=2", "stage=warp"] {
        let out = run_reduce(method, Some(bad), "1");
        assert_eq!(
            out.status.code(),
            Some(1),
            "spec `{bad}` must be rejected up front"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("invalid PMTBR_FAULT"),
            "spec `{bad}`: missing parse diagnostics in stderr:\n{stderr}"
        );
        // A rejected spec must never have produced a model.
        assert!(out.stdout.is_empty(), "spec `{bad}` still printed output");
    }
}

#[test]
fn budget_exhaustion_maps_to_exit_code_4_with_best_effort_model() {
    let netlist = netlist_path();
    // A fresh CLI process starts its work counters at zero, so a cap of
    // 4 LU factorizations against 8 requested sample nodes truncates
    // deterministically.
    let mut baseline: Option<Vec<u8>> = None;
    for threads in ["1", "2", "8"] {
        let out = Command::new(env!("CARGO_BIN_EXE_pmtbr-cli"))
            .arg("reduce")
            .arg(&netlist)
            .args(["--band", "2e9", "--samples", "8", "--budget-lu", "4"])
            .args(["--threads", threads])
            .env_remove("PMTBR_FAULT")
            .env_remove("PMTBR_THREADS")
            .output()
            .expect("spawn pmtbr-cli");
        assert_eq!(
            out.status.code(),
            Some(4),
            "threads={threads} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("budget_exhausted=lu-factorizations"),
            "threads={threads}: stage report missing from stderr:\n{stderr}"
        );
        // Best-effort model still printed, and bit-identical per thread
        // count: budgets count deterministic work, not wall clock.
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("A: #"), "threads={threads}: no model printed");
        match &baseline {
            None => baseline = Some(out.stdout),
            Some(b) => assert_eq!(b, &out.stdout, "threads={threads}: stdout diverged"),
        }
    }
}

#[test]
fn zero_svd_budget_downgrades_compressor_instead_of_hanging() {
    let netlist = netlist_path();
    let out = Command::new(env!("CARGO_BIN_EXE_pmtbr-cli"))
        .arg("reduce")
        .arg(&netlist)
        .args(["--band", "2e9", "--samples", "8", "--budget-svd-sweeps", "0"])
        .env_remove("PMTBR_FAULT")
        .env_remove("PMTBR_THREADS")
        .output()
        .expect("spawn pmtbr-cli");
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("downgraded=true"), "stderr:\n{stderr}");
    assert!(stderr.contains("budget_exhausted=svd-sweeps"), "stderr:\n{stderr}");
}

#[test]
fn strict_mode_rejects_degraded_pipeline_with_exit_3() {
    let method = pmtbr_cli::find("pmtbr").expect("registry");
    let netlist = netlist_path();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pmtbr-cli"));
    cmd.arg("reduce")
        .arg(&netlist)
        .args(["--method", method.name])
        .args(["--band", "2e9", "--samples", "8", "--strict"])
        .env_remove("PMTBR_THREADS")
        // Depth 4 exhausts the spectral ladder: compressor downgrade.
        .env("PMTBR_FAULT", "seed=11,rate=1.0,kinds=drift,depth=4,stage=compress");
    let out = cmd.output().expect("spawn pmtbr-cli");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Keep the doc-comment exit-code contract honest: a clean run with no
/// faults and no budget still exits 0 and prints a clean (empty) stage
/// account.
#[test]
fn clean_run_stays_exit_zero_with_quiet_stderr() {
    let method = pmtbr_cli::find("pmtbr").expect("registry");
    let out = run_reduce(method, None, "2");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !stderr.contains("pipeline:"),
        "clean run must not print a stage report:\n{stderr}"
    );
}
