//! End-to-end tests for the reduction service: `pmtbr-cli serve` and
//! `pmtbr-cli submit` driven as real processes over real sockets.
//!
//! The contract under test is *parity*: a submitted job must be
//! indistinguishable from the same flags run locally through `reduce` —
//! byte-identical stdout, the same exit code, the same acceptance
//! decisions — with exactly one new failure mode (exit 5) reserved for
//! the transport itself. The chaos matrix from `tests/chaos.rs` is
//! extended here through serve round-trips: faults are injected into
//! the *server* process's environment, and containment means the
//! client still sees the documented exit-code set with no escaped
//! panics on either side of the wire.
//!
//! Every server binds `127.0.0.1:0` and prints its ephemeral port on
//! the `listening` line, so parallel tests never race on an address.
//! Fault specs ride each child's own environment — this test process's
//! env is never mutated.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Output, Stdio};

const RLC_LADDER: &str = "\
* Two-port RLC ladder with enough states to drop nodes under chaos.
R1 1 2 50
L1 2 3 10n
C1 3 0 1p
R2 3 4 20
L2 4 5 5n
C2 5 0 2p
R3 5 0 1k
PORT 1
PORT 5
.end";

const RC_LADDER: &str = "\
* 4-node RC ladder
R1 1 2 100
R2 2 3 100
R3 3 4 100
R4 4 0 100
C1 1 0 1p
C2 2 0 1p
C3 3 0 1p
C4 4 0 1p
PORT 1
.end";

fn write_netlist(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pmtbr-serve-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write netlist");
    path
}

/// A running `pmtbr-cli serve` child, killed on drop so a failing
/// assertion can never leak a daemon.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns a server on an ephemeral port and blocks until it prints
    /// its `listening` line; `fault` lands in the *server's* env only.
    fn spawn(max_jobs: usize, fault: Option<&str>) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_pmtbr-cli"));
        cmd.args(["serve", "--addr", "127.0.0.1:0", "--cache-mb", "64"])
            .args(["--max-jobs", &max_jobs.to_string()])
            .env_remove("PMTBR_FAULT")
            .env_remove("PMTBR_THREADS")
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(spec) = fault {
            cmd.env("PMTBR_FAULT", spec);
        }
        let mut child = cmd.spawn().expect("spawn pmtbr-cli serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).expect("read listening line");
        // "listening 127.0.0.1:<port> cache_mb 64"
        let addr = line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("malformed listening line: {line:?}"))
            .to_string();
        Server { child, addr }
    }

    /// Waits for the server's clean `--max-jobs` exit.
    fn finish(mut self) {
        let status = self.child.wait().expect("wait for serve");
        assert_eq!(status.code(), Some(0), "serve must exit cleanly after max-jobs");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Runs `submit` against `addr` with the given netlist and extra flags.
fn submit(addr: &str, netlist: &std::path::Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pmtbr-cli"))
        .arg("submit")
        .arg(netlist)
        .args(["--addr", addr])
        .args(extra)
        .env_remove("PMTBR_FAULT")
        .env_remove("PMTBR_THREADS")
        .output()
        .expect("spawn pmtbr-cli submit")
}

/// Runs local `reduce` with the given netlist, flags, and fault spec.
fn reduce(netlist: &std::path::Path, extra: &[&str], fault: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pmtbr-cli"));
    cmd.arg("reduce")
        .arg(netlist)
        .args(extra)
        .env_remove("PMTBR_FAULT")
        .env_remove("PMTBR_THREADS");
    if let Some(spec) = fault {
        cmd.env("PMTBR_FAULT", spec);
    }
    cmd.output().expect("spawn pmtbr-cli reduce")
}

#[test]
fn submit_matches_local_reduce_byte_for_byte() {
    let nl = write_netlist("parity.sp", RC_LADDER);
    let flags = ["--order", "2", "--band", "2e9", "--samples", "12", "--check", "7"];
    let server = Server::spawn(1, None);
    let remote = submit(&server.addr, &nl, &flags);
    server.finish();
    let local = reduce(&nl, &flags, None);
    assert_eq!(
        remote.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&remote.stderr)
    );
    assert_eq!(remote.status.code(), local.status.code());
    assert_eq!(
        remote.stdout, local.stdout,
        "a served model must be byte-identical to the local one"
    );
}

#[test]
fn warm_resubmission_is_bit_identical_to_cold() {
    let nl = write_netlist("warm.sp", RC_LADDER);
    let flags = ["--order", "2", "--band", "2e9", "--samples", "12"];
    let server = Server::spawn(2, None);
    let cold = submit(&server.addr, &nl, &flags);
    let warm = submit(&server.addr, &nl, &flags);
    server.finish();
    assert_eq!(cold.status.code(), Some(0));
    assert_eq!(warm.status.code(), Some(0));
    assert_eq!(
        cold.stdout, warm.stdout,
        "a cache hit must replay the cold answer exactly"
    );
}

/// The chaos matrix from `tests/chaos.rs`, extended through serve
/// round-trips: every registry method under a 25%-rate fault mix
/// injected into the *server's* environment. Containment now spans the
/// wire — the client's exit code stays in the documented `{0..=5}` set,
/// no panic escapes either process, and the served outcome is
/// bit-identical to a local `reduce` under the same fault spec.
#[test]
fn chaos_matrix_through_serve_matches_local_reduce() {
    let nl = write_netlist("chaos.sp", RLC_LADDER);
    let spec = "seed=42,rate=0.25,kinds=singular|nan|drift|panic,depth=2,stage=all";
    let server = Server::spawn(pmtbr_cli::METHODS.len(), Some(spec));
    for method in pmtbr_cli::METHODS {
        let mut flags = vec!["--method", method.name, "--band", "2e9", "--samples", "8"];
        if method.needs_order {
            flags.extend_from_slice(&["--order", "2"]);
        }
        let remote = submit(&server.addr, &nl, &flags);
        let local = reduce(&nl, &flags, Some(spec));
        let ctx = format!("method={}", method.name);
        let code = remote.status.code();
        assert!(
            matches!(code, Some(0..=5)),
            "{ctx}: exit {code:?} outside the documented set\nstderr: {}",
            String::from_utf8_lossy(&remote.stderr)
        );
        assert_eq!(
            code,
            local.status.code(),
            "{ctx}: served exit code diverged from local\nremote stderr: {}\nlocal stderr: {}",
            String::from_utf8_lossy(&remote.stderr),
            String::from_utf8_lossy(&local.stderr)
        );
        assert_eq!(remote.stdout, local.stdout, "{ctx}: served stdout diverged from local");
        for out in [&remote, &local] {
            assert!(
                !String::from_utf8_lossy(&out.stderr).contains("panicked at"),
                "{ctx}: a panic escaped to stderr"
            );
        }
    }
    server.finish();
}

/// Degradation acceptance is decided by the *client's* flags against
/// the server's summaries, with the same exit codes as local `reduce`
/// (asserted over in `tests/cli.rs` for the identical fault spec).
#[test]
fn degraded_submit_exit_codes_match_reduce() {
    let nl = write_netlist("degraded.sp", RC_LADDER);
    let fault = "seed=5,rate=0.3,kinds=panic,depth=2";
    let base = ["--order", "2", "--band", "2e9", "--samples", "12"];
    let server = Server::spawn(4, Some(fault));

    // Degraded but accepted: exit 2, diagnostics on stderr.
    let out = submit(&server.addr, &nl, &base);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("sample points survived"), "stderr: {err}");

    // --strict is evaluated client-side: exit 3.
    let mut strict = base.to_vec();
    strict.push("--strict");
    let out = submit(&server.addr, &nl, &strict);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--strict"));

    // Client-side drop budget exceeded: exit 3.
    let mut capped = base.to_vec();
    capped.extend_from_slice(&["--max-dropped-samples", "0"]);
    let out = submit(&server.addr, &nl, &capped);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("max-dropped-samples"));

    // A generous budget accepts the same degradation: exit 2.
    let mut generous = base.to_vec();
    generous.extend_from_slice(&["--max-dropped-samples", "11"]);
    let out = submit(&server.addr, &nl, &generous);
    assert_eq!(out.status.code(), Some(2));
    server.finish();
}

#[test]
fn budget_exhaustion_parity_exit_4() {
    let nl = write_netlist("budget.sp", RLC_LADDER);
    let flags = ["--band", "2e9", "--samples", "8", "--budget-lu", "4"];
    let server = Server::spawn(1, None);
    let remote = submit(&server.addr, &nl, &flags);
    server.finish();
    let local = reduce(&nl, &flags, None);
    assert_eq!(remote.status.code(), Some(4));
    assert_eq!(local.status.code(), Some(4));
    assert_eq!(remote.stdout, local.stdout, "best-effort model must match local");
    assert!(
        String::from_utf8_lossy(&remote.stderr).contains("budget_exhausted=lu-factorizations"),
        "stderr: {}",
        String::from_utf8_lossy(&remote.stderr)
    );
}

/// Transport failures are exit 5 — distinct from exit 1 so scripts can
/// tell "the job failed" from "the service failed".
#[test]
fn protocol_errors_exit_5() {
    let nl = write_netlist("proto.sp", RC_LADDER);
    let flags = ["--order", "2", "--band", "2e9", "--samples", "8", "--timeout-ms", "400"];

    // Nobody listening: bind an ephemeral port, then close it.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let out = submit(&dead, &nl, &flags);
    assert_eq!(
        out.status.code(),
        Some(5),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty(), "no model may be printed on a protocol error");

    // Listening but never answering: the deadline must fire as exit 5.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let stalled = listener.local_addr().expect("addr").to_string();
    let out = submit(&stalled, &nl, &flags);
    assert_eq!(
        out.status.code(),
        Some(5),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty());
    drop(listener);
}

/// A job the *server* rejects (bad netlist) is a well-formed response
/// and maps to exit 1 — the same code the local command would use.
#[test]
fn server_side_job_errors_exit_1() {
    let nl = write_netlist("broken.sp", "Q1 broken card\n.end");
    let server = Server::spawn(1, None);
    let out = submit(&server.addr, &nl, &["--band", "2e9", "--samples", "8"]);
    server.finish();
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("netlist:"), "stderr: {err}");
    assert!(out.stdout.is_empty());
}

/// `--trace` on submit ships the *server's* deterministic trace back
/// over the wire, cache spans included.
#[test]
fn submit_trace_rides_back_from_the_server() {
    let nl = write_netlist("trace.sp", RC_LADDER);
    let trace = std::env::temp_dir().join("pmtbr-serve-tests").join("submit-trace.jsonl");
    let _ = std::fs::remove_file(&trace);
    let server = Server::spawn(1, None);
    let out = submit(
        &server.addr,
        &nl,
        &[
            "--order",
            "2",
            "--band",
            "2e9",
            "--samples",
            "12",
            "--trace",
            trace.to_str().expect("utf8 path"),
        ],
    );
    server.finish();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&trace).expect("server trace written");
    let first = text.lines().next().expect("non-empty trace");
    assert!(first.contains("pmtbr-trace-v1"), "first line: {first}");
    assert!(first.contains("\"clock\":\"counter\""), "served traces use the counter clock");
    assert!(text.contains("cache_lookup"), "cache spans must appear in the served trace");
}
