//! Golden-file test for `--trace`: the deterministic-clock trace of an
//! RLC reduction must be byte-identical at any thread count AND
//! byte-identical to the blessed fixture.
//!
//! The fixture (`tests/fixtures/rlc_trace.jsonl`) pins the full
//! observable behavior of the pipeline — span structure, event order,
//! ladder outcomes, float-formatted residuals, and counter totals. A
//! diff against it is a *behavior change*, not noise: under the counter
//! clock every stamp is a per-item event ordinal, so two runs that do
//! the same numerical work produce the same bytes.
//!
//! Last re-bless: greedy adaptive sampling. The counters line gained
//! the `GREEDY_SCORED` / `GREEDY_ACCEPTED` totals (zero in this
//! fixed-grid trace — the greedy driver's own determinism is pinned by
//! `crates/pmtbr/tests/greedy.rs` at 1/2/8 threads).
//!
//! Re-bless intentionally after a behavior-changing commit with:
//!
//! ```text
//! PMTBR_BLESS=1 cargo test -p pmtbr-cli --test trace_golden
//! ```

use std::io::Write;
use std::process::Command;

const RLC_TANK: &str = "\
* Parallel RLC tank driven through a source resistor.
R1 1 2 50
L1 2 0 10n
C1 2 0 1p
R2 2 0 2k
PORT 1
.end";

fn run_traced(netlist: &std::path::Path, trace: &std::path::Path, threads: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_pmtbr-cli"))
        .args([
            "reduce",
            netlist.to_str().expect("utf8 path"),
            "--order",
            "2",
            "--band",
            "2e9",
            "--samples",
            "8",
            "--threads",
            threads,
            "--trace",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run reduce --trace");
    assert!(
        out.status.success(),
        "threads={threads} stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(trace).expect("trace file written")
}

#[test]
fn trace_is_deterministic_and_matches_blessed_fixture() {
    let dir = std::env::temp_dir().join("pmtbr-trace-golden");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let netlist = dir.join("tank.sp");
    let mut f = std::fs::File::create(&netlist).expect("create netlist");
    f.write_all(RLC_TANK.as_bytes()).expect("write netlist");
    drop(f);

    // Identical bytes at 1, 2, and 8 threads: thread scheduling must not
    // be observable in a counter-clock trace.
    let t1 = run_traced(&netlist, &dir.join("t1.jsonl"), "1");
    let t2 = run_traced(&netlist, &dir.join("t2.jsonl"), "2");
    let t8 = run_traced(&netlist, &dir.join("t8.jsonl"), "8");
    assert_eq!(t1, t2, "trace differs between 1 and 2 threads");
    assert_eq!(t1, t8, "trace differs between 1 and 8 threads");

    // Every line is a syntactically valid JSON object.
    let lines = obs::json::validate_jsonl(&t1).expect("schema-valid JSONL");
    assert!(lines > 10, "suspiciously short trace: {lines} lines");

    // Structural schema: meta first, counters last, and the spans the
    // acceptance criteria name — sparse LU, the shift ladder, the
    // sampling sweep, and the SVD — all present.
    let first = t1.lines().next().expect("nonempty");
    assert!(first.contains(r#""ev":"meta""#), "first line: {first}");
    assert!(first.contains(r#""schema":"pmtbr-trace-v1""#), "first line: {first}");
    assert!(first.contains(r#""clock":"counter""#), "first line: {first}");
    let last = t1.lines().last().expect("nonempty");
    assert!(last.contains(r#""ev":"counters""#), "last line: {last}");
    assert!(last.contains(r#""LU_FACTOR""#), "last line: {last}");
    for span in ["sparse_lu.factor", "ladder", "pmtbr.sample_sweep", "svd.jacobi"] {
        assert!(t1.contains(span), "trace must cover span {span}");
    }

    // Golden comparison. PMTBR_BLESS=1 rewrites the fixture instead.
    let fixture =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/rlc_trace.jsonl");
    if std::env::var_os("PMTBR_BLESS").is_some() {
        std::fs::create_dir_all(fixture.parent().expect("fixture dir")).expect("mkdir");
        std::fs::write(&fixture, &t1).expect("bless fixture");
        return;
    }
    let blessed = std::fs::read_to_string(&fixture).expect(
        "blessed fixture missing — run once with PMTBR_BLESS=1 to create it",
    );
    assert_eq!(
        t1, blessed,
        "trace diverged from the blessed fixture; if the behavior change \
         is intentional, re-bless with PMTBR_BLESS=1"
    );
}
