//! End-to-end tests driving the `pmtbr-cli` binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pmtbr-cli"))
}

fn write_netlist(name: &str, text: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pmtbr-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create netlist");
    f.write_all(text.as_bytes()).expect("write netlist");
    path
}

const RC_LADDER: &str = "\
* 4-node RC ladder
R1 1 2 100
R2 2 3 100
R3 3 4 100
R4 4 0 100
C1 1 0 1p
C2 2 0 1p
C3 3 0 1p
C4 4 0 1p
PORT 1
.end";

#[test]
fn sweep_emits_csv() {
    let nl = write_netlist("ladder.sp", RC_LADDER);
    let out = bin()
        .args(["sweep", nl.to_str().expect("utf8 path"), "--from", "1e6", "--to", "1e9", "--points", "5"])
        .output()
        .expect("run sweep");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "freq_hz,mag_z11");
    assert_eq!(lines.len(), 6, "header + 5 rows");
    // DC-ish magnitude ≈ 400 Ω (series resistance to ground).
    let first: Vec<&str> = lines[1].split(',').collect();
    let mag: f64 = first[1].parse().expect("numeric magnitude");
    assert!((mag - 400.0).abs() < 5.0, "got {mag}");
}

#[test]
fn reduce_reports_model_and_check() {
    let nl = write_netlist("ladder2.sp", RC_LADDER);
    let out = bin()
        .args([
            "reduce",
            nl.to_str().expect("utf8 path"),
            "--order",
            "2",
            "--band",
            "2e9",
            "--samples",
            "12",
            "--check",
            "15",
        ])
        .output()
        .expect("run reduce");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("method: pmtbr"));
    assert!(text.contains("order: 2"));
    assert!(text.contains("A: # 2x2"));
    let check_line = text
        .lines()
        .find(|l| l.starts_with("check_max_rel_error:"))
        .expect("check line present");
    let err: f64 = check_line.split(':').nth(1).expect("value").trim().parse().expect("numeric");
    assert!(err < 0.05, "order-2 model of a 4-state ladder should check out: {err}");
}

#[test]
fn hsv_lists_both_spectra_for_regular_e() {
    let nl = write_netlist("ladder3.sp", RC_LADDER);
    let out = bin()
        .args(["hsv", nl.to_str().expect("utf8 path"), "--band", "2e9", "--samples", "16"])
        .output()
        .expect("run hsv");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.lines().next().expect("header").contains("exact_hankel"));
}

#[test]
fn parse_errors_are_reported_with_line_numbers() {
    let nl = write_netlist("bad.sp", "R1 1 2 100\nQX 1 2 3\n");
    let out = bin().args(["sweep", nl.to_str().expect("utf8 path")]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "stderr: {err}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

/// The dispatch, usage text, and unknown-method error are all derived
/// from the [`pmtbr_cli::METHODS`] registry; enumerate it end-to-end so
/// a registry entry can never exist without a working CLI path.
#[test]
fn every_registry_method_reduces_the_tiny_netlist() {
    let nl = write_netlist("registry.sp", RC_LADDER);
    let path = nl.to_str().expect("utf8 path");
    for m in pmtbr_cli::METHODS {
        let out = bin()
            .args([
                "reduce", path, "--method", m.name, "--order", "2", "--band", "2e9",
                "--samples", "10",
            ])
            .output()
            .expect("run reduce");
        assert!(
            out.status.success(),
            "{}: stderr: {}",
            m.name,
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("method: "), "{}: {text}", m.name);
        assert!(text.lines().any(|l| l.starts_with("order: ")), "{}: {text}", m.name);
        assert!(
            text.lines().any(|l| l.starts_with("A: #")),
            "{}: model matrices must be dumped",
            m.name
        );
    }
}

/// The unknown-method error must list exactly the registry names.
#[test]
fn unknown_method_error_is_registry_derived() {
    let nl = write_netlist("registry2.sp", RC_LADDER);
    let out = bin()
        .args(["reduce", nl.to_str().expect("utf8 path"), "--method", "frobnicate"])
        .output()
        .expect("run reduce");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown --method `frobnicate`"), "stderr: {err}");
    assert!(err.contains(&pmtbr_cli::method_list()), "stderr: {err}");
}

/// `help` must mention every registry method by name.
#[test]
fn help_lists_every_registry_method() {
    let out = bin().arg("help").output().expect("run help");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for m in pmtbr_cli::METHODS {
        assert!(text.contains(m.name), "usage must list `{}`", m.name);
    }
}

/// Fault injection via `PMTBR_FAULT`: with drops the sweep degrades,
/// the diagnostics land on stderr, and the exit code distinguishes
/// accepted (2) from rejected (3) degradation.
#[test]
fn degraded_reduce_exit_codes() {
    let nl = write_netlist("ladder4.sp", RC_LADDER);
    let path = nl.to_str().expect("utf8 path");
    let fault = "seed=5,rate=0.3,kinds=panic,depth=2";
    let base = ["reduce", path, "--order", "2", "--band", "2e9", "--samples", "12"];

    // Clean run: exit 0, no degradation report.
    let out = bin().args(base).output().expect("clean run");
    assert_eq!(out.status.code(), Some(0));

    // Degraded but accepted: exit 2, summary on stderr, model on stdout.
    let out = bin().args(base).env("PMTBR_FAULT", fault).output().expect("degraded run");
    assert_eq!(out.status.code(), Some(2), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("sample points survived"), "stderr: {err}");
    assert!(err.contains("dropped"), "stderr: {err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("samples_surviving:"), "stdout: {text}");
    assert!(text.contains("A: # 2x2"), "model must still be emitted");

    // --strict rejects any degradation: exit 3.
    let out = bin()
        .args(base)
        .arg("--strict")
        .env("PMTBR_FAULT", fault)
        .output()
        .expect("strict run");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--strict"));

    // Drop budget exceeded: exit 3.
    let out = bin()
        .args(base)
        .args(["--max-dropped-samples", "0"])
        .env("PMTBR_FAULT", fault)
        .output()
        .expect("budget run");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("max-dropped-samples"));

    // A generous budget accepts the same degradation: exit 2.
    let out = bin()
        .args(base)
        .args(["--max-dropped-samples", "11"])
        .env("PMTBR_FAULT", fault)
        .output()
        .expect("generous run");
    assert_eq!(out.status.code(), Some(2));
}
