//! Adversarial pencil tests: shifts placed exactly at (and within
//! rounding of) generalized eigenvalues of small RC/RLC pencils, where
//! `(s·E − A)` is singular or catastrophically ill-conditioned. The
//! escalation ladder must recover every recoverable shift (certified
//! residual below tolerance), cleanly drop the rest, and produce
//! bit-identical results for every thread count.

use lti::{Descriptor, LtiSystem, NoFaults, RecoveryPolicy, ShiftOutcome, ShiftSolveEngine};
use numkit::{c64, eig, DMat};
use sparsekit::Triplet;

/// RC ladder descriptor: `E = I`, `A = −G` for a chain of unit
/// resistors with a grounding resistor at the driven node. Its
/// generalized eigenvalues are the (real, negative) eigenvalues of `A`.
fn rc_ladder(n: usize) -> Descriptor {
    let mut g = Triplet::new(n, n);
    for i in 0..n - 1 {
        g.push(i, i, 1.0);
        g.push(i + 1, i + 1, 1.0);
        g.push(i, i + 1, -1.0);
        g.push(i + 1, i, -1.0);
    }
    g.push(0, 0, 1.0);
    let a = {
        let mut t = Triplet::new(n, n);
        for (i, j, v) in g.to_csr().iter() {
            t.push(i, j, -v);
        }
        t.to_csr()
    };
    let mut e = Triplet::new(n, n);
    for i in 0..n {
        e.push(i, i, 1.0);
    }
    let mut b = DMat::zeros(n, 1);
    b[(0, 0)] = 1.0;
    let mut c = DMat::zeros(1, n);
    c[(0, n - 1)] = 1.0;
    Descriptor::new(e.to_csr(), a, b, c, None).unwrap()
}

/// Diagonal pencil with exactly representable eigenvalues: shifts at
/// those eigenvalues make `s·E − A` *exactly* (structurally) singular,
/// forcing the ladder past the refactor and refresh rungs.
fn diagonal_pencil() -> Descriptor {
    let lambdas = [-1.0, -2.0, -4.0, -8.0];
    let n = lambdas.len();
    let mut e = Triplet::new(n, n);
    let mut a = Triplet::new(n, n);
    for (i, &l) in lambdas.iter().enumerate() {
        e.push(i, i, 1.0);
        a.push(i, i, l);
    }
    let b = DMat::from_fn(n, 1, |_, _| 1.0);
    let c = DMat::from_fn(1, n, |_, _| 1.0);
    Descriptor::new(e.to_csr(), a.to_csr(), b, c, None).unwrap()
}

/// RLC-style pencil with an invertible, non-identity `E` and complex
/// generalized eigenvalue pairs (series RLC sections in MNA-like form).
fn rlc_pencil() -> Descriptor {
    // Two independent sections: states (v, i) with
    //   C v̇ = −i + u,  L i̇ = v − R i
    // giving complex eigenvalues for R² < 4 L / C.
    let secs = [(1.0, 1.0, 0.2), (0.5, 2.0, 0.1)]; // (C, L, R)
    let n = 2 * secs.len();
    let mut e = Triplet::new(n, n);
    let mut a = Triplet::new(n, n);
    for (k, &(cv, lv, rv)) in secs.iter().enumerate() {
        let (v, i) = (2 * k, 2 * k + 1);
        e.push(v, v, cv);
        e.push(i, i, lv);
        a.push(v, i, -1.0);
        a.push(i, v, 1.0);
        a.push(i, i, -rv);
    }
    let mut b = DMat::zeros(n, 1);
    b[(0, 0)] = 1.0;
    let mut c = DMat::zeros(1, n);
    c[(0, n - 1)] = 1.0;
    Descriptor::new(e.to_csr(), a.to_csr(), b, c, None).unwrap()
}

#[test]
fn exact_eigenvalue_shift_forces_perturbation_on_diagonal_pencil() {
    let sys = diagonal_pencil();
    let rhs = sys.b.to_complex();
    // Healthy shift first (primes the engine), then shifts exactly at
    // two representable eigenvalues, then another healthy one.
    let shifts = [
        c64::new(0.0, 1.0),
        c64::new(-2.0, 0.0),
        c64::new(-8.0, 0.0),
        c64::new(0.0, 3.0),
    ];
    let sweep = sys.solve_shifted_many_tolerant(
        &shifts,
        &rhs,
        &RecoveryPolicy::default(),
        &NoFaults,
    );
    assert_eq!(sweep.reports.len(), 4);
    assert_eq!(sweep.reports[0].outcome, ShiftOutcome::Refreshed, "primer");
    for k in [1, 2] {
        let rep = &sweep.reports[k];
        assert_eq!(rep.outcome, ShiftOutcome::Perturbed { attempts: 1 }, "shift {k}");
        assert!(rep.residual <= 1e-10, "shift {k}: residual {}", rep.residual);
        assert!(rep.s_used != rep.s_requested);
        assert!(
            (rep.s_used - rep.s_requested).abs() <= 2e-8 * rep.s_requested.abs(),
            "perturbation must stay small"
        );
        // The solution at the nudged shift approximates the (huge)
        // near-singular resolvent; it must at least be finite.
        let z = sweep.solutions[k].as_ref().unwrap();
        assert!(z.norm_max().is_finite());
        assert!(z.norm_max() > 1e6, "resolvent near an eigenvalue must be large");
    }
    assert_eq!(sweep.reports[3].outcome, ShiftOutcome::Refactored);
    assert!(sweep.is_complete());
}

#[test]
fn near_eigenvalue_shift_certifies_with_tiny_rcond() {
    let sys = rc_ladder(12);
    let rhs = sys.b.to_complex();
    let eigs = eig(&sys.a.to_dense()).unwrap().values;
    // The eigenvalue of largest magnitude, nudged by a relative 1e-14:
    // the pencil is (barely) nonsingular with condition ~1e14. A
    // backward-stable solve still certifies, and the condition estimate
    // must flag how close to singular the factorization was.
    let lam = eigs
        .iter()
        .copied()
        .max_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap())
        .unwrap();
    let shifts = [c64::new(0.0, 1.0), lam.scale(1.0 + 1e-14)];
    let sweep = sys.solve_shifted_many_tolerant(
        &shifts,
        &rhs,
        &RecoveryPolicy::default(),
        &NoFaults,
    );
    let rep = &sweep.reports[1];
    assert!(!rep.outcome.is_dropped(), "outcome {:?}", rep.outcome);
    assert!(rep.residual <= 1e-10, "residual {}", rep.residual);
    assert!(rep.rcond < 1e-8, "rcond {} must expose near-singularity", rep.rcond);
    // Healthy shift keeps a healthy condition estimate.
    assert!(sweep.reports[0].rcond > 1e-6, "rcond {}", sweep.reports[0].rcond);
}

#[test]
fn eigenvalue_shifts_recover_or_drop_never_panic() {
    let sys = rc_ladder(10);
    let rhs = sys.b.to_complex();
    let eigs = eig(&sys.a.to_dense()).unwrap().values;
    // Every eigenvalue of the pencil as a shift, plus healthy shifts
    // interleaved — the worst sweep imaginable for a naive engine.
    let mut shifts = Vec::new();
    for (k, lam) in eigs.iter().enumerate() {
        shifts.push(*lam);
        shifts.push(c64::new(0.0, 0.5 + k as f64));
    }
    let sweep = sys.solve_shifted_many_tolerant(
        &shifts,
        &rhs,
        &RecoveryPolicy::default(),
        &NoFaults,
    );
    assert_eq!(sweep.reports.len(), shifts.len());
    for (k, rep) in sweep.reports.iter().enumerate() {
        if rep.outcome.is_dropped() {
            continue; // a clean drop is acceptable for an exact eigenvalue
        }
        assert!(
            rep.residual <= 1e-10,
            "shift {k}: accepted with residual {}",
            rep.residual
        );
        assert!(sweep.solutions[k].is_some());
    }
    // The healthy half of the sweep (odd indices) must all survive.
    for k in (1..shifts.len()).step_by(2) {
        assert!(!sweep.reports[k].outcome.is_dropped(), "healthy shift {k} dropped");
    }
}

#[test]
fn complex_eigenvalue_shifts_on_rlc_pencil() {
    let sys = rlc_pencil();
    let rhs = sys.b.to_complex();
    // Generalized eigenvalues of (A, E) are the eigenvalues of E⁻¹A.
    let ss = sys.to_state_space().unwrap();
    let eigs = eig(&ss.a).unwrap().values;
    assert!(
        eigs.iter().any(|l| l.im.abs() > 1e-6),
        "RLC pencil must have complex eigenvalues"
    );
    let mut shifts = vec![c64::new(0.0, 0.1)];
    shifts.extend(eigs.iter().copied());
    shifts.extend(eigs.iter().map(|l| l.scale(1.0 + 1e-14)));
    let sweep = sys.solve_shifted_many_tolerant(
        &shifts,
        &rhs,
        &RecoveryPolicy::default(),
        &NoFaults,
    );
    for (k, rep) in sweep.reports.iter().enumerate() {
        assert!(
            rep.outcome.is_dropped() || rep.residual <= 1e-10,
            "shift {k}: outcome {:?} residual {}",
            rep.outcome,
            rep.residual
        );
    }
    assert!(
        sweep.surviving() > eigs.len(),
        "most adversarial shifts must be recovered, got {}/{}",
        sweep.surviving(),
        shifts.len()
    );
}

#[test]
fn tolerant_sweep_bit_identical_across_thread_counts() {
    let sys = rc_ladder(15);
    let rhs = sys.b.to_complex();
    let eigs = eig(&sys.a.to_dense()).unwrap().values;
    let mut shifts: Vec<c64> = (0..6).map(|k| c64::new(0.01, 0.4 * k as f64)).collect();
    shifts.push(eigs[0]);
    shifts.push(eigs[1].scale(1.0 + 1e-14));
    shifts.push(shifts[0]); // duplicate: exercises the reuse rung
    let policy = RecoveryPolicy::default();
    let baseline = ShiftSolveEngine::new(&sys)
        .solve_many_tolerant(&shifts, &rhs, 1, &policy, &NoFaults);
    for threads in [2usize, 8] {
        let sweep = ShiftSolveEngine::new(&sys)
            .solve_many_tolerant(&shifts, &rhs, threads, &policy, &NoFaults);
        assert_eq!(sweep.reports, baseline.reports, "threads {threads}");
        for (k, (a, b)) in sweep.solutions.iter().zip(&baseline.solutions).enumerate() {
            assert_eq!(a, b, "threads {threads} shift {k}: must be bit-identical");
        }
    }
}

#[test]
fn duplicate_of_primer_shift_is_reused_verbatim() {
    let sys = rc_ladder(8);
    let rhs = sys.b.to_complex();
    let s0 = c64::new(0.0, 1.0);
    let shifts = [s0, c64::new(0.0, 2.0), s0];
    let sweep = ShiftSolveEngine::new(&sys).solve_many_tolerant(
        &shifts,
        &rhs,
        2,
        &RecoveryPolicy::default(),
        &NoFaults,
    );
    assert_eq!(sweep.reports[0].outcome, ShiftOutcome::Refreshed);
    assert_eq!(sweep.reports[1].outcome, ShiftOutcome::Refactored);
    assert_eq!(sweep.reports[2].outcome, ShiftOutcome::Reused);
    // Verbatim reuse: identical bits to the primer's solution.
    assert_eq!(sweep.solutions[2], sweep.solutions[0]);
}

#[test]
fn strict_sweep_still_fails_fast_but_tolerant_does_not() {
    let sys = diagonal_pencil();
    let rhs = sys.b.to_complex();
    let shifts = [c64::new(0.0, 1.0), c64::new(-4.0, 0.0)];
    // The strict engine path errors on the singular shift…
    assert!(sys.solve_shifted_many(&shifts, &rhs).is_err());
    // …while the tolerant path completes the sweep.
    let sweep = sys.solve_shifted_many_tolerant(
        &shifts,
        &rhs,
        &RecoveryPolicy::default(),
        &NoFaults,
    );
    assert!(sweep.is_complete());
}
