//! Time-domain (transient) simulation with the trapezoidal rule.
//!
//! Both the full sparse descriptor systems and the small dense reduced
//! models integrate through the same discretization:
//!
//! ```text
//! E·ẋ = A·x + B·u   →   (2E/h − A)·x₁ = (2E/h + A)·x₀ + B·(u₀ + u₁)
//! ```
//!
//! The left matrix is factored once per run (uniform step), matching how
//! reduced parasitic models are used inside circuit simulators.

use numkit::{DMat, Lu, NumError};
use sparsekit::{SparseLu, Triplet};

use crate::{Descriptor, StateSpace};

/// Result of a transient simulation on a uniform time grid.
#[derive(Debug, Clone)]
pub struct Transient {
    /// Time points `t₀ = 0, t₁ = h, …` (length = number of input samples).
    pub t: Vec<f64>,
    /// Outputs, `q × nt` (column `k` is `y(tₖ)`).
    pub y: DMat,
}

impl Transient {
    /// Output channel `i` as a time series.
    pub fn output(&self, i: usize) -> Vec<f64> {
        (0..self.y.ncols()).map(|k| self.y[(i, k)]).collect()
    }
}

/// Worst-case difference between two transients on the same grid:
/// `max_k |y₁(tₖ) − y₂(tₖ)|` over all outputs.
///
/// # Panics
///
/// Panics if the grids differ in length.
pub fn max_transient_error(a: &Transient, b: &Transient) -> f64 {
    assert_eq!(a.t.len(), b.t.len(), "transients must share a grid");
    (&a.y - &b.y).norm_max()
}

/// Simulates a sparse descriptor system from rest (`x(0) = 0`).
///
/// `u` is `p × nt`: column `k` holds the inputs at `t = k·h`.
///
/// # Errors
///
/// - [`NumError::ShapeMismatch`] if `u` has the wrong row count.
/// - [`NumError::Singular`] if `(2E/h − A)` is singular (step too exotic
///   or an ill-posed DAE).
pub fn simulate_descriptor(sys: &Descriptor, u: &DMat, h: f64) -> Result<Transient, NumError> {
    if u.nrows() != sys.ninputs() {
        return Err(NumError::ShapeMismatch {
            operation: "simulate inputs",
            left: (sys.ninputs(), 0),
            right: u.shape(),
        });
    }
    if !(h > 0.0 && h.is_finite()) {
        return Err(NumError::InvalidArgument("time step must be positive and finite"));
    }
    let n = sys.nstates();
    let two_over_h = 2.0 / h;
    // Left: 2E/h − A (CSC, factored once). Right: 2E/h + A (CSR matvec).
    let mut lt = Triplet::with_capacity(n, n, sys.e.nnz() + sys.a.nnz());
    for (i, j, v) in sys.e.iter() {
        lt.push(i, j, two_over_h * v);
    }
    for (i, j, v) in sys.a.iter() {
        lt.push(i, j, -v);
    }
    let left = SparseLu::new(&lt.to_csc())?;
    let right = sys.e.add_scaled(two_over_h, &sys.a, 1.0);

    let nt = u.ncols();
    let mut x = vec![0.0f64; n];
    let mut y = DMat::zeros(sys.noutputs(), nt);
    let store_output = |x: &[f64], uk: &[f64], yout: &mut DMat, k: usize, sys: &Descriptor| {
        for i in 0..sys.noutputs() {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                acc += sys.c[(i, j)] * xj;
            }
            for (j, &uj) in uk.iter().enumerate() {
                acc += sys.d[(i, j)] * uj;
            }
            yout[(i, k)] = acc;
        }
    };
    let u0 = u.col(0);
    store_output(&x, &u0, &mut y, 0, sys);
    for k in 1..nt {
        let uk_prev = u.col(k - 1);
        let uk = u.col(k);
        let mut rhs = right.mul_vec(&x);
        for i in 0..n {
            let mut acc = 0.0;
            for (j, (&up, &uc)) in uk_prev.iter().zip(&uk).enumerate() {
                acc += sys.b[(i, j)] * (up + uc);
            }
            rhs[i] += acc;
        }
        x = left.solve(&rhs)?;
        store_output(&x, &uk, &mut y, k, sys);
    }
    let t = (0..nt).map(|k| k as f64 * h).collect();
    Ok(Transient { t, y })
}

/// Simulates a dense state-space model from rest (`x(0) = 0`).
///
/// # Errors
///
/// Same conditions as [`simulate_descriptor`] (with `E = I`).
pub fn simulate_ss(sys: &StateSpace, u: &DMat, h: f64) -> Result<Transient, NumError> {
    if u.nrows() != sys.ninputs() {
        return Err(NumError::ShapeMismatch {
            operation: "simulate inputs",
            left: (sys.ninputs(), 0),
            right: u.shape(),
        });
    }
    if !(h > 0.0 && h.is_finite()) {
        return Err(NumError::InvalidArgument("time step must be positive and finite"));
    }
    let n = sys.nstates();
    let two_over_h = 2.0 / h;
    let left = DMat::from_fn(n, n, |i, j| {
        (if i == j { two_over_h } else { 0.0 }) - sys.a[(i, j)]
    });
    let right = DMat::from_fn(n, n, |i, j| {
        (if i == j { two_over_h } else { 0.0 }) + sys.a[(i, j)]
    });
    let lu = Lu::new(left)?;

    let nt = u.ncols();
    let mut x = vec![0.0f64; n];
    let mut y = DMat::zeros(sys.noutputs(), nt);
    let emit = |x: &[f64], uk: &[f64], yout: &mut DMat, k: usize| {
        for i in 0..sys.noutputs() {
            let mut acc = 0.0;
            for (j, &xj) in x.iter().enumerate() {
                acc += sys.c[(i, j)] * xj;
            }
            for (j, &uj) in uk.iter().enumerate() {
                acc += sys.d[(i, j)] * uj;
            }
            yout[(i, k)] = acc;
        }
    };
    emit(&x, &u.col(0), &mut y, 0);
    for k in 1..nt {
        let up = u.col(k - 1);
        let uc = u.col(k);
        let mut rhs = right.mul_vec(&x);
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..sys.ninputs() {
                acc += sys.b[(i, j)] * (up[j] + uc[j]);
            }
            rhs[i] += acc;
        }
        x = lu.solve(&rhs)?;
        emit(&x, &uc, &mut y, k);
    }
    let t = (0..nt).map(|k| k as f64 * h).collect();
    Ok(Transient { t, y })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::Triplet;

    /// 1-state RC: ẋ = −x + u, y = x. Step response: 1 − e^{−t}.
    fn rc_descriptor() -> Descriptor {
        let mut e = Triplet::new(1, 1);
        e.push(0, 0, 1.0);
        let mut a = Triplet::new(1, 1);
        a.push(0, 0, -1.0);
        Descriptor::new(
            e.to_csr(),
            a.to_csr(),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[1.0]]),
            None,
        )
        .unwrap()
    }

    #[test]
    fn step_response_matches_analytic() {
        let sys = rc_descriptor();
        let h = 0.01;
        let nt = 500;
        let u = DMat::from_fn(1, nt, |_, _| 1.0);
        let tr = simulate_descriptor(&sys, &u, h).unwrap();
        for k in (0..nt).step_by(50) {
            let t = k as f64 * h;
            let expect = 1.0 - (-t).exp();
            assert!(
                (tr.y[(0, k)] - expect).abs() < 1e-4,
                "t={t}: got {} want {expect}",
                tr.y[(0, k)]
            );
        }
    }

    #[test]
    fn dense_and_sparse_paths_agree() {
        let sys = rc_descriptor();
        let ss = sys.to_state_space().unwrap();
        let u = DMat::from_fn(1, 200, |_, k| (k as f64 * 0.1).sin());
        let t1 = simulate_descriptor(&sys, &u, 0.02).unwrap();
        let t2 = simulate_ss(&ss, &u, 0.02).unwrap();
        assert!(max_transient_error(&t1, &t2) < 1e-10);
    }

    #[test]
    fn trapezoidal_is_second_order() {
        // Halving h should reduce error by ~4x.
        let sys = rc_descriptor();
        let errs: Vec<f64> = [0.1, 0.05]
            .iter()
            .map(|&h| {
                let nt = (2.0 / h) as usize;
                let u = DMat::from_fn(1, nt, |_, _| 1.0);
                let tr = simulate_descriptor(&sys, &u, h).unwrap();
                let k = nt - 1;
                let t = k as f64 * h;
                (tr.y[(0, k)] - (1.0 - (-t).exp())).abs()
            })
            .collect();
        let ratio = errs[0] / errs[1];
        assert!(ratio > 3.0 && ratio < 5.5, "convergence ratio {ratio}, errors {errs:?}");
    }

    #[test]
    fn invalid_step_rejected() {
        let sys = rc_descriptor();
        let u = DMat::zeros(1, 10);
        assert!(simulate_descriptor(&sys, &u, 0.0).is_err());
        assert!(simulate_descriptor(&sys, &u, f64::NAN).is_err());
    }

    #[test]
    fn wrong_input_rows_rejected() {
        let sys = rc_descriptor();
        let u = DMat::zeros(2, 10);
        assert!(matches!(
            simulate_descriptor(&sys, &u, 0.1),
            Err(NumError::ShapeMismatch { .. })
        ));
    }
}
