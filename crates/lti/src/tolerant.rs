//! Fault-tolerant multipoint sweeps: escalation ladder, residual
//! certification, and per-shift diagnostics.
//!
//! A multipoint sweep solves `(sₖ·E − A)·Z = R` at many shifts, and any
//! single shift can go bad: it may land on (or within rounding of) a
//! generalized eigenvalue of the pencil, a frozen pivot order reused
//! from another shift may explode, or — under the fault-injection
//! harness — a worker may be made to fail outright. PMTBR's quadrature
//! interpretation makes the right response obvious: a sample point is
//! one node of a quadrature rule, so losing it should *degrade* the
//! sweep, never abort it.
//!
//! This module defines the shared vocabulary of that fault-tolerance
//! layer:
//!
//! - [`RecoveryPolicy`] — the knobs of the per-shift escalation ladder;
//! - [`ShiftOutcome`] / [`ShiftReport`] — what happened at each shift,
//!   with the certified residual, condition estimate, and pivot growth;
//! - [`TolerantSweep`] — partial results (`None` per dropped shift) plus
//!   the full per-shift report list;
//! - [`SolveFault`] — the injection hook the fault harness implements
//!   ([`NoFaults`] is the production no-op).
//!
//! The ladder itself lives in two places: the sparse, factorization-
//! reusing version in [`crate::ShiftSolveEngine::solve_many_tolerant`],
//! and a generic dense fallback here ([`generic_tolerant_sweep`]) that
//! backs the [`crate::LtiSystem::solve_shifted_many_tolerant`] default.

use std::panic::{catch_unwind, AssertUnwindSafe};

use numkit::{c64, CancelToken, NumError, ZMat};

use crate::LtiSystem;

/// Tuning knobs for the per-shift escalation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Relative residual a solve must reach to be accepted (the
    /// certification threshold).
    pub residual_tol: f64,
    /// Maximum iterative-refinement steps per factorization before
    /// escalating to the next rung.
    pub refine_steps: usize,
    /// Maximum deterministic shift perturbations before the sample is
    /// dropped.
    pub max_perturb: usize,
    /// Relative perturbation scale: attempt `j` solves at
    /// `s·(1 + j·perturb_eps)` (additive `j·perturb_eps` when `s = 0`).
    pub perturb_eps: f64,
    /// Pivot-growth ceiling `max|U|/max|A|` above which a factorization
    /// is rejected without solving.
    pub growth_limit: f64,
    /// Whether to attach a 1-norm reciprocal-condition estimate to each
    /// accepted sparse solve (a handful of extra triangular solves).
    pub estimate_condition: bool,
    /// Cooperative cancellation token, polled once per sweep iteration
    /// (i.e. per shift, before its ladder starts). A cancelled sweep
    /// drops every not-yet-attempted shift with
    /// [`NumError::Cancelled`] instead of solving it; shifts already
    /// resolved keep their bit-identical results. `None` (the default)
    /// never cancels.
    pub cancel: Option<CancelToken>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            residual_tol: 1e-10,
            refine_steps: 2,
            max_perturb: 3,
            perturb_eps: 1e-8,
            growth_limit: 1e8,
            estimate_condition: true,
            cancel: None,
        }
    }
}

impl RecoveryPolicy {
    /// `true` once the attached [`CancelToken`] (if any) is raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// The shift actually attempted at perturbation level `j`:
    /// `s·(1 + j·ε)` for nonzero `s`, `j·ε` for `s = 0`. Level 0 is the
    /// requested shift unchanged.
    pub fn perturbed(&self, s: c64, j: usize) -> c64 {
        if j == 0 {
            return s;
        }
        let step = j as f64 * self.perturb_eps;
        if s == c64::ZERO {
            c64::new(step, 0.0)
        } else {
            s.scale(1.0 + step)
        }
    }
}

/// How one shift of a tolerant sweep was ultimately resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftOutcome {
    /// The primer factorization was reused verbatim (the shift equals
    /// the shift that primed the engine).
    Reused,
    /// The symbolic-reuse numeric refactorization fast path succeeded
    /// and certified directly.
    Refactored,
    /// A fresh full-pivot factorization was needed (this includes the
    /// priming shift itself).
    Refreshed,
    /// Accepted only after iterative refinement pulled the residual
    /// below tolerance.
    Refined,
    /// Accepted at a deterministically perturbed shift `s·(1 + j·ε)`.
    Perturbed {
        /// The perturbation level `j ≥ 1` that finally certified.
        attempts: usize,
    },
    /// Every rung failed; the sample is lost and its solution is `None`.
    Dropped,
}

impl ShiftOutcome {
    /// `true` when the sample was lost.
    pub fn is_dropped(&self) -> bool {
        matches!(self, ShiftOutcome::Dropped)
    }

    /// Short lower-case label for reports (`"reused"`, `"dropped"`, …).
    pub fn label(&self) -> &'static str {
        match self {
            ShiftOutcome::Reused => "reused",
            ShiftOutcome::Refactored => "refactored",
            ShiftOutcome::Refreshed => "refreshed",
            ShiftOutcome::Refined => "refined",
            ShiftOutcome::Perturbed { .. } => "perturbed",
            ShiftOutcome::Dropped => "dropped",
        }
    }
}

/// The per-shift record of a tolerant sweep.
///
/// Equality is *bitwise* on the floating-point fields (`NaN == NaN`
/// when the bits agree), matching the sweep's bit-identical-at-any-
/// thread-count reproducibility guarantee: two reports compare equal
/// exactly when the sweeps that produced them are indistinguishable.
#[derive(Debug, Clone)]
pub struct ShiftReport {
    /// Index into the sweep's shift list.
    pub index: usize,
    /// The shift the caller asked for.
    pub s_requested: c64,
    /// The shift actually solved (differs from `s_requested` only for
    /// [`ShiftOutcome::Perturbed`]).
    pub s_used: c64,
    /// How the ladder resolved this shift.
    pub outcome: ShiftOutcome,
    /// Certified relative residual of the accepted solution (the last
    /// observed residual, possibly `NaN`, for dropped shifts).
    pub residual: f64,
    /// 1-norm reciprocal condition estimate of the accepted
    /// factorization; `NaN` when not estimated (dense path, or
    /// [`RecoveryPolicy::estimate_condition`] off).
    pub rcond: f64,
    /// Pivot growth of the accepted factorization; `NaN` on the dense
    /// path and for dropped shifts.
    pub pivot_growth: f64,
    /// Iterative-refinement steps spent on the accepted solution.
    pub refine_steps: usize,
    /// The last error seen while escalating (present for most dropped
    /// shifts; `None` when the drop was purely residual-driven).
    pub error: Option<NumError>,
}

impl ShiftReport {
    /// A report for a shift that produced no solution at all (panicked
    /// worker, exhausted ladder before any factorization).
    pub fn dropped(index: usize, s: c64, error: Option<NumError>) -> Self {
        ShiftReport {
            index,
            s_requested: s,
            s_used: s,
            outcome: ShiftOutcome::Dropped,
            residual: f64::NAN,
            rcond: f64::NAN,
            pivot_growth: f64::NAN,
            refine_steps: 0,
            error,
        }
    }
}

impl PartialEq for ShiftReport {
    fn eq(&self, other: &Self) -> bool {
        fn bits(x: f64) -> u64 {
            x.to_bits()
        }
        fn cbits(z: c64) -> (u64, u64) {
            (z.re.to_bits(), z.im.to_bits())
        }
        self.index == other.index
            && cbits(self.s_requested) == cbits(other.s_requested)
            && cbits(self.s_used) == cbits(other.s_used)
            && self.outcome == other.outcome
            && bits(self.residual) == bits(other.residual)
            && bits(self.rcond) == bits(other.rcond)
            && bits(self.pivot_growth) == bits(other.pivot_growth)
            && self.refine_steps == other.refine_steps
            && self.error == other.error
    }
}

/// The result of a fault-tolerant multipoint sweep: one `Option` per
/// shift (index-aligned with the request) plus the full report list.
#[derive(Debug, Clone)]
pub struct TolerantSweep {
    /// Per-shift solutions; `None` where the shift was dropped.
    pub solutions: Vec<Option<ZMat>>,
    /// Per-shift reports, index-aligned with `solutions`.
    pub reports: Vec<ShiftReport>,
}

impl TolerantSweep {
    /// Number of shifts that produced a solution.
    pub fn surviving(&self) -> usize {
        self.solutions.iter().filter(|s| s.is_some()).count()
    }

    /// Number of dropped shifts.
    pub fn dropped(&self) -> usize {
        self.solutions.len() - self.surviving()
    }

    /// `true` when every shift survived.
    pub fn is_complete(&self) -> bool {
        self.dropped() == 0
    }
}

/// Injection hook for the numerical fault harness.
///
/// Production code passes [`NoFaults`]; the `pmtbr` fault-injection
/// harness implements this to deterministically simulate singular
/// pivots, NaN contamination, solution drift, and worker panics. The
/// `attempt` argument is the ladder's factorization-attempt counter for
/// that shift (0 = first attempt), so a harness can force escalation to
/// a chosen rung by failing every earlier attempt.
pub trait SolveFault: Sync {
    /// Called before factorization attempt `attempt` of shift `index`;
    /// returning `Some(e)` makes that attempt fail with `e`.
    fn inject_error(&self, _index: usize, _attempt: usize) -> Option<NumError> {
        None
    }

    /// Called on the raw solution of attempt `attempt` before
    /// certification; may contaminate `z` in place.
    fn corrupt(&self, _index: usize, _attempt: usize, _z: &mut ZMat) {}

    /// `true` makes the worker computing shift `index` panic outright
    /// (exercising the panic-containment path).
    fn inject_panic(&self, _index: usize) -> bool {
        false
    }
}

/// The production fault hook: injects nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl SolveFault for NoFaults {}

/// Normalized residual `‖R − M·Z‖_max / (‖R‖_max + ‖M·Z‖_max)` used by
/// the generic (matrix-free) certification path, where the pencil is
/// only available as the operator [`LtiSystem::apply_shifted`].
///
/// `NaN` operands propagate to a `NaN` result; the all-zero problem
/// yields `0.0`.
pub fn operator_residual(rhs: &ZMat, applied: &ZMat) -> f64 {
    let mut rmax = 0.0f64;
    let mut denom = 0.0f64;
    for i in 0..rhs.nrows() {
        for j in 0..rhs.ncols() {
            let (b, m) = (rhs[(i, j)], applied[(i, j)]);
            let r = (b - m).abs();
            if r.is_nan() {
                return f64::NAN;
            }
            rmax = rmax.max(r);
            denom = denom.max(b.abs()).max(m.abs());
        }
    }
    if denom == 0.0 {
        if rmax == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        rmax / denom
    }
}

/// Which pencil a tolerant sweep solves: the forward `s·E − A`
/// (controllability-side samples) or its transpose (observability-side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SweepSide {
    /// `(s·E − A)·Z = R`.
    Forward,
    /// `(s·E − A)ᵀ·Z = R`.
    Transpose,
}

impl SweepSide {
    fn solve<S: LtiSystem + ?Sized>(self, sys: &S, s: c64, rhs: &ZMat) -> Result<ZMat, NumError> {
        match self {
            SweepSide::Forward => sys.solve_shifted(s, rhs),
            SweepSide::Transpose => sys.solve_shifted_transpose(s, rhs),
        }
    }

    fn apply<S: LtiSystem + ?Sized>(self, sys: &S, s: c64, x: &ZMat) -> Result<ZMat, NumError> {
        match self {
            SweepSide::Forward => sys.apply_shifted(s, x),
            SweepSide::Transpose => sys.apply_shifted_transpose(s, x),
        }
    }
}

/// Right-hand sides of a tolerant sweep: one shared matrix for every
/// shift, or one matrix per shift (input-correlated sampling).
#[derive(Debug, Clone, Copy)]
pub(crate) enum SweepRhs<'a> {
    Shared(&'a ZMat),
    PerShift(&'a [ZMat]),
}

impl SweepRhs<'_> {
    pub(crate) fn get(&self, index: usize) -> &ZMat {
        match self {
            SweepRhs::Shared(r) => r,
            SweepRhs::PerShift(rs) => &rs[index],
        }
    }
}

/// The dense/generic escalation ladder behind the
/// [`LtiSystem::solve_shifted_many_tolerant`] family of defaults: per
/// shift, solve → corrupt (harness) → certify via the matching
/// `apply_shifted` operator → refine → perturb → drop. There is no
/// factorization reuse at this level, so the rungs are
/// `Refreshed → Refined → Perturbed → Dropped`; one factorization
/// attempt is made per perturbation level and the attempt counter
/// passed to the fault hook equals that level.
///
/// Panics raised by the system's solve (or injected by the harness) are
/// contained per shift with [`catch_unwind`] and surfaced as a dropped
/// sample carrying [`NumError::WorkerPanicked`].
pub(crate) fn generic_tolerant_sweep<S: LtiSystem + ?Sized>(
    sys: &S,
    shifts: &[c64],
    rhs: SweepRhs<'_>,
    side: SweepSide,
    policy: &RecoveryPolicy,
    faults: &dyn SolveFault,
) -> TolerantSweep {
    let mut solutions = Vec::with_capacity(shifts.len());
    let mut reports = Vec::with_capacity(shifts.len());
    for (index, &s_req) in shifts.iter().enumerate() {
        if policy.is_cancelled() {
            solutions.push(None);
            reports.push(ShiftReport::dropped(index, s_req, Some(NumError::Cancelled)));
            continue;
        }
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            generic_ladder(sys, index, s_req, rhs.get(index), side, policy, faults)
        }));
        let (sol, rep) = attempt.unwrap_or_else(|_| {
            (None, ShiftReport::dropped(index, s_req, Some(NumError::WorkerPanicked { index })))
        });
        solutions.push(sol);
        reports.push(rep);
    }
    TolerantSweep { solutions, reports }
}

fn generic_ladder<S: LtiSystem + ?Sized>(
    sys: &S,
    index: usize,
    s_req: c64,
    rhs: &ZMat,
    side: SweepSide,
    policy: &RecoveryPolicy,
    faults: &dyn SolveFault,
) -> (Option<ZMat>, ShiftReport) {
    // Opened before the panic hook so an injected unwind still records
    // the ladder's exit event.
    let mut sp = obs::item_span("shift", index as u64, "ladder");
    if faults.inject_panic(index) {
        // numlint:allow(PANIC01, ERR01, PANIC02) deliberate fault injection; contained by the pool as NumError::WorkerPanicked
        panic!("injected worker panic at shift index {index}");
    }
    let mut last_err: Option<NumError> = None;
    let mut last_residual = f64::NAN;
    for attempt in 0..=policy.max_perturb {
        let s = policy.perturbed(s_req, attempt);
        if let Some(e) = faults.inject_error(index, attempt) {
            last_err = Some(e);
            continue;
        }
        let mut x = match side.solve(sys, s, rhs) {
            Ok(x) => x,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        faults.corrupt(index, attempt, &mut x);
        let mut residual = match side.apply(sys, s, &x) {
            Ok(applied) => operator_residual(rhs, &applied),
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        let mut refine_steps = 0;
        while residual.is_finite() && residual > policy.residual_tol
            && refine_steps < policy.refine_steps
        {
            // One refinement step: x += M⁻¹ (rhs − M·x) with M the
            // side's pencil operator.
            let next = side
                .apply(sys, s, &x)
                .and_then(|applied| side.solve(sys, s, &(rhs - &applied)))
                .map(|dx| &x + &dx)
                .and_then(|xr| side.apply(sys, s, &xr).map(|ap| (xr, ap)));
            match next {
                Ok((xr, applied)) => {
                    let r = operator_residual(rhs, &applied);
                    refine_steps += 1;
                    if !(r < residual) {
                        residual = r.min(residual);
                        break;
                    }
                    x = xr;
                    residual = r;
                }
                Err(e) => {
                    last_err = Some(e);
                    break;
                }
            }
        }
        last_residual = residual;
        if residual.is_finite() && residual <= policy.residual_tol {
            let outcome = if attempt > 0 {
                ShiftOutcome::Perturbed { attempts: attempt }
            } else if refine_steps > 0 {
                ShiftOutcome::Refined
            } else {
                ShiftOutcome::Refreshed
            };
            sp.field_str("outcome", outcome.label());
            sp.field_f64("residual", residual);
            sp.field_u64("refine_steps", refine_steps as u64);
            sp.field_u64("level", attempt as u64);
            let report = ShiftReport {
                index,
                s_requested: s_req,
                s_used: s,
                outcome,
                residual,
                rcond: f64::NAN,
                pivot_growth: f64::NAN,
                refine_steps,
                error: None,
            };
            return (Some(x), report);
        }
    }
    obs::counters::add(obs::Counter::ShiftDropped, 1);
    sp.field_str("outcome", "dropped");
    sp.field_f64("residual", last_residual);
    let mut report = ShiftReport::dropped(index, s_req, last_err);
    report.residual = last_residual;
    (None, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateSpace;
    use numkit::DMat;

    fn toy() -> StateSpace {
        StateSpace::new(
            DMat::from_diag(&[-1.0, -2.0, -5.0]),
            DMat::from_rows(&[&[1.0], &[1.0], &[1.0]]),
            DMat::from_rows(&[&[1.0, 0.5, 0.2]]),
            None,
        )
        .unwrap()
    }

    #[test]
    fn perturbation_schedule_is_relative_and_handles_zero() {
        let pol = RecoveryPolicy { perturb_eps: 1e-6, ..RecoveryPolicy::default() };
        let s = c64::new(0.0, 2.0);
        assert_eq!(pol.perturbed(s, 0), s);
        assert!((pol.perturbed(s, 1) - c64::new(0.0, 2.0 + 2e-6)).abs() < 1e-18);
        assert_eq!(pol.perturbed(c64::ZERO, 2), c64::new(2e-6, 0.0));
    }

    #[test]
    fn clean_sweep_is_complete_with_refreshed_outcomes() {
        let sys = toy();
        let shifts: Vec<c64> = (0..5).map(|k| c64::new(0.0, k as f64)).collect();
        let sweep = sys.solve_shifted_many_tolerant(
            &shifts,
            &sys.b.to_complex(),
            &RecoveryPolicy::default(),
            &NoFaults,
        );
        assert!(sweep.is_complete());
        assert_eq!(sweep.surviving(), 5);
        for rep in &sweep.reports {
            assert_eq!(rep.outcome, ShiftOutcome::Refreshed, "index {}", rep.index);
            assert!(rep.residual <= 1e-10);
            assert_eq!(rep.s_used, rep.s_requested);
        }
        // Solutions match the strict path.
        let strict = sys.solve_shifted_many(&shifts, &sys.b.to_complex()).unwrap();
        for (sol, exact) in sweep.solutions.iter().zip(&strict) {
            assert_eq!(sol.as_ref().unwrap(), exact);
        }
    }

    #[test]
    fn shift_at_eigenvalue_is_perturbed_or_dropped_not_panicked() {
        let sys = toy();
        // s = -1 is an eigenvalue of A = diag(-1,-2,-5): (sI − A) singular.
        let shifts = [c64::new(-1.0, 0.0), c64::new(0.0, 1.0)];
        let sweep = sys.solve_shifted_many_tolerant(
            &shifts,
            &sys.b.to_complex(),
            &RecoveryPolicy::default(),
            &NoFaults,
        );
        assert_eq!(sweep.reports.len(), 2);
        // The exact-eigenvalue shift must resolve via perturbation (or a
        // certified direct solve if rounding saves it) — never panic.
        let rep = &sweep.reports[0];
        assert!(
            matches!(rep.outcome, ShiftOutcome::Perturbed { .. })
                || rep.outcome == ShiftOutcome::Dropped,
            "outcome {:?}",
            rep.outcome
        );
        // The healthy shift is untouched.
        assert_eq!(sweep.reports[1].outcome, ShiftOutcome::Refreshed);
    }

    struct PanicAt(usize);
    impl SolveFault for PanicAt {
        fn inject_panic(&self, index: usize) -> bool {
            index == self.0
        }
    }

    #[test]
    fn injected_panic_becomes_dropped_report() {
        let sys = toy();
        let shifts: Vec<c64> = (0..4).map(|k| c64::new(0.0, k as f64)).collect();
        let sweep = sys.solve_shifted_many_tolerant(
            &shifts,
            &sys.b.to_complex(),
            &RecoveryPolicy::default(),
            &PanicAt(2),
        );
        assert_eq!(sweep.dropped(), 1);
        assert_eq!(sweep.reports[2].outcome, ShiftOutcome::Dropped);
        assert_eq!(sweep.reports[2].error, Some(NumError::WorkerPanicked { index: 2 }));
        assert!(sweep.solutions[2].is_none());
        assert!(sweep.solutions[3].is_some());
    }

    struct DriftAll;
    impl SolveFault for DriftAll {
        fn corrupt(&self, _index: usize, attempt: usize, z: &mut ZMat) {
            if attempt == 0 {
                for i in 0..z.nrows() {
                    for j in 0..z.ncols() {
                        z[(i, j)] = z[(i, j)].scale(1.0 + 1e-5);
                    }
                }
            }
        }
    }

    #[test]
    fn drift_contamination_is_repaired_by_refinement() {
        let sys = toy();
        let shifts = [c64::new(0.0, 0.5)];
        let sweep = sys.solve_shifted_many_tolerant(
            &shifts,
            &sys.b.to_complex(),
            &RecoveryPolicy::default(),
            &DriftAll,
        );
        assert!(sweep.is_complete());
        assert_eq!(sweep.reports[0].outcome, ShiftOutcome::Refined);
        assert!(sweep.reports[0].refine_steps >= 1);
        assert!(sweep.reports[0].residual <= 1e-10);
    }

    #[test]
    fn operator_residual_edge_cases() {
        let z = ZMat::zeros(2, 2);
        assert_eq!(operator_residual(&z, &z), 0.0);
        let mut bad = ZMat::zeros(2, 2);
        bad[(0, 0)] = c64::new(f64::NAN, 0.0);
        assert!(operator_residual(&z, &bad).is_nan());
    }
}
