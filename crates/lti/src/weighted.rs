//! Frequency-weighted balanced truncation (Enns' method) — the classical
//! composite-system approach of the paper's references [15]–[17].
//!
//! Input/output weighting systems are wired in series with the plant,
//! the composite Gramians are computed exactly, and the plant-state
//! blocks are balanced. This is the machinery the paper argues is "not
//! desirable" to construct for narrowband RF problems — PMTBR gets the
//! same effect by choosing sample points — and it is provided here both
//! as a baseline and because sometimes the weights *are* the
//! specification.

use numkit::{DMat, NumError};

use crate::{
    controllability_gramian, observability_gramian, tbr_from_gramians, StateSpace, TbrModel,
};

/// Enns' weighted controllability Gramian: the plant-state block of the
/// controllability Gramian of `plant·weight`.
///
/// # Errors
///
/// Shape errors from the interconnection; Lyapunov errors (both systems
/// must be stable).
pub fn weighted_controllability_gramian(
    plant: &StateSpace,
    input_weight: &StateSpace,
) -> Result<DMat, NumError> {
    let comp = plant.series(input_weight)?;
    let x = controllability_gramian(&comp)?;
    let nw = input_weight.nstates();
    let n = plant.nstates();
    Ok(x.block(nw, nw + n, nw, nw + n))
}

/// Enns' weighted observability Gramian: the plant-state block of the
/// observability Gramian of `weight·plant`.
///
/// # Errors
///
/// Shape errors from the interconnection; Lyapunov errors.
pub fn weighted_observability_gramian(
    plant: &StateSpace,
    output_weight: &StateSpace,
) -> Result<DMat, NumError> {
    let comp = output_weight.series(plant)?;
    let y = observability_gramian(&comp)?;
    let n = plant.nstates();
    Ok(y.block(0, n, 0, n))
}

/// Frequency-weighted balanced truncation (Enns): balances the weighted
/// Gramians and truncates the *plant* to `order`. Pass `None` for an
/// unweighted side.
///
/// No a-priori error bound survives two-sided weighting (a known
/// limitation of Enns' method); the returned `error_bound` field is the
/// `2·Σσ` tail of the weighted Hankel values, indicative only.
///
/// # Errors
///
/// Propagates interconnection/Gramian/factorization errors.
///
/// # Examples
///
/// ```
/// use lti::{weighted_tbr, StateSpace};
/// use numkit::DMat;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let plant = StateSpace::new(
///     DMat::from_diag(&[-1.0, -50.0]),
///     DMat::from_rows(&[&[1.0], &[5.0]]),
///     DMat::from_rows(&[&[1.0, 5.0]]),
///     None,
/// )?;
/// // Emphasize the low band with a 1-pole weight.
/// let weight = StateSpace::new(
///     DMat::from_rows(&[&[-3.0]]),
///     DMat::from_rows(&[&[3.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     None,
/// )?;
/// let m = weighted_tbr(&plant, Some(&weight), None, 1)?;
/// assert_eq!(m.reduced.nstates(), 1);
/// # Ok(())
/// # }
/// ```
pub fn weighted_tbr(
    plant: &StateSpace,
    input_weight: Option<&StateSpace>,
    output_weight: Option<&StateSpace>,
    order: usize,
) -> Result<TbrModel, NumError> {
    let x = match input_weight {
        Some(w) => weighted_controllability_gramian(plant, w)?,
        None => controllability_gramian(plant)?,
    };
    let y = match output_weight {
        Some(w) => weighted_observability_gramian(plant, w)?,
        None => observability_gramian(plant)?,
    };
    tbr_from_gramians(plant, &x, &y, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tbr;
    use numkit::c64;

    /// A plant with a slow in-band mode plus a high-Q resonant pair at
    /// ω ≈ 80 rad/s whose peak dominates the Hankel spectrum but whose
    /// in-band (ω ≤ 3) contribution is small — the configuration where
    /// unweighted TBR misallocates its budget.
    fn two_timescale_plant() -> StateSpace {
        let a = DMat::from_rows(&[
            &[-1.0, 0.0, 0.0],
            &[0.0, -0.5, 80.0],
            &[0.0, -80.0, -0.5],
        ]);
        let b = DMat::from_rows(&[&[1.0], &[6.0], &[0.0]]);
        let c = DMat::from_rows(&[&[1.0, 6.0, 0.0]]);
        StateSpace::new(a, b, c, None).unwrap()
    }

    fn lowpass(a: f64) -> StateSpace {
        StateSpace::new(
            DMat::from_rows(&[&[-a]]),
            DMat::from_rows(&[&[a]]),
            DMat::from_rows(&[&[1.0]]),
            None,
        )
        .unwrap()
    }

    #[test]
    fn wideband_weight_recovers_plain_tbr() {
        // A weight with bandwidth far above the plant dynamics is ≈ unity:
        // the weighted Gramian approaches the plain one.
        let plant = two_timescale_plant();
        let w = lowpass(1e5);
        let xw = weighted_controllability_gramian(&plant, &w).unwrap();
        let x = controllability_gramian(&plant).unwrap();
        assert!(
            (&xw - &x).norm_max() < 1e-2 * x.norm_max(),
            "wideband weight must be near-transparent"
        );
    }

    #[test]
    fn lowpass_weight_improves_in_band_accuracy() {
        let plant = two_timescale_plant();
        let w = lowpass(3.0);
        let order = 1;
        // One-sided (input) weighting: Enns guarantees stability here.
        let weighted = weighted_tbr(&plant, Some(&w), None, order).unwrap();
        let plain = tbr(&plant, order).unwrap();
        assert!(weighted.reduced.is_stable().unwrap());
        // Compare error inside the weight's band [0, 3] rad/s.
        let mut e_w: f64 = 0.0;
        let mut e_p: f64 = 0.0;
        for k in 0..30 {
            let s = c64::new(0.0, 3.0 * (k as f64 + 0.5) / 30.0);
            let h = plant.transfer_function(s).unwrap()[(0, 0)];
            e_w = e_w.max((weighted.reduced.transfer_function(s).unwrap()[(0, 0)] - h).abs());
            e_p = e_p.max((plain.reduced.transfer_function(s).unwrap()[(0, 0)] - h).abs());
        }
        assert!(
            e_w * 10.0 < e_p,
            "in-band: weighted {e_w:.3e} must beat plain {e_p:.3e} decisively"
        );
    }

    #[test]
    fn weighted_gramians_are_psd() {
        let plant = two_timescale_plant();
        let w = lowpass(2.0);
        let x = weighted_controllability_gramian(&plant, &w).unwrap();
        let y = weighted_observability_gramian(&plant, &w).unwrap();
        for g in [x, y] {
            let e = numkit::eigh(&g).unwrap().values;
            assert!(e.iter().all(|&v| v > -1e-12), "weighted gramian must be PSD: {e:?}");
        }
    }
}
