//! Frequency-limited (band-limited) Gramians and frequency-limited TBR
//! (Gawronski–Juang), the *exact* counterpart of the paper's
//! frequency-selective PMTBR.
//!
//! The "finite-bandwidth Gramian" the paper proposes sampling
//! (Section IV-B, eq. (16)–(17)) has a closed form: with `X` the
//! ordinary controllability Gramian,
//!
//! ```text
//! X(ω₀) = (1/2π) ∫_{−ω₀}^{ω₀} (jωI − A)⁻¹ B Bᵀ (jωI − A)⁻ᴴ dω
//!       = S(ω₀)·X + X·S(ω₀)ᴴ,
//! S(ω₀) = (1/2πj) · ln[(jω₀I − A)·(−jω₀I − A)⁻¹]
//! ```
//!
//! because `B·Bᵀ = (jωI − A)·X + X·(jωI − A)ᴴ` by the Lyapunov equation.
//! `S(ω₀) → I/2` as `ω₀ → ∞`, recovering the ordinary Gramian. The
//! matrix logarithm is evaluated through the eigendecomposition of `A`.
//!
//! Reducing with band-limited Gramians on both sides gives
//! frequency-limited balanced truncation — the method the PMTBR paper
//! positions itself against ([15]–[17] are the weighted variants): same
//! in-band goal, but requiring exact Gramians and eigendecompositions.
//! The `bench` ablations compare it to FS-PMTBR head to head.

use numkit::{c64, eig, DMat, Lu, NumError, ZMat};

use crate::{controllability_gramian, observability_gramian, tbr_from_gramians, StateSpace, TbrModel};

/// Computes the matrix filter `S(ω₀)` via eigendecomposition.
///
/// `S` is real for real `A` with conjugate-symmetric spectra; the
/// imaginary residue is discarded after verification.
fn band_filter(a: &DMat, omega0: f64) -> Result<DMat, NumError> {
    let n = a.nrows();
    let e = eig(a)?;
    // Diagonal of the filter in eigen-coordinates:
    // s_k = (1/2πj)·Ln[(jω₀ − λ_k)/(−jω₀ − λ_k)].
    let mut diag = Vec::with_capacity(n);
    for &lam in &e.values {
        if lam.re >= 0.0 {
            return Err(NumError::InvalidArgument(
                "band-limited gramian requires a Hurwitz state matrix",
            ));
        }
        let num = c64::new(0.0, omega0) - lam;
        let den = c64::new(0.0, -omega0) - lam;
        let ratio = num / den;
        // Principal log; for stable λ the ratio never crosses the
        // negative real axis except in the ω₀ → ∞ limit.
        let ln = c64::new(ratio.abs().ln(), ratio.arg());
        diag.push(ln / c64::new(0.0, 2.0 * std::f64::consts::PI));
    }
    // S = V·diag·V⁻¹ in complex arithmetic.
    let v = &e.vectors;
    let vlu = Lu::new(v.clone())?;
    let mut vd = ZMat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            vd[(i, j)] = v[(i, j)] * diag[j];
        }
    }
    let vinv = vlu.inverse()?;
    let s = vd.matmul(&vinv)?;
    // Conjugate pairs make S real; tolerate a small numerical residue.
    let imag_norm = s.imag().norm_max();
    let real_norm = s.real().norm_max().max(1e-300);
    if imag_norm > 1e-6 * real_norm {
        return Err(NumError::NotConverged { algorithm: "band-filter realness", iterations: 0 });
    }
    Ok(s.real())
}

/// Band-limited controllability Gramian
/// `X(ω₀) = (1/2π)∫_{−ω₀}^{ω₀} (jωI−A)⁻¹BBᵀ(jωI−A)⁻ᴴ dω`.
///
/// Converges to the ordinary Gramian as `ω₀ → ∞`.
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] if `A` is not Hurwitz or `ω₀ ≤ 0`.
/// - Propagates eigen/Lyapunov failures (defective `A` may fail).
///
/// # Examples
///
/// ```
/// use lti::{band_controllability_gramian, controllability_gramian, StateSpace};
/// use numkit::DMat;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = StateSpace::new(
///     DMat::from_rows(&[&[-1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     None,
/// )?;
/// let x_band = band_controllability_gramian(&sys, 1e6)?;
/// let x_full = controllability_gramian(&sys)?;
/// assert!((x_band[(0, 0)] - x_full[(0, 0)]).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
pub fn band_controllability_gramian(sys: &StateSpace, omega0: f64) -> Result<DMat, NumError> {
    if !(omega0 > 0.0) {
        return Err(NumError::InvalidArgument("band edge must be positive"));
    }
    let x = controllability_gramian(sys)?;
    let s = band_filter(&sys.a, omega0)?;
    let sx = &s * &x;
    let mut out = &sx + &sx.transpose();
    out.symmetrize();
    Ok(out)
}

/// Band-limited observability Gramian (same construction on `(Aᵀ, Cᵀ)`).
///
/// # Errors
///
/// Same as [`band_controllability_gramian`].
pub fn band_observability_gramian(sys: &StateSpace, omega0: f64) -> Result<DMat, NumError> {
    if !(omega0 > 0.0) {
        return Err(NumError::InvalidArgument("band edge must be positive"));
    }
    let y = observability_gramian(sys)?;
    let s = band_filter(&sys.a.transpose(), omega0)?;
    let sy = &s * &y;
    let mut out = &sy + &sy.transpose();
    out.symmetrize();
    Ok(out)
}

/// Frequency-limited balanced truncation (Gawronski–Juang): balances the
/// band-limited Gramians over `[0, ω₀]` and truncates to `order`.
///
/// The exact, `O(n³)` counterpart of [`frequency-selective
/// PMTBR`](https://docs.rs/pmtbr); the returned `error_bound` field is
/// the `2·Σσ` tail of the *band* Hankel values — indicative in-band, not
/// a global bound.
///
/// # Errors
///
/// Propagates Gramian/factorization errors.
pub fn frequency_limited_tbr(
    sys: &StateSpace,
    omega0: f64,
    order: usize,
) -> Result<TbrModel, NumError> {
    let x = band_controllability_gramian(sys, omega0)?;
    let y = band_observability_gramian(sys, omega0)?;
    tbr_from_gramians(sys, &x, &y, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numkit::eigh;

    fn test_system(n: usize) -> StateSpace {
        // Well-separated stable poles with full B coupling.
        let a = DMat::from_fn(n, n, |i, j| {
            if i == j {
                -(1.0 + 2.0 * i as f64)
            } else if i.abs_diff(j) == 1 {
                0.4
            } else {
                0.0
            }
        });
        let b = DMat::from_fn(n, 1, |i, _| 1.0 / (1.0 + i as f64));
        let c = b.transpose();
        StateSpace::new(a, b, c, None).unwrap()
    }

    /// Dense trapezoid quadrature of the Gramian integral for reference.
    fn quadrature_gramian(sys: &StateSpace, omega0: f64, n_pts: usize) -> DMat {
        let n = sys.nstates();
        let mut x = DMat::zeros(n, n);
        let dw = omega0 / n_pts as f64;
        let b = sys.b.to_complex();
        for k in 0..n_pts {
            let w = dw * (k as f64 + 0.5);
            let z = sys.solve_shifted(c64::new(0.0, w), &b).unwrap();
            // Integrand at ±w: z·zᴴ + conj = 2·Re(z·zᴴ).
            let zzh = z.matmul(&z.adjoint()).unwrap();
            let re = zzh.real();
            x = &x + &re.scale(2.0 * dw / (2.0 * std::f64::consts::PI));
        }
        x
    }

    #[test]
    fn matches_quadrature_reference() {
        let sys = test_system(4);
        let omega0 = 3.0;
        let exact = band_controllability_gramian(&sys, omega0).unwrap();
        let quad = quadrature_gramian(&sys, omega0, 4000);
        assert!(
            (&exact - &quad).norm_max() < 1e-5 * exact.norm_max(),
            "closed form vs quadrature: {:?} vs {:?}",
            exact,
            quad
        );
    }

    #[test]
    fn wide_band_recovers_full_gramian() {
        let sys = test_system(5);
        let x_full = controllability_gramian(&sys).unwrap();
        let x_band = band_controllability_gramian(&sys, 1e7).unwrap();
        assert!((&x_full - &x_band).norm_max() < 1e-5 * x_full.norm_max());
    }

    #[test]
    fn band_gramian_is_psd_and_monotone() {
        let sys = test_system(5);
        let x1 = band_controllability_gramian(&sys, 1.0).unwrap();
        let x2 = band_controllability_gramian(&sys, 10.0).unwrap();
        let e1 = eigh(&x1).unwrap().values;
        assert!(e1.iter().all(|&v| v > -1e-10), "X(ω₀) must be PSD: {e1:?}");
        // Monotone: X(10) − X(1) ⪰ 0.
        let diff = &x2 - &x1;
        let ed = eigh(&diff).unwrap().values;
        assert!(ed.iter().all(|&v| v > -1e-10), "band Gramian must be monotone: {ed:?}");
    }

    #[test]
    fn frequency_limited_tbr_beats_global_tbr_in_band() {
        // A system with a strong fast mode: global TBR spends order on
        // it; band-limited TBR focuses on the slow (in-band) modes.
        let a = DMat::from_diag(&[-0.5, -0.9, -1.4, -200.0, -300.0]);
        let b = DMat::from_rows(&[&[1.0], &[1.0], &[1.0], &[40.0], &[40.0]]);
        let c = b.transpose();
        let sys = StateSpace::new(a, b, c, None).unwrap();
        let order = 2;
        let band = 3.0;
        let fl = frequency_limited_tbr(&sys, band, order).unwrap();
        let gl = crate::tbr(&sys, order).unwrap();
        let mut e_fl: f64 = 0.0;
        let mut e_gl: f64 = 0.0;
        for k in 0..30 {
            let w = band * (k as f64 + 0.5) / 30.0;
            let s = c64::new(0.0, w);
            let h = sys.transfer_function(s).unwrap()[(0, 0)];
            e_fl = e_fl.max((fl.reduced.transfer_function(s).unwrap()[(0, 0)] - h).abs());
            e_gl = e_gl.max((gl.reduced.transfer_function(s).unwrap()[(0, 0)] - h).abs());
        }
        assert!(
            e_fl < e_gl,
            "in-band: frequency-limited {e_fl:.3e} must beat global {e_gl:.3e}"
        );
    }

    #[test]
    fn rejects_unstable_and_bad_band() {
        let a = DMat::from_diag(&[1.0]);
        let b = DMat::from_rows(&[&[1.0]]);
        let sys = StateSpace::new(a, b.clone(), b.transpose(), None).unwrap();
        assert!(band_controllability_gramian(&sys, 1.0).is_err());
        let stable = test_system(3);
        assert!(band_controllability_gramian(&stable, 0.0).is_err());
    }
}
