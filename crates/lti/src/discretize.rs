//! Continuous-to-discrete conversion of state-space models.
//!
//! Two classical maps are provided: zero-order hold (exact for staircase
//! inputs, via the matrix exponential) and Tustin/bilinear (the
//! transform the trapezoidal simulator implicitly applies). Reduced
//! parasitic models are consumed by discrete-time simulators and timing
//! engines, so the conversion is part of the deliverable — and the ZOH
//! map doubles as an exact reference for integrator validation.

use numkit::{expm, DMat, Lu, NumError};

use crate::StateSpace;

/// A discrete-time state-space model `x[k+1] = A·x[k] + B·u[k]`,
/// `y[k] = C·x[k] + D·u[k]`, tagged with its sample period.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteStateSpace {
    /// Discrete state matrix.
    pub a: DMat,
    /// Discrete input matrix.
    pub b: DMat,
    /// Output matrix.
    pub c: DMat,
    /// Feedthrough.
    pub d: DMat,
    /// Sample period in seconds.
    pub dt: f64,
}

impl DiscreteStateSpace {
    /// Number of states.
    pub fn nstates(&self) -> usize {
        self.a.nrows()
    }

    /// Simulates from rest over the columns of `u` (`p × nt`).
    ///
    /// # Errors
    ///
    /// [`NumError::ShapeMismatch`] if `u` has the wrong row count.
    pub fn simulate(&self, u: &DMat) -> Result<DMat, NumError> {
        if u.nrows() != self.b.ncols() {
            return Err(NumError::ShapeMismatch {
                operation: "discrete simulate",
                left: (self.b.ncols(), 0),
                right: u.shape(),
            });
        }
        let n = self.nstates();
        let nt = u.ncols();
        let mut x = vec![0.0f64; n];
        let mut y = DMat::zeros(self.c.nrows(), nt);
        for k in 0..nt {
            let uk = u.col(k);
            for i in 0..self.c.nrows() {
                let mut acc = 0.0;
                for (j, &xj) in x.iter().enumerate() {
                    acc += self.c[(i, j)] * xj;
                }
                for (j, &uj) in uk.iter().enumerate() {
                    acc += self.d[(i, j)] * uj;
                }
                y[(i, k)] = acc;
            }
            // x ← A x + B u.
            let ax = self.a.mul_vec(&x);
            let mut xn = ax;
            for i in 0..n {
                for (j, &uj) in uk.iter().enumerate() {
                    xn[i] += self.b[(i, j)] * uj;
                }
            }
            x = xn;
        }
        Ok(y)
    }
}

/// Zero-order-hold discretization: exact when the input is constant over
/// each period.
///
/// Uses the block-matrix trick `exp([[A, B], [0, 0]]·dt) = [[A_d, B_d],
/// [0, I]]`, which handles singular `A` without special cases.
///
/// # Errors
///
/// [`NumError::InvalidArgument`] for a non-positive period; propagates
/// `expm` failures.
///
/// # Examples
///
/// ```
/// use lti::{c2d_zoh, StateSpace};
/// use numkit::DMat;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = StateSpace::new(
///     DMat::from_rows(&[&[-1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     None,
/// )?;
/// let dsys = c2d_zoh(&sys, 0.1)?;
/// assert!((dsys.a[(0, 0)] - (-0.1f64).exp()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn c2d_zoh(sys: &StateSpace, dt: f64) -> Result<DiscreteStateSpace, NumError> {
    if !(dt > 0.0 && dt.is_finite()) {
        return Err(NumError::InvalidArgument("sample period must be positive and finite"));
    }
    let n = sys.nstates();
    let p = sys.ninputs();
    let mut block = DMat::zeros(n + p, n + p);
    for i in 0..n {
        for j in 0..n {
            block[(i, j)] = sys.a[(i, j)] * dt;
        }
        for j in 0..p {
            block[(i, n + j)] = sys.b[(i, j)] * dt;
        }
    }
    let e = expm(&block)?;
    let ad = e.block(0, n, 0, n);
    let bd = e.block(0, n, n, n + p);
    Ok(DiscreteStateSpace { a: ad, b: bd, c: sys.c.clone(), d: sys.d.clone(), dt })
}

/// Tustin (bilinear) discretization:
/// `A_d = (I − A·dt/2)⁻¹(I + A·dt/2)` etc. — the map the trapezoidal
/// integrator realizes, with optional prewarping left to the caller.
///
/// # Errors
///
/// [`NumError::InvalidArgument`] for a non-positive period;
/// [`NumError::Singular`] if `I − A·dt/2` is singular (period at a pole).
pub fn c2d_tustin(sys: &StateSpace, dt: f64) -> Result<DiscreteStateSpace, NumError> {
    if !(dt > 0.0 && dt.is_finite()) {
        return Err(NumError::InvalidArgument("sample period must be positive and finite"));
    }
    let n = sys.nstates();
    let half = dt / 2.0;
    let m_minus = DMat::from_fn(n, n, |i, j| {
        (if i == j { 1.0 } else { 0.0 }) - half * sys.a[(i, j)]
    });
    let m_plus = DMat::from_fn(n, n, |i, j| {
        (if i == j { 1.0 } else { 0.0 }) + half * sys.a[(i, j)]
    });
    let lu = Lu::new(m_minus)?;
    let ad = lu.solve_mat(&m_plus)?;
    let bd = lu.solve_mat(&sys.b.scale(dt))?;
    // Output equation keeps C, with the Tustin correction folded into D:
    // y[k] = C·(x[k] + (dt/2)·(A x[k] + B u[k]))… the standard state-space
    // Tustin uses C_d = C(I − A·dt/2)⁻¹ and D_d = D + C_d·B·dt/2.
    let cd = {
        // C_d = C·(I − A·dt/2)⁻¹ via transposed solves.
        let mt = DMat::from_fn(n, n, |i, j| {
            (if i == j { 1.0 } else { 0.0 }) - half * sys.a[(j, i)]
        });
        let lut = Lu::new(mt)?;
        let mut out = DMat::zeros(sys.c.nrows(), n);
        for r in 0..sys.c.nrows() {
            let row: Vec<f64> = (0..n).map(|j| sys.c[(r, j)]).collect();
            let sol = lut.solve(&row)?;
            for j in 0..n {
                out[(r, j)] = sol[j];
            }
        }
        out
    };
    let dd = &sys.d + &cd.matmul(&sys.b.scale(half))?;
    Ok(DiscreteStateSpace { a: ad, b: bd, c: cd, d: dd, dt })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_pole() -> StateSpace {
        StateSpace::new(
            DMat::from_rows(&[&[-2.0]]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[1.0]]),
            None,
        )
        .unwrap()
    }

    #[test]
    fn zoh_step_response_is_exact() {
        // For a staircase (step) input, ZOH simulation is exact at the
        // sample instants: y(kh) = (1 − e^{−2kh})/2.
        let sys = one_pole();
        let dt = 0.05;
        let d = c2d_zoh(&sys, dt).unwrap();
        let u = DMat::from_fn(1, 100, |_, _| 1.0);
        let y = d.simulate(&u).unwrap();
        for k in (0..100).step_by(10) {
            let t = k as f64 * dt;
            let expect = (1.0 - (-2.0 * t).exp()) / 2.0;
            assert!((y[(0, k)] - expect).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn zoh_handles_singular_a() {
        // A pure integrator: A = 0, B = 1. A_d = 1, B_d = dt.
        let sys = StateSpace::new(
            DMat::zeros(1, 1),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[1.0]]),
            None,
        )
        .unwrap();
        let d = c2d_zoh(&sys, 0.25).unwrap();
        assert!((d.a[(0, 0)] - 1.0).abs() < 1e-14);
        assert!((d.b[(0, 0)] - 0.25).abs() < 1e-14);
    }

    #[test]
    fn tustin_matches_trapezoidal_simulator() {
        // The Tustin-discretized model must reproduce simulate_ss (which
        // integrates with the trapezoidal rule) for midpoint-consistent
        // input handling: compare on a smooth input.
        let sys = one_pole();
        let dt = 0.02;
        let nt = 200;
        let u = DMat::from_fn(1, nt, |_, k| (0.3 * k as f64 * dt).sin());
        let tr = crate::simulate_ss(&sys, &u, dt).unwrap();
        let d = c2d_tustin(&sys, dt).unwrap();
        let y = d.simulate(&u).unwrap();
        // Same order of accuracy: agreement to O(dt²) over the horizon.
        let mut worst: f64 = 0.0;
        for k in 0..nt {
            worst = worst.max((y[(0, k)] - tr.y[(0, k)]).abs());
        }
        assert!(worst < 5e-3, "tustin vs trapezoidal: {worst:.2e}");
    }

    #[test]
    fn tustin_preserves_dc_gain() {
        let sys = one_pole();
        let d = c2d_tustin(&sys, 0.1).unwrap();
        // Discrete dc gain: C_d (I − A_d)⁻¹ B_d + D_d = continuous H(0).
        let n = d.nstates();
        let ia = DMat::from_fn(n, n, |i, j| (if i == j { 1.0 } else { 0.0 }) - d.a[(i, j)]);
        let x = Lu::new(ia).unwrap().solve_mat(&d.b).unwrap();
        let g = &d.c.matmul(&x).unwrap() + &d.d;
        let h0 = sys.transfer_function(numkit::c64::ZERO).unwrap()[(0, 0)].re;
        assert!((g[(0, 0)] - h0).abs() < 1e-12);
    }

    #[test]
    fn invalid_period_rejected() {
        let sys = one_pole();
        assert!(c2d_zoh(&sys, 0.0).is_err());
        assert!(c2d_tustin(&sys, -1.0).is_err());
    }
}
