//! The [`LtiSystem`] abstraction over dense state-space and sparse
//! descriptor models.
//!
//! All reduction algorithms in this workspace (PMTBR variants, PRIMA,
//! multipoint projection, exact TBR where applicable) are written against
//! this trait, so they apply uniformly to `ẋ = Ax + Bu` and
//! `Eẋ = Ax + Bu` systems — including singular-`E` descriptor systems.

use numkit::{c64, DMat, NumError, ZMat};

use crate::tolerant::{
    generic_tolerant_sweep, RecoveryPolicy, SolveFault, SweepRhs, SweepSide, TolerantSweep,
};
use crate::{Descriptor, StateSpace};

/// A linear time-invariant system that reduction algorithms can sample.
///
/// The required operations are exactly what frequency-domain projection
/// needs: shifted solves `(sE − A)⁻¹R` (and their transposes, for
/// observability-side samples), access to `B`/`C`/`D`, and projection.
pub trait LtiSystem {
    /// Number of states.
    fn nstates(&self) -> usize;
    /// Number of inputs.
    fn ninputs(&self) -> usize;
    /// Number of outputs.
    fn noutputs(&self) -> usize;
    /// Input matrix `B` (`n × p`).
    fn input_matrix(&self) -> &DMat;
    /// Output matrix `C` (`q × n`).
    fn output_matrix(&self) -> &DMat;
    /// Feedthrough `D` (`q × p`).
    fn feedthrough(&self) -> &DMat;

    /// Solves `(s·E − A)·Z = R` (with `E = I` for plain state space).
    ///
    /// # Errors
    ///
    /// [`NumError::Singular`] if `s` is a (generalized) eigenvalue.
    fn solve_shifted(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError>;

    /// Solves `(s·E − A)ᵀ·Z = R`.
    ///
    /// # Errors
    ///
    /// [`NumError::Singular`] if `s` is a (generalized) eigenvalue.
    fn solve_shifted_transpose(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError>;

    /// Applies the pencil: returns `(s·E − A)·X` (with `E = I` for plain
    /// state space). This is the forward operator that residual
    /// certification and matrix-free iterative refinement need — it must
    /// be cheap (no factorization).
    ///
    /// # Errors
    ///
    /// [`NumError::ShapeMismatch`] if `x` has the wrong row count.
    fn apply_shifted(&self, s: c64, x: &ZMat) -> Result<ZMat, NumError>;

    /// Applies the transposed pencil: returns `(s·E − A)ᵀ·X`. The
    /// observability-side counterpart of [`LtiSystem::apply_shifted`],
    /// needed so transposed tolerant sweeps can certify their residuals
    /// matrix-free. Must be cheap (no factorization).
    ///
    /// # Errors
    ///
    /// [`NumError::ShapeMismatch`] if `x` has the wrong row count.
    fn apply_shifted_transpose(&self, s: c64, x: &ZMat) -> Result<ZMat, NumError>;

    /// Fault-tolerant counterpart of [`LtiSystem::solve_shifted_many`]:
    /// runs the per-shift escalation ladder (solve → certify → refine →
    /// perturb → drop) and always returns, reporting each shift's fate
    /// instead of failing the whole sweep on the first bad sample point.
    ///
    /// The default is the sequential dense ladder (the crate-private
    /// `generic_tolerant_sweep`); sparse implementations override it
    /// with the factorization-reusing engine ladder. Either way the
    /// determinism contract of [`LtiSystem::solve_shifted_many`] holds:
    /// identical results (including outcomes) for every thread count.
    fn solve_shifted_many_tolerant(
        &self,
        shifts: &[c64],
        rhs: &ZMat,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> TolerantSweep {
        generic_tolerant_sweep(self, shifts, SweepRhs::Shared(rhs), SweepSide::Forward, policy, faults)
    }

    /// Fault-tolerant counterpart of [`LtiSystem::solve_shifted_pairs`]:
    /// the escalation ladder with a per-shift right-hand side
    /// (`rhss[k]` pairs with `shifts[k]`). Same determinism contract as
    /// [`LtiSystem::solve_shifted_many_tolerant`].
    ///
    /// # Errors
    ///
    /// [`NumError::ShapeMismatch`] if the lists differ in length; the
    /// sweep itself always returns (drops are reported, not raised).
    fn solve_shifted_pairs_tolerant(
        &self,
        shifts: &[c64],
        rhss: &[ZMat],
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> Result<TolerantSweep, NumError> {
        if shifts.len() != rhss.len() {
            return Err(NumError::ShapeMismatch {
                operation: "solve_shifted_pairs_tolerant",
                left: (shifts.len(), 1),
                right: (rhss.len(), 1),
            });
        }
        Ok(generic_tolerant_sweep(
            self,
            shifts,
            SweepRhs::PerShift(rhss),
            SweepSide::Forward,
            policy,
            faults,
        ))
    }

    /// Fault-tolerant transposed sweep: the escalation ladder over
    /// `(sₖ·E − A)ᵀ·Zₖ = R` — the observability-side samples that
    /// two-sided (balanced / cross-Gramian) reductions need. Same
    /// determinism contract as
    /// [`LtiSystem::solve_shifted_many_tolerant`].
    fn solve_shifted_transpose_many_tolerant(
        &self,
        shifts: &[c64],
        rhs: &ZMat,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> TolerantSweep {
        generic_tolerant_sweep(
            self,
            shifts,
            SweepRhs::Shared(rhs),
            SweepSide::Transpose,
            policy,
            faults,
        )
    }

    /// Fault-tolerant *two-sided* sweep: controllability samples
    /// `(sₖ·E − A)⁻¹·R` and observability samples `(sₖ·E − A)⁻ᵀ·Rₜ` at
    /// the same shifts, as one forward sweep plus one transposed sweep.
    ///
    /// The default runs the two sweeps independently (each factoring its
    /// own pencil); sparse implementations override this with the
    /// shared-factorization engine
    /// ([`crate::ShiftSolveEngine::solve_two_sided_tolerant`]), which
    /// factors `s·E − A` once per shift and produces both sides from it.
    /// Either way both returned sweeps are index-aligned with `shifts`
    /// and deterministic for every thread count.
    fn solve_shifted_two_sided_tolerant(
        &self,
        shifts: &[c64],
        rhs: &ZMat,
        rhs_t: &ZMat,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> (TolerantSweep, TolerantSweep) {
        let fwd = self.solve_shifted_many_tolerant(shifts, rhs, policy, faults);
        let trans = self.solve_shifted_transpose_many_tolerant(shifts, rhs_t, policy, faults);
        (fwd, trans)
    }

    /// Solves `(sₖ·E − A)·Zₖ = R` at every shift against one shared
    /// right-hand side, returning the solutions in shift order.
    ///
    /// The default is a sequential loop over
    /// [`LtiSystem::solve_shifted`]; implementations override this with
    /// the multipoint engine (factorization reuse + thread fan-out). Every
    /// implementation MUST return results identical to the sequential
    /// default's index order, and identical for every thread count.
    ///
    /// # Errors
    ///
    /// The first per-shift failure, in index order.
    fn solve_shifted_many(&self, shifts: &[c64], rhs: &ZMat) -> Result<Vec<ZMat>, NumError> {
        shifts.iter().map(|&s| self.solve_shifted(s, rhs)).collect()
    }

    /// Solves `(sₖ·E − A)·Zₖ = Rₖ` with a per-shift right-hand side
    /// (`rhss[k]` pairs with `shifts[k]`). Same ordering and determinism
    /// contract as [`LtiSystem::solve_shifted_many`].
    ///
    /// # Errors
    ///
    /// [`NumError::ShapeMismatch`] on a length mismatch; else the first
    /// per-shift failure in index order.
    fn solve_shifted_pairs(&self, shifts: &[c64], rhss: &[ZMat]) -> Result<Vec<ZMat>, NumError> {
        if shifts.len() != rhss.len() {
            return Err(NumError::ShapeMismatch {
                operation: "solve_shifted_pairs",
                left: (shifts.len(), 1),
                right: (rhss.len(), 1),
            });
        }
        shifts.iter().zip(rhss).map(|(&s, r)| self.solve_shifted(s, r)).collect()
    }

    /// Projects onto bases `(w, v)`, producing a reduced dense model.
    ///
    /// # Errors
    ///
    /// Shape errors; for descriptor systems also a singular reduced `E`.
    fn project(&self, w: &DMat, v: &DMat) -> Result<StateSpace, NumError>;

    /// Content address of this system's pencil, if the implementation
    /// provides one (see [`crate::hash`]). `None` — the default — means
    /// the system cannot be content-addressed and every artifact-cache
    /// layer must treat runs over it as uncacheable. Implementations
    /// must guarantee the hash is a pure function of the system's
    /// numeric content: equal hashes ⟹ bit-identical pipeline results.
    fn pencil_hash(&self) -> Option<u64> {
        None
    }

    /// Transfer function `H(s) = C·(sE − A)⁻¹·B + D`.
    ///
    /// # Errors
    ///
    /// Propagates [`LtiSystem::solve_shifted`] errors.
    fn transfer_function(&self, s: c64) -> Result<ZMat, NumError> {
        let z = self.solve_shifted(s, &self.input_matrix().to_complex())?;
        let h = self.output_matrix().to_complex().matmul(&z)?;
        Ok(&h + &self.feedthrough().to_complex())
    }
}

impl LtiSystem for StateSpace {
    fn nstates(&self) -> usize {
        StateSpace::nstates(self)
    }
    fn ninputs(&self) -> usize {
        StateSpace::ninputs(self)
    }
    fn noutputs(&self) -> usize {
        StateSpace::noutputs(self)
    }
    fn input_matrix(&self) -> &DMat {
        &self.b
    }
    fn output_matrix(&self) -> &DMat {
        &self.c
    }
    fn feedthrough(&self) -> &DMat {
        &self.d
    }
    fn solve_shifted(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError> {
        StateSpace::solve_shifted(self, s, rhs)
    }
    fn solve_shifted_transpose(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError> {
        StateSpace::solve_shifted_transpose(self, s, rhs)
    }
    /// `(s·I − A)·X = s·X − A·X`.
    fn apply_shifted(&self, s: c64, x: &ZMat) -> Result<ZMat, NumError> {
        let ax = self.a.to_complex().matmul(x)?;
        Ok(ZMat::from_fn(x.nrows(), x.ncols(), |i, j| s * x[(i, j)] - ax[(i, j)]))
    }
    /// `(s·I − A)ᵀ·X = s·X − Aᵀ·X`.
    fn apply_shifted_transpose(&self, s: c64, x: &ZMat) -> Result<ZMat, NumError> {
        let atx = self.a.transpose().to_complex().matmul(x)?;
        Ok(ZMat::from_fn(x.nrows(), x.ncols(), |i, j| s * x[(i, j)] - atx[(i, j)]))
    }
    fn project(&self, w: &DMat, v: &DMat) -> Result<StateSpace, NumError> {
        StateSpace::project(self, w, v)
    }
    fn pencil_hash(&self) -> Option<u64> {
        Some(StateSpace::pencil_hash(self))
    }
    /// Dense systems have no factorization to share across shifts, but
    /// the shifts are still independent: fan them across threads.
    fn solve_shifted_many(&self, shifts: &[c64], rhs: &ZMat) -> Result<Vec<ZMat>, NumError> {
        numkit::par::par_map(shifts.len(), |i| StateSpace::solve_shifted(self, shifts[i], rhs))
            .into_iter()
            .collect()
    }
    fn solve_shifted_pairs(&self, shifts: &[c64], rhss: &[ZMat]) -> Result<Vec<ZMat>, NumError> {
        if shifts.len() != rhss.len() {
            return Err(NumError::ShapeMismatch {
                operation: "solve_shifted_pairs",
                left: (shifts.len(), 1),
                right: (rhss.len(), 1),
            });
        }
        numkit::par::par_map(shifts.len(), |i| {
            StateSpace::solve_shifted(self, shifts[i], &rhss[i])
        })
        .into_iter()
        .collect()
    }
}

impl LtiSystem for Descriptor {
    fn nstates(&self) -> usize {
        Descriptor::nstates(self)
    }
    fn ninputs(&self) -> usize {
        Descriptor::ninputs(self)
    }
    fn noutputs(&self) -> usize {
        Descriptor::noutputs(self)
    }
    fn input_matrix(&self) -> &DMat {
        &self.b
    }
    fn output_matrix(&self) -> &DMat {
        &self.c
    }
    fn feedthrough(&self) -> &DMat {
        &self.d
    }
    fn solve_shifted(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError> {
        Descriptor::solve_shifted(self, s, rhs)
    }
    fn solve_shifted_transpose(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError> {
        Descriptor::solve_shifted_transpose(self, s, rhs)
    }
    fn pencil_hash(&self) -> Option<u64> {
        Some(Descriptor::pencil_hash(self))
    }
    /// `s·(E·X) − A·X` via sparse row iteration — no pencil assembly.
    fn apply_shifted(&self, s: c64, x: &ZMat) -> Result<ZMat, NumError> {
        if x.nrows() != self.nstates() {
            return Err(NumError::ShapeMismatch {
                operation: "descriptor apply_shifted",
                left: (self.nstates(), self.nstates()),
                right: x.shape(),
            });
        }
        let mut out = ZMat::zeros(x.nrows(), x.ncols());
        for (i, j, ev) in self.e.iter() {
            for col in 0..x.ncols() {
                out[(i, col)] += s * x[(j, col)].scale(ev);
            }
        }
        for (i, j, av) in self.a.iter() {
            for col in 0..x.ncols() {
                out[(i, col)] -= x[(j, col)].scale(av);
            }
        }
        Ok(out)
    }
    /// `s·(Eᵀ·X) − Aᵀ·X` via sparse row iteration with swapped indices —
    /// no pencil assembly.
    fn apply_shifted_transpose(&self, s: c64, x: &ZMat) -> Result<ZMat, NumError> {
        if x.nrows() != self.nstates() {
            return Err(NumError::ShapeMismatch {
                operation: "descriptor apply_shifted_transpose",
                left: (self.nstates(), self.nstates()),
                right: x.shape(),
            });
        }
        let mut out = ZMat::zeros(x.nrows(), x.ncols());
        for (i, j, ev) in self.e.iter() {
            for col in 0..x.ncols() {
                out[(j, col)] += s * x[(i, col)].scale(ev);
            }
        }
        for (i, j, av) in self.a.iter() {
            for col in 0..x.ncols() {
                out[(j, col)] -= x[(i, col)].scale(av);
            }
        }
        Ok(out)
    }
    fn project(&self, w: &DMat, v: &DMat) -> Result<StateSpace, NumError> {
        Descriptor::project(self, w, v)
    }
    /// Sparse pencil: one merged assembly, one symbolic analysis, and
    /// numeric-only refactorizations fanned across threads.
    fn solve_shifted_many(&self, shifts: &[c64], rhs: &ZMat) -> Result<Vec<ZMat>, NumError> {
        crate::ShiftSolveEngine::new(self).solve_many(shifts, rhs, numkit::par::num_threads())
    }
    fn solve_shifted_pairs(&self, shifts: &[c64], rhss: &[ZMat]) -> Result<Vec<ZMat>, NumError> {
        crate::ShiftSolveEngine::new(self).solve_pairs(shifts, rhss, numkit::par::num_threads())
    }
    /// Sparse ladder: symbolic-reuse refactor → fresh factorization →
    /// refinement → perturbation, with per-worker panic containment.
    fn solve_shifted_many_tolerant(
        &self,
        shifts: &[c64],
        rhs: &ZMat,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> TolerantSweep {
        crate::ShiftSolveEngine::new(self).solve_many_tolerant(
            shifts,
            rhs,
            numkit::par::num_threads(),
            policy,
            faults,
        )
    }
    /// Sparse ladder with per-shift right-hand sides, through the same
    /// factorization-reusing engine.
    fn solve_shifted_pairs_tolerant(
        &self,
        shifts: &[c64],
        rhss: &[ZMat],
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> Result<TolerantSweep, NumError> {
        crate::ShiftSolveEngine::new(self).solve_pairs_tolerant(
            shifts,
            rhss,
            numkit::par::num_threads(),
            policy,
            faults,
        )
    }
    /// Sparse transposed ladder: the engine assembles `(s·E − A)ᵀ` once
    /// and reuses one symbolic analysis across all transposed solves.
    fn solve_shifted_transpose_many_tolerant(
        &self,
        shifts: &[c64],
        rhs: &ZMat,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> TolerantSweep {
        crate::ShiftSolveEngine::new_transposed(self).solve_many_tolerant(
            shifts,
            rhs,
            numkit::par::num_threads(),
            policy,
            faults,
        )
    }
    /// Sparse two-sided ladder: ONE forward factorization per shift
    /// produces both the controllability and (via the transpose solve
    /// `UᵀLᵀPx = b`) the observability samples, halving the LU work of
    /// balanced / cross-Gramian sweeps.
    fn solve_shifted_two_sided_tolerant(
        &self,
        shifts: &[c64],
        rhs: &ZMat,
        rhs_t: &ZMat,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> (TolerantSweep, TolerantSweep) {
        crate::ShiftSolveEngine::new(self).solve_two_sided_tolerant(
            shifts,
            rhs,
            rhs_t,
            numkit::par::num_threads(),
            policy,
            faults,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_transfer<S: LtiSystem>(sys: &S, s: c64) -> c64 {
        sys.transfer_function(s).unwrap()[(0, 0)]
    }

    #[test]
    fn trait_object_safe_and_generic_usable() {
        let ss = StateSpace::new(
            DMat::from_rows(&[&[-1.0]]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[1.0]]),
            None,
        )
        .unwrap();
        // Generic call.
        let h = generic_transfer(&ss, c64::ZERO);
        assert!((h.re - 1.0).abs() < 1e-12);
        // Trait-object call (C-OBJECT).
        let dyn_sys: &dyn LtiSystem = &ss;
        assert_eq!(dyn_sys.nstates(), 1);
        assert!((dyn_sys.transfer_function(c64::ZERO).unwrap()[(0, 0)].re - 1.0).abs() < 1e-12);
    }
}
