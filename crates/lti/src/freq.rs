//! Frequency-response sweeps and error metrics.

use numkit::{c64, NumError, ZMat};

use crate::LtiSystem;

/// `n` evenly spaced points in `[lo, hi]` (inclusive).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n > 0, "linspace needs at least one point");
    if n == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

/// `n` logarithmically spaced points in `[lo, hi]` (inclusive).
///
/// # Panics
///
/// Panics if `n == 0` or if `lo`/`hi` are not strictly positive.
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "logspace needs strictly positive endpoints");
    linspace(lo.ln(), hi.ln(), n).into_iter().map(f64::exp).collect()
}

/// A sampled frequency response.
#[derive(Debug, Clone)]
pub struct FreqResponse {
    /// Angular frequencies `ω` (rad/s) of the samples.
    pub omega: Vec<f64>,
    /// `H(jωₖ)` for each sample (each `q × p`).
    pub h: Vec<ZMat>,
}

impl FreqResponse {
    /// Magnitude `|H(jω)[i,j]|` across the sweep.
    pub fn magnitude(&self, i: usize, j: usize) -> Vec<f64> {
        self.h.iter().map(|m| m[(i, j)].abs()).collect()
    }

    /// Real part of the `(i, j)` entry across the sweep — e.g. the
    /// effective resistance of an impedance transfer function.
    pub fn real_part(&self, i: usize, j: usize) -> Vec<f64> {
        self.h.iter().map(|m| m[(i, j)].re).collect()
    }
}

/// Evaluates `H(jω)` over a frequency grid.
///
/// The sweep runs through [`LtiSystem::solve_shifted_many`], so sparse
/// descriptor systems pay for assembly and symbolic LU analysis once and
/// the grid points fan out across threads (see `numkit::par`); the result
/// is identical to evaluating [`LtiSystem::transfer_function`] point by
/// point.
///
/// # Errors
///
/// Propagates shifted-solve failures (a sample exactly on a pole).
pub fn frequency_response<S: LtiSystem + ?Sized>(
    sys: &S,
    omega: &[f64],
) -> Result<FreqResponse, NumError> {
    let shifts: Vec<c64> = omega.iter().map(|&w| c64::new(0.0, w)).collect();
    let zs = sys.solve_shifted_many(&shifts, &sys.input_matrix().to_complex())?;
    let c = sys.output_matrix().to_complex();
    let d = sys.feedthrough().to_complex();
    let mut h = Vec::with_capacity(omega.len());
    for z in &zs {
        h.push(&c.matmul(z)? + &d);
    }
    Ok(FreqResponse { omega: omega.to_vec(), h })
}

/// Worst-case absolute error `max_k ‖H₁(jωₖ) − H₂(jωₖ)‖_max` between two
/// sampled responses on the same grid.
///
/// # Panics
///
/// Panics if the responses have different lengths.
pub fn max_abs_error(a: &FreqResponse, b: &FreqResponse) -> f64 {
    assert_eq!(a.h.len(), b.h.len(), "responses must share a grid");
    a.h.iter().zip(&b.h).map(|(x, y)| (x - y).norm_max()).fold(0.0, f64::max)
}

/// Worst-case relative error `max_k ‖H₁ − H₂‖ / max(‖H₁‖, floor)`.
///
/// # Panics
///
/// Panics if the responses have different lengths.
pub fn max_rel_error(a: &FreqResponse, b: &FreqResponse) -> f64 {
    assert_eq!(a.h.len(), b.h.len(), "responses must share a grid");
    let floor = a.h.iter().map(|m| m.norm_max()).fold(0.0, f64::max) * 1e-12;
    a.h.iter()
        .zip(&b.h)
        .map(|(x, y)| (x - y).norm_max() / x.norm_max().max(floor).max(f64::MIN_POSITIVE))
        .fold(0.0, f64::max)
}

/// Sampled estimate of the H∞ norm: `max_k ‖H(jωₖ)‖₂` (spectral norm at
/// each grid point). A lower bound on the true norm; grid density governs
/// tightness.
///
/// # Errors
///
/// Propagates SVD failures.
pub fn hinf_estimate(resp: &FreqResponse) -> Result<f64, NumError> {
    let mut best = 0.0f64;
    for m in &resp.h {
        let s = numkit::singular_values(m)?;
        if let Some(&s0) = s.first() {
            best = best.max(s0);
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateSpace;
    use numkit::DMat;

    fn one_pole() -> StateSpace {
        StateSpace::new(
            DMat::from_rows(&[&[-1.0]]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[1.0]]),
            None,
        )
        .unwrap()
    }

    #[test]
    fn linspace_endpoints() {
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(3.0, 9.0, 1), vec![3.0]);
    }

    #[test]
    fn logspace_is_geometric() {
        let v = logspace(1.0, 100.0, 3);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 10.0).abs() < 1e-10);
        assert!((v[2] - 100.0).abs() < 1e-10);
    }

    #[test]
    fn lowpass_magnitude_rolls_off() {
        let sys = one_pole();
        let resp = frequency_response(&sys, &[0.0, 1.0, 10.0]).unwrap();
        let mag = resp.magnitude(0, 0);
        assert!((mag[0] - 1.0).abs() < 1e-12);
        assert!((mag[1] - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert!(mag[2] < 0.1);
    }

    #[test]
    fn hinf_of_lowpass_is_dc_gain() {
        let sys = one_pole();
        let resp = frequency_response(&sys, &linspace(0.0, 5.0, 21)).unwrap();
        let hinf = hinf_estimate(&resp).unwrap();
        assert!((hinf - 1.0).abs() < 1e-10);
    }

    #[test]
    fn error_metrics_zero_for_identical() {
        let sys = one_pole();
        let r = frequency_response(&sys, &[0.5, 1.5]).unwrap();
        assert_eq!(max_abs_error(&r, &r), 0.0);
        assert_eq!(max_rel_error(&r, &r), 0.0);
    }
}
