//! State-space composition: series, parallel, and feedback
//! interconnections.
//!
//! Composition is what the classical frequency-weighted reduction
//! methods (paper references [15]–[17]) are built on: pre-/post-
//! multiplying the plant by weighting systems and reducing the
//! composite. It is also generally useful for assembling blocks
//! (driver + interconnect + load) into one model.

use numkit::{DMat, NumError};

use crate::StateSpace;

impl StateSpace {
    /// Series interconnection `self ∘ first`: the output of `first`
    /// feeds the input of `self`, so the composite realizes
    /// `H(s) = H_self(s)·H_first(s)`.
    ///
    /// # Errors
    ///
    /// [`NumError::ShapeMismatch`] if `first.noutputs() != self.ninputs()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lti::StateSpace;
    /// use numkit::{c64, DMat};
    ///
    /// # fn main() -> Result<(), numkit::NumError> {
    /// let lp = |a: f64| StateSpace::new(
    ///     DMat::from_rows(&[&[-a]]),
    ///     DMat::from_rows(&[&[a]]),
    ///     DMat::from_rows(&[&[1.0]]),
    ///     None,
    /// );
    /// let cascade = lp(1.0)?.series(&lp(2.0)?)?;
    /// let h = cascade.transfer_function(c64::ZERO)?;
    /// assert!((h[(0, 0)].re - 1.0).abs() < 1e-12); // dc gain 1·1
    /// # Ok(())
    /// # }
    /// ```
    pub fn series(&self, first: &StateSpace) -> Result<StateSpace, NumError> {
        if first.noutputs() != self.ninputs() {
            return Err(NumError::ShapeMismatch {
                operation: "series interconnection",
                left: (self.ninputs(), 0),
                right: (first.noutputs(), 0),
            });
        }
        let n1 = first.nstates();
        let n2 = self.nstates();
        let b2c1 = self.b.matmul(&first.c)?;
        let a = DMat::from_fn(n1 + n2, n1 + n2, |i, j| {
            if i < n1 && j < n1 {
                first.a[(i, j)]
            } else if i >= n1 && j >= n1 {
                self.a[(i - n1, j - n1)]
            } else if i >= n1 && j < n1 {
                b2c1[(i - n1, j)]
            } else {
                0.0
            }
        });
        let b2d1 = self.b.matmul(&first.d)?;
        let b = DMat::from_fn(n1 + n2, first.ninputs(), |i, j| {
            if i < n1 {
                first.b[(i, j)]
            } else {
                b2d1[(i - n1, j)]
            }
        });
        let d2c1 = self.d.matmul(&first.c)?;
        let c = DMat::from_fn(self.noutputs(), n1 + n2, |i, j| {
            if j < n1 {
                d2c1[(i, j)]
            } else {
                self.c[(i, j - n1)]
            }
        });
        let d = self.d.matmul(&first.d)?;
        StateSpace::new(a, b, c, Some(d))
    }

    /// Parallel interconnection: `H(s) = H_self(s) + H_other(s)`
    /// (shared input, summed output).
    ///
    /// # Errors
    ///
    /// [`NumError::ShapeMismatch`] on differing input/output counts.
    pub fn parallel(&self, other: &StateSpace) -> Result<StateSpace, NumError> {
        if self.ninputs() != other.ninputs() || self.noutputs() != other.noutputs() {
            return Err(NumError::ShapeMismatch {
                operation: "parallel interconnection",
                left: (self.noutputs(), self.ninputs()),
                right: (other.noutputs(), other.ninputs()),
            });
        }
        let n1 = self.nstates();
        let n2 = other.nstates();
        let a = DMat::from_fn(n1 + n2, n1 + n2, |i, j| {
            if i < n1 && j < n1 {
                self.a[(i, j)]
            } else if i >= n1 && j >= n1 {
                other.a[(i - n1, j - n1)]
            } else {
                0.0
            }
        });
        let b = DMat::from_fn(n1 + n2, self.ninputs(), |i, j| {
            if i < n1 {
                self.b[(i, j)]
            } else {
                other.b[(i - n1, j)]
            }
        });
        let c = DMat::from_fn(self.noutputs(), n1 + n2, |i, j| {
            if j < n1 {
                self.c[(i, j)]
            } else {
                other.c[(i, j - n1)]
            }
        });
        let d = &self.d + &other.d;
        StateSpace::new(a, b, c, Some(d))
    }

    /// Negative feedback around `self` with unit feedback gain:
    /// `H_cl = (I + H)⁻¹·H` (square systems, well-posed when
    /// `I + D` is invertible).
    ///
    /// # Errors
    ///
    /// - [`NumError::InvalidArgument`] if the system is not square.
    /// - [`NumError::Singular`] if `I + D` is singular (algebraic loop).
    pub fn feedback_unit(&self) -> Result<StateSpace, NumError> {
        if self.ninputs() != self.noutputs() {
            return Err(NumError::InvalidArgument("unit feedback needs a square system"));
        }
        let p = self.ninputs();
        let mut id_plus_d = self.d.clone();
        for i in 0..p {
            id_plus_d[(i, i)] += 1.0;
        }
        let lu = numkit::Lu::new(id_plus_d)?;
        // Closed loop: ẋ = (A − B·(I+D)⁻¹·C)x + B·(I+D)⁻¹·u,
        //              y = (I+D)⁻¹·C·x + (I+D)⁻¹·D·u.
        let minv_c = lu.solve_mat(&self.c)?;
        let minv_d = lu.solve_mat(&self.d)?;
        let a = &self.a - &self.b.matmul(&minv_c)?;
        // B·(I+D)⁻¹ = solve on the transpose side.
        let b = {
            let mut idt = self.d.transpose();
            for i in 0..p {
                idt[(i, i)] += 1.0;
            }
            let lut = numkit::Lu::new(idt)?;
            let bt = lut.solve_mat(&self.b.transpose())?;
            bt.transpose()
        };
        StateSpace::new(a, b, minv_c, Some(minv_d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numkit::c64;

    fn lowpass(a: f64) -> StateSpace {
        StateSpace::new(
            DMat::from_rows(&[&[-a]]),
            DMat::from_rows(&[&[a]]),
            DMat::from_rows(&[&[1.0]]),
            None,
        )
        .unwrap()
    }

    #[test]
    fn series_multiplies_transfer_functions() {
        let g1 = lowpass(1.0);
        let g2 = lowpass(3.0);
        let cascade = g2.series(&g1).unwrap();
        assert_eq!(cascade.nstates(), 2);
        for &w in &[0.0, 0.5, 2.0] {
            let s = c64::new(0.0, w);
            let h = cascade.transfer_function(s).unwrap()[(0, 0)];
            let expect = g1.transfer_function(s).unwrap()[(0, 0)]
                * g2.transfer_function(s).unwrap()[(0, 0)];
            assert!((h - expect).abs() < 1e-12, "w={w}");
        }
    }

    #[test]
    fn parallel_adds_transfer_functions() {
        let g1 = lowpass(1.0);
        let g2 = lowpass(5.0);
        let sum = g1.parallel(&g2).unwrap();
        let s = c64::new(0.0, 1.3);
        let h = sum.transfer_function(s).unwrap()[(0, 0)];
        let expect = g1.transfer_function(s).unwrap()[(0, 0)]
            + g2.transfer_function(s).unwrap()[(0, 0)];
        assert!((h - expect).abs() < 1e-12);
    }

    #[test]
    fn unit_feedback_closed_loop() {
        // G = 1/(s+1); closed loop G/(1+G) = 1/(s+2).
        let g = lowpass(1.0);
        let cl = g.feedback_unit().unwrap();
        for &w in &[0.0, 1.0, 4.0] {
            let s = c64::new(0.0, w);
            let h = cl.transfer_function(s).unwrap()[(0, 0)];
            let expect = c64::ONE / (s + c64::from_real(2.0));
            assert!((h - expect).abs() < 1e-12, "w={w}");
        }
    }

    #[test]
    fn shape_validation() {
        let g1 = lowpass(1.0);
        let wide = StateSpace::new(
            DMat::from_rows(&[&[-1.0]]),
            DMat::from_rows(&[&[1.0, 2.0]]),
            DMat::from_rows(&[&[1.0]]),
            None,
        )
        .unwrap();
        assert!(g1.series(&wide).is_ok()); // wide has 1 output
        assert!(wide.series(&g1).is_err()); // g1 has 1 output, wide needs 2 inputs
        assert!(g1.parallel(&wide).is_err());
        assert!(wide.feedback_unit().is_err());
    }
}
