//! Exact truncated balanced realization (TBR) — the baseline PMTBR is
//! measured against — plus the cross-Gramian variant of Section V-D.
//!
//! Implementation: square-root balanced truncation. The Gramians are
//! solved exactly by Bartels–Stewart ([`lyap`]), factored through their
//! eigendecompositions (robust to numerical rank deficiency), and the
//! projection bases come from the SVD of `Lyᵀ·Lx`.

use numkit::{eig, psd_sqrt_factor, svd, DMat, Lu, NumError};

use crate::{lyap, sylvester, StateSpace};

/// Controllability Gramian: solves `A·X + X·Aᵀ + B·Bᵀ = 0`.
///
/// # Errors
///
/// Propagates [`lyap`] errors (e.g. unstable `A`).
pub fn controllability_gramian(sys: &StateSpace) -> Result<DMat, NumError> {
    let q = &sys.b * &sys.b.transpose();
    lyap(&sys.a, &q)
}

/// Weighted controllability Gramian: solves `A·X + X·Aᵀ + B·K·Bᵀ = 0`.
///
/// `K` is an input correlation matrix (paper Section IV-C); `K = I`
/// recovers [`controllability_gramian`].
///
/// # Errors
///
/// Propagates [`lyap`] errors.
pub fn correlated_controllability_gramian(
    sys: &StateSpace,
    k: &DMat,
) -> Result<DMat, NumError> {
    let bk = sys.b.matmul(k)?;
    let q = bk.matmul(&sys.b.transpose())?;
    lyap(&sys.a, &q)
}

/// Observability Gramian: solves `Aᵀ·Y + Y·A + Cᵀ·C = 0`.
///
/// # Errors
///
/// Propagates [`lyap`] errors.
pub fn observability_gramian(sys: &StateSpace) -> Result<DMat, NumError> {
    let q = &sys.c.transpose() * &sys.c;
    lyap(&sys.a.transpose(), &q)
}

/// Result of a balanced-truncation reduction.
#[derive(Debug, Clone)]
pub struct TbrModel {
    /// The reduced model (order ≤ requested, limited by numerical rank).
    pub reduced: StateSpace,
    /// All Hankel singular values of the original system.
    pub hsv: Vec<f64>,
    /// The classical TBR error bound `2·Σ_{i>q} σᵢ` for the realized
    /// order `q`.
    pub error_bound: f64,
    /// Right projection basis `V` (`n × q`).
    pub v: DMat,
    /// Left projection basis `W` (`n × q`), with `WᵀV = I`.
    pub w: DMat,
}

/// Hankel singular values (square roots of the eigenvalues of `X·Y`).
///
/// # Errors
///
/// Propagates Gramian computation errors.
pub fn hankel_singular_values(sys: &StateSpace) -> Result<Vec<f64>, NumError> {
    let x = controllability_gramian(sys)?;
    let y = observability_gramian(sys)?;
    hankel_from_gramians(&x, &y)
}

/// Hankel singular values from explicitly supplied Gramians.
///
/// # Errors
///
/// Propagates factorization errors.
pub fn hankel_from_gramians(x: &DMat, y: &DMat) -> Result<Vec<f64>, NumError> {
    // Keep every strictly positive Gramian eigenvalue (tol = 0): the
    // Hankel values are computed as singular values of the factor
    // product, which resolves far below the Gramian eigenvalue floor.
    let lx = psd_sqrt_factor(x, 0.0)?;
    let ly = psd_sqrt_factor(y, 0.0)?;
    let m = &ly.transpose() * &lx;
    let mut s = svd(&m)?.s;
    // Pad with exact zeros up to n for callers that expect n values.
    s.resize(x.nrows(), 0.0);
    Ok(s)
}

/// Balanced truncation to order `order` using exact Gramians.
///
/// # Errors
///
/// - Propagates Gramian/factorization errors (e.g. unstable systems).
/// - [`NumError::InvalidArgument`] if `order` is 0.
///
/// # Examples
///
/// ```
/// use lti::{tbr, StateSpace};
/// use numkit::DMat;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = StateSpace::new(
///     DMat::from_diag(&[-1.0, -100.0]),
///     DMat::from_rows(&[&[1.0], &[0.1]]),
///     DMat::from_rows(&[&[1.0, 0.1]]),
///     None,
/// )?;
/// let m = tbr(&sys, 1)?;
/// assert_eq!(m.reduced.nstates(), 1);
/// // The fast, weakly coupled mode is nearly unobservable/uncontrollable:
/// assert!(m.error_bound < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn tbr(sys: &StateSpace, order: usize) -> Result<TbrModel, NumError> {
    let x = controllability_gramian(sys)?;
    let y = observability_gramian(sys)?;
    tbr_from_gramians(sys, &x, &y, order)
}

/// Balanced truncation with caller-supplied Gramians (frequency-weighted
/// or input-correlated variants plug in here).
///
/// # Errors
///
/// Same as [`tbr`].
pub fn tbr_from_gramians(
    sys: &StateSpace,
    x: &DMat,
    y: &DMat,
    order: usize,
) -> Result<TbrModel, NumError> {
    if order == 0 {
        return Err(NumError::InvalidArgument("reduction order must be at least 1"));
    }
    let lx = psd_sqrt_factor(x, 1e-14)?;
    let ly = psd_sqrt_factor(y, 1e-14)?;
    let m = &ly.transpose() * &lx;
    let f = svd(&m)?;
    // Numerical rank of the Hankel spectrum limits the realizable order.
    let rank = f.rank(1e-13).max(1);
    let q = order.min(rank);
    // V = Lx·V_svd·Σ^{-1/2}, W = Ly·U_svd·Σ^{-1/2}, as blocked matmuls
    // (ascending-k accumulation: bit-identical to the per-entry loops)
    // followed by the balancing column scaling.
    let mut v = lx.matmul(&f.v.leading_cols(q))?;
    let mut w = ly.matmul(&f.u.leading_cols(q))?;
    for j in 0..q {
        let scale = 1.0 / f.s[j].sqrt();
        for i in 0..sys.nstates() {
            v[(i, j)] *= scale;
            w[(i, j)] *= scale;
        }
    }
    let reduced = sys.project(&w, &v)?;
    let mut hsv = f.s.clone();
    hsv.resize(sys.nstates(), 0.0);
    let error_bound = 2.0 * hsv.iter().skip(q).sum::<f64>();
    Ok(TbrModel { reduced, hsv, error_bound, v, w })
}

/// TBR error bounds `2·Σ_{i>q} σᵢ` for every order `q = 0..n`.
///
/// Index `q` of the returned vector is the bound for an order-`q` model —
/// the quantity plotted in Fig. 3 of the paper.
pub fn tbr_error_bounds(hsv: &[f64]) -> Vec<f64> {
    let total: f64 = hsv.iter().sum();
    let mut bounds = Vec::with_capacity(hsv.len() + 1);
    let mut acc = 0.0;
    bounds.push(2.0 * total);
    for &s in hsv {
        acc += s;
        bounds.push(2.0 * (total - acc));
    }
    bounds
}

/// Balanced *residualization* (singular perturbation) to order `order`:
/// instead of discarding the weak balanced states, their derivatives are
/// set to zero and they are solved out statically. Same `2·Σσ` error
/// bound as truncation, but the dc gain is preserved *exactly* — the
/// right choice when reduced parasitic models must keep IR-drop/static
/// coupling bit-exact.
///
/// # Errors
///
/// Same as [`tbr`], plus [`NumError::Singular`] if the weak balanced
/// block is singular (a pole at the origin in the discarded dynamics).
pub fn tbr_residualized(sys: &StateSpace, order: usize) -> Result<TbrModel, NumError> {
    if order == 0 {
        return Err(NumError::InvalidArgument("reduction order must be at least 1"));
    }
    let x = controllability_gramian(sys)?;
    let y = observability_gramian(sys)?;
    let lx = psd_sqrt_factor(&x, 1e-14)?;
    let ly = psd_sqrt_factor(&y, 1e-14)?;
    let m = &ly.transpose() * &lx;
    let f = svd(&m)?;
    let rank = f.rank(1e-13).max(1);
    let q = order.min(rank);
    if q == rank {
        // Nothing to residualize: fall back to plain truncation.
        return tbr_from_gramians(sys, &x, &y, q);
    }
    // Full balanced coordinates up to the numerical rank.
    let n = sys.nstates();
    // Same blocked balanced-coordinate assembly as [`tbr_from_gramians`],
    // kept to the full numerical rank for the residualization split.
    let mut v = lx.matmul(&f.v.leading_cols(rank))?;
    let mut w = ly.matmul(&f.u.leading_cols(rank))?;
    for j in 0..rank {
        let scale = 1.0 / f.s[j].sqrt();
        for i in 0..n {
            v[(i, j)] *= scale;
            w[(i, j)] *= scale;
        }
    }
    let bal = sys.project(&w, &v)?;
    // Partition the balanced model and solve the weak block statically:
    // 0 = A21·x1 + A22·x2 + B2·u  ⇒  x2 = −A22⁻¹(A21·x1 + B2·u).
    let a11 = bal.a.block(0, q, 0, q);
    let a12 = bal.a.block(0, q, q, rank);
    let a21 = bal.a.block(q, rank, 0, q);
    let a22 = bal.a.block(q, rank, q, rank);
    let b1 = bal.b.block(0, q, 0, bal.b.ncols());
    let b2 = bal.b.block(q, rank, 0, bal.b.ncols());
    let c1 = bal.c.block(0, bal.c.nrows(), 0, q);
    let c2 = bal.c.block(0, bal.c.nrows(), q, rank);
    let a22_lu = Lu::new(a22)?;
    let a22_inv_a21 = a22_lu.solve_mat(&a21)?;
    let a22_inv_b2 = a22_lu.solve_mat(&b2)?;
    let a_red = &a11 - &a12.matmul(&a22_inv_a21)?;
    let b_red = &b1 - &a12.matmul(&a22_inv_b2)?;
    let c_red = &c1 - &c2.matmul(&a22_inv_a21)?;
    let d_red = &bal.d - &c2.matmul(&a22_inv_b2)?;
    let reduced = StateSpace::new(a_red, b_red, c_red, Some(d_red))?;
    let mut hsv = f.s.clone();
    hsv.resize(n, 0.0);
    let error_bound = 2.0 * hsv.iter().skip(q).sum::<f64>();
    Ok(TbrModel {
        reduced,
        hsv,
        error_bound,
        v: v.leading_cols(q),
        w: w.leading_cols(q),
    })
}

/// The H₂ norm `‖H‖₂ = √(trace(C·X·Cᵀ))` of a strictly proper stable
/// system.
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] if `D ≠ 0` (the H₂ norm is infinite).
/// - Propagates Gramian errors (unstable systems).
///
/// # Examples
///
/// ```
/// use lti::{h2_norm, StateSpace};
/// use numkit::DMat;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// // H(s) = 1/(s + 2): ‖H‖₂² = 1/(2·2).
/// let sys = StateSpace::new(
///     DMat::from_rows(&[&[-2.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     None,
/// )?;
/// assert!((h2_norm(&sys)? - (0.25f64).sqrt()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn h2_norm(sys: &StateSpace) -> Result<f64, NumError> {
    if sys.d.norm_max() != 0.0 {
        return Err(NumError::InvalidArgument(
            "h2 norm is infinite for systems with direct feedthrough",
        ));
    }
    let x = controllability_gramian(sys)?;
    let cx = sys.c.matmul(&x)?;
    let cxc = cx.matmul(&sys.c.transpose())?;
    let trace: f64 = cxc.diag().iter().sum();
    Ok(trace.max(0.0).sqrt())
}

/// Cross-Gramian `X_CG`: solves `A·X + X·A + B·C = 0` (Section V-D).
///
/// Only defined for square transfer functions (`p = q`).
///
/// # Errors
///
/// [`NumError::InvalidArgument`] if inputs ≠ outputs; otherwise
/// propagates [`sylvester`] errors.
pub fn cross_gramian(sys: &StateSpace) -> Result<DMat, NumError> {
    if sys.ninputs() != sys.noutputs() {
        return Err(NumError::InvalidArgument(
            "cross-gramian requires as many inputs as outputs",
        ));
    }
    let bc = &sys.b * &sys.c;
    sylvester(&sys.a, &sys.a, &bc)
}

/// Model reduction by projection onto the dominant eigenspace of the
/// cross-Gramian. For symmetric (incl. SISO symmetric) systems this
/// coincides with TBR; in general the trailing-eigenvalue sum still
/// bounds the Hankel tail (Sorensen–Antoulas).
///
/// # Errors
///
/// Propagates [`cross_gramian`] and eigensolver errors.
pub fn cross_gramian_reduce(sys: &StateSpace, order: usize) -> Result<TbrModel, NumError> {
    if order == 0 {
        return Err(NumError::InvalidArgument("reduction order must be at least 1"));
    }
    let xcg = cross_gramian(sys)?;
    let e = eig(&xcg)?;
    let n = sys.nstates();
    // Realify the eigenvector matrix: conjugate pairs become [Re v, Im v].
    let mut t = DMat::zeros(n, n);
    let mut moduli = Vec::with_capacity(n);
    let mut j = 0;
    let mut col = 0;
    while j < n {
        let lam = e.values[j];
        if lam.im.abs() > 1e-12 * lam.abs().max(1e-300) && j + 1 < n {
            let v = e.vectors.col(j);
            for i in 0..n {
                t[(i, col)] = v[i].re;
                t[(i, col + 1)] = v[i].im;
            }
            moduli.push(lam.abs());
            moduli.push(lam.abs());
            col += 2;
            j += 2; // skip the conjugate partner
        } else {
            let v = e.vectors.col(j);
            for i in 0..n {
                t[(i, col)] = v[i].re;
            }
            moduli.push(lam.abs());
            col += 1;
            j += 1;
        }
    }
    // Don't split a conjugate pair at the truncation boundary.
    let mut q = order.min(n);
    if q < n && (moduli[q - 1] - moduli[q]).abs() < 1e-12 * moduli[q.saturating_sub(1)].max(1e-300)
    {
        q += 1;
    }
    let v = t.leading_cols(q);
    // W = (T⁻ᵀ) leading columns, so WᵀV = I.
    let tinv = Lu::new(t.clone())?.inverse()?;
    let w = tinv.transpose().leading_cols(q);
    let reduced = sys.project(&w, &v)?;
    let error_bound = 2.0 * moduli.iter().skip(q).sum::<f64>();
    Ok(TbrModel { reduced, hsv: moduli, error_bound, v, w })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numkit::c64;

    /// A symmetric RC-like system: A = Aᵀ ≺ 0, C = Bᵀ.
    fn symmetric_system(n: usize) -> StateSpace {
        let a = DMat::from_fn(n, n, |i, j| {
            if i == j {
                -2.0 - i as f64 * 0.5
            } else if i.abs_diff(j) == 1 {
                0.7
            } else {
                0.0
            }
        });
        let b = DMat::from_fn(n, 1, |i, _| if i == 0 { 1.0 } else { 0.0 });
        let c = b.transpose();
        StateSpace::new(a, b, c, None).unwrap()
    }

    #[test]
    fn gramians_satisfy_lyapunov() {
        let sys = symmetric_system(6);
        let x = controllability_gramian(&sys).unwrap();
        let q = &sys.b * &sys.b.transpose();
        assert!(crate::lyap_residual(&sys.a, &x, &q) < 1e-10);
        // Symmetric system: X == Y.
        let y = observability_gramian(&sys).unwrap();
        assert!((&x - &y).norm_max() < 1e-10);
    }

    #[test]
    fn hsv_are_nonincreasing_nonnegative() {
        let sys = symmetric_system(8);
        let hsv = hankel_singular_values(&sys).unwrap();
        assert_eq!(hsv.len(), 8);
        for w in hsv.windows(2) {
            assert!(w[0] >= w[1] - 1e-14);
        }
        assert!(hsv.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn tbr_error_within_bound() {
        let sys = symmetric_system(8);
        for order in [2, 4, 6] {
            let m = tbr(&sys, order).unwrap();
            assert_eq!(m.reduced.nstates(), order);
            // Check |H(jw) − Hr(jw)| ≤ bound on a frequency grid.
            for &w in &[0.0, 0.1, 0.5, 1.0, 3.0, 10.0] {
                let s = c64::new(0.0, w);
                let h = sys.transfer_function(s).unwrap()[(0, 0)];
                let hr = m.reduced.transfer_function(s).unwrap()[(0, 0)];
                let err = (h - hr).abs();
                assert!(
                    err <= m.error_bound * (1.0 + 1e-6) + 1e-12,
                    "order {order}, w {w}: err {err} > bound {}",
                    m.error_bound
                );
            }
        }
    }

    #[test]
    fn tbr_balances_wv() {
        let sys = symmetric_system(6);
        let m = tbr(&sys, 3).unwrap();
        let wtv = &m.w.transpose() * &m.v;
        assert!((&wtv - &DMat::identity(3)).norm_max() < 1e-9, "biorthogonality");
    }

    #[test]
    fn full_order_tbr_preserves_transfer_function() {
        let sys = symmetric_system(5);
        let m = tbr(&sys, 5).unwrap();
        let s = c64::new(0.0, 0.7);
        let h = sys.transfer_function(s).unwrap()[(0, 0)];
        let hr = m.reduced.transfer_function(s).unwrap()[(0, 0)];
        assert!((h - hr).abs() < 1e-8);
    }

    #[test]
    fn error_bounds_vector_matches_definition() {
        let hsv = vec![4.0, 2.0, 1.0];
        let b = tbr_error_bounds(&hsv);
        assert_eq!(b, vec![14.0, 6.0, 2.0, 0.0]);
    }

    #[test]
    fn correlated_gramian_shrinks_with_lowrank_k() {
        // 2-input system; rank-1 K concentrates the input energy.
        let a = DMat::from_diag(&[-1.0, -2.0, -3.0]);
        let b = DMat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.5, 0.5]]);
        let c = DMat::from_rows(&[&[1.0, 1.0, 1.0]]);
        let sys = StateSpace::new(a, b, c, None).unwrap();
        let k_full = DMat::identity(2);
        let k_low = DMat::from_fn(2, 2, |_, _| 0.5); // rank 1, trace 1
        let x_full = correlated_controllability_gramian(&sys, &k_full).unwrap();
        let x_low = correlated_controllability_gramian(&sys, &k_low).unwrap();
        let e_full = numkit::eigh(&x_full).unwrap().values;
        let e_low = numkit::eigh(&x_low).unwrap().values;
        // The correlated Gramian must decay faster: smaller trailing mass.
        let tail_full: f64 = e_full.iter().skip(1).sum();
        let tail_low: f64 = e_low.iter().skip(1).sum();
        assert!(
            tail_low < tail_full,
            "correlation should reduce the Gramian tail: {tail_low} vs {tail_full}"
        );
    }

    #[test]
    fn residualization_preserves_dc_gain_exactly() {
        let sys = symmetric_system(7);
        let dc_full = sys.dc_gain().unwrap()[(0, 0)];
        for order in [2usize, 3, 5] {
            let res = tbr_residualized(&sys, order).unwrap();
            let dc_res = res.reduced.dc_gain().unwrap()[(0, 0)];
            assert!(
                (dc_res - dc_full).abs() < 1e-10 * dc_full.abs(),
                "order {order}: dc {dc_res} vs {dc_full}"
            );
            // Truncation, by contrast, misses dc by ~the bound.
            let tru = tbr(&sys, order).unwrap();
            let dc_tru = tru.reduced.dc_gain().unwrap()[(0, 0)];
            assert!((dc_tru - dc_full).abs() > (dc_res - dc_full).abs());
        }
    }

    #[test]
    fn residualization_error_within_bound() {
        let sys = symmetric_system(7);
        let res = tbr_residualized(&sys, 3).unwrap();
        for &w in &[0.0, 0.2, 1.0, 5.0] {
            let s = c64::new(0.0, w);
            let h = sys.transfer_function(s).unwrap()[(0, 0)];
            let hr = res.reduced.transfer_function(s).unwrap()[(0, 0)];
            assert!(
                (h - hr).abs() <= res.error_bound * (1.0 + 1e-6) + 1e-12,
                "w={w}: {} > bound {}",
                (h - hr).abs(),
                res.error_bound
            );
        }
    }

    #[test]
    fn h2_norm_matches_analytic_value() {
        // H(s) = 1/(s+a) + 1/(s+b): ‖H‖₂² = 1/(2a) + 1/(2b) + 2/(a+b).
        let (a, b) = (1.5, 4.0);
        let sys = StateSpace::new(
            DMat::from_diag(&[-a, -b]),
            DMat::from_rows(&[&[1.0], &[1.0]]),
            DMat::from_rows(&[&[1.0, 1.0]]),
            None,
        )
        .unwrap();
        let expect = (1.0 / (2.0 * a) + 1.0 / (2.0 * b) + 2.0 / (a + b)).sqrt();
        assert!((h2_norm(&sys).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn h2_norm_rejects_feedthrough() {
        let sys = StateSpace::new(
            DMat::from_diag(&[-1.0]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[1.0]]),
            Some(DMat::from_rows(&[&[1.0]])),
        )
        .unwrap();
        assert!(h2_norm(&sys).is_err());
    }

    #[test]
    fn cross_gramian_squares_to_xy_for_symmetric_systems() {
        let sys = symmetric_system(5);
        let xcg = cross_gramian(&sys).unwrap();
        let x = controllability_gramian(&sys).unwrap();
        let y = observability_gramian(&sys).unwrap();
        let xy = &x * &y;
        let xcg2 = &xcg * &xcg;
        assert!(
            (&xcg2 - &xy).norm_max() < 1e-9 * (1.0 + xy.norm_max()),
            "X_CG² must equal X·Y for symmetric systems"
        );
    }

    #[test]
    fn cross_gramian_reduction_matches_tbr_quality_on_symmetric() {
        let sys = symmetric_system(6);
        let mcg = cross_gramian_reduce(&sys, 3).unwrap();
        let mtb = tbr(&sys, 3).unwrap();
        let s = c64::new(0.0, 0.5);
        let h = sys.transfer_function(s).unwrap()[(0, 0)];
        let e_cg = (mcg.reduced.transfer_function(s).unwrap()[(0, 0)] - h).abs();
        let e_tb = (mtb.reduced.transfer_function(s).unwrap()[(0, 0)] - h).abs();
        assert!(e_cg < 10.0 * e_tb + 1e-9, "cross-gramian error {e_cg} vs tbr {e_tb}");
    }

    #[test]
    fn zero_order_rejected() {
        let sys = symmetric_system(4);
        assert!(tbr(&sys, 0).is_err());
        assert!(cross_gramian_reduce(&sys, 0).is_err());
    }

    #[test]
    fn nonsquare_cross_gramian_rejected() {
        let a = DMat::from_diag(&[-1.0]);
        let b = DMat::from_rows(&[&[1.0, 2.0]]);
        let c = DMat::from_rows(&[&[1.0]]);
        let sys = StateSpace::new(a, b, c, None).unwrap();
        assert!(matches!(cross_gramian(&sys), Err(NumError::InvalidArgument(_))));
    }
}
