//! Realification of complex sample blocks.
//!
//! Projection bases must be real for the reduced models to be usable in
//! time-domain simulation (paper Section V-C). A complex sample column
//! `z` taken at `s` together with its conjugate (taken implicitly at
//! `s̄`, step 5 of Algorithm 1) spans the same space as `[Re z, Im z]` —
//! so we store the real and imaginary parts instead.

use numkit::{DMat, ZMat};

/// Expands complex columns into real/imaginary column pairs.
///
/// For each column `z` of `z_cols`, appends `Re z`, and also `Im z`
/// whenever its norm exceeds `drop_tol` times the column norm (columns
/// from real sample points have negligible imaginary parts and
/// contribute one real column, matching Algorithm 1's case split).
pub fn realify_columns(z_cols: &ZMat, drop_tol: f64) -> DMat {
    let n = z_cols.nrows();
    let total = realified_ncols(z_cols, drop_tol);
    let mut out = DMat::zeros(n, total);
    let written = realify_columns_into(z_cols, drop_tol, &mut out, 0);
    debug_assert_eq!(written, total);
    out
}

/// Number of real columns [`realify_columns`] would produce for `z_cols`
/// at the given `drop_tol` — used to preallocate the destination before
/// writing with [`realify_columns_into`].
pub fn realified_ncols(z_cols: &ZMat, drop_tol: f64) -> usize {
    let mut count = 0;
    for j in 0..z_cols.ncols() {
        let (keep_re, keep_im) = column_split(z_cols, j, drop_tol);
        count += usize::from(keep_re) + usize::from(keep_im);
    }
    count
}

/// Writes the realified columns of `z_cols` directly into `dest` starting
/// at column `col0`, returning the number of columns written. This is the
/// allocation-free path used by the sampling engine: sample blocks land
/// straight in the preallocated sample matrix, with no intermediate
/// per-block matrix and no copy.
///
/// # Panics
///
/// Panics if `dest` has too few rows or columns for the output.
pub fn realify_columns_into(z_cols: &ZMat, drop_tol: f64, dest: &mut DMat, col0: usize) -> usize {
    let n = z_cols.nrows();
    assert!(dest.nrows() >= n, "realify_columns_into: destination too short");
    let mut at = col0;
    for j in 0..z_cols.ncols() {
        let (keep_re, keep_im) = column_split(z_cols, j, drop_tol);
        if keep_re {
            assert!(at < dest.ncols(), "realify_columns_into: destination too narrow");
            for i in 0..n {
                dest[(i, at)] = z_cols[(i, j)].re;
            }
            at += 1;
        }
        if keep_im {
            assert!(at < dest.ncols(), "realify_columns_into: destination too narrow");
            for i in 0..n {
                dest[(i, at)] = z_cols[(i, j)].im;
            }
            at += 1;
        }
    }
    at - col0
}

/// Decides which of (Re, Im) of column `j` survive the drop tolerance.
fn column_split(z_cols: &ZMat, j: usize, drop_tol: f64) -> (bool, bool) {
    let mut total_sq = 0.0f64;
    let mut re_sq = 0.0f64;
    let mut im_sq = 0.0f64;
    for i in 0..z_cols.nrows() {
        let v = z_cols[(i, j)];
        total_sq += v.abs_sq();
        re_sq += v.re * v.re;
        im_sq += v.im * v.im;
    }
    let thresh = drop_tol * total_sq.sqrt();
    (re_sq.sqrt() > thresh, im_sq.sqrt() > thresh)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numkit::c64;

    #[test]
    fn real_columns_stay_single() {
        let z = ZMat::from_fn(3, 2, |i, j| c64::from_real((i + j + 1) as f64));
        let r = realify_columns(&z, 1e-12);
        assert_eq!(r.ncols(), 2);
        assert_eq!(r[(2, 1)], 4.0);
    }

    #[test]
    fn complex_columns_split_into_pairs() {
        let z = ZMat::from_fn(3, 1, |i, _| c64::new(i as f64 + 1.0, -(i as f64) - 0.5));
        let r = realify_columns(&z, 1e-12);
        assert_eq!(r.ncols(), 2);
        assert_eq!(r[(0, 0)], 1.0);
        assert_eq!(r[(0, 1)], -0.5);
    }

    #[test]
    fn purely_imaginary_column_keeps_only_imag() {
        let z = ZMat::from_fn(2, 1, |i, _| c64::new(0.0, (i + 1) as f64));
        let r = realify_columns(&z, 1e-9);
        assert_eq!(r.ncols(), 1);
        assert_eq!(r[(1, 0)], 2.0);
    }
}
