//! Realification of complex sample blocks.
//!
//! Projection bases must be real for the reduced models to be usable in
//! time-domain simulation (paper Section V-C). A complex sample column
//! `z` taken at `s` together with its conjugate (taken implicitly at
//! `s̄`, step 5 of Algorithm 1) spans the same space as `[Re z, Im z]` —
//! so we store the real and imaginary parts instead.

use numkit::{DMat, ZMat};

/// Expands complex columns into real/imaginary column pairs.
///
/// For each column `z` of `z_cols`, appends `Re z`, and also `Im z`
/// whenever its norm exceeds `drop_tol` times the column norm (columns
/// from real sample points have negligible imaginary parts and
/// contribute one real column, matching Algorithm 1's case split).
pub fn realify_columns(z_cols: &ZMat, drop_tol: f64) -> DMat {
    let n = z_cols.nrows();
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(2 * z_cols.ncols());
    for j in 0..z_cols.ncols() {
        let col = z_cols.col(j);
        let re: Vec<f64> = col.iter().map(|v| v.re).collect();
        let im: Vec<f64> = col.iter().map(|v| v.im).collect();
        let total: f64 = col.iter().map(|v| v.abs_sq()).sum::<f64>().sqrt();
        let re_norm: f64 = re.iter().map(|v| v * v).sum::<f64>().sqrt();
        let im_norm: f64 = im.iter().map(|v| v * v).sum::<f64>().sqrt();
        if re_norm > drop_tol * total {
            cols.push(re);
        }
        if im_norm > drop_tol * total {
            cols.push(im);
        }
    }
    if cols.is_empty() {
        return DMat::zeros(n, 0);
    }
    DMat::from_cols(&cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numkit::c64;

    #[test]
    fn real_columns_stay_single() {
        let z = ZMat::from_fn(3, 2, |i, j| c64::from_real((i + j + 1) as f64));
        let r = realify_columns(&z, 1e-12);
        assert_eq!(r.ncols(), 2);
        assert_eq!(r[(2, 1)], 4.0);
    }

    #[test]
    fn complex_columns_split_into_pairs() {
        let z = ZMat::from_fn(3, 1, |i, _| c64::new(i as f64 + 1.0, -(i as f64) - 0.5));
        let r = realify_columns(&z, 1e-12);
        assert_eq!(r.ncols(), 2);
        assert_eq!(r[(0, 0)], 1.0);
        assert_eq!(r[(0, 1)], -0.5);
    }

    #[test]
    fn purely_imaginary_column_keeps_only_imag() {
        let z = ZMat::from_fn(2, 1, |i, _| c64::new(0.0, (i + 1) as f64));
        let r = realify_columns(&z, 1e-9);
        assert_eq!(r.ncols(), 1);
        assert_eq!(r[(1, 0)], 2.0);
    }
}
