//! The multipoint shifted-solve engine: one symbolic analysis, many
//! numeric factorizations, optional thread fan-out.
//!
//! Every multipoint algorithm in this workspace — PMTBR sampling,
//! frequency-response sweeps, rational Krylov — spends its time solving
//! `(sₖ·E − A)·Z = Rₖ` at a list of shifts. The naive loop pays three
//! per-shift costs that are actually shift-independent:
//!
//! 1. building and sorting a fresh triplet list for the pencil,
//! 2. the symbolic LU analysis (DFS reach, fill pattern, pivot search),
//! 3. serial execution even though the shifts are independent.
//!
//! [`ShiftSolveEngine`] eliminates all three: the pencil pattern is merged
//! once ([`ShiftedPencilAssembler`]), the symbolic analysis from the first
//! shift is reused by [`sparsekit::SymbolicLu::refactor`] at every other
//! shift (with an automatic fall back to a fresh factorization if a frozen
//! pivot vanishes), and the per-shift work is fanned across a scoped
//! thread pool.
//!
//! # Determinism
//!
//! Results are index-ordered and bit-identical for every thread count:
//! the first shift is factored (and its symbolic analysis recorded) on the
//! calling thread before any fan-out, so each remaining shift performs
//! exactly the same arithmetic regardless of how work is scheduled.

use numkit::par::{num_threads, par_map_with, try_par_map_with};
use numkit::{c64, NumError, ZMat};
use sparsekit::{residual_norm, residual_norm_transpose, SparseLu, SymbolicLu};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

use crate::descriptor::ShiftedPencilAssembler;
use crate::tolerant::{
    RecoveryPolicy, ShiftOutcome, ShiftReport, SolveFault, SweepRhs, TolerantSweep,
};
use crate::Descriptor;

/// A reusable engine for solving `(s·E − A)·Z = R` at many shifts.
///
/// Create one per sweep via [`ShiftSolveEngine::new`] (or
/// [`ShiftSolveEngine::new_transposed`] for observability-side solves) and
/// call [`solve_many`](ShiftSolveEngine::solve_many) /
/// [`solve_pairs`](ShiftSolveEngine::solve_pairs).
#[derive(Debug)]
pub struct ShiftSolveEngine {
    asm: ShiftedPencilAssembler,
    symbolic: OnceLock<SymbolicLu>,
    /// The shift and factorization that primed the tolerant ladder —
    /// reused verbatim ([`ShiftOutcome::Reused`]) when another sweep
    /// index requests the identical shift.
    primer: OnceLock<(c64, SparseLu<c64>)>,
}

impl ShiftSolveEngine {
    /// Engine for the forward pencil `s·E − A` of `sys`.
    pub fn new(sys: &Descriptor) -> Self {
        ShiftSolveEngine {
            asm: sys.pencil_assembler(),
            symbolic: OnceLock::new(),
            primer: OnceLock::new(),
        }
    }

    /// Engine for the transposed pencil `(s·E − A)ᵀ` of `sys`.
    pub fn new_transposed(sys: &Descriptor) -> Self {
        ShiftSolveEngine {
            asm: sys.pencil_assembler_transpose(),
            symbolic: OnceLock::new(),
            primer: OnceLock::new(),
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.asm.dim()
    }

    /// `true` once a symbolic analysis has been recorded.
    pub fn is_primed(&self) -> bool {
        self.symbolic.get().is_some()
    }

    /// Factors the pencil at one shift, reusing the recorded symbolic
    /// analysis when available. The first successful fresh factorization
    /// records its analysis for subsequent calls.
    ///
    /// # Errors
    ///
    /// [`NumError::Singular`] if `s` is a generalized eigenvalue of the
    /// pencil (after the fresh-factorization fallback also fails).
    pub fn factor(&self, s: c64) -> Result<SparseLu<c64>, NumError> {
        let a = self.asm.assemble(s);
        if let Some(sym) = self.symbolic.get() {
            match sym.refactor(&a) {
                Ok(f) => return Ok(f),
                // A frozen pivot vanished at this particular shift:
                // fall back to a fresh factorization with pivoting.
                Err(NumError::Singular { .. }) => {}
                Err(e) => return Err(e),
            }
            return SparseLu::new(&a);
        }
        let f = SparseLu::new(&a)?;
        let _ = self.symbolic.set(f.symbolic(&a));
        Ok(f)
    }

    /// Solves `(s·E − A)·Z = rhs` at one shift.
    ///
    /// # Errors
    ///
    /// See [`ShiftSolveEngine::factor`]; shape errors from the solve.
    pub fn solve(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError> {
        self.factor(s)?.solve_mat(rhs)
    }

    /// Solves the pencil at every shift against one shared right-hand
    /// side, fanning across `threads` workers ([`num_threads`] picks a
    /// default). Output order matches `shifts`, and the numeric results
    /// are identical for every thread count.
    ///
    /// # Errors
    ///
    /// The first per-shift failure, in index order.
    pub fn solve_many(
        &self,
        shifts: &[c64],
        rhs: &ZMat,
        threads: usize,
    ) -> Result<Vec<ZMat>, NumError> {
        self.run_indexed(shifts, threads, |i, f| f.solve_mat(rhs).map(|z| (i, z)))
    }

    /// Solves the pencil at every shift against a per-shift right-hand
    /// side (`rhss[k]` pairs with `shifts[k]`) — the shape needed by
    /// input-correlated sampling, where each sample point carries its own
    /// weighted excitation.
    ///
    /// # Errors
    ///
    /// [`NumError::ShapeMismatch`] if the lists differ in length; else as
    /// [`ShiftSolveEngine::solve_many`].
    pub fn solve_pairs(
        &self,
        shifts: &[c64],
        rhss: &[ZMat],
        threads: usize,
    ) -> Result<Vec<ZMat>, NumError> {
        if shifts.len() != rhss.len() {
            return Err(NumError::ShapeMismatch {
                operation: "shift engine solve_pairs",
                left: (shifts.len(), 1),
                right: (rhss.len(), 1),
            });
        }
        self.run_indexed(shifts, threads, |i, f| f.solve_mat(&rhss[i]).map(|z| (i, z)))
    }

    /// Shared driver: primes the symbolic analysis with the first shift on
    /// the calling thread, then fans the remaining shifts across workers.
    fn run_indexed<F>(&self, shifts: &[c64], threads: usize, per_shift: F) -> Result<Vec<ZMat>, NumError>
    where
        F: Fn(usize, &SparseLu<c64>) -> Result<(usize, ZMat), NumError> + Sync,
    {
        if shifts.is_empty() {
            return Ok(Vec::new());
        }
        // Prime deterministically: the first shift's factorization seeds
        // the symbolic analysis before any worker runs.
        let first = {
            let _sp = obs::item_span("shift", 0, "solve");
            per_shift(0, &self.factor(shifts[0])?)?
        };
        let rest = par_map_with(shifts.len() - 1, threads, |i| {
            let _sp = obs::item_span("shift", (i + 1) as u64, "solve");
            self.factor(shifts[i + 1]).and_then(|f| per_shift(i + 1, &f))
        });
        let mut out = Vec::with_capacity(shifts.len());
        out.push(first.1);
        for r in rest {
            out.push(r?.1);
        }
        Ok(out)
    }

    /// Fault-tolerant multipoint solve: runs the per-shift escalation
    /// ladder at every shift and always returns, with `None` (and a
    /// [`ShiftOutcome::Dropped`] report) for shifts no rung could save.
    ///
    /// The ladder rungs, in order:
    ///
    /// 1. **reuse** — if the shift bit-equals the shift that primed the
    ///    engine, the primer factorization is reused verbatim;
    /// 2. **refactor** — numeric-only refactorization on the recorded
    ///    symbolic analysis (frozen pivot order);
    /// 3. **refresh** — fresh factorization with full partial pivoting;
    /// 4. **refine** — iterative refinement on whichever factorization
    ///    solved, until the certified residual meets the policy;
    /// 5. **perturb** — deterministic shift nudges `s·(1 + j·ε)`,
    ///    `j = 1..=max_perturb`, each with a fresh factorization;
    /// 6. **drop** — mark the sample failed.
    ///
    /// Every accepted solution carries a certified relative residual
    /// (see [`sparsekit::residual_norm`]); factorizations whose pivot
    /// growth exceeds the policy limit are rejected without solving.
    ///
    /// # Determinism
    ///
    /// Shifts are laddered sequentially on the calling thread until one
    /// primes the engine (records its symbolic analysis and primer
    /// factorization); only then do the remaining shifts fan out, and
    /// workers never mutate engine state. Results — values, outcomes,
    /// and reports — are therefore bit-identical for every thread
    /// count. Worker panics (real or injected via [`SolveFault`]) are
    /// contained per index and surfaced as dropped samples carrying
    /// [`NumError::WorkerPanicked`].
    pub fn solve_many_tolerant(
        &self,
        shifts: &[c64],
        rhs: &ZMat,
        threads: usize,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> TolerantSweep {
        self.tolerant_driver(shifts, SweepRhs::Shared(rhs), None, threads, policy, faults).0
    }

    /// Fault-tolerant *two-sided* multipoint solve sharing one
    /// factorization per shift: at every shift the ladder factors the
    /// forward pencil `s·E − A` once, solves it against `rhs` for the
    /// controllability side, and solves the *transposed* system
    /// `(s·E − A)ᵀ·Z = rhs_t` through the same `P·A = L·U`
    /// ([`sparsekit::SparseLu::solve_mat_transpose`]) for the
    /// observability side — halving the LU work of the balanced and
    /// cross-Gramian double sweeps.
    ///
    /// A rung is accepted only when *both* sides certify their residual,
    /// so the two returned sweeps drop the same shifts, carry identical
    /// reports, and use the same (possibly perturbed) `s_used` on both
    /// sides — eliminating the side-mismatch a pair of independent
    /// sweeps could produce under perturbation.
    ///
    /// Determinism matches [`ShiftSolveEngine::solve_many_tolerant`]:
    /// index-ordered, bit-identical for every thread count.
    pub fn solve_two_sided_tolerant(
        &self,
        shifts: &[c64],
        rhs: &ZMat,
        rhs_t: &ZMat,
        threads: usize,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> (TolerantSweep, TolerantSweep) {
        let (fwd, trans) =
            self.tolerant_driver(shifts, SweepRhs::Shared(rhs), Some(rhs_t), threads, policy, faults);
        // The driver always produces the transpose sweep when rhs_t is
        // given; an empty sweep can only mean an empty shift list.
        (fwd, trans.unwrap_or(TolerantSweep { solutions: Vec::new(), reports: Vec::new() }))
    }

    /// Fault-tolerant multipoint solve with a per-shift right-hand side
    /// (`rhss[k]` pairs with `shifts[k]`) — the tolerant counterpart of
    /// [`ShiftSolveEngine::solve_pairs`], with the same ladder,
    /// determinism, and panic-containment guarantees as
    /// [`ShiftSolveEngine::solve_many_tolerant`].
    ///
    /// # Errors
    ///
    /// [`NumError::ShapeMismatch`] if the lists differ in length; the
    /// sweep itself always returns (drops are reported, not raised).
    pub fn solve_pairs_tolerant(
        &self,
        shifts: &[c64],
        rhss: &[ZMat],
        threads: usize,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> Result<TolerantSweep, NumError> {
        if shifts.len() != rhss.len() {
            return Err(NumError::ShapeMismatch {
                operation: "shift engine solve_pairs_tolerant",
                left: (shifts.len(), 1),
                right: (rhss.len(), 1),
            });
        }
        Ok(self
            .tolerant_driver(shifts, SweepRhs::PerShift(rhss), None, threads, policy, faults)
            .0)
    }

    /// Shared tolerant driver behind the shared-rhs, per-shift-rhs, and
    /// two-sided entry points. When `trans_rhs` is given, every accepted
    /// shift also carries an observability solution computed through the
    /// same factorization, returned as a second sweep with cloned
    /// reports.
    fn tolerant_driver(
        &self,
        shifts: &[c64],
        rhs: SweepRhs<'_>,
        trans_rhs: Option<&ZMat>,
        threads: usize,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
    ) -> (TolerantSweep, Option<TolerantSweep>) {
        let n = shifts.len();
        let mut solutions: Vec<Option<ZMat>> = Vec::with_capacity(n);
        let mut solutions_t: Vec<Option<ZMat>> = Vec::with_capacity(n);
        let mut reports: Vec<ShiftReport> = Vec::with_capacity(n);
        // Sequential priming: ladder shifts on the calling thread until
        // one succeeds with a fresh factorization (recording symbolic +
        // primer). A dropped shift just moves priming to the next index.
        let mut k = 0;
        while k < n && !self.is_primed() {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                self.ladder(k, shifts[k], rhs.get(k), trans_rhs, policy, faults, true)
            }));
            let (sol, sol_t, rep) = attempt.unwrap_or_else(|_| {
                (
                    None,
                    None,
                    ShiftReport::dropped(
                        k,
                        shifts[k],
                        Some(NumError::WorkerPanicked { index: k }),
                    ),
                )
            });
            solutions.push(sol);
            solutions_t.push(sol_t);
            reports.push(rep);
            k += 1;
        }
        // Fan out the rest; workers only read the primed state.
        let rest = try_par_map_with(n - k, threads, |i| {
            Ok(self.ladder(k + i, shifts[k + i], rhs.get(k + i), trans_rhs, policy, faults, false))
        });
        for (i, r) in rest.into_iter().enumerate() {
            let index = k + i;
            let (sol, sol_t, rep) = match r {
                Ok(triple) => triple,
                // The worker panicked (contained by the pool): the
                // sample is dropped with the panic recorded.
                Err(_) => (
                    None,
                    None,
                    ShiftReport::dropped(
                        index,
                        shifts[index],
                        Some(NumError::WorkerPanicked { index }),
                    ),
                ),
            };
            solutions.push(sol);
            solutions_t.push(sol_t);
            reports.push(rep);
        }
        let trans = trans_rhs
            .map(|_| TolerantSweep { solutions: solutions_t, reports: reports.clone() });
        (TolerantSweep { solutions, reports }, trans)
    }

    /// One shift through the escalation ladder. `prime` is true only
    /// during the sequential priming phase; an accepted fresh
    /// factorization then records the engine's symbolic analysis and
    /// primer cache. With `trans_rhs`, a rung must also certify the
    /// transposed solve through the same factorization before it is
    /// accepted.
    #[allow(clippy::too_many_arguments)]
    fn ladder(
        &self,
        index: usize,
        s_req: c64,
        rhs: &ZMat,
        trans_rhs: Option<&ZMat>,
        policy: &RecoveryPolicy,
        faults: &dyn SolveFault,
        prime: bool,
    ) -> (Option<ZMat>, Option<ZMat>, ShiftReport) {
        #[derive(Clone, Copy, PartialEq)]
        enum Cand {
            Reuse,
            Refactor,
            Fresh,
        }
        // Root span opened before the panic hook so an injected unwind
        // still records the ladder's exit event (the guard flushes during
        // unwinding, and the fault plan is deterministic).
        let mut sp = obs::item_span("shift", index as u64, "ladder");
        // Cooperative cancellation, polled once per sweep iteration:
        // a raised token drops this shift before any factorization work.
        if policy.is_cancelled() {
            obs::counters::add(obs::Counter::ShiftDropped, 1);
            sp.field_str("outcome", "dropped");
            return (None, None, ShiftReport::dropped(index, s_req, Some(NumError::Cancelled)));
        }
        if faults.inject_panic(index) {
            // numlint:allow(PANIC01, ERR01, PANIC02) deliberate fault injection; contained by the pool as NumError::WorkerPanicked
            panic!("injected worker panic at shift index {index}");
        }
        // `attempt` counts factorization attempts for the fault hooks:
        // at a primed engine, 0 = refactor, 1 = fresh, 1+j = fresh at
        // perturbation level j.
        let mut attempt = 0usize;
        let mut last_err: Option<NumError> = None;
        let mut last_residual = f64::NAN;
        for level in 0..=policy.max_perturb {
            let s = policy.perturbed(s_req, level);
            let a = self.asm.assemble(s);
            let mut cands = Vec::with_capacity(3);
            if level == 0 {
                if matches!(self.primer.get(), Some((ps, _)) if *ps == s) {
                    cands.push(Cand::Reuse);
                }
                if self.symbolic.get().is_some() {
                    cands.push(Cand::Refactor);
                }
            }
            cands.push(Cand::Fresh);
            for cand in cands {
                let this_attempt = attempt;
                attempt += 1;
                if obs::is_enabled() {
                    let cand_label = match cand {
                        Cand::Reuse => "reuse",
                        Cand::Refactor => "refactor",
                        Cand::Fresh => "fresh",
                    };
                    obs::event(
                        "rung",
                        vec![
                            ("level", obs::Value::U64(level as u64)),
                            ("cand", obs::Value::Str(cand_label.to_string())),
                            ("attempt", obs::Value::U64(this_attempt as u64)),
                        ],
                    );
                }
                if let Some(e) = faults.inject_error(index, this_attempt) {
                    last_err = Some(e);
                    continue;
                }
                // `owned` holds factorizations computed here (refactor /
                // fresh); the reuse rung borrows the engine's primer.
                let owned: Option<SparseLu<c64>> = match cand {
                    Cand::Reuse => None,
                    Cand::Refactor => match self.symbolic.get() {
                        Some(sym) => match sym.refactor(&a) {
                            Ok(f) => Some(f),
                            Err(e) => {
                                last_err = Some(e);
                                continue;
                            }
                        },
                        None => continue,
                    },
                    Cand::Fresh => match SparseLu::new(&a) {
                        Ok(f) => Some(f),
                        Err(e) => {
                            last_err = Some(e);
                            continue;
                        }
                    },
                };
                let f: &SparseLu<c64> = match (&owned, self.primer.get()) {
                    (Some(f), _) => f,
                    (None, Some((_, pf))) => pf,
                    (None, None) => continue,
                };
                // A factorization with explosive pivot growth is not
                // worth certifying — escalate immediately.
                if !(f.pivot_growth() <= policy.growth_limit) {
                    continue;
                }
                let mut x = match f.solve_mat(rhs) {
                    Ok(x) => x,
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                };
                faults.corrupt(index, this_attempt, &mut x);
                let mut residual = residual_norm(&a, &x, rhs);
                let mut refine_steps = 0;
                while residual.is_finite()
                    && residual > policy.residual_tol
                    && refine_steps < policy.refine_steps
                {
                    match f.refine_mat(&a, rhs, &mut x) {
                        Ok(next) => {
                            refine_steps += 1;
                            if !(next < residual) {
                                residual = next.min(residual);
                                break;
                            }
                            residual = next;
                        }
                        Err(e) => {
                            last_err = Some(e);
                            break;
                        }
                    }
                }
                last_residual = residual;
                if residual.is_finite() && residual <= policy.residual_tol {
                    // Two-sided rungs: the observability side must
                    // certify through the SAME factorization (transpose
                    // solve + refinement) or the rung escalates as a
                    // whole, keeping both sides at one s_used.
                    let mut x_t: Option<ZMat> = None;
                    if let Some(bt) = trans_rhs {
                        let mut xt = match f.solve_mat_transpose(bt) {
                            Ok(xt) => xt,
                            Err(e) => {
                                last_err = Some(e);
                                continue;
                            }
                        };
                        let mut res_t = residual_norm_transpose(&a, &xt, bt);
                        let mut steps_t = 0;
                        while res_t.is_finite()
                            && res_t > policy.residual_tol
                            && steps_t < policy.refine_steps
                        {
                            match f.refine_mat_transpose(&a, bt, &mut xt) {
                                Ok(next) => {
                                    steps_t += 1;
                                    if !(next < res_t) {
                                        res_t = next.min(res_t);
                                        break;
                                    }
                                    res_t = next;
                                }
                                Err(e) => {
                                    last_err = Some(e);
                                    break;
                                }
                            }
                        }
                        if !(res_t.is_finite() && res_t <= policy.residual_tol) {
                            last_residual = res_t;
                            continue;
                        }
                        sp.field_f64("residual_t", res_t);
                        x_t = Some(xt);
                    }
                    let outcome = if level > 0 {
                        ShiftOutcome::Perturbed { attempts: level }
                    } else if refine_steps > 0 {
                        ShiftOutcome::Refined
                    } else {
                        match cand {
                            Cand::Reuse => ShiftOutcome::Reused,
                            Cand::Refactor => ShiftOutcome::Refactored,
                            Cand::Fresh => ShiftOutcome::Refreshed,
                        }
                    };
                    let rcond = if policy.estimate_condition {
                        f.rcond1_estimate(&a)
                    } else {
                        f64::NAN
                    };
                    let pivot_growth = f.pivot_growth();
                    if prime {
                        // Priming always accepts through a fresh
                        // factorization (nothing else exists yet):
                        // record its symbolic analysis and cache it as
                        // the primer for the reuse rung.
                        if let Some(fresh) = owned {
                            let _ = self.symbolic.set(fresh.symbolic(&a));
                            let _ = self.primer.set((s, fresh));
                        }
                    }
                    if cand == Cand::Reuse {
                        obs::counters::add(obs::Counter::LuReuseHit, 1);
                    }
                    sp.field_str("outcome", outcome.label());
                    sp.field_f64("residual", residual);
                    sp.field_u64("refine_steps", refine_steps as u64);
                    sp.field_u64("level", level as u64);
                    sp.field_f64("growth", pivot_growth);
                    sp.field_f64("rcond", rcond);
                    let report = ShiftReport {
                        index,
                        s_requested: s_req,
                        s_used: s,
                        outcome,
                        residual,
                        rcond,
                        pivot_growth,
                        refine_steps,
                        error: None,
                    };
                    return (Some(x), x_t, report);
                }
            }
        }
        obs::counters::add(obs::Counter::ShiftDropped, 1);
        sp.field_str("outcome", "dropped");
        sp.field_f64("residual", last_residual);
        let mut report = ShiftReport::dropped(index, s_req, last_err);
        report.residual = last_residual;
        (None, None, report)
    }
}

/// Convenience: solves at many shifts with the default thread count.
///
/// # Errors
///
/// See [`ShiftSolveEngine::solve_many`].
pub fn solve_shifted_sweep(
    sys: &Descriptor,
    shifts: &[c64],
    rhs: &ZMat,
) -> Result<Vec<ZMat>, NumError> {
    ShiftSolveEngine::new(sys).solve_many(shifts, rhs, num_threads())
}

#[cfg(test)]
mod tests {
    use super::*;
    use numkit::DMat;
    use sparsekit::Triplet;

    /// RC ladder descriptor: n nodes, unit R chain, unit C to ground.
    fn rc_ladder(n: usize) -> Descriptor {
        let mut g = Triplet::new(n, n);
        for i in 0..n - 1 {
            g.push(i, i, 1.0);
            g.push(i + 1, i + 1, 1.0);
            g.push(i, i + 1, -1.0);
            g.push(i + 1, i, -1.0);
        }
        g.push(0, 0, 1.0);
        let a = {
            let mut t = Triplet::new(n, n);
            for (i, j, v) in g.to_csr().iter() {
                t.push(i, j, -v);
            }
            t.to_csr()
        };
        let mut cm = Triplet::new(n, n);
        for i in 0..n {
            cm.push(i, i, 1.0);
        }
        let mut b = DMat::zeros(n, 1);
        b[(0, 0)] = 1.0;
        let mut c = DMat::zeros(1, n);
        c[(0, n - 1)] = 1.0;
        Descriptor::new(cm.to_csr(), a, b, c, None).unwrap()
    }

    #[test]
    fn engine_matches_per_shift_factorization() {
        let sys = rc_ladder(12);
        let rhs = sys.b.to_complex();
        let shifts: Vec<c64> = (0..7).map(|k| c64::new(0.0, 0.3 * k as f64)).collect();
        let engine = ShiftSolveEngine::new(&sys);
        let zs = engine.solve_many(&shifts, &rhs, 1).unwrap();
        assert!(engine.is_primed());
        for (k, &s) in shifts.iter().enumerate() {
            let direct = sys.solve_shifted(s, &rhs).unwrap();
            assert!((&zs[k] - &direct).norm_max() < 1e-10, "shift {k}");
        }
    }

    #[test]
    fn engine_deterministic_across_thread_counts() {
        let sys = rc_ladder(15);
        let rhs = sys.b.to_complex();
        let shifts: Vec<c64> = (0..9).map(|k| c64::new(0.01, (k * k) as f64 * 0.1)).collect();
        let baseline =
            ShiftSolveEngine::new(&sys).solve_many(&shifts, &rhs, 1).unwrap();
        for threads in [2usize, 4, 8] {
            let zs = ShiftSolveEngine::new(&sys).solve_many(&shifts, &rhs, threads).unwrap();
            for (k, (z, b)) in zs.iter().zip(&baseline).enumerate() {
                assert_eq!(z, b, "threads {threads} shift {k}: must be bit-identical");
            }
        }
    }

    #[test]
    fn engine_transpose_matches_direct() {
        let sys = rc_ladder(10);
        let rhs = sys.c.adjoint().to_complex();
        let shifts = [c64::new(0.0, 0.5), c64::new(0.0, 2.0)];
        let engine = ShiftSolveEngine::new_transposed(&sys);
        let zs = engine.solve_many(&shifts, &rhs, 2).unwrap();
        for (k, &s) in shifts.iter().enumerate() {
            let direct = sys.solve_shifted_transpose(s, &rhs).unwrap();
            assert!((&zs[k] - &direct).norm_max() < 1e-10, "shift {k}");
        }
    }

    #[test]
    fn engine_pairs_uses_matching_rhs() {
        let sys = rc_ladder(8);
        let shifts = [c64::new(0.0, 1.0), c64::new(0.0, 3.0)];
        let r0 = sys.b.to_complex();
        let r1 = sys.b.to_complex().scale(2.0);
        let zs = ShiftSolveEngine::new(&sys)
            .solve_pairs(&shifts, &[r0.clone(), r1.clone()], 2)
            .unwrap();
        let d0 = sys.solve_shifted(shifts[0], &r0).unwrap();
        let d1 = sys.solve_shifted(shifts[1], &r1).unwrap();
        assert!((&zs[0] - &d0).norm_max() < 1e-10);
        assert!((&zs[1] - &d1).norm_max() < 1e-10);
        assert!(ShiftSolveEngine::new(&sys)
            .solve_pairs(&shifts, &[r0], 1)
            .is_err());
    }

    #[test]
    fn assembler_matches_triplet_construction() {
        let sys = rc_ladder(9);
        let asm = sys.pencil_assembler();
        for &w in &[0.0, 0.7, 13.0] {
            let s = c64::new(0.0, w);
            let fast = asm.assemble(s).to_dense();
            let slow = {
                let mut t = Triplet::<c64>::new(9, 9);
                for (i, j, v) in sys.e.iter() {
                    t.push(i, j, s.scale(v));
                }
                for (i, j, v) in sys.a.iter() {
                    t.push(i, j, c64::from_real(-v));
                }
                t.to_csc().to_dense()
            };
            for i in 0..9 {
                for j in 0..9 {
                    assert!((fast[(i, j)] - slow[(i, j)]).abs() < 1e-15, "({i},{j}) w={w}");
                }
            }
        }
    }

    #[test]
    fn sweep_helper_runs() {
        let sys = rc_ladder(6);
        let zs = solve_shifted_sweep(
            &sys,
            &[c64::new(0.0, 1.0)],
            &sys.b.to_complex(),
        )
        .unwrap();
        assert_eq!(zs.len(), 1);
        assert_eq!(zs[0].nrows(), 6);
    }
}
