//! # lti — LTI systems, Gramians, exact TBR, and simulation
//!
//! The control-theoretic substrate of the PMTBR reproduction:
//!
//! - [`StateSpace`] (dense) and [`Descriptor`] (sparse, possibly
//!   singular-`E`) models, unified by the [`LtiSystem`] trait;
//! - Bartels–Stewart [`lyap`]/[`sylvester`] solvers and the exact
//!   [`tbr`] baseline with Hankel singular values and the classical
//!   `2·Σσ` error bound;
//! - the cross-Gramian method of the paper's Section V-D;
//! - frequency sweeps ([`frequency_response`]) and trapezoidal transient
//!   simulation ([`simulate_descriptor`], [`simulate_ss`]), plus exact
//!   ZOH/Tustin discretization ([`c2d_zoh`], [`c2d_tustin`]);
//! - frequency-limited (Gawronski–Juang) Gramians and TBR
//!   ([`frequency_limited_tbr`]) — the exact counterpart of
//!   frequency-selective PMTBR;
//! - balanced residualization ([`tbr_residualized`], dc-exact) and the
//!   [`h2_norm`];
//! - sampled passivity verification ([`is_passive_sampled`]);
//! - the waveform generators behind the input-correlated experiments
//!   ([`dithered_square_inputs`], [`latent_mixture_inputs`]) and state
//!   snapshots for empirical Gramians ([`state_snapshots`]).
//!
//! ```
//! use lti::{hankel_singular_values, tbr, StateSpace};
//! use numkit::DMat;
//!
//! # fn main() -> Result<(), numkit::NumError> {
//! let sys = StateSpace::new(
//!     DMat::from_diag(&[-1.0, -10.0, -100.0]),
//!     DMat::from_rows(&[&[1.0], &[1.0], &[0.01]]),
//!     DMat::from_rows(&[&[1.0, 1.0, 0.01]]),
//!     None,
//! )?;
//! let hsv = hankel_singular_values(&sys)?;
//! assert!(hsv[0] > hsv[2]);
//! let reduced = tbr(&sys, 2)?;
//! assert!(reduced.error_bound < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `NumError`, not abort: panics
// are reserved for violated internal invariants (and tests).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod compose;
mod descriptor;
mod discretize;
mod freq;
mod freqlim;
pub mod hash;
mod lyap;
mod passivity;
mod realify;
mod shift_engine;
mod signal;
mod snapshots;
mod ss;
mod system;
mod tbr;
mod tolerant;
mod transient;
mod weighted;

pub use descriptor::{Descriptor, ShiftedPencilAssembler};
pub use discretize::{c2d_tustin, c2d_zoh, DiscreteStateSpace};
pub use freq::{
    frequency_response, hinf_estimate, linspace, logspace, max_abs_error, max_rel_error,
    FreqResponse,
};
pub use freqlim::{band_controllability_gramian, band_observability_gramian, frequency_limited_tbr};
pub use lyap::{lyap, lyap_residual, sylvester};
pub use passivity::{hermitian_part_eigenvalues, is_passive_sampled, passivity_margin};
pub use realify::{realified_ncols, realify_columns, realify_columns_into};
pub use shift_engine::{solve_shifted_sweep, ShiftSolveEngine};
pub use signal::{
    correlation_rank, dithered_square_inputs, input_correlation_svd, latent_mixture_inputs,
    random_phase_square_inputs, SquareWave,
};
pub use snapshots::state_snapshots;
pub use ss::StateSpace;
pub use system::LtiSystem;
pub use tbr::{
    controllability_gramian, correlated_controllability_gramian, cross_gramian,
    cross_gramian_reduce, h2_norm, hankel_from_gramians, hankel_singular_values,
    observability_gramian, tbr, tbr_error_bounds, tbr_from_gramians, tbr_residualized, TbrModel,
};
pub use tolerant::{
    operator_residual, NoFaults, RecoveryPolicy, ShiftOutcome, ShiftReport, SolveFault,
    TolerantSweep,
};
pub use transient::{max_transient_error, simulate_descriptor, simulate_ss, Transient};
pub use weighted::{weighted_controllability_gramian, weighted_observability_gramian, weighted_tbr};
