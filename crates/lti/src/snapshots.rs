//! State-trajectory snapshots for empirical (data-driven) Gramians.
//!
//! The statistical interpretation of TBR (paper Section IV-A) reads the
//! controllability Gramian as the state covariance `E{x·xᵀ}` under
//! stochastic inputs. Sampling that covariance from simulated
//! trajectories — instead of frequency-domain solves — gives the
//! time-domain sibling of PMTBR (proper orthogonal decomposition);
//! this module produces the snapshot matrices.

use numkit::{DMat, NumError};
use sparsekit::{SparseLu, Triplet};

use crate::Descriptor;

/// Simulates `E·ẋ = A·x + B·u` from rest with the trapezoidal rule and
/// collects every `stride`-th state vector as a column of the returned
/// `n × ⌈nt/stride⌉` snapshot matrix.
///
/// # Errors
///
/// Same conditions as [`crate::simulate_descriptor`], plus
/// [`NumError::InvalidArgument`] for `stride == 0`.
///
/// # Examples
///
/// See the `pmtbr::pod_reduce` documentation for an end-to-end example;
/// this function is its simulation front half.
pub fn state_snapshots(
    sys: &Descriptor,
    u: &DMat,
    h: f64,
    stride: usize,
) -> Result<DMat, NumError> {
    if u.nrows() != sys.ninputs() {
        return Err(NumError::ShapeMismatch {
            operation: "snapshot inputs",
            left: (sys.ninputs(), 0),
            right: u.shape(),
        });
    }
    if !(h > 0.0 && h.is_finite()) {
        return Err(NumError::InvalidArgument("time step must be positive and finite"));
    }
    if stride == 0 {
        return Err(NumError::InvalidArgument("snapshot stride must be at least 1"));
    }
    let n = sys.nstates();
    let two_over_h = 2.0 / h;
    let mut lt = Triplet::with_capacity(n, n, sys.e.nnz() + sys.a.nnz());
    for (i, j, v) in sys.e.iter() {
        lt.push(i, j, two_over_h * v);
    }
    for (i, j, v) in sys.a.iter() {
        lt.push(i, j, -v);
    }
    let left = SparseLu::new(&lt.to_csc())?;
    let right = sys.e.add_scaled(two_over_h, &sys.a, 1.0);

    let nt = u.ncols();
    let n_snaps = nt.div_ceil(stride);
    let mut snaps = DMat::zeros(n, n_snaps);
    let mut x = vec![0.0f64; n];
    let mut col = 0;
    for k in 0..nt {
        if k > 0 {
            let up = u.col(k - 1);
            let uc = u.col(k);
            let mut rhs = right.mul_vec(&x);
            for i in 0..n {
                let mut acc = 0.0;
                for j in 0..sys.ninputs() {
                    acc += sys.b[(i, j)] * (up[j] + uc[j]);
                }
                rhs[i] += acc;
            }
            x = left.solve(&rhs)?;
        }
        if k % stride == 0 {
            snaps.set_col(col, &x);
            col += 1;
        }
    }
    Ok(snaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate_descriptor;

    /// Small RC chain descriptor built by hand (lti cannot dev-depend on
    /// the circuits crate without a dependency cycle).
    fn rc_chain(n: usize, ports: &[usize]) -> Descriptor {
        let mut g = Triplet::new(n, n);
        for i in 0..n.saturating_sub(1) {
            g.push(i, i, 1.0);
            g.push(i + 1, i + 1, 1.0);
            g.push(i, i + 1, -1.0);
            g.push(i + 1, i, -1.0);
        }
        for &p in ports {
            g.push(p, p, 0.5);
        }
        let mut e = Triplet::new(n, n);
        for i in 0..n {
            e.push(i, i, 1.0);
        }
        let a = {
            let mut t = Triplet::new(n, n);
            for (i, j, v) in g.to_csr().iter() {
                t.push(i, j, -v);
            }
            t.to_csr()
        };
        let mut b = DMat::zeros(n, ports.len());
        let mut c = DMat::zeros(ports.len(), n);
        for (k, &p) in ports.iter().enumerate() {
            b[(p, k)] = 1.0;
            c[(k, p)] = 1.0;
        }
        Descriptor::new(e.to_csr(), a, b, c, None).unwrap()
    }

    #[test]
    fn snapshot_columns_match_simulation_outputs() {
        // Outputs are C·x; with C selecting port voltages, the output at
        // snapshot times must equal C times the snapshot column.
        let sys = rc_chain(9, &[0, 8]);
        let u = DMat::from_fn(2, 60, |i, k| ((k as f64) * 0.3 + i as f64).sin());
        let h = 0.05;
        let tr = simulate_descriptor(&sys, &u, h).unwrap();
        let snaps = state_snapshots(&sys, &u, h, 3).unwrap();
        for (col, k) in (0..60).step_by(3).enumerate() {
            let xk = snaps.col(col);
            let y = sys.c.mul_vec(&xk);
            for i in 0..2 {
                assert!(
                    (y[i] - tr.y[(i, k)]).abs() < 1e-10,
                    "snapshot/output mismatch at step {k}"
                );
            }
        }
    }

    #[test]
    fn stride_controls_column_count() {
        let sys = rc_chain(4, &[0]);
        let u = DMat::from_fn(1, 10, |_, _| 1.0);
        assert_eq!(state_snapshots(&sys, &u, 0.1, 1).unwrap().ncols(), 10);
        assert_eq!(state_snapshots(&sys, &u, 0.1, 4).unwrap().ncols(), 3);
        assert!(state_snapshots(&sys, &u, 0.1, 0).is_err());
    }
}
