//! Sparse descriptor systems `E·ẋ = A·x + B·u`, `y = C·x + D·u`.
//!
//! This is the natural output of MNA circuit stamping (`E = C`-matrix,
//! `A = −G`-matrix). `E` may be singular — PMTBR and the projection
//! baselines handle that case directly, which is one of the paper's
//! selling points (Section V-A).

use numkit::{c64, DMat, NumError, ZMat};
use sparsekit::{Csc, Csr, SparseLu, Triplet};

use crate::StateSpace;

/// A sparse-matrix descriptor (generalized state-space) model.
#[derive(Debug, Clone)]
pub struct Descriptor {
    /// Descriptor (mass) matrix `E`, `n × n`, possibly singular.
    pub e: Csr<f64>,
    /// State matrix `A`, `n × n`.
    pub a: Csr<f64>,
    /// Input matrix `B`, `n × p`.
    pub b: DMat,
    /// Output matrix `C`, `q × n`.
    pub c: DMat,
    /// Feedthrough `D`, `q × p`.
    pub d: DMat,
}

impl Descriptor {
    /// Creates a descriptor model, validating shapes. Missing `d` is zero.
    ///
    /// # Errors
    ///
    /// Returns shape errors for inconsistent dimensions.
    pub fn new(
        e: Csr<f64>,
        a: Csr<f64>,
        b: DMat,
        c: DMat,
        d: Option<DMat>,
    ) -> Result<Self, NumError> {
        let n = a.nrows();
        if a.nrows() != a.ncols() {
            return Err(NumError::NotSquare { rows: a.nrows(), cols: a.ncols() });
        }
        if e.shape() != a.shape() {
            return Err(NumError::ShapeMismatch {
                operation: "descriptor e",
                left: e.shape(),
                right: a.shape(),
            });
        }
        if b.nrows() != n || c.ncols() != n {
            return Err(NumError::ShapeMismatch {
                operation: "descriptor b/c",
                left: b.shape(),
                right: c.shape(),
            });
        }
        let d = d.unwrap_or_else(|| DMat::zeros(c.nrows(), b.ncols()));
        if d.shape() != (c.nrows(), b.ncols()) {
            return Err(NumError::ShapeMismatch {
                operation: "descriptor d",
                left: (c.nrows(), b.ncols()),
                right: d.shape(),
            });
        }
        Ok(Descriptor { e, a, b, c, d })
    }

    /// Number of states.
    pub fn nstates(&self) -> usize {
        self.a.nrows()
    }

    /// Number of inputs.
    pub fn ninputs(&self) -> usize {
        self.b.ncols()
    }

    /// Number of outputs.
    pub fn noutputs(&self) -> usize {
        self.c.nrows()
    }

    /// Factors the complex shifted pencil `(s·E − A)`.
    ///
    /// Callers doing many solves at one frequency should reuse the
    /// returned factorization (C-INTERMEDIATE).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] if `s` is a generalized eigenvalue.
    pub fn factor_shifted(&self, s: c64) -> Result<SparseLu<c64>, NumError> {
        let n = self.nstates();
        let mut t = Triplet::<c64>::with_capacity(n, n, self.e.nnz() + self.a.nnz());
        for (i, j, v) in self.e.iter() {
            t.push(i, j, s.scale(v));
        }
        for (i, j, v) in self.a.iter() {
            t.push(i, j, c64::from_real(-v));
        }
        SparseLu::new(&t.to_csc())
    }

    /// Factors the transposed shifted pencil `(s·E − A)ᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] if `s` is a generalized eigenvalue.
    pub fn factor_shifted_transpose(&self, s: c64) -> Result<SparseLu<c64>, NumError> {
        let n = self.nstates();
        let mut t = Triplet::<c64>::with_capacity(n, n, self.e.nnz() + self.a.nnz());
        for (i, j, v) in self.e.iter() {
            t.push(j, i, s.scale(v));
        }
        for (i, j, v) in self.a.iter() {
            t.push(j, i, c64::from_real(-v));
        }
        SparseLu::new(&t.to_csc())
    }

    /// Solves `(s·E − A)·Z = R`.
    ///
    /// # Errors
    ///
    /// See [`Descriptor::factor_shifted`].
    pub fn solve_shifted(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError> {
        self.factor_shifted(s)?.solve_mat(rhs)
    }

    /// Solves `(s·E − A)ᵀ·Z = R`.
    ///
    /// # Errors
    ///
    /// See [`Descriptor::factor_shifted_transpose`].
    pub fn solve_shifted_transpose(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError> {
        self.factor_shifted_transpose(s)?.solve_mat(rhs)
    }

    /// Transfer function `H(s) = C·(sE − A)⁻¹·B + D`.
    ///
    /// # Errors
    ///
    /// See [`Descriptor::factor_shifted`].
    pub fn transfer_function(&self, s: c64) -> Result<ZMat, NumError> {
        let z = self.solve_shifted(s, &self.b.to_complex())?;
        let h = self.c.to_complex().matmul(&z)?;
        Ok(&h + &self.d.to_complex())
    }

    /// Converts to an explicit state-space model `ẋ = E⁻¹A·x + E⁻¹B·u`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] if `E` is singular — in that case
    /// only descriptor-aware algorithms (PMTBR, projection) apply.
    pub fn to_state_space(&self) -> Result<StateSpace, NumError> {
        let lu = SparseLu::new(
            &csr_to_csc(&self.e),
        )?;
        let ea = lu.solve_mat(&self.a.to_dense())?;
        let eb = lu.solve_mat(&self.b)?;
        StateSpace::new(ea, eb, self.c.clone(), Some(self.d.clone()))
    }

    /// Content address of the `(E, A, B, C, D)` pencil: a deterministic,
    /// assembly-order-independent structural hash (see [`crate::hash`]).
    /// Equal descriptors hash equally regardless of how their sparse
    /// matrices were stamped; any numeric difference (below the last
    /// ulp included) changes the address. This is the cache key root
    /// for symbolic analyses, factored shifts, and reduced models.
    pub fn pencil_hash(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        h.label("pmtbr-pencil-v1/descriptor");
        h.word(self.nstates() as u64).word(self.ninputs() as u64).word(self.noutputs() as u64);
        h.word(crate::hash::hash_csr(1, &self.e));
        h.word(crate::hash::hash_csr(2, &self.a));
        h.word(crate::hash::hash_dense(3, &self.b));
        h.word(crate::hash::hash_dense(4, &self.c));
        h.word(crate::hash::hash_dense(5, &self.d));
        h.finish()
    }

    /// Builds a [`ShiftedPencilAssembler`] for this system's pencil
    /// `s·E − A` — the fast path for multipoint sweeps.
    pub fn pencil_assembler(&self) -> ShiftedPencilAssembler {
        ShiftedPencilAssembler::new(&self.e, &self.a)
    }

    /// Builds the assembler for the transposed pencil `(s·E − A)ᵀ`.
    pub fn pencil_assembler_transpose(&self) -> ShiftedPencilAssembler {
        ShiftedPencilAssembler::new_transposed(&self.e, &self.a)
    }

    /// Petrov–Galerkin projection onto bases `w`, `v`, returning the small
    /// dense descriptor `(WᵀEV, WᵀAV, WᵀB, CV, D)` converted to a
    /// state-space model (the reduced `WᵀEV` must be invertible).
    ///
    /// Pass `w == v` for a congruence projection, which preserves
    /// passivity for suitably formulated RC/RLC MNA systems
    /// (paper Section V-E).
    ///
    /// # Errors
    ///
    /// Shape errors, or [`NumError::Singular`] if `WᵀEV` is singular.
    pub fn project(&self, w: &DMat, v: &DMat) -> Result<StateSpace, NumError> {
        let n = self.nstates();
        if w.nrows() != n || v.nrows() != n || w.ncols() != v.ncols() {
            return Err(NumError::ShapeMismatch {
                operation: "descriptor projection",
                left: w.shape(),
                right: v.shape(),
            });
        }
        let k = v.ncols();
        // WᵀEV and WᵀAV via sparse row iteration: (sparse · V) then Wᵀ·.
        let ev = sparse_times_dense(&self.e, v);
        let av = sparse_times_dense(&self.a, v);
        let wt = w.transpose();
        let er = wt.matmul(&ev)?;
        let ar = wt.matmul(&av)?;
        let br = wt.matmul(&self.b)?;
        let cr = self.c.matmul(v)?;
        reduce_pencil(er, ar, br, cr, self.d.clone(), k)
    }
}

/// Precomputed merged sparsity of a pencil `s·E − A`.
///
/// Multipoint sampling solves `(sₖ·E − A)·Z = R` at many shifts `sₖ`; the
/// pencil's sparsity structure is the SAME at every shift, so building a
/// fresh triplet list and re-sorting it per shift (what
/// [`Descriptor::factor_shifted`] does) is pure overhead. This assembler
/// merges the patterns of `E` and `A` into one CSC skeleton ONCE, storing
/// the pair `(e, a)` of coefficients at each structural position; forming
/// the pencil at a shift is then a single scaled element-wise combine
/// `s·e − a` into a value array — no sorting, no allocation beyond the
/// output values.
///
/// Positions where `s·e − a` cancels numerically stay structurally
/// present, which is exactly what [`sparsekit::SymbolicLu`] reuse needs:
/// every assembled matrix has the identical structure.
#[derive(Debug, Clone)]
pub struct ShiftedPencilAssembler {
    n: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    /// `(e, a)` coefficients per structural position, column-major.
    coeffs: Vec<(f64, f64)>,
}

impl ShiftedPencilAssembler {
    /// Merges the patterns of `e` and `a` (which must be square and of
    /// equal shape) into the assembler for `s·E − A`.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch (the [`Descriptor`] constructor has
    /// already validated shapes on the public path).
    pub fn new(e: &Csr<f64>, a: &Csr<f64>) -> Self {
        Self::build(e, a, false)
    }

    /// Assembler for the transposed pencil `(s·E − A)ᵀ = s·Eᵀ − Aᵀ`.
    pub fn new_transposed(e: &Csr<f64>, a: &Csr<f64>) -> Self {
        Self::build(e, a, true)
    }

    fn build(e: &Csr<f64>, a: &Csr<f64>, transpose: bool) -> Self {
        assert_eq!(e.shape(), a.shape(), "pencil assembler: shape mismatch");
        assert_eq!(e.nrows(), e.ncols(), "pencil assembler: not square");
        let n = e.nrows();
        // Column-major entry list (col, row, e, a), merged by sorting.
        let mut entries: Vec<(usize, usize, f64, f64)> =
            Vec::with_capacity(e.nnz() + a.nnz());
        for (i, j, v) in e.iter() {
            let (r, c) = if transpose { (j, i) } else { (i, j) };
            entries.push((c, r, v, 0.0));
        }
        for (i, j, v) in a.iter() {
            let (r, c) = if transpose { (j, i) } else { (i, j) };
            entries.push((c, r, 0.0, v));
        }
        entries.sort_unstable_by_key(|x| (x.0, x.1));
        let mut colptr = vec![0usize; n + 1];
        let mut rowidx: Vec<usize> = Vec::with_capacity(entries.len());
        let mut coeffs: Vec<(f64, f64)> = Vec::with_capacity(entries.len());
        let mut last_key: Option<(usize, usize)> = None;
        for (c, r, ev, av) in entries {
            if last_key == Some((c, r)) {
                if let Some(last) = coeffs.last_mut() {
                    last.0 += ev;
                    last.1 += av;
                }
            } else {
                colptr[c + 1] += 1;
                rowidx.push(r);
                coeffs.push((ev, av));
                last_key = Some((c, r));
            }
        }
        for j in 0..n {
            colptr[j + 1] += colptr[j];
        }
        ShiftedPencilAssembler { n, colptr, rowidx, coeffs }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural entries in the merged pattern.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Forms `s·E − A` as a CSC matrix on the precomputed pattern.
    pub fn assemble(&self, s: c64) -> Csc<c64> {
        let values: Vec<c64> =
            self.coeffs.iter().map(|&(ev, av)| s.scale(ev) - c64::from_real(av)).collect();
        Csc::from_raw_parts(self.n, self.n, self.colptr.clone(), self.rowidx.clone(), values)
    }
}

/// Converts a small dense pencil `(Er, Ar, Br, Cr, D)` into an explicit
/// state-space model.
///
/// If `Er` is (numerically) singular, the algebraic directions are
/// eliminated statically, as for an index-1 DAE: in SVD coordinates
/// `Er = U·Σ·Vᵀ` the zero block of `Σ` yields `0 = A_ad·z_d + A_aa·z_a +
/// B_a·u`, which is solved for `z_a` and substituted — producing a
/// smaller ODE *with feedthrough*. This is what makes reduced models of
/// singular-`E` MNA systems (pure resistive nodes at the ports)
/// well-posed.
fn reduce_pencil(
    er: DMat,
    ar: DMat,
    br: DMat,
    cr: DMat,
    d: DMat,
    k: usize,
) -> Result<StateSpace, NumError> {
    let f = numkit::svd(&er)?;
    let rank = f.rank(1e-12);
    if rank == k {
        // Regular pencil: plain inversion.
        let lu = numkit::Lu::new(er)?;
        let a_red = lu.solve_mat(&ar)?;
        let b_red = lu.solve_mat(&br)?;
        return StateSpace::new(a_red, b_red, cr, Some(d));
    }
    if rank == 0 {
        return Err(NumError::InvalidArgument(
            "reduced descriptor is purely algebraic (zero E projection)",
        ));
    }
    // Transform to SVD coordinates: z = V·[z_d; z_a], equations
    // premultiplied by Uᵀ. Σ_d is the invertible block.
    let ut = f.u.adjoint();
    let abar = ut.matmul(&ar.matmul(&f.v)?)?;
    let bbar = ut.matmul(&br)?;
    let cbar = cr.matmul(&f.v)?;
    let na = k - rank;
    let add = abar.block(0, rank, 0, rank);
    let ada = abar.block(0, rank, rank, k);
    let aad = abar.block(rank, k, 0, rank);
    let aaa = abar.block(rank, k, rank, k);
    let bd = bbar.block(0, rank, 0, bbar.ncols());
    let ba = bbar.block(rank, k, 0, bbar.ncols());
    let cd = cbar.block(0, cbar.nrows(), 0, rank);
    let ca = cbar.block(0, cbar.nrows(), rank, k);
    // Index-1 condition: A_aa invertible.
    let aaa_lu = numkit::Lu::new(aaa)?;
    let aaa_inv_aad = aaa_lu.solve_mat(&aad)?;
    let aaa_inv_ba = aaa_lu.solve_mat(&ba)?;
    debug_assert_eq!(aaa_inv_aad.nrows(), na);
    // Dynamic part: Σ_d ż_d = (A_dd − A_da·A_aa⁻¹·A_ad) z_d + (...) u.
    let a_eff = &add - &ada.matmul(&aaa_inv_aad)?;
    let b_eff = &bd - &ada.matmul(&aaa_inv_ba)?;
    let mut a_red = a_eff;
    let mut b_red = b_eff;
    for i in 0..rank {
        let inv_sigma = 1.0 / f.s[i];
        for j in 0..rank {
            a_red[(i, j)] *= inv_sigma;
        }
        for j in 0..b_red.ncols() {
            b_red[(i, j)] *= inv_sigma;
        }
    }
    let c_red = &cd - &ca.matmul(&aaa_inv_aad)?;
    let d_red = &d - &ca.matmul(&aaa_inv_ba)?;
    StateSpace::new(a_red, b_red, c_red, Some(d_red))
}

/// Multiplies a sparse CSR matrix by a dense matrix.
///
/// Streams contiguous row slices of the row-major operands: each output
/// row accumulates `mv · v.row(cidx)` with slice iterators instead of
/// per-entry indexing, keeping one `out` row and one `v` row hot in
/// cache per nonzero. The `j`-accumulation order is unchanged (ascending
/// per nonzero, nonzeros in CSR order), so results are bit-identical to
/// the indexed loop this replaces.
pub(crate) fn sparse_times_dense(m: &Csr<f64>, v: &DMat) -> DMat {
    assert_eq!(m.ncols(), v.nrows(), "sparse_times_dense: shape mismatch");
    let mut out = DMat::zeros(m.nrows(), v.ncols());
    for i in 0..m.nrows() {
        let (cols, vals) = m.row(i);
        let orow = out.row_mut(i);
        for (&cidx, &mv) in cols.iter().zip(vals) {
            for (o, &x) in orow.iter_mut().zip(v.row(cidx)) {
                *o += mv * x;
            }
        }
    }
    out
}

/// Rebuilds a CSC copy of a CSR matrix.
pub(crate) fn csr_to_csc(m: &Csr<f64>) -> sparsekit::Csc<f64> {
    let mut t = Triplet::with_capacity(m.nrows(), m.ncols(), m.nnz());
    for (i, j, v) in m.iter() {
        t.push(i, j, v);
    }
    t.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RC line: 3 nodes, unit R to ground-driven source at node 0.
    fn rc_line() -> Descriptor {
        // G (conductance): chain of 1Ω resistors; C: 1F at each node.
        let n = 3;
        let mut g = Triplet::new(n, n);
        for i in 0..n - 1 {
            g.push(i, i, 1.0);
            g.push(i + 1, i + 1, 1.0);
            g.push(i, i + 1, -1.0);
            g.push(i + 1, i, -1.0);
        }
        g.push(0, 0, 1.0); // grounding resistor at the driven node
        let mut cm = Triplet::new(n, n);
        for i in 0..n {
            cm.push(i, i, 1.0);
        }
        // E = C, A = -G; input: current into node 0; output: voltage node 2.
        let a = {
            let mut t = Triplet::new(n, n);
            for (i, j, v) in g.to_csr().iter() {
                t.push(i, j, -v);
            }
            t.to_csr()
        };
        let mut b = DMat::zeros(n, 1);
        b[(0, 0)] = 1.0;
        let mut c = DMat::zeros(1, n);
        c[(0, 2)] = 1.0;
        Descriptor::new(cm.to_csr(), a, b, c, None).unwrap()
    }

    #[test]
    fn descriptor_matches_state_space_transfer() {
        let d = rc_line();
        let ss = d.to_state_space().unwrap();
        for &w in &[0.0, 0.3, 1.0, 5.0] {
            let s = c64::new(0.0, w);
            let hd = d.transfer_function(s).unwrap()[(0, 0)];
            let hs = ss.transfer_function(s).unwrap()[(0, 0)];
            assert!((hd - hs).abs() < 1e-10, "mismatch at w={w}");
        }
    }

    #[test]
    fn dc_value_is_input_resistance_path() {
        let d = rc_line();
        // At dc, current 1A into node 0 through the grounding resistor
        // network: v2 = v1 = v0 = 1V (no current flows in the chain).
        let h0 = d.transfer_function(c64::ZERO).unwrap()[(0, 0)];
        assert!((h0.re - 1.0).abs() < 1e-10, "got {h0}");
    }

    #[test]
    fn identity_projection_preserves_transfer() {
        let d = rc_line();
        let v = DMat::identity(3);
        let red = d.project(&v, &v).unwrap();
        let s = c64::new(0.0, 2.0);
        let h1 = d.transfer_function(s).unwrap()[(0, 0)];
        let h2 = red.transfer_function(s).unwrap()[(0, 0)];
        assert!((h1 - h2).abs() < 1e-10);
    }

    #[test]
    fn transpose_solve_agrees_with_dense() {
        let d = rc_line();
        let s = c64::new(0.1, 1.0);
        let rhs = d.c.adjoint().to_complex();
        let z = d.solve_shifted_transpose(s, &rhs).unwrap();
        // Dense verification: (sE − A)ᵀ z = rhs.
        let m = {
            let e = d.e.to_dense().to_complex();
            let a = d.a.to_dense().to_complex();
            let mut m = ZMat::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    m[(i, j)] = s * e[(i, j)] - a[(i, j)];
                }
            }
            m.transpose()
        };
        let mz = m.matmul(&z).unwrap();
        assert!((&mz - &rhs).norm_max() < 1e-10);
    }

    #[test]
    fn projection_with_singular_reduced_e_eliminates_algebraic_part() {
        // Port node with no capacitance: its direction is algebraic. A
        // full-order projection produces a singular reduced E, which must
        // be Kron-eliminated into an ODE + feedthrough, not rejected.
        let mut nl_e = Triplet::new(3, 3);
        nl_e.push(1, 1, 1e-12); // only node 2 carries capacitance
        nl_e.push(2, 2, 2e-12);
        let mut nl_g = Triplet::new(3, 3);
        // Node 1 (port) - R - node 2 - R - node 3 - R - ground; node 1
        // also has a grounding resistor.
        for (i, j, g) in [(0, 1, 1e-3), (1, 2, 2e-3)] {
            nl_g.push(i, i, g);
            nl_g.push(j, j, g);
            nl_g.push(i, j, -g);
            nl_g.push(j, i, -g);
        }
        nl_g.push(2, 2, 1e-3);
        nl_g.push(0, 0, 5e-4);
        let a = {
            let mut t = Triplet::new(3, 3);
            for (i, j, v) in nl_g.to_csr().iter() {
                t.push(i, j, -v);
            }
            t.to_csr()
        };
        let mut b = DMat::zeros(3, 1);
        b[(0, 0)] = 1.0;
        let mut c = DMat::zeros(1, 3);
        c[(0, 0)] = 1.0;
        let sys = Descriptor::new(nl_e.to_csr(), a, b, c, None).unwrap();
        let v = DMat::identity(3);
        let red = sys.project(&v, &v).unwrap();
        assert_eq!(red.nstates(), 2, "one algebraic direction must be eliminated");
        assert!(red.d[(0, 0)] != 0.0, "static elimination must produce feedthrough");
        for &w in &[0.0, 1e8, 1e9, 1e10] {
            let s = c64::new(0.0, w);
            let h = sys.transfer_function(s).unwrap()[(0, 0)];
            let hr = red.transfer_function(s).unwrap()[(0, 0)];
            assert!((h - hr).abs() < 1e-8 * h.abs().max(1e-12), "w={w}: {h} vs {hr}");
        }
    }

    #[test]
    fn singular_e_rejected_for_state_space_but_fine_for_solve() {
        let mut e = Triplet::new(2, 2);
        e.push(0, 0, 1.0); // singular E: second state is algebraic
        let mut a = Triplet::new(2, 2);
        a.push(0, 0, -1.0);
        a.push(1, 1, -1.0);
        let b = DMat::from_rows(&[&[1.0], &[1.0]]);
        let c = DMat::from_rows(&[&[1.0, 1.0]]);
        let d = Descriptor::new(e.to_csr(), a.to_csr(), b, c, None).unwrap();
        assert!(matches!(d.to_state_space(), Err(NumError::Singular { .. })));
        // But shifted solves are perfectly fine (this is the PMTBR path).
        let h = d.transfer_function(c64::new(0.0, 1.0)).unwrap();
        assert!(h[(0, 0)].is_finite());
    }
}
