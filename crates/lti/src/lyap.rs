//! Continuous-time Lyapunov and Sylvester solvers (Bartels–Stewart).
//!
//! These power the *exact* TBR baseline the paper compares PMTBR against:
//! `A·X + X·Aᵀ + B·Bᵀ = 0` for the controllability Gramian and
//! `Aᵀ·Y + Y·A + Cᵀ·C = 0` for the observability Gramian
//! (paper equations (4)–(5)), plus the Sylvester equation of the
//! cross-Gramian method (Section V-D).

use numkit::{schur, DMat, Lu, Mat, NumError};

/// Solves the continuous Lyapunov equation `A·X + X·Aᵀ + Q = 0`.
///
/// `Q` must be symmetric for the result to be symmetric (as it is for
/// Gramian computations, `Q = BBᵀ` or `CᵀC`). The result is explicitly
/// symmetrized to scrub roundoff.
///
/// # Errors
///
/// - Propagates Schur failures.
/// - [`NumError::Singular`] if `A` and `−Aᵀ` share an eigenvalue (e.g.
///   `A` not Hurwitz with a mirrored mode) — the equation is then
///   singular.
///
/// # Examples
///
/// ```
/// use lti::lyap;
/// use numkit::DMat;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// // ẋ = -x + u: Gramian solves -2X + 1 = 0 → X = 1/2.
/// let a = DMat::from_rows(&[&[-1.0]]);
/// let q = DMat::from_rows(&[&[1.0]]);
/// let x = lyap(&a, &q)?;
/// assert!((x[(0, 0)] - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn lyap(a: &DMat, q: &DMat) -> Result<DMat, NumError> {
    let n = a.nrows();
    if !a.is_square() || q.shape() != (n, n) {
        return Err(NumError::ShapeMismatch {
            operation: "lyap",
            left: a.shape(),
            right: q.shape(),
        });
    }
    let s = schur(a)?;
    // Transform: T·Y + Y·Tᵀ = −UᵀQU.
    let qt = &(&s.q.transpose() * q) * &s.q;
    let c = -&qt;
    let y = sylvester_schur(&s.t, &s.t, &c)?;
    let mut x = &(&s.q * &y) * &s.q.transpose();
    x.symmetrize();
    Ok(x)
}

/// Solves the Sylvester equation `A·X + X·B + C = 0`.
///
/// # Errors
///
/// - Propagates Schur failures.
/// - [`NumError::Singular`] if `A` and `−B` share an eigenvalue.
pub fn sylvester(a: &DMat, b: &DMat, c: &DMat) -> Result<DMat, NumError> {
    if !a.is_square() || !b.is_square() || c.shape() != (a.nrows(), b.nrows()) {
        return Err(NumError::ShapeMismatch {
            operation: "sylvester",
            left: a.shape(),
            right: c.shape(),
        });
    }
    let sa = schur(a)?;
    // Schur of Bᵀ gives B = Ub·Tbᵀ·Ubᵀ: exactly the form the triangular
    // solver expects on the right.
    let sb = schur(&b.transpose())?;
    // Ta·Y + Y·Tbᵀ = −Uaᵀ·C·Ub with X = Ua·Y·Ubᵀ.
    let ct = &(&sa.q.transpose() * c) * &sb.q;
    let rhs = -&ct;
    let y = sylvester_schur(&sa.t, &sb.t, &rhs)?;
    Ok(&(&sa.q * &y) * &sb.q.transpose())
}

/// Block boundaries of a quasi-triangular matrix: returns `(starts, sizes)`.
fn block_partition(t: &DMat) -> Vec<(usize, usize)> {
    let n = t.nrows();
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < n {
        if i + 1 < n && t[(i + 1, i)] != 0.0 {
            blocks.push((i, 2));
            i += 2;
        } else {
            blocks.push((i, 1));
            i += 1;
        }
    }
    blocks
}

/// Solves `Ta·Y + Y·Tbᵀ = C` where `Ta` (n×n) and `Tb` (m×m) are upper
/// quasi-triangular. Iterates block columns of `Y` from last to first
/// (because `Tbᵀ` is lower quasi-triangular), and block rows from last to
/// first within each column.
fn sylvester_schur(ta: &DMat, tb: &DMat, c: &DMat) -> Result<DMat, NumError> {
    let n = ta.nrows();
    let m = tb.nrows();
    let ablocks = block_partition(ta);
    let bblocks = block_partition(tb);
    let mut y = DMat::zeros(n, m);

    for &(q0, qs) in bblocks.iter().rev() {
        // RHS for this block column: C_{:,q} − Σ_{q' > q} Y_{:,q'}·Tb[q,q']ᵀ.
        let mut rhs_col = Mat::from_fn(n, qs, |i, j| c[(i, q0 + j)]);
        for &(p0, ps) in &bblocks {
            if p0 <= q0 {
                continue;
            }
            // Contribution Y[:, p']·Tb[q, p']ᵀ.
            for i in 0..n {
                for j in 0..qs {
                    let mut acc = 0.0;
                    for k in 0..ps {
                        acc += y[(i, p0 + k)] * tb[(q0 + j, p0 + k)];
                    }
                    rhs_col[(i, j)] -= acc;
                }
            }
        }
        // Solve Ta·Yq + Yq·Tb[qq]ᵀ = rhs_col by block rows, bottom-up.
        for &(p0, ps) in ablocks.iter().rev() {
            // Subtract already-computed lower block rows:
            // Σ_{p' > p} Ta[p, p']·Y[p', q].
            let mut local = Mat::from_fn(ps, qs, |i, j| rhs_col[(p0 + i, j)]);
            for &(r0, rs) in &ablocks {
                if r0 <= p0 {
                    continue;
                }
                for i in 0..ps {
                    for j in 0..qs {
                        let mut acc = 0.0;
                        for k in 0..rs {
                            acc += ta[(p0 + i, r0 + k)] * y[(r0 + k, q0 + j)];
                        }
                        local[(i, j)] -= acc;
                    }
                }
            }
            // Small Sylvester: M·Z + Z·Nᵀ = local, M = Ta[pp] (ps×ps),
            // N = Tb[qq] (qs×qs). vec(col-major): (I⊗M + N⊗I)·vec(Z).
            let sz = ps * qs;
            let mut k = Mat::zeros(sz, sz);
            for col in 0..qs {
                for row in 0..ps {
                    let r_idx = col * ps + row;
                    // I⊗M part.
                    for row2 in 0..ps {
                        k[(r_idx, col * ps + row2)] += ta[(p0 + row, p0 + row2)];
                    }
                    // N⊗I part: (Z·Nᵀ)[row,col] = Σ_k Z[row,k]·N[col,k].
                    for col2 in 0..qs {
                        k[(r_idx, col2 * ps + row)] += tb[(q0 + col, q0 + col2)];
                    }
                }
            }
            let rhs_vec: Vec<f64> =
                (0..sz).map(|idx| local[(idx % ps, idx / ps)]).collect();
            let sol = Lu::new(k)?.solve(&rhs_vec)?;
            for col in 0..qs {
                for row in 0..ps {
                    y[(p0 + row, q0 + col)] = sol[col * ps + row];
                }
            }
        }
    }
    Ok(y)
}

/// Residual `‖A·X + X·Aᵀ + Q‖_max` for diagnostics/tests.
pub fn lyap_residual(a: &DMat, x: &DMat, q: &DMat) -> f64 {
    let ax = a * x;
    let xat = x * &a.transpose();
    (&(&ax + &xat) + q).norm_max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stable_matrix(n: usize, seed: usize) -> DMat {
        // Random matrix shifted to be strictly diagonally dominant negative.
        let mut a =
            DMat::from_fn(n, n, |i, j| (((i * 31 + j * 17 + seed) % 13) as f64 - 6.0) / 6.0);
        for i in 0..n {
            let rowsum: f64 = (0..n).map(|j| a[(i, j)].abs()).sum();
            a[(i, i)] = -(rowsum + 1.0);
        }
        a
    }

    #[test]
    fn scalar_case() {
        let a = DMat::from_rows(&[&[-2.0]]);
        let q = DMat::from_rows(&[&[4.0]]);
        let x = lyap(&a, &q).unwrap();
        assert!((x[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_stable_lyapunov_residual() {
        for n in [3, 7, 12] {
            let a = stable_matrix(n, n);
            let b = DMat::from_fn(n, 2, |i, j| ((i + 2 * j) % 3) as f64 - 1.0);
            let q = &b * &b.transpose();
            let x = lyap(&a, &q).unwrap();
            let res = lyap_residual(&a, &x, &q);
            assert!(res < 1e-9 * (1.0 + q.norm_max()), "n={n}: residual {res}");
            // Gramian of a stable system is PSD: check diagonal ≥ 0.
            for i in 0..n {
                assert!(x[(i, i)] >= -1e-10);
            }
        }
    }

    #[test]
    fn complex_pole_system() {
        // A with complex eigenvalues (oscillatory RLC-like).
        let a = DMat::from_rows(&[&[-0.1, -1.0], &[1.0, -0.1]]);
        let q = DMat::identity(2);
        let x = lyap(&a, &q).unwrap();
        assert!(lyap_residual(&a, &x, &q) < 1e-10);
        // By symmetry X = (1/0.2)·I/... just verify symmetry + PD.
        assert!((x[(0, 1)] - x[(1, 0)]).abs() < 1e-12);
        assert!(x[(0, 0)] > 0.0);
    }

    #[test]
    fn sylvester_known_solution() {
        // Pick X, form C = -(AX + XB), recover X.
        let a = stable_matrix(4, 1);
        let b = stable_matrix(3, 2);
        let x_true = DMat::from_fn(4, 3, |i, j| (i + j) as f64 / 3.0 - 1.0);
        let ax = &a * &x_true;
        let xb = &x_true * &b;
        let c = -&(&ax + &xb);
        let x = sylvester(&a, &b, &c).unwrap();
        assert!((&x - &x_true).norm_max() < 1e-9);
    }

    #[test]
    fn unstable_pair_is_singular() {
        // A has eigenvalue +1, B has eigenvalue -1 → λ_A + λ_B = 0.
        let a = DMat::from_rows(&[&[1.0]]);
        let b = DMat::from_rows(&[&[-1.0]]);
        let c = DMat::from_rows(&[&[1.0]]);
        assert!(matches!(sylvester(&a, &b, &c), Err(NumError::Singular { .. })));
    }

    #[test]
    fn lyapunov_gramian_matches_integral_for_diagonal_system() {
        // A = diag(-a_i): X_ij = b_i b_j / (a_i + a_j).
        let avals = [1.0, 2.5, 4.0];
        let a = DMat::from_diag(&[-1.0, -2.5, -4.0]);
        let b = DMat::from_rows(&[&[1.0], &[2.0], &[-1.0]]);
        let q = &b * &b.transpose();
        let x = lyap(&a, &q).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = b[(i, 0)] * b[(j, 0)] / (avals[i] + avals[j]);
                assert!((x[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }
}
