//! Dense state-space models `ẋ = A·x + B·u`, `y = C·x + D·u`.

use numkit::{c64, eig, DMat, Lu, NumError, ZMat};

/// A dense linear time-invariant state-space model.
///
/// The matrices are public by design — this is a numerical "data struct"
/// that downstream algorithms (TBR, PMTBR, Krylov projectors) read and
/// transform freely. Shape invariants are validated at construction.
///
/// # Examples
///
/// ```
/// use numkit::DMat;
/// use lti::StateSpace;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// // A one-pole RC low-pass: H(s) = 1/(s + 1).
/// let sys = StateSpace::new(
///     DMat::from_rows(&[&[-1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     None,
/// )?;
/// let h0 = sys.transfer_function(numkit::c64::ZERO)?;
/// assert!((h0[(0, 0)].re - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpace {
    /// State matrix, `n × n`.
    pub a: DMat,
    /// Input matrix, `n × p`.
    pub b: DMat,
    /// Output matrix, `q × n`.
    pub c: DMat,
    /// Feedthrough matrix, `q × p`.
    pub d: DMat,
}

impl StateSpace {
    /// Creates a model, validating shapes. A missing `d` defaults to zero.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] / [`NumError::NotSquare`] on
    /// inconsistent dimensions.
    pub fn new(a: DMat, b: DMat, c: DMat, d: Option<DMat>) -> Result<Self, NumError> {
        let n = a.nrows();
        if !a.is_square() {
            return Err(NumError::NotSquare { rows: a.nrows(), cols: a.ncols() });
        }
        if b.nrows() != n {
            return Err(NumError::ShapeMismatch {
                operation: "state-space b",
                left: a.shape(),
                right: b.shape(),
            });
        }
        if c.ncols() != n {
            return Err(NumError::ShapeMismatch {
                operation: "state-space c",
                left: a.shape(),
                right: c.shape(),
            });
        }
        let d = d.unwrap_or_else(|| DMat::zeros(c.nrows(), b.ncols()));
        if d.shape() != (c.nrows(), b.ncols()) {
            return Err(NumError::ShapeMismatch {
                operation: "state-space d",
                left: (c.nrows(), b.ncols()),
                right: d.shape(),
            });
        }
        Ok(StateSpace { a, b, c, d })
    }

    /// Number of states.
    pub fn nstates(&self) -> usize {
        self.a.nrows()
    }

    /// Number of inputs.
    pub fn ninputs(&self) -> usize {
        self.b.ncols()
    }

    /// Number of outputs.
    pub fn noutputs(&self) -> usize {
        self.c.nrows()
    }

    /// Content address of the `(I, A, B, C, D)` pencil — the dense
    /// counterpart of [`crate::Descriptor::pencil_hash`], with its own
    /// domain label so a state-space model can never collide with a
    /// descriptor whose matrices happen to match.
    pub fn pencil_hash(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new();
        h.label("pmtbr-pencil-v1/state-space");
        h.word(self.nstates() as u64).word(self.ninputs() as u64).word(self.noutputs() as u64);
        h.word(crate::hash::hash_dense(2, &self.a));
        h.word(crate::hash::hash_dense(3, &self.b));
        h.word(crate::hash::hash_dense(4, &self.c));
        h.word(crate::hash::hash_dense(5, &self.d));
        h.finish()
    }

    /// Transfer function `H(s) = C·(sI − A)⁻¹·B + D`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] if `s` is an eigenvalue of `A`.
    pub fn transfer_function(&self, s: c64) -> Result<ZMat, NumError> {
        let z = self.solve_shifted(s, &self.b.to_complex())?;
        let h = self.c.to_complex().matmul(&z)?;
        Ok(&h + &self.d.to_complex())
    }

    /// Solves `(sI − A)·Z = R` for a complex shift `s` and dense
    /// right-hand sides `R`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] if `s` is an eigenvalue of `A`.
    pub fn solve_shifted(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError> {
        let n = self.nstates();
        let mut m = ZMat::from_fn(n, n, |i, j| c64::from_real(-self.a[(i, j)]));
        for i in 0..n {
            m[(i, i)] += s;
        }
        Lu::new(m)?.solve_mat(rhs)
    }

    /// Solves the transposed shifted system `(sI − A)ᵀ·Z = R`
    /// (plain transpose — used for observability samples).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] if `s` is an eigenvalue of `A`.
    pub fn solve_shifted_transpose(&self, s: c64, rhs: &ZMat) -> Result<ZMat, NumError> {
        let n = self.nstates();
        let mut m = ZMat::from_fn(n, n, |i, j| c64::from_real(-self.a[(j, i)]));
        for i in 0..n {
            m[(i, i)] += s;
        }
        Lu::new(m)?.solve_mat(rhs)
    }

    /// System poles (eigenvalues of `A`).
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures.
    pub fn poles(&self) -> Result<Vec<c64>, NumError> {
        Ok(eig(&self.a)?.values)
    }

    /// `true` if every pole has strictly negative real part.
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures.
    pub fn is_stable(&self) -> Result<bool, NumError> {
        Ok(self.poles()?.iter().all(|p| p.re < 0.0))
    }

    /// DC gain `H(0) = −C·A⁻¹·B + D`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] if `A` is singular (pole at dc).
    pub fn dc_gain(&self) -> Result<DMat, NumError> {
        let x = Lu::new(self.a.clone())?.solve_mat(&self.b)?;
        let cab = self.c.matmul(&x)?;
        Ok(&self.d - &cab)
    }

    /// Petrov–Galerkin projection: `(WᵀAV, WᵀB, CV, D)`.
    ///
    /// For a congruence (one-sided, structure/passivity-preserving)
    /// projection pass the same matrix for `w` and `v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `w`/`v` row counts don't
    /// match the state dimension or their column counts differ.
    pub fn project(&self, w: &DMat, v: &DMat) -> Result<StateSpace, NumError> {
        let n = self.nstates();
        if w.nrows() != n || v.nrows() != n || w.ncols() != v.ncols() {
            return Err(NumError::ShapeMismatch {
                operation: "projection",
                left: w.shape(),
                right: v.shape(),
            });
        }
        let wt = w.transpose();
        let ar = wt.matmul(&self.a.matmul(v)?)?;
        let br = wt.matmul(&self.b)?;
        let cr = self.c.matmul(v)?;
        StateSpace::new(ar, br, cr, Some(self.d.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pole() -> StateSpace {
        // Poles at -1, -2; H(s) = 1/(s+1) + 1/(s+2).
        StateSpace::new(
            DMat::from_diag(&[-1.0, -2.0]),
            DMat::from_rows(&[&[1.0], &[1.0]]),
            DMat::from_rows(&[&[1.0, 1.0]]),
            None,
        )
        .unwrap()
    }

    #[test]
    fn shapes_validated() {
        let bad = StateSpace::new(DMat::zeros(2, 2), DMat::zeros(3, 1), DMat::zeros(1, 2), None);
        assert!(bad.is_err());
        let bad = StateSpace::new(DMat::zeros(2, 3), DMat::zeros(2, 1), DMat::zeros(1, 2), None);
        assert!(matches!(bad, Err(NumError::NotSquare { .. })));
    }

    #[test]
    fn transfer_function_known_values() {
        let sys = two_pole();
        // H(0) = 1 + 1/2 = 1.5
        let h0 = sys.transfer_function(c64::ZERO).unwrap();
        assert!((h0[(0, 0)].re - 1.5).abs() < 1e-12);
        // H(j) = 1/(1+j) + 1/(2+j)
        let hj = sys.transfer_function(c64::I).unwrap()[(0, 0)];
        let expect = c64::ONE / c64::new(1.0, 1.0) + c64::ONE / c64::new(2.0, 1.0);
        assert!((hj - expect).abs() < 1e-12);
    }

    #[test]
    fn dc_gain_matches_transfer_function_at_zero() {
        let sys = two_pole();
        let g = sys.dc_gain().unwrap();
        assert!((g[(0, 0)] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn poles_and_stability() {
        let sys = two_pole();
        let mut p: Vec<f64> = sys.poles().unwrap().iter().map(|z| z.re).collect();
        p.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((p[0] + 2.0).abs() < 1e-10 && (p[1] + 1.0).abs() < 1e-10);
        assert!(sys.is_stable().unwrap());
        let unstable =
            StateSpace::new(DMat::from_diag(&[1.0]), DMat::zeros(1, 1), DMat::zeros(1, 1), None)
                .unwrap();
        assert!(!unstable.is_stable().unwrap());
    }

    #[test]
    fn identity_projection_is_noop() {
        let sys = two_pole();
        let i = DMat::identity(2);
        let proj = sys.project(&i, &i).unwrap();
        assert_eq!(proj, sys);
    }

    #[test]
    fn projection_reduces_dimensions() {
        let sys = two_pole();
        let v = DMat::from_rows(&[&[1.0], &[0.0]]);
        let red = sys.project(&v, &v).unwrap();
        assert_eq!(red.nstates(), 1);
        assert_eq!(red.a[(0, 0)], -1.0);
        // The projected model keeps only the -1 pole.
        let h0 = red.transfer_function(c64::ZERO).unwrap();
        assert!((h0[(0, 0)].re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_solve_consistency() {
        let sys = two_pole();
        let s = c64::new(0.5, 1.0);
        let rhs = sys.c.adjoint().to_complex();
        let z1 = sys.solve_shifted_transpose(s, &rhs).unwrap();
        // Compare against explicitly transposing A.
        let at = StateSpace::new(
            sys.a.transpose(),
            DMat::zeros(2, 1),
            DMat::zeros(1, 2),
            None,
        )
        .unwrap();
        let z2 = at.solve_shifted(s, &rhs).unwrap();
        assert!((&z1 - &z2).norm_max() < 1e-12);
    }
}
