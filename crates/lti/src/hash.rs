//! Deterministic structural hashing of system pencils.
//!
//! The artifact cache (see `pmtbr::cache` and `crates/serve`) keys every
//! expensive intermediate — symbolic LU analyses, factored shifts,
//! finished reduced models — on a *content address* of the `(E, A, B,
//! C, D)` pencil. Two requirements shape the scheme:
//!
//! 1. **Order independence.** MNA stamping, netlist parsing, and mesh
//!    generators may emit structurally identical matrices with entries
//!    in different assembly orders. Each nonzero therefore hashes
//!    independently — a SplitMix64 finalizer over the FNV-1a-combined
//!    `(tag, i, j, value-bits)` tuple — and per-matrix digests combine
//!    the per-entry hashes with a commutative `wrapping_add`. Exact
//!    zeros (including `-0.0`) are skipped, so structural padding never
//!    changes the address.
//! 2. **Zero dependencies.** FNV-1a and the SplitMix64 finalizer are
//!    small enough to inline here; no hasher crates are pulled in.
//!
//! The digest is a pure function of the matrix *values* (IEEE-754 bit
//! patterns), so systems that differ anywhere below the last ulp get
//! different addresses — the cache can never conflate two pencils that
//! would factor differently.

use numkit::DMat;
use sparsekit::Csr;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A sequential FNV-1a accumulator over 64-bit words — the *ordered*
/// half of the scheme, used to fold shapes and per-matrix digests into
/// the final pencil address.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64 {
    acc: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// Starts a fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { acc: FNV_OFFSET }
    }

    /// Folds one 64-bit word (as eight FNV-1a byte steps).
    pub fn word(&mut self, w: u64) -> &mut Self {
        for byte in w.to_le_bytes() {
            self.acc ^= u64::from(byte);
            self.acc = self.acc.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a short ASCII label (domain separation between artifact
    /// kinds sharing a pencil).
    pub fn label(&mut self, s: &str) -> &mut Self {
        for &byte in s.as_bytes() {
            self.acc ^= u64::from(byte);
            self.acc = self.acc.wrapping_mul(FNV_PRIME);
        }
        self.word(s.len() as u64)
    }

    /// The current digest, passed through the SplitMix64 finalizer so
    /// closely related inputs land far apart.
    pub fn finish(&self) -> u64 {
        splitmix(self.acc)
    }
}

/// The SplitMix64 output finalizer (Steele, Lea & Flood 2014) — the
/// same mixer `numkit::SplitMix64` streams, applied here as a one-shot
/// avalanche so single-bit input differences flip ~half the output.
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash of one matrix entry; commutatively combinable across entries.
fn entry_hash(tag: u64, i: usize, j: usize, v: f64) -> u64 {
    let mut h = Fnv64::new();
    h.word(tag).word(i as u64).word(j as u64).word(v.to_bits());
    h.finish()
}

/// Order-independent digest of a sparse matrix under matrix-role `tag`.
/// Exact zeros are skipped, so the digest depends only on the numeric
/// content, not on how the assembly padded the pattern.
pub fn hash_csr(tag: u64, m: &Csr<f64>) -> u64 {
    let mut acc = 0u64;
    for (i, j, v) in m.iter() {
        if v == 0.0 {
            continue;
        }
        acc = acc.wrapping_add(entry_hash(tag, i, j, v));
    }
    let mut h = Fnv64::new();
    h.word(tag).word(m.nrows() as u64).word(m.ncols() as u64).word(acc);
    h.finish()
}

/// Order-independent digest of a dense matrix under matrix-role `tag`
/// (zeros skipped, same convention as [`hash_csr`]).
pub fn hash_dense(tag: u64, m: &DMat) -> u64 {
    let mut acc = 0u64;
    for i in 0..m.nrows() {
        for j in 0..m.ncols() {
            let v = m[(i, j)];
            if v == 0.0 {
                continue;
            }
            acc = acc.wrapping_add(entry_hash(tag, i, j, v));
        }
    }
    let mut h = Fnv64::new();
    h.word(tag).word(m.nrows() as u64).word(m.ncols() as u64).word(acc);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsekit::Triplet;

    #[test]
    fn csr_hash_is_assembly_order_independent() {
        let mut t1 = Triplet::new(3, 3);
        t1.push(0, 0, 2.0);
        t1.push(2, 1, -1.5);
        t1.push(1, 1, 4.0);
        let mut t2 = Triplet::new(3, 3);
        t2.push(1, 1, 4.0);
        t2.push(0, 0, 2.0);
        t2.push(2, 1, -1.5);
        assert_eq!(hash_csr(1, &t1.to_csr()), hash_csr(1, &t2.to_csr()));
    }

    #[test]
    fn structural_zeros_do_not_change_the_digest() {
        let mut t1 = Triplet::new(2, 2);
        t1.push(0, 0, 1.0);
        let mut t2 = Triplet::new(2, 2);
        t2.push(0, 0, 1.0);
        t2.push(1, 1, 0.0);
        t2.push(0, 1, -0.0);
        assert_eq!(hash_csr(7, &t1.to_csr()), hash_csr(7, &t2.to_csr()));
    }

    #[test]
    fn value_role_and_position_all_matter() {
        let mut base = Triplet::new(2, 2);
        base.push(0, 0, 1.0);
        let base = hash_csr(1, &base.to_csr());
        let mut moved = Triplet::new(2, 2);
        moved.push(1, 1, 1.0);
        assert_ne!(base, hash_csr(1, &moved.to_csr()));
        let mut scaled = Triplet::new(2, 2);
        scaled.push(0, 0, 1.0 + f64::EPSILON);
        assert_ne!(base, hash_csr(1, &scaled.to_csr()));
        let mut same = Triplet::new(2, 2);
        same.push(0, 0, 1.0);
        assert_ne!(base, hash_csr(2, &same.to_csr()));
    }

    #[test]
    fn dense_and_label_digests_are_stable() {
        let m = DMat::from_rows(&[&[1.0, 0.0], &[0.0, 3.0]]);
        assert_eq!(hash_dense(3, &m), hash_dense(3, &m.clone()));
        let mut a = Fnv64::new();
        a.label("model");
        let mut b = Fnv64::new();
        b.label("model");
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.label("sweep");
        assert_ne!(a.finish(), c.finish());
    }
}
