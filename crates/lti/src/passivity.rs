//! Sampled passivity verification (paper Section V-E).
//!
//! PMTBR does not inherit full TBR's passivity guarantees, but for
//! RC/RLC MNA systems the *congruence* projection does preserve
//! passivity. This module verifies either claim numerically: an
//! impedance-form system is passive iff its Hermitian part
//! `(Z(jω) + Z(jω)ᴴ)/2` is positive semidefinite at every frequency.
//! The margin returned is the most negative eigenvalue found over the
//! sweep — non-negative for a passive network.

use numkit::{eigh, DMat, NumError, ZMat};

use crate::{frequency_response, FreqResponse, LtiSystem};

/// Eigenvalues (ascending-by-magnitude not guaranteed; sorted
/// descending) of the Hermitian part of a complex square matrix, via the
/// standard symmetric realification `[[Re, −Im], [Im, Re]]` (each
/// eigenvalue appears twice; duplicates are collapsed).
///
/// # Errors
///
/// [`NumError::NotSquare`] for rectangular input; propagates eigensolver
/// failures.
pub fn hermitian_part_eigenvalues(h: &ZMat) -> Result<Vec<f64>, NumError> {
    let (n, m) = h.shape();
    if n != m {
        return Err(NumError::NotSquare { rows: n, cols: m });
    }
    // Hermitian part.
    let mut herm = h.clone();
    herm.symmetrize();
    let re = herm.real();
    let im = herm.imag();
    let big = DMat::from_fn(2 * n, 2 * n, |i, j| {
        let (bi, ii) = (i / n, i % n);
        let (bj, jj) = (j / n, j % n);
        match (bi, bj) {
            (0, 0) | (1, 1) => re[(ii, jj)],
            (0, 1) => -im[(ii, jj)],
            (1, 0) => im[(ii, jj)],
            _ => unreachable!(),
        }
    });
    let e = eigh(&big)?;
    // Every eigenvalue is doubled: take every other one.
    Ok(e.values.iter().step_by(2).copied().collect())
}

/// The passivity margin of a sampled response: the most negative
/// eigenvalue of the Hermitian part over the sweep (≥ 0 ⇔ passive on
/// the grid).
///
/// # Errors
///
/// Propagates eigensolver failures; [`NumError::NotSquare`] for
/// non-square responses (passivity needs an impedance/admittance form).
pub fn passivity_margin(resp: &FreqResponse) -> Result<f64, NumError> {
    let mut margin = f64::INFINITY;
    for h in &resp.h {
        let eigs = hermitian_part_eigenvalues(h)?;
        let min = eigs.last().copied().unwrap_or(0.0);
        margin = margin.min(min);
    }
    Ok(margin)
}

/// Checks passivity of an impedance-form system over a frequency grid.
///
/// `tol` absorbs roundoff: margins above `−tol·scale` count as passive,
/// with `scale` the largest Hermitian-part eigenvalue seen.
///
/// # Errors
///
/// Propagates sweep and eigensolver failures.
///
/// # Examples
///
/// ```
/// use lti::{is_passive_sampled, linspace, StateSpace};
/// use numkit::DMat;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// // Z(s) = 1/(s + 1): a passive RC driving-point impedance.
/// let sys = StateSpace::new(
///     DMat::from_rows(&[&[-1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     DMat::from_rows(&[&[1.0]]),
///     None,
/// )?;
/// assert!(is_passive_sampled(&sys, &linspace(0.0, 20.0, 30), 1e-9)?);
/// # Ok(())
/// # }
/// ```
pub fn is_passive_sampled<S: LtiSystem + ?Sized>(
    sys: &S,
    omegas: &[f64],
    tol: f64,
) -> Result<bool, NumError> {
    let resp = frequency_response(sys, omegas)?;
    let mut margin = f64::INFINITY;
    let mut scale = 0.0f64;
    for h in &resp.h {
        let eigs = hermitian_part_eigenvalues(h)?;
        if let (Some(&max), Some(&min)) = (eigs.first(), eigs.last()) {
            margin = margin.min(min);
            scale = scale.max(max.abs());
        }
    }
    Ok(margin >= -tol * scale.max(f64::MIN_POSITIVE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{linspace, StateSpace};
    use numkit::c64;

    #[test]
    fn hermitian_eigs_match_known_matrix() {
        // H = [[2, i], [-i, 2]] is Hermitian with eigenvalues 3, 1.
        let h = ZMat::from_fn(2, 2, |i, j| match (i, j) {
            (0, 0) | (1, 1) => c64::from_real(2.0),
            (0, 1) => c64::I,
            _ => -c64::I,
        });
        let e = hermitian_part_eigenvalues(&h).unwrap();
        assert!((e[0] - 3.0).abs() < 1e-12);
        assert!((e[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn passive_rc_impedance_has_nonnegative_margin() {
        // Z(s) = 1/(s+1) (1-state RC): Re Z(jω) = 1/(1+ω²) > 0.
        let sys = StateSpace::new(
            DMat::from_rows(&[&[-1.0]]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[1.0]]),
            None,
        )
        .unwrap();
        let resp = frequency_response(&sys, &linspace(0.0, 50.0, 40)).unwrap();
        assert!(passivity_margin(&resp).unwrap() >= 0.0);
        assert!(is_passive_sampled(&sys, &linspace(0.0, 50.0, 40), 1e-12).unwrap());
    }

    #[test]
    fn active_network_detected() {
        // A negative resistor: Z(s) = −1 + 1/(s+1) goes active at high ω.
        let sys = StateSpace::new(
            DMat::from_rows(&[&[-1.0]]),
            DMat::from_rows(&[&[1.0]]),
            DMat::from_rows(&[&[1.0]]),
            Some(DMat::from_rows(&[&[-1.0]])),
        )
        .unwrap();
        assert!(!is_passive_sampled(&sys, &linspace(0.0, 50.0, 40), 1e-12).unwrap());
        let resp = frequency_response(&sys, &linspace(0.0, 50.0, 40)).unwrap();
        assert!(passivity_margin(&resp).unwrap() < -0.5);
    }

    #[test]
    fn rejects_nonsquare_response() {
        let h = ZMat::zeros(2, 3);
        assert!(hermitian_part_eigenvalues(&h).is_err());
    }
}
