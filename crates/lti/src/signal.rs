//! Waveform generators for the input-correlated experiments.
//!
//! The paper's Fig. 12–14 drive a 32-port RC network with square waves
//! whose edge timings are randomly dithered by ~10% of the period —
//! signals that are *correlated but not identical*, mimicking outputs of
//! a common functional block or clock domain. Fig. 15–16 use substrate
//! bulk-current-like inputs, which we synthesize as a low-rank latent
//! mixture. Both generators live here, along with the empirical
//! correlation analysis (SVD of the sample matrix) Algorithm 3 starts
//! from.

use numkit::{svd, DMat, NumError, SplitMix64, Svd};

/// A square wave with smoothed (finite rise-time) edges.
///
/// `phase` shifts the waveform in time; `rise` is the 0→1 transition
/// time. Values are in `[0, amplitude]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWave {
    /// Period in seconds.
    pub period: f64,
    /// Peak value.
    pub amplitude: f64,
    /// Time shift in seconds.
    pub phase: f64,
    /// Edge transition time in seconds (0 for ideal edges).
    pub rise: f64,
}

impl SquareWave {
    /// A unit square wave with 5% rise time and no phase shift.
    pub fn new(period: f64) -> Self {
        SquareWave { period, amplitude: 1.0, phase: 0.0, rise: period * 0.05 }
    }

    /// Evaluates the waveform at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        let tau = (t - self.phase).rem_euclid(self.period) / self.period;
        let r = (self.rise / self.period).max(1e-9);
        // Piecewise: ramp up in [0, r], high until 0.5, ramp down in
        // [0.5, 0.5 + r], low until 1.
        let v = if tau < r {
            tau / r
        } else if tau < 0.5 {
            1.0
        } else if tau < 0.5 + r {
            1.0 - (tau - 0.5) / r
        } else {
            0.0
        };
        v * self.amplitude
    }

    /// Samples the waveform on a uniform grid of `nt` points with step `h`.
    pub fn sample(&self, nt: usize, h: f64) -> Vec<f64> {
        (0..nt).map(|k| self.eval(k as f64 * h)).collect()
    }
}

/// An ensemble of `p` square waves with *dithered* edge timing: each
/// input's phase is drawn uniformly from `±dither·period/2` around zero.
///
/// This models signals sharing a clock but arriving through different
/// logic depths — the correlated-input scenario of paper Section VI-C.
/// Returns a `p × nt` sample matrix (row per input).
pub fn dithered_square_inputs(
    p: usize,
    nt: usize,
    h: f64,
    period: f64,
    dither: f64,
    seed: u64,
) -> DMat {
    let mut rng = SplitMix64::new(seed);
    let mut u = DMat::zeros(p, nt);
    for i in 0..p {
        let phase = (rng.next_f64() - 0.5) * dither * period;
        let w = SquareWave { phase, ..SquareWave::new(period) };
        for (k, v) in w.sample(nt, h).into_iter().enumerate() {
            u[(i, k)] = v;
        }
    }
    u
}

/// An ensemble of `p` square waves with *completely random* phases
/// (uniform over a full period) — the out-of-class inputs that break the
/// input-correlated model in the paper's Fig. 14.
pub fn random_phase_square_inputs(
    p: usize,
    nt: usize,
    h: f64,
    period: f64,
    seed: u64,
) -> DMat {
    let mut rng = SplitMix64::new(seed);
    let mut u = DMat::zeros(p, nt);
    for i in 0..p {
        let phase = rng.next_f64() * period;
        let w = SquareWave { phase, ..SquareWave::new(period) };
        for (k, v) in w.sample(nt, h).into_iter().enumerate() {
            u[(i, k)] = v;
        }
    }
    u
}

/// Synthetic substrate bulk-current inputs: `rank` independent latent
/// switching processes mixed into `p` ports with random weights, plus
/// white noise of relative magnitude `noise`.
///
/// Substrate injection currents originate from a handful of aggressor
/// blocks, so the port waveforms are strongly correlated — the structure
/// Algorithm 3 exploits (paper Section VI-C-2). Returns `p × nt`.
pub fn latent_mixture_inputs(
    p: usize,
    nt: usize,
    h: f64,
    rank: usize,
    noise: f64,
    seed: u64,
) -> DMat {
    let mut rng = SplitMix64::new(seed);
    // Latent processes: square waves at different periods and phases.
    let mut latents = DMat::zeros(rank, nt);
    for r in 0..rank {
        let period = 1e-9 * (1.0 + r as f64 * 0.7 + rng.next_f64() * 0.3);
        let w = SquareWave {
            phase: rng.next_f64() * period,
            amplitude: 1.0,
            ..SquareWave::new(period)
        };
        for (k, v) in w.sample(nt, h).into_iter().enumerate() {
            // Zero-mean: switching currents alternate sign.
            latents[(r, k)] = 2.0 * v - 1.0;
        }
    }
    let mix = DMat::from_fn(p, rank, |_, _| rng.next_f64() * 2.0 - 1.0);
    // (p×rank)·(rank×nt): shapes fixed above, so the operator's
    // dimension check cannot fire.
    let mut u = &mix * &latents;
    if noise > 0.0 {
        let scale = u.norm_max() * noise;
        for i in 0..p {
            for k in 0..nt {
                u[(i, k)] += (rng.next_f64() * 2.0 - 1.0) * scale;
            }
        }
    }
    u
}

/// Empirical input-correlation analysis: the SVD `𝒰 = V_K·S_K·U_Kᵀ` of a
/// `p × N` waveform sample matrix (paper Section IV-C).
///
/// The left singular vectors `V_K` span the principal input directions,
/// and `S_K²/N` are the variances of the corresponding uncorrelated
/// coordinates — exactly what Algorithm 3's random draws need.
///
/// For strongly wide matrices (`N ≫ p`, the common case: many time
/// samples across few ports) the left factor is computed from the
/// `p × p` Gram matrix `𝒰·𝒰ᵀ`, which is orders of magnitude cheaper than
/// a full SVD of the sample record. Singular values below `√ε·s₀` lose
/// relative accuracy on that path — harmless for correlation-rank
/// decisions.
///
/// # Errors
///
/// Propagates SVD/eigensolver failures (non-finite samples).
pub fn input_correlation_svd(u: &DMat) -> Result<Svd<f64>, NumError> {
    let (p, n) = u.shape();
    if n <= 4 * p {
        return svd(u);
    }
    // Gram path: 𝒰·𝒰ᵀ = V_K·S_K²·V_Kᵀ.
    let gram = {
        let mut g = u.matmul(&u.transpose())?;
        g.symmetrize();
        g
    };
    let e = numkit::eigh(&gram)?;
    let s: Vec<f64> = e.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
    // Right vectors (rarely used by callers): U_K = 𝒰ᵀ·V_K·S⁻¹ for the
    // non-degenerate directions, zero columns otherwise.
    let mut v = DMat::zeros(n, p);
    let ut = u.transpose();
    for j in 0..p {
        if s[j] > s[0].max(1e-300) * 1e-12 {
            let col = e.vectors.col(j);
            let w = ut.mul_vec(&col);
            for (i, &wi) in w.iter().enumerate() {
                v[(i, j)] = wi / s[j];
            }
        }
    }
    Ok(Svd { u: e.vectors, s, v })
}

/// Effective correlation rank: number of singular values above
/// `tol·s₀` in the waveform SVD.
///
/// # Errors
///
/// Propagates SVD failures.
pub fn correlation_rank(u: &DMat, tol: f64) -> Result<usize, NumError> {
    Ok(input_correlation_svd(u)?.rank(tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_wave_levels() {
        let w = SquareWave::new(1.0);
        assert!((w.eval(0.25) - 1.0).abs() < 1e-12, "high phase");
        assert!(w.eval(0.75).abs() < 1e-12, "low phase");
        // Mid-rise.
        assert!((w.eval(0.025) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn square_wave_is_periodic() {
        let w = SquareWave::new(2e-9);
        for &t in &[0.1e-9, 0.77e-9, 1.3e-9] {
            assert!((w.eval(t) - w.eval(t + 2e-9)).abs() < 1e-12);
            assert!((w.eval(t) - w.eval(t + 10e-9)).abs() < 1e-12);
        }
    }

    #[test]
    fn dithered_inputs_are_strongly_correlated() {
        let u = dithered_square_inputs(16, 400, 0.01e-9, 1e-9, 0.1, 42);
        let r = correlation_rank(&u, 0.05).unwrap();
        assert!(r < 8, "dithered ensemble should be low-rank-ish, got rank {r}");
    }

    #[test]
    fn random_phase_inputs_are_less_correlated() {
        let nd = {
            let u = dithered_square_inputs(16, 400, 0.01e-9, 1e-9, 0.1, 1);
            correlation_rank(&u, 0.05).unwrap()
        };
        let nr = {
            let u = random_phase_square_inputs(16, 400, 0.01e-9, 1e-9, 1);
            correlation_rank(&u, 0.05).unwrap()
        };
        assert!(
            nr > nd,
            "random phases must raise the correlation rank: dithered {nd}, random {nr}"
        );
    }

    #[test]
    fn latent_mixture_rank_tracks_latent_count() {
        let u = latent_mixture_inputs(50, 600, 0.01e-9, 3, 0.0, 9);
        let r = correlation_rank(&u, 1e-6).unwrap();
        assert!(r <= 3, "noiseless mixture rank must be ≤ latent count, got {r}");
        let un = latent_mixture_inputs(50, 600, 0.01e-9, 3, 0.05, 9);
        let rn = correlation_rank(&un, 0.02).unwrap();
        assert!(rn >= 3, "noise should not hide the latent signals");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = dithered_square_inputs(4, 50, 1e-11, 1e-9, 0.1, 7);
        let b = dithered_square_inputs(4, 50, 1e-11, 1e-9, 0.1, 7);
        assert_eq!(a, b);
    }
}
