//! Block orthonormalization utilities (modified Gram–Schmidt with
//! reorthogonalization and deflation).

use numkit::DMat;

/// Tolerance below which a candidate direction is considered linearly
/// dependent and deflated (relative to its pre-orthogonalization norm).
pub(crate) const DEFLATE_TOL: f64 = 1e-10;

/// Orthonormalizes the columns of `cand` against the columns of `basis`
/// and against each other, appending the surviving directions to `basis`.
///
/// Returns the number of columns added. Uses two passes of modified
/// Gram–Schmidt ("twice is enough") for numerical orthogonality.
pub(crate) fn orthonormalize_into(basis: &mut Vec<Vec<f64>>, cand: &DMat) -> usize {
    let mut added = 0;
    for j in 0..cand.ncols() {
        let mut v = cand.col(j);
        let norm0: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm0 == 0.0 {
            continue;
        }
        for _pass in 0..2 {
            for b in basis.iter() {
                let proj: f64 = b.iter().zip(&v).map(|(x, y)| x * y).sum();
                for (vi, bi) in v.iter_mut().zip(b) {
                    *vi -= proj * bi;
                }
            }
        }
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm <= DEFLATE_TOL * norm0 {
            continue; // linearly dependent: deflate
        }
        for vi in v.iter_mut() {
            *vi /= norm;
        }
        basis.push(v);
        added += 1;
    }
    added
}

/// Packs a column list into a dense matrix.
///
/// # Panics
///
/// Panics if `cols` is empty (no basis directions survived).
pub(crate) fn columns_to_mat(cols: &[Vec<f64>]) -> DMat {
    assert!(!cols.is_empty(), "empty basis");
    DMat::from_cols(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orthonormalizes_and_deflates() {
        let mut basis = Vec::new();
        let cand = DMat::from_cols(&[
            vec![1.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0],
            vec![2.0, 1.0, 0.0], // dependent on the first two
        ]);
        let added = orthonormalize_into(&mut basis, &cand);
        assert_eq!(added, 2, "third column must deflate");
        let m = columns_to_mat(&basis);
        let g = &m.transpose() * &m;
        assert!((&g - &DMat::identity(2)).norm_max() < 1e-12);
    }

    #[test]
    fn respects_existing_basis() {
        let mut basis = vec![vec![1.0, 0.0]];
        let cand = DMat::from_cols(&[vec![1.0, 1.0]]);
        let added = orthonormalize_into(&mut basis, &cand);
        assert_eq!(added, 1);
        assert!((basis[1][0]).abs() < 1e-12, "must be orthogonal to e1");
        assert!((basis[1][1].abs() - 1.0).abs() < 1e-12);
    }
}
