//! # krylov — moment-matching and multipoint projection baselines
//!
//! The two classical projection methods the PMTBR paper compares against:
//!
//! - [`prima`]: block-Arnoldi moment matching with congruence projection
//!   (passivity-preserving), whose basis grows in blocks of `p` columns —
//!   the reason it struggles on massively coupled networks;
//! - [`mpproj`]: multipoint rational projection, which shares PMTBR's
//!   samples `z_k = (s_k·E − A)⁻¹·B` but orthonormalizes them in arrival
//!   order instead of compressing with a weighted SVD.
//!
//! ```
//! use circuits::rc_mesh;
//! use krylov::{mpproj, prima};
//! use numkit::c64;
//!
//! # fn main() -> Result<(), numkit::NumError> {
//! let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0)?;
//! let pm = prima(&sys, 6, 0.0)?;
//! let mm = mpproj(&sys, &[c64::new(0.0, 0.5), c64::new(0.0, 2.0)], 6)?;
//! assert!(pm.reduced.nstates() <= 6 && mm.reduced.nstates() <= 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mpproj;
mod orth;
mod prima;

pub use mpproj::{mpproj, MpprojModel};
pub use prima::{prima, prima_multipoint, PrimaModel};
