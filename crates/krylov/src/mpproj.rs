//! Multipoint rational projection (MPPROJ) — the multipoint baseline of
//! the paper's Fig. 10.
//!
//! Columns `z_k = (s_k·E − A)⁻¹·B` are computed at the given complex
//! sample points, realified, and orthonormalized *in arrival order* by
//! Gram–Schmidt. Unlike PMTBR there is no weighted-SVD compression step:
//! redundant directions are merely deflated, not optimally pruned — the
//! difference the paper's comparison isolates.

use lti::{realify_columns, LtiSystem, StateSpace};
use numkit::{c64, DMat, NumError};

use crate::orth::{columns_to_mat, orthonormalize_into};

/// Result of a multipoint projection reduction.
#[derive(Debug, Clone)]
pub struct MpprojModel {
    /// The reduced model.
    pub reduced: StateSpace,
    /// The projection basis (`n × q`).
    pub v: DMat,
    /// Sample points actually consumed (in order).
    pub points_used: usize,
}

/// Builds a multipoint projection model of (at most) order `order`,
/// consuming sample points in the given order until the basis is full.
///
/// Each complex point contributes up to `2·p` real columns (real and
/// imaginary parts of the block solve), each real point up to `p`.
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] if `order == 0` or no points given.
/// - [`NumError::Singular`] if a sample point hits a system pole.
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use krylov::mpproj;
/// use numkit::c64;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0)?;
/// let pts = [c64::new(0.0, 0.1), c64::new(0.0, 1.0)];
/// let m = mpproj(&sys, &pts, 4)?;
/// assert!(m.reduced.nstates() <= 4);
/// # Ok(())
/// # }
/// ```
pub fn mpproj<S: LtiSystem + ?Sized>(
    sys: &S,
    points: &[c64],
    order: usize,
) -> Result<MpprojModel, NumError> {
    if order == 0 {
        return Err(NumError::InvalidArgument("reduction order must be at least 1"));
    }
    if points.is_empty() {
        return Err(NumError::InvalidArgument("multipoint projection needs sample points"));
    }
    let b = sys.input_matrix().to_complex();
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let mut used = 0usize;
    for &s in points {
        if basis.len() >= order {
            break;
        }
        let z = sys.solve_shifted(s, &b)?;
        let cols = realify_columns(&z, 1e-12);
        orthonormalize_into(&mut basis, &cols);
        used += 1;
    }
    basis.truncate(order);
    let v = columns_to_mat(&basis);
    let reduced = sys.project(&v, &v)?;
    Ok(MpprojModel { reduced, v, points_used: used })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::rc_mesh;
    use lti::Descriptor;

    fn small_mesh() -> Descriptor {
        rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0).unwrap()
    }

    #[test]
    fn interpolates_at_sample_points() {
        let sys = small_mesh();
        let s = c64::new(0.0, 0.7);
        let m = mpproj(&sys, &[s], 2).unwrap();
        // Rational Krylov projection interpolates H at the sample point.
        let h = sys.transfer_function(s).unwrap();
        let hr = m.reduced.transfer_function(s).unwrap();
        assert!((&h - &hr).norm_max() < 1e-8, "must interpolate at s");
    }

    #[test]
    fn more_points_improve_global_accuracy() {
        let sys = small_mesh();
        let probe = c64::new(0.0, 2.5);
        let h = sys.transfer_function(probe).unwrap();
        let few = mpproj(&sys, &[c64::new(0.0, 0.1)], 9).unwrap();
        let many = mpproj(
            &sys,
            &[c64::new(0.0, 0.1), c64::new(0.0, 1.0), c64::new(0.0, 3.0), c64::new(0.0, 8.0)],
            9,
        )
        .unwrap();
        let e_few = (&h - &few.reduced.transfer_function(probe).unwrap()).norm_max();
        let e_many = (&h - &many.reduced.transfer_function(probe).unwrap()).norm_max();
        assert!(e_many < e_few, "more points must help off-sample: {e_many} vs {e_few}");
    }

    #[test]
    fn respects_order_cap() {
        let sys = small_mesh();
        let pts: Vec<c64> = (1..=6).map(|k| c64::new(0.0, k as f64)).collect();
        let m = mpproj(&sys, &pts, 3).unwrap();
        assert_eq!(m.reduced.nstates(), 3);
        assert!(m.points_used <= 3, "stops consuming points once full");
    }

    #[test]
    fn validation_errors() {
        let sys = small_mesh();
        assert!(mpproj(&sys, &[], 2).is_err());
        assert!(mpproj(&sys, &[c64::I], 0).is_err());
    }
}
