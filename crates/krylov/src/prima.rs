//! PRIMA: passive reduced-order interconnect macromodeling
//! (Odabasioglu–Celik–Pileggi), the moment-matching baseline of the
//! paper's Fig. 7.
//!
//! Block Arnoldi on `M = (G + s₀C)⁻¹·C` with starting block
//! `R = (G + s₀C)⁻¹·B`, followed by a *congruence* projection
//! `x ≈ V·z`, which preserves passivity for RC/RLC MNA systems. In our
//! descriptor convention (`E = C`, `A = −G`) the expansion matrix is the
//! real shifted pencil `(s₀E − A)`.

use lti::{Descriptor, StateSpace};
use numkit::{DMat, NumError};
use sparsekit::{SparseLu, Triplet};

use crate::orth::{columns_to_mat, orthonormalize_into};

/// Result of a PRIMA reduction.
#[derive(Debug, Clone)]
pub struct PrimaModel {
    /// The reduced model.
    pub reduced: StateSpace,
    /// The congruence projection basis `V` (`n × q`).
    pub v: DMat,
    /// Number of complete block moments matched (`q / p` rounded down).
    pub moments_matched: usize,
}

/// Runs PRIMA to produce (at most) an order-`order` reduced model.
///
/// `s0` is the (real, non-negative) expansion frequency in rad/s; `0.0`
/// gives classical dc moment matching when `G` is nonsingular.
///
/// The basis grows in blocks of (up to) `p = ninputs` columns per
/// iteration — the block-growth granularity that makes moment matching
/// impractical for massively coupled networks (paper Section IV-C).
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] if `order == 0`.
/// - [`NumError::Singular`] if `(s₀E − A)` is singular (bad expansion
///   point).
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use krylov::prima;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0)?;
/// let m = prima(&sys, 6, 0.0)?;
/// assert!(m.reduced.nstates() <= 6);
/// # Ok(())
/// # }
/// ```
pub fn prima(sys: &Descriptor, order: usize, s0: f64) -> Result<PrimaModel, NumError> {
    if order == 0 {
        return Err(NumError::InvalidArgument("reduction order must be at least 1"));
    }
    let mut sp = obs::span("prima.arnoldi");
    sp.field_u64("order", order as u64);
    let n = sys.nstates();
    let p = sys.ninputs();
    sp.field_u64("n", n as u64);
    // Factor the real pencil (s0·E − A) = (G + s0·C) once.
    let mut t = Triplet::with_capacity(n, n, sys.e.nnz() + sys.a.nnz());
    for (i, j, v) in sys.e.iter() {
        t.push(i, j, s0 * v);
    }
    for (i, j, v) in sys.a.iter() {
        t.push(i, j, -v);
    }
    let lu = SparseLu::new(&t.to_csc())?;

    // R = (s0·E − A)⁻¹·B, then block Arnoldi with M·x = (s0·E − A)⁻¹·E·x.
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let r = lu.solve_mat(&sys.b)?;
    let mut added = orthonormalize_into(&mut basis, &r);
    let mut blocks = 1usize;
    while basis.len() < order && added > 0 {
        // Apply M to the most recent block.
        let last_block: Vec<Vec<f64>> = basis[basis.len() - added..].to_vec();
        let mut next = DMat::zeros(n, last_block.len());
        for (j, col) in last_block.iter().enumerate() {
            let ecol = sys.e.mul_vec(col);
            let sol = lu.solve(&ecol)?;
            next.set_col(j, &sol);
        }
        added = orthonormalize_into(&mut basis, &next);
        blocks += 1;
        if blocks > 4 * order / p.max(1) + 16 {
            break; // safety: subspace exhausted
        }
    }
    basis.truncate(order);
    let v = columns_to_mat(&basis);
    let reduced = sys.project(&v, &v)?;
    Ok(PrimaModel { moments_matched: v.ncols() / p.max(1), reduced, v })
}

/// Multipoint PRIMA: block rational Krylov with congruence projection,
/// distributing the basis budget over several real expansion points
/// (cf. the multipoint passive reduction of Elfadel–Ling, paper
/// reference \[7\]). Matches block moments at every point while keeping
/// the passivity-preserving congruence structure.
///
/// # Errors
///
/// - [`NumError::InvalidArgument`] if `order == 0` or no points given.
/// - [`NumError::Singular`] if a pencil `(s₀E − A)` is singular.
///
/// # Examples
///
/// ```
/// use circuits::rc_mesh;
/// use krylov::prima_multipoint;
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let sys = rc_mesh(4, 4, &[0, 15], 1.0, 1.0, 2.0)?;
/// let m = prima_multipoint(&sys, 8, &[0.0, 5.0, 20.0])?;
/// assert!(m.reduced.nstates() <= 8);
/// # Ok(())
/// # }
/// ```
pub fn prima_multipoint(
    sys: &Descriptor,
    order: usize,
    shifts: &[f64],
) -> Result<PrimaModel, NumError> {
    if order == 0 {
        return Err(NumError::InvalidArgument("reduction order must be at least 1"));
    }
    if shifts.is_empty() {
        return Err(NumError::InvalidArgument("multipoint prima needs expansion points"));
    }
    let n = sys.nstates();
    let p = sys.ninputs();
    // One factorization per expansion point, reused across its blocks.
    let mut factors = Vec::with_capacity(shifts.len());
    for &s0 in shifts {
        let mut t = Triplet::with_capacity(n, n, sys.e.nnz() + sys.a.nnz());
        for (i, j, v) in sys.e.iter() {
            t.push(i, j, s0 * v);
        }
        for (i, j, v) in sys.a.iter() {
            t.push(i, j, -v);
        }
        factors.push(SparseLu::new(&t.to_csc())?);
    }
    // Round-robin over points: starting block then Krylov continuations,
    // so the order budget spreads evenly.
    let mut basis: Vec<Vec<f64>> = Vec::new();
    // Per-point most recent block (columns of the global basis).
    let mut last_block: Vec<Vec<Vec<f64>>> = vec![Vec::new(); shifts.len()];
    for (k, lu) in factors.iter().enumerate() {
        if basis.len() >= order {
            break;
        }
        let r = lu.solve_mat(&sys.b)?;
        let before = basis.len();
        orthonormalize_into(&mut basis, &r);
        last_block[k] = basis[before..].to_vec();
    }
    let mut round = 0usize;
    while basis.len() < order && round < 8 * order {
        let k = round % factors.len();
        round += 1;
        if last_block[k].is_empty() {
            continue;
        }
        let mut next = DMat::zeros(n, last_block[k].len());
        for (j, col) in last_block[k].iter().enumerate() {
            let ecol = sys.e.mul_vec(col);
            next.set_col(j, &factors[k].solve(&ecol)?);
        }
        let before = basis.len();
        orthonormalize_into(&mut basis, &next);
        last_block[k] = basis[before..].to_vec();
        if last_block.iter().all(|b| b.is_empty()) {
            break; // every point's subspace is exhausted
        }
    }
    basis.truncate(order);
    let v = columns_to_mat(&basis);
    let reduced = sys.project(&v, &v)?;
    Ok(PrimaModel { moments_matched: v.ncols() / p.max(1), reduced, v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuits::rc_mesh;
    use numkit::c64;

    fn small_mesh() -> Descriptor {
        rc_mesh(3, 3, &[0, 8], 1.0, 1.0, 2.0).unwrap()
    }

    #[test]
    fn full_order_prima_is_exact() {
        let sys = small_mesh();
        let m = prima(&sys, sys.nstates(), 0.0).unwrap();
        for &w in &[0.0, 0.5, 2.0] {
            let s = c64::new(0.0, w);
            let h = sys.transfer_function(s).unwrap();
            let hr = m.reduced.transfer_function(s).unwrap();
            assert!((&h - &hr).norm_max() < 1e-8, "w = {w}");
        }
    }

    #[test]
    fn moments_match_at_expansion_point() {
        // One block moment (q = p) matches H(s0) exactly.
        let sys = small_mesh();
        let m = prima(&sys, 2, 0.0).unwrap();
        assert_eq!(m.moments_matched, 1);
        let h = sys.transfer_function(c64::ZERO).unwrap();
        let hr = m.reduced.transfer_function(c64::ZERO).unwrap();
        assert!(
            (&h - &hr).norm_max() < 1e-9,
            "dc moment must match: {:?} vs {:?}",
            h,
            hr
        );
    }

    #[test]
    fn accuracy_improves_with_order() {
        let sys = small_mesh();
        let s = c64::new(0.0, 1.0);
        let h = sys.transfer_function(s).unwrap();
        let mut prev = f64::INFINITY;
        for order in [2, 4, 8] {
            let m = prima(&sys, order, 0.0).unwrap();
            let hr = m.reduced.transfer_function(s).unwrap();
            let err = (&h - &hr).norm_max();
            assert!(err <= prev * 1.5 + 1e-12, "order {order}: error {err} vs prev {prev}");
            prev = err;
        }
        assert!(prev < 1e-6, "order 8 of 9 states should be nearly exact");
    }

    #[test]
    fn congruence_preserves_stability_and_passivity_structure() {
        let sys = small_mesh();
        let m = prima(&sys, 4, 0.0).unwrap();
        assert!(m.reduced.is_stable().unwrap());
        // For RC circuits, congruence-projected A stays symmetric
        // negative definite (passivity certificate).
        let a = &m.reduced.a;
        assert!((a - &a.transpose()).norm_max() < 1e-9);
    }

    #[test]
    fn basis_is_orthonormal() {
        let sys = small_mesh();
        let m = prima(&sys, 5, 0.0).unwrap();
        let g = &m.v.transpose() * &m.v;
        assert!((&g - &DMat::identity(m.v.ncols())).norm_max() < 1e-10);
    }

    #[test]
    fn zero_order_rejected() {
        assert!(prima(&small_mesh(), 0, 0.0).is_err());
    }
}

#[cfg(test)]
mod multipoint_tests {
    use super::*;
    use circuits::rc_mesh;
    use numkit::c64;

    #[test]
    fn interpolates_at_every_expansion_point() {
        let sys = rc_mesh(4, 4, &[0], 1.0, 1.0, 2.0).unwrap();
        let shifts = [0.0, 4.0, 15.0];
        let m = prima_multipoint(&sys, 6, &shifts).unwrap();
        for &s0 in &shifts {
            let s = c64::from_real(s0);
            let h = sys.transfer_function(s).unwrap();
            let hr = m.reduced.transfer_function(s).unwrap();
            assert!(
                (&h - &hr).norm_max() < 1e-8 * h.norm_max().max(1e-12),
                "must interpolate at s0 = {s0}"
            );
        }
    }

    #[test]
    fn beats_single_point_prima_off_expansion() {
        let sys = rc_mesh(5, 5, &[0, 24], 1.0, 1.0, 2.0).unwrap();
        let order = 8;
        let probe = c64::new(0.0, 10.0);
        let h = sys.transfer_function(probe).unwrap();
        let single = prima(&sys, order, 0.0).unwrap();
        let multi = prima_multipoint(&sys, order, &[0.0, 5.0, 15.0]).unwrap();
        let e_single = (&single.reduced.transfer_function(probe).unwrap() - &h).norm_max();
        let e_multi = (&multi.reduced.transfer_function(probe).unwrap() - &h).norm_max();
        assert!(
            e_multi < e_single,
            "spreading points must help off dc: multi {e_multi:.2e} vs single {e_single:.2e}"
        );
    }

    #[test]
    fn congruence_structure_preserved() {
        let sys = rc_mesh(3, 3, &[0], 1.0, 1.0, 2.0).unwrap();
        let m = prima_multipoint(&sys, 5, &[0.0, 10.0]).unwrap();
        let a = &m.reduced.a;
        assert!((a - &a.transpose()).norm_max() < 1e-9);
        assert!(m.reduced.is_stable().unwrap());
    }

    #[test]
    fn validation() {
        let sys = rc_mesh(2, 2, &[0], 1.0, 1.0, 2.0).unwrap();
        assert!(prima_multipoint(&sys, 0, &[0.0]).is_err());
        assert!(prima_multipoint(&sys, 3, &[]).is_err());
    }
}
