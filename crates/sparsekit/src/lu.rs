//! Sparse LU factorization: left-looking Gilbert–Peierls with partial
//! pivoting, generic over real and complex scalars.
//!
//! This is the solver the PMTBR cost model assumes: each column is
//! computed with a sparse triangular solve whose nonzero pattern is found
//! by depth-first search, so the work is proportional to the fill-in
//! rather than `n²`. It handles the complex shifted systems
//! `(sE − A)x = b` directly — the "immature sparse complex solver"
//! gap this reproduction had to close.

use numkit::{c64, NumError, Scalar};

use crate::Csc;

/// Marker for "row not yet pivotal".
const UNSET: usize = usize::MAX;

/// A sparse LU factorization `P·A = L·U` with partial pivoting.
///
/// # Examples
///
/// ```
/// use sparsekit::{SparseLu, Triplet};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let mut t = Triplet::new(3, 3);
/// t.push(0, 0, 4.0);
/// t.push(1, 1, 2.0);
/// t.push(2, 2, 1.0);
/// t.push(0, 2, 1.0);
/// let lu = SparseLu::new(&t.to_csc())?;
/// let x = lu.solve(&[5.0, 2.0, 1.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// assert!((x[2] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu<T> {
    n: usize,
    /// L (unit lower, diagonal implicit), columns in pivot order, row
    /// indices in pivot order.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<T>,
    /// U (upper incl. diagonal stored last per column), columns/rows in
    /// pivot order.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<T>,
    /// `p[k]` = original row index pivotal at elimination step `k`.
    p: Vec<usize>,
    /// Pivot growth `max|U| / max|A|` — a cheap stability monitor.
    growth: f64,
}

/// The certificate attached to a refined solve: the relative residual
/// actually achieved and the number of refinement steps spent.
///
/// The residual is the normwise backward-error style quantity
/// `‖B − A·X‖_max / (‖A‖₁·‖X‖_max + ‖B‖_max)`; a value near machine
/// epsilon certifies a backward-stable solve, and `NaN`/`inf` marks a
/// contaminated solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveCert {
    /// Certified relative residual of the returned solution.
    pub residual: f64,
    /// Iterative-refinement steps performed (0 = accepted directly).
    pub refine_steps: usize,
}

/// The 1-norm `‖A‖₁` (maximum column absolute sum) of a sparse matrix.
pub fn one_norm<T: Scalar>(a: &Csc<T>) -> f64 {
    (0..a.ncols())
        .map(|j| a.col(j).1.iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0f64, f64::max)
}

/// Relative residual `‖B − A·X‖_max / (‖A‖₁·‖X‖_max + ‖B‖_max)` of a
/// candidate solution `X` for `A·X = B`.
///
/// Returns `NaN` if any operand is contaminated with NaN; `0.0` for the
/// degenerate all-zero problem.
///
/// # Panics
///
/// Panics on shape mismatches (callers pass matrices produced by
/// [`SparseLu::solve_mat`], which already validated shapes).
pub fn residual_norm<T: Scalar>(a: &Csc<T>, x: &numkit::Mat<T>, b: &numkit::Mat<T>) -> f64 {
    assert_eq!(x.nrows(), a.ncols(), "residual_norm: x rows");
    assert_eq!(b.nrows(), a.nrows(), "residual_norm: b rows");
    assert_eq!(x.ncols(), b.ncols(), "residual_norm: column count");
    let anorm = one_norm(a);
    let mut rmax = 0.0f64;
    let mut xmax = 0.0f64;
    let mut bmax = 0.0f64;
    for j in 0..x.ncols() {
        let xj = x.col(j);
        let ax = a.mul_vec(&xj);
        for i in 0..b.nrows() {
            let r = (b[(i, j)] - ax[i]).abs();
            // NaN propagates: max(NaN) via explicit check below.
            if r.is_nan() {
                return f64::NAN;
            }
            rmax = rmax.max(r);
            bmax = bmax.max(b[(i, j)].abs());
        }
        for v in &xj {
            let m = v.abs();
            if m.is_nan() {
                return f64::NAN;
            }
            xmax = xmax.max(m);
        }
    }
    let denom = anorm * xmax + bmax;
    if denom == 0.0 {
        if rmax == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        rmax / denom
    }
}

/// The infinity-norm `‖A‖_∞ = ‖Aᵀ‖₁` (maximum row absolute sum) of a
/// sparse matrix.
pub fn inf_norm<T: Scalar>(a: &Csc<T>) -> f64 {
    let mut row_sums = vec![0.0f64; a.nrows()];
    for j in 0..a.ncols() {
        let (rows, vals) = a.col(j);
        for (&i, v) in rows.iter().zip(vals) {
            row_sums[i] += v.abs();
        }
    }
    row_sums.into_iter().fold(0.0f64, f64::max)
}

/// `y = Aᵀ·x` (plain transpose, no conjugation) for a CSC matrix: column
/// `j` of `A` is row `j` of `Aᵀ`, so each output entry is one ready-made
/// sparse dot product.
fn transpose_mul_vec<T: Scalar>(a: &Csc<T>, x: &[T]) -> Vec<T> {
    (0..a.ncols())
        .map(|j| {
            let (rows, vals) = a.col(j);
            let mut acc = T::zero();
            for (&i, &v) in rows.iter().zip(vals) {
                acc += v * x[i];
            }
            acc
        })
        .collect()
}

/// Relative residual `‖B − Aᵀ·X‖_max / (‖Aᵀ‖₁·‖X‖_max + ‖B‖_max)` of a
/// candidate solution `X` for the transposed system `Aᵀ·X = B`.
///
/// The transpose counterpart of [`residual_norm`], used to certify
/// observability-side solves that reuse a forward factorization.
///
/// # Panics
///
/// Panics on shape mismatches (callers pass matrices produced by
/// [`SparseLu::solve_mat_transpose`], which already validated shapes).
pub fn residual_norm_transpose<T: Scalar>(
    a: &Csc<T>,
    x: &numkit::Mat<T>,
    b: &numkit::Mat<T>,
) -> f64 {
    assert_eq!(x.nrows(), a.nrows(), "residual_norm_transpose: x rows");
    assert_eq!(b.nrows(), a.ncols(), "residual_norm_transpose: b rows");
    assert_eq!(x.ncols(), b.ncols(), "residual_norm_transpose: column count");
    let anorm = inf_norm(a);
    let mut rmax = 0.0f64;
    let mut xmax = 0.0f64;
    let mut bmax = 0.0f64;
    for j in 0..x.ncols() {
        let xj = x.col(j);
        let atx = transpose_mul_vec(a, &xj);
        for i in 0..b.nrows() {
            let r = (b[(i, j)] - atx[i]).abs();
            if r.is_nan() {
                return f64::NAN;
            }
            rmax = rmax.max(r);
            bmax = bmax.max(b[(i, j)].abs());
        }
        for v in &xj {
            let m = v.abs();
            if m.is_nan() {
                return f64::NAN;
            }
            xmax = xmax.max(m);
        }
    }
    let denom = anorm * xmax + bmax;
    if denom == 0.0 {
        if rmax == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        rmax / denom
    }
}

impl<T: Scalar> SparseLu<T> {
    /// Factors the square CSC matrix `a`.
    ///
    /// # Errors
    ///
    /// - [`NumError::NotSquare`] for rectangular input.
    /// - [`NumError::Singular`] if no usable pivot exists in some column
    ///   (numerically or structurally singular).
    pub fn new(a: &Csc<T>) -> Result<Self, NumError> {
        let mut sp = obs::span("sparse_lu.factor");
        sp.field_u64("n", a.nrows() as u64);
        sp.field_u64("nnz", a.nnz() as u64);
        let lu = Self::new_inner(a)?;
        obs::counters::add(obs::Counter::LuSymbolic, 1);
        obs::counters::add(obs::Counter::LuFactor, 1);
        sp.field_u64("factor_nnz", lu.factor_nnz() as u64);
        sp.field_f64("growth", lu.growth);
        Ok(lu)
    }

    /// The uninstrumented factorization body behind [`SparseLu::new`].
    fn new_inner(a: &Csc<T>) -> Result<Self, NumError> {
        let n = a.nrows();
        if n != a.ncols() {
            return Err(NumError::NotSquare { rows: n, cols: a.ncols() });
        }
        // pinv[orig_row] = pivot step, or UNSET.
        let mut pinv = vec![UNSET; n];
        let mut p = Vec::with_capacity(n);

        // L columns during factorization carry ORIGINAL row indices; they
        // are remapped to pivot order at the end.
        let mut l_colptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<T> = Vec::new();
        let mut u_colptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<T> = Vec::new();

        // Scratch: dense accumulator, visited marks, DFS stacks.
        let mut x = vec![T::zero(); n];
        let mut mark = vec![false; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();
        let mut ucol_scratch: Vec<(usize, T)> = Vec::new();

        for j in 0..n {
            let (a_rows, a_vals) = a.col(j);

            // --- Symbolic: reach of pattern(A[:,j]) through the L graph.
            topo.clear();
            for &start in a_rows {
                if mark[start] {
                    continue;
                }
                dfs_stack.push((start, 0));
                mark[start] = true;
                while let Some(&(node, child)) = dfs_stack.last() {
                    let k = pinv[node];
                    let children: &[usize] = if k == UNSET {
                        &[]
                    } else {
                        &l_rows[l_colptr[k]..l_colptr[k + 1]]
                    };
                    if child < children.len() {
                        let c = children[child];
                        let top = dfs_stack.len() - 1;
                        dfs_stack[top].1 += 1;
                        if !mark[c] {
                            mark[c] = true;
                            dfs_stack.push((c, 0));
                        }
                    } else {
                        topo.push(node);
                        dfs_stack.pop();
                    }
                }
            }
            // `topo` is a post-order: dependencies of a node appear AFTER
            // it, so process in reverse for the triangular solve.

            // --- Numeric: sparse solve x = L⁻¹ A[:,j].
            for (&r, &v) in a_rows.iter().zip(a_vals) {
                x[r] = v;
            }
            for &s in topo.iter().rev() {
                let k = pinv[s];
                if k == UNSET {
                    continue;
                }
                let xs = x[s];
                if xs == T::zero() {
                    continue;
                }
                for idx in l_colptr[k]..l_colptr[k + 1] {
                    let r = l_rows[idx];
                    x[r] -= l_vals[idx] * xs;
                }
            }

            // --- Pivot among non-pivotal rows of the pattern.
            let mut piv_row = UNSET;
            let mut piv_mag = 0.0;
            for &s in &topo {
                if pinv[s] == UNSET {
                    let m = x[s].abs();
                    if m > piv_mag {
                        piv_mag = m;
                        piv_row = s;
                    }
                }
            }
            if piv_row == UNSET || piv_mag == 0.0 {
                // Clean scratch before erroring.
                for &s in &topo {
                    x[s] = T::zero();
                    mark[s] = false;
                }
                return Err(NumError::Singular { pivot: j });
            }
            let ujj = x[piv_row];

            // --- Store U column j (pivotal rows, ascending, diagonal
            // last) and L column j. Entries that happen to be numerically
            // zero are KEPT: the stored pattern is the full symbolic
            // reach, so it stays valid for refactorization at a different
            // shift where those cancellations do not occur. Ascending U
            // order lets [`SymbolicLu::refactor`] eliminate column j in
            // topological order without re-running the DFS.
            ucol_scratch.clear();
            for &s in &topo {
                let k = pinv[s];
                if k != UNSET {
                    ucol_scratch.push((k, x[s]));
                }
            }
            ucol_scratch.sort_unstable_by_key(|&(k, _)| k);
            for &(k, v) in &ucol_scratch {
                u_rows.push(k);
                u_vals.push(v);
            }
            u_rows.push(j);
            u_vals.push(ujj);
            u_colptr.push(u_rows.len());

            for &s in &topo {
                if pinv[s] == UNSET && s != piv_row {
                    l_rows.push(s); // original index; remapped below
                    l_vals.push(x[s] / ujj);
                }
            }
            l_colptr.push(l_rows.len());

            pinv[piv_row] = j;
            p.push(piv_row);

            // --- Clear scratch.
            for &s in &topo {
                x[s] = T::zero();
                mark[s] = false;
            }
        }

        // Remap L row indices from original to pivot order.
        for r in l_rows.iter_mut() {
            *r = pinv[*r];
        }
        let growth = pivot_growth_of(a.values(), &u_vals);
        Ok(SparseLu { n, l_colptr, l_rows, l_vals, u_colptr, u_rows, u_vals, p, growth })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` plus `U` (fill-in diagnostics).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, NumError> {
        let n = self.n;
        if b.len() != n {
            return Err(NumError::ShapeMismatch {
                operation: "sparse lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // y = P·b.
        let mut y: Vec<T> = (0..n).map(|k| b[self.p[k]]).collect();
        // Forward: L·z = y (unit diagonal), column-oriented.
        for k in 0..n {
            let yk = y[k];
            if yk == T::zero() {
                continue;
            }
            for idx in self.l_colptr[k]..self.l_colptr[k + 1] {
                let r = self.l_rows[idx];
                y[r] -= self.l_vals[idx] * yk;
            }
        }
        // Backward: U·x = z, column-oriented (diagonal stored last).
        for k in (0..n).rev() {
            let hi = self.u_colptr[k + 1];
            let lo = self.u_colptr[k];
            let diag = self.u_vals[hi - 1];
            debug_assert_eq!(self.u_rows[hi - 1], k);
            let xk = y[k] / diag;
            y[k] = xk;
            if xk == T::zero() {
                continue;
            }
            for idx in lo..hi - 1 {
                let r = self.u_rows[idx];
                y[r] -= self.u_vals[idx] * xk;
            }
        }
        Ok(y)
    }

    /// Solves for several right-hand sides given as columns of a dense
    /// matrix, returning the solutions as columns.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] on a row-count mismatch.
    pub fn solve_mat(&self, b: &numkit::Mat<T>) -> Result<numkit::Mat<T>, NumError> {
        if b.nrows() != self.n {
            return Err(NumError::ShapeMismatch {
                operation: "sparse lu solve_mat",
                left: (self.n, self.n),
                right: b.shape(),
            });
        }
        let mut out = numkit::Mat::zeros(self.n, b.ncols());
        for j in 0..b.ncols() {
            let col = self.solve(&b.col(j))?;
            out.set_col(j, &col);
        }
        Ok(out)
    }

    /// Extracts the symbolic analysis (pivot order plus L/U sparsity
    /// patterns) for reuse on other matrices with the same structure.
    ///
    /// `a` must be the matrix this factorization was computed from; its
    /// structure is recorded so [`SymbolicLu::refactor`] can verify that
    /// later inputs match.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s dimensions disagree with this factorization.
    pub fn symbolic(&self, a: &Csc<T>) -> SymbolicLu {
        assert_eq!(a.nrows(), self.n, "symbolic: row count mismatch");
        assert_eq!(a.ncols(), self.n, "symbolic: column count mismatch");
        let mut pinv = vec![UNSET; self.n];
        for (k, &row) in self.p.iter().enumerate() {
            pinv[row] = k;
        }
        SymbolicLu {
            n: self.n,
            p: self.p.clone(),
            pinv,
            l_colptr: self.l_colptr.clone(),
            l_rows: self.l_rows.clone(),
            u_colptr: self.u_colptr.clone(),
            u_rows: self.u_rows.clone(),
            a_colptr: a.colptr().to_vec(),
            a_rowidx: a.rowidx().to_vec(),
        }
    }

    /// Pivot growth factor `max|U| / max|A|` observed during the
    /// factorization.
    ///
    /// Partial pivoting keeps this modest for almost all matrices; a
    /// large value (≳ 10⁸) flags an unstable elimination — typically a
    /// frozen pivot order reused at a shift where the magnitudes flipped
    /// — and callers should refactor with fresh pivoting.
    pub fn pivot_growth(&self) -> f64 {
        self.growth
    }

    /// Solves `Aᵀ·x = b` (plain transpose, not conjugate).
    ///
    /// With `P·A = L·U` this is `Uᵀ·Lᵀ·P·x = b`: a forward sweep with
    /// `Uᵀ` (lower triangular, diagonal stored last per column), a
    /// backward sweep with `Lᵀ` (unit upper), and the inverse row
    /// permutation. Needed by the 1-norm condition estimator, which
    /// alternates solves with `A` and `Aᴴ`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `b.len() != dim()`.
    pub fn solve_transpose(&self, b: &[T]) -> Result<Vec<T>, NumError> {
        let n = self.n;
        if b.len() != n {
            return Err(NumError::ShapeMismatch {
                operation: "sparse lu solve_transpose",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward: Uᵀ·w = b. Column k of U (rows < k ascending, diagonal
        // last) is row k of Uᵀ — a ready-made dot product.
        let mut w: Vec<T> = b.to_vec();
        for k in 0..n {
            let lo = self.u_colptr[k];
            let hi = self.u_colptr[k + 1];
            let mut acc = w[k];
            for idx in lo..hi - 1 {
                acc -= self.u_vals[idx] * w[self.u_rows[idx]];
            }
            w[k] = acc / self.u_vals[hi - 1];
        }
        // Backward: Lᵀ·v = w (unit diagonal); column k of L holds rows
        // > k, i.e. row k of Lᵀ.
        for k in (0..n).rev() {
            let mut acc = w[k];
            for idx in self.l_colptr[k]..self.l_colptr[k + 1] {
                acc -= self.l_vals[idx] * w[self.l_rows[idx]];
            }
            w[k] = acc;
        }
        // Undo the row permutation: x = Pᵀ·v.
        let mut x = vec![T::zero(); n];
        for k in 0..n {
            x[self.p[k]] = w[k];
        }
        Ok(x)
    }

    /// Solves `Aᵀ·X = B` for several right-hand sides given as columns,
    /// using [`SparseLu::solve_transpose`] per column.
    ///
    /// This is what lets a *two-sided* sweep reuse one factorization per
    /// shift: the observability samples `(sE − A)⁻ᵀ·Cᵀ` come out of the
    /// same `P·A = L·U` that produced the controllability samples,
    /// instead of factoring the transposed pencil from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] on a row-count mismatch.
    pub fn solve_mat_transpose(&self, b: &numkit::Mat<T>) -> Result<numkit::Mat<T>, NumError> {
        if b.nrows() != self.n {
            return Err(NumError::ShapeMismatch {
                operation: "sparse lu solve_mat_transpose",
                left: (self.n, self.n),
                right: b.shape(),
            });
        }
        let mut out = numkit::Mat::zeros(self.n, b.ncols());
        for j in 0..b.ncols() {
            let col = self.solve_transpose(&b.col(j))?;
            out.set_col(j, &col);
        }
        Ok(out)
    }

    /// One step of iterative refinement for the transposed system:
    /// `x += A⁻ᵀ·(b − Aᵀ·x)` column by column, returning the relative
    /// residual of the refined solution (see [`residual_norm_transpose`]).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] on inconsistent shapes.
    pub fn refine_mat_transpose(
        &self,
        a: &Csc<T>,
        b: &numkit::Mat<T>,
        x: &mut numkit::Mat<T>,
    ) -> Result<f64, NumError> {
        if b.nrows() != self.n || x.nrows() != self.n || b.ncols() != x.ncols() {
            return Err(NumError::ShapeMismatch {
                operation: "sparse lu refine_mat_transpose",
                left: x.shape(),
                right: b.shape(),
            });
        }
        for j in 0..b.ncols() {
            let xj = x.col(j);
            let atx = transpose_mul_vec(a, &xj);
            let r: Vec<T> = (0..self.n).map(|i| b[(i, j)] - atx[i]).collect();
            let dx = self.solve_transpose(&r)?;
            let refined: Vec<T> = xj.iter().zip(&dx).map(|(&xi, &di)| xi + di).collect();
            x.set_col(j, &refined);
        }
        obs::counters::add(obs::Counter::RefineIters, 1);
        Ok(residual_norm_transpose(a, x, b))
    }

    /// Cheap 1-norm reciprocal condition estimate `1 / (‖A‖₁·‖A⁻¹‖₁)`
    /// via Hager's method (the LAPACK `xLACON` iteration): a handful of
    /// solves with `A` and `Aᴴ` against probing vectors.
    ///
    /// `a` must be the matrix this factorization was computed from.
    /// Returns a value in `[0, 1]`; `0.0` signals an effectively
    /// singular or contaminated factorization.
    pub fn rcond1_estimate(&self, a: &Csc<T>) -> f64 {
        let n = self.n;
        if n == 0 {
            return 1.0;
        }
        let anorm = one_norm(a);
        if anorm == 0.0 || !anorm.is_finite() {
            return 0.0;
        }
        // Hager iteration estimating ‖A⁻¹‖₁.
        // numlint:allow(FLOAT02) matrix dimension, far below 2^53, cast exact
        let mut x: Vec<T> = vec![T::from_f64(1.0 / n as f64); n];
        let mut est = 0.0f64;
        let mut last_j = usize::MAX;
        for _ in 0..5 {
            let y = match self.solve(&x) {
                Ok(y) => y,
                Err(_) => return 0.0,
            };
            let y1: f64 = y.iter().map(|v| v.abs()).sum();
            if !y1.is_finite() {
                return 0.0;
            }
            est = est.max(y1);
            // ξ = sign(y) (unit-modulus phase for complex entries).
            let xi: Vec<T> = y
                .iter()
                .map(|&v| {
                    let m = v.abs();
                    if m == 0.0 {
                        T::one()
                    } else {
                        v.scale(1.0 / m)
                    }
                })
                .collect();
            // z = A⁻ᴴ·ξ, via conj(A⁻ᵀ·conj(ξ)).
            let xi_conj: Vec<T> = xi.iter().map(|v| v.conj()).collect();
            let z = match self.solve_transpose(&xi_conj) {
                Ok(z) => z,
                Err(_) => return 0.0,
            };
            let (mut zmax, mut j) = (0.0f64, 0usize);
            for (i, v) in z.iter().enumerate() {
                let m = v.abs();
                if m > zmax {
                    zmax = m;
                    j = i;
                }
            }
            if !zmax.is_finite() || j == last_j {
                break;
            }
            // Convergence test: ‖z‖∞ ≤ zᴴ·x means the gradient no longer
            // improves the estimate.
            let zx: f64 = z.iter().zip(&x).map(|(zi, xi)| (zi.conj() * *xi).re()).sum();
            if zmax <= zx {
                break;
            }
            last_j = j;
            x = vec![T::zero(); n];
            x[j] = T::one();
        }
        if est == 0.0 {
            return 0.0;
        }
        (1.0 / (anorm * est)).clamp(0.0, 1.0)
    }

    /// One step of iterative refinement in place: `x += A⁻¹·(b − A·x)`,
    /// column by column, returning the relative residual of the refined
    /// solution (see [`residual_norm`]).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] on inconsistent shapes.
    pub fn refine_mat(
        &self,
        a: &Csc<T>,
        b: &numkit::Mat<T>,
        x: &mut numkit::Mat<T>,
    ) -> Result<f64, NumError> {
        if b.nrows() != self.n || x.nrows() != self.n || b.ncols() != x.ncols() {
            return Err(NumError::ShapeMismatch {
                operation: "sparse lu refine_mat",
                left: x.shape(),
                right: b.shape(),
            });
        }
        for j in 0..b.ncols() {
            let xj = x.col(j);
            let ax = a.mul_vec(&xj);
            let r: Vec<T> = (0..self.n).map(|i| b[(i, j)] - ax[i]).collect();
            let dx = self.solve(&r)?;
            let refined: Vec<T> = xj.iter().zip(&dx).map(|(&xi, &di)| xi + di).collect();
            x.set_col(j, &refined);
        }
        obs::counters::add(obs::Counter::RefineIters, 1);
        Ok(residual_norm(a, x, b))
    }

    /// Solves `A·X = B` with a certified relative residual: the plain
    /// solve is followed by up to `max_refine` steps of iterative
    /// refinement until the residual drops below `tol` (or stops
    /// improving). The achieved residual — whether or not it met `tol` —
    /// is returned in the [`SolveCert`]; callers decide how to escalate.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] on a row-count mismatch.
    pub fn solve_mat_certified(
        &self,
        a: &Csc<T>,
        b: &numkit::Mat<T>,
        tol: f64,
        max_refine: usize,
    ) -> Result<(numkit::Mat<T>, SolveCert), NumError> {
        let mut x = self.solve_mat(b)?;
        let mut residual = residual_norm(a, &x, b);
        let mut refine_steps = 0;
        while residual.is_finite() && residual > tol && refine_steps < max_refine {
            let next = self.refine_mat(a, b, &mut x)?;
            refine_steps += 1;
            if !(next < residual) {
                residual = next;
                break;
            }
            residual = next;
        }
        Ok((x, SolveCert { residual, refine_steps }))
    }

    /// Reciprocal condition estimate from the `U` diagonal magnitudes.
    pub fn rcond_estimate(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for k in 0..self.n {
            let d = self.u_vals[self.u_colptr[k + 1] - 1].abs();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if hi == 0.0 {
            0.0
        } else {
            lo / hi
        }
    }
}

/// Reusable symbolic LU analysis: the pivot order and the L/U sparsity
/// patterns discovered by one [`SparseLu::new`] run, detached from any
/// numeric values.
///
/// This is the KLU-style refactorization split that makes multipoint
/// sampling cheap: the symbolic work (DFS reach, pivot search, fill
/// pattern) is done once at the first shift, and every subsequent shifted
/// pencil `s·E − A` — which shares the sparsity structure exactly — is
/// factored by [`refactor`](SymbolicLu::refactor), a numeric-only pass
/// with no graph traversal and no pivot search.
///
/// The stored patterns include entries that were numerically zero at the
/// analyzed shift (see [`SparseLu::new`]), so shift-dependent
/// cancellations do not invalidate the reuse.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    n: usize,
    /// `p[k]` = original row pivotal at step `k`.
    p: Vec<usize>,
    /// `pinv[orig_row]` = pivot step.
    pinv: Vec<usize>,
    /// L pattern (unit lower, diag implicit), rows in pivot order.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    /// U pattern, rows ascending per column with the diagonal last.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    /// Structure of the analyzed matrix, for input validation.
    a_colptr: Vec<usize>,
    a_rowidx: Vec<usize>,
}

impl SymbolicLu {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored pattern entries in `L` plus `U`.
    pub fn pattern_nnz(&self) -> usize {
        self.l_rows.len() + self.u_rows.len()
    }

    /// `true` if `a` has exactly the structure this analysis was
    /// computed for.
    pub fn matches_structure<T: Scalar>(&self, a: &Csc<T>) -> bool {
        a.nrows() == self.n
            && a.ncols() == self.n
            && a.colptr() == &self.a_colptr[..]
            && a.rowidx() == &self.a_rowidx[..]
    }

    /// Numeric-only refactorization: factors `a` along the precomputed
    /// pivot order and fill pattern, skipping all symbolic work.
    ///
    /// The pivots are NOT re-chosen; if a fixed pivot is exactly zero (or
    /// non-finite) for this particular matrix, [`NumError::Singular`] is
    /// returned and the caller should fall back to a fresh
    /// [`SparseLu::new`].
    ///
    /// # Errors
    ///
    /// - [`NumError::ShapeMismatch`] if `a`'s structure differs from the
    ///   analyzed structure.
    /// - [`NumError::Singular`] if a fixed pivot vanishes.
    pub fn refactor<T: Scalar>(&self, a: &Csc<T>) -> Result<SparseLu<T>, NumError> {
        let mut sp = obs::span("sparse_lu.refactor");
        sp.field_u64("n", self.n as u64);
        let lu = self.refactor_inner(a)?;
        obs::counters::add(obs::Counter::LuFactor, 1);
        sp.field_f64("growth", lu.growth);
        Ok(lu)
    }

    /// The uninstrumented numeric pass behind [`SymbolicLu::refactor`].
    fn refactor_inner<T: Scalar>(&self, a: &Csc<T>) -> Result<SparseLu<T>, NumError> {
        if !self.matches_structure(a) {
            return Err(NumError::ShapeMismatch {
                operation: "sparse lu refactor",
                left: (self.n, self.n),
                right: (a.nrows(), a.ncols()),
            });
        }
        let n = self.n;
        let mut l_vals: Vec<T> = Vec::with_capacity(self.l_rows.len());
        let mut u_vals: Vec<T> = Vec::with_capacity(self.u_rows.len());
        // Dense accumulator indexed by PIVOT position; only pattern
        // positions are ever touched, and they are re-zeroed per column.
        let mut x = vec![T::zero(); n];

        for j in 0..n {
            // Scatter A[:,j] into pivot coordinates. Every structural
            // entry lies inside the reach pattern, so clearing the
            // pattern below restores x to all-zeros.
            let (a_rows, a_vals) = a.col(j);
            for (&r, &v) in a_rows.iter().zip(a_vals) {
                x[self.pinv[r]] = v;
            }

            let ulo = self.u_colptr[j];
            let uhi = self.u_colptr[j + 1];
            debug_assert!(uhi > ulo && self.u_rows[uhi - 1] == j, "diag stored last");

            // Eliminate with the already-finished columns k < j, in
            // ascending (= topological) order along the stored U pattern.
            for idx in ulo..uhi - 1 {
                let k = self.u_rows[idx];
                let xk = x[k];
                u_vals.push(xk);
                if xk == T::zero() {
                    continue;
                }
                for lidx in self.l_colptr[k]..self.l_colptr[k + 1] {
                    x[self.l_rows[lidx]] -= l_vals[lidx] * xk;
                }
            }

            let ujj = x[j];
            if ujj == T::zero() || !ujj.abs().is_finite() {
                return Err(NumError::Singular { pivot: j });
            }
            u_vals.push(ujj);
            for lidx in self.l_colptr[j]..self.l_colptr[j + 1] {
                l_vals.push(x[self.l_rows[lidx]] / ujj);
            }

            // Clear scratch along the pattern.
            for idx in ulo..uhi {
                x[self.u_rows[idx]] = T::zero();
            }
            for lidx in self.l_colptr[j]..self.l_colptr[j + 1] {
                x[self.l_rows[lidx]] = T::zero();
            }
        }

        let growth = pivot_growth_of(a.values(), &u_vals);
        Ok(SparseLu {
            n,
            l_colptr: self.l_colptr.clone(),
            l_rows: self.l_rows.clone(),
            l_vals,
            u_colptr: self.u_colptr.clone(),
            u_rows: self.u_rows.clone(),
            u_vals,
            p: self.p.clone(),
            growth,
        })
    }
}

// ---------------------------------------------------------------------
// Serializable artifacts
//
// The artifact cache (pmtbr::cache, crates/serve) treats a symbolic
// analysis and a factored shift as content-addressed values keyed on
// `(pencil_hash, shift)`. The byte format is deliberately primitive —
// a short ASCII magic, then little-endian u64 words — so it needs no
// external serialization crates and stays bit-exact: floats travel as
// IEEE-754 bit patterns, and a decode→solve is bit-identical to the
// original factorization's solve.
//
// `from_bytes` validates every structural invariant the numeric passes
// rely on (permutation bijectivity, monotone column pointers, per-column
// diagonal-last U patterns, in-bounds row indices), so a corrupted or
// adversarial artifact is rejected with `NumError::InvalidArgument`
// instead of panicking mid-solve.

const SYMBOLIC_MAGIC: &[u8; 8] = b"PMTBRSY1";
const FACTOR_MAGIC: &[u8; 8] = b"PMTBRFZ1";

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usizes(out: &mut Vec<u8>, xs: &[usize]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        put_u64(out, x as u64);
    }
}

/// A bounds-checked little-endian u64 reader over an artifact byte
/// string.
struct ArtifactReader<'a> {
    buf: &'a [u8],
}

impl<'a> ArtifactReader<'a> {
    fn new(buf: &'a [u8], magic: &[u8; 8]) -> Result<Self, NumError> {
        let Some((head, rest)) = buf.split_at_checked(magic.len()) else {
            return Err(NumError::InvalidArgument("artifact bytes truncated"));
        };
        if head != magic {
            return Err(NumError::InvalidArgument("artifact magic mismatch"));
        }
        Ok(ArtifactReader { buf: rest })
    }

    fn u64(&mut self) -> Result<u64, NumError> {
        let Some((head, rest)) = self.buf.split_at_checked(8) else {
            return Err(NumError::InvalidArgument("artifact bytes truncated"));
        };
        let mut word = [0u8; 8];
        word.copy_from_slice(head);
        self.buf = rest;
        Ok(u64::from_le_bytes(word))
    }

    fn usize(&mut self) -> Result<usize, NumError> {
        usize::try_from(self.u64()?)
            .map_err(|_| NumError::InvalidArgument("artifact word exceeds usize"))
    }

    fn usizes(&mut self) -> Result<Vec<usize>, NumError> {
        let len = self.usize()?;
        if len > self.buf.len() / 8 {
            return Err(NumError::InvalidArgument("artifact length field exceeds payload"));
        }
        (0..len).map(|_| self.usize()).collect()
    }

    fn f64(&mut self) -> Result<f64, NumError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn finish(self) -> Result<(), NumError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(NumError::InvalidArgument("artifact has trailing bytes"))
        }
    }
}

/// `true` if `p` is a permutation of `0..n` (every value hit once).
fn is_permutation(p: &[usize], n: usize) -> bool {
    if p.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &x in p {
        if x >= n || seen[x] {
            return false;
        }
        seen[x] = true;
    }
    true
}

/// Validates a CSC-style pattern: `colptr` has `n + 1` monotone entries
/// ending at `rows.len()`, and every row index is `< n`.
fn pattern_ok(colptr: &[usize], rows: &[usize], n: usize) -> bool {
    colptr.len() == n + 1
        && colptr[0] == 0
        && colptr.windows(2).all(|w| w[0] <= w[1])
        && colptr[n] == rows.len()
        && rows.iter().all(|&r| r < n)
}

/// Validates the U pattern the elimination passes assume: each column
/// non-empty, rows strictly ascending, diagonal (`== j`) stored last.
/// This is what keeps `refactor`'s partial `l_vals` indexing in bounds.
fn u_pattern_ok(u_colptr: &[usize], u_rows: &[usize], n: usize) -> bool {
    if !pattern_ok(u_colptr, u_rows, n) {
        return false;
    }
    (0..n).all(|j| {
        let col = &u_rows[u_colptr[j]..u_colptr[j + 1]];
        col.last() == Some(&j) && col.windows(2).all(|w| w[0] < w[1])
    })
}

/// Validates an L pattern (unit lower, diagonal implicit): entries in
/// column `j` strictly below `j`.
fn l_pattern_ok(l_colptr: &[usize], l_rows: &[usize], n: usize) -> bool {
    pattern_ok(l_colptr, l_rows, n)
        && (0..n).all(|j| l_rows[l_colptr[j]..l_colptr[j + 1]].iter().all(|&r| r > j && r < n))
}

impl SymbolicLu {
    /// Serializes the analysis as a content-addressed artifact (magic +
    /// little-endian u64 words). The inverse is
    /// [`SymbolicLu::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 8 * (3 * self.n + self.pattern_nnz()));
        out.extend_from_slice(SYMBOLIC_MAGIC);
        put_u64(&mut out, self.n as u64);
        put_usizes(&mut out, &self.p);
        put_usizes(&mut out, &self.pinv);
        put_usizes(&mut out, &self.l_colptr);
        put_usizes(&mut out, &self.l_rows);
        put_usizes(&mut out, &self.u_colptr);
        put_usizes(&mut out, &self.u_rows);
        put_usizes(&mut out, &self.a_colptr);
        put_usizes(&mut out, &self.a_rowidx);
        out
    }

    /// Reconstructs an analysis from [`SymbolicLu::to_bytes`] output,
    /// validating every invariant [`SymbolicLu::refactor`] relies on.
    ///
    /// # Errors
    ///
    /// [`NumError::InvalidArgument`] on truncated, trailing, or
    /// structurally inconsistent bytes — a corrupted artifact can never
    /// reach the numeric pass.
    pub fn from_bytes(bytes: &[u8]) -> Result<SymbolicLu, NumError> {
        let mut r = ArtifactReader::new(bytes, SYMBOLIC_MAGIC)?;
        let n = r.usize()?;
        let p = r.usizes()?;
        let pinv = r.usizes()?;
        let l_colptr = r.usizes()?;
        let l_rows = r.usizes()?;
        let u_colptr = r.usizes()?;
        let u_rows = r.usizes()?;
        let a_colptr = r.usizes()?;
        let a_rowidx = r.usizes()?;
        r.finish()?;
        let perms_ok = is_permutation(&p, n)
            && pinv.len() == n
            && p.iter().enumerate().all(|(k, &row)| pinv[row] == k);
        if !perms_ok
            || !l_pattern_ok(&l_colptr, &l_rows, n)
            || !u_pattern_ok(&u_colptr, &u_rows, n)
            || !pattern_ok(&a_colptr, &a_rowidx, n)
        {
            return Err(NumError::InvalidArgument("symbolic artifact fails validation"));
        }
        Ok(SymbolicLu { n, p, pinv, l_colptr, l_rows, u_colptr, u_rows, a_colptr, a_rowidx })
    }
}

impl SparseLu<c64> {
    /// Serializes this factored (complex-shifted) pencil as a
    /// content-addressed artifact; values travel as IEEE-754 bit
    /// patterns, so a round-tripped factorization solves bit-identically.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(24 + 8 * (3 * self.n + 3 * (self.l_vals.len() + self.u_vals.len())));
        out.extend_from_slice(FACTOR_MAGIC);
        put_u64(&mut out, self.n as u64);
        put_usizes(&mut out, &self.l_colptr);
        put_usizes(&mut out, &self.l_rows);
        put_usizes(&mut out, &self.u_colptr);
        put_usizes(&mut out, &self.u_rows);
        put_usizes(&mut out, &self.p);
        put_u64(&mut out, self.growth.to_bits());
        for v in self.l_vals.iter().chain(self.u_vals.iter()) {
            put_u64(&mut out, v.re.to_bits());
            put_u64(&mut out, v.im.to_bits());
        }
        out
    }

    /// Reconstructs a factorization from [`SparseLu::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`NumError::InvalidArgument`] on truncated, trailing, or
    /// structurally inconsistent bytes (see [`SymbolicLu::from_bytes`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<SparseLu<c64>, NumError> {
        let mut r = ArtifactReader::new(bytes, FACTOR_MAGIC)?;
        let n = r.usize()?;
        let l_colptr = r.usizes()?;
        let l_rows = r.usizes()?;
        let u_colptr = r.usizes()?;
        let u_rows = r.usizes()?;
        let p = r.usizes()?;
        let growth = r.f64()?;
        if !is_permutation(&p, n)
            || !l_pattern_ok(&l_colptr, &l_rows, n)
            || !u_pattern_ok(&u_colptr, &u_rows, n)
        {
            return Err(NumError::InvalidArgument("factor artifact fails validation"));
        }
        let read_vals = |r: &mut ArtifactReader, len: usize| -> Result<Vec<c64>, NumError> {
            (0..len).map(|_| Ok(c64::new(r.f64()?, r.f64()?))).collect()
        };
        let l_vals = read_vals(&mut r, l_rows.len())?;
        let u_vals = read_vals(&mut r, u_rows.len())?;
        r.finish()?;
        Ok(SparseLu { n, l_colptr, l_rows, l_vals, u_colptr, u_rows, u_vals, p, growth })
    }
}

/// Pivot growth `max|U| / max|A|` (1.0 for an empty matrix).
fn pivot_growth_of<T: Scalar>(a_vals: &[T], u_vals: &[T]) -> f64 {
    let a_max = a_vals.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    let u_max = u_vals.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    if a_max == 0.0 {
        1.0
    } else {
        u_max / a_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplet;
    use numkit::{c64, DMat, Lu};

    /// Deterministic pseudo-random sparse matrix with a dominant diagonal.
    fn random_sparse(n: usize, fill: usize, seed: u64) -> Triplet<f64> {
        let mut t = Triplet::new(n, n);
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            t.push(i, i, 10.0 + (next() % 100) as f64 / 10.0);
            for _ in 0..fill {
                let j = (next() as usize) % n;
                let v = ((next() % 200) as f64 - 100.0) / 50.0;
                t.push(i, j, v);
            }
        }
        t
    }

    #[test]
    fn solve_matches_dense_lu() {
        let t = random_sparse(30, 3, 7);
        let csc = t.to_csc();
        let dense = csc.to_dense();
        let b: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let xs = SparseLu::new(&csc).unwrap().solve(&b).unwrap();
        let xd = Lu::new(dense).unwrap().solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-9, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn complex_shifted_system() {
        // (sI - A) x = b with s = j·w: the PMTBR kernel.
        let t = random_sparse(20, 2, 3);
        let a = t.to_csc();
        let s = c64::new(0.0, 2.5);
        let shifted = {
            let mut tz = Triplet::<c64>::new(20, 20);
            for j in 0..20 {
                let (rows, vals) = a.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    tz.push(r, j, c64::from_real(-v));
                }
            }
            for i in 0..20 {
                tz.push(i, i, s);
            }
            tz.to_csc()
        };
        let b: Vec<c64> = (0..20).map(|i| c64::new(1.0, i as f64 / 10.0)).collect();
        let x = SparseLu::new(&shifted).unwrap().solve(&b).unwrap();
        // Residual check against the dense operator.
        let dz = shifted.to_dense();
        let ax = dz.mul_vec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((*axi - *bi).abs() < 1e-9);
        }
    }

    #[test]
    fn artifact_roundtrips_are_bit_identical() {
        // Factored-shift artifact: decode → solve must equal the
        // original solve bit-for-bit (the cache-identity contract).
        let t = random_sparse(25, 3, 11);
        let a = t.to_csc();
        let s = c64::new(0.3, 1.7);
        let mut tz = Triplet::<c64>::new(25, 25);
        for (i, j, v) in t.to_csr().iter() {
            tz.push(i, j, c64::from_real(-v));
        }
        for i in 0..25 {
            tz.push(i, i, s);
        }
        let shifted = tz.to_csc();
        let lu = SparseLu::new(&shifted).unwrap();
        let back = SparseLu::from_bytes(&lu.to_bytes()).unwrap();
        let b: Vec<c64> = (0..25).map(|i| c64::new((i as f64).cos(), 0.5)).collect();
        let x0 = lu.solve(&b).unwrap();
        let x1 = back.solve(&b).unwrap();
        assert!(x0.iter().zip(&x1).all(|(p, q)| p.re.to_bits() == q.re.to_bits()
            && p.im.to_bits() == q.im.to_bits()));

        // Symbolic artifact: decode → refactor must equal a direct
        // refactor from the live analysis bit-for-bit.
        let sym = SparseLu::new(&a).unwrap().symbolic(&a);
        let sym2 = SymbolicLu::from_bytes(&sym.to_bytes()).unwrap();
        let f0 = sym.refactor(&a).unwrap();
        let f1 = sym2.refactor(&a).unwrap();
        let y0 = f0.solve(&[1.0f64; 25]).unwrap();
        let y1 = f1.solve(&[1.0f64; 25]).unwrap();
        assert!(y0.iter().zip(&y1).all(|(p, q)| p.to_bits() == q.to_bits()));
    }

    #[test]
    fn corrupted_artifacts_are_rejected() {
        let t = random_sparse(12, 2, 5);
        let a = t.to_csc();
        let sym = SparseLu::new(&a).unwrap().symbolic(&a);
        let bytes = sym.to_bytes();
        // Truncation, magic damage, and trailing garbage all fail.
        assert!(SymbolicLu::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(SymbolicLu::from_bytes(&bad_magic).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SymbolicLu::from_bytes(&trailing).is_err());
        // Structural damage: clobber a permutation word past the header
        // (magic + n + len), breaking bijectivity.
        let mut bad_perm = bytes;
        let off = 8 + 8 + 8;
        for byte in &mut bad_perm[off..off + 8] {
            *byte = 0xee;
        }
        assert!(SymbolicLu::from_bytes(&bad_perm).is_err());
    }

    #[test]
    fn permutation_matrix_roundtrip() {
        // A pure permutation requires pivoting to factor at all.
        let mut t = Triplet::new(4, 4);
        t.push(0, 2, 1.0);
        t.push(1, 0, 1.0);
        t.push(2, 3, 1.0);
        t.push(3, 1, 1.0);
        let lu = SparseLu::new(&t.to_csc()).unwrap();
        let b = vec![10.0, 20.0, 30.0, 40.0];
        let x = lu.solve(&b).unwrap();
        let ax = t.to_csc().mul_vec(&x);
        assert_eq!(ax, b);
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let n = 50;
        let mut t = Triplet::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
                t.push(i - 1, i, -1.0);
            }
        }
        let lu = SparseLu::new(&t.to_csc()).unwrap();
        // L and U each have at most 2 entries per column for a
        // diagonally dominant tridiagonal matrix (no pivoting needed).
        assert!(lu.factor_nnz() <= 3 * n, "unexpected fill-in: {}", lu.factor_nnz());
        let b = vec![1.0; n];
        let x = lu.solve(&b).unwrap();
        let ax = t.to_csc().mul_vec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn structurally_singular_detected() {
        let mut t = Triplet::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        // Column 2 completely empty.
        assert!(matches!(SparseLu::new(&t.to_csc()), Err(NumError::Singular { .. })));
    }

    #[test]
    fn numerically_singular_detected() {
        let mut t = Triplet::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(0, 1, 2.0);
        t.push(1, 1, 4.0);
        assert!(matches!(SparseLu::new(&t.to_csc()), Err(NumError::Singular { .. })));
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let t = random_sparse(10, 2, 11);
        let lu = SparseLu::new(&t.to_csc()).unwrap();
        let b = DMat::from_fn(10, 3, |i, j| (i * 3 + j) as f64);
        let x = lu.solve_mat(&b).unwrap();
        let ax = t.to_csc().to_dense().matmul(&x).unwrap();
        assert!((&ax - &b).norm_max() < 1e-9);
    }

    /// Complex shifted pencil s·E − A on a shared structure.
    fn shifted_pencil(n: usize, seed: u64, s: c64) -> Csc<c64> {
        let a = random_sparse(n, 2, seed).to_csc();
        let mut tz = Triplet::<c64>::new(n, n);
        for j in 0..n {
            let (rows, vals) = a.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                tz.push(r, j, c64::from_real(-v));
            }
        }
        for i in 0..n {
            tz.push(i, i, s);
        }
        tz.to_csc()
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        for seed in [1u64, 5, 9, 42] {
            let s0 = c64::new(0.0, 1.0);
            let a0 = shifted_pencil(25, seed, s0);
            let lu0 = SparseLu::new(&a0).unwrap();
            let sym = lu0.symbolic(&a0);
            for &w in &[0.1, 3.0, 77.0] {
                let ak = shifted_pencil(25, seed, c64::new(0.0, w));
                let re = sym.refactor(&ak).unwrap();
                let fresh = SparseLu::new(&ak).unwrap();
                let b: Vec<c64> =
                    (0..25).map(|i| c64::new((i as f64).cos(), 0.3 * i as f64)).collect();
                let xr = re.solve(&b).unwrap();
                let xf = fresh.solve(&b).unwrap();
                for (r, f) in xr.iter().zip(&xf) {
                    assert!((*r - *f).abs() < 1e-9, "seed {seed} w {w}");
                }
                // The refactorization must itself satisfy A x = b.
                let ax = ak.to_dense().mul_vec(&xr);
                for (axi, bi) in ax.iter().zip(&b) {
                    assert!((*axi - *bi).abs() < 1e-8, "seed {seed} w {w}");
                }
            }
        }
    }

    #[test]
    fn refactor_handles_pivot_magnitude_flip() {
        // At the analyzed shift the (0,0) entry dominates; at the second
        // shift the magnitudes flip so fresh partial pivoting would pick
        // different pivots — refactor must still produce a correct
        // factorization along the frozen pivot order.
        let build = |d0: f64, d1: f64| {
            let mut t = Triplet::new(2, 2);
            t.push(0, 0, d0);
            t.push(1, 0, 1.0);
            t.push(0, 1, 1.0);
            t.push(1, 1, d1);
            t.to_csc()
        };
        let a0 = build(10.0, 0.5);
        let sym = SparseLu::new(&a0).unwrap().symbolic(&a0);
        let a1 = build(0.5, 10.0);
        let re = sym.refactor(&a1).unwrap();
        let x = re.solve(&[1.0, 2.0]).unwrap();
        let ax = a1.mul_vec(&x);
        assert!((ax[0] - 1.0).abs() < 1e-12 && (ax[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn refactor_detects_vanished_pivot_and_shape_mismatch() {
        let mut t = Triplet::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let a0 = t.to_csc();
        let sym = SparseLu::new(&a0).unwrap().symbolic(&a0);
        // Same structure, but the second diagonal entry is now zero
        // (built via raw parts — Triplet would drop the exact zero).
        let a1 = Csc::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 0.0]);
        assert!(matches!(sym.refactor(&a1), Err(NumError::Singular { pivot: 1 })));
        // Different structure is rejected outright.
        let mut t2 = Triplet::new(2, 2);
        t2.push(0, 0, 1.0);
        t2.push(1, 0, 1.0);
        t2.push(1, 1, 1.0);
        assert!(matches!(sym.refactor(&t2.to_csc()), Err(NumError::ShapeMismatch { .. })));
    }

    #[test]
    fn refactor_survives_shift_dependent_cancellation() {
        // s·e − a with e = 0 on the off-diagonal and a ≠ 0: at the
        // analyzed shift the off-diagonal is nonzero, and the pattern must
        // keep serving shifts where OTHER entries cancel (s·e = a).
        let build = |s: f64| {
            let (e_d, a_d) = (1.0, -2.0);
            let (e_off, a_off) = (1.0, 2.0); // cancels at s = 2
            Csc::from_raw_parts(
                2,
                2,
                vec![0, 2, 3],
                vec![0, 1, 1],
                vec![s * e_d - a_d, s * e_off - a_off, s * e_d - a_d],
            )
        };
        let a0 = build(1.0);
        let sym = SparseLu::new(&a0).unwrap().symbolic(&a0);
        // At s = 2 the (1,0) entry is exactly zero but structurally present.
        let a1 = build(2.0);
        let re = sym.refactor(&a1).unwrap();
        let x = re.solve(&[4.0, 8.0]).unwrap();
        let ax = a1.mul_vec(&x);
        assert!((ax[0] - 4.0).abs() < 1e-12 && (ax[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn zero_pattern_entries_preserved_for_reuse() {
        // Factor a matrix whose elimination produces an exact cancellation
        // and confirm the pattern entry survives (factor_nnz counts it).
        let a = Csc::from_raw_parts(
            2,
            2,
            vec![0, 2, 4],
            vec![0, 1, 0, 1],
            vec![2.0, 1.0, 4.0, 2.0 + 1e-9],
        );
        let lu = SparseLu::new(&a).unwrap();
        // Dense 2×2: L has 1 entry, U has 3 (incl. both diagonals).
        assert_eq!(lu.factor_nnz(), 4);
        let sym = lu.symbolic(&a);
        assert_eq!(sym.pattern_nnz(), 4);
        assert_eq!(sym.dim(), 2);
    }

    #[test]
    fn rcond_reasonable_for_identity() {
        let mut t = Triplet::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        let lu = SparseLu::new(&t.to_csc()).unwrap();
        assert!((lu.rcond_estimate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transpose_solve_matches_dense() {
        let t = random_sparse(25, 3, 13);
        let csc = t.to_csc();
        let lu = SparseLu::new(&csc).unwrap();
        let b: Vec<f64> = (0..25).map(|i| (i as f64 * 0.7).cos()).collect();
        let x = lu.solve_transpose(&b).unwrap();
        // Verify Aᵀ x = b against the dense transpose operator.
        let atx = csc.to_dense().transpose().mul_vec(&x);
        for (l, r) in atx.iter().zip(&b) {
            assert!((l - r).abs() < 1e-9, "{l} vs {r}");
        }
        assert!(lu.solve_transpose(&b[..3]).is_err());
    }

    #[test]
    fn transpose_solve_complex() {
        let a = shifted_pencil(15, 4, c64::new(0.3, 1.7));
        let lu = SparseLu::new(&a).unwrap();
        let b: Vec<c64> = (0..15).map(|i| c64::new(1.0, -(i as f64) / 5.0)).collect();
        let x = lu.solve_transpose(&b).unwrap();
        let atx = a.to_dense().transpose().mul_vec(&x);
        for (l, r) in atx.iter().zip(&b) {
            assert!((*l - *r).abs() < 1e-9);
        }
    }

    #[test]
    fn rcond1_tracks_true_conditioning() {
        // Identity: perfectly conditioned.
        let mut t = Triplet::new(6, 6);
        for i in 0..6 {
            t.push(i, i, 1.0);
        }
        let id = t.to_csc();
        let r_id = SparseLu::new(&id).unwrap().rcond1_estimate(&id);
        assert!(r_id > 0.5, "identity rcond {r_id}");
        // Graded diagonal diag(1, 1e-10): κ₁ = 1e10.
        let mut t = Triplet::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1e-10);
        let graded = t.to_csc();
        let r = SparseLu::new(&graded).unwrap().rcond1_estimate(&graded);
        assert!(r < 1e-9 && r > 1e-11, "graded rcond {r}");
    }

    #[test]
    fn pivot_growth_modest_with_pivoting_large_when_frozen() {
        let t = random_sparse(30, 3, 21);
        let csc = t.to_csc();
        let lu = SparseLu::new(&csc).unwrap();
        assert!(lu.pivot_growth() < 100.0, "partial pivoting growth {}", lu.pivot_growth());
        // Freeze pivots where the second matrix flips magnitudes hard:
        // the refactorization divides by a tiny frozen pivot.
        let build = |d0: f64| {
            let mut t = Triplet::new(2, 2);
            t.push(0, 0, d0);
            t.push(1, 0, 1.0);
            t.push(0, 1, 1.0);
            t.push(1, 1, 1.0);
            t.to_csc()
        };
        let a0 = build(10.0);
        let sym = SparseLu::new(&a0).unwrap().symbolic(&a0);
        let re = sym.refactor(&build(1e-12)).unwrap();
        assert!(re.pivot_growth() > 1e10, "frozen-pivot growth {}", re.pivot_growth());
    }

    #[test]
    fn certified_solve_refines_to_tolerance() {
        let t = random_sparse(40, 4, 99);
        let csc = t.to_csc();
        let lu = SparseLu::new(&csc).unwrap();
        let b = DMat::from_fn(40, 2, |i, j| ((i + j) as f64 * 0.3).sin());
        let (x, cert) = lu.solve_mat_certified(&csc, &b, 1e-14, 2).unwrap();
        assert!(cert.residual <= 1e-14, "residual {}", cert.residual);
        assert!(cert.refine_steps <= 2);
        let ax = csc.to_dense().matmul(&x).unwrap();
        assert!((&ax - &b).norm_max() < 1e-9);
    }

    #[test]
    fn residual_norm_flags_contamination() {
        let mut t = Triplet::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        let a = t.to_csc();
        let b = DMat::from_fn(2, 1, |i, _| i as f64 + 1.0);
        let mut x = b.clone();
        assert!(residual_norm(&a, &x, &b) < 1e-15);
        x[(0, 0)] = f64::NAN;
        assert!(residual_norm(&a, &x, &b).is_nan());
    }

    #[test]
    fn refine_repairs_small_contamination() {
        let t = random_sparse(20, 3, 5);
        let csc = t.to_csc();
        let lu = SparseLu::new(&csc).unwrap();
        let b = DMat::from_fn(20, 1, |i, _| (i as f64).cos());
        let mut x = lu.solve_mat(&b).unwrap();
        // Drift the solution by a relative 1e-6 — one refinement step
        // must pull the residual back near machine precision.
        for i in 0..20 {
            x[(i, 0)] *= 1.0 + 1e-6;
        }
        assert!(residual_norm(&csc, &x, &b) > 1e-9);
        let refined = lu.refine_mat(&csc, &b, &mut x).unwrap();
        assert!(refined < 1e-12, "refined residual {refined}");
    }
}
