//! Sparse LU factorization: left-looking Gilbert–Peierls with partial
//! pivoting, generic over real and complex scalars.
//!
//! This is the solver the PMTBR cost model assumes: each column is
//! computed with a sparse triangular solve whose nonzero pattern is found
//! by depth-first search, so the work is proportional to the fill-in
//! rather than `n²`. It handles the complex shifted systems
//! `(sE − A)x = b` directly — the "immature sparse complex solver"
//! gap this reproduction had to close.

use numkit::{NumError, Scalar};

use crate::Csc;

/// Marker for "row not yet pivotal".
const UNSET: usize = usize::MAX;

/// A sparse LU factorization `P·A = L·U` with partial pivoting.
///
/// # Examples
///
/// ```
/// use sparsekit::{SparseLu, Triplet};
///
/// # fn main() -> Result<(), numkit::NumError> {
/// let mut t = Triplet::new(3, 3);
/// t.push(0, 0, 4.0);
/// t.push(1, 1, 2.0);
/// t.push(2, 2, 1.0);
/// t.push(0, 2, 1.0);
/// let lu = SparseLu::new(&t.to_csc())?;
/// let x = lu.solve(&[5.0, 2.0, 1.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// assert!((x[2] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu<T> {
    n: usize,
    /// L (unit lower, diagonal implicit), columns in pivot order, row
    /// indices in pivot order.
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<T>,
    /// U (upper incl. diagonal stored last per column), columns/rows in
    /// pivot order.
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<T>,
    /// `p[k]` = original row index pivotal at elimination step `k`.
    p: Vec<usize>,
}

impl<T: Scalar> SparseLu<T> {
    /// Factors the square CSC matrix `a`.
    ///
    /// # Errors
    ///
    /// - [`NumError::NotSquare`] for rectangular input.
    /// - [`NumError::Singular`] if no usable pivot exists in some column
    ///   (numerically or structurally singular).
    pub fn new(a: &Csc<T>) -> Result<Self, NumError> {
        let n = a.nrows();
        if n != a.ncols() {
            return Err(NumError::NotSquare { rows: n, cols: a.ncols() });
        }
        // pinv[orig_row] = pivot step, or UNSET.
        let mut pinv = vec![UNSET; n];
        let mut p = Vec::with_capacity(n);

        // L columns during factorization carry ORIGINAL row indices; they
        // are remapped to pivot order at the end.
        let mut l_colptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<T> = Vec::new();
        let mut u_colptr = vec![0usize];
        let mut u_rows: Vec<usize> = Vec::new();
        let mut u_vals: Vec<T> = Vec::new();

        // Scratch: dense accumulator, visited marks, DFS stacks.
        let mut x = vec![T::zero(); n];
        let mut mark = vec![false; n];
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for j in 0..n {
            let (a_rows, a_vals) = a.col(j);

            // --- Symbolic: reach of pattern(A[:,j]) through the L graph.
            topo.clear();
            for &start in a_rows {
                if mark[start] {
                    continue;
                }
                dfs_stack.push((start, 0));
                mark[start] = true;
                while let Some(&(node, child)) = dfs_stack.last() {
                    let k = pinv[node];
                    let children: &[usize] = if k == UNSET {
                        &[]
                    } else {
                        &l_rows[l_colptr[k]..l_colptr[k + 1]]
                    };
                    if child < children.len() {
                        let c = children[child];
                        dfs_stack.last_mut().expect("nonempty stack").1 += 1;
                        if !mark[c] {
                            mark[c] = true;
                            dfs_stack.push((c, 0));
                        }
                    } else {
                        topo.push(node);
                        dfs_stack.pop();
                    }
                }
            }
            // `topo` is a post-order: dependencies of a node appear AFTER
            // it, so process in reverse for the triangular solve.

            // --- Numeric: sparse solve x = L⁻¹ A[:,j].
            for (&r, &v) in a_rows.iter().zip(a_vals) {
                x[r] = v;
            }
            for &s in topo.iter().rev() {
                let k = pinv[s];
                if k == UNSET {
                    continue;
                }
                let xs = x[s];
                if xs == T::zero() {
                    continue;
                }
                for idx in l_colptr[k]..l_colptr[k + 1] {
                    let r = l_rows[idx];
                    x[r] -= l_vals[idx] * xs;
                }
            }

            // --- Pivot among non-pivotal rows of the pattern.
            let mut piv_row = UNSET;
            let mut piv_mag = 0.0;
            for &s in &topo {
                if pinv[s] == UNSET {
                    let m = x[s].abs();
                    if m > piv_mag {
                        piv_mag = m;
                        piv_row = s;
                    }
                }
            }
            if piv_row == UNSET || piv_mag == 0.0 {
                // Clean scratch before erroring.
                for &s in &topo {
                    x[s] = T::zero();
                    mark[s] = false;
                }
                return Err(NumError::Singular { pivot: j });
            }
            let ujj = x[piv_row];

            // --- Store U column j (pivotal rows) and L column j.
            for &s in &topo {
                let k = pinv[s];
                if k != UNSET && x[s] != T::zero() {
                    u_rows.push(k);
                    u_vals.push(x[s]);
                }
            }
            u_rows.push(j);
            u_vals.push(ujj);
            u_colptr.push(u_rows.len());

            for &s in &topo {
                if pinv[s] == UNSET && s != piv_row && x[s] != T::zero() {
                    l_rows.push(s); // original index; remapped below
                    l_vals.push(x[s] / ujj);
                }
            }
            l_colptr.push(l_rows.len());

            pinv[piv_row] = j;
            p.push(piv_row);

            // --- Clear scratch.
            for &s in &topo {
                x[s] = T::zero();
                mark[s] = false;
            }
        }

        // Remap L row indices from original to pivot order.
        for r in l_rows.iter_mut() {
            *r = pinv[*r];
        }
        Ok(SparseLu { n, l_colptr, l_rows, l_vals, u_colptr, u_rows, u_vals, p })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` plus `U` (fill-in diagnostics).
    pub fn factor_nnz(&self) -> usize {
        self.l_vals.len() + self.u_vals.len()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, NumError> {
        let n = self.n;
        if b.len() != n {
            return Err(NumError::ShapeMismatch {
                operation: "sparse lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // y = P·b.
        let mut y: Vec<T> = (0..n).map(|k| b[self.p[k]]).collect();
        // Forward: L·z = y (unit diagonal), column-oriented.
        for k in 0..n {
            let yk = y[k];
            if yk == T::zero() {
                continue;
            }
            for idx in self.l_colptr[k]..self.l_colptr[k + 1] {
                let r = self.l_rows[idx];
                y[r] -= self.l_vals[idx] * yk;
            }
        }
        // Backward: U·x = z, column-oriented (diagonal stored last).
        for k in (0..n).rev() {
            let hi = self.u_colptr[k + 1];
            let lo = self.u_colptr[k];
            let diag = self.u_vals[hi - 1];
            debug_assert_eq!(self.u_rows[hi - 1], k);
            let xk = y[k] / diag;
            y[k] = xk;
            if xk == T::zero() {
                continue;
            }
            for idx in lo..hi - 1 {
                let r = self.u_rows[idx];
                y[r] -= self.u_vals[idx] * xk;
            }
        }
        Ok(y)
    }

    /// Solves for several right-hand sides given as columns of a dense
    /// matrix, returning the solutions as columns.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::ShapeMismatch`] on a row-count mismatch.
    pub fn solve_mat(&self, b: &numkit::Mat<T>) -> Result<numkit::Mat<T>, NumError> {
        if b.nrows() != self.n {
            return Err(NumError::ShapeMismatch {
                operation: "sparse lu solve_mat",
                left: (self.n, self.n),
                right: b.shape(),
            });
        }
        let mut out = numkit::Mat::zeros(self.n, b.ncols());
        for j in 0..b.ncols() {
            let col = self.solve(&b.col(j))?;
            out.set_col(j, &col);
        }
        Ok(out)
    }

    /// Reciprocal condition estimate from the `U` diagonal magnitudes.
    pub fn rcond_estimate(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for k in 0..self.n {
            let d = self.u_vals[self.u_colptr[k + 1] - 1].abs();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        if hi == 0.0 {
            0.0
        } else {
            lo / hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplet;
    use numkit::{c64, DMat, Lu};

    /// Deterministic pseudo-random sparse matrix with a dominant diagonal.
    fn random_sparse(n: usize, fill: usize, seed: u64) -> Triplet<f64> {
        let mut t = Triplet::new(n, n);
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..n {
            t.push(i, i, 10.0 + (next() % 100) as f64 / 10.0);
            for _ in 0..fill {
                let j = (next() as usize) % n;
                let v = ((next() % 200) as f64 - 100.0) / 50.0;
                t.push(i, j, v);
            }
        }
        t
    }

    #[test]
    fn solve_matches_dense_lu() {
        let t = random_sparse(30, 3, 7);
        let csc = t.to_csc();
        let dense = csc.to_dense();
        let b: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let xs = SparseLu::new(&csc).unwrap().solve(&b).unwrap();
        let xd = Lu::new(dense).unwrap().solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-9, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn complex_shifted_system() {
        // (sI - A) x = b with s = j·w: the PMTBR kernel.
        let t = random_sparse(20, 2, 3);
        let a = t.to_csc();
        let s = c64::new(0.0, 2.5);
        let shifted = {
            let mut tz = Triplet::<c64>::new(20, 20);
            for j in 0..20 {
                let (rows, vals) = a.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    tz.push(r, j, c64::from_real(-v));
                }
            }
            for i in 0..20 {
                tz.push(i, i, s);
            }
            tz.to_csc()
        };
        let b: Vec<c64> = (0..20).map(|i| c64::new(1.0, i as f64 / 10.0)).collect();
        let x = SparseLu::new(&shifted).unwrap().solve(&b).unwrap();
        // Residual check against the dense operator.
        let dz = shifted.to_dense();
        let ax = dz.mul_vec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((*axi - *bi).abs() < 1e-9);
        }
    }

    #[test]
    fn permutation_matrix_roundtrip() {
        // A pure permutation requires pivoting to factor at all.
        let mut t = Triplet::new(4, 4);
        t.push(0, 2, 1.0);
        t.push(1, 0, 1.0);
        t.push(2, 3, 1.0);
        t.push(3, 1, 1.0);
        let lu = SparseLu::new(&t.to_csc()).unwrap();
        let b = vec![10.0, 20.0, 30.0, 40.0];
        let x = lu.solve(&b).unwrap();
        let ax = t.to_csc().mul_vec(&x);
        assert_eq!(ax, b);
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let n = 50;
        let mut t = Triplet::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
                t.push(i - 1, i, -1.0);
            }
        }
        let lu = SparseLu::new(&t.to_csc()).unwrap();
        // L and U each have at most 2 entries per column for a
        // diagonally dominant tridiagonal matrix (no pivoting needed).
        assert!(lu.factor_nnz() <= 3 * n, "unexpected fill-in: {}", lu.factor_nnz());
        let b = vec![1.0; n];
        let x = lu.solve(&b).unwrap();
        let ax = t.to_csc().mul_vec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn structurally_singular_detected() {
        let mut t = Triplet::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        // Column 2 completely empty.
        assert!(matches!(SparseLu::new(&t.to_csc()), Err(NumError::Singular { .. })));
    }

    #[test]
    fn numerically_singular_detected() {
        let mut t = Triplet::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(0, 1, 2.0);
        t.push(1, 1, 4.0);
        assert!(matches!(SparseLu::new(&t.to_csc()), Err(NumError::Singular { .. })));
    }

    #[test]
    fn solve_mat_multiple_rhs() {
        let t = random_sparse(10, 2, 11);
        let lu = SparseLu::new(&t.to_csc()).unwrap();
        let b = DMat::from_fn(10, 3, |i, j| (i * 3 + j) as f64);
        let x = lu.solve_mat(&b).unwrap();
        let ax = t.to_csc().to_dense().matmul(&x).unwrap();
        assert!((&ax - &b).norm_max() < 1e-9);
    }

    #[test]
    fn rcond_reasonable_for_identity() {
        let mut t = Triplet::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        let lu = SparseLu::new(&t.to_csc()).unwrap();
        assert!((lu.rcond_estimate() - 1.0).abs() < 1e-12);
    }
}
