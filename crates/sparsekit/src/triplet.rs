//! Coordinate-format (COO) sparse matrix builder.

use numkit::Scalar;

use crate::{Csc, Csr};

/// A coordinate-format builder for sparse matrices.
///
/// Duplicated `(row, col)` entries are *accumulated* (summed) on
/// conversion — exactly the semantics MNA circuit stamping needs.
///
/// # Examples
///
/// ```
/// use sparsekit::Triplet;
///
/// let mut t = Triplet::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // accumulates with the previous entry
/// t.push(1, 1, 5.0);
/// let csr = t.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// assert_eq!(csr.get(1, 1), 5.0);
/// assert_eq!(csr.get(0, 1), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Triplet<T> {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> Triplet<T> {
    /// Creates an empty builder with the given dimensions.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Triplet { nrows, ncols, entries: Vec::new() }
    }

    /// Creates an empty builder with capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Triplet { nrows, ncols, entries: Vec::with_capacity(cap) }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of raw (pre-accumulation) entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Adds `value` at `(row, col)`, accumulating with any existing entry.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.nrows && col < self.ncols, "triplet entry out of bounds");
        self.entries.push((row, col, value));
    }

    /// Raw entries (row, col, value), in insertion order.
    pub fn entries(&self) -> &[(usize, usize, T)] {
        &self.entries
    }

    /// Converts to compressed sparse row format, accumulating duplicates
    /// and dropping exact zeros produced by cancellation.
    pub fn to_csr(&self) -> Csr<T> {
        Csr::from_sorted_entries(self.nrows, self.ncols, self.sorted_rowmajor())
    }

    /// Converts to compressed sparse column format.
    pub fn to_csc(&self) -> Csc<T> {
        Csc::from_sorted_entries(self.nrows, self.ncols, self.sorted_colmajor())
    }

    fn sorted_rowmajor(&self) -> Vec<(usize, usize, T)> {
        let mut v = self.entries.clone();
        v.sort_by_key(|&(r, c, _)| (r, c));
        accumulate(v)
    }

    fn sorted_colmajor(&self) -> Vec<(usize, usize, T)> {
        let mut v = self.entries.clone();
        v.sort_by_key(|&(r, c, _)| (c, r));
        accumulate(v)
    }
}

/// Merges adjacent duplicates of a sorted entry list, dropping exact zeros.
fn accumulate<T: Scalar>(v: Vec<(usize, usize, T)>) -> Vec<(usize, usize, T)> {
    let mut out: Vec<(usize, usize, T)> = Vec::with_capacity(v.len());
    for (r, c, val) in v {
        match out.last_mut() {
            Some(&mut (lr, lc, ref mut lv)) if lr == r && lc == c => *lv += val,
            _ => out.push((r, c, val)),
        }
    }
    out.retain(|&(_, _, val)| val != T::zero());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_merges_duplicates() {
        let mut t = Triplet::new(3, 3);
        t.push(1, 1, 2.0);
        t.push(1, 1, 3.0);
        t.push(0, 2, -1.0);
        let csr = t.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(1, 1), 5.0);
        assert_eq!(csr.get(0, 2), -1.0);
    }

    #[test]
    fn cancellation_drops_entry() {
        let mut t = Triplet::new(2, 2);
        t.push(0, 1, 4.0);
        t.push(0, 1, -4.0);
        assert_eq!(t.to_csr().nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut t = Triplet::new(2, 2);
        t.push(2, 0, 1.0);
    }
}
