//! Compressed sparse row (CSR) matrices.

use numkit::{Mat, Scalar};

/// A compressed sparse row matrix.
///
/// Construction goes through [`Triplet`](crate::Triplet); CSR supports the
/// operations simulation needs: matrix–vector products (plain and
/// adjoint), row access, dense conversion, and scaled addition.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr<T> {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Csr<T> {
    /// Builds from entries sorted row-major with no duplicates.
    ///
    /// Intended for use by [`Triplet`](crate::Triplet); prefer that type
    /// for general construction.
    ///
    /// # Panics
    ///
    /// Panics (debug) if entries are unsorted or out of bounds.
    pub fn from_sorted_entries(
        nrows: usize,
        ncols: usize,
        entries: Vec<(usize, usize, T)>,
    ) -> Self {
        let mut indptr = vec![0usize; nrows + 1];
        let mut indices = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for &(r, c, _) in &entries {
            debug_assert!(r < nrows && c < ncols);
            indptr[r + 1] += 1;
        }
        for i in 0..nrows {
            indptr[i + 1] += indptr[i];
        }
        for (r, c, v) in entries {
            debug_assert!(
                indices.len() >= indptr[r] || r == 0,
                "entries must be sorted row-major"
            );
            indices.push(c);
            values.push(v);
            debug_assert!(indices.len() <= indptr[r + 1]);
        }
        Csr { nrows, ncols, indptr, indices, values }
    }

    /// An `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![T::one(); n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> (&[usize], &[T]) {
        assert!(i < self.nrows, "row index out of bounds");
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Entry at `(i, j)` (zero if not stored).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => T::zero(),
        }
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.ncols, "mul_vec: length mismatch");
        let mut y = vec![T::zero(); self.nrows];
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let mut acc = T::zero();
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c];
            }
            y[i] = acc;
        }
        y
    }

    /// `y = Aᵀ·x` (plain transpose, no conjugation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn mul_vec_transpose(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.nrows, "mul_vec_transpose: length mismatch");
        let mut y = vec![T::zero(); self.ncols];
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            let xi = x[i];
            for (&c, &v) in cols.iter().zip(vals) {
                y[c] += v * xi;
            }
        }
        y
    }

    /// Dense copy.
    pub fn to_dense(&self) -> Mat<T> {
        let mut m = Mat::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                m[(i, c)] = v;
            }
        }
        m
    }

    /// Iterator over stored entries `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&c, &v)| (i, c, v)).collect::<Vec<_>>()
        })
    }

    /// Linear combination `alpha·self + beta·other` (entry-wise union).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&self, alpha: T, other: &Csr<T>, beta: T) -> Csr<T> {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        let mut t = crate::Triplet::with_capacity(self.nrows, self.ncols, self.nnz() + other.nnz());
        for (i, j, v) in self.iter() {
            t.push(i, j, alpha * v);
        }
        for (i, j, v) in other.iter() {
            t.push(i, j, beta * v);
        }
        t.to_csr()
    }

    /// Maps every stored value (structure-preserving).
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Csr<U> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplet;

    fn sample() -> Csr<f64> {
        let mut t = Triplet::new(3, 4);
        t.push(0, 0, 1.0);
        t.push(0, 3, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(2, 2, 5.0);
        t.to_csr()
    }

    #[test]
    fn get_and_nnz() {
        let a = sample();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 3), 2.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = a.mul_vec(&x);
        let yd = a.to_dense().mul_vec(&x);
        assert_eq!(y, yd);
    }

    #[test]
    fn transpose_mul_matches_dense() {
        let a = sample();
        let x = vec![1.0, -1.0, 2.0];
        let y = a.mul_vec_transpose(&x);
        let yd = a.to_dense().transpose().mul_vec(&x);
        assert_eq!(y, yd);
    }

    #[test]
    fn identity_roundtrip() {
        let i = Csr::<f64>::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x), x);
    }

    #[test]
    fn add_scaled_combines() {
        let a = sample();
        let c = a.add_scaled(2.0, &a, -1.0);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(2, 2), 5.0);
        let mut t = Triplet::new(3, 4);
        t.push(0, 0, -1.0);
        let d = a.add_scaled(1.0, &t.to_csr(), 1.0);
        assert_eq!(d.get(0, 0), 0.0);
        assert_eq!(d.nnz(), 4, "cancelled entry must be dropped");
    }

    #[test]
    fn map_to_complex() {
        use numkit::c64;
        let a = sample();
        let z = a.map(|v| c64::new(0.0, v));
        assert_eq!(z.get(2, 2), c64::new(0.0, 5.0));
        assert_eq!(z.nnz(), a.nnz());
    }
}
