//! Fill-reducing orderings: reverse Cuthill–McKee (RCM).
//!
//! Gilbert–Peierls factors in the given column order; a bandwidth-
//! reducing permutation can cut fill-in dramatically for mesh-like
//! circuit matrices. RCM is simple, deterministic and effective for the
//! grid/tree topologies this workspace generates.

use numkit::Scalar;

use crate::{Csc, Csr, Triplet};

/// Computes a reverse Cuthill–McKee ordering of the symmetrized pattern
/// of `a`. Returns `perm` with `perm[k]` = original index of the node
/// placed at position `k`.
///
/// Disconnected components are ordered one after another, each from a
/// pseudo-peripheral starting node.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn rcm_ordering<T: Scalar>(a: &Csr<T>) -> Vec<usize> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "rcm ordering needs a square matrix");
    // Symmetrized adjacency (pattern only).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let (cols, _) = a.row(i);
        for &j in cols {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start_candidate in 0..n {
        if visited[start_candidate] {
            continue;
        }
        // Pseudo-peripheral node: repeated BFS to a farthest node.
        let mut start = start_candidate;
        for _ in 0..2 {
            let far = bfs_farthest(&adj, start, &visited);
            if far == start {
                break;
            }
            start = far;
        }
        // Cuthill–McKee BFS from `start`, neighbors by increasing degree.
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<usize> =
                adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            nbrs.sort_by_key(|&u| degree[u]);
            for u in nbrs {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// Breadth-first search returning a node at maximum distance from
/// `start`, ignoring already-visited nodes.
fn bfs_farthest(adj: &[Vec<usize>], start: usize, visited: &[bool]) -> usize {
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let mut last = start;
    while let Some(v) = queue.pop_front() {
        last = v;
        for &u in &adj[v] {
            if !seen[u] && !visited[u] {
                seen[u] = true;
                queue.push_back(u);
            }
        }
    }
    last
}

/// Applies a symmetric permutation to a square CSC matrix:
/// `B = P·A·Pᵀ` with `B[k, l] = A[perm[k], perm[l]]`.
///
/// # Panics
///
/// Panics if the permutation length differs from the dimension.
pub fn permute_symmetric<T: Scalar>(a: &Csc<T>, perm: &[usize]) -> Csc<T> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "permute_symmetric needs a square matrix");
    assert_eq!(perm.len(), n, "permutation length mismatch");
    // inverse permutation: position of original index i.
    let mut inv = vec![0usize; n];
    for (k, &p) in perm.iter().enumerate() {
        inv[p] = k;
    }
    let mut t = Triplet::with_capacity(n, n, a.nnz());
    for j in 0..n {
        let (rows, vals) = a.col(j);
        for (&r, &v) in rows.iter().zip(vals) {
            t.push(inv[r], inv[j], v);
        }
    }
    t.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseLu;

    /// 2-D grid Laplacian with the given node numbering map.
    fn grid(nside: usize, number: impl Fn(usize, usize) -> usize) -> Triplet<f64> {
        let n = nside * nside;
        let mut t = Triplet::new(n, n);
        for i in 0..nside {
            for j in 0..nside {
                let me = number(i, j);
                t.push(me, me, 4.2);
                if j + 1 < nside {
                    let right = number(i, j + 1);
                    t.push(me, right, -1.0);
                    t.push(right, me, -1.0);
                }
                if i + 1 < nside {
                    let down = number(i + 1, j);
                    t.push(me, down, -1.0);
                    t.push(down, me, -1.0);
                }
            }
        }
        t
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = grid(6, |i, j| i * 6 + j).to_csr();
        let perm = rcm_ordering(&a);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..36).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_fill_after_scrambling() {
        // Scramble a grid numbering, then let RCM recover locality: the
        // factor of the RCM-ordered matrix must have much less fill.
        let nside = 20;
        let n = nside * nside;
        let scramble = |i: usize, j: usize| (i * nside + j).wrapping_mul(73) % n;
        // `scramble` is a bijection when gcd(73, n) = 1; n = 400, ok.
        let t = grid(nside, scramble);
        let csc = t.to_csc();
        let lu_scrambled = SparseLu::new(&csc).unwrap();

        let perm = rcm_ordering(&t.to_csr());
        let reordered = permute_symmetric(&csc, &perm);
        let lu_rcm = SparseLu::new(&reordered).unwrap();
        assert!(
            lu_rcm.factor_nnz() * 2 < lu_scrambled.factor_nnz(),
            "rcm fill {} should be far below scrambled fill {}",
            lu_rcm.factor_nnz(),
            lu_scrambled.factor_nnz()
        );
    }

    #[test]
    fn permuted_solve_matches_original() {
        let t = grid(8, |i, j| i * 8 + j);
        let csc = t.to_csc();
        let n = 64;
        let b: Vec<f64> = (0..n).map(|k| (k as f64 * 0.1).sin()).collect();
        let x_direct = SparseLu::new(&csc).unwrap().solve(&b).unwrap();

        let perm = rcm_ordering(&t.to_csr());
        let reordered = permute_symmetric(&csc, &perm);
        let b_perm: Vec<f64> = perm.iter().map(|&p| b[p]).collect();
        let x_perm = SparseLu::new(&reordered).unwrap().solve(&b_perm).unwrap();
        // Un-permute and compare.
        for (k, &p) in perm.iter().enumerate() {
            assert!((x_perm[k] - x_direct[p]).abs() < 1e-10);
        }
    }

    #[test]
    fn handles_disconnected_components() {
        let mut t = Triplet::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 1.0);
        }
        t.push(0, 1, -0.5);
        t.push(1, 0, -0.5);
        t.push(3, 4, -0.5);
        t.push(4, 3, -0.5);
        let perm = rcm_ordering(&t.to_csr());
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }
}
