//! Compressed sparse column (CSC) matrices — the input format for the
//! left-looking sparse LU factorization.

use numkit::{Mat, Scalar};

/// A compressed sparse column matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<T> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Csc<T> {
    /// Builds from entries sorted column-major with no duplicates.
    ///
    /// Intended for use by [`Triplet`](crate::Triplet).
    pub fn from_sorted_entries(
        nrows: usize,
        ncols: usize,
        entries: Vec<(usize, usize, T)>,
    ) -> Self {
        let mut colptr = vec![0usize; ncols + 1];
        let mut rowidx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for &(_, c, _) in &entries {
            debug_assert!(c < ncols);
            colptr[c + 1] += 1;
        }
        for j in 0..ncols {
            colptr[j + 1] += colptr[j];
        }
        for (r, _, v) in entries {
            debug_assert!(r < nrows);
            rowidx.push(r);
            values.push(v);
        }
        Csc { nrows, ncols, colptr, rowidx, values }
    }

    /// Builds directly from compressed parts: `colptr` of length
    /// `ncols + 1`, and per-column row indices sorted ascending with no
    /// duplicates. This is the fast path for callers that assemble many
    /// matrices sharing one precomputed sparsity pattern (e.g. shifted
    /// pencils `s·E − A`).
    ///
    /// # Panics
    ///
    /// Panics if the arrays are structurally inconsistent.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        values: Vec<T>,
    ) -> Self {
        assert_eq!(colptr.len(), ncols + 1, "colptr length");
        assert_eq!(colptr[ncols], rowidx.len(), "colptr tail");
        assert_eq!(rowidx.len(), values.len(), "rowidx/values length");
        debug_assert!(colptr.windows(2).all(|w| w[0] <= w[1]), "colptr monotone");
        debug_assert!(rowidx.iter().all(|&r| r < nrows), "row index bound");
        Csc { nrows, ncols, colptr, rowidx, values }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row indices and values of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn col(&self, j: usize) -> (&[usize], &[T]) {
        assert!(j < self.ncols, "column index out of bounds");
        let lo = self.colptr[j];
        let hi = self.colptr[j + 1];
        (&self.rowidx[lo..hi], &self.values[lo..hi])
    }

    /// Dense copy.
    pub fn to_dense(&self) -> Mat<T> {
        let mut m = Mat::zeros(self.nrows, self.ncols);
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                m[(r, j)] = v;
            }
        }
        m
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.ncols, "mul_vec: length mismatch");
        let mut y = vec![T::zero(); self.nrows];
        for j in 0..self.ncols {
            let xj = x[j];
            if xj == T::zero() {
                continue;
            }
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                y[r] += v * xj;
            }
        }
        y
    }

    /// The column pointer array (length `ncols + 1`).
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// The row indices of all stored entries, column-major.
    pub fn rowidx(&self) -> &[usize] {
        &self.rowidx
    }

    /// The stored values, column-major.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// `true` if `other` has exactly the same sparsity structure
    /// (dimensions, column pointers, and row indices).
    pub fn same_structure<U>(&self, other: &Csc<U>) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.colptr == other.colptr
            && self.rowidx == other.rowidx
    }

    /// Maps every stored value (structure-preserving).
    pub fn map<U: Scalar>(&self, mut f: impl FnMut(T) -> U) -> Csc<U> {
        Csc {
            nrows: self.nrows,
            ncols: self.ncols,
            colptr: self.colptr.clone(),
            rowidx: self.rowidx.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Triplet;

    #[test]
    fn csc_matches_csr_dense() {
        let mut t = Triplet::new(3, 3);
        t.push(0, 1, 2.0);
        t.push(2, 0, -1.0);
        t.push(1, 1, 4.0);
        t.push(2, 2, 7.0);
        let csc = t.to_csc();
        let csr = t.to_csr();
        assert_eq!(csc.to_dense(), csr.to_dense());
        assert_eq!(csc.nnz(), 4);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let mut t = Triplet::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(1, 2, 3.0);
        let csc = t.to_csc();
        let x = vec![2.0, 5.0, -1.0];
        assert_eq!(csc.mul_vec(&x), csc.to_dense().mul_vec(&x));
    }
}
