//! # sparsekit — sparse matrices and a sparse LU solver
//!
//! Compressed sparse row/column matrices built from a coordinate-format
//! [`Triplet`] accumulator, plus a left-looking Gilbert–Peierls sparse LU
//! factorization ([`SparseLu`]) with partial pivoting, generic over real
//! (`f64`) and complex (`numkit::c64`) scalars.
//!
//! This crate is the circuit-solver substrate of the PMTBR reproduction:
//! MNA stamping produces [`Triplet`]s, frequency sweeps factor complex
//! shifted systems `(sE − A)`, and transient simulation factors
//! `(E − h/2·A)` once per time step size.
//!
//! ```
//! use sparsekit::{SparseLu, Triplet};
//!
//! # fn main() -> Result<(), numkit::NumError> {
//! // A small conductance matrix: solve G v = i.
//! let mut g = Triplet::new(2, 2);
//! g.push(0, 0, 2.0);
//! g.push(0, 1, -1.0);
//! g.push(1, 0, -1.0);
//! g.push(1, 1, 2.0);
//! let v = SparseLu::new(&g.to_csc())?.solve(&[1.0, 0.0])?;
//! assert!((v[0] - 2.0 / 3.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as `NumError`, not abort: panics
// are reserved for violated internal invariants (and tests).
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod csc;
mod csr;
mod lu;
mod ordering;
mod triplet;

pub use csc::Csc;
pub use csr::Csr;
pub use lu::{inf_norm, one_norm, residual_norm, residual_norm_transpose, SolveCert, SparseLu, SymbolicLu};
pub use ordering::{permute_symmetric, rcm_ordering};
pub use triplet::Triplet;
