//! Property tests: sparse operations must agree with their dense
//! counterparts, and the sparse LU must solve to small residuals.

use numkit::Lu;
use proptest::prelude::*;
use sparsekit::{SparseLu, Triplet};

/// Strategy: a random sparse n×n pattern with a guaranteed dominant
/// diagonal (so the matrix is invertible).
fn sparse_system(n: usize) -> impl Strategy<Value = (Triplet<f64>, Vec<f64>)> {
    let entries = proptest::collection::vec((0..n, 0..n, -2.0f64..2.0), 0..3 * n);
    let rhs = proptest::collection::vec(-3.0f64..3.0, n);
    (entries, rhs).prop_map(move |(es, b)| {
        let mut t = Triplet::new(n, n);
        let mut rowsum = vec![0.0f64; n];
        for (i, j, v) in es {
            t.push(i, j, v);
            rowsum[i] += v.abs();
        }
        for i in 0..n {
            t.push(i, i, rowsum[i] + 1.0);
        }
        (t, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparse_matvec_matches_dense((t, x) in sparse_system(12)) {
        let csr = t.to_csr();
        let csc = t.to_csc();
        let dense = csr.to_dense();
        prop_assert_eq!(csc.to_dense(), dense.clone());
        let yr = csr.mul_vec(&x);
        let yc = csc.mul_vec(&x);
        let yd = dense.mul_vec(&x);
        for i in 0..12 {
            prop_assert!((yr[i] - yd[i]).abs() < 1e-12);
            prop_assert!((yc[i] - yd[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_lu_matches_dense_lu((t, b) in sparse_system(12)) {
        let csc = t.to_csc();
        let xs = SparseLu::new(&csc).unwrap().solve(&b).unwrap();
        let xd = Lu::new(csc.to_dense()).unwrap().solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            prop_assert!((s - d).abs() < 1e-8, "sparse {} vs dense {}", s, d);
        }
    }

    #[test]
    fn sparse_lu_residual_small((t, b) in sparse_system(16)) {
        let csc = t.to_csc();
        let x = SparseLu::new(&csc).unwrap().solve(&b).unwrap();
        let ax = csc.mul_vec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_matvec_is_adjoint((t, x) in sparse_system(10), y in proptest::collection::vec(-1.0f64..1.0, 10)) {
        // <A x, y> == <x, Aᵀ y>
        let csr = t.to_csr();
        let ax = csr.mul_vec(&x);
        let aty = csr.mul_vec_transpose(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }
}
